// Device-fleet failover benchmark. Three questions:
//
//   1. Breaker latency: when one board in a 3-device pool goes sick,
//      how many failed attempts does the fleet burn before the circuit
//      breaker quarantines it? (Criterion: exactly the configured
//      consecutive-failure threshold — losses stop at the knob.)
//   2. Failover cost: with the sick board quarantined and its buffers
//      migrated, how much does the makespan grow versus a healthy
//      fleet? (Criterion: <= 2x — the survivors absorb the work.)
//   3. Counterfactual: the same sick board *without* a pool keeps
//      burning its retry budget on every command. (Criterion: its
//      makespan exceeds the failed-over pool's — failover pays.)
//
// The workload is 4 chains of 3 dependent GEMVs (the output vector of
// each level feeds the next), spread across the fleet, so a wrong or
// lost intermediate anywhere would surface in the final bytes.
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/workload.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"
#include "host/device_pool.hpp"
#include "host/health.hpp"

namespace {

using namespace fblas;
using Clock = std::chrono::steady_clock;

constexpr std::int64_t kN = 256;  // square GEMVs so chains compose
constexpr int kChains = 4;
constexpr int kLevels = 3;
constexpr int kWorkers = 4;
constexpr int kOpenAfter = 2;  // consecutive failures before quarantine

enum class Setup { HealthyPool, SickPool, SickSolo };

struct RunResult {
  double wall_ms = 0;
  std::uint64_t makespan_cycles = 0;
  host::ExecStats stats;
  std::vector<std::vector<float>> outs;  // final vector of each chain
};

host::FaultConfig sick_config() {
  host::FaultConfig faults;
  faults.seed = 5;
  faults.corrupt_rate = 0.02;
  // Device 0 runs sick for the whole run: x35 lifts the detected-
  // corruption rate to 0.7, so most attempts placed there burn a full
  // execution before rollback. The pool caps the damage at the breaker
  // threshold; the solo board pays on every single command.
  faults.device_fault_window.device = 0;
  faults.device_fault_window.begin = 0;
  faults.device_fault_window.end = kChains * kLevels;
  faults.device_fault_window.multiplier = 35.0;
  return faults;
}

RunResult run_chains(Setup setup) {
  host::HealthConfig health;
  health.open_consecutive_failures = kOpenAfter;
  health.cooldown_ticks = 64;  // no re-admission within this short run

  host::Device solo;
  auto pool = (setup == Setup::SickSolo)
                  ? nullptr
                  : std::make_unique<host::DevicePool>(
                        3, sim::DeviceId::Stratix10, health);
  auto ctx = pool ? std::make_unique<host::Context>(*pool, stream::Mode::Cycle,
                                                    kWorkers)
                  : std::make_unique<host::Context>(solo, stream::Mode::Cycle,
                                                    kWorkers);
  host::RetryPolicy policy;
  policy.max_retries = 12;
  policy.backoff = std::chrono::microseconds(0);
  ctx->set_retry_policy(policy);
  if (setup == Setup::SickPool) pool->inject_faults(sick_config());
  if (setup == Setup::SickSolo) solo.inject_faults(sick_config());

  Workload wl(31);
  const auto ha = wl.matrix<float>(kN, kN);
  const auto dev_of = [&](int chain) -> host::Device& {
    return pool ? pool->device(chain % pool->size()) : solo;
  };
  std::vector<host::Buffer<float>> as;
  std::vector<std::vector<host::Buffer<float>>> vs(kChains);
  for (int c = 0; c < kChains; ++c) {
    as.emplace_back(dev_of(c), kN * kN, 0);
    as.back().write(ha);
    for (int l = 0; l <= kLevels; ++l) {
      vs[c].emplace_back(dev_of(c), kN, 1 + l % 3);
      vs[c].back().write(l == 0 ? wl.vector<float>(kN)
                                : std::vector<float>(kN, 0.0f));
    }
  }

  const auto t0 = Clock::now();
  for (int c = 0; c < kChains; ++c) {
    for (int l = 0; l < kLevels; ++l) {
      ctx->gemv_async<float>(Transpose::None, kN, kN, 1.0f, as[c], vs[c][l],
                             1, 0.0f, vs[c][l + 1], 1);
    }
  }
  ctx->finish();
  const auto t1 = Clock::now();

  RunResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.makespan_cycles = ctx->makespan_cycles();
  r.stats = ctx->exec_stats();
  for (int c = 0; c < kChains; ++c) r.outs.push_back(vs[c].back().to_host());
  return r;
}

}  // namespace

int main() {
  std::printf("Device-fleet failover: %d chains of %d dependent %lldx%lld "
              "GEMVs, %d workers\n\n",
              kChains, kLevels, static_cast<long long>(kN),
              static_cast<long long>(kN), kWorkers);

  const RunResult healthy = run_chains(Setup::HealthyPool);
  const RunResult sick = run_chains(Setup::SickPool);
  const RunResult solo = run_chains(Setup::SickSolo);

  const auto ratio = [](const RunResult& a, const RunResult& b) {
    return static_cast<double>(a.makespan_cycles) /
           static_cast<double>(b.makespan_cycles);
  };
  const host::PerDeviceStats& sick0 = sick.stats.per_device[0];

  std::printf("healthy pool (3 devices) : %8.1f ms wall, %10llu makespan "
              "cycles\n",
              healthy.wall_ms,
              static_cast<unsigned long long>(healthy.makespan_cycles));
  std::printf("sick pool (dev0 sick)    : %8.1f ms wall, %10llu makespan "
              "cycles (%.2fx healthy)\n",
              sick.wall_ms,
              static_cast<unsigned long long>(sick.makespan_cycles),
              ratio(sick, healthy));
  std::printf("  breaker-open latency   : %llu failed attempts on dev0 "
              "(threshold %d), %llu opens\n",
              static_cast<unsigned long long>(sick0.failed_attempts),
              kOpenAfter,
              static_cast<unsigned long long>(sick.stats.breaker_opens));
  std::printf("  quarantine migration   : %llu buffers, %llu bytes "
              "re-staged\n",
              static_cast<unsigned long long>(sick.stats.migrations),
              static_cast<unsigned long long>(sick.stats.migrated_bytes));
  std::printf("sick solo (no pool)      : %8.1f ms wall, %10llu makespan "
              "cycles (%.2fx sick pool), %llu faults, %llu retries\n",
              solo.wall_ms,
              static_cast<unsigned long long>(solo.makespan_cycles),
              ratio(solo, sick),
              static_cast<unsigned long long>(solo.stats.faults_injected),
              static_cast<unsigned long long>(solo.stats.retries));

  const bool sick_identical = sick.outs == healthy.outs;
  const bool solo_identical = solo.outs == healthy.outs;
  const bool quarantined =
      sick.stats.breaker_opens >= 1 && sick.stats.migrations >= 1;
  // Concurrent workers may have attempts in flight on dev0 at the moment
  // the breaker opens; those land as failures too, so the bound is the
  // threshold plus a small in-flight allowance — not one per command.
  const bool latency_bounded =
      sick0.failed_attempts <= static_cast<std::uint64_t>(kOpenAfter) + 2;
  const bool failover_cheap = ratio(sick, healthy) <= 2.0;
  const bool failover_pays = solo.makespan_cycles > sick.makespan_cycles;
  const bool nothing_degraded =
      sick.stats.degraded == 0 && solo.stats.degraded == 0;

  std::printf("\nsick-pool outputs bit-identical      : %s\n",
              sick_identical ? "yes" : "NO");
  std::printf("sick-solo outputs bit-identical      : %s\n",
              solo_identical ? "yes" : "NO");
  std::printf("breaker opened at the threshold      : %s\n",
              latency_bounded ? "yes" : "NO");
  std::printf("quarantine + migration happened      : %s\n",
              quarantined ? "yes" : "NO");
  std::printf("failed-over makespan <= 2x healthy   : %s\n",
              failover_cheap ? "yes" : "NO");
  std::printf("no-pool makespan exceeds failed-over : %s\n",
              failover_pays ? "yes" : "NO");

  const bool pass = sick_identical && solo_identical && quarantined &&
                    latency_bounded && failover_cheap && failover_pays &&
                    nothing_degraded;
  std::printf("\n%s (criteria: bit-identical results, breaker opens at the "
              "threshold, failover <= 2x healthy makespan, and beats "
              "riding out the sick board)\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
