// Ablation: channel (FIFO) capacity.
// (1) Pipeline throughput vs channel depth: shallow FIFOs serialize
//     producer and consumer in the cycle simulator; a few batches of
//     slack recover full overlap (why the lowerings use >= 2W).
// (2) The ATAX feasibility boundary: completion vs deadlock as the
//     direct A channel's depth crosses M*TN (Sec. V-B), measured live.
#include <cstdio>

#include "apps/atax.hpp"
#include "common/table_printer.hpp"
#include "common/workload.hpp"
#include "fblas/level1.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace {

using namespace fblas;

std::uint64_t pipeline_cycles(std::size_t depth) {
  const std::int64_t n = 1 << 14;
  const int w = 16;
  stream::Graph g(stream::Mode::Cycle);
  auto& a = g.channel<float>("a", depth);
  auto& b = g.channel<float>("b", depth);
  auto& c = g.channel<float>("c", depth);
  g.spawn("gen", stream::generate<float>(n, 1.0f, w, a));
  g.spawn("scal1", core::scal<float>({w}, n, 2.0f, a, b));
  g.spawn("scal2", core::scal<float>({w}, n, 0.5f, b, c));
  g.spawn("sink", stream::sink<float>(n, w, c));
  g.run();
  return g.cycles();
}

}  // namespace

int main() {
  std::puts("FBLAS ablation: channel depth\n");
  std::puts("== 3-stage pipeline throughput vs FIFO depth"
            " (N = 16K, W = 16) ==");
  TablePrinter t({"Depth", "Cycles", "Elems/cycle", "vs deep"});
  const auto deep = pipeline_cycles(256);
  for (std::size_t depth : {1u, 4u, 8u, 16u, 32u, 64u, 256u}) {
    const auto cycles = pipeline_cycles(depth);
    t.add_row({TablePrinter::fmt_int(static_cast<std::int64_t>(depth)),
               TablePrinter::fmt_int(static_cast<std::int64_t>(cycles)),
               TablePrinter::fmt((1 << 14) / static_cast<double>(cycles), 2),
               TablePrinter::fmt(static_cast<double>(cycles) /
                                     static_cast<double>(deep), 2)});
  }
  t.print();
  std::puts("Finding: with balanced, steady producer/consumer rates the"
            " pipeline is insensitive\nto FIFO depth — channels only ever"
            " hold one in-flight batch. Depth becomes\nexistential when"
            " the MDAG is a non-multitree (below), which is why the paper"
            "\ntreats channel sizing as a *validity* question, not a"
            " performance knob.\n");

  std::puts("== ATAX: the M*TN feasibility boundary (N = 64, M = 48,"
            " TN = 16) ==");
  const std::int64_t n = 64, m = 48, tile = 16;
  Workload wl(9);
  auto a = wl.matrix<float>(n, m);
  auto x = wl.vector<float>(m);
  const std::int64_t mtn = m * tile;
  auto completes = [&](std::int64_t depth) {
    try {
      apps::atax_streaming<float>(sim::stratix10(), stream::Mode::Cycle, 4,
                                  tile, depth,
                                  MatrixView<const float>(a.data(), n, m),
                                  VectorView<const float>(x.data(), m));
      return true;
    } catch (const DeadlockError&) {
      return false;
    }
  };
  TablePrinter b({"A-channel depth", "vs M*TN", "Outcome"});
  for (const std::int64_t depth : {mtn / 4, mtn / 2, mtn, 2 * mtn}) {
    b.add_row({TablePrinter::fmt_int(depth),
               TablePrinter::fmt(static_cast<double>(depth) /
                                     static_cast<double>(mtn), 2),
               completes(depth) ? "completes" : "stalls forever"});
  }
  b.print();
  // Binary-search the exact boundary and compare with the analysis bound.
  std::int64_t lo = 1, hi = 2 * mtn;
  while (lo < hi) {
    const std::int64_t mid = (lo + hi) / 2;
    if (completes(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::printf("\nExact boundary (binary search): depth %lld; analysis bound"
              " M*TN = %lld (ratio %.3f).\nThe Sec. V-B bound is tight to"
              " within the few elements held in the fan-out stage;\nthe"
              " planner in mdag/auto_partition derives the same number.\n",
              static_cast<long long>(lo), static_cast<long long>(mtn),
              static_cast<double>(lo) / static_cast<double>(mtn));
  return 0;
}
