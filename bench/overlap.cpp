// Out-of-order host runtime benchmark: a batch of independent same-size
// GEMVs issued through (a) the serial in-order queue and (b) the
// 4-worker out-of-order executor.
//
// Two numbers matter:
//   - device time: serial total_cycles() vs the executor's critical-path
//     makespan_cycles() — the speedup an overlapped schedule achieves on
//     the simulated device, independent of the host machine;
//   - wall clock: host-side time to drain the queue (only meaningful on
//     a multi-core host; CI containers may pin this process to 1 CPU).
//
// A hazard-laden workload (RAW/WAR/WAW chains across shared buffers) is
// also run through both policies and checked for bit-identical results.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/workload.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"

namespace {

using namespace fblas;
using Clock = std::chrono::steady_clock;

constexpr std::int64_t kRows = 256;
constexpr std::int64_t kCols = 256;
constexpr int kBatch = 8;
constexpr int kWorkers = 4;

struct RunResult {
  double wall_ms = 0;
  std::uint64_t total_cycles = 0;
  std::uint64_t makespan_cycles = 0;
  std::vector<float> y0;
};

RunResult run_gemv_batch(int workers) {
  host::Device dev(sim::DeviceId::Stratix10);
  host::Context ctx(dev, stream::Mode::Cycle, workers);
  Workload wl(77);
  const auto ha = wl.matrix<float>(kRows, kCols);
  host::Buffer<float> a(dev, kRows * kCols, 0);
  a.write(ha);
  std::vector<host::Buffer<float>> xs, ys;
  for (int i = 0; i < kBatch; ++i) {
    xs.emplace_back(dev, kCols, 1);
    ys.emplace_back(dev, kRows, 2);
    xs.back().write(wl.vector<float>(kCols));
    ys.back().write(std::vector<float>(kRows, 0.0f));
  }
  const auto t0 = Clock::now();
  for (int i = 0; i < kBatch; ++i) {
    ctx.gemv_async<float>(Transpose::None, kRows, kCols, 1.0f, a, xs[i], 1,
                          0.0f, ys[i], 1);
  }
  ctx.finish();
  const auto t1 = Clock::now();
  RunResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.total_cycles = ctx.total_cycles();
  r.makespan_cycles = ctx.makespan_cycles();
  r.y0 = ys[0].to_host();
  return r;
}

std::vector<std::vector<float>> run_hazard_chain(int workers) {
  host::Device dev(sim::DeviceId::Stratix10);
  host::Context ctx(dev, stream::Mode::Functional, workers);
  Workload wl(78);
  const std::int64_t n = 1024;
  std::vector<host::Buffer<float>> bufs;
  for (int i = 0; i < 4; ++i) {
    bufs.emplace_back(dev, n, i % dev.bank_count());
    bufs.back().write(wl.vector<float>(n));
  }
  // RAW / WAR / WAW chains across the shared buffers, repeated.
  for (int round = 0; round < 16; ++round) {
    ctx.scal_async<float>(n, 1.01f, bufs[0], 1);
    ctx.axpy_async<float>(n, 0.5f, bufs[0], 1, bufs[1], 1);   // RAW b0
    ctx.copy_async<float>(n, bufs[1], 1, bufs[2], 1);         // RAW b1
    ctx.scal_async<float>(n, 0.99f, bufs[1], 1);              // WAR/WAW b1
    ctx.axpy_async<float>(n, -0.25f, bufs[2], 1, bufs[3], 1); // RAW b2
    ctx.copy_async<float>(n, bufs[3], 1, bufs[0], 1);         // WAR b0
  }
  ctx.finish();
  std::vector<std::vector<float>> out;
  for (auto& b : bufs) out.push_back(b.to_host());
  return out;
}

}  // namespace

int main() {
  std::printf("Out-of-order host runtime: %d independent %lldx%lld GEMVs\n",
              kBatch, static_cast<long long>(kRows),
              static_cast<long long>(kCols));
  std::printf("host has %u hardware threads\n\n",
              std::thread::hardware_concurrency());

  const RunResult serial = run_gemv_batch(0);
  const RunResult ooo = run_gemv_batch(kWorkers);

  const bool identical = serial.y0 == ooo.y0;
  const double device_speedup =
      static_cast<double>(serial.total_cycles) /
      static_cast<double>(ooo.makespan_cycles);
  const double wall_speedup = serial.wall_ms / ooo.wall_ms;

  std::printf("serial queue   : %8.1f ms wall, %12llu device cycles\n",
              serial.wall_ms,
              static_cast<unsigned long long>(serial.total_cycles));
  std::printf("%d-worker OOO   : %8.1f ms wall, %12llu device cycles"
              " (makespan)\n",
              kWorkers, ooo.wall_ms,
              static_cast<unsigned long long>(ooo.makespan_cycles));
  std::printf("\ndevice-time speedup (total / makespan): %.2fx\n",
              device_speedup);
  std::printf("wall-clock speedup  (host-dependent)  : %.2fx\n",
              wall_speedup);
  std::printf("outputs bit-identical                 : %s\n",
              identical ? "yes" : "NO");

  std::puts("\nhazard-laden workload (RAW/WAR/WAW chains):");
  const auto hz_serial = run_hazard_chain(0);
  const auto hz_ooo = run_hazard_chain(kWorkers);
  const bool hz_ok = hz_serial == hz_ooo;
  std::printf("serial vs %d-worker results bit-identical: %s\n", kWorkers,
              hz_ok ? "yes" : "NO");

  const bool pass = identical && hz_ok && device_speedup >= 1.5;
  std::printf("\n%s (criterion: bit-identical results and >= 1.50x device-"
              "time speedup)\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
