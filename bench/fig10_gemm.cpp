// Reproduces Fig. 10 (right): systolic GEMM performance versus the
// compute/memory tile ratio (3..12) for the largest place-and-routable
// grids per device and precision (Arria 32x32 / 16x8, Stratix 40x80 /
// 16x16), matrices of 5x the memory tile. Small ratios leave the array
// memory-bound; large ratios approach the expected performance, peaking
// near the paper's 1.28 TFlop/s single precision on the Stratix 10.
#include <cstdio>

#include "common/table_printer.hpp"
#include "common/workload.hpp"
#include "fblas/level3.hpp"
#include "sim/perf_model.hpp"
#include "sim/resource_model.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace {

using namespace fblas;

/// Cycle-simulates the blocked GEMM module at a small scale to validate
/// the analytic tile model.
std::uint64_t simulate_gemm_cycles(const core::GemmConfig& cfg,
                                   std::int64_t n) {
  Workload wl(7);
  auto a = wl.matrix<float>(n, n);
  auto b = wl.matrix<float>(n, n);
  stream::Graph g(stream::Mode::Cycle);
  auto& ca = g.channel<float>("A", 256);
  auto& cb = g.channel<float>("B", 256);
  auto& cc = g.channel<float>("Cin", 4);
  auto& out = g.channel<float>("out", 256);
  g.spawn("read_A", core::read_a_gemm<float>(
                        MatrixView<const float>(a.data(), n, n), cfg, n, ca));
  g.spawn("read_B", core::read_b_gemm<float>(
                        MatrixView<const float>(b.data(), n, n), cfg, n, cb));
  g.spawn("gemm",
          core::gemm<float>(cfg, n, n, n, 1.0f, 0.0f, ca, cb, cc, out));
  g.spawn("sink", stream::sink<float>(n * n, cfg.pe_cols, out));
  g.run();
  return g.cycles();
}

}  // namespace

int main() {
  std::puts("FBLAS reproduction: Fig. 10 (right) — systolic GEMM vs"
            " compute/memory tile ratio\n");
  TablePrinter t({"Device", "Precision", "Grid", "Ratio", "GOps/s (model)",
                  "Expected GOps/s", "Memory bound", "Freq [MHz]"});
  for (const auto* dev : {&sim::arria10(), &sim::stratix10()}) {
    for (const Precision prec : {Precision::Single, Precision::Double}) {
      const auto grid = sim::max_gemm_grid(*dev, prec);
      for (int ratio : {3, 6, 9, 12}) {
        const sim::GemmShape shape{grid.pe_rows, grid.pe_cols,
                                   static_cast<std::int64_t>(grid.pe_rows) *
                                       ratio,
                                   static_cast<std::int64_t>(grid.pe_cols) *
                                       ratio};
        const auto timing = sim::gemm_timing(
            prec, shape, 5 * shape.tile_rows, 5 * shape.tile_cols,
            5 * shape.tile_rows, *dev, dev->bank_bandwidth_gbs);
        t.add_row({std::string(dev->name), std::string(to_string(prec)),
                   std::to_string(grid.pe_rows) + "x" +
                       std::to_string(grid.pe_cols),
                   TablePrinter::fmt_int(ratio),
                   TablePrinter::fmt(timing.gops, 1),
                   TablePrinter::fmt(timing.expected_gops, 1),
                   timing.memory_bound ? "yes" : "no",
                   TablePrinter::fmt(timing.freq_mhz, 0)});
      }
    }
  }
  t.print();

  std::puts("\nModel validation: cycle simulation of the module vs the tile"
            " model (4x4 grid, ratio sweep, N = 96):");
  TablePrinter v({"Ratio", "Simulated cycles", "Model cycles", "Ratio"});
  for (int ratio : {2, 4, 8}) {
    const core::GemmConfig cfg{4, 4, 4L * ratio, 4L * ratio};
    const std::int64_t n = 96;
    const auto sim_cycles = simulate_gemm_cycles(cfg, n);
    const sim::GemmShape shape{4, 4, cfg.tile_rows, cfg.tile_cols};
    // Compare against the unthrottled tile model (generous bandwidth).
    const auto model = sim::gemm_timing(Precision::Single, shape, n, n, n,
                                        sim::stratix10(), 1e6);
    v.add_row({TablePrinter::fmt_int(ratio),
               TablePrinter::fmt_int(static_cast<std::int64_t>(sim_cycles)),
               TablePrinter::fmt(model.cycles, 0),
               TablePrinter::fmt(static_cast<double>(sim_cycles) /
                                     model.cycles, 3)});
  }
  v.print();
  std::puts("\nShape check (paper): small ratios starve the array at the"
            " memory interface; the\nlargest Stratix single-precision"
            " design approaches ~1.28 TFlop/s at ratio 12.");
  return 0;
}
