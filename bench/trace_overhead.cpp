// Tracing overhead benchmark. Two questions:
//
//   1. Armed cost on the simulated clock: does tracing perturb the
//      makespan the runtime reports? (Criterion: < 1% difference on a
//      mixed GEMM/GEMV/composition workload — by design it should be
//      exactly 0: emission happens on the host clock, never inside a
//      cycle-metered graph.)
//   2. Armed cost on the wall clock: how much host time does recording
//      every lifecycle span, engine summary and counter sample add?
//      (Reported for the record; wall time on shared CI machines is too
//      noisy to gate on.)
//
// Exits non-zero when criterion 1 fails, so CI can run it as a test.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/atax.hpp"
#include "common/workload.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"
#include "host/device_pool.hpp"
#include "trace/trace.hpp"
#include "verify/options.hpp"

namespace {

using namespace fblas;
using Clock = std::chrono::steady_clock;

constexpr int kRounds = 12;
constexpr int kWorkers = 4;

struct RunResult {
  double wall_ms = 0;
  std::uint64_t makespan_cycles = 0;
  std::uint64_t executed = 0;
  std::uint64_t events_recorded = 0;
};

// Mixed workload: chained L1 + GEMV + GEMM + systolic GEMM + composed
// MDAG per round, on a 3-device pool with verification on — the same
// shape the tracing layer is meant to observe in production runs.
RunResult run_mixed(bool traced) {
  const std::int64_t vn = 128;
  const std::int64_t gr = 48, gc = vn;
  const std::int64_t m3 = 40, n3 = 36, k3 = 32;
  const std::int64_t ms = 24, ns = 20, ks = 16;
  const std::int64_t an = 24, am = 18;

  host::DevicePool pool(3);
  host::Context ctx(pool, stream::Mode::Cycle, kWorkers);
  ctx.config().verification = verify::Options::always().in_grid();
  std::shared_ptr<trace::Recorder> rec;
  if (traced) rec = ctx.tracing();

  Workload wl(71);
  host::Buffer<float> v0(pool.device(0), vn, 0), v1(pool.device(0), vn, 1);
  host::Buffer<float> ga(pool.device(0), gr * gc, 0);
  host::Buffer<float> gy(pool.device(0), gr, 2);
  host::Buffer<float> ma(pool.device(1), m3 * k3, 0);
  host::Buffer<float> mb(pool.device(1), k3 * n3, 1);
  host::Buffer<float> mc(pool.device(1), m3 * n3, 2);
  host::Buffer<float> sa(pool.device(2), ms * ks, 0);
  host::Buffer<float> sb(pool.device(2), ks * ns, 1);
  host::Buffer<float> sc(pool.device(2), ms * ns, 2);
  host::Buffer<float> aa(pool.device(2), an * am, 0);
  host::Buffer<float> ax(pool.device(2), am, 1);
  host::Buffer<float> ay(pool.device(2), am, 2);
  v0.write(wl.vector<float>(vn));
  v1.write(wl.vector<float>(vn));
  ga.write(wl.matrix<float>(gr, gc));
  gy.write(std::vector<float>(static_cast<std::size_t>(gr), 0.0f));
  ma.write(wl.matrix<float>(m3, k3));
  mb.write(wl.matrix<float>(k3, n3));
  mc.write(wl.matrix<float>(m3, n3));
  sa.write(wl.matrix<float>(ms, ks));
  sb.write(wl.matrix<float>(ks, ns));
  sc.write(std::vector<float>(static_cast<std::size_t>(ms * ns), 0.0f));
  aa.write(wl.matrix<float>(an, am));
  ax.write(wl.vector<float>(am));
  ay.write(std::vector<float>(static_cast<std::size_t>(am), 0.0f));

  const auto t0 = Clock::now();
  for (int round = 0; round < kRounds; ++round) {
    ctx.scal_async<float>(vn, 1.01f, v0, 1);
    ctx.axpy_async<float>(vn, 0.5f, v0, 1, v1, 1);
    ctx.gemv_async<float>(Transpose::None, gr, gc, 1.0f, ga, v1, 1, 0.5f, gy,
                          1);
    ctx.gemm_async<float>(Transpose::None, Transpose::None, m3, n3, k3, 1.0f,
                          ma, mb, 0.5f, mc);
    ctx.gemm_systolic_async<float>(ms, ns, ks, sa, sb, sc);
    apps::atax_composed_async<float>(ctx, an, am, aa, ax, ay);
  }
  ctx.finish();
  const auto t1 = Clock::now();

  RunResult r;
  r.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  const host::ExecStats stats = ctx.exec_stats();
  r.makespan_cycles = stats.makespan_cycles;
  r.executed = stats.executed;
  if (rec) r.events_recorded = rec->metrics().recorded;
  return r;
}

}  // namespace

int main() {
  // Warm-up evens out allocator / code-page effects before timing.
  (void)run_mixed(false);
  const RunResult off = run_mixed(false);
  const RunResult on = run_mixed(true);

  const double cyc_off = static_cast<double>(off.makespan_cycles);
  const double cyc_on = static_cast<double>(on.makespan_cycles);
  const double cycle_delta_pct =
      cyc_off == 0 ? 0.0 : 100.0 * (cyc_on - cyc_off) / cyc_off;
  const double wall_delta_pct =
      off.wall_ms == 0 ? 0.0 : 100.0 * (on.wall_ms - off.wall_ms) / off.wall_ms;

  std::printf("trace overhead (mixed GEMM/GEMV/composition, %d workers)\n",
              kWorkers);
  std::printf("  %-22s %12s %16s %10s\n", "", "wall [ms]", "makespan [cyc]",
              "commands");
  std::printf("  %-22s %12.2f %16llu %10llu\n", "tracing off", off.wall_ms,
              static_cast<unsigned long long>(off.makespan_cycles),
              static_cast<unsigned long long>(off.executed));
  std::printf("  %-22s %12.2f %16llu %10llu\n", "tracing on", on.wall_ms,
              static_cast<unsigned long long>(on.makespan_cycles),
              static_cast<unsigned long long>(on.executed));
  std::printf("  events recorded: %llu\n",
              static_cast<unsigned long long>(on.events_recorded));
  std::printf("  makespan delta: %+.4f%% (criterion: |delta| < 1%%)\n",
              cycle_delta_pct);
  std::printf("  wall delta:     %+.2f%% (informational)\n", wall_delta_pct);

  if (on.events_recorded == 0) {
    std::printf("FAIL: traced run recorded no events\n");
    return EXIT_FAILURE;
  }
  if (cycle_delta_pct > 1.0 || cycle_delta_pct < -1.0) {
    std::printf("FAIL: tracing perturbed the simulated makespan\n");
    return EXIT_FAILURE;
  }
  std::printf("PASS\n");
  return EXIT_SUCCESS;
}
