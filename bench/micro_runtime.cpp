// Google-benchmark microbenchmarks of the simulation substrate itself:
// channel throughput, scheduler overhead in both modes, tile walking,
// reference-BLAS rates and the systolic-array stepper. These bound how
// large a design the cycle simulator can drive in reasonable time.
#include <benchmark/benchmark.h>

#include "common/workload.hpp"
#include "fblas/batched.hpp"
#include "fblas/level1.hpp"
#include "refblas/level3.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"
#include "systolic/systolic_array.hpp"

namespace {

using namespace fblas;

void BM_ChannelTryPushPop(benchmark::State& state) {
  stream::Graph g;
  auto& ch = g.channel<float>("c", 1024);
  float v = 0;
  for (auto _ : state) {
    ch.try_put(1.0f);
    ch.try_take(v);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelTryPushPop);

void BM_StreamPassthrough(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const auto mode = state.range(1) == 0 ? stream::Mode::Functional
                                        : stream::Mode::Cycle;
  for (auto _ : state) {
    stream::Graph g(mode);
    auto& a = g.channel<float>("a", 256);
    auto& b = g.channel<float>("b", 256);
    g.spawn("gen", stream::generate<float>(n, 1.0f, 16, a));
    g.spawn("scal", core::scal<float>({16}, n, 2.0f, a, b));
    g.spawn("sink", stream::sink<float>(n, 16, b));
    g.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(mode == stream::Mode::Functional ? "functional" : "cycle");
}
BENCHMARK(BM_StreamPassthrough)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 1});

void BM_TileWalker(benchmark::State& state) {
  const std::int64_t n = 512;
  for (auto _ : state) {
    stream::TileWalker walk(n, n,
                            {Order::RowMajor, Order::RowMajor, 64, 64});
    std::int64_t i, j, acc = 0;
    while (walk.next(i, j)) acc += i + j;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TileWalker);

void BM_RefGemmBlocked(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Workload wl(1);
  auto a = wl.matrix<float>(n, n);
  auto b = wl.matrix<float>(n, n);
  std::vector<float> c(n * n, 0.0f);
  for (auto _ : state) {
    ref::gemm_blocked<float>(1.0f, MatrixView<const float>(a.data(), n, n),
                             MatrixView<const float>(b.data(), n, n), 0.0f,
                             MatrixView<float>(c.data(), n, n));
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * n * n * n,
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}
BENCHMARK(BM_RefGemmBlocked)->Arg(128)->Arg(256);

void BM_SystolicArray(benchmark::State& state) {
  const int grid = static_cast<int>(state.range(0));
  const std::int64_t n = 32;
  Workload wl(2);
  auto a = wl.matrix<float>(n, n);
  auto b = wl.matrix<float>(n, n);
  std::vector<float> c(n * n, 0.0f);
  systolic::SystolicArray<float> arr(grid, grid);
  for (auto _ : state) {
    arr.multiply(MatrixView<const float>(a.data(), n, n),
                 MatrixView<const float>(b.data(), n, n),
                 MatrixView<float>(c.data(), n, n));
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_SystolicArray)->Arg(4)->Arg(8);

void BM_BatchedUnrolledGemm(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  const std::int64_t sz = 4;
  Workload wl(3);
  auto a = wl.vector<float>(batch * sz * sz);
  auto b = wl.vector<float>(batch * sz * sz);
  std::vector<float> c(batch * sz * sz, 0.0f);
  for (auto _ : state) {
    stream::Graph g(stream::Mode::Cycle);
    auto& ca = g.channel<float>("A", 128);
    auto& cb = g.channel<float>("B", 128);
    auto& cc = g.channel<float>("C", 128);
    g.spawn("read_A", core::read_batched<float>(a.data(), sz * sz, batch, ca));
    g.spawn("read_B", core::read_batched<float>(b.data(), sz * sz, batch, cb));
    g.spawn("gemm",
            core::gemm_batched_unrolled<float>({sz}, batch, 1.0f, ca, cb, cc));
    g.spawn("store", core::write_batched<float>(c.data(), sz * sz, batch, cc));
    g.run();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchedUnrolledGemm)->Arg(256)->Arg(1024);

void BM_OccupancyTraceOverhead(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  const std::int64_t n = 1 << 14;
  for (auto _ : state) {
    stream::Graph g(stream::Mode::Cycle);
    if (traced) g.scheduler().enable_occupancy_trace();
    auto& a = g.channel<float>("a", 64);
    g.spawn("gen", stream::generate<float>(n, 1.0f, 16, a));
    g.spawn("sink", stream::sink<float>(n, 16, a));
    g.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(traced ? "traced" : "untraced");
}
BENCHMARK(BM_OccupancyTraceOverhead)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
