// Reproduces Table IV: CPU versus FPGA execution time and power for
// individual routines (DOT, GEMV, GEMM) in single and double precision at
// the paper's sizes.
//
// Three columns per row: the paper's measured times, the modeled times
// (Xeon+MKL model vs FPGA space/time model), and — for the smaller
// configurations — the wall-clock of the bundled reference BLAS on the
// present machine (a different, single-core host; reported for
// transparency, not for the who-wins comparison).
#include <chrono>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "common/table_printer.hpp"
#include "common/workload.hpp"
#include "refblas/level1.hpp"
#include "refblas/level2.hpp"
#include "refblas/level3.hpp"
#include "sim/cpu_model.hpp"
#include "sim/frequency_model.hpp"
#include "sim/perf_model.hpp"
#include "sim/power_model.hpp"
#include "sim/resource_model.hpp"
#include "sim/work_depth.hpp"

namespace {

using namespace fblas;
using Clock = std::chrono::steady_clock;

double time_it(const std::function<void()>& fn) {
  const auto t0 = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Row {
  const char* routine;
  Precision prec;
  std::string size;
  double paper_cpu_s;
  double paper_fpga_s;
  double model_cpu_s;
  double model_fpga_s;
  double fpga_power;
  std::optional<double> local_cpu_s;
};

void print_rows(const std::vector<Row>& rows) {
  TablePrinter t({"Routine", "P", "N", "CPU model (paper)",
                  "FPGA model (paper)", "FPGA/CPU", "FPGA P [W]",
                  "Energy FPGA/CPU", "local refblas"});
  for (const Row& r : rows) {
    const int level = std::string(r.routine) == "GEMM" ? 3 : 2;
    const double cpu_power = sim::cpu_power_watts(level, r.prec);
    const double energy_ratio = (r.model_fpga_s * r.fpga_power) /
                                (r.model_cpu_s * cpu_power);
    t.add_row({r.routine, r.prec == Precision::Single ? "S" : "D", r.size,
               TablePrinter::fmt_time(r.model_cpu_s) + " (" +
                   TablePrinter::fmt_time(r.paper_cpu_s) + ")",
               TablePrinter::fmt_time(r.model_fpga_s) + " (" +
                   TablePrinter::fmt_time(r.paper_fpga_s) + ")",
               TablePrinter::fmt(r.model_fpga_s / r.model_cpu_s, 2),
               TablePrinter::fmt(r.fpga_power, 1),
               TablePrinter::fmt(energy_ratio, 2),
               r.local_cpu_s ? TablePrinter::fmt_time(*r.local_cpu_s)
                             : "(skipped)"});
  }
  t.print();
}

double fpga_power(RoutineKind kind, Precision prec, int width,
                  const sim::GemmShape* gemm = nullptr) {
  const auto& dev = sim::stratix10();
  sim::ModuleShape shape{kind, prec, width, 2048, 2048, 0, 0};
  double freq;
  if (gemm != nullptr) {
    shape.pe_rows = gemm->pe_rows;
    shape.pe_cols = gemm->pe_cols;
    shape.tile_rows = gemm->tile_rows;
    shape.tile_cols = gemm->tile_cols;
    freq = sim::gemm_frequency(gemm->pe_rows, gemm->pe_cols, prec, dev).mhz;
  } else {
    freq = sim::module_frequency(kind, prec, dev).mhz;
  }
  return sim::board_power_watts(sim::estimate_design(shape, dev), freq, dev);
}

}  // namespace

int main() {
  std::puts("FBLAS reproduction: Table IV — CPU vs FPGA, single routines\n"
            "(Stratix 10; widths 32/16 for DOT, 64/32 for GEMV; 40x80 and"
            " 16x16 systolic GEMM;\npaper-measured values in parentheses)\n");
  const auto& dev = sim::stratix10();
  Workload wl(21);
  std::vector<Row> rows;

  // ---- DOT --------------------------------------------------------------
  for (const auto& [prec, n, paper_cpu, paper_fpga] :
       {std::tuple{Precision::Single, std::int64_t{16'000'000}, 2050e-6,
                   1866e-6},
        std::tuple{Precision::Single, std::int64_t{256'000'000}, 35131e-6,
                   28272e-6},
        std::tuple{Precision::Double, std::int64_t{16'000'000}, 4079e-6,
                   3627e-6},
        std::tuple{Precision::Double, std::int64_t{128'000'000}, 35124e-6,
                   28250e-6}}) {
    const int width = prec == Precision::Single ? 32 : 16;
    // The run is memory bound: 2N operand reads over the DDR interface.
    const auto f = sim::module_frequency(RoutineKind::Dot, prec, dev);
    const auto wd = sim::analyze(RoutineKind::Dot, prec, width, n, dev);
    const auto fpga = sim::memory_bound_timing(
        sim::pipeline_cycles(wd.circuit_depth,
                             static_cast<double>(n) / width),
        f.mhz, 2.0 * static_cast<double>(n), 2.0 * static_cast<double>(n),
        bytes_of(prec), dev.total_bandwidth_gbs(), f.hyperflex);
    const double cpu =
        sim::cpu_memory_bound_seconds(2.0 * static_cast<double>(n),
                                      bytes_of(prec));
    std::optional<double> local;
    if (n <= 16'000'000 && prec == Precision::Single) {
      auto x = wl.vector<float>(n);
      auto y = wl.vector<float>(n);
      volatile float sink = 0;
      local = time_it([&] {
        sink = ref::dot<float>(VectorView<const float>(x.data(), n),
                               VectorView<const float>(y.data(), n));
      });
      (void)sink;
    }
    rows.push_back({"DOT", prec,
                    n >= 1'000'000 ? std::to_string(n / 1'000'000) + "M"
                                   : std::to_string(n),
                    paper_cpu, paper_fpga, cpu, fpga.seconds,
                    fpga_power(RoutineKind::Dot, prec, width), local});
  }

  // ---- GEMV -------------------------------------------------------------
  for (const auto& [prec, n, paper_cpu, paper_fpga] :
       {std::tuple{Precision::Single, std::int64_t{8192}, 5402e-6, 4091e-6},
        std::tuple{Precision::Single, std::int64_t{65536}, 323795e-6,
                   241038e-6},
        std::tuple{Precision::Double, std::int64_t{8192}, 9810e-6, 7831e-6},
        std::tuple{Precision::Double, std::int64_t{32768}, 163510e-6,
                   120357e-6}}) {
    const int width = prec == Precision::Single ? 64 : 32;
    const auto f = sim::module_frequency(RoutineKind::Gemv, prec, dev);
    const double elems = static_cast<double>(n) * static_cast<double>(n);
    const auto fpga = sim::memory_bound_timing(
        elems / width, f.mhz, 2.0 * elems, elems, bytes_of(prec),
        dev.total_bandwidth_gbs(), f.hyperflex);
    const double cpu = sim::cpu_memory_bound_seconds(elems, bytes_of(prec));
    std::optional<double> local;
    if (n <= 8192 && prec == Precision::Single) {
      auto a = wl.matrix<float>(n, n);
      auto x = wl.vector<float>(n);
      auto y = wl.vector<float>(n);
      local = time_it([&] {
        ref::gemv<float>(Transpose::None, 1.0f,
                         MatrixView<const float>(a.data(), n, n),
                         VectorView<const float>(x.data(), n), 0.0f,
                         VectorView<float>(y.data(), n));
      });
    }
    rows.push_back({"GEMV", prec,
                    std::to_string(n / 1024) + "Kx" + std::to_string(n / 1024) + "K",
                    paper_cpu, paper_fpga, cpu, fpga.seconds,
                    fpga_power(RoutineKind::Gemv, prec, width), local});
  }

  // ---- GEMM -------------------------------------------------------------
  for (const auto& [prec, n, paper_cpu, paper_fpga] :
       {std::tuple{Precision::Single, std::int64_t{8192}, 1.56, 1.01},
        std::tuple{Precision::Single, std::int64_t{49152}, 300.7, 181.0},
        std::tuple{Precision::Double, std::int64_t{8192}, 3.14, 8.43},
        std::tuple{Precision::Double, std::int64_t{24576}, 75.78, 203.0}}) {
    const auto grid = sim::max_gemm_grid(dev, prec);
    const std::int64_t tile = prec == Precision::Single ? 960 : 384;
    const sim::GemmShape shape{grid.pe_rows, grid.pe_cols,
                               fblas::round_up(tile, grid.pe_rows),
                               fblas::round_up(tile, grid.pe_cols)};
    // Table IV interleaves data across all DDR banks.
    const auto fpga = sim::gemm_timing(prec, shape, n, n, n, dev,
                                       dev.total_bandwidth_gbs());
    const double flops = 2.0 * static_cast<double>(n) *
                         static_cast<double>(n) * static_cast<double>(n);
    const double cpu = sim::cpu_gemm_seconds(flops, prec);
    std::optional<double> local;
    if (n <= 8192 && prec == Precision::Single) {
      // Scaled-down local measurement (512^3), extrapolated cubically.
      const std::int64_t sn = 512;
      auto a = wl.matrix<float>(sn, sn);
      auto b = wl.matrix<float>(sn, sn);
      std::vector<float> c(sn * sn, 0.0f);
      const double small = time_it([&] {
        ref::gemm_blocked<float>(1.0f, MatrixView<const float>(a.data(), sn, sn),
                                 MatrixView<const float>(b.data(), sn, sn),
                                 0.0f, MatrixView<float>(c.data(), sn, sn));
      });
      const double scale = static_cast<double>(n) / static_cast<double>(sn);
      local = small * scale * scale * scale;
    }
    rows.push_back({"GEMM", prec,
                    std::to_string(n / 1024) + "Kx" + std::to_string(n / 1024) + "K",
                    paper_cpu, paper_fpga, cpu, fpga.seconds,
                    fpga_power(RoutineKind::Gemm, prec, 1, &shape), local});
  }

  print_rows(rows);
  std::printf("\nCPU power model: %.1f W (L1/2) / %.1f W (GEMM);"
              " FPGA boards draw ~30%% less.\n",
              sim::cpu_power_watts(1, Precision::Single),
              sim::cpu_power_watts(3, Precision::Single));
  std::puts("Shape check (paper): FPGA wins the memory-bound routines"
            " (DOT, GEMV) by ~25% and\nsingle-precision GEMM; it loses"
            " double-precision GEMM for lack of hardened units.\n"
            "'local refblas' is the bundled single-core reference BLAS on"
            " this machine\n(GEMM extrapolated from 512^3) — not the"
            " paper's baseline.");
  return 0;
}
