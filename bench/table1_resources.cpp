// Reproduces Table I (SCAL and DOT module resource consumption and
// latency versus vectorization width, single precision, Stratix 10) and
// prints the Table II device database the models run against.
//
// The resource figures follow the circuit work/depth scaling laws of
// Sec. IV-A; the paper's measured values are printed alongside for
// comparison.
#include <cstdio>

#include "common/table_printer.hpp"
#include "sim/device.hpp"
#include "sim/resource_model.hpp"
#include "sim/work_depth.hpp"

namespace {

using fblas::RoutineKind;
using fblas::TablePrinter;

// Paper Table I reference values: {W, LUT, FF, DSP, latency}.
struct PaperRow {
  int w;
  int lut, ff, dsp, lat;
};
constexpr PaperRow kPaperScal[] = {
    {2, 98, 192, 2, 50},      {4, 196, 384, 4, 50},   {8, 392, 768, 8, 50},
    {16, 784, 1536, 16, 50},  {32, 1568, 3072, 32, 50},
    {64, 3136, 6144, 64, 50},
};
constexpr PaperRow kPaperDot[] = {
    {2, 174, 192, 2, 82},     {4, 242, 320, 4, 85},   {8, 378, 640, 8, 89},
    {16, 650, 1280, 16, 93},  {32, 1194, 2560, 32, 97},
    {64, 2474, 5120, 64, 105},
};

void print_device_table() {
  std::puts("== Table II: FPGA boards used for evaluation ==");
  TablePrinter t({"FPGA", "ALM", "FF", "M20K", "DSP", "DRAM", "HyperFlex"});
  for (const auto* d : {&fblas::sim::arria10(), &fblas::sim::stratix10()}) {
    t.add_row({std::string(d->name),
               TablePrinter::fmt_int(d->alm_total) + " (avail " +
                   TablePrinter::fmt_int(d->alm_avail) + ")",
               TablePrinter::fmt_int(d->ff_total),
               TablePrinter::fmt_int(d->m20k_total),
               TablePrinter::fmt_int(d->dsp_total) + " (avail " +
                   TablePrinter::fmt_int(d->dsp_avail) + ")",
               std::to_string(d->ddr_banks) + "x8GB @" +
                   TablePrinter::fmt(d->bank_bandwidth_gbs, 1) + " GB/s",
               d->has_hyperflex ? "yes" : "no"});
  }
  t.print();
  std::puts("");
}

void print_module_table(RoutineKind kind, const char* name,
                        const PaperRow* paper, int rows) {
  std::printf("== Table I: %s module circuit vs vectorization width "
              "(single precision, Stratix 10) ==\n", name);
  TablePrinter t({"W", "LUTs (model)", "LUTs (paper)", "FFs (model)",
                  "FFs (paper)", "DSPs (model)", "DSPs (paper)",
                  "Latency (model)", "Latency (paper)", "CW", "CD"});
  const auto& dev = fblas::sim::stratix10();
  for (int i = 0; i < rows; ++i) {
    const int w = paper[i].w;
    const auto c = fblas::sim::table1_circuit(kind, w, dev);
    const auto wd = fblas::sim::analyze(kind, fblas::Precision::Single, w,
                                        1 << 20, dev);
    t.add_row({TablePrinter::fmt_int(w),
               TablePrinter::fmt(c.luts, 0), TablePrinter::fmt_int(paper[i].lut),
               TablePrinter::fmt(c.ffs, 0), TablePrinter::fmt_int(paper[i].ff),
               TablePrinter::fmt(c.dsps, 0), TablePrinter::fmt_int(paper[i].dsp),
               TablePrinter::fmt(c.latency_cycles, 0),
               TablePrinter::fmt_int(paper[i].lat),
               TablePrinter::fmt(wd.circuit_work, 0),
               TablePrinter::fmt(wd.circuit_depth, 0)});
  }
  t.print();
  std::puts("");
}

}  // namespace

int main() {
  std::puts("FBLAS reproduction: Table I / Table II\n");
  print_device_table();
  print_module_table(RoutineKind::Scal, "SCAL", kPaperScal, 6);
  print_module_table(RoutineKind::Dot, "DOT", kPaperDot, 6);
  std::puts("Model: map-class circuits scale LUT/FF/DSP linearly in CW with"
            " constant latency;\nreduce-class circuits add a log2(W)-deep"
            " adder tree to the latency (C = CD + N/W).");
  return 0;
}
