// Reproduces Table III: full-design resource consumption, frequency and
// power for the largest synthesized module of each routine/precision on
// both devices (DOT and GEMV at their maximum widths, GEMM at the largest
// place-and-routable grids). Paper-measured values printed alongside.
#include <cstdio>

#include "common/table_printer.hpp"
#include "sim/frequency_model.hpp"
#include "sim/power_model.hpp"
#include "sim/resource_model.hpp"

namespace {

using namespace fblas;

struct PaperRef {
  double alms_k, dsps, freq, power;
};

struct Entry {
  const char* name;
  sim::ModuleShape shape;
  PaperRef arria;
  PaperRef stratix;
};

// Paper Table III (ALMs in thousands).
const Entry kEntries[] = {
    {"SDOT (W=256)",
     {RoutineKind::Dot, Precision::Single, 256, 0, 0, 0, 0},
     {9.756, 331, 150, 47.3},
     {123.1, 328, 358, 68.7}},
    {"DDOT (W=128)",
     {RoutineKind::Dot, Precision::Double, 128, 0, 0, 0, 0},
     {121.4, 512, 150, 47.9},
     {235.1, 512, 366, 68.8}},
    {"SGEMV (W=256)",
     {RoutineKind::Gemv, Precision::Single, 256, 1024, 1024, 0, 0},
     {21.56, 284, 145, 48.1},
     {123.4, 274, 347, 68.0}},
    {"DGEMV (W=128)",
     {RoutineKind::Gemv, Precision::Double, 128, 1024, 1024, 0, 0},
     {135.9, 520, 132, 48.6},
     {275.7, 520, 347, 69.7}},
};

void print_for_device(const sim::DeviceSpec& dev, bool is_arria) {
  std::printf("== %s ==\n", std::string(dev.name).c_str());
  TablePrinter t({"Module", "ALMs model (paper)", "DSPs model (paper)",
                  "M20Ks", "F [MHz] model (paper)", "P [W] model (paper)",
                  "Utilization"});
  auto row = [&](const char* name, const sim::ModuleShape& shape,
                 const sim::FrequencyEstimate& f, const PaperRef& ref) {
    const auto r = sim::estimate_design(shape, dev);
    const double p = sim::board_power_watts(r, f.mhz, dev);
    t.add_row({std::string(name) + (f.hyperflex ? " [H]" : ""),
               TablePrinter::fmt(r.alms / 1000, 1) + "K (" +
                   TablePrinter::fmt(ref.alms_k, 1) + "K)",
               TablePrinter::fmt(r.dsps, 0) + " (" +
                   TablePrinter::fmt(ref.dsps, 0) + ")",
               TablePrinter::fmt(r.m20ks, 0),
               TablePrinter::fmt(f.mhz, 0) + " (" +
                   TablePrinter::fmt(ref.freq, 0) + ")",
               TablePrinter::fmt(p, 1) + " (" +
                   TablePrinter::fmt(ref.power, 1) + ")",
               TablePrinter::fmt(100 * sim::utilization(r, dev), 1) + "%"});
  };
  for (const Entry& e : kEntries) {
    const auto f = sim::module_frequency(e.shape.kind, e.shape.prec, dev);
    row(e.name, e.shape, f, is_arria ? e.arria : e.stratix);
  }
  // GEMM at the largest P&R-feasible grids; memory tiles at ratio ~12
  // (Arria single uses a slightly smaller ratio to fit M20Ks, matching
  // the paper's 81% M20K usage).
  for (const Precision prec : {Precision::Single, Precision::Double}) {
    const auto grid = sim::max_gemm_grid(dev, prec);
    const int ratio = (is_arria && prec == Precision::Single) ? 10 : 12;
    sim::ModuleShape shape{RoutineKind::Gemm, prec, 1,
                           static_cast<std::int64_t>(grid.pe_rows) * ratio,
                           static_cast<std::int64_t>(grid.pe_cols) * ratio,
                           grid.pe_rows, grid.pe_cols};
    const auto f = sim::gemm_frequency(grid.pe_rows, grid.pe_cols, prec, dev);
    const PaperRef arria_ref =
        prec == Precision::Single ? PaperRef{102.4, 1086, 197, 52.1}
                                  : PaperRef{135.8, 622, 222, 49.1};
    const PaperRef stratix_ref =
        prec == Precision::Single ? PaperRef{328.5, 3270, 216, 70.5}
                                  : PaperRef{450.9, 1166, 260, 67.5};
    const std::string name =
        std::string(prec == Precision::Single ? "SGEMM " : "DGEMM ") +
        std::to_string(grid.pe_rows) + "x" + std::to_string(grid.pe_cols);
    row(name.c_str(), shape, f, is_arria ? arria_ref : stratix_ref);
  }
  t.print();
  std::puts("");
}

}  // namespace

int main() {
  std::puts("FBLAS reproduction: Table III — resource consumption of the"
            " largest modules\n([H] marks HyperFlex designs; paper-measured"
            " values in parentheses)\n");
  print_for_device(sim::arria10(), true);
  print_for_device(sim::stratix10(), false);
  std::puts("Shape check (paper): double-precision modules cost ~4x the"
            " DSPs and an order of\nmagnitude more logic; GEMM dominates"
            " M20K usage through its double-buffered tiles.");
  return 0;
}
