// Fault-tolerance benchmark for the host runtime. Three questions:
//
//   1. Overhead: with a RetryPolicy armed but no faults injected, how
//      much device time does the snapshot/rollback machinery add to the
//      8-GEMV overlap workload? (Criterion: < 1%. Snapshots copy
//      write-set bytes on the host; they must not touch device cycles.)
//   2. Recovery: with a 5% kernel-launch failure rate, does the same
//      workload complete bit-identically to the clean run via retries?
//   3. Watchdog: does a wedged graph end in a prompt TimeoutError
//      instead of hanging the benchmark forever?
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/workload.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"

namespace {

using namespace fblas;
using Clock = std::chrono::steady_clock;

constexpr std::int64_t kRows = 256;
constexpr std::int64_t kCols = 256;
constexpr int kBatch = 8;
constexpr int kWorkers = 4;

struct RunResult {
  double wall_ms = 0;
  std::uint64_t total_cycles = 0;
  std::uint64_t makespan_cycles = 0;
  host::ExecStats stats;
  std::vector<std::vector<float>> ys;
};

enum class Setup { Clean, RetryArmedNoFaults, LaunchFaults };

RunResult run_gemv_batch(Setup setup) {
  host::Device dev(sim::DeviceId::Stratix10);
  host::Context ctx(dev, stream::Mode::Cycle, kWorkers);
  if (setup != Setup::Clean) {
    host::RetryPolicy policy;
    policy.max_retries = 4;
    policy.backoff = std::chrono::microseconds(0);
    ctx.set_retry_policy(policy);
  }
  if (setup == Setup::LaunchFaults) {
    host::FaultConfig faults;
    faults.seed = 4;  // deterministic: draws >= 1 fault across the batch
    faults.launch_fail_rate = 0.05;
    dev.inject_faults(faults);
  }
  Workload wl(77);
  const auto ha = wl.matrix<float>(kRows, kCols);
  host::Buffer<float> a(dev, kRows * kCols, 0);
  a.write(ha);
  std::vector<host::Buffer<float>> xs, ys;
  for (int i = 0; i < kBatch; ++i) {
    xs.emplace_back(dev, kCols, 1);
    ys.emplace_back(dev, kRows, 2);
    xs.back().write(wl.vector<float>(kCols));
    ys.back().write(std::vector<float>(kRows, 0.0f));
  }
  const auto t0 = Clock::now();
  for (int i = 0; i < kBatch; ++i) {
    ctx.gemv_async<float>(Transpose::None, kRows, kCols, 1.0f, a, xs[i], 1,
                          0.0f, ys[i], 1);
  }
  ctx.finish();
  const auto t1 = Clock::now();
  RunResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.total_cycles = ctx.total_cycles();
  r.makespan_cycles = ctx.makespan_cycles();
  r.stats = ctx.exec_stats();
  for (auto& y : ys) r.ys.push_back(y.to_host());
  return r;
}

bool run_watchdog_demo() {
  host::Device dev(sim::DeviceId::Stratix10);
  host::Context ctx(dev, stream::Mode::Cycle);
  host::FaultConfig faults;
  faults.seed = 3;
  faults.wedge_rate = 1.0;
  dev.inject_faults(faults);
  stream::Watchdog wd;
  wd.wall_deadline = std::chrono::milliseconds(200);
  ctx.set_watchdog(wd);
  host::Buffer<float> x(dev, 4096, 0);
  x.write(Workload(5).vector<float>(4096));
  const auto t0 = Clock::now();
  bool timed_out = false;
  try {
    ctx.scal<float>(4096, 2.0f, x);
  } catch (const TimeoutError&) {
    timed_out = true;
  }
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  std::printf("wedged graph    : TimeoutError %s after %.0f ms "
              "(deadline 200 ms)\n",
              timed_out ? "raised" : "NOT RAISED", ms);
  return timed_out && ms < 5000.0;
}

}  // namespace

int main() {
  std::printf("Fault-tolerant host runtime: %d independent %lldx%lld GEMVs, "
              "%d workers\n\n",
              kBatch, static_cast<long long>(kRows),
              static_cast<long long>(kCols), kWorkers);

  const RunResult clean = run_gemv_batch(Setup::Clean);
  const RunResult armed = run_gemv_batch(Setup::RetryArmedNoFaults);
  const RunResult faulty = run_gemv_batch(Setup::LaunchFaults);

  // Snapshots happen on the host; armed-but-idle fault tolerance must not
  // change the simulated device schedule at all.
  const double overhead_pct =
      100.0 *
      (static_cast<double>(armed.makespan_cycles) -
       static_cast<double>(clean.makespan_cycles)) /
      static_cast<double>(clean.makespan_cycles);

  std::printf("clean           : %8.1f ms wall, %10llu makespan cycles\n",
              clean.wall_ms,
              static_cast<unsigned long long>(clean.makespan_cycles));
  std::printf("retry armed     : %8.1f ms wall, %10llu makespan cycles "
              "(device-time overhead %+.2f%%)\n",
              armed.wall_ms,
              static_cast<unsigned long long>(armed.makespan_cycles),
              overhead_pct);
  std::printf("5%% launch fail  : %8.1f ms wall, %10llu makespan cycles, "
              "%llu faults, %llu retries, %llu degraded\n",
              faulty.wall_ms,
              static_cast<unsigned long long>(faulty.makespan_cycles),
              static_cast<unsigned long long>(faulty.stats.faults_injected),
              static_cast<unsigned long long>(faulty.stats.retries),
              static_cast<unsigned long long>(faulty.stats.degraded));

  const bool armed_identical = clean.ys == armed.ys;
  const bool faulty_identical = clean.ys == faulty.ys;
  const bool recovered = faulty.stats.retries > 0;
  std::printf("\nretry-armed outputs bit-identical  : %s\n",
              armed_identical ? "yes" : "NO");
  std::printf("faulty-run outputs bit-identical   : %s\n",
              faulty_identical ? "yes" : "NO");
  std::printf("faults actually injected + retried : %s\n",
              recovered ? "yes" : "NO");
  std::printf("\n");

  const bool watchdog_ok = run_watchdog_demo();

  const bool pass = armed_identical && faulty_identical && recovered &&
                    overhead_pct < 1.0 && watchdog_ok;
  std::printf("\n%s (criteria: bit-identical recovery, < 1%% armed "
              "device-time overhead, prompt watchdog timeout)\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
