// Reproduces Table VI: CPU versus FPGA for the composed applications
// AXPYDOT, BICG and GEMVER at the paper's sizes, single and double
// precision. FPGA times come from the streaming-composition I/O model at
// the composed-design frequency; CPU times from the Xeon memory-bandwidth
// model. A functional pass of each streaming composition also runs at a
// reduced size to tie the model to the simulator.
#include <cstdio>

#include "apps/axpydot.hpp"
#include "apps/bicg.hpp"
#include "apps/gemver.hpp"
#include "common/table_printer.hpp"
#include "common/workload.hpp"
#include "sim/cpu_model.hpp"
#include "sim/frequency_model.hpp"
#include "sim/power_model.hpp"
#include "sim/resource_model.hpp"

namespace {

using namespace fblas;

struct PaperRef {
  double cpu_us, fpga_us;
};

double composed_power(int matrix_modules, Precision prec) {
  const auto& dev = sim::stratix10();
  // Compositions reuse interface modules: resources comparable to ~1.5
  // single modules (the paper reports up to -40% vs non-streamed).
  sim::ModuleShape shape{matrix_modules > 0 ? RoutineKind::Gemv
                                            : RoutineKind::Dot,
                         prec, 32, 2048, 2048, 0, 0};
  auto r = sim::estimate_design(shape, dev);
  r.alms *= 1.5;
  r.dsps *= 1.5;
  const double f =
      sim::composition_frequency(matrix_modules, prec, dev).mhz;
  return sim::board_power_watts(r, f, dev);
}

/// Time of one streaming pass over `elems` operands: the pipeline ingests
/// W per cycle, and the dominant stream arrives from `banks` interleaved
/// DDR banks; `efficiency` absorbs interface stalls (calibrated on
/// Table VI: ~0.8-0.9).
double pass_seconds(double elems, Precision prec, int width, double f_mhz,
                    int banks, double efficiency) {
  const auto& dev = sim::stratix10();
  const double pipeline_rate = width * f_mhz * 1e6;  // elements/s
  const double dram_rate = banks * dev.bank_bandwidth_gbs * 1e9 /
                           static_cast<double>(bytes_of(prec));
  return elems / std::min(pipeline_rate, dram_rate) / efficiency;
}

void add_row(TablePrinter& t, const char* app, Precision prec,
             const std::string& size, double cpu_io_elems, double fpga_s,
             int matrix_modules, PaperRef ref) {
  const double cpu =
      sim::cpu_memory_bound_seconds(cpu_io_elems, bytes_of(prec));
  const double f = sim::composition_frequency(
      matrix_modules, prec, sim::stratix10()).mhz;
  const double fpga_power = composed_power(matrix_modules, prec);
  const double cpu_power = sim::cpu_power_watts(2, prec);
  t.add_row({app, prec == Precision::Single ? "S" : "D", size,
             TablePrinter::fmt(cpu * 1e6, 0) + " us (" +
                 TablePrinter::fmt(ref.cpu_us, 0) + ")",
             TablePrinter::fmt(fpga_s * 1e6, 0) + " us (" +
                 TablePrinter::fmt(ref.fpga_us, 0) + ")",
             TablePrinter::fmt(fpga_s / cpu, 2),
             TablePrinter::fmt(f, 0),
             TablePrinter::fmt(fpga_power, 1),
             TablePrinter::fmt(fpga_s * fpga_power / (cpu * cpu_power), 2)});
}

}  // namespace

int main() {
  std::puts("FBLAS reproduction: Table VI — CPU vs FPGA, composed kernels\n"
            "(paper-measured values in parentheses)\n");
  TablePrinter t({"Appl.", "P", "N", "CPU model (paper)",
                  "FPGA model (paper)", "FPGA/CPU", "F [MHz]", "P [W]",
                  "Energy FPGA/CPU"});
  // AXPYDOT (W = 32 single / 16 double): one pipelined pass over N, the
  // three inputs on separate banks, so one bank's rate dominates. CPU
  // transfers 7N operands.
  for (const auto& [prec, n, ref] :
       {std::tuple{Precision::Single, 4e6, PaperRef{1376, 1101}},
        std::tuple{Precision::Single, 16e6, PaperRef{8556, 3783}},
        std::tuple{Precision::Double, 4e6, PaperRef{4295, 2023}},
        std::tuple{Precision::Double, 16e6, PaperRef{17130, 7297}}}) {
    const int w = prec == Precision::Single ? 32 : 16;
    const double f =
        sim::composition_frequency(0, prec, sim::stratix10()).mhz;
    const double fpga = pass_seconds(n, prec, w, f, /*banks=*/1, 0.88);
    add_row(t, "AXPYDOT", prec, n == 4e6 ? "4M" : "16M", 7 * n, fpga, 0,
            ref);
  }
  // BICG (W = 64, chosen to exploit the 4 DDR banks' bandwidth for A):
  // one pass over N^2; CPU reads A twice.
  for (const auto& [prec, n, ref] :
       {std::tuple{Precision::Single, 2048.0, PaperRef{218, 550}},
        std::tuple{Precision::Single, 8192.0, PaperRef{5796, 5879}},
        std::tuple{Precision::Double, 2048.0, PaperRef{467.8, 795.7}},
        std::tuple{Precision::Double, 8192.0, PaperRef{11724, 9939}}}) {
    const int w = prec == Precision::Single ? 64 : 32;
    const double f =
        sim::composition_frequency(2, prec, sim::stratix10()).mhz;
    const double fpga = pass_seconds(n * n, prec, w, f, /*banks=*/4, 0.8);
    add_row(t, "BICG", prec, n == 2048 ? "2Kx2K" : "8Kx8K",
            2 * n * n + 4 * n, fpga, 2, ref);
  }
  // GEMVER (W = 32 single / 16 double): two sequential components, each a
  // full N^2 pass against a single B bank; CPU does ~8N^2.
  for (const auto& [prec, n, ref] :
       {std::tuple{Precision::Single, 2048.0, PaperRef{895, 2407}},
        std::tuple{Precision::Single, 8192.0, PaperRef{43291, 37094}},
        std::tuple{Precision::Double, 2048.0, PaperRef{4728, 4425}},
        std::tuple{Precision::Double, 8192.0, PaperRef{88160, 64115}}}) {
    const int w = prec == Precision::Single ? 32 : 16;
    const double f =
        sim::composition_frequency(3, prec, sim::stratix10()).mhz;
    const double fpga =
        2.0 * pass_seconds(n * n, prec, w, f, /*banks=*/1, 0.75);
    add_row(t, "GEMVER", prec, n == 2048 ? "2Kx2K" : "8Kx8K",
            8 * n * n + 10 * n, fpga, 3, ref);
  }
  t.print();

  // Tie the model to the simulator with a reduced-size functional pass.
  Workload wl(61);
  const std::int64_t n = 256;
  auto a = wl.matrix<float>(n, n);
  auto p = wl.vector<float>(n);
  auto r = wl.vector<float>(n);
  const auto got = apps::bicg_streaming<float>(
      sim::stratix10(), stream::Mode::Functional, 16, 64,
      MatrixView<const float>(a.data(), n, n),
      VectorView<const float>(p.data(), n),
      VectorView<const float>(r.data(), n));
  const auto expect = apps::bicg_cpu<float>(
      MatrixView<const float>(a.data(), n, n),
      VectorView<const float>(p.data(), n),
      VectorView<const float>(r.data(), n));
  std::printf("\nFunctional cross-check (BICG, 256x256): streaming vs CPU"
              " rel. error %.2e\n",
              std::max(rel_error(got.q, expect.q),
                       rel_error(got.s, expect.s)));
  std::puts("\nShape check (paper): the compositions run at or below CPU"
            " time for the large\nsizes in both precisions; small sizes"
            " favour the CPU (launch/latency overheads).");
  return 0;
}
