// Reproduces Fig. 11: speedup of the streaming compositions over calling
// the modules one-by-one through the host layer, for AXPYDOT, BICG and
// GEMVER across input sizes, plus the Sec. V I/O analysis each speedup
// rests on. Both versions run in the cycle-accurate simulator; speedups
// compare wall-clock times (cycles / achieved frequency, which differs
// between single-module and composed designs).
//
// Sizes are scaled down from the paper's 2M-16M / 1K-8K range so the
// cycle-level simulation stays fast; the speedup is size-stable (see
// EXPERIMENTS.md).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "apps/atax.hpp"
#include "apps/axpydot.hpp"
#include "apps/bicg.hpp"
#include "apps/gemver.hpp"
#include "apps/gesummv.hpp"
#include "common/table_printer.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"
#include "common/workload.hpp"
#include "mdag/io_volume.hpp"
#include "mdag/resources.hpp"
#include "mdag/validity.hpp"
#include "sim/frequency_model.hpp"

namespace {

using namespace fblas;
using stream::Mode;

double seconds(std::uint64_t cycles, double mhz) {
  return static_cast<double>(cycles) / (mhz * 1e6);
}

void run_axpydot() {
  std::puts("== AXPYDOT: z = w - alpha v; beta = z^T u ==");
  TablePrinter t({"Device", "N", "Streaming time", "Host-layer time",
                  "Speedup", "I/O streaming", "I/O host-layer"});
  // The paper reports the Stratix numbers and notes that "similar results
  // hold for the Arria testbed" — both are simulated here.
  for (const auto dev_id : {sim::DeviceId::Stratix10, sim::DeviceId::Arria10}) {
    const auto& dev = sim::device(dev_id);
    const double f_str =
        sim::composition_frequency(0, Precision::Single, dev).mhz;
    const double f_host =
        sim::module_frequency(RoutineKind::Dot, Precision::Single, dev).mhz;
    for (std::int64_t n : {1 << 15, 1 << 16, 1 << 17, 1 << 18}) {
      Workload wl(11);
      auto w = wl.vector<float>(n);
      auto v = wl.vector<float>(n);
      auto u = wl.vector<float>(n);
      const auto streaming = apps::axpydot_streaming<float>(
          dev, Mode::Cycle, 16, VectorView<const float>(w.data(), n),
          VectorView<const float>(v.data(), n),
          VectorView<const float>(u.data(), n), 2.0f);
      host::Device hdev(dev_id);
      host::Context ctx(hdev, Mode::Cycle);
      host::RoutineConfig knobs;
      knobs.width = 16;
      host::ConfigGuard scoped = ctx.with(knobs);
      const auto host = apps::axpydot_host_layer<float>(
          ctx, VectorView<const float>(w.data(), n),
          VectorView<const float>(v.data(), n),
          VectorView<const float>(u.data(), n), 2.0f);
      const double ts = seconds(streaming.cycles, f_str);
      const double th = seconds(host.cycles, f_host);
      t.add_row({dev_id == sim::DeviceId::Arria10 ? "Arria 10" : "Stratix 10",
                 TablePrinter::fmt_int(n), TablePrinter::fmt_time(ts),
                 TablePrinter::fmt_time(th), TablePrinter::fmt(th / ts, 2),
                 TablePrinter::fmt_int(3 * n + 1),
                 TablePrinter::fmt_int(7 * n + 1)});
    }
  }
  t.print();
  std::puts("Paper: expected speedup 3 from the I/O model, measured ~4"
            " because the host-layer\nAXPY reads and writes z through one"
            " DDR bank (reproduced by the bank model).\n");
}

void run_bicg() {
  std::puts("== BICG: q = A p; s = A^T r ==");
  TablePrinter t({"N x N", "Streaming time", "Host-layer time", "Speedup",
                  "A reads streaming", "A reads host-layer"});
  const auto& dev = sim::stratix10();
  const double f_str =
      sim::composition_frequency(2, Precision::Single, dev).mhz;
  const double f_host =
      sim::module_frequency(RoutineKind::Gemv, Precision::Single, dev).mhz;
  for (std::int64_t n : {128, 256, 512}) {
    Workload wl(12);
    auto a = wl.matrix<float>(n, n);
    auto p = wl.vector<float>(n);
    auto r = wl.vector<float>(n);
    const auto streaming = apps::bicg_streaming<float>(
        dev, Mode::Cycle, 16, 64, MatrixView<const float>(a.data(), n, n),
        VectorView<const float>(p.data(), n),
        VectorView<const float>(r.data(), n));
    host::Device hdev(sim::DeviceId::Stratix10);
    host::Context ctx(hdev, Mode::Cycle);
    host::RoutineConfig knobs;
    knobs.width = 16;
    knobs.tile_rows = 64;
    knobs.tile_cols = 64;
    host::ConfigGuard scoped = ctx.with(knobs);
    const auto host = apps::bicg_host_layer<float>(
        ctx, MatrixView<const float>(a.data(), n, n),
        VectorView<const float>(p.data(), n),
        VectorView<const float>(r.data(), n));
    const double ts = seconds(streaming.cycles, f_str);
    const double th = seconds(host.cycles, f_host);
    t.add_row({std::to_string(n) + "x" + std::to_string(n),
               TablePrinter::fmt_time(ts), TablePrinter::fmt_time(th),
               TablePrinter::fmt(th / ts, 2), "1x", "2x"});
  }
  t.print();
  std::puts("Paper: expected 1.7 from halved A traffic, measured <= 1.45"
            " (the composed design\ncloses timing lower than the"
            " single-module GEMV; the frequency model captures this).\n");
}

void run_gemver() {
  std::puts("== GEMVER: B = A + u1 v1^T + u2 v2^T; x = beta B^T y + z;"
            " w = alpha B x ==");
  TablePrinter t({"N x N", "Streaming time", "Host-layer time", "Speedup"});
  const auto& dev = sim::stratix10();
  const double f_str =
      sim::composition_frequency(3, Precision::Single, dev).mhz;
  const double f_host =
      sim::module_frequency(RoutineKind::Gemv, Precision::Single, dev).mhz;
  for (std::int64_t n : {128, 256, 512}) {
    Workload wl(13);
    auto a = wl.matrix<float>(n, n);
    auto u1 = wl.vector<float>(n);
    auto v1 = wl.vector<float>(n);
    auto u2 = wl.vector<float>(n);
    auto v2 = wl.vector<float>(n);
    auto y = wl.vector<float>(n);
    auto z = wl.vector<float>(n);
    auto cv = [n](const std::vector<float>& vec) {
      return VectorView<const float>(vec.data(), n);
    };
    const auto streaming = apps::gemver_streaming<float>(
        dev, Mode::Cycle, 16, 64, 1.5f, 0.5f,
        MatrixView<const float>(a.data(), n, n), cv(u1), cv(v1), cv(u2),
        cv(v2), cv(y), cv(z));
    host::Device hdev(sim::DeviceId::Stratix10);
    host::Context ctx(hdev, Mode::Cycle);
    host::RoutineConfig knobs;
    knobs.width = 16;
    knobs.tile_rows = 64;
    knobs.tile_cols = 64;
    host::ConfigGuard scoped = ctx.with(knobs);
    const auto host = apps::gemver_host_layer<float>(
        ctx, 1.5f, 0.5f, MatrixView<const float>(a.data(), n, n), cv(u1),
        cv(v1), cv(u2), cv(v2), cv(y), cv(z));
    const double ts = seconds(streaming.cycles, f_str);
    const double th = seconds(host.cycles, f_host);
    t.add_row({std::to_string(n) + "x" + std::to_string(n),
               TablePrinter::fmt_time(ts), TablePrinter::fmt_time(th),
               TablePrinter::fmt(th / ts, 2)});
  }
  t.print();
  std::puts("Paper: speedup ~2-3; the two-component schedule cuts I/O from"
            " ~8N^2 to ~3N^2 and\ncompletion from ~5N^2 to ~2N^2 cycles"
            " despite sequentializing the components.\n");
}

// The generic MDAG compiler (host::Context::run_composition) must cost
// nothing over the hand-wired pipelines it replaced: same readers, same
// channel sizing, same fan-outs and zero generators — derived from the
// graph instead of spelled out. Target: < 1% cycle drift per app.
void run_compiled_parity() {
  std::puts("== Composition compiler: cycle parity vs hand-wired designs ==");
  TablePrinter t({"App", "Hand-wired cycles", "Compiled cycles", "Drift"});
  const auto& dev = sim::stratix10();
  const int width = 16;
  const std::int64_t tile = 64;
  double worst = 0.0;
  auto row = [&](const char* name, std::uint64_t hand, std::uint64_t comp) {
    const double drift =
        hand == 0 ? 0.0
                  : 100.0 * std::abs(static_cast<double>(comp) -
                                     static_cast<double>(hand)) /
                        static_cast<double>(hand);
    worst = std::max(worst, drift);
    t.add_row({name, TablePrinter::fmt_int(static_cast<std::int64_t>(hand)),
               TablePrinter::fmt_int(static_cast<std::int64_t>(comp)),
               TablePrinter::fmt(drift, 3) + "%"});
  };
  auto make_ctx = [&] {
    host::RoutineConfig knobs;
    knobs.width = width;
    knobs.tile_rows = tile;
    knobs.tile_cols = tile;
    return knobs;
  };

  {  // AXPYDOT
    const std::int64_t n = 1 << 15;
    Workload wl(15);
    auto w = wl.vector<float>(n);
    auto v = wl.vector<float>(n);
    auto u = wl.vector<float>(n);
    const auto hand = apps::axpydot_streaming<float>(
        dev, Mode::Cycle, width, VectorView<const float>(w.data(), n),
        VectorView<const float>(v.data(), n),
        VectorView<const float>(u.data(), n), 2.0f);
    host::Device hdev(sim::DeviceId::Stratix10);
    host::Context ctx(hdev, Mode::Cycle);
    host::ConfigGuard scoped = ctx.with(make_ctx());
    host::Buffer<float> bw(hdev, n, 0);
    host::Buffer<float> bv(hdev, n, 1 % hdev.bank_count());
    host::Buffer<float> bu(hdev, n, 2 % hdev.bank_count());
    bw.write(w);
    bv.write(v);
    bu.write(u);
    apps::axpydot_composed<float>(ctx, n, bw, bv, bu, 2.0f);
    row("AXPYDOT", hand.cycles, ctx.total_cycles());
  }

  {  // ATAX (compiler sizes the A channel to the Sec. V-B bound itself)
    const std::int64_t n = 256, m = 256;
    Workload wl(16);
    auto a = wl.matrix<float>(n, m);
    auto x = wl.vector<float>(m);
    const auto hand = apps::atax_streaming<float>(
        dev, Mode::Cycle, width, tile,
        apps::atax_min_channel_depth(m, tile, width),
        MatrixView<const float>(a.data(), n, m),
        VectorView<const float>(x.data(), m));
    host::Device hdev(sim::DeviceId::Stratix10);
    host::Context ctx(hdev, Mode::Cycle);
    host::ConfigGuard scoped = ctx.with(make_ctx());
    host::Buffer<float> ba(hdev, n * m, 0);
    host::Buffer<float> bx(hdev, m, 1 % hdev.bank_count());
    host::Buffer<float> by(hdev, m, 2 % hdev.bank_count());
    ba.write(a);
    bx.write(x);
    by.write(std::vector<float>(static_cast<std::size_t>(m), 0.0f));
    apps::atax_composed<float>(ctx, n, m, ba, bx, by);
    row("ATAX", hand.cycles, ctx.total_cycles());
  }

  {  // BICG
    const std::int64_t n = 256, m = 256;
    Workload wl(17);
    auto a = wl.matrix<float>(n, m);
    auto p = wl.vector<float>(m);
    auto r = wl.vector<float>(n);
    const auto hand = apps::bicg_streaming<float>(
        dev, Mode::Cycle, width, tile, MatrixView<const float>(a.data(), n, m),
        VectorView<const float>(p.data(), m),
        VectorView<const float>(r.data(), n));
    host::Device hdev(sim::DeviceId::Stratix10);
    host::Context ctx(hdev, Mode::Cycle);
    host::ConfigGuard scoped = ctx.with(make_ctx());
    host::Buffer<float> ba(hdev, n * m, 0);
    host::Buffer<float> bp(hdev, m, 1 % hdev.bank_count());
    host::Buffer<float> br(hdev, n, 2 % hdev.bank_count());
    host::Buffer<float> bq(hdev, n, 3 % hdev.bank_count());
    host::Buffer<float> bs(hdev, m, 3 % hdev.bank_count());
    ba.write(a);
    bp.write(p);
    br.write(r);
    bq.write(std::vector<float>(static_cast<std::size_t>(n), 0.0f));
    bs.write(std::vector<float>(static_cast<std::size_t>(m), 0.0f));
    apps::bicg_composed<float>(ctx, n, m, ba, bp, br, bq, bs);
    row("BICG", hand.cycles, ctx.total_cycles());
  }

  {  // GESUMMV (non-multitree kept streaming by channel sizing)
    const std::int64_t n = 256, m = 256;
    Workload wl(18);
    auto a = wl.matrix<float>(n, m);
    auto b = wl.matrix<float>(n, m);
    auto x = wl.vector<float>(m);
    const auto hand = apps::gesummv_streaming<float>(
        dev, Mode::Cycle, width, tile, 1.5f, -0.5f,
        MatrixView<const float>(a.data(), n, m),
        MatrixView<const float>(b.data(), n, m),
        VectorView<const float>(x.data(), m));
    host::Device hdev(sim::DeviceId::Stratix10);
    host::Context ctx(hdev, Mode::Cycle);
    host::ConfigGuard scoped = ctx.with(make_ctx());
    host::Buffer<float> ba(hdev, n * m, 0);
    host::Buffer<float> bb(hdev, n * m, 1 % hdev.bank_count());
    host::Buffer<float> bx(hdev, m, 2 % hdev.bank_count());
    host::Buffer<float> by(hdev, n, 3 % hdev.bank_count());
    ba.write(a);
    bb.write(b);
    bx.write(x);
    by.write(std::vector<float>(static_cast<std::size_t>(n), 0.0f));
    apps::gesummv_composed<float>(ctx, n, m, 1.5f, -0.5f, ba, bb, bx, by);
    row("GESUMMV", hand.cycles, ctx.total_cycles());
  }

  {  // GEMVER (Fig. 9 two-component split, B and x round-trip DRAM)
    const std::int64_t n = 256;
    Workload wl(19);
    auto a = wl.matrix<float>(n, n);
    auto u1 = wl.vector<float>(n);
    auto v1 = wl.vector<float>(n);
    auto u2 = wl.vector<float>(n);
    auto v2 = wl.vector<float>(n);
    auto y = wl.vector<float>(n);
    auto z = wl.vector<float>(n);
    auto cv = [n](const std::vector<float>& vec) {
      return VectorView<const float>(vec.data(), n);
    };
    const auto hand = apps::gemver_streaming<float>(
        dev, Mode::Cycle, width, tile, 1.5f, 0.5f,
        MatrixView<const float>(a.data(), n, n), cv(u1), cv(v1), cv(u2),
        cv(v2), cv(y), cv(z));
    host::Device hdev(sim::DeviceId::Stratix10);
    host::Context ctx(hdev, Mode::Cycle);
    host::ConfigGuard scoped = ctx.with(make_ctx());
    const int banks = hdev.bank_count();
    host::Buffer<float> ba(hdev, n * n, 0);
    host::Buffer<float> bu1(hdev, n, 1 % banks), bv1(hdev, n, 2 % banks);
    host::Buffer<float> bu2(hdev, n, 3 % banks), bv2(hdev, n, 1 % banks);
    host::Buffer<float> byv(hdev, n, 2 % banks), bz(hdev, n, 3 % banks);
    host::Buffer<float> bB(hdev, n * n, 1 % banks);
    host::Buffer<float> bx(hdev, n, 2 % banks), bwv(hdev, n, 3 % banks);
    ba.write(a);
    bu1.write(u1);
    bv1.write(v1);
    bu2.write(u2);
    bv2.write(v2);
    byv.write(y);
    bz.write(z);
    const std::vector<float> zn(static_cast<std::size_t>(n), 0.0f);
    bB.write(std::vector<float>(static_cast<std::size_t>(n * n), 0.0f));
    bx.write(zn);
    bwv.write(zn);
    apps::gemver_composed<float>(ctx, n, 1.5f, 0.5f, ba, bu1, bv1, bu2, bv2,
                                 byv, bz, bB, bx, bwv);
    row("GEMVER", hand.cycles, ctx.total_cycles());
  }

  t.print();
  std::printf("Worst drift %.3f%% (target < 1%%): the compiled plans spawn"
              " the same module\npipelines the hand-wired versions did —"
              " the graph description costs nothing.\n\n",
              worst);
}

void run_analysis() {
  std::puts("== Sec. V MDAG analysis (N = 4096, tiles 64) ==");
  const std::int64_t n = 4096;
  TablePrinter t({"Composition", "Valid", "Multitree", "I/O ops",
                  "Diagnosis"});
  const auto axpy = apps::axpydot_mdag(n);
  const auto bicg = apps::bicg_mdag(n, n, 64);
  const auto atax = apps::atax_mdag(n, n, 64);
  const auto gemver = apps::gemver_mdag(n, 64);
  auto add = [&](const char* name, const mdag::Mdag& g, const char* note) {
    const auto v = mdag::validate(g);
    t.add_row({name, v.valid ? "yes" : "NO",
               mdag::is_multitree(g) ? "yes" : "no",
               TablePrinter::fmt_int(mdag::total_io_ops(g)), note});
  };
  add("AXPYDOT", axpy, "3N+1 (vs 7N host-layer)");
  add("BICG", bicg, "A read once");
  add("ATAX", atax, "needs channel >= M*TN or a split");
  add("GEMVER (full)", gemver, "runs as 2 sequential components");
  t.print();

  // Sec. VI-C resource note: compositions drop the interface kernels of
  // their internal edges; the paper measures up to -40% vs the
  // non-streamed designs (our model spans ~15-50% across the three apps,
  // growing with the number of internal edges).
  std::puts("\nResource savings of composition (design resources, shell"
            " excluded):");
  for (const auto& [name, graph] :
       {std::pair<const char*, const mdag::Mdag*>{"AXPYDOT", &axpy},
        std::pair<const char*, const mdag::Mdag*>{"BICG", &bicg},
        std::pair<const char*, const mdag::Mdag*>{"GEMVER", &gemver}}) {
    const auto cmp = mdag::composition_resource_savings(
        *graph, Precision::Single, 16, sim::stratix10());
    std::printf("  %-8s %.0f%% fewer ALMs than the one-by-one designs\n",
                name, 100.0 * cmp.saving_fraction);
  }
  // The ATAX deadlock, demonstrated live.
  Workload wl(14);
  const std::int64_t an = 64, am = 48, tile = 16;
  auto a = wl.matrix<float>(an, am);
  auto x = wl.vector<float>(am);
  bool deadlocked = false;
  try {
    apps::atax_streaming<float>(sim::stratix10(), Mode::Functional, 4, tile,
                                /*a_channel_depth=*/tile,
                                MatrixView<const float>(a.data(), an, am),
                                VectorView<const float>(x.data(), am));
  } catch (const DeadlockError&) {
    deadlocked = true;
  }
  const auto ok = apps::atax_streaming<float>(
      sim::stratix10(), Mode::Functional, 4, tile,
      apps::atax_min_channel_depth(am, tile, 4),
      MatrixView<const float>(a.data(), an, am),
      VectorView<const float>(x.data(), am));
  std::printf("\nATAX live check: undersized A channel -> %s;"
              " channel >= M*TN -> completes (%zu outputs).\n",
              deadlocked ? "stalls forever (DeadlockError)" : "UNEXPECTED",
              ok.y.size());
}

}  // namespace

int main() {
  std::puts("FBLAS reproduction: Fig. 11 — streaming composition speedups\n");
  run_axpydot();
  run_bicg();
  run_gemver();
  run_compiled_parity();
  run_analysis();
  return 0;
}
