// Reproduces Fig. 10 (left): DOT performance versus vectorization width
// (16..256) in single and double precision on both devices, with data
// generated on chip (no DRAM ceiling). For every point the harness
// prints the analytic model at the paper's N = 100M and validates the
// model against the cycle-accurate simulator at a reduced N.
#include <cstdio>

#include "common/table_printer.hpp"
#include "fblas/level1.hpp"
#include "sim/perf_model.hpp"
#include "sim/resource_model.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace {

using namespace fblas;

/// Cycle-simulates a DOT module at width w over n on-chip elements.
std::uint64_t simulate_dot_cycles(int w, std::int64_t n) {
  stream::Graph g(stream::Mode::Cycle);
  auto& cx = g.channel<float>("x", static_cast<std::size_t>(4 * w));
  auto& cy = g.channel<float>("y", static_cast<std::size_t>(4 * w));
  auto& res = g.channel<float>("res", 2);
  std::vector<float> out;
  g.spawn("gen_x", stream::generate<float>(n, 1.0f, w, cx));
  g.spawn("gen_y", stream::generate<float>(n, 2.0f, w, cy));
  g.spawn("dot", core::dot<float>({w}, n, cx, cy, res));
  g.spawn("collect", stream::collect<float>(1, res, out));
  g.run();
  return g.cycles();
}

}  // namespace

int main() {
  std::puts("FBLAS reproduction: Fig. 10 (left) — DOT scaling\n");
  const std::int64_t kPaperN = 100'000'000;
  TablePrinter t({"Device", "Precision", "W", "GOps/s (model)",
                  "Expected GOps/s", "Freq [MHz]", "Feasible"});
  for (const auto* dev : {&sim::arria10(), &sim::stratix10()}) {
    for (const Precision prec : {Precision::Single, Precision::Double}) {
      for (int w = 16; w <= 256; w *= 2) {
        const sim::ModuleShape shape{RoutineKind::Dot, prec, w, 0, 0, 0, 0};
        const bool ok = sim::place_and_route_feasible(shape, *dev);
        if (!ok) {
          t.add_row({std::string(dev->name), std::string(to_string(prec)),
                     TablePrinter::fmt_int(w), "-", "-", "-",
                     "no (P&R fails)"});
          continue;
        }
        const auto timing =
            sim::level1_timing(RoutineKind::Dot, prec, w, kPaperN, *dev);
        t.add_row({std::string(dev->name), std::string(to_string(prec)),
                   TablePrinter::fmt_int(w), TablePrinter::fmt(timing.gops, 1),
                   TablePrinter::fmt(timing.expected_gops, 1),
                   TablePrinter::fmt(timing.freq_mhz, 0) +
                       (timing.hyperflex ? " (HyperFlex)" : ""),
                   "yes"});
      }
    }
  }
  t.print();

  std::puts("\nModel validation: cycle-accurate simulation vs C = CD + N/W"
            " (single precision, reduced N = 2^20):");
  TablePrinter v({"W", "Simulated cycles", "Model cycles", "Ratio"});
  const std::int64_t n = 1 << 20;
  for (int w : {16, 64, 256}) {
    const auto sim_cycles = simulate_dot_cycles(w, n);
    const auto model = sim::level1_timing(RoutineKind::Dot, Precision::Single,
                                          w, n, sim::stratix10());
    v.add_row({TablePrinter::fmt_int(w),
               TablePrinter::fmt_int(static_cast<std::int64_t>(sim_cycles)),
               TablePrinter::fmt(model.cycles, 0),
               TablePrinter::fmt(static_cast<double>(sim_cycles) /
                                     model.cycles, 3)});
  }
  v.print();
  std::puts("\nShape check (paper): curves track the expected-performance"
            " bars; double precision\nis capped at W = 128 by"
            " placement/routing on both devices.");
  return 0;
}
