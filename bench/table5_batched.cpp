// Reproduces Table V: fully-unrolled small-size GEMM and TRSM (size 4)
// against the CPU's batched routines, for 8K and 32K invocations. The
// fully-unrolled circuits start a new problem every cycle, so the run is
// DRAM-bound end to end; a correctness pass also runs the actual batched
// reference routines at a reduced batch count.
#include <chrono>
#include <cstdio>

#include "common/table_printer.hpp"
#include "common/workload.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"
#include "refblas/batched.hpp"
#include "sim/cpu_model.hpp"
#include "sim/perf_model.hpp"

namespace {

using namespace fblas;
using Clock = std::chrono::steady_clock;

struct PaperRef {
  double cpu_us, fpga_us;
};

void run_kind(RoutineKind kind, const char* name) {
  std::printf("== Batched %s, matrices of size 4 ==\n", name);
  TablePrinter t({"P", "Batch", "CPU model (paper)", "FPGA model (paper)",
                  "FPGA/CPU", "F [MHz]"});
  // Paper Table V reference values in usec.
  auto paper = [&](Precision p, std::int64_t batch) -> PaperRef {
    if (kind == RoutineKind::Gemm) {
      if (p == Precision::Single) {
        return batch == 8192 ? PaperRef{128.2, 144.7} : PaperRef{457.4, 275.3};
      }
      return batch == 8192 ? PaperRef{108.3, 187.52} : PaperRef{404.9, 461.0};
    }
    if (p == Precision::Single) {
      return batch == 8192 ? PaperRef{248.4, 144.0} : PaperRef{749.9, 341.6};
    }
    return batch == 8192 ? PaperRef{248.4, 184.1} : PaperRef{731.6, 589.2};
  };
  for (const Precision prec : {Precision::Single, Precision::Double}) {
    for (const std::int64_t batch : {std::int64_t{8192}, std::int64_t{32768}}) {
      const auto fpga = sim::batched_unrolled_timing(kind, prec, 4, batch,
                                                     sim::stratix10());
      const double cpu = sim::cpu_batched_seconds(kind, prec, 4, batch);
      const auto ref = paper(prec, batch);
      t.add_row({prec == Precision::Single ? "S" : "D",
                 batch == 8192 ? "8K" : "32K",
                 TablePrinter::fmt(cpu * 1e6, 1) + " us (" +
                     TablePrinter::fmt(ref.cpu_us, 1) + ")",
                 TablePrinter::fmt(fpga.seconds * 1e6, 1) + " us (" +
                     TablePrinter::fmt(ref.fpga_us, 1) + ")",
                 TablePrinter::fmt(fpga.seconds / cpu, 2),
                 TablePrinter::fmt(fpga.freq_mhz, 0) +
                     (fpga.hyperflex ? " (HyperFlex)" : "")});
    }
  }
  t.print();
  std::puts("");
}

}  // namespace

int main() {
  std::puts("FBLAS reproduction: Table V — batched fully-unrolled routines"
            "\n(paper-measured values in parentheses)\n");
  run_kind(RoutineKind::Gemm, "GEMM");
  run_kind(RoutineKind::Trsm, "TRSM");

  // Correctness pass: the reference batched routines at batch = 512.
  Workload wl(31);
  const std::int64_t batch = 512, n = 4;
  auto a = wl.vector<float>(batch * n * n);
  auto b = wl.vector<float>(batch * n * n);
  std::vector<float> c(batch * n * n, 0.0f);
  const auto t0 = Clock::now();
  ref::gemm_batched<float>(batch, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
  const double local =
      std::chrono::duration<double>(Clock::now() - t0).count();
  double checksum = 0;
  for (float x : c) checksum += x;
  std::printf("Local correctness pass: %lld x %lldx%lld sgemm_batched in"
              " %.1f us (checksum %.3f)\n",
              static_cast<long long>(batch), static_cast<long long>(n),
              static_cast<long long>(n), local * 1e6, checksum);

  // Cycle-level validation: the fully-unrolled streaming module through
  // the host API retires ~one problem per cycle, and the run is DRAM
  // bound — the two properties the Table V model rests on.
  {
    host::Device dev(sim::DeviceId::Stratix10);
    host::Context ctx(dev, stream::Mode::Cycle);
    host::Buffer<float> ba(dev, batch * n * n, 0);
    host::Buffer<float> bb(dev, batch * n * n, 1);
    host::Buffer<float> bc(dev, batch * n * n, 2);
    ba.write(a);
    bb.write(b);
    ctx.gemm_batched<float>(n, batch, 1.0f, ba, bb, bc);
    const double err = rel_error(bc.to_host(), c);
    std::printf("Cycle simulation (host API, batch %lld): %llu cycles ="
                " %.2f cycles/problem, rel. error %.1e\n",
                static_cast<long long>(batch),
                static_cast<unsigned long long>(ctx.last_cycles()),
                static_cast<double>(ctx.last_cycles()) /
                    static_cast<double>(batch),
                err);
  }
  std::puts("\nShape check (paper): at large batch counts the DRAM-bound"
            " FPGA circuits out-run the\nCPU's batched routines, provided"
            " enough memory bandwidth is available.");
  return 0;
}
