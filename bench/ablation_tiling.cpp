// Ablation: the tiling design choices behind Sec. III-B / IV-B.
// (1) GEMV streaming scheme (tiles by rows vs by columns) and tile size
//     determine which operand is replayed and the total DRAM I/O — the
//     two Fig. 2 implementations, quantified.
// (2) The same choice measured in the cycle simulator with bank-metered
//     readers: larger tiles cut the replay traffic and the cycle count.
#include <cstdio>

#include "common/table_printer.hpp"
#include "common/workload.hpp"
#include "fblas/level2.hpp"
#include "sim/device.hpp"
#include "sim/frequency_model.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace {

using namespace fblas;

std::uint64_t simulate(const core::GemvConfig& cfg, std::int64_t n) {
  Workload wl(3);
  auto a = wl.matrix<float>(n, n);
  auto x = wl.vector<float>(n);
  auto y = wl.vector<float>(n);
  stream::Graph g(stream::Mode::Cycle);
  const auto f = sim::module_frequency(RoutineKind::Gemv, Precision::Single,
                                       sim::stratix10());
  const double bpc = sim::stratix10().bank_bandwidth_gbs * 1e9 / (f.mhz * 1e6);
  auto& bank_a = g.bank("ddr0", bpc);
  auto& bank_v = g.bank("ddr1", bpc);
  auto& ca = g.channel<float>("A", 128);
  auto& cx = g.channel<float>("x", 128);
  auto& cy = g.channel<float>("y", 128);
  auto& out = g.channel<float>("out", 128);
  g.spawn("read_A",
          stream::read_matrix<float>(MatrixView<const float>(a.data(), n, n),
                                     core::gemv_a_schedule(cfg), 1, cfg.width,
                                     ca, &bank_a));
  g.spawn("read_x", stream::read_vector<float>(
                        VectorView<const float>(x.data(), n),
                        core::gemv_x_repeat(cfg, n, n), cfg.width, cx,
                        &bank_v));
  g.spawn("read_y", stream::read_vector<float>(
                        VectorView<const float>(y.data(), n), 1, cfg.width,
                        cy, &bank_v));
  g.spawn("gemv",
          core::gemv<float>(cfg, n, n, 1.0f, 0.0f, ca, cx, cy, out));
  g.spawn("sink", stream::sink<float>(n, cfg.width, out));
  g.run();
  return g.cycles();
}

}  // namespace

int main() {
  std::puts("FBLAS ablation: GEMV tiling scheme and tile size\n");
  const std::int64_t N = 4096;
  std::puts("== I/O operations (model, N = M = 4096) ==");
  TablePrinter t({"Scheme", "Tile", "x replays", "y DRAM passes", "I/O ops",
                  "vs untiled"});
  const core::GemvConfig untiled{Transpose::None,
                                 core::MatrixTiling::TilesByRows, 16, 1, N};
  const double base = static_cast<double>(core::gemv_io_ops(untiled, N, N));
  for (const auto tiling :
       {core::MatrixTiling::TilesByRows, core::MatrixTiling::TilesByCols}) {
    for (std::int64_t tile : {64L, 256L, 1024L, 4096L}) {
      const core::GemvConfig cfg{Transpose::None, tiling, 16, tile, tile};
      const auto io = core::gemv_io_ops(cfg, N, N);
      t.add_row({tiling == core::MatrixTiling::TilesByRows ? "by rows"
                                                           : "by cols",
                 TablePrinter::fmt_int(tile),
                 TablePrinter::fmt_int(core::gemv_x_repeat(cfg, N, N)),
                 TablePrinter::fmt_int(core::gemv_y_repeat(cfg, N, N)),
                 TablePrinter::fmt_int(io),
                 TablePrinter::fmt(static_cast<double>(io) / base, 3)});
    }
  }
  t.print();
  std::puts("\nBy-rows I/O shrinks with the *vertical* tile size (fewer x"
            " replays); by-cols with\nthe *horizontal* one (fewer y round"
            " trips) — exactly the Sec. III-B formulas.");

  std::puts("\n== Cycle simulation with bank-metered readers"
            " (N = 1024, W = 16) ==");
  TablePrinter s({"Scheme", "Tile", "Cycles", "vs best"});
  std::uint64_t best = ~0ull;
  struct Row {
    const char* scheme;
    std::int64_t tile;
    std::uint64_t cycles;
  };
  std::vector<Row> rows;
  for (const auto tiling :
       {core::MatrixTiling::TilesByRows, core::MatrixTiling::TilesByCols}) {
    for (std::int64_t tile : {32L, 128L, 512L}) {
      const core::GemvConfig cfg{Transpose::None, tiling, 16, tile, tile};
      const auto cycles = simulate(cfg, 1024);
      rows.push_back({tiling == core::MatrixTiling::TilesByRows ? "by rows"
                                                                : "by cols",
                      tile, cycles});
      best = std::min(best, cycles);
    }
  }
  for (const auto& r : rows) {
    s.add_row({r.scheme, TablePrinter::fmt_int(r.tile),
               TablePrinter::fmt_int(static_cast<std::int64_t>(r.cycles)),
               TablePrinter::fmt(static_cast<double>(r.cycles) /
                                     static_cast<double>(best), 3)});
  }
  s.print();
  std::puts("\nSmall tiles replay vectors through the DDR bank and throttle"
            " the pipeline; once\nthe replay traffic fits the spare"
            " bandwidth, all schemes converge to N*M/W cycles.");
  return 0;
}
