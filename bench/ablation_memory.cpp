// Ablation: memory technology vs module dimensioning (Sec. IV-B carried
// to the "faster memory interfaces (e.g., HBM)" the paper anticipates).
// For DOT and GEMV, computes the optimal vectorization width under one
// DDR bank, all DDR banks interleaved, and an HBM2 part, then checks
// whether the required width still places-and-routes and what expected
// performance it buys.
#include <cstdio>

#include "common/table_printer.hpp"
#include "sim/device.hpp"
#include "sim/frequency_model.hpp"
#include "sim/perf_model.hpp"
#include "sim/resource_model.hpp"

int main() {
  using namespace fblas;
  std::puts("FBLAS ablation: dimensioning modules against the memory"
            " interface\n");
  TablePrinter t({"Routine", "Memory", "B [GB/s]", "Optimal W",
                  "Feasible W", "Expected GOps/s", "DSPs"});
  struct Mem {
    const char* name;
    const sim::DeviceSpec* dev;
    double bandwidth;
  };
  const Mem mems[] = {
      {"1x DDR4 bank", &sim::stratix10(), sim::stratix10().bank_bandwidth_gbs},
      {"4x DDR4 interleaved", &sim::stratix10(),
       sim::stratix10().total_bandwidth_gbs()},
      {"HBM2 (32 channels)", &sim::stratix10mx(),
       sim::stratix10mx().total_bandwidth_gbs()},
  };
  for (const RoutineKind kind : {RoutineKind::Dot, RoutineKind::Gemv}) {
    const auto& info = routine_info(kind);
    for (const Mem& mem : mems) {
      const auto f = sim::module_frequency(kind, Precision::Single, *mem.dev);
      const int w_opt = sim::optimal_width(mem.bandwidth, f.mhz, 4,
                                           info.operands_per_width);
      // Clamp to the largest width that still routes.
      int w = 1;
      while (2 * w <= w_opt) w *= 2;
      if (w < w_opt) w *= 2;  // round up to the next power of two
      while (w > 1 &&
             !sim::place_and_route_feasible(
                 sim::ModuleShape{kind, Precision::Single, w, 1024, 1024, 0,
                                  0},
                 *mem.dev)) {
        w /= 2;
      }
      const auto timing =
          sim::level1_timing(kind, Precision::Single, w, 100'000'000,
                             *mem.dev);
      const auto res = sim::estimate_design(
          sim::ModuleShape{kind, Precision::Single, w, 1024, 1024, 0, 0},
          *mem.dev);
      t.add_row({std::string(info.name), mem.name,
                 TablePrinter::fmt(mem.bandwidth, 1),
                 TablePrinter::fmt_int(w_opt), TablePrinter::fmt_int(w),
                 TablePrinter::fmt(timing.expected_gops, 1),
                 TablePrinter::fmt(res.dsps, 0)});
    }
  }
  t.print();
  std::puts("\nReading: a single DDR bank is saturated by W <= 16 — wider"
            " modules waste\nresources (the paper's under/over-provisioning"
            " argument). Full interleaving and\nHBM push the optimum toward"
            " the W = 256 designs of Fig. 10, which is why the\npaper"
            " evaluates those widths with on-chip data generation.");

  std::puts("\n== Tiled GEMV: optimal width vs tile size under HBM ==");
  TablePrinter s({"Tile", "Optimal W (1 DDR bank)", "Optimal W (HBM)"});
  for (std::int64_t tile : {1L, 16L, 256L, 2048L}) {
    const auto f = sim::module_frequency(RoutineKind::Gemv,
                                         Precision::Single, sim::stratix10());
    s.add_row({TablePrinter::fmt_int(tile),
               TablePrinter::fmt_int(sim::optimal_width_tiled(
                   sim::stratix10().bank_bandwidth_gbs, f.mhz, 4, tile,
                   tile)),
               TablePrinter::fmt_int(sim::optimal_width_tiled(
                   sim::stratix10mx().total_bandwidth_gbs(), f.mhz, 4, tile,
                   tile))});
  }
  s.print();
  return 0;
}
