// ABFT result-verification benchmark for the host runtime. Two questions:
//
//   1. Overhead: how much wall-clock time does VerifyPolicy::Always add
//      to GEMM / GEMV / Level-1 calls over VerifyPolicy::Off?
//      (Criterion: < 5% for Always-on GEMM. The checkers are one or two
//      O(n^2) checksum passes against the routine's O(n^3) work, so the
//      gap should widen with problem size.)
//   2. Protection: with silent corruption injected at 5%, the unverified
//      run completes "Ok" with wrong bits, while Always catches every
//      SDC and recovers bit-identically through the retry machinery.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/atax.hpp"
#include "common/table_printer.hpp"
#include "common/workload.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"
#include "verify/options.hpp"
#include "verify/policy.hpp"

namespace {

using namespace fblas;
using Clock = std::chrono::steady_clock;

constexpr std::int64_t kDim = 192;    // GEMM/GEMV matrix dimension
constexpr std::int64_t kVec = 1 << 15;  // Level-1 vector length
constexpr int kReps = 5;

double median_ms(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Wall-clock median of `body` (which enqueues work and finishes the
/// context) across kReps runs under the given verification policy.
template <typename Body>
double time_policy(verify::VerifyPolicy vp, Body&& body) {
  std::vector<double> ms;
  for (int rep = 0; rep < kReps; ++rep) {
    host::Device dev;
    host::Context ctx(dev);
    ctx.config().verification.policy(vp);
    const auto t0 = Clock::now();
    body(dev, ctx);
    const auto t1 = Clock::now();
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return median_ms(std::move(ms));
}

void overhead_table() {
  std::puts("== ABFT verification overhead (wall clock, functional mode) ==");
  TablePrinter t({"Routine", "Off ms", "Sampled ms", "Always ms",
                  "Always overhead"});
  Workload wl(91);
  const auto ha = wl.matrix<float>(kDim, kDim);
  const auto hb = wl.matrix<float>(kDim, kDim);
  const auto hc = wl.matrix<float>(kDim, kDim);
  const auto hx = wl.vector<float>(kVec);
  const auto hy = wl.vector<float>(kVec);

  struct Row {
    const char* name;
    std::function<void(host::Device&, host::Context&)> body;
  };
  const std::vector<Row> rows = {
      {"gemm 192^3",
       [&](host::Device& dev, host::Context& ctx) {
         host::Buffer<float> a(dev, kDim * kDim, 0), b(dev, kDim * kDim, 1),
             c(dev, kDim * kDim, 2);
         a.write(ha);
         b.write(hb);
         c.write(hc);
         ctx.gemm<float>(Transpose::None, Transpose::None, kDim, kDim, kDim,
                         1.0f, a, b, 0.5f, c);
       }},
      {"gemv 192^2 x8",
       [&](host::Device& dev, host::Context& ctx) {
         host::Buffer<float> a(dev, kDim * kDim, 0), x(dev, kDim, 1),
             y(dev, kDim, 2);
         a.write(ha);
         x.write(wl.vector<float>(kDim));
         y.write(wl.vector<float>(kDim));
         for (int i = 0; i < 8; ++i) {
           ctx.gemv<float>(Transpose::None, kDim, kDim, 1.0f, a, x, 0.5f, y);
         }
       }},
      {"axpy 32K x8",
       [&](host::Device& dev, host::Context& ctx) {
         host::Buffer<float> x(dev, kVec, 0), y(dev, kVec, 1);
         x.write(hx);
         y.write(hy);
         for (int i = 0; i < 8; ++i) ctx.axpy<float>(kVec, 0.5f, x, y);
       }},
      {"dot 32K x8",
       [&](host::Device& dev, host::Context& ctx) {
         host::Buffer<float> x(dev, kVec, 0), y(dev, kVec, 1);
         x.write(hx);
         y.write(hy);
         for (int i = 0; i < 8; ++i) (void)ctx.dot<float>(kVec, x, y);
       }},
  };
  for (const auto& row : rows) {
    const double off = time_policy(verify::VerifyPolicy::Off, row.body);
    const double sampled =
        time_policy(verify::VerifyPolicy::Sampled, row.body);
    const double always = time_policy(verify::VerifyPolicy::Always, row.body);
    t.add_row({row.name, TablePrinter::fmt(off, 2),
               TablePrinter::fmt(sampled, 2), TablePrinter::fmt(always, 2),
               TablePrinter::fmt(100.0 * (always - off) / off, 1) + "%"});
  }
  t.print();
  std::puts("Criterion: Always-on GEMM < 5%. The checksum passes are"
            " O(n^2) against the\nroutine's O(n^3) work, so overhead"
            " shrinks as problems grow; Level-1 pays\nmore relatively"
            " (the check is the same O(n) as the routine) but those"
            "\ncalls are cheap in absolute terms.\n");
}

void composition_overhead() {
  // The checksum-carrying composition: Always-on per-edge verification of
  // the composed ATAX command vs the same command unverified.
  //
  // The deployment metric is DEVICE CYCLES (makespan): on the FPGA the
  // checksum taps are adders sitting beside the datapath — they observe
  // every value crossing a channel without ever stalling the stream, so
  // the verified composition must cost the same cycles as the unverified
  // one. The criterion (< 5%) is on that metric. Wall clock in the
  // functional simulator is also reported: its gap is the cost of
  // simulating those adders in software (one double-accumulate per push)
  // plus the O(nm) host-side pullback predictions, which a real
  // deployment overlaps with device execution.
  std::puts("== Composition overhead: composed ATAX, per-edge checksums ==");
  const std::int64_t n = 128, m = 128;
  Workload wl(93);
  const auto ha = wl.matrix<float>(n, m);
  const auto hx = wl.vector<float>(m);

  auto run_composed = [&](stream::Mode mode, const verify::Options& vo) {
    std::vector<double> ms;
    std::uint64_t cycles = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      host::Device dev;
      host::Context ctx(dev, mode);
      ctx.config().verification = vo;
      host::Buffer<float> a(dev, n * m, 0), x(dev, m, 1), y(dev, m, 2);
      a.write(ha);
      x.write(hx);
      y.write(std::vector<float>(static_cast<std::size_t>(m), 0.0f));
      const auto t0 = Clock::now();
      apps::atax_composed<float>(ctx, n, m, a, x, y);
      const auto t1 = Clock::now();
      ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
      cycles = ctx.exec_stats().makespan_cycles;
    }
    return std::make_pair(median_ms(std::move(ms)), cycles);
  };

  const auto [cyc_off_ms, cyc_off] =
      run_composed(stream::Mode::Cycle, verify::Options::off());
  const auto [cyc_on_ms, cyc_on] =
      run_composed(stream::Mode::Cycle, verify::Options::always());
  const auto [fun_off_ms, fun_off_cycles] =
      run_composed(stream::Mode::Functional, verify::Options::off());
  const auto [fun_on_ms, fun_on_cycles] =
      run_composed(stream::Mode::Functional, verify::Options::always());
  (void)cyc_off_ms;
  (void)cyc_on_ms;
  (void)fun_off_cycles;
  (void)fun_on_cycles;

  TablePrinter t({"Metric", "Off", "Always", "Always overhead"});
  t.add_row({"device cycles (atax 128x128)",
             TablePrinter::fmt_int(static_cast<std::int64_t>(cyc_off)),
             TablePrinter::fmt_int(static_cast<std::int64_t>(cyc_on)),
             TablePrinter::fmt(
                 100.0 * (static_cast<double>(cyc_on) -
                          static_cast<double>(cyc_off)) /
                     static_cast<double>(cyc_off),
                 1) +
                 "%"});
  t.add_row({"sim wall clock ms (atax 128x128)",
             TablePrinter::fmt(fun_off_ms, 2), TablePrinter::fmt(fun_on_ms, 2),
             TablePrinter::fmt(100.0 * (fun_on_ms - fun_off_ms) / fun_off_ms,
                               1) +
                 "%"});
  t.print();
  std::puts("Criterion: < 5% in device cycles. The taps never stall the"
            " stream and the\npredictions are flat host passes over the DRAM"
            " inputs — no intermediate is\nmaterialized. The simulator's"
            " wall-clock gap prices the per-push software\naccumulate that"
            " hardware gets for free.\n");
}

void protection_demo() {
  std::puts("== Protection: 5% silent corruption, GEMM batch ==");
  const std::int64_t d = 96;
  Workload wl(92);
  const auto ha = wl.matrix<float>(d, d);
  const auto hb = wl.matrix<float>(d, d);
  const auto hc = wl.matrix<float>(d, d);

  auto run = [&](bool faults, verify::VerifyPolicy vp) {
    host::Device dev;
    host::Context ctx(dev);
    if (faults) {
      host::FaultConfig fc;
      fc.seed = 4;
      fc.silent_corrupt_rate = 0.05;
      dev.inject_faults(fc);
    }
    host::RetryPolicy policy;
    policy.max_retries = 4;
    policy.backoff = std::chrono::microseconds(0);
    ctx.set_retry_policy(policy);
    ctx.config().verification.policy(vp);
    host::Buffer<float> a(dev, d * d, 0), b(dev, d * d, 1), c(dev, d * d, 2);
    a.write(ha);
    b.write(hb);
    c.write(hc);
    for (int i = 0; i < 24; ++i) {
      ctx.gemm<float>(Transpose::None, Transpose::None, d, d, d, 1.0f, a, b,
                      0.25f, c);
    }
    return std::make_pair(c.to_host(), ctx.exec_stats());
  };

  // The clean baseline also runs under Always: its stats back the
  // "no false positives" line, and verification never alters results.
  const auto [clean, clean_stats] = run(false, verify::VerifyPolicy::Always);
  const auto [naked, naked_stats] = run(true, verify::VerifyPolicy::Off);
  const auto [guarded, guarded_stats] = run(true, verify::VerifyPolicy::Always);

  TablePrinter t({"Policy", "Faults injected", "SDC caught", "Retries",
                  "Result vs clean"});
  t.add_row({"Off", TablePrinter::fmt_int(static_cast<std::int64_t>(
                        naked_stats.faults_injected)),
             TablePrinter::fmt_int(static_cast<std::int64_t>(
                 naked_stats.sdc_caught)),
             TablePrinter::fmt_int(static_cast<std::int64_t>(
                 naked_stats.retries)),
             naked == clean ? "identical" : "WRONG BITS"});
  t.add_row({"Always", TablePrinter::fmt_int(static_cast<std::int64_t>(
                           guarded_stats.faults_injected)),
             TablePrinter::fmt_int(static_cast<std::int64_t>(
                 guarded_stats.sdc_caught)),
             TablePrinter::fmt_int(static_cast<std::int64_t>(
                 guarded_stats.retries)),
             guarded == clean ? "identical" : "WRONG BITS"});
  t.print();
  std::printf("Clean-run checks: %llu verified, %llu rejected (no false"
              " positives).\n\n",
              static_cast<unsigned long long>(clean_stats.verified),
              static_cast<unsigned long long>(clean_stats.verify_failures));
}

void in_grid_abft() {
  // In-grid ABFT for the systolic engine. Two questions:
  //
  //   1. Cycle overhead of the checksum rank: the extra column/row fill
  //      and drain step cost a constant 3 cycles per tile, independent of
  //      k — so overhead shrinks as the reduction deepens (< 5%
  //      criterion at k = 64 on an 8x8 grid).
  //   2. Correction economics: an in-grid-corrected fault costs one
  //      k-cycle replay; the same fault caught by the host-side checker
  //      costs a full rollback + re-execution (one retry).
  std::puts("== In-grid ABFT: systolic engine checksum rank ==");
  const std::int64_t dim = 64;
  Workload wl(95);
  const auto ha = wl.matrix<float>(dim, dim);
  const auto hb = wl.matrix<float>(dim, dim);

  auto cycles_with = [&](const verify::Options& vo,
                         std::int64_t k) -> std::uint64_t {
    host::Device dev;
    host::Context ctx(dev);
    ctx.config().pe_rows = 8;
    ctx.config().pe_cols = 8;
    ctx.config().verification = vo;
    host::Buffer<float> a(dev, dim * k, 0), b(dev, k * dim, 1),
        c(dev, dim * dim, 2);
    std::vector<float> hak(ha.begin(), ha.begin() + dim * k);
    std::vector<float> hbk(hb.begin(), hb.begin() + k * dim);
    a.write(hak);
    b.write(hbk);
    c.write(std::vector<float>(static_cast<std::size_t>(dim * dim), 0.0f));
    ctx.gemm_systolic<float>(dim, dim, k, a, b, c);
    return ctx.last_cycles();
  };

  TablePrinter t({"Reduction depth k", "Plain cycles", "ABFT cycles",
                  "Checksum-rank overhead"});
  double overhead_at_64 = 0.0;
  for (std::int64_t k : {8, 16, 32, 64}) {
    const auto plain = cycles_with(verify::Options::off(), k);
    const auto abft = cycles_with(verify::Options::always().in_grid(), k);
    const double pct = 100.0 * (static_cast<double>(abft) -
                                static_cast<double>(plain)) /
                       static_cast<double>(plain);
    if (k == 64) overhead_at_64 = pct;
    t.add_row({TablePrinter::fmt_int(k),
               TablePrinter::fmt_int(static_cast<std::int64_t>(plain)),
               TablePrinter::fmt_int(static_cast<std::int64_t>(abft)),
               TablePrinter::fmt(pct, 1) + "%"});
  }
  t.print();
  std::printf("Criterion: < 5%% at k = 64 — %s (%.1f%%). The rank costs a"
              " constant 3\ncycles per tile, so deeper reductions amortize"
              " it away.\n\n",
              overhead_at_64 < 5.0 ? "PASS" : "FAIL", overhead_at_64);

  // Correction economics: N single PE faults, in-grid correction vs the
  // host-side checker's reject-and-retry.
  std::puts("-- Correction economics: 8 injected single PE faults --");
  const std::int64_t d = 48, kk = 32;
  const int rounds = 8;
  // One fault per round (fresh budget each time, so a host-side retry
  // always re-runs clean); the stats are summed across rounds.
  auto faulted = [&](const verify::Options& vo) {
    host::ExecStats sum;
    for (int i = 0; i < rounds; ++i) {
      host::Device dev;
      host::Context ctx(dev);
      host::FaultConfig fc;
      fc.seed = 21 + static_cast<std::uint64_t>(i);
      fc.pe_fault_rate = 1.0;
      fc.max_faults = 1;
      dev.inject_faults(fc);
      host::RetryPolicy policy;
      policy.max_retries = 4;
      policy.backoff = std::chrono::microseconds(0);
      ctx.set_retry_policy(policy);
      ctx.config().verification = vo;
      host::Buffer<float> a(dev, d * kk, 0), b(dev, kk * d, 1),
          c(dev, d * d, 2);
      a.write(std::vector<float>(ha.begin(), ha.begin() + d * kk));
      b.write(std::vector<float>(hb.begin(), hb.begin() + kk * d));
      c.write(std::vector<float>(static_cast<std::size_t>(d * d), 0.0f));
      ctx.gemm_systolic<float>(d, d, kk, a, b, c);
      const auto stats = ctx.exec_stats();
      sum.pe_faults_localized += stats.pe_faults_localized;
      sum.faults_corrected += stats.faults_corrected;
      sum.retries += stats.retries;
      sum.makespan_cycles += stats.makespan_cycles;
    }
    return sum;
  };
  const auto grid = faulted(verify::Options::always().in_grid());
  const auto host_side = faulted(verify::Options::always());

  TablePrinter e({"Recovery path", "Localized", "Corrected in grid",
                  "Retries", "Makespan cycles"});
  e.add_row({"in-grid (correct)",
             TablePrinter::fmt_int(
                 static_cast<std::int64_t>(grid.pe_faults_localized)),
             TablePrinter::fmt_int(
                 static_cast<std::int64_t>(grid.faults_corrected)),
             TablePrinter::fmt_int(static_cast<std::int64_t>(grid.retries)),
             TablePrinter::fmt_int(
                 static_cast<std::int64_t>(grid.makespan_cycles))});
  e.add_row({"host-side (retry)",
             TablePrinter::fmt_int(
                 static_cast<std::int64_t>(host_side.pe_faults_localized)),
             TablePrinter::fmt_int(
                 static_cast<std::int64_t>(host_side.faults_corrected)),
             TablePrinter::fmt_int(
                 static_cast<std::int64_t>(host_side.retries)),
             TablePrinter::fmt_int(
                 static_cast<std::int64_t>(host_side.makespan_cycles))});
  e.print();
  std::puts("An in-grid-corrected fault costs one k-cycle replay; the"
            " host-side checker\npays a full rollback + re-execution per"
            " fault. Both end bit-identical.\n");
}

}  // namespace

int main() {
  std::puts("FBLAS ABFT result verification\n");
  overhead_table();
  composition_overhead();
  protection_demo();
  in_grid_abft();
  return 0;
}
