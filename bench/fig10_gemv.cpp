// Reproduces Fig. 10 (middle): GEMV performance versus vectorization
// width (16..256), square tiles of 1024 x 1024, both devices and
// precisions, with cycle-level validation of the model at a reduced size.
#include <cstdio>

#include "common/table_printer.hpp"
#include "common/workload.hpp"
#include "fblas/level2.hpp"
#include "sim/perf_model.hpp"
#include "sim/resource_model.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace {

using namespace fblas;

std::uint64_t simulate_gemv_cycles(int w, std::int64_t n) {
  Workload wl(42);
  auto a = wl.matrix<float>(n, n);
  auto x = wl.vector<float>(n);
  auto y = wl.vector<float>(n);
  const core::GemvConfig cfg{Transpose::None, core::MatrixTiling::TilesByRows,
                             w, 256, 256};
  stream::Graph g(stream::Mode::Cycle);
  auto& ca = g.channel<float>("A", static_cast<std::size_t>(4 * w));
  auto& cx = g.channel<float>("x", static_cast<std::size_t>(4 * w));
  auto& cy = g.channel<float>("y", static_cast<std::size_t>(4 * w));
  auto& out = g.channel<float>("out", static_cast<std::size_t>(4 * w));
  std::vector<float> result;
  g.spawn("read_A",
          stream::read_matrix<float>(MatrixView<const float>(a.data(), n, n),
                                     core::gemv_a_schedule(cfg), 1, w, ca));
  g.spawn("read_x", stream::read_vector<float>(
                        VectorView<const float>(x.data(), n),
                        core::gemv_x_repeat(cfg, n, n), w, cx));
  g.spawn("read_y", stream::read_vector<float>(
                        VectorView<const float>(y.data(), n), 1, w, cy));
  g.spawn("gemv",
          core::gemv<float>(cfg, n, n, 1.0f, 0.0f, ca, cx, cy, out));
  g.spawn("sink", stream::sink<float>(n, w, out));
  g.run();
  return g.cycles();
}

}  // namespace

int main() {
  std::puts("FBLAS reproduction: Fig. 10 (middle) — GEMV scaling\n");
  // The paper uses square tiles of 1024 x 1024 and on-chip data
  // generation; the model evaluates an 8K x 8K product.
  const std::int64_t kN = 8192;
  TablePrinter t({"Device", "Precision", "W", "GOps/s (model)",
                  "Expected GOps/s", "Freq [MHz]", "Feasible"});
  for (const auto* dev : {&sim::arria10(), &sim::stratix10()}) {
    for (const Precision prec : {Precision::Single, Precision::Double}) {
      for (int w = 16; w <= 256; w *= 2) {
        const sim::ModuleShape shape{RoutineKind::Gemv, prec, w, 1024, 1024,
                                     0, 0};
        if (!sim::place_and_route_feasible(shape, *dev)) {
          t.add_row({std::string(dev->name), std::string(to_string(prec)),
                     TablePrinter::fmt_int(w), "-", "-", "-",
                     "no (P&R fails)"});
          continue;
        }
        const auto timing = sim::gemv_timing(prec, w, kN, kN, *dev);
        t.add_row({std::string(dev->name), std::string(to_string(prec)),
                   TablePrinter::fmt_int(w), TablePrinter::fmt(timing.gops, 1),
                   TablePrinter::fmt(timing.expected_gops, 1),
                   TablePrinter::fmt(timing.freq_mhz, 0) +
                       (timing.hyperflex ? " (HyperFlex)" : ""),
                   "yes"});
      }
    }
  }
  t.print();

  std::puts("\nModel validation: cycle simulation vs C = CD + N*M/W"
            " (single, N = M = 1024, tiles 256):");
  TablePrinter v({"W", "Simulated cycles", "Model cycles", "Ratio"});
  for (int w : {16, 64}) {
    const auto sim_cycles = simulate_gemv_cycles(w, 1024);
    const auto model =
        sim::gemv_timing(Precision::Single, w, 1024, 1024, sim::stratix10());
    v.add_row({TablePrinter::fmt_int(w),
               TablePrinter::fmt_int(static_cast<std::int64_t>(sim_cycles)),
               TablePrinter::fmt(model.cycles, 0),
               TablePrinter::fmt(static_cast<double>(sim_cycles) /
                                     model.cycles, 3)});
  }
  v.print();

  std::puts("\nOptimal-width corollary (Sec. IV-B): with one DDR bank at"
            " 19.2 GB/s and 347 MHz,");
  const int w_flat = sim::optimal_width(19.2, 347, 4, 2);
  const int w_tiled = sim::optimal_width_tiled(19.2, 347, 4, 1024, 1024);
  std::printf("  untiled GEMV needs W = %d; 1024x1024 tiling raises the"
              " optimum to W = %d\n  (tiling halves the per-cycle operand"
              " pressure, enabling a faster design).\n",
              w_flat, w_tiled);
  return 0;
}
