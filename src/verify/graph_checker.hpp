// End-to-end checksum verification of a streaming composition.
//
// A GraphChecker pairs per-edge *predictions* (computed by the
// mdag/checksum propagation rules as a few host passes over the
// composition's materialized DRAM inputs) with per-edge *observations*
// (the channel taps armed on the graph's channels). No intermediate
// stream is ever stored for the checker: the taps accumulate in flight
// and the predictions never need the intermediates' values.
//
// Lifecycle, matching the executor's two-phase verification hooks (the
// streaming graph is rebuilt inside the command body on every attempt and
// destroyed when the body returns):
//
//   verify_prepare   reset(name); expect(edge, prediction) per edge
//                    -- runs only when the command's verification armed,
//                       so unverified runs never pay for taps
//   work body        if (chk->active()) chk->arm(graph);
//                    graph.run();
//                    if (chk->active()) chk->capture(graph);
//   verify_check     chk->check<T>(tol_scale)
//                    -- throws VerificationError naming the composition
//                       and the FIRST divergent edge in declaration
//                       (topological) order, so a mismatch is localized
//                       to the edge the corruption entered, not just
//                       rejected wholesale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mdag/checksum.hpp"
#include "stream/graph.hpp"
#include "verify/policy.hpp"

namespace fblas::verify {

class GraphChecker {
 public:
  /// Starts a fresh prediction set for composition `name` and marks the
  /// checker active (the work body's cue to arm taps).
  void reset(std::string name);
  bool active() const { return active_; }
  const std::string& composition() const { return name_; }

  /// Declares an edge (channel `channel` of the graph) with its predicted
  /// checksum. Declare edges in topological order: check() reports the
  /// first divergent one. `eps` is the unit roundoff of the stream's
  /// element type (std::numeric_limits<T>::epsilon()), which the
  /// acceptance bound grows from. Optional `weights` switch the edge's
  /// tap (and its prediction) to a weighted checksum.
  void expect(std::string channel, mdag::EdgeChecksum pred, double eps,
              std::vector<double> weights = {});

  /// Arms a checksum tap on every expected channel of `g`. Unknown
  /// channel names are a caller bug and throw ConfigError.
  void arm(stream::Graph& g);
  /// Copies the taps' accumulators out of `g` (which dies with the
  /// command body, while the check runs after it).
  void capture(stream::Graph& g);

  /// Compares every captured edge against its prediction, in declaration
  /// order, and throws VerificationError on the first divergence. The
  /// per-edge bound is rel_bound<eps>(terms, tol_scale) * magnitude, with
  /// the magnitude taken as max(predicted, observed) so a corrupted huge
  /// value cannot widen its own acceptance into a miss.
  void check(double tol_scale) const;

  std::size_t edge_count() const { return edges_.size(); }

 private:
  struct Edge {
    std::string channel;
    mdag::EdgeChecksum pred;
    double eps = 0.0;
    std::vector<double> weights;
    bool captured = false;
    double got = 0.0;
    double got_mag = 0.0;
    std::uint64_t count = 0;
  };

  std::string name_;
  bool active_ = false;
  std::vector<Edge> edges_;
};

}  // namespace fblas::verify
