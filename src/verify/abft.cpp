#include "verify/abft.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace fblas::verify {
namespace {

// NaN-rejecting comparison: a non-finite `got` against a finite
// prediction always mismatches.
bool mismatch(double got, double pred, double tol) {
  return !(std::abs(got - pred) <= tol);
}

[[noreturn]] void reject(const char* routine, const char* what,
                         std::int64_t idx, double got, double pred,
                         double tol) {
  std::ostringstream os;
  os.precision(17);
  os << "ABFT verification failed: " << routine << " " << what;
  if (idx >= 0) os << " [" << idx << "]";
  os << ": got " << got << ", predicted " << pred << " (tolerance " << tol
     << ") — silent data corruption suspected";
  throw VerificationError(os.str());
}

template <typename T>
double abs_floor() {
  // Absolute floor under the relative bound, so an all-zero checksum
  // still accepts an exactly-zero result while any real corruption
  // (which perturbs an exponent byte) lands far above it.
  return static_cast<double>(std::numeric_limits<T>::min());
}

bool finite(double v) { return std::isfinite(v); }

template <typename C>
bool all_finite(const C& v) {
  for (double d : v) {
    if (!std::isfinite(d)) return false;
  }
  return true;
}

/// Element accessor for op(A) with A triangular-stored: structural
/// zeros outside the stored triangle, implicit ones on a unit diagonal.
template <typename T>
struct TriOp {
  MatrixView<const T> a;
  Uplo uplo;
  Transpose trans;
  Diag diag;

  double operator()(std::int64_t r, std::int64_t c) const {
    const std::int64_t ai = trans == Transpose::None ? r : c;
    const std::int64_t aj = trans == Transpose::None ? c : r;
    if (ai == aj) {
      return diag == Diag::Unit ? 1.0 : static_cast<double>(a(ai, aj));
    }
    const bool stored = uplo == Uplo::Lower ? ai > aj : ai < aj;
    return stored ? static_cast<double>(a(ai, aj)) : 0.0;
  }
};

/// Sum (value, |value|) of the stored part of row i of a triangular
/// result: j <= i for tri = +1 (lower), j >= i for tri = -1 (upper),
/// the full row for tri = 0.
template <typename T>
std::pair<double, double> row_span_sum(MatrixView<const T> c, std::int64_t i,
                                       int tri) {
  const std::int64_t j0 = tri < 0 ? i : 0;
  const std::int64_t j1 = tri > 0 ? i + 1 : c.cols();
  double sum = 0.0, mag = 0.0;
  for (std::int64_t j = j0; j < j1; ++j) {
    const double v = static_cast<double>(c(i, j));
    sum += v;
    mag += std::abs(v);
  }
  return {sum, mag};
}

template <typename T>
std::pair<double, double> vec_sum(VectorView<const T> v) {
  double sum = 0.0, mag = 0.0;
  for (std::int64_t i = 0; i < v.size(); ++i) {
    const double x = static_cast<double>(v[i]);
    sum += x;
    mag += std::abs(x);
  }
  return {sum, mag};
}

}  // namespace

// --- Generic check entry points -----------------------------------------

template <typename T>
void check_rowsums(const RowSumCheck& chk, const char* routine,
                   MatrixView<const T> c, double tol_scale) {
  if (chk.skip) return;
  const double rel = rel_bound<T>(chk.terms, tol_scale);
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(chk.pred.size());
       ++i) {
    const auto [got, got_mag] = row_span_sum(c, i, chk.tri);
    const double tol = rel * (chk.mag[static_cast<std::size_t>(i)] + got_mag) +
                       abs_floor<T>();
    if (mismatch(got, chk.pred[static_cast<std::size_t>(i)], tol)) {
      reject(routine, "row checksum", i, got,
             chk.pred[static_cast<std::size_t>(i)], tol);
    }
  }
}

template <typename T>
void check_sum(const ScalarCheck& chk, const char* routine,
               VectorView<const T> v, double tol_scale) {
  if (chk.skip) return;
  const auto [got, got_mag] = vec_sum(v);
  const double tol = rel_bound<T>(chk.terms, tol_scale) * (chk.mag + got_mag) +
                     abs_floor<T>();
  if (mismatch(got, chk.pred, tol)) {
    reject(routine, "sum checksum", -1, got, chk.pred, tol);
  }
}

template <typename T>
void check_output(const mdag::EdgeChecksum& pred, const char* composition,
                  VectorView<const T> out, double tol_scale) {
  const ScalarCheck chk{pred.pred, pred.mag, pred.terms, false};
  check_sum<T>(chk, composition, out, tol_scale);
}

// --- Level 3 -------------------------------------------------------------

template <typename T>
GemmCheck<T> gemm_prepare(Transpose ta, Transpose tb, std::int64_t m,
                          std::int64_t n, std::int64_t k, T alpha,
                          MatrixView<const T> a, MatrixView<const T> b,
                          T beta, MatrixView<const T> c0) {
  GemmCheck<T> chk;
  const auto opa = [&](std::int64_t i, std::int64_t l) {
    return static_cast<double>(ta == Transpose::None ? a(i, l) : a(l, i));
  };
  const auto opb = [&](std::int64_t l, std::int64_t j) {
    return static_cast<double>(tb == Transpose::None ? b(l, j) : b(j, l));
  };
  // Right checksums of op(B) (row sums) and left checksums of op(A)
  // (column sums), plus their absolute-value twins for the bound.
  std::vector<double> bs(static_cast<std::size_t>(k), 0.0), babs = bs;
  for (std::int64_t l = 0; l < k; ++l) {
    for (std::int64_t j = 0; j < n; ++j) {
      const double v = opb(l, j);
      bs[static_cast<std::size_t>(l)] += v;
      babs[static_cast<std::size_t>(l)] += std::abs(v);
    }
  }
  std::vector<double> as(static_cast<std::size_t>(k), 0.0), aabs = as;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t l = 0; l < k; ++l) {
      const double v = opa(i, l);
      as[static_cast<std::size_t>(l)] += v;
      aabs[static_cast<std::size_t>(l)] += std::abs(v);
    }
  }
  const double al = static_cast<double>(alpha);
  const double be = static_cast<double>(beta);
  chk.rows.pred.assign(static_cast<std::size_t>(m), 0.0);
  chk.rows.mag = chk.rows.pred;
  for (std::int64_t i = 0; i < m; ++i) {
    double p = 0.0, g = 0.0;
    for (std::int64_t l = 0; l < k; ++l) {
      p += opa(i, l) * bs[static_cast<std::size_t>(l)];
      g += std::abs(opa(i, l)) * babs[static_cast<std::size_t>(l)];
    }
    p *= al;
    g *= std::abs(al);
    if (be != 0.0) {
      for (std::int64_t j = 0; j < n; ++j) {
        const double v = static_cast<double>(c0(i, j));
        p += be * v;
        g += std::abs(be * v);
      }
    }
    chk.rows.pred[static_cast<std::size_t>(i)] = p;
    chk.rows.mag[static_cast<std::size_t>(i)] = g;
  }
  chk.rows.terms = k + n;
  chk.rows.tri = 0;
  chk.col_pred.assign(static_cast<std::size_t>(n), 0.0);
  chk.col_mag = chk.col_pred;
  for (std::int64_t j = 0; j < n; ++j) {
    double p = 0.0, g = 0.0;
    for (std::int64_t l = 0; l < k; ++l) {
      p += as[static_cast<std::size_t>(l)] * opb(l, j);
      g += aabs[static_cast<std::size_t>(l)] * std::abs(opb(l, j));
    }
    p *= al;
    g *= std::abs(al);
    if (be != 0.0) {
      for (std::int64_t i = 0; i < m; ++i) {
        const double v = static_cast<double>(c0(i, j));
        p += be * v;
        g += std::abs(be * v);
      }
    }
    chk.col_pred[static_cast<std::size_t>(j)] = p;
    chk.col_mag[static_cast<std::size_t>(j)] = g;
  }
  chk.col_terms = k + m;
  chk.skip = !all_finite(chk.rows.pred) || !all_finite(chk.rows.mag) ||
             !all_finite(chk.col_pred) || !all_finite(chk.col_mag);
  chk.rows.skip = chk.skip;
  return chk;
}

template <typename T>
void gemm_check(const GemmCheck<T>& chk, MatrixView<const T> c,
                double tol_scale) {
  if (chk.skip) return;
  check_rowsums<T>(chk.rows, "gemm", c, tol_scale);
  const double rel = rel_bound<T>(chk.col_terms, tol_scale);
  for (std::int64_t j = 0; j < static_cast<std::int64_t>(chk.col_pred.size());
       ++j) {
    double got = 0.0, got_mag = 0.0;
    for (std::int64_t i = 0; i < c.rows(); ++i) {
      const double v = static_cast<double>(c(i, j));
      got += v;
      got_mag += std::abs(v);
    }
    const double tol =
        rel * (chk.col_mag[static_cast<std::size_t>(j)] + got_mag) +
        abs_floor<T>();
    if (mismatch(got, chk.col_pred[static_cast<std::size_t>(j)], tol)) {
      reject("gemm", "column checksum", j, got,
             chk.col_pred[static_cast<std::size_t>(j)], tol);
    }
  }
}

namespace {

// Shared triangular-update checksum: per stored row i, the sum of the
// rank-k update over the stored span collapses to a running prefix
// (lower) or suffix (upper) checksum of the panel rows — O(nk) instead
// of the O(n^2 k) full product. `term(i, run_a, run_b)` produces the
// update contribution of row i given the running checksums.
template <typename T, typename Row, typename Term>
RowSumCheck tri_update_prepare(Uplo uplo, std::int64_t n, std::int64_t k,
                               double beta, MatrixView<const T> c0, Row row,
                               Term term) {
  RowSumCheck chk;
  chk.pred.assign(static_cast<std::size_t>(n), 0.0);
  chk.mag = chk.pred;
  chk.tri = uplo == Uplo::Lower ? 1 : -1;
  chk.terms = n + k;
  const std::int64_t i0 = uplo == Uplo::Lower ? 0 : n - 1;
  const std::int64_t step = uplo == Uplo::Lower ? 1 : -1;
  std::vector<double> run(static_cast<std::size_t>(2 * k), 0.0);
  std::vector<double> run_abs = run;
  for (std::int64_t s = 0, i = i0; s < n; ++s, i += step) {
    row(i, run, run_abs);  // fold row i into the running checksums
    auto [p, g] = term(i, run, run_abs);
    if (beta != 0.0) {
      const std::int64_t j0 = uplo == Uplo::Lower ? 0 : i;
      const std::int64_t j1 = uplo == Uplo::Lower ? i + 1 : n;
      for (std::int64_t j = j0; j < j1; ++j) {
        const double v = static_cast<double>(c0(i, j));
        p += beta * v;
        g += std::abs(beta * v);
      }
    }
    chk.pred[static_cast<std::size_t>(i)] = p;
    chk.mag[static_cast<std::size_t>(i)] = g;
  }
  chk.skip = !all_finite(chk.pred) || !all_finite(chk.mag);
  return chk;
}

}  // namespace

template <typename T>
RowSumCheck syrk_prepare(Uplo uplo, Transpose trans, std::int64_t n,
                         std::int64_t k, T alpha, MatrixView<const T> a,
                         T beta, MatrixView<const T> c0) {
  const auto opa = [&](std::int64_t i, std::int64_t l) {
    return static_cast<double>(trans == Transpose::None ? a(i, l) : a(l, i));
  };
  const double al = static_cast<double>(alpha);
  return tri_update_prepare<T>(
      uplo, n, k, static_cast<double>(beta), c0,
      [&](std::int64_t i, std::vector<double>& run,
          std::vector<double>& run_abs) {
        for (std::int64_t l = 0; l < k; ++l) {
          const double v = opa(i, l);
          run[static_cast<std::size_t>(l)] += v;
          run_abs[static_cast<std::size_t>(l)] += std::abs(v);
        }
      },
      [&](std::int64_t i, const std::vector<double>& run,
          const std::vector<double>& run_abs) {
        // sum_{j in span} a_i . a_j = a_i . (sum_{j in span} a_j)
        double p = 0.0, g = 0.0;
        for (std::int64_t l = 0; l < k; ++l) {
          p += opa(i, l) * run[static_cast<std::size_t>(l)];
          g += std::abs(opa(i, l)) * run_abs[static_cast<std::size_t>(l)];
        }
        return std::pair<double, double>{al * p, std::abs(al) * g};
      });
}

template <typename T>
RowSumCheck syr2k_prepare(Uplo uplo, Transpose trans, std::int64_t n,
                          std::int64_t k, T alpha, MatrixView<const T> a,
                          MatrixView<const T> b, T beta,
                          MatrixView<const T> c0) {
  const auto opa = [&](std::int64_t i, std::int64_t l) {
    return static_cast<double>(trans == Transpose::None ? a(i, l) : a(l, i));
  };
  const auto opb = [&](std::int64_t i, std::int64_t l) {
    return static_cast<double>(trans == Transpose::None ? b(i, l) : b(l, i));
  };
  const double al = static_cast<double>(alpha);
  // run[0:k) accumulates A-panel rows, run[k:2k) B-panel rows.
  return tri_update_prepare<T>(
      uplo, n, k, static_cast<double>(beta), c0,
      [&](std::int64_t i, std::vector<double>& run,
          std::vector<double>& run_abs) {
        for (std::int64_t l = 0; l < k; ++l) {
          run[static_cast<std::size_t>(l)] += opa(i, l);
          run_abs[static_cast<std::size_t>(l)] += std::abs(opa(i, l));
          run[static_cast<std::size_t>(k + l)] += opb(i, l);
          run_abs[static_cast<std::size_t>(k + l)] += std::abs(opb(i, l));
        }
      },
      [&](std::int64_t i, const std::vector<double>& run,
          const std::vector<double>& run_abs) {
        // sum_{j in span} (a_i.b_j + b_i.a_j) = a_i.runB + b_i.runA
        double p = 0.0, g = 0.0;
        for (std::int64_t l = 0; l < k; ++l) {
          p += opa(i, l) * run[static_cast<std::size_t>(k + l)] +
               opb(i, l) * run[static_cast<std::size_t>(l)];
          g += std::abs(opa(i, l)) * run_abs[static_cast<std::size_t>(k + l)] +
               std::abs(opb(i, l)) * run_abs[static_cast<std::size_t>(l)];
        }
        return std::pair<double, double>{al * p, std::abs(al) * g};
      });
}

template <typename T>
TrsmCheck trsm_prepare(Side side, std::int64_t m, std::int64_t n, T alpha,
                       MatrixView<const T> b0) {
  TrsmCheck chk;
  const double al = static_cast<double>(alpha);
  const std::int64_t dim = side == Side::Left ? m : n;
  chk.pred.assign(static_cast<std::size_t>(dim), 0.0);
  chk.mag = chk.pred;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int64_t r = side == Side::Left ? i : j;
      const double v = al * static_cast<double>(b0(i, j));
      chk.pred[static_cast<std::size_t>(r)] += v;
      chk.mag[static_cast<std::size_t>(r)] += std::abs(v);
    }
  }
  chk.skip = !all_finite(chk.pred) || !all_finite(chk.mag);
  return chk;
}

template <typename T>
void trsm_check(const TrsmCheck& chk, Side side, Uplo uplo, Transpose trans,
                Diag diag, std::int64_t m, std::int64_t n,
                MatrixView<const T> a, MatrixView<const T> x,
                double tol_scale) {
  if (chk.skip) return;
  // Residual checksum: op(A)·(X·e) == alpha·(B0·e) for a Left solve,
  // (e^T X)·op(A) == alpha·e^T B0 for a Right solve.
  const std::int64_t dim = side == Side::Left ? m : n;
  const std::int64_t other = side == Side::Left ? n : m;
  const TriOp<T> opa{a, uplo, trans, diag};
  std::vector<double> s(static_cast<std::size_t>(dim), 0.0), sabs = s;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int64_t r = side == Side::Left ? i : j;
      const double v = static_cast<double>(x(i, j));
      s[static_cast<std::size_t>(r)] += v;
      sabs[static_cast<std::size_t>(r)] += std::abs(v);
    }
  }
  const double rel = rel_bound<T>(dim + other, tol_scale);
  for (std::int64_t i = 0; i < dim; ++i) {
    double r = 0.0, rmag = 0.0;
    for (std::int64_t l = 0; l < dim; ++l) {
      const double e =
          side == Side::Left ? opa(i, l) : opa(l, i);
      r += e * s[static_cast<std::size_t>(l)];
      rmag += std::abs(e) * sabs[static_cast<std::size_t>(l)];
    }
    const double tol =
        rel * (rmag + chk.mag[static_cast<std::size_t>(i)]) + abs_floor<T>();
    if (mismatch(r, chk.pred[static_cast<std::size_t>(i)], tol)) {
      reject("trsm", "residual checksum", i, r,
             chk.pred[static_cast<std::size_t>(i)], tol);
    }
  }
}

// --- Level 2 -------------------------------------------------------------

template <typename T>
ScalarCheck gemv_prepare(Transpose trans, std::int64_t rows,
                         std::int64_t cols, T alpha, MatrixView<const T> a,
                         VectorView<const T> x, T beta,
                         VectorView<const T> y0) {
  ScalarCheck chk;
  const double al = static_cast<double>(alpha);
  const double be = static_cast<double>(beta);
  const std::int64_t xlen = trans == Transpose::None ? cols : rows;
  const std::int64_t ylen = trans == Transpose::None ? rows : cols;
  double p = 0.0, g = 0.0;
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      const double xv = static_cast<double>(
          x[trans == Transpose::None ? j : i]);
      const double v = al * static_cast<double>(a(i, j)) * xv;
      p += v;
      g += std::abs(v);
    }
  }
  if (be != 0.0) {
    const auto [sy, say] = vec_sum(y0);
    p += be * sy;
    g += std::abs(be) * say;
  }
  chk.pred = p;
  chk.mag = g;
  chk.terms = xlen + ylen;
  chk.skip = !finite(p) || !finite(g);
  return chk;
}

template <typename T>
ScalarCheck trsv_prepare(std::int64_t n, VectorView<const T> b0) {
  ScalarCheck chk;
  const auto [p, g] = vec_sum(b0);
  chk.pred = p;
  chk.mag = g;
  chk.terms = 2 * n;
  chk.skip = !finite(p) || !finite(g);
  return chk;
}

template <typename T>
void trsv_check(const ScalarCheck& chk, Uplo uplo, Transpose trans,
                Diag diag, std::int64_t n, MatrixView<const T> a,
                VectorView<const T> x, double tol_scale) {
  if (chk.skip) return;
  // Residual checksum: e^T op(A) x_new == e^T b0.
  const TriOp<T> opa{a, uplo, trans, diag};
  double r = 0.0, rmag = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t l = 0; l < n; ++l) {
      const double e = opa(i, l);
      const double xv = static_cast<double>(x[l]);
      r += e * xv;
      rmag += std::abs(e * xv);
    }
  }
  const double tol =
      rel_bound<T>(chk.terms, tol_scale) * (rmag + chk.mag) + abs_floor<T>();
  if (mismatch(r, chk.pred, tol)) {
    reject("trsv", "residual checksum", -1, r, chk.pred, tol);
  }
}

template <typename T>
RowSumCheck ger_prepare(std::int64_t rows, std::int64_t cols, T alpha,
                        VectorView<const T> x, VectorView<const T> y,
                        MatrixView<const T> a0) {
  RowSumCheck chk;
  const double al = static_cast<double>(alpha);
  const auto [sy, say] = vec_sum(y);
  chk.pred.assign(static_cast<std::size_t>(rows), 0.0);
  chk.mag = chk.pred;
  for (std::int64_t i = 0; i < rows; ++i) {
    double p = 0.0, g = 0.0;
    for (std::int64_t j = 0; j < cols; ++j) {
      const double v = static_cast<double>(a0(i, j));
      p += v;
      g += std::abs(v);
    }
    const double xv = static_cast<double>(x[i]);
    chk.pred[static_cast<std::size_t>(i)] = p + al * xv * sy;
    chk.mag[static_cast<std::size_t>(i)] = g + std::abs(al * xv) * say;
  }
  chk.terms = cols + 2;
  chk.tri = 0;
  chk.skip = !all_finite(chk.pred) || !all_finite(chk.mag);
  return chk;
}

namespace {

// SYR/SYR2 stored-span checksum: for row i the update sum over the
// stored span needs the prefix (lower) / suffix (upper) sums of the
// update vectors — the same collapse as the Level-3 triangle.
template <typename T, typename Term>
RowSumCheck tri_rank1_prepare(Uplo uplo, std::int64_t n,
                              MatrixView<const T> a0, Term term) {
  RowSumCheck chk;
  chk.pred.assign(static_cast<std::size_t>(n), 0.0);
  chk.mag = chk.pred;
  chk.tri = uplo == Uplo::Lower ? 1 : -1;
  chk.terms = n + 2;
  const std::int64_t i0 = uplo == Uplo::Lower ? 0 : n - 1;
  const std::int64_t step = uplo == Uplo::Lower ? 1 : -1;
  for (std::int64_t s = 0, i = i0; s < n; ++s, i += step) {
    auto [p, g] = term(i);
    const std::int64_t j0 = uplo == Uplo::Lower ? 0 : i;
    const std::int64_t j1 = uplo == Uplo::Lower ? i + 1 : n;
    for (std::int64_t j = j0; j < j1; ++j) {
      const double v = static_cast<double>(a0(i, j));
      p += v;
      g += std::abs(v);
    }
    chk.pred[static_cast<std::size_t>(i)] = p;
    chk.mag[static_cast<std::size_t>(i)] = g;
  }
  chk.skip = !all_finite(chk.pred) || !all_finite(chk.mag);
  return chk;
}

}  // namespace

template <typename T>
RowSumCheck syr_prepare(Uplo uplo, std::int64_t n, T alpha,
                        VectorView<const T> x, MatrixView<const T> a0) {
  const double al = static_cast<double>(alpha);
  double px = 0.0, pax = 0.0;  // running span sum of x and |x|
  return tri_rank1_prepare<T>(uplo, n, a0, [&](std::int64_t i) {
    const double xv = static_cast<double>(x[i]);
    px += xv;
    pax += std::abs(xv);
    return std::pair<double, double>{al * xv * px,
                                     std::abs(al * xv) * pax};
  });
}

template <typename T>
RowSumCheck syr2_prepare(Uplo uplo, std::int64_t n, T alpha,
                         VectorView<const T> x, VectorView<const T> y,
                         MatrixView<const T> a0) {
  const double al = static_cast<double>(alpha);
  double px = 0.0, py = 0.0, pax = 0.0, pay = 0.0;
  return tri_rank1_prepare<T>(uplo, n, a0, [&](std::int64_t i) {
    const double xv = static_cast<double>(x[i]);
    const double yv = static_cast<double>(y[i]);
    px += xv;
    py += yv;
    pax += std::abs(xv);
    pay += std::abs(yv);
    // sum_{j in span} (x_i y_j + y_i x_j) = x_i * span(y) + y_i * span(x)
    return std::pair<double, double>{
        al * (xv * py + yv * px),
        std::abs(al) * (std::abs(xv) * pay + std::abs(yv) * pax)};
  });
}

// --- Level 1 -------------------------------------------------------------

template <typename T>
ScalarCheck scal_prepare(T alpha, VectorView<const T> x0) {
  ScalarCheck chk;
  const auto [s, m] = vec_sum(x0);
  chk.pred = static_cast<double>(alpha) * s;
  chk.mag = std::abs(static_cast<double>(alpha)) * m;
  chk.terms = x0.size();
  chk.skip = !finite(chk.pred) || !finite(chk.mag);
  return chk;
}

template <typename T>
ScalarCheck axpy_prepare(T alpha, VectorView<const T> x,
                         VectorView<const T> y0) {
  ScalarCheck chk;
  const auto [sx, mx] = vec_sum(x);
  const auto [sy, my] = vec_sum(y0);
  chk.pred = static_cast<double>(alpha) * sx + sy;
  chk.mag = std::abs(static_cast<double>(alpha)) * mx + my;
  chk.terms = 2 * x.size();
  chk.skip = !finite(chk.pred) || !finite(chk.mag);
  return chk;
}

template <typename T>
ScalarCheck copy_prepare(VectorView<const T> x) {
  ScalarCheck chk;
  const auto [s, m] = vec_sum(x);
  chk.pred = s;
  chk.mag = m;
  chk.terms = x.size();
  chk.skip = !finite(s) || !finite(m);
  return chk;
}

template <typename T>
PairCheck swap_prepare(VectorView<const T> x0, VectorView<const T> y0) {
  PairCheck chk;
  chk.x = copy_prepare(y0);  // x_new must sum like y0
  chk.y = copy_prepare(x0);
  return chk;
}

template <typename T>
PairCheck rot_prepare(VectorView<const T> x0, VectorView<const T> y0, T c,
                      T s) {
  PairCheck chk;
  const auto [sx, mx] = vec_sum(x0);
  const auto [sy, my] = vec_sum(y0);
  const double cd = static_cast<double>(c);
  const double sd = static_cast<double>(s);
  chk.x.pred = cd * sx + sd * sy;
  chk.x.mag = std::abs(cd) * mx + std::abs(sd) * my;
  chk.x.terms = 2 * x0.size();
  chk.x.skip = !finite(chk.x.pred) || !finite(chk.x.mag);
  chk.y.pred = cd * sy - sd * sx;
  chk.y.mag = std::abs(cd) * my + std::abs(sd) * mx;
  chk.y.terms = 2 * x0.size();
  chk.y.skip = !finite(chk.y.pred) || !finite(chk.y.mag);
  return chk;
}

template <typename T>
void dot_check(VectorView<const T> x, VectorView<const T> y, T result,
               double tol_scale) {
  double p = 0.0, g = 0.0;
  for (std::int64_t i = 0; i < x.size(); ++i) {
    const double v = static_cast<double>(x[i]) * static_cast<double>(y[i]);
    p += v;
    g += std::abs(v);
  }
  if (!finite(p) || !finite(g)) return;
  const double tol = rel_bound<T>(x.size(), tol_scale) * g + abs_floor<T>();
  if (mismatch(static_cast<double>(result), p, tol)) {
    reject("dot", "product checksum", -1, static_cast<double>(result), p,
           tol);
  }
}

template <typename T>
void nrm2_check(VectorView<const T> x, T result, double tol_scale) {
  const std::int64_t n = x.size();
  const double got = static_cast<double>(result);
  double maxabs = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double a = std::abs(static_cast<double>(x[i]));
    if (!std::isfinite(a)) return;  // non-finite inputs: taint's job
    if (a > maxabs) maxabs = a;
  }
  const double f = rel_bound<T>(n, tol_scale);
  const double lo = maxabs * (1.0 - f) - abs_floor<T>();
  const double hi =
      std::sqrt(static_cast<double>(n)) * maxabs * (1.0 + f) + abs_floor<T>();
  // A NaN/negative/out-of-range result fails all three predicates.
  if (!(got >= 0.0) || !(got >= lo) || !(got <= hi)) {
    reject("nrm2", "range invariant", -1, got, maxabs, hi);
  }
}

template <typename T>
void asum_check(VectorView<const T> x, T result, double tol_scale) {
  double p = 0.0;
  for (std::int64_t i = 0; i < x.size(); ++i) {
    p += std::abs(static_cast<double>(x[i]));
  }
  if (!finite(p)) return;
  const double tol = rel_bound<T>(x.size(), tol_scale) * p + abs_floor<T>();
  if (mismatch(static_cast<double>(result), p, tol)) {
    reject("asum", "absolute-sum checksum", -1, static_cast<double>(result),
           p, tol);
  }
}

template <typename T>
void iamax_check(VectorView<const T> x, std::int64_t result) {
  const std::int64_t n = x.size();
  if (n == 0) {
    if (result != -1) {
      reject("iamax", "empty-input invariant", -1,
             static_cast<double>(result), -1.0, 0.0);
    }
    return;
  }
  if (result < 0 || result >= n) {
    reject("iamax", "index-range invariant", -1,
           static_cast<double>(result), static_cast<double>(n), 0.0);
  }
  double maxabs = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double a = std::abs(static_cast<double>(x[i]));
    if (!std::isfinite(a)) return;
    if (a > maxabs) maxabs = a;
  }
  // Inputs are unchanged by IAMAX, so the winner must hold the exact max.
  const double at = std::abs(static_cast<double>(x[result]));
  if (at != maxabs) {
    reject("iamax", "maximum invariant", result, at, maxabs, 0.0);
  }
}

// --- Explicit instantiations --------------------------------------------

#define FBLAS_VERIFY_INSTANTIATE(T)                                          \
  template GemmCheck<T> gemm_prepare<T>(Transpose, Transpose, std::int64_t,  \
                                        std::int64_t, std::int64_t, T,       \
                                        MatrixView<const T>,                 \
                                        MatrixView<const T>, T,              \
                                        MatrixView<const T>);                \
  template void gemm_check<T>(const GemmCheck<T>&, MatrixView<const T>,      \
                              double);                                       \
  template RowSumCheck syrk_prepare<T>(Uplo, Transpose, std::int64_t,        \
                                       std::int64_t, T, MatrixView<const T>, \
                                       T, MatrixView<const T>);              \
  template RowSumCheck syr2k_prepare<T>(Uplo, Transpose, std::int64_t,       \
                                        std::int64_t, T,                     \
                                        MatrixView<const T>,                 \
                                        MatrixView<const T>, T,              \
                                        MatrixView<const T>);                \
  template TrsmCheck trsm_prepare<T>(Side, std::int64_t, std::int64_t, T,    \
                                     MatrixView<const T>);                   \
  template void trsm_check<T>(const TrsmCheck&, Side, Uplo, Transpose,       \
                              Diag, std::int64_t, std::int64_t,              \
                              MatrixView<const T>, MatrixView<const T>,      \
                              double);                                       \
  template ScalarCheck gemv_prepare<T>(Transpose, std::int64_t,              \
                                       std::int64_t, T, MatrixView<const T>, \
                                       VectorView<const T>, T,               \
                                       VectorView<const T>);                 \
  template ScalarCheck trsv_prepare<T>(std::int64_t, VectorView<const T>);   \
  template void trsv_check<T>(const ScalarCheck&, Uplo, Transpose, Diag,     \
                              std::int64_t, MatrixView<const T>,             \
                              VectorView<const T>, double);                  \
  template RowSumCheck ger_prepare<T>(std::int64_t, std::int64_t, T,         \
                                      VectorView<const T>,                   \
                                      VectorView<const T>,                   \
                                      MatrixView<const T>);                  \
  template RowSumCheck syr_prepare<T>(Uplo, std::int64_t, T,                 \
                                      VectorView<const T>,                   \
                                      MatrixView<const T>);                  \
  template RowSumCheck syr2_prepare<T>(Uplo, std::int64_t, T,                \
                                       VectorView<const T>,                  \
                                       VectorView<const T>,                  \
                                       MatrixView<const T>);                 \
  template ScalarCheck scal_prepare<T>(T, VectorView<const T>);              \
  template ScalarCheck axpy_prepare<T>(T, VectorView<const T>,               \
                                       VectorView<const T>);                 \
  template ScalarCheck copy_prepare<T>(VectorView<const T>);                 \
  template PairCheck swap_prepare<T>(VectorView<const T>,                    \
                                     VectorView<const T>);                   \
  template PairCheck rot_prepare<T>(VectorView<const T>,                     \
                                    VectorView<const T>, T, T);              \
  template void dot_check<T>(VectorView<const T>, VectorView<const T>, T,    \
                             double);                                        \
  template void nrm2_check<T>(VectorView<const T>, T, double);               \
  template void asum_check<T>(VectorView<const T>, T, double);               \
  template void iamax_check<T>(VectorView<const T>, std::int64_t);           \
  template void check_rowsums<T>(const RowSumCheck&, const char*,            \
                                 MatrixView<const T>, double);               \
  template void check_sum<T>(const ScalarCheck&, const char*,                \
                             VectorView<const T>, double);                   \
  template void check_output<T>(const mdag::EdgeChecksum&, const char*,      \
                                VectorView<const T>, double);

FBLAS_VERIFY_INSTANTIATE(float)
FBLAS_VERIFY_INSTANTIATE(double)
#undef FBLAS_VERIFY_INSTANTIATE

}  // namespace fblas::verify
