// Unified verification options: one value type collecting every knob of
// the ABFT result-verification layer (policy, sampling, tolerance, seed,
// taint trap, adaptive sampling), with a fluent builder:
//
//   ctx.config().verification = verify::Options::always()
//                                   .tolerance_scale(4)
//                                   .trap_nonfinite();
//
// The same type configures both single-routine commands and the
// checksum-carrying streaming compositions (apps/*_composed_async), so a
// policy decided once applies uniformly across the whole runtime.
//
// Accessor convention: every knob is a setter/getter pair under one name
// — `o.sample_rate(0.5)` sets (and returns Options& for chaining),
// `o.sample_rate()` reads. The boolean knobs' setters default their
// argument to true so `.trap_nonfinite()` reads naturally in a builder
// chain; read those knobs through a *const* Options (or const reference)
// so overload resolution picks the getter.
//
// The legacy RoutineConfig fields (`verify`, `verify_sample_rate`,
// `verify_tolerance_scale`, `verify_seed`, `trap_nonfinite`) survive as
// deprecated reference shims bound to this struct's storage, so code
// written against the scattered knobs keeps compiling (with a
// -Wdeprecated-declarations diagnostic) and stays in sync with the new
// API.
#pragma once

#include <cstdint>

#include "verify/policy.hpp"

namespace fblas::host {
struct RoutineConfig;  // befriended: binds the deprecated field shims
}  // namespace fblas::host

namespace fblas::verify {

class Options {
 public:
  Options() = default;

  // --- named constructors ------------------------------------------------
  /// Verification disabled (the default).
  static Options off() { return Options(); }
  /// Check every command that has a checker.
  static Options always() {
    Options o;
    o.policy_ = VerifyPolicy::Always;
    return o;
  }
  /// Check a deterministic pseudo-random fraction of commands.
  static Options sampled(double rate) {
    Options o;
    o.policy_ = VerifyPolicy::Sampled;
    o.sample_rate_ = rate;
    return o;
  }

  // --- fluent knobs (setter returns *this; getter on const) --------------
  Options& policy(VerifyPolicy p) {
    policy_ = p;
    return *this;
  }
  VerifyPolicy policy() const { return policy_; }

  /// Fraction of commands verified under VerifyPolicy::Sampled, in
  /// [0, 1]. The per-command choice is a pure hash of (seed, command
  /// seq), identical across executor policies and re-runs.
  Options& sample_rate(double rate) {
    sample_rate_ = rate;
    return *this;
  }
  double sample_rate() const { return sample_rate_; }

  /// Multiplier on the analytic floating-point error bound used as the
  /// checksum comparison tolerance. Must be > 0.
  Options& tolerance_scale(double scale) {
    tolerance_scale_ = scale;
    return *this;
  }
  double tolerance_scale() const { return tolerance_scale_; }

  /// Seed for the Sampled-mode selection hash.
  Options& seed(std::uint64_t s) {
    seed_ = s;
    return *this;
  }
  std::uint64_t seed() const { return seed_; }

  /// Arms the streaming taint trap: a module pushing NaN/Inf into a
  /// channel raises TaintError (deterministic, non-retryable) naming the
  /// module, instead of silently poisoning everything downstream.
  Options& trap_nonfinite(bool on) {
    trap_nonfinite_ = on;
    return *this;
  }
  Options& trap_nonfinite() { return trap_nonfinite(true); }
  bool trap_nonfinite() const { return trap_nonfinite_; }

  /// Runs verification *inside* the systolic engine (gemm_systolic): the
  /// grid carries a checksum row/column rank that detects a corrupted
  /// accumulator as the tile drains and localizes it to the offending PE
  /// — instead of re-deriving Huang–Abraham checksums from DRAM after
  /// the fact. Off (the default), systolic commands use the host-side
  /// GEMM checkers like every other routine. The rank is hardware that is
  /// either present or not: once armed it checks every tile, so under
  /// VerifyPolicy::Sampled only the reject-and-retry hook is sampled.
  Options& in_grid(bool on) {
    in_grid_ = on;
    return *this;
  }
  Options& in_grid() { return in_grid(true); }
  bool in_grid() const { return in_grid_; }

  /// Lets the in-grid checksum rank *correct* a single-fault tile in
  /// place (replaying the victim PE's dot product — bit-identical to a
  /// fault-free run) instead of rejecting the result: the cheapest rung
  /// of the recovery ladder. Multi-fault tiles always reject and fall
  /// back to rollback -> retry -> CPU fallback. On by default; only
  /// meaningful with in_grid().
  Options& correct_single_faults(bool on) {
    correct_single_faults_ = on;
    return *this;
  }
  Options& correct_single_faults() { return correct_single_faults(true); }
  bool correct_single_faults() const { return correct_single_faults_; }

  /// Auto-tunes the effective Sampled rate online: every caught silent
  /// corruption multiplies the rate (the device is misbehaving — look
  /// harder), every clean check decays it back toward a floor of
  /// max(0.01, sample_rate/4). Only meaningful under
  /// VerifyPolicy::Sampled; the effective rate is reported in
  /// ExecStats::adaptive_sample_rate.
  Options& adaptive(bool on) {
    adaptive_ = on;
    return *this;
  }
  Options& adaptive() { return adaptive(true); }
  bool adaptive() const { return adaptive_; }

  /// Feeds checker verdicts into the device-fleet circuit breakers: a
  /// rejection counts as a failure sample against the device that ran
  /// the attempt (silent corruption is a board-health signal), a clean
  /// check as a success. On by default. Turn it off to keep numerically
  /// marginal ABFT rejections from opening breakers — per-device
  /// verify_rejects stats are recorded either way.
  Options& breaker_feedback(bool on) {
    breaker_feedback_ = on;
    return *this;
  }
  Options& breaker_feedback() { return breaker_feedback(true); }
  bool breaker_feedback() const { return breaker_feedback_; }

  /// True when any verification work can arm (policy != Off).
  bool enabled() const { return policy_ != VerifyPolicy::Off; }

  /// Rejects out-of-range knobs (sample rate outside [0, 1], tolerance
  /// scale <= 0) with a ConfigError naming the offending knob.
  void validate() const;

  friend bool operator==(const Options&, const Options&) = default;

 private:
  // RoutineConfig's deprecated legacy fields are references into this
  // storage, so writes through either spelling land in the same place.
  friend struct fblas::host::RoutineConfig;

  VerifyPolicy policy_ = VerifyPolicy::Off;
  double sample_rate_ = 0.25;
  double tolerance_scale_ = 32.0;
  std::uint64_t seed_ = 0;
  bool trap_nonfinite_ = false;
  bool adaptive_ = false;
  bool in_grid_ = false;
  bool correct_single_faults_ = true;
  bool breaker_feedback_ = true;
};

}  // namespace fblas::verify
