#include "verify/graph_checker.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace fblas::verify {
namespace {

stream::ChannelBase* find_channel(stream::Graph& g, const std::string& name) {
  for (const auto& ch : g.channels()) {
    if (ch->name() == name) return ch.get();
  }
  return nullptr;
}

}  // namespace

void GraphChecker::reset(std::string name) {
  name_ = std::move(name);
  active_ = true;
  edges_.clear();
}

void GraphChecker::expect(std::string channel, mdag::EdgeChecksum pred,
                          double eps, std::vector<double> weights) {
  Edge e;
  e.channel = std::move(channel);
  e.pred = pred;
  e.eps = eps;
  e.weights = std::move(weights);
  edges_.push_back(std::move(e));
}

void GraphChecker::arm(stream::Graph& g) {
  for (Edge& e : edges_) {
    stream::ChannelBase* ch = find_channel(g, e.channel);
    FBLAS_REQUIRE(ch != nullptr, "GraphChecker: composition '" + name_ +
                                     "' has no channel '" + e.channel + "'");
    ch->arm_tap(e.weights.empty() ? nullptr : &e.weights);
  }
}

void GraphChecker::capture(stream::Graph& g) {
  for (Edge& e : edges_) {
    stream::ChannelBase* ch = find_channel(g, e.channel);
    if (ch == nullptr || !ch->tap_armed()) continue;
    e.captured = true;
    e.got = ch->tap_sum();
    e.got_mag = ch->tap_mag();
    e.count = ch->tap_count();
  }
}

void GraphChecker::check(double tol_scale) const {
  for (const Edge& e : edges_) {
    if (!e.captured) {
      throw VerificationError(
          "composition '" + name_ + "': edge '" + e.channel +
          "' was never captured (graph did not run to completion?)");
    }
    // Non-finite data poisons the checksum comparison either way; that is
    // the taint channel's diagnosis, not the checker's.
    if (!std::isfinite(e.pred.pred) || !std::isfinite(e.pred.mag)) continue;
    const double mag = std::max(e.pred.mag, e.got_mag);
    const double bound =
        tol_scale * (static_cast<double>(e.pred.terms) + 8.0) * e.eps * mag;
    const double diff = std::abs(e.got - e.pred.pred);
    if (std::isfinite(diff) && diff <= bound) continue;
    std::ostringstream os;
    os << "composition '" << name_ << "': checksum mismatch on edge '"
       << e.channel << "' (observed " << e.got << ", predicted "
       << e.pred.pred << ", |diff| " << diff << " > bound " << bound
       << " over " << e.count
       << " streamed elements) — first divergent edge; earlier edges are "
          "clean";
    throw VerificationError(os.str());
  }
}

}  // namespace fblas::verify
