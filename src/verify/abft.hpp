// Algorithm-based fault tolerance (ABFT) result checkers.
//
// Huang–Abraham style checksum verification: before a routine runs, the
// host folds its inputs into one or a few checksum scalars/vectors (a
// matrix-vector or vector-sum pass — an order of magnitude cheaper than
// the routine itself); after the device reports success, the same
// checksums recomputed over the *outputs* must match the prediction to
// within a floating-point error bound. A mismatch means some bits of the
// result differ from what any correct execution could have produced —
// silent data corruption — and raises VerificationError.
//
// Checksum arithmetic is done in double regardless of the routine
// precision, so the checker's own rounding is negligible next to the
// bound it enforces.
//
// Conventions:
//  * `*_prepare` runs once per command, before the first device attempt
//    (after the write-set snapshot — rollback restores exactly the state
//    the prediction was computed from, so it stays valid across retries).
//  * `*_check` / `check_*` run after each successful attempt and throw
//    VerificationError on mismatch. Routines whose inputs are not
//    overwritten (dot, nrm2, asum, iamax) are checked single-phase.
//  * A prediction that comes out non-finite (inputs already contained
//    NaN/Inf, or the true magnitudes overflow the checksum) marks the
//    checker `skip`: non-finite data is the taint channel's job
//    (stream::Scheduler taint), not the checksum's.
//  * `tol_scale` is RoutineConfig.verify_tolerance_scale; the acceptance
//    bound is rel_bound<T>(terms, tol_scale) * magnitude (see
//    verify/policy.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "common/view.hpp"
#include "mdag/checksum.hpp"
#include "verify/policy.hpp"

namespace fblas::verify {

// --- Checker state -------------------------------------------------------

/// One predicted scalar checksum plus its magnitude (sum of absolute
/// values) and the accumulation length the error bound grows with.
struct ScalarCheck {
  double pred = 0.0;
  double mag = 0.0;
  std::int64_t terms = 0;
  bool skip = false;
};

/// Two independent scalar checksums (routines writing two vectors).
struct PairCheck {
  ScalarCheck x, y;
};

/// Per-row checksums of a matrix output. `tri` selects which part of
/// each row participates: 0 = full row, +1 = lower-stored (j <= i),
/// -1 = upper-stored (j >= i) — the triangle BLAS actually writes.
struct RowSumCheck {
  std::vector<double> pred, mag;
  std::int64_t terms = 0;
  int tri = 0;
  bool skip = false;
};

/// GEMM gets both directions of the Huang–Abraham scheme: row checksums
/// C·e and column checksums e^T·C, so a corrupted entry is caught from
/// two independent directions.
template <typename T>
struct GemmCheck {
  RowSumCheck rows;                 // C_new · e per row
  std::vector<double> col_pred, col_mag;  // e^T · C_new per column
  std::int64_t col_terms = 0;
  bool skip = false;
};

/// TRSM residual checksums: op(A)·(X·e) must equal alpha·(B0·e) (Left),
/// or (e^T X)·op(A) equal alpha·e^T B0 (Right).
struct TrsmCheck {
  std::vector<double> pred, mag;  // per solve-dimension rhs checksums
  bool skip = false;
};

// --- Level 3 -------------------------------------------------------------

template <typename T>
GemmCheck<T> gemm_prepare(Transpose ta, Transpose tb, std::int64_t m,
                          std::int64_t n, std::int64_t k, T alpha,
                          MatrixView<const T> a, MatrixView<const T> b,
                          T beta, MatrixView<const T> c0);
template <typename T>
void gemm_check(const GemmCheck<T>& chk, MatrixView<const T> c,
                double tol_scale);

template <typename T>
RowSumCheck syrk_prepare(Uplo uplo, Transpose trans, std::int64_t n,
                         std::int64_t k, T alpha, MatrixView<const T> a,
                         T beta, MatrixView<const T> c0);
template <typename T>
RowSumCheck syr2k_prepare(Uplo uplo, Transpose trans, std::int64_t n,
                          std::int64_t k, T alpha, MatrixView<const T> a,
                          MatrixView<const T> b, T beta,
                          MatrixView<const T> c0);

template <typename T>
TrsmCheck trsm_prepare(Side side, std::int64_t m, std::int64_t n, T alpha,
                       MatrixView<const T> b0);
template <typename T>
void trsm_check(const TrsmCheck& chk, Side side, Uplo uplo, Transpose trans,
                Diag diag, std::int64_t m, std::int64_t n,
                MatrixView<const T> a, MatrixView<const T> x,
                double tol_scale);

// --- Level 2 -------------------------------------------------------------

template <typename T>
ScalarCheck gemv_prepare(Transpose trans, std::int64_t rows,
                         std::int64_t cols, T alpha, MatrixView<const T> a,
                         VectorView<const T> x, T beta,
                         VectorView<const T> y0);

template <typename T>
ScalarCheck trsv_prepare(std::int64_t n, VectorView<const T> b0);
template <typename T>
void trsv_check(const ScalarCheck& chk, Uplo uplo, Transpose trans,
                Diag diag, std::int64_t n, MatrixView<const T> a,
                VectorView<const T> x, double tol_scale);

template <typename T>
RowSumCheck ger_prepare(std::int64_t rows, std::int64_t cols, T alpha,
                        VectorView<const T> x, VectorView<const T> y,
                        MatrixView<const T> a0);
template <typename T>
RowSumCheck syr_prepare(Uplo uplo, std::int64_t n, T alpha,
                        VectorView<const T> x, MatrixView<const T> a0);
template <typename T>
RowSumCheck syr2_prepare(Uplo uplo, std::int64_t n, T alpha,
                         VectorView<const T> x, VectorView<const T> y,
                         MatrixView<const T> a0);

// --- Level 1 (vector-sum checksums for mutating routines) ---------------

template <typename T>
ScalarCheck scal_prepare(T alpha, VectorView<const T> x0);
template <typename T>
ScalarCheck axpy_prepare(T alpha, VectorView<const T> x,
                         VectorView<const T> y0);
template <typename T>
ScalarCheck copy_prepare(VectorView<const T> x);
template <typename T>
PairCheck swap_prepare(VectorView<const T> x0, VectorView<const T> y0);
template <typename T>
PairCheck rot_prepare(VectorView<const T> x0, VectorView<const T> y0, T c,
                      T s);

// --- Level 1 (single-phase checks for scalar-result routines) -----------

/// DOT: recomputes the dot product in double (one O(n) pass — the same
/// cost as the prepare passes above) and compares.
template <typename T>
void dot_check(VectorView<const T> x, VectorView<const T> y, T result,
               double tol_scale);
/// NRM2 invariants: finite & >= 0, and max|x| <= result <= sqrt(n)*max|x|
/// within tolerance.
template <typename T>
void nrm2_check(VectorView<const T> x, T result, double tol_scale);
/// ASUM: recomputes sum |x_i| in double and compares.
template <typename T>
void asum_check(VectorView<const T> x, T result, double tol_scale);
/// IAMAX invariants: index in [0, n) (or -1 for n == 0) and |x[index]|
/// equals the maximum absolute value (the inputs are unchanged, so the
/// comparison is exact).
template <typename T>
void iamax_check(VectorView<const T> x, std::int64_t result);

// --- Generic check entry points -----------------------------------------

/// Compares the (tri-masked) row sums of `c` against `chk`. `routine`
/// names the caller in the VerificationError diagnostic.
template <typename T>
void check_rowsums(const RowSumCheck& chk, const char* routine,
                   MatrixView<const T> c, double tol_scale);

/// Compares sum(v) against a prepared scalar checksum.
template <typename T>
void check_sum(const ScalarCheck& chk, const char* routine,
               VectorView<const T> v, double tol_scale);

/// Output-tap audit of a composition: compares what actually landed in
/// DRAM against the edge prediction the in-flight tap was checked with,
/// catching a classic write-back corruption after the clean stream. One
/// helper instead of the ScalarCheck boilerplate every composed app used
/// to repeat; the composition compiler's output stage calls it for every
/// buffer-bound interface writer.
template <typename T>
void check_output(const mdag::EdgeChecksum& pred, const char* composition,
                  VectorView<const T> out, double tol_scale);

}  // namespace fblas::verify
