// Verification policy for the host runtime: whether (and how often) a
// command's result is checked by the ABFT layer, and how the acceptance
// tolerance is derived from a per-routine floating-point error bound.
//
// The checkers in verify/abft.hpp are two-phase: a `prepare` closure runs
// once per command, right after the write-set snapshot and before the
// first device attempt, and captures input checksums; a `check` closure
// runs after every device attempt that reports success and throws
// VerificationError on mismatch. The executor treats that rejection
// exactly like a detected transient device fault — rollback, retry under
// the RetryPolicy, degrade to the CPU fallback once retries are
// exhausted — so silent data corruption flows through the same recovery
// machinery as self-reported faults.
#pragma once

#include <cstdint>
#include <limits>

namespace fblas::verify {

/// Per-context verification policy, carried on host::RoutineConfig.
enum class VerifyPolicy : std::uint8_t {
  Off,      ///< never check (today's behavior)
  Sampled,  ///< check a deterministic pseudo-random fraction of commands
  Always,   ///< check every command that has a checker
};

namespace detail {

// splitmix64 — same mixer the fault injector uses, so sampling decisions
// are a pure hash of (seed, seq): identical under the serial and
// worker-pool executors regardless of interleaving.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace detail

/// Deterministic sampling decision for command `seq` under
/// VerifyPolicy::Sampled. Pure in (seed, seq).
inline bool sampled(std::uint64_t seed, std::uint64_t seq, double rate) {
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  std::uint64_t h = detail::mix64(seed ^ 0x5645524946594aULL);
  h = detail::mix64(h ^ seq);
  // 53 mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53 < rate;
}

/// Relative acceptance bound for a checksum accumulated over `terms`
/// products in precision T: scale * (terms + 8) * u, the standard
/// gamma_n ~ n*u forward-error growth with a small constant floor and a
/// user-tunable safety factor (RoutineConfig.verify_tolerance_scale).
/// Checkers compare |got - predicted| against this bound times a
/// magnitude checksum (the same sum over absolute values), so the test
/// is relative to the data that actually flowed through the routine.
template <typename T>
double rel_bound(std::int64_t terms, double scale) {
  const double u = static_cast<double>(std::numeric_limits<T>::epsilon());
  return scale * (static_cast<double>(terms) + 8.0) * u;
}

}  // namespace fblas::verify
