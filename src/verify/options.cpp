#include "verify/options.hpp"

#include <sstream>

#include "common/error.hpp"

namespace fblas::verify {

void Options::validate() const {
  if (!(sample_rate_ >= 0.0 && sample_rate_ <= 1.0)) {
    std::ostringstream os;
    os << "verify::Options.sample_rate must be in [0, 1] (got "
       << sample_rate_ << ")";
    throw ConfigError(os.str());
  }
  if (!(tolerance_scale_ > 0.0)) {
    std::ostringstream os;
    os << "verify::Options.tolerance_scale must be > 0 (got "
       << tolerance_scale_ << ")";
    throw ConfigError(os.str());
  }
}

}  // namespace fblas::verify
