// GESUMMV: y = alpha * A * x + beta * B * x — another kernel from the
// updated BLAS set of Blackford et al. that the paper's Sec. V draws its
// case studies from (an extension beyond the paper's four examples,
// following the same methodology).
//
// The streaming composition runs two GEMV modules in pipeline parallel,
// broadcasts the shared x on chip (one DRAM read instead of two), and
// fuses the scaled results in an elementwise ADD without materializing
// either intermediate vector: I/O drops from 2NM + 5N (host layer, with
// an intermediate round trip) to 2NM + N*repeat + N.
//
// Composition-theory note: the MDAG is a *non-multitree* (x reaches the
// ADD through both GEMVs), so the conservative Sec. V analysis flags it —
// yet it streams correctly with small channels because the two sibling
// paths have identical first-output lag and never build unbounded
// backlog. See tests/test_apps.cpp for the precise statement.
#pragma once

#include <cstdint>
#include <vector>

#include "common/view.hpp"
#include "host/context.hpp"
#include "mdag/graph.hpp"
#include "sim/device.hpp"
#include "stream/scheduler.hpp"

namespace fblas::apps {

template <typename T>
struct GesummvResult {
  std::vector<T> y;
  std::uint64_t cycles = 0;
};

/// Fully-streaming composition (two GEMVs + on-chip ADD).
template <typename T>
GesummvResult<T> gesummv_streaming(const sim::DeviceSpec& dev,
                                   stream::Mode mode, int width,
                                   std::int64_t tile, T alpha, T beta,
                                   MatrixView<const T> A,
                                   MatrixView<const T> B,
                                   VectorView<const T> x);

/// Host-layer baseline: GEMV, GEMV, AXPY through the Context.
template <typename T>
GesummvResult<T> gesummv_host_layer(host::Context& ctx, T alpha, T beta,
                                    MatrixView<const T> A,
                                    MatrixView<const T> B,
                                    VectorView<const T> x);

/// Fault-tolerant composed command through the generic MDAG compiler.
/// The compiler proves the non-multitree streams with bounded channels
/// (equal first-output lag on the two sibling x-paths), synthesizes the
/// x broadcast and both zero y0 streams, and taps every FIFO. `a` and
/// `b` are n x m row-major, `x` length m, `y` length n.
template <typename T>
host::Event gesummv_composed_async(host::Context& ctx, std::int64_t n,
                                   std::int64_t m, T alpha, T beta,
                                   const host::Buffer<T>& a,
                                   const host::Buffer<T>& b,
                                   const host::Buffer<T>& x,
                                   host::Buffer<T>& y);
/// Same, with a per-call verification override.
template <typename T>
host::Event gesummv_composed_async(host::Context& ctx, std::int64_t n,
                                   std::int64_t m, T alpha, T beta,
                                   const host::Buffer<T>& a,
                                   const host::Buffer<T>& b,
                                   const host::Buffer<T>& x,
                                   host::Buffer<T>& y,
                                   const verify::Options& vo);
template <typename T>
void gesummv_composed(host::Context& ctx, std::int64_t n, std::int64_t m,
                      T alpha, T beta, const host::Buffer<T>& a,
                      const host::Buffer<T>& b, const host::Buffer<T>& x,
                      host::Buffer<T>& y) {
  gesummv_composed_async(ctx, n, m, alpha, beta, a, b, x, y).wait();
}

/// CPU reference.
template <typename T>
std::vector<T> gesummv_cpu(T alpha, T beta, MatrixView<const T> A,
                           MatrixView<const T> B, VectorView<const T> x);

/// The MDAG of the streaming composition.
mdag::Mdag gesummv_mdag(std::int64_t n, std::int64_t m, std::int64_t tile);

}  // namespace fblas::apps
