// AXPYDOT (Sec. V-A, Fig. 6): z = w - alpha*v followed by beta = z^T u.
// The streaming composition chains AXPY into DOT through an on-chip
// channel, eliminating the COPY and the DRAM round trip of z
// (7N -> 3N+1 I/O operations) and running both modules in pipeline
// parallel. The host-layer baseline calls COPY, AXPY and DOT one by one;
// its z vector lives in a single DDR bank whose read+write contention is
// what pushes the measured speedup to ~4 (Sec. VI-C).
#pragma once

#include <cstdint>

#include "common/view.hpp"
#include "host/context.hpp"
#include "mdag/graph.hpp"
#include "sim/device.hpp"
#include "stream/scheduler.hpp"

namespace fblas::apps {

template <typename T>
struct AxpydotResult {
  T beta = T(0);
  std::uint64_t cycles = 0;  ///< simulated cycles (cycle mode only)
};

/// Fully-streaming composition on a fresh graph.
template <typename T>
AxpydotResult<T> axpydot_streaming(const sim::DeviceSpec& dev,
                                   stream::Mode mode, int width,
                                   VectorView<const T> w,
                                   VectorView<const T> v,
                                   VectorView<const T> u, T alpha);

/// Host-layer baseline: COPY + AXPY + DOT through the Context queue.
/// Returns the summed cycle count of the three launches.
template <typename T>
AxpydotResult<T> axpydot_host_layer(host::Context& ctx,
                                    VectorView<const T> w,
                                    VectorView<const T> v,
                                    VectorView<const T> u, T alpha);

/// Streaming composition as ONE host command: AXPY chains into DOT on
/// chip (z never materializes) and the result lands in `*beta`. The
/// command gets the executor's fault-tolerance ladder and — when the
/// captured verify::Options enable it — per-edge checksum verification
/// (verify::GraphChecker): the z edge is predicted by the AXPY linearity
/// rule, the beta edge by recomputing the bilinear DOT in double over the
/// host operands. All vectors have length n.
template <typename T>
host::Event axpydot_composed_async(host::Context& ctx, std::int64_t n,
                                   const host::Buffer<T>& w,
                                   const host::Buffer<T>& v,
                                   const host::Buffer<T>& u, T alpha,
                                   T* beta);
/// Same, with a per-call verification override (scoped via ConfigGuard).
template <typename T>
host::Event axpydot_composed_async(host::Context& ctx, std::int64_t n,
                                   const host::Buffer<T>& w,
                                   const host::Buffer<T>& v,
                                   const host::Buffer<T>& u, T alpha, T* beta,
                                   const verify::Options& vo);
template <typename T>
T axpydot_composed(host::Context& ctx, std::int64_t n,
                   const host::Buffer<T>& w, const host::Buffer<T>& v,
                   const host::Buffer<T>& u, T alpha) {
  T beta{};
  axpydot_composed_async(ctx, n, w, v, u, alpha, &beta).wait();
  return beta;
}

/// CPU reference.
template <typename T>
T axpydot_cpu(VectorView<const T> w, VectorView<const T> v,
              VectorView<const T> u, T alpha);

/// The MDAG of the streaming composition (for validity/I/O analysis).
mdag::Mdag axpydot_mdag(std::int64_t n);

}  // namespace fblas::apps
