// GEMVER (Sec. V-C, Fig. 9): B = A + u1 v1^T + u2 v2^T,
// x = beta B^T y + z, w = alpha B x. The fully-streaming MDAG is an
// invalid non-multitree (B reaches the w-computation both directly and
// through the x-computation), so the composition runs as two sequential
// streaming components: (1) GER -> GER -> GEMV^T producing B and x, and
// (2) GEMV producing w — cutting I/O from ~8N^2 to ~3N^2 and completion
// from ~5N^2 to ~2N^2 despite the sequentialization.
#pragma once

#include <cstdint>
#include <vector>

#include "common/view.hpp"
#include "host/context.hpp"
#include "mdag/graph.hpp"
#include "sim/device.hpp"
#include "stream/scheduler.hpp"

namespace fblas::apps {

template <typename T>
struct GemverResult {
  std::vector<T> b;  ///< n x n
  std::vector<T> x;  ///< n
  std::vector<T> w;  ///< n
  std::uint64_t cycles = 0;  ///< sum over the two components
};

struct GemverInputs {
  // All operands are length-n vectors except A (n x n), alpha and beta.
};

/// Two-component streaming schedule.
template <typename T>
GemverResult<T> gemver_streaming(const sim::DeviceSpec& dev,
                                 stream::Mode mode, int width,
                                 std::int64_t tile, T alpha, T beta,
                                 MatrixView<const T> A,
                                 VectorView<const T> u1,
                                 VectorView<const T> v1,
                                 VectorView<const T> u2,
                                 VectorView<const T> v2,
                                 VectorView<const T> y,
                                 VectorView<const T> z);

/// Host-layer baseline: COPY + GER + GER + GEMV^T + GEMV, one by one.
template <typename T>
GemverResult<T> gemver_host_layer(host::Context& ctx, T alpha, T beta,
                                  MatrixView<const T> A,
                                  VectorView<const T> u1,
                                  VectorView<const T> v1,
                                  VectorView<const T> u2,
                                  VectorView<const T> v2,
                                  VectorView<const T> y,
                                  VectorView<const T> z);

/// Fault-tolerant composed command through the generic MDAG compiler
/// (rollback / retry / CPU-fallback ladder, per-FIFO checksum taps).
/// The compiler derives the Fig. 9 two-component schedule itself:
/// `prefer_split` cuts B and x through DRAM instead of buffering B on
/// chip. `a` is n x n row-major; every vector is length n; `b` (n x n),
/// `x` and `w` receive the results.
template <typename T>
host::Event gemver_composed_async(
    host::Context& ctx, std::int64_t n, T alpha, T beta,
    const host::Buffer<T>& a, const host::Buffer<T>& u1,
    const host::Buffer<T>& v1, const host::Buffer<T>& u2,
    const host::Buffer<T>& v2, const host::Buffer<T>& y,
    const host::Buffer<T>& z, host::Buffer<T>& b, host::Buffer<T>& x,
    host::Buffer<T>& w);
/// Same, with a per-call verification override.
template <typename T>
host::Event gemver_composed_async(
    host::Context& ctx, std::int64_t n, T alpha, T beta,
    const host::Buffer<T>& a, const host::Buffer<T>& u1,
    const host::Buffer<T>& v1, const host::Buffer<T>& u2,
    const host::Buffer<T>& v2, const host::Buffer<T>& y,
    const host::Buffer<T>& z, host::Buffer<T>& b, host::Buffer<T>& x,
    host::Buffer<T>& w, const verify::Options& vo);
template <typename T>
void gemver_composed(host::Context& ctx, std::int64_t n, T alpha, T beta,
                     const host::Buffer<T>& a, const host::Buffer<T>& u1,
                     const host::Buffer<T>& v1, const host::Buffer<T>& u2,
                     const host::Buffer<T>& v2, const host::Buffer<T>& y,
                     const host::Buffer<T>& z, host::Buffer<T>& b,
                     host::Buffer<T>& x, host::Buffer<T>& w) {
  gemver_composed_async(ctx, n, alpha, beta, a, u1, v1, u2, v2, y, z, b, x, w)
      .wait();
}

/// CPU reference.
template <typename T>
GemverResult<T> gemver_cpu(T alpha, T beta, MatrixView<const T> A,
                           VectorView<const T> u1, VectorView<const T> v1,
                           VectorView<const T> u2, VectorView<const T> v2,
                           VectorView<const T> y, VectorView<const T> z);

/// The fully-streaming (invalid) MDAG, for analysis.
mdag::Mdag gemver_mdag(std::int64_t n, std::int64_t tile);

}  // namespace fblas::apps
