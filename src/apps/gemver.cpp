#include "apps/gemver.hpp"

#include "fblas/level2.hpp"
#include "host/composition.hpp"
#include "refblas/level2.hpp"
#include "sim/frequency_model.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace fblas::apps {

template <typename T>
GemverResult<T> gemver_streaming(const sim::DeviceSpec& dev,
                                 stream::Mode mode, int width,
                                 std::int64_t tile, T alpha, T beta,
                                 MatrixView<const T> A,
                                 VectorView<const T> u1,
                                 VectorView<const T> v1,
                                 VectorView<const T> u2,
                                 VectorView<const T> v2,
                                 VectorView<const T> y,
                                 VectorView<const T> z) {
  const std::int64_t n = A.rows();
  FBLAS_REQUIRE(A.cols() == n, "gemver: A must be square");
  const core::GerConfig gcfg{core::MatrixTiling::TilesByRows, width, tile,
                             tile};
  const core::GemvConfig tcfg{Transpose::Trans,
                              core::MatrixTiling::TilesByRows, width, tile,
                              tile};
  const core::GemvConfig ncfg{Transpose::None,
                              core::MatrixTiling::TilesByRows, width, tile,
                              tile};
  const auto f = sim::composition_frequency(3, PrecisionTraits<T>::value, dev);
  const double bpc = dev.bank_bandwidth_gbs * 1e9 / (f.mhz * 1e6);
  const auto sched = core::ger_a_schedule(gcfg);
  GemverResult<T> result;
  result.b.assign(static_cast<std::size_t>(n * n), T(0));
  result.x.assign(static_cast<std::size_t>(n), T(0));
  result.w.assign(static_cast<std::size_t>(n), T(0));
  const std::size_t cap = static_cast<std::size_t>(std::max(64, 4 * width));

  // ---- Component 1: B = A + u1 v1^T + u2 v2^T streamed through two GER
  // modules; B fans out to DRAM and to the GEMV^T computing x.
  {
    stream::Graph g(mode);
    auto& bank_a = g.bank("ddr0", bpc);
    auto& bank_b = g.bank("ddr1", bpc);
    auto& bank_vec = g.bank("ddr2", bpc);
    auto& ca = g.channel<T>("A", cap);
    auto& cb1 = g.channel<T>("B_partial", cap);
    auto& cb = g.channel<T>("B", cap);
    auto& cb_dram = g.channel<T>("B_to_dram", cap);
    auto& cb_gemv = g.channel<T>("B_to_gemvT", cap);
    auto& cu1 = g.channel<T>("u1", cap);
    auto& cv1 = g.channel<T>("v1", cap);
    auto& cu2 = g.channel<T>("u2", cap);
    auto& cv2 = g.channel<T>("v2", cap);
    auto& cy = g.channel<T>("y", cap);
    auto& cz = g.channel<T>("z", cap);
    auto& cx = g.channel<T>("x", cap);
    g.spawn("read_A", stream::read_matrix<T>(A, sched, 1, width, ca, &bank_a));
    g.spawn("read_u1", stream::read_vector<T>(
                           u1, core::ger_x_repeat(gcfg, n, n), width, cu1,
                           &bank_vec));
    g.spawn("read_v1", stream::read_vector<T>(
                           v1, core::ger_y_repeat(gcfg, n, n), width, cv1,
                           &bank_vec));
    g.spawn("read_u2", stream::read_vector<T>(
                           u2, core::ger_x_repeat(gcfg, n, n), width, cu2,
                           &bank_vec));
    g.spawn("read_v2", stream::read_vector<T>(
                           v2, core::ger_y_repeat(gcfg, n, n), width, cv2,
                           &bank_vec));
    g.spawn("ger1", core::ger<T>(gcfg, n, n, T(1), ca, cu1, cv1, cb1));
    g.spawn("ger2", core::ger<T>(gcfg, n, n, T(1), cb1, cu2, cv2, cb));
    g.spawn("fanout_B", stream::fanout2<T>(n * n, width, cb, cb_dram,
                                           cb_gemv));
    g.spawn("store_B",
            stream::write_matrix<T>(MatrixView<T>(result.b.data(), n, n),
                                    sched, width, cb_dram, &bank_b));
    g.spawn("read_y", stream::read_vector<T>(y, 1, width, cy, &bank_vec));
    g.spawn("read_z", stream::read_vector<T>(z, 1, width, cz, &bank_vec));
    // x = beta * B^T y + z.
    g.spawn("gemv_T",
            core::gemv<T>(tcfg, n, n, beta, T(1), cb_gemv, cy, cz, cx));
    g.spawn("store_x",
            stream::write_vector<T>(VectorView<T>(result.x.data(), n), 1,
                                    width, cx, &bank_vec));
    g.run();
    result.cycles += g.cycles();
  }

  // ---- Component 2: w = alpha B x, with B and x back from DRAM.
  {
    stream::Graph g(mode);
    auto& bank_b = g.bank("ddr1", bpc);
    auto& bank_vec = g.bank("ddr2", bpc);
    auto& cb = g.channel<T>("B", cap);
    auto& cx = g.channel<T>("x", cap);
    auto& cw0 = g.channel<T>("w0", cap);
    auto& cw = g.channel<T>("w", cap);
    g.spawn("read_B",
            stream::read_matrix<T>(
                MatrixView<const T>(result.b.data(), n, n),
                core::gemv_a_schedule(ncfg), 1, width, cb, &bank_b));
    g.spawn("read_x", stream::read_vector<T>(
                          VectorView<const T>(result.x.data(), n),
                          core::gemv_x_repeat(ncfg, n, n), width, cx,
                          &bank_vec));
    g.spawn("zero_w", stream::generate<T>(n, T(0), width, cw0));
    g.spawn("gemv", core::gemv<T>(ncfg, n, n, alpha, T(0), cb, cx, cw0, cw));
    g.spawn("store_w",
            stream::write_vector<T>(VectorView<T>(result.w.data(), n), 1,
                                    width, cw, &bank_vec));
    g.run();
    result.cycles += g.cycles();
  }
  return result;
}

template <typename T>
GemverResult<T> gemver_host_layer(host::Context& ctx, T alpha, T beta,
                                  MatrixView<const T> A,
                                  VectorView<const T> u1,
                                  VectorView<const T> v1,
                                  VectorView<const T> u2,
                                  VectorView<const T> v2,
                                  VectorView<const T> y,
                                  VectorView<const T> z) {
  const std::int64_t n = A.rows();
  host::Device& dev = ctx.device();
  host::Buffer<T> ba(dev, n * n, 0);
  host::Buffer<T> bb(dev, n * n, 1 % dev.bank_count());
  host::Buffer<T> bu1(dev, n, 2 % dev.bank_count());
  host::Buffer<T> bv1(dev, n, 2 % dev.bank_count());
  host::Buffer<T> bu2(dev, n, 2 % dev.bank_count());
  host::Buffer<T> bv2(dev, n, 2 % dev.bank_count());
  host::Buffer<T> by(dev, n, 3 % dev.bank_count());
  host::Buffer<T> bx(dev, n, 3 % dev.bank_count());
  host::Buffer<T> bw(dev, n, 3 % dev.bank_count());
  {
    std::vector<T> host(static_cast<std::size_t>(n * n));
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        host[static_cast<std::size_t>(i * n + j)] = A(i, j);
      }
    }
    ba.write(host);
    auto load = [n](VectorView<const T> v) {
      std::vector<T> h(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) h[static_cast<std::size_t>(i)] = v[i];
      return h;
    };
    bu1.write(load(u1));
    bv1.write(load(v1));
    bu2.write(load(u2));
    bv2.write(load(v2));
    by.write(load(y));
    bx.write(load(z));  // x starts as z: gemv accumulates beta*B^T y onto it
  }
  std::uint64_t cycles = 0;
  ctx.copy<T>(n * n, ba, 1, bb, 1);
  cycles += ctx.last_cycles();
  ctx.ger<T>(n, n, T(1), bu1, 1, bv1, 1, bb);
  cycles += ctx.last_cycles();
  ctx.ger<T>(n, n, T(1), bu2, 1, bv2, 1, bb);
  cycles += ctx.last_cycles();
  ctx.gemv<T>(Transpose::Trans, n, n, beta, bb, by, 1, T(1), bx, 1);
  cycles += ctx.last_cycles();
  std::vector<T> zero(static_cast<std::size_t>(n), T(0));
  bw.write(zero);
  ctx.gemv<T>(Transpose::None, n, n, alpha, bb, bx, 1, T(0), bw, 1);
  cycles += ctx.last_cycles();
  return {bb.to_host(), bx.to_host(), bw.to_host(), cycles};
}

template <typename T>
host::Event gemver_composed_async(
    host::Context& ctx, std::int64_t n, T alpha, T beta,
    const host::Buffer<T>& a, const host::Buffer<T>& u1,
    const host::Buffer<T>& v1, const host::Buffer<T>& u2,
    const host::Buffer<T>& v2, const host::Buffer<T>& y,
    const host::Buffer<T>& z, host::Buffer<T>& b, host::Buffer<T>& x,
    host::Buffer<T>& w) {
  // The full MDAG is the invalid non-multitree of Fig. 9: B reaches the
  // w-GEMV both directly and through the x-GEMV. prefer_split makes the
  // compiler cut both in-edges of that GEMV through DRAM — reusing the
  // B and x output buffers as the round-trip carriers — instead of
  // buffering a row of B tiles on chip, reproducing the paper's
  // two-component schedule (~3N^2 I/O, ~2N^2 completion).
  const host::RoutineConfig& rc = ctx.config();
  const core::GerConfig gcfg{core::MatrixTiling::TilesByRows, rc.width,
                             rc.tile_rows, rc.tile_rows};
  const core::GemvConfig tcfg{Transpose::Trans,
                              core::MatrixTiling::TilesByRows, rc.width,
                              rc.tile_rows, rc.tile_rows};
  const core::GemvConfig ncfg{Transpose::None,
                              core::MatrixTiling::TilesByRows, rc.width,
                              rc.tile_rows, rc.tile_rows};
  host::Composition<T> c("gemver");
  c.prefer_split();
  const int ra = c.input("read_A", a);
  const int ru1 = c.input("read_u1", u1);
  const int rv1 = c.input("read_v1", v1);
  const int ru2 = c.input("read_u2", u2);
  const int rv2 = c.input("read_v2", v2);
  const int ry = c.input("read_y", y);
  const int rz = c.input("read_z", z);
  const int wb = c.output("store_B", b);
  const int wx = c.output("store_x", x);
  const int ww = c.output("store_w", w);
  const int g1 = c.ger("ger1", T(1));
  const int g2 = c.ger("ger2", T(1));
  const int gt = c.gemv("gemv_T", beta, T(1), Transpose::Trans);
  const int gw = c.gemv("gemv_w", alpha, T(0));
  const auto m_sig =
      mdag::StreamSig::mat(n, n, core::ger_a_schedule(gcfg));
  c.connect(ra, g1, m_sig);
  c.connect(ru1, g1,
            mdag::StreamSig::vec(n, core::ger_x_repeat(gcfg, n, n)));
  c.connect(rv1, g1,
            mdag::StreamSig::vec(n, core::ger_y_repeat(gcfg, n, n)));
  c.connect(g1, g2, m_sig);
  c.connect(ru2, g2,
            mdag::StreamSig::vec(n, core::ger_x_repeat(gcfg, n, n)));
  c.connect(rv2, g2,
            mdag::StreamSig::vec(n, core::ger_y_repeat(gcfg, n, n)));
  // B's fan-out: DRAM first, then the transposed GEMV — the declaration
  // order fixes the replication module's branch order.
  c.connect(g2, wb, m_sig);
  c.connect(g2, gt, m_sig);
  c.connect(ry, gt,
            mdag::StreamSig::vec(n, core::gemv_x_repeat(tcfg, n, n)));
  c.connect(rz, gt, mdag::StreamSig::vec(n));
  c.connect(g2, gw, m_sig);
  // x re-enters with a per-tile-row replay the x-GEMV cannot get from a
  // FIFO — a forced DRAM cut whenever n spans multiple tiles.
  c.connect(gt, gw, mdag::StreamSig::vec(n),
            mdag::StreamSig::vec(n, core::gemv_x_repeat(ncfg, n, n)));
  c.connect(gt, wx, mdag::StreamSig::vec(n));
  c.connect(gw, ww, mdag::StreamSig::vec(n));
  return ctx.run_composition_async(c);
}

template <typename T>
host::Event gemver_composed_async(
    host::Context& ctx, std::int64_t n, T alpha, T beta,
    const host::Buffer<T>& a, const host::Buffer<T>& u1,
    const host::Buffer<T>& v1, const host::Buffer<T>& u2,
    const host::Buffer<T>& v2, const host::Buffer<T>& y,
    const host::Buffer<T>& z, host::Buffer<T>& b, host::Buffer<T>& x,
    host::Buffer<T>& w, const verify::Options& vo) {
  host::RoutineConfig rc = ctx.config();
  rc.verification = vo;
  host::ConfigGuard guard = ctx.with(rc);
  return gemver_composed_async(ctx, n, alpha, beta, a, u1, v1, u2, v2, y, z,
                               b, x, w);
}

template <typename T>
GemverResult<T> gemver_cpu(T alpha, T beta, MatrixView<const T> A,
                           VectorView<const T> u1, VectorView<const T> v1,
                           VectorView<const T> u2, VectorView<const T> v2,
                           VectorView<const T> y, VectorView<const T> z) {
  const std::int64_t n = A.rows();
  GemverResult<T> out;
  out.b.assign(static_cast<std::size_t>(n * n), T(0));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      out.b[static_cast<std::size_t>(i * n + j)] = A(i, j);
    }
  }
  MatrixView<T> B(out.b.data(), n, n);
  ref::ger<T>(T(1), u1, v1, B);
  ref::ger<T>(T(1), u2, v2, B);
  out.x.assign(static_cast<std::size_t>(n), T(0));
  for (std::int64_t i = 0; i < n; ++i) out.x[static_cast<std::size_t>(i)] = z[i];
  ref::gemv<T>(Transpose::Trans, beta, MatrixView<const T>(out.b.data(), n, n),
               y, T(1), VectorView<T>(out.x.data(), n));
  out.w.assign(static_cast<std::size_t>(n), T(0));
  ref::gemv<T>(Transpose::None, alpha,
               MatrixView<const T>(out.b.data(), n, n),
               VectorView<const T>(out.x.data(), n), T(0),
               VectorView<T>(out.w.data(), n));
  return out;
}

mdag::Mdag gemver_mdag(std::int64_t n, std::int64_t tile) {
  mdag::Mdag g;
  const int ra = g.add_interface("read_A");
  const int ruv1 = g.add_interface("read_u1v1");
  const int ruv2 = g.add_interface("read_u2v2");
  const int ryz = g.add_interface("read_y_z");
  const int wx = g.add_interface("write_x");
  const int ww = g.add_interface("write_w");
  const int ger1 = g.add_compute("ger1", RoutineKind::Ger, 20);
  const int ger2 = g.add_compute("ger2", RoutineKind::Ger, 20);
  const int gemvt = g.add_compute("gemv_T", RoutineKind::Gemv, 40);
  const int gemvw = g.add_compute("gemv_w", RoutineKind::Gemv, 40);
  const stream::TileSchedule sched{Order::RowMajor, Order::RowMajor, tile,
                                   tile};
  const auto m = mdag::StreamSig::mat(n, n, sched);
  g.connect(ra, ger1, m);
  g.connect(ruv1, ger1, mdag::StreamSig::vec(2 * n));
  g.connect(ger1, ger2, m);
  g.connect(ruv2, ger2, mdag::StreamSig::vec(2 * n));
  g.connect(ger2, gemvt, m);
  g.connect(ger2, gemvw, m);
  g.connect(ryz, gemvt, mdag::StreamSig::vec(2 * n));
  g.connect(gemvt, gemvw, mdag::StreamSig::vec(n));
  g.connect(gemvt, wx, mdag::StreamSig::vec(n));
  g.connect(gemvw, ww, mdag::StreamSig::vec(n));
  return g;
}

#define FBLAS_APP_GEMVER_INSTANTIATE(T)                                      \
  template GemverResult<T> gemver_streaming<T>(                              \
      const sim::DeviceSpec&, stream::Mode, int, std::int64_t, T, T,         \
      MatrixView<const T>, VectorView<const T>, VectorView<const T>,         \
      VectorView<const T>, VectorView<const T>, VectorView<const T>,         \
      VectorView<const T>);                                                  \
  template GemverResult<T> gemver_host_layer<T>(                             \
      host::Context&, T, T, MatrixView<const T>, VectorView<const T>,        \
      VectorView<const T>, VectorView<const T>, VectorView<const T>,         \
      VectorView<const T>, VectorView<const T>);                             \
  template host::Event gemver_composed_async<T>(                             \
      host::Context&, std::int64_t, T, T, const host::Buffer<T>&,            \
      const host::Buffer<T>&, const host::Buffer<T>&,                        \
      const host::Buffer<T>&, const host::Buffer<T>&,                        \
      const host::Buffer<T>&, const host::Buffer<T>&, host::Buffer<T>&,     \
      host::Buffer<T>&, host::Buffer<T>&);                                   \
  template host::Event gemver_composed_async<T>(                             \
      host::Context&, std::int64_t, T, T, const host::Buffer<T>&,            \
      const host::Buffer<T>&, const host::Buffer<T>&,                        \
      const host::Buffer<T>&, const host::Buffer<T>&,                        \
      const host::Buffer<T>&, const host::Buffer<T>&, host::Buffer<T>&,     \
      host::Buffer<T>&, host::Buffer<T>&, const verify::Options&);           \
  template GemverResult<T> gemver_cpu<T>(                                    \
      T, T, MatrixView<const T>, VectorView<const T>, VectorView<const T>,   \
      VectorView<const T>, VectorView<const T>, VectorView<const T>,         \
      VectorView<const T>);

FBLAS_APP_GEMVER_INSTANTIATE(float)
FBLAS_APP_GEMVER_INSTANTIATE(double)
#undef FBLAS_APP_GEMVER_INSTANTIATE

}  // namespace fblas::apps
