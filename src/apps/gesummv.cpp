#include "apps/gesummv.hpp"

#include "fblas/level1.hpp"
#include "fblas/level2.hpp"
#include "host/composition.hpp"
#include "refblas/level1.hpp"
#include "refblas/level2.hpp"
#include "sim/frequency_model.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace fblas::apps {

template <typename T>
GesummvResult<T> gesummv_streaming(const sim::DeviceSpec& dev,
                                   stream::Mode mode, int width,
                                   std::int64_t tile, T alpha, T beta,
                                   MatrixView<const T> A,
                                   MatrixView<const T> B,
                                   VectorView<const T> x) {
  const std::int64_t n = A.rows(), m = A.cols();
  FBLAS_REQUIRE(B.rows() == n && B.cols() == m && x.size() == m,
                "gesummv: shape mismatch");
  const core::GemvConfig cfg{Transpose::None,
                             core::MatrixTiling::TilesByRows, width, tile,
                             tile};
  stream::Graph g(mode);
  const auto f = sim::composition_frequency(2, PrecisionTraits<T>::value, dev);
  const double bpc = dev.bank_bandwidth_gbs * 1e9 / (f.mhz * 1e6);
  auto& bank_a = g.bank("ddr0", bpc);
  auto& bank_b = g.bank("ddr1", bpc);
  auto& bank_vec = g.bank("ddr2", bpc);
  const std::size_t cap = static_cast<std::size_t>(std::max(64, 4 * width));
  auto& ca = g.channel<T>("A", cap);
  auto& cb = g.channel<T>("B", cap);
  auto& cx = g.channel<T>("x", cap);
  auto& cx1 = g.channel<T>("x_A", cap);
  auto& cx2 = g.channel<T>("x_B", cap);
  auto& cy0a = g.channel<T>("y0a", cap);
  auto& cy0b = g.channel<T>("y0b", cap);
  auto& cq = g.channel<T>("q", cap);
  auto& cs = g.channel<T>("s", cap);
  auto& cy = g.channel<T>("y", cap);
  GesummvResult<T> result;
  result.y.assign(static_cast<std::size_t>(n), T(0));
  const std::int64_t x_repeat = core::gemv_x_repeat(cfg, n, m);
  g.spawn("read_A", stream::read_matrix<T>(A, core::gemv_a_schedule(cfg), 1,
                                           width, ca, &bank_a));
  g.spawn("read_B", stream::read_matrix<T>(B, core::gemv_a_schedule(cfg), 1,
                                           width, cb, &bank_b));
  // x is read (and replayed) once from DRAM and broadcast on chip to both
  // modules — the shared-interface pattern of Fig. 7.
  g.spawn("read_x", stream::read_vector<T>(x, x_repeat, width, cx,
                                           &bank_vec));
  g.spawn("fanout_x", stream::fanout2<T>(m * x_repeat, width, cx, cx1, cx2));
  g.spawn("zero_qa", stream::generate<T>(n, T(0), width, cy0a));
  g.spawn("zero_qb", stream::generate<T>(n, T(0), width, cy0b));
  g.spawn("gemv_A", core::gemv<T>(cfg, n, m, alpha, T(0), ca, cx1, cy0a, cq));
  g.spawn("gemv_B", core::gemv<T>(cfg, n, m, beta, T(0), cb, cx2, cy0b, cs));
  // On-chip fusion: y = q + s (AXPY with alpha = 1).
  g.spawn("add", core::axpy<T>({width}, n, T(1), cq, cs, cy));
  g.spawn("store_y", stream::write_vector<T>(
                         VectorView<T>(result.y.data(), n), 1, width, cy,
                         &bank_vec));
  g.run();
  result.cycles = g.cycles();
  return result;
}

template <typename T>
GesummvResult<T> gesummv_host_layer(host::Context& ctx, T alpha, T beta,
                                    MatrixView<const T> A,
                                    MatrixView<const T> B,
                                    VectorView<const T> x) {
  const std::int64_t n = A.rows(), m = A.cols();
  host::Device& dev = ctx.device();
  host::Buffer<T> ba(dev, n * m, 0);
  host::Buffer<T> bb(dev, n * m, 1 % dev.bank_count());
  host::Buffer<T> bx(dev, m, 2 % dev.bank_count());
  host::Buffer<T> bq(dev, n, 3 % dev.bank_count());
  host::Buffer<T> bs(dev, n, 3 % dev.bank_count());
  {
    std::vector<T> host(static_cast<std::size_t>(n * m));
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < m; ++j) {
        host[static_cast<std::size_t>(i * m + j)] = A(i, j);
      }
    }
    ba.write(host);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < m; ++j) {
        host[static_cast<std::size_t>(i * m + j)] = B(i, j);
      }
    }
    bb.write(host);
    std::vector<T> hx(static_cast<std::size_t>(m));
    for (std::int64_t j = 0; j < m; ++j) hx[static_cast<std::size_t>(j)] = x[j];
    bx.write(hx);
  }
  std::uint64_t cycles = 0;
  ctx.gemv<T>(Transpose::None, n, m, alpha, ba, bx, 1, T(0), bq, 1);
  cycles += ctx.last_cycles();
  ctx.gemv<T>(Transpose::None, n, m, beta, bb, bx, 1, T(0), bs, 1);
  cycles += ctx.last_cycles();
  ctx.axpy<T>(n, T(1), bq, 1, bs, 1);
  cycles += ctx.last_cycles();
  return {bs.to_host(), cycles};
}

template <typename T>
host::Event gesummv_composed_async(host::Context& ctx, std::int64_t n,
                                   std::int64_t m, T alpha, T beta,
                                   const host::Buffer<T>& a,
                                   const host::Buffer<T>& b,
                                   const host::Buffer<T>& x,
                                   host::Buffer<T>& y) {
  // A pure description of the Fig. 7 shared-interface pattern: x is read
  // once and broadcast on chip to both GEMVs. The graph is a
  // non-multitree, but the two sibling x-paths have identical lag, so
  // the compiler keeps it fully streaming (sizing the reconvergent
  // channel) instead of splitting.
  const host::RoutineConfig& rc = ctx.config();
  const core::GemvConfig cfg{Transpose::None,
                             core::MatrixTiling::TilesByRows, rc.width,
                             rc.tile_rows, rc.tile_rows};
  host::Composition<T> c("gesummv");
  const int ra = c.input("read_A", a);
  const int rb = c.input("read_B", b);
  const int rx = c.input("read_x", x);
  const int wy = c.output("store_y", y);
  const int g1 = c.gemv("gemv_A", alpha, T(0));
  const int g2 = c.gemv("gemv_B", beta, T(0));
  const int ad = c.axpy("add", T(1));
  const auto a_sig = mdag::StreamSig::mat(n, m, core::gemv_a_schedule(cfg));
  const auto x_sig =
      mdag::StreamSig::vec(m, core::gemv_x_repeat(cfg, n, m));
  c.connect(ra, g1, a_sig);
  c.connect(rb, g2, a_sig);
  c.connect(rx, g1, x_sig);
  c.connect(rx, g2, x_sig);
  // y = 1 * q + s: the AXPY's x port is the alpha-scaled GEMV.
  c.connect(g1, ad, mdag::StreamSig::vec(n));
  c.connect(g2, ad, mdag::StreamSig::vec(n));
  c.connect(ad, wy, mdag::StreamSig::vec(n));
  return ctx.run_composition_async(c);
}

template <typename T>
host::Event gesummv_composed_async(host::Context& ctx, std::int64_t n,
                                   std::int64_t m, T alpha, T beta,
                                   const host::Buffer<T>& a,
                                   const host::Buffer<T>& b,
                                   const host::Buffer<T>& x,
                                   host::Buffer<T>& y,
                                   const verify::Options& vo) {
  host::RoutineConfig rc = ctx.config();
  rc.verification = vo;
  host::ConfigGuard guard = ctx.with(rc);
  return gesummv_composed_async(ctx, n, m, alpha, beta, a, b, x, y);
}

template <typename T>
std::vector<T> gesummv_cpu(T alpha, T beta, MatrixView<const T> A,
                           MatrixView<const T> B, VectorView<const T> x) {
  const std::int64_t n = A.rows();
  std::vector<T> q(static_cast<std::size_t>(n), T(0));
  std::vector<T> s(static_cast<std::size_t>(n), T(0));
  ref::gemv<T>(Transpose::None, alpha, A, x, T(0), VectorView<T>(q.data(), n));
  ref::gemv<T>(Transpose::None, beta, B, x, T(0), VectorView<T>(s.data(), n));
  ref::axpy<T>(T(1), VectorView<const T>(q.data(), n),
               VectorView<T>(s.data(), n));
  return s;
}

mdag::Mdag gesummv_mdag(std::int64_t n, std::int64_t m, std::int64_t tile) {
  mdag::Mdag g;
  const int ra = g.add_interface("read_A");
  const int rb = g.add_interface("read_B");
  const int rx = g.add_interface("read_x");
  const int wy = g.add_interface("write_y");
  const int g1 = g.add_compute("gemv_A", RoutineKind::Gemv, 40);
  const int g2 = g.add_compute("gemv_B", RoutineKind::Gemv, 40);
  const int add = g.add_compute("add", RoutineKind::Axpy, 12);
  const stream::TileSchedule sched{Order::RowMajor, Order::RowMajor, tile,
                                   tile};
  const std::int64_t xr = ceil_div(n, tile);
  g.connect(ra, g1, mdag::StreamSig::mat(n, m, sched));
  g.connect(rb, g2, mdag::StreamSig::mat(n, m, sched));
  g.connect(rx, g1, mdag::StreamSig::vec(m, xr));
  g.connect(rx, g2, mdag::StreamSig::vec(m, xr));
  g.connect(g1, add, mdag::StreamSig::vec(n));
  g.connect(g2, add, mdag::StreamSig::vec(n));
  g.connect(add, wy, mdag::StreamSig::vec(n));
  return g;
}

#define FBLAS_APP_GESUMMV_INSTANTIATE(T)                                     \
  template GesummvResult<T> gesummv_streaming<T>(                            \
      const sim::DeviceSpec&, stream::Mode, int, std::int64_t, T, T,         \
      MatrixView<const T>, MatrixView<const T>, VectorView<const T>);        \
  template GesummvResult<T> gesummv_host_layer<T>(                           \
      host::Context&, T, T, MatrixView<const T>, MatrixView<const T>,        \
      VectorView<const T>);                                                  \
  template host::Event gesummv_composed_async<T>(                            \
      host::Context&, std::int64_t, std::int64_t, T, T,                      \
      const host::Buffer<T>&, const host::Buffer<T>&,                        \
      const host::Buffer<T>&, host::Buffer<T>&);                             \
  template host::Event gesummv_composed_async<T>(                            \
      host::Context&, std::int64_t, std::int64_t, T, T,                      \
      const host::Buffer<T>&, const host::Buffer<T>&,                        \
      const host::Buffer<T>&, host::Buffer<T>&, const verify::Options&);     \
  template std::vector<T> gesummv_cpu<T>(T, T, MatrixView<const T>,          \
                                         MatrixView<const T>,                \
                                         VectorView<const T>);

FBLAS_APP_GESUMMV_INSTANTIATE(float)
FBLAS_APP_GESUMMV_INSTANTIATE(double)
#undef FBLAS_APP_GESUMMV_INSTANTIATE

}  // namespace fblas::apps
