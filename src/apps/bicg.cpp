#include "apps/bicg.hpp"

#include "fblas/level2.hpp"
#include "host/composition.hpp"
#include "refblas/level2.hpp"
#include "sim/frequency_model.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace fblas::apps {

template <typename T>
BicgResult<T> bicg_streaming(const sim::DeviceSpec& dev, stream::Mode mode,
                             int width, std::int64_t tile,
                             MatrixView<const T> A, VectorView<const T> p,
                             VectorView<const T> r) {
  const std::int64_t n = A.rows(), m = A.cols();
  FBLAS_REQUIRE(p.size() == m && r.size() == n, "bicg: shape mismatch");
  const core::GemvConfig cfg_n{Transpose::None,
                               core::MatrixTiling::TilesByRows, width, tile,
                               tile};
  const core::GemvConfig cfg_t{Transpose::Trans,
                               core::MatrixTiling::TilesByRows, width, tile,
                               tile};
  // Both modules consume A in the identical schedule, so one interface
  // module reads A once and duplicates it on chip (Fig. 7).
  FBLAS_REQUIRE(core::gemv_a_schedule(cfg_n) == core::gemv_a_schedule(cfg_t),
                "bicg: the two GEMVs must share one tiling schedule");
  stream::Graph g(mode);
  const auto f = sim::composition_frequency(2, PrecisionTraits<T>::value, dev);
  const double bpc = dev.bank_bandwidth_gbs * 1e9 / (f.mhz * 1e6);
  auto& bank_a = g.bank("ddr0", bpc);
  auto& bank_vec = g.bank("ddr1", bpc);
  const std::size_t cap = static_cast<std::size_t>(std::max(64, 4 * width));
  auto& ca = g.channel<T>("A", cap);
  auto& ca1 = g.channel<T>("A_gemv", cap);
  auto& ca2 = g.channel<T>("A_gemvT", cap);
  auto& cp = g.channel<T>("p", cap);
  auto& cr = g.channel<T>("r", cap);
  auto& cq0 = g.channel<T>("q0", cap);
  auto& cs0 = g.channel<T>("s0", cap);
  auto& cq = g.channel<T>("q", cap);
  auto& cs = g.channel<T>("s", cap);
  BicgResult<T> result;
  g.spawn("read_A", stream::read_matrix<T>(A, core::gemv_a_schedule(cfg_n), 1,
                                           width, ca, &bank_a));
  g.spawn("fanout_A", stream::fanout2<T>(n * m, width, ca, ca1, ca2));
  g.spawn("read_p", stream::read_vector<T>(p, core::gemv_x_repeat(cfg_n, n, m),
                                           width, cp, &bank_vec));
  g.spawn("read_r", stream::read_vector<T>(r, core::gemv_x_repeat(cfg_t, n, m),
                                           width, cr, &bank_vec));
  // beta = 0: the y inputs are zero streams generated on chip.
  g.spawn("zero_q", stream::generate<T>(n, T(0), width, cq0));
  g.spawn("zero_s", stream::generate<T>(m, T(0), width, cs0));
  g.spawn("gemv", core::gemv<T>(cfg_n, n, m, T(1), T(0), ca1, cp, cq0, cq));
  g.spawn("gemv_T", core::gemv<T>(cfg_t, n, m, T(1), T(0), ca2, cr, cs0, cs));
  g.spawn("collect_q", stream::collect<T>(n, cq, result.q));
  g.spawn("collect_s", stream::collect<T>(m, cs, result.s));
  g.run();
  result.cycles = g.cycles();
  return result;
}

template <typename T>
BicgResult<T> bicg_host_layer(host::Context& ctx, MatrixView<const T> A,
                              VectorView<const T> p, VectorView<const T> r) {
  const std::int64_t n = A.rows(), m = A.cols();
  host::Device& dev = ctx.device();
  host::Buffer<T> ba(dev, n * m, 0);
  host::Buffer<T> bp(dev, m, 1 % dev.bank_count());
  host::Buffer<T> br(dev, n, 1 % dev.bank_count());
  host::Buffer<T> bq(dev, n, 2 % dev.bank_count());
  host::Buffer<T> bs(dev, m, 3 % dev.bank_count());
  {
    std::vector<T> host(static_cast<std::size_t>(n * m));
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < m; ++j) {
        host[static_cast<std::size_t>(i * m + j)] = A(i, j);
      }
    }
    ba.write(host);
    std::vector<T> hp(static_cast<std::size_t>(m));
    for (std::int64_t j = 0; j < m; ++j) hp[static_cast<std::size_t>(j)] = p[j];
    bp.write(hp);
    std::vector<T> hr(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) hr[static_cast<std::size_t>(i)] = r[i];
    br.write(hr);
  }
  std::uint64_t cycles = 0;
  ctx.gemv<T>(Transpose::None, n, m, T(1), ba, bp, 1, T(0), bq, 1);
  cycles += ctx.last_cycles();
  ctx.gemv<T>(Transpose::Trans, n, m, T(1), ba, br, 1, T(0), bs, 1);
  cycles += ctx.last_cycles();
  return {bq.to_host(), bs.to_host(), cycles};
}

template <typename T>
host::Event bicg_composed_async(host::Context& ctx, std::int64_t n,
                                std::int64_t m, const host::Buffer<T>& a,
                                const host::Buffer<T>& p,
                                const host::Buffer<T>& r, host::Buffer<T>& q,
                                host::Buffer<T>& s) {
  // A pure description. The two GEMVs consume A in the identical tiling
  // schedule, so the compiler reads A once and synthesizes the on-chip
  // fan-out (Fig. 7), plus the zero q0/s0 streams and the per-FIFO
  // checksum taps the hand-wired path used to spell out.
  const host::RoutineConfig& rc = ctx.config();
  const core::GemvConfig cfg_n{Transpose::None,
                               core::MatrixTiling::TilesByRows, rc.width,
                               rc.tile_rows, rc.tile_rows};
  const core::GemvConfig cfg_t{Transpose::Trans,
                               core::MatrixTiling::TilesByRows, rc.width,
                               rc.tile_rows, rc.tile_rows};
  host::Composition<T> c("bicg");
  const int ra = c.input("read_A", a);
  const int rp = c.input("read_p", p);
  const int rr = c.input("read_r", r);
  const int wq = c.output("store_q", q);
  const int ws = c.output("store_s", s);
  const int g1 = c.gemv("gemv", T(1), T(0));
  const int g2 = c.gemv("gemv_T", T(1), T(0), Transpose::Trans);
  const auto a_sig = mdag::StreamSig::mat(n, m, core::gemv_a_schedule(cfg_n));
  c.connect(ra, g1, a_sig);
  c.connect(ra, g2, a_sig);
  c.connect(rp, g1,
            mdag::StreamSig::vec(m, core::gemv_x_repeat(cfg_n, n, m)));
  c.connect(rr, g2,
            mdag::StreamSig::vec(n, core::gemv_x_repeat(cfg_t, n, m)));
  c.connect(g1, wq, mdag::StreamSig::vec(n));
  c.connect(g2, ws, mdag::StreamSig::vec(m));
  return ctx.run_composition_async(c);
}

template <typename T>
host::Event bicg_composed_async(host::Context& ctx, std::int64_t n,
                                std::int64_t m, const host::Buffer<T>& a,
                                const host::Buffer<T>& p,
                                const host::Buffer<T>& r, host::Buffer<T>& q,
                                host::Buffer<T>& s,
                                const verify::Options& vo) {
  host::RoutineConfig rc = ctx.config();
  rc.verification = vo;
  host::ConfigGuard guard = ctx.with(rc);
  return bicg_composed_async(ctx, n, m, a, p, r, q, s);
}

template <typename T>
BicgResult<T> bicg_cpu(MatrixView<const T> A, VectorView<const T> p,
                       VectorView<const T> r) {
  const std::int64_t n = A.rows(), m = A.cols();
  BicgResult<T> out;
  out.q.assign(static_cast<std::size_t>(n), T(0));
  out.s.assign(static_cast<std::size_t>(m), T(0));
  ref::gemv<T>(Transpose::None, T(1), A, p, T(0),
               VectorView<T>(out.q.data(), n));
  ref::gemv<T>(Transpose::Trans, T(1), A, r, T(0),
               VectorView<T>(out.s.data(), m));
  return out;
}

mdag::Mdag bicg_mdag(std::int64_t n, std::int64_t m, std::int64_t tile) {
  mdag::Mdag g;
  const int ra = g.add_interface("read_A");
  const int rp = g.add_interface("read_p");
  const int rr = g.add_interface("read_r");
  const int wq = g.add_interface("write_q");
  const int ws = g.add_interface("write_s");
  const int gemv = g.add_compute("gemv", RoutineKind::Gemv, 40);
  const int gemvt = g.add_compute("gemv_T", RoutineKind::Gemv, 40);
  const stream::TileSchedule sched{Order::RowMajor, Order::RowMajor, tile,
                                   tile};
  const auto a_sig = mdag::StreamSig::mat(n, m, sched);
  g.connect(ra, gemv, a_sig);
  g.connect(ra, gemvt, a_sig);
  g.connect(rp, gemv, mdag::StreamSig::vec(m, ceil_div(n, tile)));
  g.connect(rr, gemvt, mdag::StreamSig::vec(n));
  g.connect(gemv, wq, mdag::StreamSig::vec(n));
  g.connect(gemvt, ws, mdag::StreamSig::vec(m));
  return g;
}

#define FBLAS_APP_BICG_INSTANTIATE(T)                                        \
  template BicgResult<T> bicg_streaming<T>(                                  \
      const sim::DeviceSpec&, stream::Mode, int, std::int64_t,               \
      MatrixView<const T>, VectorView<const T>, VectorView<const T>);        \
  template BicgResult<T> bicg_host_layer<T>(                                 \
      host::Context&, MatrixView<const T>, VectorView<const T>,              \
      VectorView<const T>);                                                  \
  template host::Event bicg_composed_async<T>(                               \
      host::Context&, std::int64_t, std::int64_t, const host::Buffer<T>&,    \
      const host::Buffer<T>&, const host::Buffer<T>&, host::Buffer<T>&,      \
      host::Buffer<T>&);                                                     \
  template host::Event bicg_composed_async<T>(                               \
      host::Context&, std::int64_t, std::int64_t, const host::Buffer<T>&,    \
      const host::Buffer<T>&, const host::Buffer<T>&, host::Buffer<T>&,      \
      host::Buffer<T>&, const verify::Options&);                             \
  template BicgResult<T> bicg_cpu<T>(MatrixView<const T>,                    \
                                     VectorView<const T>,                    \
                                     VectorView<const T>);

FBLAS_APP_BICG_INSTANTIATE(float)
FBLAS_APP_BICG_INSTANTIATE(double)
#undef FBLAS_APP_BICG_INSTANTIATE

}  // namespace fblas::apps
