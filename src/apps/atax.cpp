#include "apps/atax.hpp"

#include "fblas/level2.hpp"
#include "host/composition.hpp"
#include "refblas/level2.hpp"
#include "sim/frequency_model.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace fblas::apps {
namespace {

template <typename T>
core::GemvConfig atax_cfg(Transpose tr, int width, std::int64_t tile) {
  return core::GemvConfig{tr, core::MatrixTiling::TilesByRows, width, tile,
                          tile};
}

}  // namespace

std::int64_t atax_min_channel_depth(std::int64_t m, std::int64_t tile,
                                    int width) {
  // One full row of tiles (M*TN elements, Sec. V-B) plus fan-out slack.
  return m * tile + 4 * width;
}

template <typename T>
AtaxResult<T> atax_streaming(const sim::DeviceSpec& dev, stream::Mode mode,
                             int width, std::int64_t tile,
                             std::int64_t a_channel_depth,
                             MatrixView<const T> A, VectorView<const T> x) {
  const std::int64_t n = A.rows(), m = A.cols();
  FBLAS_REQUIRE(x.size() == m, "atax: shape mismatch");
  const auto cfg_n = atax_cfg<T>(Transpose::None, width, tile);
  const auto cfg_t = atax_cfg<T>(Transpose::Trans, width, tile);
  stream::Graph g(mode);
  const auto f = sim::composition_frequency(2, PrecisionTraits<T>::value, dev);
  const double bpc = dev.bank_bandwidth_gbs * 1e9 / (f.mhz * 1e6);
  auto& bank_a = g.bank("ddr0", bpc);
  auto& bank_vec = g.bank("ddr1", bpc);
  const std::size_t cap = static_cast<std::size_t>(std::max(64, 4 * width));
  auto& ca = g.channel<T>("A", cap);
  auto& ca1 = g.channel<T>("A_gemv", cap);
  // The direct A channel into the transposed GEMV: its depth decides
  // whether the non-multitree composition can make progress.
  auto& ca2 = g.channel<T>("A_gemvT",
                           static_cast<std::size_t>(a_channel_depth));
  auto& cx = g.channel<T>("x", cap);
  auto& cq0 = g.channel<T>("q0", cap);
  auto& cy0 = g.channel<T>("y0", cap);
  auto& cq = g.channel<T>("q", cap);
  auto& cy = g.channel<T>("y", cap);
  AtaxResult<T> result;
  g.spawn("read_A", stream::read_matrix<T>(A, core::gemv_a_schedule(cfg_n), 1,
                                           width, ca, &bank_a));
  g.spawn("fanout_A", stream::fanout2<T>(n * m, width, ca, ca1, ca2));
  g.spawn("read_x", stream::read_vector<T>(x, core::gemv_x_repeat(cfg_n, n, m),
                                           width, cx, &bank_vec));
  g.spawn("zero_q", stream::generate<T>(n, T(0), width, cq0));
  g.spawn("zero_y", stream::generate<T>(m, T(0), width, cy0));
  g.spawn("gemv", core::gemv<T>(cfg_n, n, m, T(1), T(0), ca1, cx, cq0, cq));
  // q is streamed straight into the transposed GEMV (no replay allowed
  // between computational modules).
  g.spawn("gemv_T", core::gemv<T>(cfg_t, n, m, T(1), T(0), ca2, cq, cy0, cy));
  g.spawn("collect_y", stream::collect<T>(m, cy, result.y));
  g.run();
  result.cycles = g.cycles();
  return result;
}

template <typename T>
AtaxResult<T> atax_split(const sim::DeviceSpec& dev, stream::Mode mode,
                         int width, std::int64_t tile, MatrixView<const T> A,
                         VectorView<const T> x) {
  const std::int64_t n = A.rows(), m = A.cols();
  FBLAS_REQUIRE(x.size() == m, "atax: shape mismatch");
  const auto cfg_n = atax_cfg<T>(Transpose::None, width, tile);
  const auto cfg_t = atax_cfg<T>(Transpose::Trans, width, tile);
  stream::Graph g(mode);
  const auto f = sim::composition_frequency(2, PrecisionTraits<T>::value, dev);
  const double bpc = dev.bank_bandwidth_gbs * 1e9 / (f.mhz * 1e6);
  auto& bank_a = g.bank("ddr0", bpc);
  auto& bank_vec = g.bank("ddr1", bpc);
  const std::size_t cap = static_cast<std::size_t>(std::max(64, 4 * width));
  auto& ca1 = g.channel<T>("A_gemv", cap);
  auto& ca2 = g.channel<T>("A_gemvT", cap);
  auto& cx = g.channel<T>("x", cap);
  auto& cq0 = g.channel<T>("q0", cap);
  auto& cy0 = g.channel<T>("y0", cap);
  auto& cq = g.channel<T>("q", cap);
  auto& cy = g.channel<T>("y", cap);
  AtaxResult<T> result;
  const auto sched = core::gemv_a_schedule(cfg_n);
  // Each GEMV reads A on its own: same I/O as the non-streamed version,
  // but the two matrix-vector products still overlap in a pipeline.
  g.spawn("read_A1", stream::read_matrix<T>(A, sched, 1, width, ca1, &bank_a));
  g.spawn("read_A2", stream::read_matrix<T>(A, sched, 1, width, ca2, &bank_a));
  g.spawn("read_x", stream::read_vector<T>(x, core::gemv_x_repeat(cfg_n, n, m),
                                           width, cx, &bank_vec));
  g.spawn("zero_q", stream::generate<T>(n, T(0), width, cq0));
  g.spawn("zero_y", stream::generate<T>(m, T(0), width, cy0));
  g.spawn("gemv", core::gemv<T>(cfg_n, n, m, T(1), T(0), ca1, cx, cq0, cq));
  g.spawn("gemv_T", core::gemv<T>(cfg_t, n, m, T(1), T(0), ca2, cq, cy0, cy));
  g.spawn("collect_y", stream::collect<T>(m, cy, result.y));
  g.run();
  result.cycles = g.cycles();
  return result;
}

template <typename T>
AtaxResult<T> atax_auto(const sim::DeviceSpec& dev, stream::Mode mode,
                        int width, std::int64_t tile,
                        std::int64_t max_channel_depth,
                        MatrixView<const T> A, VectorView<const T> x) {
  const std::int64_t n = A.rows(), m = A.cols();
  const auto g = atax_mdag(n, m, tile);
  mdag::PlanOptions opt;
  opt.max_channel_depth = max_channel_depth;
  const auto plan = mdag::derive_plan(g, opt);
  if (plan.components.size() == 1 && !plan.sizings.empty()) {
    // Fully streaming with the planner's channel depth (plus fan-out
    // slack, which the analysis bound does not include).
    return atax_streaming<T>(dev, mode, width, tile,
                             plan.sizings[0].min_depth + 4 * width, A, x);
  }
  return atax_split<T>(dev, mode, width, tile, A, x);
}

template <typename T>
AtaxResult<T> atax_host_layer(host::Context& ctx, MatrixView<const T> A,
                              VectorView<const T> x) {
  const std::int64_t n = A.rows(), m = A.cols();
  host::Device& dev = ctx.device();
  host::Buffer<T> ba(dev, n * m, 0);
  host::Buffer<T> bx(dev, m, 1 % dev.bank_count());
  host::Buffer<T> bq(dev, n, 2 % dev.bank_count());
  host::Buffer<T> by(dev, m, 3 % dev.bank_count());
  {
    std::vector<T> host(static_cast<std::size_t>(n * m));
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < m; ++j) {
        host[static_cast<std::size_t>(i * m + j)] = A(i, j);
      }
    }
    ba.write(host);
    std::vector<T> hx(static_cast<std::size_t>(m));
    for (std::int64_t j = 0; j < m; ++j) hx[static_cast<std::size_t>(j)] = x[j];
    bx.write(hx);
  }
  std::uint64_t cycles = 0;
  ctx.gemv<T>(Transpose::None, n, m, T(1), ba, bx, 1, T(0), bq, 1);
  cycles += ctx.last_cycles();
  ctx.gemv<T>(Transpose::Trans, n, m, T(1), ba, bq, 1, T(0), by, 1);
  cycles += ctx.last_cycles();
  return {by.to_host(), cycles};
}

template <typename T>
host::Event atax_composed_async(host::Context& ctx, std::int64_t n,
                                std::int64_t m, const host::Buffer<T>& a,
                                const host::Buffer<T>& x,
                                host::Buffer<T>& y) {
  // A pure description. The compiler detects the two vertex-disjoint
  // A-paths into the transposed GEMV and sizes the direct channel to one
  // full row of tiles (the atax_min_channel_depth analysis), synthesizes
  // the A fan-out and the zero q0/y0 inputs, and derives the per-FIFO
  // checksum plan the hand-wired path used to spell out.
  const host::RoutineConfig& rc = ctx.config();
  const auto cfg = atax_cfg<T>(Transpose::None, rc.width, rc.tile_rows);
  host::Composition<T> c("atax");
  const int ra = c.input("read_A", a);
  const int rx = c.input("read_x", x);
  const int wy = c.output("store_y", y);
  const int g1 = c.gemv("gemv", T(1), T(0));
  const int g2 = c.gemv("gemv_T", T(1), T(0), Transpose::Trans);
  const auto a_sig = mdag::StreamSig::mat(n, m, core::gemv_a_schedule(cfg));
  c.connect(ra, g1, a_sig);
  c.connect(ra, g2, a_sig);
  c.connect(rx, g1,
            mdag::StreamSig::vec(m, core::gemv_x_repeat(cfg, n, m)));
  c.connect(g1, g2, mdag::StreamSig::vec(n));
  c.connect(g2, wy, mdag::StreamSig::vec(m));
  return ctx.run_composition_async(c);
}

template <typename T>
host::Event atax_composed_async(host::Context& ctx, std::int64_t n,
                                std::int64_t m, const host::Buffer<T>& a,
                                const host::Buffer<T>& x, host::Buffer<T>& y,
                                const verify::Options& vo) {
  host::RoutineConfig rc = ctx.config();
  rc.verification = vo;
  host::ConfigGuard guard = ctx.with(rc);
  return atax_composed_async(ctx, n, m, a, x, y);
}

template <typename T>
std::vector<T> atax_cpu(MatrixView<const T> A, VectorView<const T> x) {
  const std::int64_t n = A.rows(), m = A.cols();
  std::vector<T> q(static_cast<std::size_t>(n), T(0));
  std::vector<T> y(static_cast<std::size_t>(m), T(0));
  ref::gemv<T>(Transpose::None, T(1), A, x, T(0), VectorView<T>(q.data(), n));
  ref::gemv<T>(Transpose::Trans, T(1), A,
               VectorView<const T>(q.data(), n), T(0),
               VectorView<T>(y.data(), m));
  return y;
}

mdag::Mdag atax_mdag(std::int64_t n, std::int64_t m, std::int64_t tile) {
  mdag::Mdag g;
  const int ra = g.add_interface("read_A");
  const int rx = g.add_interface("read_x");
  const int wy = g.add_interface("write_y");
  const int g1 = g.add_compute("gemv", RoutineKind::Gemv, 40);
  const int g2 = g.add_compute("gemv_T", RoutineKind::Gemv, 40);
  const stream::TileSchedule sched{Order::RowMajor, Order::RowMajor, tile,
                                   tile};
  const auto a_sig = mdag::StreamSig::mat(n, m, sched);
  g.connect(ra, g1, a_sig);
  g.connect(ra, g2, a_sig);
  g.connect(rx, g1, mdag::StreamSig::vec(m, ceil_div(n, tile)));
  g.connect(g1, g2, mdag::StreamSig::vec(n));
  g.connect(g2, wy, mdag::StreamSig::vec(m));
  return g;
}

#define FBLAS_APP_ATAX_INSTANTIATE(T)                                        \
  template AtaxResult<T> atax_streaming<T>(                                  \
      const sim::DeviceSpec&, stream::Mode, int, std::int64_t, std::int64_t, \
      MatrixView<const T>, VectorView<const T>);                             \
  template AtaxResult<T> atax_auto<T>(                                       \
      const sim::DeviceSpec&, stream::Mode, int, std::int64_t, std::int64_t, \
      MatrixView<const T>, VectorView<const T>);                             \
  template AtaxResult<T> atax_split<T>(                                      \
      const sim::DeviceSpec&, stream::Mode, int, std::int64_t,               \
      MatrixView<const T>, VectorView<const T>);                             \
  template AtaxResult<T> atax_host_layer<T>(host::Context&,                  \
                                            MatrixView<const T>,             \
                                            VectorView<const T>);            \
  template host::Event atax_composed_async<T>(                               \
      host::Context&, std::int64_t, std::int64_t, const host::Buffer<T>&,    \
      const host::Buffer<T>&, host::Buffer<T>&);                             \
  template host::Event atax_composed_async<T>(                               \
      host::Context&, std::int64_t, std::int64_t, const host::Buffer<T>&,    \
      const host::Buffer<T>&, host::Buffer<T>&, const verify::Options&);     \
  template std::vector<T> atax_cpu<T>(MatrixView<const T>,                   \
                                      VectorView<const T>);

FBLAS_APP_ATAX_INSTANTIATE(float)
FBLAS_APP_ATAX_INSTANTIATE(double)
#undef FBLAS_APP_ATAX_INSTANTIATE

}  // namespace fblas::apps
