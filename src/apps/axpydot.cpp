#include "apps/axpydot.hpp"

#include <vector>

#include "fblas/level1.hpp"
#include "host/composition.hpp"
#include "refblas/level1.hpp"
#include "sim/frequency_model.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace fblas::apps {

template <typename T>
AxpydotResult<T> axpydot_streaming(const sim::DeviceSpec& dev,
                                   stream::Mode mode, int width,
                                   VectorView<const T> w,
                                   VectorView<const T> v,
                                   VectorView<const T> u, T alpha) {
  const std::int64_t n = w.size();
  FBLAS_REQUIRE(v.size() == n && u.size() == n, "axpydot: length mismatch");
  stream::Graph g(mode);
  // The three input vectors live on separate DDR banks (Sec. VI-A: no
  // automatic interleaving, manual placement).
  const auto f = sim::composition_frequency(0, PrecisionTraits<T>::value, dev);
  const double bpc = dev.bank_bandwidth_gbs * 1e9 / (f.mhz * 1e6);
  auto& bank_w = g.bank("ddr0", bpc);
  auto& bank_v = g.bank("ddr1", bpc);
  auto& bank_u = g.bank(dev.ddr_banks >= 3 ? "ddr2" : "ddr0_u", bpc);
  const std::size_t cap = static_cast<std::size_t>(std::max(64, 2 * width));
  auto& cw = g.channel<T>("w", cap);
  auto& cv = g.channel<T>("v", cap);
  auto& cu = g.channel<T>("u", cap);
  auto& cz = g.channel<T>("z", cap);
  auto& cres = g.channel<T>("beta", 2);
  std::vector<T> out;
  g.spawn("read_w", stream::read_vector<T>(w, 1, width, cw, &bank_w));
  g.spawn("read_v", stream::read_vector<T>(v, 1, width, cv, &bank_v));
  g.spawn("read_u", stream::read_vector<T>(u, 1, width, cu, &bank_u));
  // z = (-alpha) * v + w, streamed straight into the DOT module.
  g.spawn("axpy", core::axpy<T>({width}, n, -alpha, cv, cw, cz));
  g.spawn("dot", core::dot<T>({width}, n, cz, cu, cres));
  g.spawn("collect", stream::collect<T>(1, cres, out));
  g.run();
  return {out.at(0), g.cycles()};
}

template <typename T>
AxpydotResult<T> axpydot_host_layer(host::Context& ctx,
                                    VectorView<const T> w,
                                    VectorView<const T> v,
                                    VectorView<const T> u, T alpha) {
  const std::int64_t n = w.size();
  host::Device& dev = ctx.device();
  // w, v, u on their own banks; the COPY target z shares w's bank, so the
  // AXPY phase reads and writes z through one memory module.
  host::Buffer<T> bw(dev, n, 0);
  host::Buffer<T> bv(dev, n, 1 % dev.bank_count());
  host::Buffer<T> bu(dev, n, 2 % dev.bank_count());
  host::Buffer<T> bz(dev, n, 0);
  {
    std::vector<T> host(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) host[static_cast<std::size_t>(i)] = w[i];
    bw.write(host);
    for (std::int64_t i = 0; i < n; ++i) host[static_cast<std::size_t>(i)] = v[i];
    bv.write(host);
    for (std::int64_t i = 0; i < n; ++i) host[static_cast<std::size_t>(i)] = u[i];
    bu.write(host);
  }
  std::uint64_t cycles = 0;
  ctx.copy<T>(n, bw, 1, bz, 1);
  cycles += ctx.last_cycles();
  ctx.axpy<T>(n, -alpha, bv, 1, bz, 1);
  cycles += ctx.last_cycles();
  const T beta = ctx.dot<T>(n, bz, 1, bu, 1);
  cycles += ctx.last_cycles();
  return {beta, cycles};
}

template <typename T>
host::Event axpydot_composed_async(host::Context& ctx, std::int64_t n,
                                   const host::Buffer<T>& w,
                                   const host::Buffer<T>& v,
                                   const host::Buffer<T>& u, T alpha,
                                   T* beta) {
  // A pure description: the compiler derives the channels, the checksum
  // taps on every FIFO, and the refblas fallback the old hand-wired path
  // spelled out module by module.
  host::Composition<T> c("axpydot");
  const int rv = c.input("read_v", v);
  const int rw = c.input("read_w", w);
  const int ru = c.input("read_u", u);
  const int wb = c.output_scalar("write_beta", beta);
  const int ax = c.axpy("axpy", -alpha);  // z = w - alpha v
  const int dt = c.dot("dot");
  c.connect(rv, ax, mdag::StreamSig::vec(n));
  c.connect(rw, ax, mdag::StreamSig::vec(n));
  c.connect(ax, dt, mdag::StreamSig::vec(n));
  c.connect(ru, dt, mdag::StreamSig::vec(n));
  c.connect(dt, wb, mdag::StreamSig::vec(1));
  return ctx.run_composition_async(c);
}

template <typename T>
host::Event axpydot_composed_async(host::Context& ctx, std::int64_t n,
                                   const host::Buffer<T>& w,
                                   const host::Buffer<T>& v,
                                   const host::Buffer<T>& u, T alpha, T* beta,
                                   const verify::Options& vo) {
  host::RoutineConfig rc = ctx.config();
  rc.verification = vo;
  host::ConfigGuard guard = ctx.with(rc);
  return axpydot_composed_async(ctx, n, w, v, u, alpha, beta);
}

template <typename T>
T axpydot_cpu(VectorView<const T> w, VectorView<const T> v,
              VectorView<const T> u, T alpha) {
  const std::int64_t n = w.size();
  std::vector<T> z(static_cast<std::size_t>(n));
  ref::copy<T>(w, VectorView<T>(z.data(), n));
  ref::axpy<T>(-alpha, v, VectorView<T>(z.data(), n));
  return ref::dot<T>(VectorView<const T>(z.data(), n), u);
}

mdag::Mdag axpydot_mdag(std::int64_t n) {
  mdag::Mdag g;
  const int rv = g.add_interface("read_v");
  const int rw = g.add_interface("read_w");
  const int ru = g.add_interface("read_u");
  const int wb = g.add_interface("write_beta");
  const int axpy = g.add_compute("axpy", RoutineKind::Axpy, 12);
  const int dot = g.add_compute("dot", RoutineKind::Dot, 30);
  g.connect(rv, axpy, mdag::StreamSig::vec(n));
  g.connect(rw, axpy, mdag::StreamSig::vec(n));
  g.connect(axpy, dot, mdag::StreamSig::vec(n));
  g.connect(ru, dot, mdag::StreamSig::vec(n));
  g.connect(dot, wb, mdag::StreamSig::vec(1));
  return g;
}

#define FBLAS_APP_AXPYDOT_INSTANTIATE(T)                                     \
  template AxpydotResult<T> axpydot_streaming<T>(                            \
      const sim::DeviceSpec&, stream::Mode, int, VectorView<const T>,        \
      VectorView<const T>, VectorView<const T>, T);                          \
  template AxpydotResult<T> axpydot_host_layer<T>(                           \
      host::Context&, VectorView<const T>, VectorView<const T>,              \
      VectorView<const T>, T);                                               \
  template host::Event axpydot_composed_async<T>(                            \
      host::Context&, std::int64_t, const host::Buffer<T>&,                  \
      const host::Buffer<T>&, const host::Buffer<T>&, T, T*);                \
  template host::Event axpydot_composed_async<T>(                            \
      host::Context&, std::int64_t, const host::Buffer<T>&,                  \
      const host::Buffer<T>&, const host::Buffer<T>&, T, T*,                 \
      const verify::Options&);                                               \
  template T axpydot_cpu<T>(VectorView<const T>, VectorView<const T>,        \
                            VectorView<const T>, T);

FBLAS_APP_AXPYDOT_INSTANTIATE(float)
FBLAS_APP_AXPYDOT_INSTANTIATE(double)
#undef FBLAS_APP_AXPYDOT_INSTANTIATE

}  // namespace fblas::apps
