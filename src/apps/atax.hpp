// ATAX (Sec. V-B, Fig. 8): y = A^T (A x). The natural full-streaming
// composition shares the A interface between the two GEMVs *and* chains
// the first GEMV's output into the second — a non-multitree with two
// vertex-disjoint paths from the A reader to the transposed GEMV. The
// composition stalls forever unless the direct A channel can buffer an
// entire row of tiles (>= M*TN elements); with dynamic N it is invalid.
// The fallback splits the MDAG: each GEMV reads A independently (same
// I/O as the non-streamed version, but still pipelined).
#pragma once

#include <cstdint>
#include <vector>

#include "common/view.hpp"
#include "host/context.hpp"
#include "mdag/graph.hpp"
#include "sim/device.hpp"
#include "stream/scheduler.hpp"

namespace fblas::apps {

template <typename T>
struct AtaxResult {
  std::vector<T> y;
  std::uint64_t cycles = 0;
};

/// Fully-streaming composition with a caller-chosen depth for the direct
/// A channel into the transposed GEMV. Depths below M*TN elements
/// deadlock (stream::DeadlockError), reproducing the paper's analysis;
/// depths >= M*TN complete.
template <typename T>
AtaxResult<T> atax_streaming(const sim::DeviceSpec& dev, stream::Mode mode,
                             int width, std::int64_t tile,
                             std::int64_t a_channel_depth,
                             MatrixView<const T> A, VectorView<const T> x);

/// Minimum direct-channel depth that makes the full streaming
/// composition valid for an n x m matrix (one full row of tiles plus the
/// fan-out slack).
std::int64_t atax_min_channel_depth(std::int64_t m, std::int64_t tile,
                                    int width);

/// Split composition: the two GEMVs read A independently and the
/// intermediate vector round-trips DRAM.
template <typename T>
AtaxResult<T> atax_split(const sim::DeviceSpec& dev, stream::Mode mode,
                         int width, std::int64_t tile, MatrixView<const T> A,
                         VectorView<const T> x);

/// Plan-driven execution: consults the automatic MDAG planner
/// (mdag/auto_partition) and runs either the fully-streaming composition
/// with the planner's channel sizing (when the lag fits
/// `max_channel_depth`) or the split schedule.
template <typename T>
AtaxResult<T> atax_auto(const sim::DeviceSpec& dev, stream::Mode mode,
                        int width, std::int64_t tile,
                        std::int64_t max_channel_depth,
                        MatrixView<const T> A, VectorView<const T> x);

/// Host-layer baseline: two GEMV launches through the Context.
template <typename T>
AtaxResult<T> atax_host_layer(host::Context& ctx, MatrixView<const T> A,
                              VectorView<const T> x);

/// Fully-streaming composition as ONE host command: the whole two-GEMV
/// graph runs inside a single Command, so the intermediate q never
/// round-trips DRAM, yet the command still gets the executor's full
/// fault-tolerance ladder (snapshot, rollback, retry, CPU fallback) and —
/// when the captured verify::Options enable it — end-to-end checksum
/// verification of every streaming edge via verify::GraphChecker, which
/// localizes silent mid-pipeline corruption to the first divergent
/// channel. `a` is n x m row-major, `x` length m, `y` length m.
template <typename T>
host::Event atax_composed_async(host::Context& ctx, std::int64_t n,
                                std::int64_t m, const host::Buffer<T>& a,
                                const host::Buffer<T>& x, host::Buffer<T>& y);
/// Same, with a per-call verification override (scoped via ConfigGuard —
/// knobs are captured at enqueue, so only this command is affected).
template <typename T>
host::Event atax_composed_async(host::Context& ctx, std::int64_t n,
                                std::int64_t m, const host::Buffer<T>& a,
                                const host::Buffer<T>& x, host::Buffer<T>& y,
                                const verify::Options& vo);
template <typename T>
void atax_composed(host::Context& ctx, std::int64_t n, std::int64_t m,
                   const host::Buffer<T>& a, const host::Buffer<T>& x,
                   host::Buffer<T>& y) {
  atax_composed_async(ctx, n, m, a, x, y).wait();
}

/// CPU reference.
template <typename T>
std::vector<T> atax_cpu(MatrixView<const T> A, VectorView<const T> x);

/// The (invalid) fully-streaming MDAG.
mdag::Mdag atax_mdag(std::int64_t n, std::int64_t m, std::int64_t tile);

}  // namespace fblas::apps
