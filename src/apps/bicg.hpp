// BICG (Sec. V-A, Fig. 7): q = A p and s = A^T r, the two independent
// matrix-vector products of the biconjugate gradient method. The
// streaming composition reads A from DRAM once and broadcasts it on chip
// to a GEMV and a transposed GEMV that share the same tiling schedule,
// halving the dominant I/O term (2NM -> NM).
#pragma once

#include <cstdint>
#include <vector>

#include "common/view.hpp"
#include "host/context.hpp"
#include "mdag/graph.hpp"
#include "sim/device.hpp"
#include "stream/scheduler.hpp"

namespace fblas::apps {

template <typename T>
struct BicgResult {
  std::vector<T> q;  ///< A p   (n elements)
  std::vector<T> s;  ///< A^T r (m elements)
  std::uint64_t cycles = 0;
};

/// Fully-streaming composition: one A reader feeding both GEMVs.
template <typename T>
BicgResult<T> bicg_streaming(const sim::DeviceSpec& dev, stream::Mode mode,
                             int width, std::int64_t tile,
                             MatrixView<const T> A, VectorView<const T> p,
                             VectorView<const T> r);

/// Host-layer baseline: two independent GEMV launches (A read twice).
template <typename T>
BicgResult<T> bicg_host_layer(host::Context& ctx, MatrixView<const T> A,
                              VectorView<const T> p, VectorView<const T> r);

/// Streaming composition as ONE host command: A is read once and
/// broadcast on chip, q and s land straight in their device buffers, and
/// the command carries the executor's fault-tolerance ladder plus — when
/// the captured verify::Options enable it — per-edge checksum
/// verification (verify::GraphChecker) that localizes mid-pipeline
/// corruption to the first divergent channel. `a` is n x m row-major,
/// `p` length m, `r` length n, `q` length n, `s` length m.
template <typename T>
host::Event bicg_composed_async(host::Context& ctx, std::int64_t n,
                                std::int64_t m, const host::Buffer<T>& a,
                                const host::Buffer<T>& p,
                                const host::Buffer<T>& r, host::Buffer<T>& q,
                                host::Buffer<T>& s);
/// Same, with a per-call verification override (scoped via ConfigGuard).
template <typename T>
host::Event bicg_composed_async(host::Context& ctx, std::int64_t n,
                                std::int64_t m, const host::Buffer<T>& a,
                                const host::Buffer<T>& p,
                                const host::Buffer<T>& r, host::Buffer<T>& q,
                                host::Buffer<T>& s, const verify::Options& vo);
template <typename T>
void bicg_composed(host::Context& ctx, std::int64_t n, std::int64_t m,
                   const host::Buffer<T>& a, const host::Buffer<T>& p,
                   const host::Buffer<T>& r, host::Buffer<T>& q,
                   host::Buffer<T>& s) {
  bicg_composed_async(ctx, n, m, a, p, r, q, s).wait();
}

/// CPU reference.
template <typename T>
BicgResult<T> bicg_cpu(MatrixView<const T> A, VectorView<const T> p,
                       VectorView<const T> r);

/// The MDAG of the streaming composition.
mdag::Mdag bicg_mdag(std::int64_t n, std::int64_t m, std::int64_t tile);

}  // namespace fblas::apps
