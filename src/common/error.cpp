#include "common/error.hpp"

#include <sstream>

namespace fblas::detail {

void throw_config_error(const char* cond, const char* file, int line,
                        const std::string& msg) {
  std::ostringstream os;
  os << msg << " [requirement `" << cond << "` failed at " << file << ":"
     << line << "]";
  throw ConfigError(os.str());
}

}  // namespace fblas::detail
