#include "common/routines.hpp"

#include <array>

#include "common/error.hpp"

namespace fblas {
namespace {

constexpr std::array<RoutineInfo, kRoutineCount> kRoutines{{
    // kind, name, level, circuit, operands/W, ops/elem, matrix
    {RoutineKind::Rotg, "rotg", 1, CircuitClass::Map, 2, 4, false},
    {RoutineKind::Rotmg, "rotmg", 1, CircuitClass::Map, 4, 8, false},
    {RoutineKind::Rot, "rot", 1, CircuitClass::Map, 2, 6, false},
    {RoutineKind::Rotm, "rotm", 1, CircuitClass::Map, 2, 6, false},
    {RoutineKind::Swap, "swap", 1, CircuitClass::Map, 2, 0, false},
    {RoutineKind::Scal, "scal", 1, CircuitClass::Map, 1, 1, false},
    {RoutineKind::Copy, "copy", 1, CircuitClass::Map, 1, 0, false},
    {RoutineKind::Axpy, "axpy", 1, CircuitClass::Map, 2, 2, false},
    {RoutineKind::Dot, "dot", 1, CircuitClass::MapReduce, 2, 2, false},
    {RoutineKind::Sdsdot, "sdsdot", 1, CircuitClass::MapReduce, 2, 2, false},
    {RoutineKind::Nrm2, "nrm2", 1, CircuitClass::MapReduce, 1, 2, false},
    {RoutineKind::Asum, "asum", 1, CircuitClass::MapReduce, 1, 1, false},
    {RoutineKind::Iamax, "iamax", 1, CircuitClass::MapReduce, 1, 1, false},
    {RoutineKind::Gemv, "gemv", 2, CircuitClass::MapReduce, 2, 2, true},
    {RoutineKind::Trsv, "trsv", 2, CircuitClass::MapReduce, 1, 2, true},
    {RoutineKind::Ger, "ger", 2, CircuitClass::Map, 1, 2, true},
    {RoutineKind::Syr, "syr", 2, CircuitClass::Map, 1, 2, true},
    {RoutineKind::Syr2, "syr2", 2, CircuitClass::Map, 1, 4, true},
    {RoutineKind::Gemm, "gemm", 3, CircuitClass::Systolic, 2, 2, true},
    {RoutineKind::Syrk, "syrk", 3, CircuitClass::Systolic, 2, 2, true},
    {RoutineKind::Syr2k, "syr2k", 3, CircuitClass::Systolic, 2, 4, true},
    {RoutineKind::Trsm, "trsm", 3, CircuitClass::Systolic, 1, 2, true},
}};

}  // namespace

const RoutineInfo& routine_info(RoutineKind kind) {
  for (const auto& r : kRoutines) {
    if (r.kind == kind) return r;
  }
  throw ConfigError("unknown routine kind");
}

RoutineKind routine_from_name(std::string_view name) {
  // Accept an optional precision prefix ("sdot" -> "dot"); "sdsdot" is
  // checked first since its 's' is part of the name itself.
  for (const auto& r : kRoutines) {
    if (r.name == name) return r.kind;
  }
  if (name.size() > 1 && (name.front() == 's' || name.front() == 'd')) {
    const std::string_view stripped = name.substr(1);
    for (const auto& r : kRoutines) {
      if (r.name == stripped) return r.kind;
    }
  }
  throw ConfigError("unknown routine name: '" + std::string(name) + "'");
}

const RoutineInfo* all_routines() { return kRoutines.data(); }

}  // namespace fblas
