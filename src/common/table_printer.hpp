// Fixed-width table output used by the benchmark harnesses to print
// paper-style tables (Table I, III, IV, V, VI) and figure series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fblas {

/// Accumulates rows of string cells and prints an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Renders the table (header, rule, rows) to a string.
  std::string str() const;

  /// Convenience: renders and writes to stdout.
  void print() const;

  std::size_t rows() const { return rows_.size(); }

  // Cell formatting helpers.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(std::int64_t v);
  /// Human-scaled ops/s, e.g. "12.3 GOps/s".
  static std::string fmt_rate(double ops_per_sec);
  /// Seconds rendered with an adaptive unit (usec/msec/sec).
  static std::string fmt_time(double seconds);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fblas
