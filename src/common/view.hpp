// Lightweight non-owning vector/matrix views (row-major storage with
// leading dimension, strided vectors), in the spirit of std::mdspan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace fblas {

/// Strided view over `n` elements: element i lives at data[i * inc].
/// `inc` mirrors the BLAS increment argument (must be >= 1 here).
template <typename T>
class VectorView {
 public:
  VectorView() = default;
  VectorView(T* data, std::int64_t n, std::int64_t inc = 1)
      : data_(data), n_(n), inc_(inc) {
    FBLAS_REQUIRE(n >= 0, "vector length must be non-negative");
    FBLAS_REQUIRE(inc >= 1, "vector increment must be positive");
  }
  // NOLINTNEXTLINE(google-explicit-constructor): vectors decay naturally.
  VectorView(std::vector<std::remove_const_t<T>>& v)
      : data_(v.data()), n_(static_cast<std::int64_t>(v.size())), inc_(1) {}

  T& operator[](std::int64_t i) const { return data_[i * inc_]; }
  T* data() const { return data_; }
  std::int64_t size() const { return n_; }
  std::int64_t inc() const { return inc_; }

  VectorView sub(std::int64_t offset, std::int64_t len) const {
    return VectorView(data_ + offset * inc_, len, inc_);
  }

 private:
  T* data_ = nullptr;
  std::int64_t n_ = 0;
  std::int64_t inc_ = 1;
};

/// Row-major matrix view: element (i, j) lives at data[i * ld + j].
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, std::int64_t rows, std::int64_t cols, std::int64_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    FBLAS_REQUIRE(rows >= 0 && cols >= 0, "matrix shape must be non-negative");
    FBLAS_REQUIRE(ld >= cols, "leading dimension must cover a full row");
  }
  MatrixView(T* data, std::int64_t rows, std::int64_t cols)
      : MatrixView(data, rows, cols, cols) {}

  T& operator()(std::int64_t i, std::int64_t j) const {
    return data_[i * ld_ + j];
  }
  T* data() const { return data_; }
  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t ld() const { return ld_; }

  /// A view of the rectangle [r0, r0+nr) x [c0, c0+nc).
  MatrixView block(std::int64_t r0, std::int64_t c0, std::int64_t nr,
                   std::int64_t nc) const {
    return MatrixView(data_ + r0 * ld_ + c0, nr, nc, ld_);
  }

 private:
  T* data_ = nullptr;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t ld_ = 0;
};

}  // namespace fblas
