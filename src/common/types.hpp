// Core enums and precision traits used across the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fblas {

/// Floating-point precision of a routine instance.
enum class Precision { Single, Double };

/// BLAS operand transposition.
enum class Transpose { None, Trans };

/// Triangular operand side/storage.
enum class Uplo { Upper, Lower };
enum class Diag { NonUnit, Unit };
enum class Side { Left, Right };

/// Element order of a 2-D traversal: by rows (row-major) or by columns.
enum class Order { RowMajor, ColMajor };

constexpr std::string_view to_string(Precision p) {
  return p == Precision::Single ? "single" : "double";
}
constexpr std::string_view to_string(Transpose t) {
  return t == Transpose::None ? "N" : "T";
}
constexpr std::string_view to_string(Order o) {
  return o == Order::RowMajor ? "rows" : "cols";
}

/// Maps a C++ scalar type to its Precision tag and BLAS prefix.
template <typename T>
struct PrecisionTraits;

template <>
struct PrecisionTraits<float> {
  static constexpr Precision value = Precision::Single;
  static constexpr char prefix = 's';
  /// Accumulator type used by mixed-precision routines (SDSDOT).
  using Accumulator = double;
};

template <>
struct PrecisionTraits<double> {
  static constexpr Precision value = Precision::Double;
  static constexpr char prefix = 'd';
  using Accumulator = double;
};

/// Size in bytes of one operand of the given precision.
constexpr std::size_t bytes_of(Precision p) {
  return p == Precision::Single ? 4 : 8;
}

/// Integer ceiling division, used pervasively by tiling arithmetic.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Rounds `a` up to the next multiple of `b`.
constexpr std::int64_t round_up(std::int64_t a, std::int64_t b) {
  return ceil_div(a, b) * b;
}

}  // namespace fblas
