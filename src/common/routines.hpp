// Metadata for the 22 BLAS routines FBLAS offers (Sec. VI: all Level-1
// plus all generic Level-2/3 routines). Shared by the core library, the
// space/time models, the code generator and the host API.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace fblas {

enum class RoutineKind {
  // Level 1
  Rotg,
  Rotmg,
  Rot,
  Rotm,
  Swap,
  Scal,
  Copy,
  Axpy,
  Dot,
  Sdsdot,
  Nrm2,
  Asum,
  Iamax,
  // Level 2
  Gemv,
  Trsv,
  Ger,
  Syr,
  Syr2,
  // Level 3
  Gemm,
  Syrk,
  Syr2k,
  Trsm,
};

inline constexpr int kRoutineCount = 22;

/// Computational class of the inner circuit (Sec. IV-A): a map (independent
/// per-element work), a map-reduce (accumulation), or the 2-D systolic
/// array used by Level-3 (Sec. III-C).
enum class CircuitClass { Map, MapReduce, Systolic };

struct RoutineInfo {
  RoutineKind kind;
  std::string_view name;  ///< lowercase BLAS name without precision prefix
  int level;              ///< BLAS level (1, 2 or 3)
  CircuitClass circuit;
  /// Input operands consumed per clock cycle per unit of vectorization
  /// width (e.g. DOT pops 2W: x and y), used by the optimal-width model.
  int operands_per_width;
  /// Useful floating-point operations per element pair processed (DOT: 2 —
  /// one multiply + one add; SCAL: 1; GEMV/GEMM: 2 per MAC).
  int ops_per_element;
  bool streams_matrix;  ///< has a tiled 2-D operand
};

/// Metadata lookup; every RoutineKind has an entry.
const RoutineInfo& routine_info(RoutineKind kind);

/// Parses a lowercase routine name ("dot", "gemv", ...). Throws ConfigError
/// for unknown names.
RoutineKind routine_from_name(std::string_view name);

/// All 22 routines, in declaration order.
const RoutineInfo* all_routines();

}  // namespace fblas
