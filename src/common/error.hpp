// Error types shared by all FBLAS subsystems.
#pragma once

#include <stdexcept>
#include <string>

namespace fblas {

/// Base class for all FBLAS errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// An invalid routine/module configuration (bad width, tile size, shape...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// The streaming graph can make no further progress: every live module is
/// blocked on a channel. Mirrors a hardware design that stalls forever
/// (Sec. V-B of the paper, e.g. the invalid ATAX composition).
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

/// A design does not fit the target device (placement/routing failure in
/// the paper's terms, e.g. DDOT with W=256 on the Stratix 10).
class FitError : public Error {
 public:
  explicit FitError(const std::string& what) : Error(what) {}
};

/// Malformed input to the code generator (JSON syntax or schema).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A transient device-side failure the host can observe and retry: a
/// kernel launch that errors out, or a DRAM/PCIe transfer whose
/// corruption was detected (ECC/CRC). Retryable — re-running the command
/// against restored inputs is expected to succeed.
class DeviceError : public Error {
 public:
  explicit DeviceError(const std::string& what) : Error(what) {}
};

/// The watchdog expired: a streaming graph exceeded its cycle budget or
/// wall-clock deadline without completing (live-locked, wedged, or
/// pathologically slow). Carries the same per-module / per-channel
/// diagnostics as DeadlockError. Retryable, like DeviceError.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// A result checker (ABFT checksum / invariant) rejected the output of a
/// command the device reported as successful — the signature of silent
/// data corruption. Retryable, like DeviceError: re-running against the
/// rolled-back inputs is expected to produce a clean result.
class VerificationError : public Error {
 public:
  explicit VerificationError(const std::string& what) : Error(what) {}
};

/// A streaming module pushed a non-finite value (NaN/Inf) into a channel
/// while the taint trap was armed. Names the producing module and the
/// channel. Not retryable: the poison is a deterministic function of the
/// inputs, so a re-run would reproduce it.
class TaintError : public Error {
 public:
  explicit TaintError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_config_error(const char* cond, const char* file,
                                     int line, const std::string& msg);
}  // namespace detail

/// Validates a configuration precondition; throws ConfigError on failure.
#define FBLAS_REQUIRE(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::fblas::detail::throw_config_error(#cond, __FILE__, __LINE__, msg); \
    }                                                                     \
  } while (false)

}  // namespace fblas
