#include "common/table_printer.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace fblas {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FBLAS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  FBLAS_REQUIRE(cells.size() == headers_.size(),
                "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TablePrinter::print() const { std::cout << str() << std::flush; }

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::fmt_int(std::int64_t v) {
  return std::to_string(v);
}

std::string TablePrinter::fmt_rate(double ops_per_sec) {
  const char* unit = "Ops/s";
  double v = ops_per_sec;
  if (v >= 1e12) {
    v /= 1e12;
    unit = "TOps/s";
  } else if (v >= 1e9) {
    v /= 1e9;
    unit = "GOps/s";
  } else if (v >= 1e6) {
    v /= 1e6;
    unit = "MOps/s";
  }
  return fmt(v, 2) + " " + unit;
}

std::string TablePrinter::fmt_time(double seconds) {
  if (seconds < 1e-3) return fmt(seconds * 1e6, 1) + " usec";
  if (seconds < 1.0) return fmt(seconds * 1e3, 2) + " msec";
  return fmt(seconds, 2) + " sec";
}

}  // namespace fblas
