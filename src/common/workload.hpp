// Deterministic synthetic workload generation for tests and benchmarks.
// The paper generates input data directly on the FPGA for the scaling
// experiments; here a seeded PRNG plays that role.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "common/view.hpp"

namespace fblas {

/// Deterministic workload generator (xoshiro-style splitmix core).
class Workload {
 public:
  explicit Workload(std::uint64_t seed = 0x5eed'f0f0'1234'5678ULL)
      : state_(seed) {}

  /// Uniform value in [lo, hi).
  double uniform(double lo = -1.0, double hi = 1.0);

  /// Vector of n uniform values.
  template <typename T>
  std::vector<T> vector(std::int64_t n, double lo = -1.0, double hi = 1.0) {
    std::vector<T> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = static_cast<T>(uniform(lo, hi));
    return v;
  }

  /// Row-major rows x cols matrix of uniform values.
  template <typename T>
  std::vector<T> matrix(std::int64_t rows, std::int64_t cols,
                        double lo = -1.0, double hi = 1.0) {
    return vector<T>(rows * cols, lo, hi);
  }

  /// A well-conditioned triangular matrix (unit-dominant diagonal) stored
  /// dense row-major; entries outside the triangle are zeroed. Suitable for
  /// TRSV/TRSM tests without catastrophic growth.
  template <typename T>
  std::vector<T> triangular(std::int64_t n, Uplo uplo, Diag diag);

  std::uint64_t next_u64();

 private:
  std::uint64_t state_;
};

/// Max |a - b| over two equally-sized ranges.
template <typename T>
double max_abs_diff(const std::vector<T>& a, const std::vector<T>& b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = std::abs(static_cast<double>(a[i]) - b[i]);
    if (d > m) m = d;
  }
  return m;
}

/// Relative infinity-norm error: max|a-b| / max(1, max|b|).
template <typename T>
double rel_error(const std::vector<T>& a, const std::vector<T>& b) {
  double diff = 0, scale = 1;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff = std::max(diff,
                    std::abs(static_cast<double>(a[i]) - b[i]));
    scale = std::max(scale, std::abs(static_cast<double>(b[i])));
  }
  return diff / scale;
}

}  // namespace fblas
