#include "common/workload.hpp"

#include <cmath>

namespace fblas {

std::uint64_t Workload::next_u64() {
  // splitmix64: small, fast, reproducible across platforms.
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Workload::uniform(double lo, double hi) {
  const double u =
      static_cast<double>(next_u64() >> 11) * 0x1.0p-53;  // [0, 1)
  return lo + u * (hi - lo);
}

template <typename T>
std::vector<T> Workload::triangular(std::int64_t n, Uplo uplo, Diag diag) {
  std::vector<T> a(static_cast<std::size_t>(n * n), T(0));
  MatrixView<T> A(a.data(), n, n);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t j0 = uplo == Uplo::Lower ? 0 : i;
    const std::int64_t j1 = uplo == Uplo::Lower ? i + 1 : n;
    for (std::int64_t j = j0; j < j1; ++j) {
      A(i, j) = static_cast<T>(uniform(-0.5, 0.5) / static_cast<double>(n));
    }
    // Dominant diagonal keeps the solve stable.
    A(i, i) = diag == Diag::Unit ? T(1) : static_cast<T>(1.0 + uniform(0, 1));
  }
  return a;
}

template std::vector<float> Workload::triangular<float>(std::int64_t, Uplo,
                                                        Diag);
template std::vector<double> Workload::triangular<double>(std::int64_t, Uplo,
                                                          Diag);

}  // namespace fblas
