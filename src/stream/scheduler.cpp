#include "stream/scheduler.hpp"

#include <sstream>

#include "stream/channel.hpp"
#include "stream/dram.hpp"

namespace fblas::stream {

int Scheduler::add_module(TaskHandle handle, std::string name) {
  FBLAS_REQUIRE(!ran_, "cannot add modules after run()");
  const int id = static_cast<int>(modules_.size());
  handle.promise().sched = this;
  handle.promise().module_id = id;
  modules_.push_back(ModuleEntry{handle, std::move(name)});
  ready_.push_back(id);
  ++live_;
  return id;
}

void Scheduler::block_on_pop(int id, ChannelBase& ch) {
  modules_[id].state = ModuleState::BlockedPop;
  modules_[id].blocked_on = &ch;
  ++blocked_modules_;
  ch.note_stall();
}

void Scheduler::block_on_push(int id, ChannelBase& ch) {
  modules_[id].state = ModuleState::BlockedPush;
  modules_[id].blocked_on = &ch;
  ++blocked_modules_;
  ch.note_stall();
}

void Scheduler::wait_cycle(int id) {
  modules_[id].state = ModuleState::WaitCycle;
  cycle_waiters_.push_back(id);
}

void Scheduler::wake(int id) {
  ModuleEntry& m = modules_[id];
  if (m.state == ModuleState::BlockedPop || m.state == ModuleState::BlockedPush) {
    m.state = ModuleState::Ready;
    m.blocked_on = nullptr;
    --blocked_modules_;
    ready_.push_back(id);
  }
}

void Scheduler::note_nonfinite(const ChannelBase& ch, double value) {
  if (!taint_.tainted) {
    taint_.tainted = true;
    taint_.module = current_ >= 0 ? modules_[current_].name : "host";
    taint_.channel = ch.name();
    taint_.value = value;
    taint_.cycle = cycle_;
  }
  if (taint_trap_) {
    std::ostringstream os;
    os << "non-finite value " << value << " pushed into channel '"
       << ch.name() << "' by module '"
       << (current_ >= 0 ? modules_[current_].name : "host")
       << "' at cycle " << cycle_;
    throw TaintError(os.str());
  }
}

bool Scheduler::corrupt_hits(const ChannelBase& ch) {
  if (++corrupt_seen_ != corrupt_target_) return false;
  corrupt_fired_ = true;
  corrupt_channel_ = ch.name();
  corrupt_module_ = current_ >= 0 ? modules_[current_].name : "host";
  return true;
}

void Scheduler::advance_cycle() {
  if (trace_occupancy_) {
    occupancy_samples_.resize(channels_.size());
    for (std::size_t c = 0; c < channels_.size(); ++c) {
      occupancy_samples_[c].push_back(
          static_cast<std::uint32_t>(channels_[c]->size()));
    }
  }
  // Stall accounting: every module still parked on a channel at a cycle
  // boundary burned this cycle waiting — the per-graph backpressure
  // total the tracing layer exports next to the cycle count.
  stall_module_cycles_ += static_cast<std::uint64_t>(blocked_modules_);
  ++cycle_;
  for (DramBank* bank : banks_) bank->reset_cycle();
  for (const int id : cycle_waiters_) {
    modules_[id].state = ModuleState::Ready;
    ready_.push_back(id);
  }
  cycle_waiters_.clear();
}

void Scheduler::run(const Watchdog& watchdog) {
  FBLAS_REQUIRE(!ran_, "a Scheduler can only run once");
  ran_ = true;
  const bool has_deadline = watchdog.wall_deadline.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        watchdog.wall_deadline;
  std::uint64_t steps = 0;
  while (live_ > 0) {
    if (watchdog.max_steps != 0 && steps > watchdog.max_steps) {
      throw_timeout("step budget", steps);
    }
    if (watchdog.max_cycles != 0 && cycle_ > watchdog.max_cycles) {
      throw_timeout("cycle budget", steps);
    }
    // The wall clock is polled sparsely on the happy path (a syscall per
    // step would dominate small graphs) but every iteration once wedged,
    // so a hung run ends promptly at the deadline.
    if (has_deadline && (wedged_ || (steps & 2047u) == 0) &&
        std::chrono::steady_clock::now() >= deadline) {
      throw_timeout("wall-clock deadline", steps);
    }
    if (wedged_) {
      // Injected hang: cycles tick but no module is ever resumed again,
      // modeling a kernel wedged mid-stream. Only a watchdog limit ends
      // this loop — without one it spins, like the real stalled board.
      ++cycle_;
      ++steps;
      continue;
    }
    if (!ready_.empty()) {
      const int id = ready_.front();
      ready_.pop_front();
      ModuleEntry& m = modules_[id];
      if (m.state != ModuleState::Ready) continue;  // stale queue entry
      m.state = ModuleState::Running;
      ++m.resumes;
      ++steps;
      if (wedge_after_steps_ != 0 && steps >= wedge_after_steps_) {
        wedged_ = true;
      }
      current_ = id;
      m.handle.resume();
      current_ = -1;
      if (m.handle.done()) {
        m.state = ModuleState::Done;
        --live_;
        if (m.handle.promise().exception) {
          std::rethrow_exception(m.handle.promise().exception);
        }
      } else if (m.state == ModuleState::Running) {
        // The module suspended without recording a reason — this would be a
        // runtime bug, not a user error.
        throw Error("module '" + m.name + "' suspended with unknown reason");
      }
      continue;
    }
    if (!cycle_waiters_.empty()) {
      advance_cycle();
      continue;
    }
    throw DeadlockError(diagnose_deadlock());
  }
}

namespace {

const char* state_name(ModuleState s) {
  switch (s) {
    case ModuleState::Ready: return "ready";
    case ModuleState::Running: return "running";
    case ModuleState::BlockedPop: return "blocked popping";
    case ModuleState::BlockedPush: return "blocked pushing";
    case ModuleState::WaitCycle: return "waiting for next cycle";
    case ModuleState::Done: return "done";
  }
  return "?";
}

}  // namespace

std::string Scheduler::diagnose(const std::string& header) const {
  std::ostringstream os;
  os << header;
  os << "Module states:\n";
  for (const ModuleEntry& m : modules_) {
    os << "  module '" << m.name << "': " << state_name(m.state);
    if (m.blocked_on != nullptr) {
      os << " channel '" << m.blocked_on->name() << "' (occupancy "
         << m.blocked_on->size() << "/" << m.blocked_on->capacity() << ")";
    }
    os << ", " << m.resumes << " resumes\n";
  }
  os << "Channel states:\n";
  for (const ChannelBase* ch : channels_) {
    os << "  '" << ch->name() << "': " << ch->size() << "/" << ch->capacity()
       << " buffered, " << ch->total_pushed() << " pushed, "
       << ch->total_popped() << " popped\n";
  }
  return os.str();
}

std::string Scheduler::diagnose_deadlock() const {
  std::ostringstream os;
  os << "streaming graph stalled forever (invalid composition or "
        "undersized channel). Blocked modules:\n";
  for (const ModuleEntry& m : modules_) {
    if (m.state == ModuleState::BlockedPop ||
        m.state == ModuleState::BlockedPush) {
      os << "  module '" << m.name << "' blocked "
         << (m.state == ModuleState::BlockedPop ? "popping" : "pushing")
         << " channel '" << m.blocked_on->name() << "' (occupancy "
         << m.blocked_on->size() << "/" << m.blocked_on->capacity() << ")\n";
    }
  }
  os << "Channel states:\n";
  for (const ChannelBase* ch : channels_) {
    os << "  '" << ch->name() << "': " << ch->size() << "/" << ch->capacity()
       << " buffered, " << ch->total_pushed() << " pushed, "
       << ch->total_popped() << " popped\n";
  }
  return os.str();
}

const std::vector<std::uint32_t>& Scheduler::occupancy_trace(
    std::size_t chan) const {
  if (!trace_occupancy_) {
    throw ConfigError(
        "Scheduler::occupancy_trace: occupancy sampling was never enabled "
        "— call enable_occupancy_trace() before run() (and note it only "
        "records in cycle mode)");
  }
  if (chan >= channels_.size()) {
    std::ostringstream os;
    os << "Scheduler::occupancy_trace: channel index " << chan
       << " out of range (" << channels_.size() << " channels registered)";
    throw ConfigError(os.str());
  }
  if (chan >= occupancy_samples_.size()) {
    // Enabled, but the clock never advanced (functional mode, or the
    // graph drained within cycle 0): defined-empty instead of indexing
    // a vector advance_cycle never grew.
    static const std::vector<std::uint32_t> kEmpty;
    return kEmpty;
  }
  return occupancy_samples_[chan];
}

void Scheduler::throw_timeout(const char* limit, std::uint64_t steps) {
  std::ostringstream os;
  os << "watchdog expired (" << limit << ") after " << cycle_
     << " simulated cycles and " << steps << " scheduler steps; the graph "
     << (wedged_ ? "is wedged (injected hang)"
                 : "is live-locked or pathologically slow")
     << ".\n";
  throw TimeoutError(diagnose(os.str()));
}

}  // namespace fblas::stream
