#include "stream/scheduler.hpp"

#include <sstream>

#include "stream/channel.hpp"
#include "stream/dram.hpp"

namespace fblas::stream {

int Scheduler::add_module(TaskHandle handle, std::string name) {
  FBLAS_REQUIRE(!ran_, "cannot add modules after run()");
  const int id = static_cast<int>(modules_.size());
  handle.promise().sched = this;
  handle.promise().module_id = id;
  modules_.push_back(ModuleEntry{handle, std::move(name)});
  ready_.push_back(id);
  ++live_;
  return id;
}

void Scheduler::block_on_pop(int id, ChannelBase& ch) {
  modules_[id].state = ModuleState::BlockedPop;
  modules_[id].blocked_on = &ch;
}

void Scheduler::block_on_push(int id, ChannelBase& ch) {
  modules_[id].state = ModuleState::BlockedPush;
  modules_[id].blocked_on = &ch;
}

void Scheduler::wait_cycle(int id) {
  modules_[id].state = ModuleState::WaitCycle;
  cycle_waiters_.push_back(id);
}

void Scheduler::wake(int id) {
  ModuleEntry& m = modules_[id];
  if (m.state == ModuleState::BlockedPop || m.state == ModuleState::BlockedPush) {
    m.state = ModuleState::Ready;
    m.blocked_on = nullptr;
    ready_.push_back(id);
  }
}

void Scheduler::advance_cycle() {
  if (trace_occupancy_) {
    occupancy_samples_.resize(channels_.size());
    for (std::size_t c = 0; c < channels_.size(); ++c) {
      occupancy_samples_[c].push_back(
          static_cast<std::uint32_t>(channels_[c]->size()));
    }
  }
  ++cycle_;
  for (DramBank* bank : banks_) bank->reset_cycle();
  for (const int id : cycle_waiters_) {
    modules_[id].state = ModuleState::Ready;
    ready_.push_back(id);
  }
  cycle_waiters_.clear();
}

void Scheduler::run() {
  FBLAS_REQUIRE(!ran_, "a Scheduler can only run once");
  ran_ = true;
  while (live_ > 0) {
    if (!ready_.empty()) {
      const int id = ready_.front();
      ready_.pop_front();
      ModuleEntry& m = modules_[id];
      if (m.state != ModuleState::Ready) continue;  // stale queue entry
      m.state = ModuleState::Running;
      ++m.resumes;
      m.handle.resume();
      if (m.handle.done()) {
        m.state = ModuleState::Done;
        --live_;
        if (m.handle.promise().exception) {
          std::rethrow_exception(m.handle.promise().exception);
        }
      } else if (m.state == ModuleState::Running) {
        // The module suspended without recording a reason — this would be a
        // runtime bug, not a user error.
        throw Error("module '" + m.name + "' suspended with unknown reason");
      }
      continue;
    }
    if (!cycle_waiters_.empty()) {
      advance_cycle();
      continue;
    }
    throw DeadlockError(diagnose_deadlock());
  }
}

std::string Scheduler::diagnose_deadlock() const {
  std::ostringstream os;
  os << "streaming graph stalled forever (invalid composition or "
        "undersized channel). Blocked modules:\n";
  for (const ModuleEntry& m : modules_) {
    if (m.state == ModuleState::BlockedPop ||
        m.state == ModuleState::BlockedPush) {
      os << "  module '" << m.name << "' blocked "
         << (m.state == ModuleState::BlockedPop ? "popping" : "pushing")
         << " channel '" << m.blocked_on->name() << "' (occupancy "
         << m.blocked_on->size() << "/" << m.blocked_on->capacity() << ")\n";
    }
  }
  os << "Channel states:\n";
  for (const ChannelBase* ch : channels_) {
    os << "  '" << ch->name() << "': " << ch->size() << "/" << ch->capacity()
       << " buffered, " << ch->total_pushed() << " pushed, "
       << ch->total_popped() << " popped\n";
  }
  return os.str();
}

}  // namespace fblas::stream
