// Deterministic cooperative scheduler for streaming module graphs.
//
// Two execution modes mirror the two things the paper measures:
//  * Functional — modules run eagerly; channel backpressure still applies
//    (bounded FIFOs) but no notion of time. Used for numerical validation.
//  * Cycle — a module performs at most one batch of work per simulated
//    clock cycle (it ends each batch with `co_await next_cycle()`), DRAM
//    banks meter bytes per cycle, and the scheduler counts cycles. Used
//    for throughput/backpressure/composition experiments.
//
// In either mode, if every live module is blocked on a channel the graph
// has stalled forever; the scheduler throws DeadlockError with a full
// diagnostic, making the paper's invalid-composition analysis (Sec. V-B)
// directly observable.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "stream/task.hpp"

namespace fblas::stream {

class ChannelBase;
class DramBank;

enum class Mode { Functional, Cycle };

/// Limits on a single graph run. A run that exceeds any configured limit
/// raises TimeoutError with full module/channel diagnostics instead of
/// hanging the host. Zero means unlimited (the default: today's
/// behavior). The cycle budget only constrains cycle mode; the step
/// budget (module resumes) and wall-clock deadline catch functional-mode
/// livelocks too.
struct Watchdog {
  std::uint64_t max_cycles = 0;  ///< simulated-cycle budget (cycle mode)
  std::uint64_t max_steps = 0;   ///< scheduler-step budget (both modes)
  std::chrono::milliseconds wall_deadline{0};  ///< host wall-clock limit

  bool enabled() const {
    return max_cycles != 0 || max_steps != 0 || wall_deadline.count() != 0;
  }
};

enum class ModuleState : std::uint8_t {
  Ready,
  Running,
  BlockedPop,
  BlockedPush,
  WaitCycle,
  Done,
};

/// Provenance of the first non-finite value (NaN/Inf) that crossed a
/// module boundary during a run — recorded when taint tracking is on.
/// ABFT checkers skip comparisons poisoned by non-finite data, so this
/// is the diagnostic that tells you *which* module first produced it.
struct Taint {
  bool tainted = false;
  std::string module;   ///< producing module ("host" if pushed off-graph)
  std::string channel;  ///< channel the value entered
  double value = 0.0;   ///< the offending value (NaN or ±Inf)
  std::uint64_t cycle = 0;  ///< simulated cycle of the push (cycle mode)
};

class Scheduler {
 public:
  explicit Scheduler(Mode mode) : mode_(mode) {}

  Mode mode() const { return mode_; }
  bool cycle_mode() const { return mode_ == Mode::Cycle; }
  std::uint64_t cycle() const { return cycle_; }

  /// Registers a module coroutine; returns its module id. The handle's
  /// frame stays owned by the caller (Graph) and must outlive run().
  int add_module(TaskHandle handle, std::string name);

  /// Registers a channel / DRAM bank for diagnostics and cycle resets.
  void register_channel(ChannelBase* ch) { channels_.push_back(ch); }
  void register_bank(DramBank* bank) { banks_.push_back(bank); }

  /// Runs until every module completes. Throws DeadlockError if the graph
  /// stalls, TimeoutError if a watchdog limit expires first, and rethrows
  /// any exception escaping a module body.
  void run(const Watchdog& watchdog = {});

  /// Fault injection: after `steps` further module resumes the scheduler
  /// wedges — it stops resuming modules while cycles keep ticking,
  /// modeling a hung kernel mid-stream. Only a watchdog limit (or
  /// wall-clock deadline) ends a wedged run; without one it spins like
  /// real stalled hardware. Call before run().
  void wedge_after(std::uint64_t steps) { wedge_after_steps_ = steps; }

  /// True once run() completed successfully.
  bool finished() const { return live_ == 0; }

  // --- awaiter interface -------------------------------------------------
  void block_on_pop(int id, ChannelBase& ch);
  void block_on_push(int id, ChannelBase& ch);
  void wait_cycle(int id);
  /// Moves a blocked module back to the ready queue (channel wakeups).
  void wake(int id);

  const std::string& module_name(int id) const { return modules_[id].name; }
  ModuleState module_state(int id) const { return modules_[id].state; }
  std::size_t module_count() const { return modules_.size(); }
  /// Times the module was scheduled (in cycle mode, roughly the number of
  /// cycles it was active — a utilization diagnostic).
  std::uint64_t module_resumes(int id) const { return modules_[id].resumes; }

  /// Enables non-finite taint tracking: every floating-point push is
  /// screened and the first NaN/Inf is recorded with its producing
  /// module, channel and cycle. With `trap` set the push additionally
  /// throws TaintError — a deterministic, non-transient failure (a NaN
  /// re-runs identically, so retrying is pointless). Call before run().
  void enable_taint(bool trap) {
    taint_enabled_ = true;
    taint_trap_ = trap;
    taint_ = Taint{};
  }
  bool taint_enabled() const { return taint_enabled_; }
  const Taint& taint() const { return taint_; }
  /// Records (and in trap mode, throws on) a non-finite value entering
  /// `ch`. Called by Channel<T>::try_put for floating-point payloads.
  void note_nonfinite(const ChannelBase& ch, double value);

  /// Fault injection: arms silent corruption of the `target`-th (1-based)
  /// floating-point value pushed into any channel of this graph — the
  /// value's top byte is flipped as it crosses the module boundary,
  /// modeling in-flight damage to an intermediate stream that no DRAM
  /// write-set snapshot can observe. No error is raised; only a checksum
  /// carried through the composition can catch it. Call before run().
  void corrupt_push(std::uint64_t target) {
    corrupt_target_ = target;
    corrupt_seen_ = 0;
    corrupt_fired_ = false;
  }
  bool corrupt_armed() const {
    return corrupt_target_ != 0 && !corrupt_fired_;
  }
  /// Counts one floating-point push; true exactly when it is the targeted
  /// one. Records the victim channel and producing module for the
  /// localization diagnostics. Called by Channel<T>::try_put.
  bool corrupt_hits(const ChannelBase& ch);
  /// True once the armed corruption actually fired (the graph pushed at
  /// least `target` floating-point values).
  bool corruption_fired() const { return corrupt_fired_; }
  const std::string& corrupted_channel() const { return corrupt_channel_; }
  const std::string& corrupting_module() const { return corrupt_module_; }

  /// Enables per-cycle channel-occupancy sampling (cycle mode only —
  /// samples are taken by advance_cycle, which functional mode never
  /// reaches, so a functional run records nothing even when enabled).
  /// Call before run().
  void enable_occupancy_trace() { trace_occupancy_ = true; }
  /// Occupancy samples of the i-th registered channel (one per simulated
  /// cycle). Throws ConfigError when enable_occupancy_trace() was never
  /// called or `chan` is not a registered channel index; a run that
  /// never advanced a cycle (functional mode) yields an empty vector.
  const std::vector<std::uint32_t>& occupancy_trace(std::size_t chan) const;
  bool occupancy_trace_enabled() const { return trace_occupancy_; }
  std::size_t channel_count() const { return channels_.size(); }

  /// Module-cycles spent blocked on a channel: each simulated cycle adds
  /// the number of modules blocked pushing or popping at that moment
  /// (cycle mode only — functional mode never advances the clock). The
  /// graph-level stall diagnostic the tracing layer exports; per-channel
  /// splits live on ChannelBase::stall_events().
  std::uint64_t stall_module_cycles() const { return stall_module_cycles_; }

 private:
  struct ModuleEntry {
    TaskHandle handle;
    std::string name;
    ModuleState state = ModuleState::Ready;
    const ChannelBase* blocked_on = nullptr;
    std::uint64_t resumes = 0;
  };

  std::string diagnose(const std::string& header) const;
  std::string diagnose_deadlock() const;
  [[noreturn]] void throw_timeout(const char* limit, std::uint64_t steps);
  void advance_cycle();

  Mode mode_;
  std::uint64_t cycle_ = 0;
  std::vector<ModuleEntry> modules_;
  std::deque<int> ready_;
  std::vector<int> cycle_waiters_;
  std::vector<ChannelBase*> channels_;
  std::vector<DramBank*> banks_;
  int live_ = 0;
  bool ran_ = false;
  int current_ = -1;  // module being resumed right now (-1 = host code)
  std::uint64_t wedge_after_steps_ = 0;  // 0 = no wedge injected
  bool wedged_ = false;
  bool trace_occupancy_ = false;
  int blocked_modules_ = 0;  // currently BlockedPop/BlockedPush
  std::uint64_t stall_module_cycles_ = 0;
  bool taint_enabled_ = false;
  bool taint_trap_ = false;
  Taint taint_;
  std::uint64_t corrupt_target_ = 0;  // 1-based fp-push index; 0 = unarmed
  std::uint64_t corrupt_seen_ = 0;
  bool corrupt_fired_ = false;
  std::string corrupt_channel_;
  std::string corrupt_module_;
  std::vector<std::vector<std::uint32_t>> occupancy_samples_;
};

/// Awaitable that parks the current module until the next simulated clock
/// cycle (no-op in functional mode). Modules call this once per batch of
/// up to W elements, which is what defines "W elements per cycle".
struct NextCycle {
  bool await_ready() const noexcept { return false; }
  bool await_suspend(TaskHandle h) const {
    TaskPromise& p = h.promise();
    if (!p.sched->cycle_mode()) return false;  // resume immediately
    p.sched->wait_cycle(p.module_id);
    return true;
  }
  void await_resume() const noexcept {}
};

/// `co_await next_cycle();` — end of this module's work for the cycle.
inline NextCycle next_cycle() { return {}; }

}  // namespace fblas::stream
