// Graph: owner/facade tying together a scheduler, channels, DRAM banks and
// module coroutines. This is the object users (and the host API) build a
// streaming design in:
//
//   Graph g(Mode::Cycle);
//   auto& x   = g.channel<float>("x", 32);
//   auto& out = g.channel<float>("out", 32);
//   g.spawn("read_x", read_vector<float>(xview, 1, W, x, &bank));
//   g.spawn("scal",   fblas::scal(cfg, alpha, n, x, out));
//   ...
//   g.run();
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "stream/channel.hpp"
#include "stream/dram.hpp"
#include "stream/scheduler.hpp"
#include "stream/task.hpp"

namespace fblas::stream {

class Graph {
 public:
  explicit Graph(Mode mode = Mode::Functional) : sched_(mode) {}

  Scheduler& scheduler() { return sched_; }
  Mode mode() const { return sched_.mode(); }
  std::uint64_t cycles() const { return sched_.cycle(); }

  /// Creates a typed channel owned by this graph.
  template <typename T>
  Channel<T>& channel(std::string name, std::size_t capacity) {
    auto ch = std::make_unique<Channel<T>>(&sched_, std::move(name), capacity);
    Channel<T>& ref = *ch;
    channels_.push_back(std::move(ch));
    return ref;
  }

  /// Creates a DRAM bank with the given per-cycle byte budget.
  DramBank& bank(std::string name, double bytes_per_cycle) {
    banks_.push_back(
        std::make_unique<DramBank>(&sched_, std::move(name), bytes_per_cycle));
    return *banks_.back();
  }

  /// Registers a module coroutine under `name`; returns its module id.
  int spawn(std::string name, Task task) {
    const int id = sched_.add_module(task.handle(), std::move(name));
    tasks_.push_back(std::move(task));
    return id;
  }

  /// Runs the design to completion (throws DeadlockError on stall and
  /// TimeoutError when a watchdog limit expires first). Per-run channel
  /// statistics (push/pop totals, peak occupancy, stall events) are
  /// reset at entry so they describe this run alone — host-side
  /// pre-loading (try_put before the run) no longer inflates peaks.
  /// Armed checksum taps are untouched (they are armed pre-run).
  void run(const Watchdog& watchdog = {}) {
    for (const auto& ch : channels_) ch->reset_run_stats();
    sched_.run(watchdog);
  }

  const std::vector<std::unique_ptr<ChannelBase>>& channels() const {
    return channels_;
  }

 private:
  Scheduler sched_;
  std::vector<std::unique_ptr<DramBank>> banks_;
  std::vector<std::unique_ptr<ChannelBase>> channels_;
  std::vector<Task> tasks_;  // destroyed before channels_ (reverse order)
};

}  // namespace fblas::stream
