#include "stream/channel.hpp"

#include <algorithm>

namespace fblas::stream {

ChannelBase::ChannelBase(Scheduler* sched, std::string name,
                         std::size_t capacity)
    : sched_(sched), name_(std::move(name)), capacity_(capacity) {
  FBLAS_REQUIRE(capacity >= 1, "channel '" + name_ + "' needs capacity >= 1");
  sched_->register_channel(this);
}

void ChannelBase::on_push() {
  ++total_pushed_;
  peak_ = std::max(peak_, size());
  if (waiting_consumer_ >= 0) {
    const int id = waiting_consumer_;
    waiting_consumer_ = -1;
    sched_->wake(id);
  }
}

void ChannelBase::on_pop() {
  ++total_popped_;
  if (waiting_producer_ >= 0) {
    const int id = waiting_producer_;
    waiting_producer_ = -1;
    sched_->wake(id);
  }
}

}  // namespace fblas::stream
