// Interface modules: the helper kernels that move data between (simulated)
// off-chip DRAM and the streaming modules, plus on-chip sources/sinks and
// stream plumbing. These correspond to the "Read A / Read B / Store C"
// helper kernels the paper's code generator emits around each module.
//
// Matrices are streamed according to a TileSchedule: tiles visited by rows
// or by columns, and elements within each tile by rows or by columns —
// the 4 streaming modes of Sec. III-B.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.hpp"
#include "common/view.hpp"
#include "stream/channel.hpp"
#include "stream/dram.hpp"
#include "stream/graph.hpp"

namespace fblas::stream {

/// How a matrix operand crosses a streaming interface.
struct TileSchedule {
  Order tile_order = Order::RowMajor;  ///< order in which tiles are visited
  Order elem_order = Order::RowMajor;  ///< element order within a tile
  std::int64_t tile_rows = 0;          ///< TN: tile height
  std::int64_t tile_cols = 0;          ///< TM: tile width

  bool operator==(const TileSchedule&) const = default;
};

/// Enumerates the (row, col) coordinates of an `rows x cols` matrix in the
/// order defined by a TileSchedule, clamping edge tiles.
class TileWalker {
 public:
  TileWalker(std::int64_t rows, std::int64_t cols, TileSchedule sched);

  /// Advances to the next coordinate; false when the traversal is done.
  bool next(std::int64_t& row, std::int64_t& col);

  std::int64_t total() const { return rows_ * cols_; }
  void reset();

 private:
  std::int64_t rows_, cols_;
  TileSchedule s_;
  std::int64_t n_trow_, n_tcol_;  // number of tile rows / cols
  // Current position: tile indices and element indices within the tile.
  std::int64_t ti_ = 0, tj_ = 0, ei_ = 0, ej_ = 0;
  bool done_ = false;
};

/// Streams `v` into `out`, `repeat` times over, up to `width` elements per
/// cycle, metered by `bank` when present. Replaying a vector (repeat > 1)
/// is exactly the paper's "x must be replayed" behaviour.
template <typename T>
Task read_vector(VectorView<const T> v, std::int64_t repeat, int width,
                 Channel<T>& out, DramBank* bank = nullptr) {
  const std::int64_t n = v.size();
  for (std::int64_t r = 0; r < repeat; ++r) {
    std::int64_t idx = 0;
    while (idx < n) {
      const std::int64_t want = std::min<std::int64_t>(width, n - idx);
      const std::int64_t got = bank ? bank->grant_elems(want, sizeof(T)) : want;
      for (std::int64_t k = 0; k < got; ++k) co_await out.push(v[idx + k]);
      idx += got;
      co_await next_cycle();
    }
  }
}

/// Drains `in` into `v`, `repeat` times over (each pass overwrites, so the
/// final pass persists — the DRAM round-trip of a replayed result vector).
template <typename T>
Task write_vector(VectorView<T> v, std::int64_t repeat, int width,
                  Channel<T>& in, DramBank* bank = nullptr) {
  const std::int64_t n = v.size();
  for (std::int64_t r = 0; r < repeat; ++r) {
    std::int64_t idx = 0;
    while (idx < n) {
      const std::int64_t want = std::min<std::int64_t>(width, n - idx);
      const std::int64_t got = bank ? bank->grant_elems(want, sizeof(T)) : want;
      for (std::int64_t k = 0; k < got; ++k) v[idx + k] = co_await in.pop();
      idx += got;
      co_await next_cycle();
    }
  }
}

/// Streams matrix `A` into `out` following `sched`, `repeat` times.
template <typename T>
Task read_matrix(MatrixView<const T> A, TileSchedule sched, std::int64_t repeat,
                 int width, Channel<T>& out, DramBank* bank = nullptr) {
  for (std::int64_t r = 0; r < repeat; ++r) {
    TileWalker walk(A.rows(), A.cols(), sched);
    std::int64_t remaining = walk.total();
    while (remaining > 0) {
      const std::int64_t want = std::min<std::int64_t>(width, remaining);
      const std::int64_t got = bank ? bank->grant_elems(want, sizeof(T)) : want;
      for (std::int64_t k = 0; k < got; ++k) {
        std::int64_t i = 0, j = 0;
        walk.next(i, j);
        co_await out.push(A(i, j));
      }
      remaining -= got;
      co_await next_cycle();
    }
  }
}

/// Stores a stream into matrix `A` following `sched`.
template <typename T>
Task write_matrix(MatrixView<T> A, TileSchedule sched, int width,
                  Channel<T>& in, DramBank* bank = nullptr) {
  TileWalker walk(A.rows(), A.cols(), sched);
  std::int64_t remaining = walk.total();
  while (remaining > 0) {
    const std::int64_t want = std::min<std::int64_t>(width, remaining);
    const std::int64_t got = bank ? bank->grant_elems(want, sizeof(T)) : want;
    for (std::int64_t k = 0; k < got; ++k) {
      std::int64_t i = 0, j = 0;
      walk.next(i, j);
      A(i, j) = co_await in.pop();
    }
    remaining -= got;
    co_await next_cycle();
  }
}

/// On-chip data source: n copies of `value`, `width` per cycle. The paper
/// generates input directly on the FPGA for the module-scaling experiments
/// to decouple them from the testbed's memory interface.
template <typename T>
Task generate(std::int64_t n, T value, int width, Channel<T>& out) {
  std::int64_t idx = 0;
  while (idx < n) {
    const std::int64_t batch = std::min<std::int64_t>(width, n - idx);
    for (std::int64_t k = 0; k < batch; ++k) co_await out.push(value);
    idx += batch;
    co_await next_cycle();
  }
}

/// On-chip sink: consumes and discards n elements, `width` per cycle.
template <typename T>
Task sink(std::int64_t n, int width, Channel<T>& in) {
  std::int64_t idx = 0;
  while (idx < n) {
    const std::int64_t batch = std::min<std::int64_t>(width, n - idx);
    for (std::int64_t k = 0; k < batch; ++k) (void)co_await in.pop();
    idx += batch;
    co_await next_cycle();
  }
}

/// Duplicates a stream of n elements into two downstream channels (the
/// shared-A interface module of the BICG composition, Fig. 7).
template <typename T>
Task fanout2(std::int64_t n, int width, Channel<T>& in, Channel<T>& out_a,
             Channel<T>& out_b) {
  std::int64_t idx = 0;
  while (idx < n) {
    const std::int64_t batch = std::min<std::int64_t>(width, n - idx);
    for (std::int64_t k = 0; k < batch; ++k) {
      T v = co_await in.pop();
      co_await out_a.push(v);
      co_await out_b.push(std::move(v));
    }
    idx += batch;
    co_await next_cycle();
  }
}

/// Collects a stream of n elements into a std::vector (test utility).
template <typename T>
Task collect(std::int64_t n, Channel<T>& in, std::vector<T>& out) {
  out.clear();
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t k = 0; k < n; ++k) out.push_back(co_await in.pop());
  co_await next_cycle();
}

/// Feeds a std::vector into a channel verbatim (test utility). Takes the
/// data by value: module coroutines start lazily, so reference parameters
/// to temporaries would dangle.
template <typename T>
Task feed(std::vector<T> data, Channel<T>& out) {
  for (const T& v : data) co_await out.push(v);
  co_await next_cycle();
}

}  // namespace fblas::stream
