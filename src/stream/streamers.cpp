#include "stream/streamers.hpp"

namespace fblas::stream {

TileWalker::TileWalker(std::int64_t rows, std::int64_t cols,
                       TileSchedule sched)
    : rows_(rows), cols_(cols), s_(sched) {
  FBLAS_REQUIRE(rows >= 0 && cols >= 0, "matrix shape must be non-negative");
  FBLAS_REQUIRE(s_.tile_rows > 0 && s_.tile_cols > 0,
                "tile sizes must be positive");
  n_trow_ = ceil_div(rows_, s_.tile_rows);
  n_tcol_ = ceil_div(cols_, s_.tile_cols);
  done_ = rows_ == 0 || cols_ == 0;
}

void TileWalker::reset() {
  ti_ = tj_ = ei_ = ej_ = 0;
  done_ = rows_ == 0 || cols_ == 0;
}

bool TileWalker::next(std::int64_t& row, std::int64_t& col) {
  if (done_) return false;
  // Extent of the current (clamped) tile.
  const std::int64_t h = std::min(s_.tile_rows, rows_ - ti_ * s_.tile_rows);
  const std::int64_t w = std::min(s_.tile_cols, cols_ - tj_ * s_.tile_cols);
  row = ti_ * s_.tile_rows + ei_;
  col = tj_ * s_.tile_cols + ej_;
  // Advance the element cursor within the tile.
  if (s_.elem_order == Order::RowMajor) {
    if (++ej_ == w) {
      ej_ = 0;
      if (++ei_ == h) ei_ = 0;
    }
    if (ei_ == 0 && ej_ == 0) {
      // Tile finished: advance the tile cursor.
      if (s_.tile_order == Order::RowMajor) {
        if (++tj_ == n_tcol_) {
          tj_ = 0;
          if (++ti_ == n_trow_) done_ = true;
        }
      } else {
        if (++ti_ == n_trow_) {
          ti_ = 0;
          if (++tj_ == n_tcol_) done_ = true;
        }
      }
    }
  } else {
    if (++ei_ == h) {
      ei_ = 0;
      if (++ej_ == w) ej_ = 0;
    }
    if (ei_ == 0 && ej_ == 0) {
      if (s_.tile_order == Order::RowMajor) {
        if (++tj_ == n_tcol_) {
          tj_ = 0;
          if (++ti_ == n_trow_) done_ = true;
        }
      } else {
        if (++ti_ == n_trow_) {
          ti_ = 0;
          if (++tj_ == n_tcol_) done_ = true;
        }
      }
    }
  }
  return true;
}

}  // namespace fblas::stream
