// Coroutine task type for streaming modules.
//
// An FBLAS "HLS module" is a C++20 coroutine returning stream::Task. The
// coroutine body pops operands from input channels, computes, and pushes
// results to output channels, exactly mirroring the paper's OpenCL kernels
// (Fig. 4/5, Listing 1). Tasks are lazily started and driven by a
// Scheduler (see scheduler.hpp).
#pragma once

#include <coroutine>
#include <exception>
#include <string>
#include <utility>

namespace fblas::stream {

class Scheduler;

class Task;

/// Promise type for module coroutines. The scheduler and module id are
/// injected when the task is registered with a Graph.
struct TaskPromise {
  Scheduler* sched = nullptr;
  int module_id = -1;
  std::exception_ptr exception;

  Task get_return_object();
  std::suspend_always initial_suspend() noexcept { return {}; }
  std::suspend_always final_suspend() noexcept { return {}; }
  void return_void() noexcept {}
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

using TaskHandle = std::coroutine_handle<TaskPromise>;

/// Move-only owner of a module coroutine frame.
class Task {
 public:
  using promise_type = TaskPromise;

  Task() = default;
  explicit Task(TaskHandle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  TaskHandle handle() const { return handle_; }
  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_.done(); }

 private:
  void destroy() {
    if (handle_) handle_.destroy();
    handle_ = {};
  }
  TaskHandle handle_{};
};

inline Task TaskPromise::get_return_object() {
  return Task(TaskHandle::from_promise(*this));
}

}  // namespace fblas::stream
