#include "stream/dram.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "stream/scheduler.hpp"

namespace fblas::stream {

DramBank::DramBank(Scheduler* sched, std::string name, double bytes_per_cycle)
    : sched_(sched),
      name_(std::move(name)),
      bytes_per_cycle_(bytes_per_cycle),
      available_(bytes_per_cycle) {
  FBLAS_REQUIRE(bytes_per_cycle > 0, "bank bandwidth must be positive");
  sched_->register_bank(this);
}

std::int64_t DramBank::grant_elems(std::int64_t want, std::size_t elem_bytes) {
  if (want <= 0) return 0;
  if (!sched_->cycle_mode()) {
    total_bytes_ += static_cast<std::uint64_t>(want) * elem_bytes;
    return want;
  }
  const auto affordable =
      static_cast<std::int64_t>(available_ / static_cast<double>(elem_bytes));
  const std::int64_t granted = std::min(want, affordable);
  if (granted > 0) {
    available_ -= static_cast<double>(granted * elem_bytes);
    total_bytes_ += static_cast<std::uint64_t>(granted) * elem_bytes;
  }
  return granted;
}

}  // namespace fblas::stream
