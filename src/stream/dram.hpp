// Off-chip memory bank model. A bank has a fixed byte budget per clock
// cycle shared by every interface module (reader/writer helper kernel)
// attached to it. This reproduces both the bandwidth ceiling that
// dimensions the optimal vectorization width (Sec. IV-B) and the
// same-bank read/write contention that makes the non-streamed AXPYDOT
// slower than expected (Sec. VI-C).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

namespace fblas::stream {

class Scheduler;

class DramBank {
 public:
  /// `bytes_per_cycle` is the bank bandwidth divided by the design clock;
  /// in functional mode the budget is ignored.
  DramBank(Scheduler* sched, std::string name, double bytes_per_cycle);

  const std::string& name() const { return name_; }
  double bytes_per_cycle() const { return bytes_per_cycle_; }

  /// Grants up to `want` elements of `elem_bytes` each against this
  /// cycle's remaining budget; returns the granted element count (possibly
  /// zero). Unmetered (functional mode) grants return `want`.
  std::int64_t grant_elems(std::int64_t want, std::size_t elem_bytes);

  /// Called by the scheduler when the clock advances. Unused budget
  /// accumulates up to one burst so that banks narrower than a single
  /// element still make progress (a fractional budget must be able to
  /// add up to one grant) without allowing unbounded bursts.
  void reset_cycle() {
    const double burst = std::max(bytes_per_cycle_, 64.0);
    available_ = std::min(available_ + bytes_per_cycle_, burst);
  }

  std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  Scheduler* sched_;
  std::string name_;
  double bytes_per_cycle_;
  double available_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace fblas::stream
