// Bounded single-producer/single-consumer typed FIFO channels — the
// software equivalent of the HLS `channel`/`pipe` abstraction the paper's
// modules communicate through. push/pop are awaitable: a full push or
// empty pop suspends the module until its peer makes progress.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "stream/scheduler.hpp"
#include "stream/task.hpp"

namespace fblas::stream {

/// Type-erased channel state: identity, occupancy and waiter bookkeeping
/// shared by the scheduler's diagnostics, plus the checksum tap the
/// streaming-ABFT layer arms per run.
class ChannelBase {
 public:
  ChannelBase(Scheduler* sched, std::string name, std::size_t capacity);
  virtual ~ChannelBase() = default;
  ChannelBase(const ChannelBase&) = delete;
  ChannelBase& operator=(const ChannelBase&) = delete;

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }
  virtual std::size_t size() const = 0;
  bool empty() const { return size() == 0; }
  bool full() const { return size() >= capacity_; }

  std::uint64_t total_pushed() const { return total_pushed_; }
  std::uint64_t total_popped() const { return total_popped_; }
  std::size_t peak_occupancy() const { return peak_; }
  /// Times a module suspended on this channel (full push / empty pop) —
  /// the per-channel backpressure split of
  /// Scheduler::stall_module_cycles(). Bumped by the scheduler when a
  /// module blocks here.
  std::uint64_t stall_events() const { return stalls_; }
  void note_stall() { ++stalls_; }

  /// Clears the per-run statistics (push/pop totals, peak occupancy,
  /// stall events) without touching an armed checksum tap — the
  /// GraphChecker arms taps *before* Graph::run, which calls this at
  /// entry. Peak restarts at the current fill: values already buffered
  /// genuinely occupy the FIFO.
  void reset_run_stats() {
    total_pushed_ = 0;
    total_popped_ = 0;
    stalls_ = 0;
    peak_ = size();
  }

  // --- checksum tap (streaming ABFT) ------------------------------------
  /// Arms a running checksum over every floating-point value pushed into
  /// this channel: sum, magnitude (sum of absolute values) and element
  /// count. With `weights` set, the k-th pushed value is weighted by
  /// weights[k % weights.size()] — the Huang–Abraham weighted checksum a
  /// GEMV propagation rule calls for. The weights vector must outlive
  /// the run (verify::GraphChecker owns it). Costs nothing unless armed.
  void arm_tap(const std::vector<double>* weights = nullptr) {
    tap_armed_ = true;
    tap_weights_ =
        (weights != nullptr && !weights->empty()) ? weights : nullptr;
    tap_sum_ = tap_mag_ = 0.0;
    tap_count_ = 0;
  }
  bool tap_armed() const { return tap_armed_; }
  double tap_sum() const { return tap_sum_; }
  double tap_mag() const { return tap_mag_; }
  std::uint64_t tap_count() const { return tap_count_; }

 protected:
  void on_push();
  void on_pop();
  void tap_accumulate(double value) {
    double w = 1.0;
    if (tap_weights_ != nullptr) {
      w = (*tap_weights_)[static_cast<std::size_t>(
          tap_count_ % tap_weights_->size())];
    }
    const double d = w * value;
    tap_sum_ += d;
    tap_mag_ += d < 0 ? -d : d;
    ++tap_count_;
  }

  Scheduler* sched_;
  std::string name_;
  std::size_t capacity_;
  int waiting_consumer_ = -1;
  int waiting_producer_ = -1;
  std::uint64_t total_pushed_ = 0;
  std::uint64_t total_popped_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t stalls_ = 0;
  bool tap_armed_ = false;
  double tap_sum_ = 0.0;
  double tap_mag_ = 0.0;
  std::uint64_t tap_count_ = 0;
  const std::vector<double>* tap_weights_ = nullptr;

  template <typename T>
  friend struct PopAwaiter;
  template <typename T>
  friend struct PushAwaiter;
};

template <typename T>
struct PopAwaiter;
template <typename T>
struct PushAwaiter;

/// Typed bounded FIFO. Storage is a ring buffer of fixed capacity.
template <typename T>
class Channel : public ChannelBase {
 public:
  Channel(Scheduler* sched, std::string name, std::size_t capacity)
      : ChannelBase(sched, std::move(name), capacity), buf_(capacity) {}

  std::size_t size() const override { return count_; }

  /// Awaitable pop: `T v = co_await ch.pop();`
  PopAwaiter<T> pop() { return PopAwaiter<T>{*this}; }
  /// Awaitable push: `co_await ch.push(v);`
  PushAwaiter<T> push(T value) { return PushAwaiter<T>{*this, std::move(value)}; }

  // Non-awaitable access used by awaiters and by unit tests.
  bool try_put(T value) {
    if (full()) return false;
    if constexpr (std::is_floating_point_v<T>) {
      // Injected in-flight corruption: when the scheduler's counter says
      // this is the targeted push, flip the value's top byte (sign /
      // exponent bits) as it enters the channel — silent damage to an
      // intermediate stream that no write-set snapshot ever sees.
      if (sched_ != nullptr && sched_->corrupt_armed() &&
          sched_->corrupt_hits(*this)) {
        auto bits = std::bit_cast<BitsOf>(value);
        bits ^= BitsOf{0x5a} << (8 * (sizeof(T) - 1));
        value = std::bit_cast<T>(bits);
      }
      // Taint screening at the module boundary: every floating-point value
      // crossing a channel is checked, so the first NaN/Inf is attributed
      // to the module that produced it (and, in trap mode, stops the run
      // deterministically before the poison spreads downstream).
      if (sched_ != nullptr && sched_->taint_enabled() &&
          !std::isfinite(static_cast<double>(value))) {
        sched_->note_nonfinite(*this, static_cast<double>(value));
      }
      // Checksum tap: accumulate after corruption so the tap observes
      // what actually crossed the module boundary.
      if (tap_armed_) tap_accumulate(static_cast<double>(value));
    }
    buf_[(head_ + count_) % capacity_] = std::move(value);
    ++count_;
    on_push();
    return true;
  }
  bool try_take(T& out) {
    if (count_ == 0) return false;
    out = std::move(buf_[head_]);
    head_ = (head_ + 1) % capacity_;
    --count_;
    on_pop();
    return true;
  }

 private:
  // Unsigned integer of T's width, for bit-level corruption injection.
  using BitsOf =
      std::conditional_t<sizeof(T) == 4, std::uint32_t, std::uint64_t>;

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

template <typename T>
struct PopAwaiter {
  Channel<T>& ch;

  bool await_ready() const noexcept { return !ch.empty(); }
  void await_suspend(TaskHandle h) const {
    TaskPromise& p = h.promise();
    ch.waiting_consumer_ = p.module_id;
    p.sched->block_on_pop(p.module_id, ch);
  }
  T await_resume() const {
    T v{};
    const bool ok = ch.try_take(v);
    FBLAS_REQUIRE(ok, "pop resumed on empty channel '" + ch.name() + "'");
    return v;
  }
};

template <typename T>
struct PushAwaiter {
  Channel<T>& ch;
  T value;

  bool await_ready() const noexcept { return !ch.full(); }
  void await_suspend(TaskHandle h) {
    TaskPromise& p = h.promise();
    ch.waiting_producer_ = p.module_id;
    p.sched->block_on_push(p.module_id, ch);
  }
  void await_resume() {
    const bool ok = ch.try_put(std::move(value));
    FBLAS_REQUIRE(ok, "push resumed on full channel '" + ch.name() + "'");
  }
};

}  // namespace fblas::stream
