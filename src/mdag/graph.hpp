// Module DAG (MDAG) representation of a streaming composition (Sec. V):
// vertices are interface modules (off-chip memory readers/writers, drawn
// as circles in the paper) or computational modules (FBLAS routines);
// edges are FIFO channels carrying a typed stream with a definite element
// count and order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/routines.hpp"
#include "stream/streamers.hpp"

namespace fblas::mdag {

/// The order signature of a stream crossing an edge: either a (possibly
/// replayed) vector or a tiled matrix traversal. Two signatures are
/// compatible when both the element count and the order match — the two
/// conditions for a valid edge in Sec. V.
struct StreamSig {
  std::int64_t count = 0;  ///< total elements crossing the edge
  bool is_matrix = false;
  stream::TileSchedule sched{};  ///< tile schedule (matrices only)
  std::int64_t repeat = 1;       ///< vector replay count
  std::int64_t rows = 0;         ///< matrix shape (matrices only)
  std::int64_t cols = 0;

  bool compatible(const StreamSig& other) const;

  /// Elements a consumer must ingest before a downstream tiled module can
  /// emit its first output block: one row (or column) of tiles for a
  /// matrix stream, the full stream for a vector. This is the channel
  /// depth the ATAX analysis requires (Sec. V-B: >= N*TN).
  std::int64_t first_output_lag() const;

  /// A vector of n elements streamed `repeat` times.
  static StreamSig vec(std::int64_t n, std::int64_t repeat = 1);
  /// A rows x cols matrix in the given tile schedule, `repeat` passes.
  static StreamSig mat(std::int64_t rows, std::int64_t cols,
                       stream::TileSchedule sched, std::int64_t repeat = 1);
};

enum class NodeType { Interface, Compute };

struct Node {
  std::string name;
  NodeType type;
  RoutineKind kind;       ///< meaningful for Compute nodes
  double latency = 0;     ///< pipeline latency L of the module (cycles)
};

struct Edge {
  int from;
  int to;
  StreamSig produced;   ///< what the producer emits
  StreamSig consumed;   ///< what the consumer expects
  std::int64_t channel_depth = 16;  ///< FIFO capacity in elements
};

class Mdag {
 public:
  /// Adds an off-chip interface module (reader or writer).
  int add_interface(std::string name);
  /// Adds a computational module implementing `kind`.
  int add_compute(std::string name, RoutineKind kind, double latency = 0);

  /// Connects from -> to; returns the edge id.
  int connect(int from, int to, StreamSig produced, StreamSig consumed,
              std::int64_t channel_depth = 16);
  /// Convenience when both endpoints agree on the signature.
  int connect(int from, int to, StreamSig sig,
              std::int64_t channel_depth = 16);

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }
  Node& node(int id) { return nodes_[static_cast<std::size_t>(id)]; }
  const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  Edge& edge(int id) { return edges_[static_cast<std::size_t>(id)]; }
  const Edge& edge(int id) const { return edges_[static_cast<std::size_t>(id)]; }

  int node_count() const { return static_cast<int>(nodes_.size()); }

  /// Successor node ids (with multiplicity) of `id`.
  std::vector<int> successors(int id) const;

  /// Topological order; throws ConfigError if the graph has a cycle.
  std::vector<int> topo_order() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

}  // namespace fblas::mdag
