#include "mdag/auto_partition.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "mdag/io_volume.hpp"

namespace fblas::mdag {
namespace {

/// Reachability over the DAG (from -> to through >= 0 edges).
bool reachable(const Mdag& g, int from, int to) {
  if (from == to) return true;
  return count_paths(g, from, to) > 0;
}

/// Number of compute vertices on the shortest path from `from` to `to`
/// (BFS; interface vertices are free).
int compute_hops(const Mdag& g, int from, int to) {
  std::vector<int> dist(g.nodes().size(), -1);
  std::vector<int> queue{from};
  dist[static_cast<std::size_t>(from)] = 0;
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const int u = queue[qi];
    for (const Edge& e : g.edges()) {
      if (e.from != u) continue;
      const int cost = g.node(e.to).type == NodeType::Compute ? 1 : 0;
      const int nd = dist[static_cast<std::size_t>(u)] + cost;
      auto& dv = dist[static_cast<std::size_t>(e.to)];
      if (dv == -1 || nd < dv) {
        dv = nd;
        queue.push_back(e.to);
      }
    }
  }
  return dist[static_cast<std::size_t>(to)];
}

}  // namespace

std::vector<ChannelSizing> required_channel_depths(const Mdag& g) {
  std::vector<ChannelSizing> sizings;
  for (const DisjointPairIssue& issue : disjoint_path_issues(g)) {
    // Among the sink's incoming edges reachable from the source, the one
    // on the path with the fewest compute vertices is the "early" stream
    // that must buffer while the other paths crunch their data.
    int best_edge = -1;
    int best_hops = 1 << 30;
    std::int64_t lag = 0;
    for (int ei = 0; ei < static_cast<int>(g.edges().size()); ++ei) {
      const Edge& e = g.edge(ei);
      if (e.to != issue.to) continue;
      if (!reachable(g, issue.from, e.from)) continue;
      const int hops = compute_hops(g, issue.from, e.from);
      if (hops < best_hops) {
        best_hops = hops;
        best_edge = ei;
      }
      // The lag is set by the slowest sibling path's first output.
      lag = std::max(lag, e.produced.first_output_lag());
    }
    if (best_edge >= 0) {
      sizings.push_back({best_edge, lag});
    }
  }
  // Deduplicate edges, keeping the largest requirement.
  std::sort(sizings.begin(), sizings.end(),
            [](const ChannelSizing& a, const ChannelSizing& b) {
              return a.edge < b.edge ||
                     (a.edge == b.edge && a.min_depth > b.min_depth);
            });
  sizings.erase(std::unique(sizings.begin(), sizings.end(),
                            [](const ChannelSizing& a,
                               const ChannelSizing& b) {
                              return a.edge == b.edge;
                            }),
                sizings.end());
  return sizings;
}

Plan derive_plan(const Mdag& g, const PlanOptions& options) {
  const auto edge_issues = validate_edges(g);
  if (!edge_issues.empty()) {
    throw ConfigError(
        "composition has invalid edges (count/order mismatch); no schedule "
        "can fix it: " + edge_issues.front().reason);
  }
  Plan plan;
  const auto issues = disjoint_path_issues(g);
  if (issues.empty()) {
    // Already a valid streaming composition.
    Component all;
    for (int i = 0; i < g.node_count(); ++i) all.nodes.push_back(i);
    plan.feasible = true;
    plan.components = {all};
    plan.io_ops = total_io_ops(g);
    plan.cycles = streaming_cycles(g, options.width);
    plan.explanation = "composition is a valid multitree: fully streaming";
    return plan;
  }
  // Option (a): size the offending channels.
  if (options.prefer_sizing) {
    const auto sizings = required_channel_depths(g);
    const bool fits = std::all_of(
        sizings.begin(), sizings.end(), [&](const ChannelSizing& s) {
          return s.min_depth <= options.max_channel_depth;
        });
    if (fits && !sizings.empty()) {
      Component all;
      for (int i = 0; i < g.node_count(); ++i) all.nodes.push_back(i);
      plan.feasible = true;
      plan.sizings = sizings;
      plan.components = {all};
      plan.io_ops = total_io_ops(g);
      plan.cycles = streaming_cycles(g, options.width);
      std::ostringstream os;
      os << "fully streaming with " << sizings.size()
         << " sized channel(s):";
      for (const auto& s : sizings) {
        os << " [" << g.node(g.edge(s.edge).from).name << " -> "
           << g.node(g.edge(s.edge).to).name << "] >= " << s.min_depth;
      }
      plan.explanation = os.str();
      return plan;
    }
  }
  // Option (b): greedy topological split into valid components.
  std::vector<Component> parts;
  Component current;
  for (const int v : g.topo_order()) {
    Component tentative = current;
    tentative.nodes.push_back(v);
    const Mdag sub = component_subgraph(g, tentative);
    if (disjoint_path_issues(sub).empty()) {
      current = std::move(tentative);
    } else {
      parts.push_back(current);
      current = Component{{v}};
    }
  }
  if (!current.nodes.empty()) parts.push_back(current);
  const auto cost = partition_cost(g, parts, options.width);
  plan.feasible = true;
  plan.components = parts;
  plan.io_ops = cost.io_ops;
  plan.cycles = cost.cycles;
  std::ostringstream os;
  os << "split into " << parts.size()
     << " sequential streaming components (cut edges round-trip DRAM)";
  plan.explanation = os.str();
  return plan;
}

}  // namespace fblas::mdag
