#include "mdag/graph.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace fblas::mdag {

bool StreamSig::compatible(const StreamSig& other) const {
  if (count != other.count) return false;  // condition (1): same volume
  if (is_matrix != other.is_matrix) return false;
  if (is_matrix) {
    // Condition (2): same order — tiling schemes must match exactly.
    return sched == other.sched && repeat == other.repeat;
  }
  return repeat == other.repeat;
}

StreamSig StreamSig::vec(std::int64_t n, std::int64_t repeat) {
  StreamSig s;
  s.count = n * repeat;
  s.repeat = repeat;
  return s;
}

StreamSig StreamSig::mat(std::int64_t rows, std::int64_t cols,
                         stream::TileSchedule sched, std::int64_t repeat) {
  StreamSig s;
  s.count = rows * cols * repeat;
  s.is_matrix = true;
  s.sched = sched;
  s.repeat = repeat;
  s.rows = rows;
  s.cols = cols;
  return s;
}

std::int64_t StreamSig::first_output_lag() const {
  if (!is_matrix) return count;
  if (sched.tile_order == Order::RowMajor) {
    // An entire row of tiles must pass before the first output block.
    return cols * std::min(sched.tile_rows, rows);
  }
  return rows * std::min(sched.tile_cols, cols);
}

int Mdag::add_interface(std::string name) {
  nodes_.push_back(Node{std::move(name), NodeType::Interface,
                        RoutineKind::Copy, 0});
  return static_cast<int>(nodes_.size()) - 1;
}

int Mdag::add_compute(std::string name, RoutineKind kind, double latency) {
  nodes_.push_back(Node{std::move(name), NodeType::Compute, kind, latency});
  return static_cast<int>(nodes_.size()) - 1;
}

int Mdag::connect(int from, int to, StreamSig produced, StreamSig consumed,
                  std::int64_t channel_depth) {
  FBLAS_REQUIRE(from >= 0 && from < node_count() && to >= 0 &&
                    to < node_count(),
                "edge endpoints must be existing nodes");
  FBLAS_REQUIRE(from != to, "self-loops are not valid MDAG edges");
  edges_.push_back(Edge{from, to, produced, consumed, channel_depth});
  return static_cast<int>(edges_.size()) - 1;
}

int Mdag::connect(int from, int to, StreamSig sig,
                  std::int64_t channel_depth) {
  return connect(from, to, sig, sig, channel_depth);
}

std::vector<int> Mdag::successors(int id) const {
  std::vector<int> out;
  for (const Edge& e : edges_) {
    if (e.from == id) out.push_back(e.to);
  }
  return out;
}

std::vector<int> Mdag::topo_order() const {
  std::vector<int> indeg(nodes_.size(), 0);
  for (const Edge& e : edges_) ++indeg[static_cast<std::size_t>(e.to)];
  std::vector<int> queue;
  for (int i = 0; i < node_count(); ++i) {
    if (indeg[static_cast<std::size_t>(i)] == 0) queue.push_back(i);
  }
  std::vector<int> order;
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const int u = queue[qi];
    order.push_back(u);
    for (const Edge& e : edges_) {
      if (e.from == u && --indeg[static_cast<std::size_t>(e.to)] == 0) {
        queue.push_back(e.to);
      }
    }
  }
  FBLAS_REQUIRE(order.size() == nodes_.size(),
                "MDAG contains a cycle; streaming compositions must be "
                "acyclic");
  return order;
}

}  // namespace fblas::mdag
