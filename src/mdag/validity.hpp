// Validity analysis of streaming compositions (Sec. V):
//  * every edge must carry identical counts in identical order;
//  * a multitree (at most one path between any pair of vertices) with
//    valid edges is always a valid composition;
//  * two or more vertex-disjoint paths between a pair (a non-multitree)
//    stall forever unless a channel on one path buffers the full lag —
//    the ATAX situation of Fig. 8.
#pragma once

#include <string>
#include <vector>

#include "mdag/graph.hpp"

namespace fblas::mdag {

struct EdgeIssue {
  int edge;
  std::string reason;
};

/// Checks condition (1)/(2) on every edge; empty result means all valid.
std::vector<EdgeIssue> validate_edges(const Mdag& g);

/// Number of distinct directed paths from `from` to `to`.
std::int64_t count_paths(const Mdag& g, int from, int to);

/// True when at most one path exists between every ordered vertex pair.
bool is_multitree(const Mdag& g);

/// Maximum number of internally-vertex-disjoint paths from `from` to `to`
/// (Menger's theorem via unit-capacity max-flow on the split graph).
int vertex_disjoint_paths(const Mdag& g, int from, int to);

/// A vertex pair whose >= 2 vertex-disjoint paths make the composition
/// invalid for unbounded input sizes.
struct DisjointPairIssue {
  int from, to;
  int paths;
};

/// All pairs with >= 2 vertex-disjoint paths.
std::vector<DisjointPairIssue> disjoint_path_issues(const Mdag& g);

/// Overall verdict following the paper's rules. `min_depths` (parallel to
/// edges) gives the channel depth an edge would need to absorb its lag;
/// pass the result of required_channel_depths() or user-chosen values.
struct Validity {
  bool valid;
  std::vector<EdgeIssue> edge_issues;
  std::vector<DisjointPairIssue> disjoint_issues;
  std::string summary;
};
Validity validate(const Mdag& g);

}  // namespace fblas::mdag
