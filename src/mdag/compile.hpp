// The composition compiler: one pipeline from an MDAG description to an
// executable streaming plan (Sec. V generalized beyond the paper's three
// worked examples).
//
// compile() takes an annotated module DAG and derives everything the host
// runtime previously hand-wired per app:
//
//   1. validity    — edge signature checks and the multitree analysis,
//                    via derive_plan(); an unexecutable graph is rejected
//                    here (enqueue time) with the validity diagnostic.
//   2. partition   — channel sizings when the lag fits on chip, otherwise
//                    a sequential split into individually-valid streaming
//                    components. Edges whose consumer demands a replay the
//                    producer cannot stream (no replay between
//                    computational modules, Sec. V-C) are *forced cuts*:
//                    they always materialize through DRAM and sequence
//                    their endpoints into different components.
//   3. lowering    — per-edge FIFO names and depths, synthesized fan-out
//                    trunks (only 2-way replication modules exist),
//                    synthesized zero generators for GEMV nodes built
//                    without a y0 edge, and DRAM round-trips for cut
//                    edges (reusing a sibling interface writer's buffer
//                    when one carries the same stream, otherwise a scratch
//                    buffer the runtime allocates).
//   4. tap plan    — every FIFO of every component, in topological
//                    declaration order, so a verify::GraphChecker can
//                    localize a divergence to the first corrupted edge.
//
// The compiler is host-agnostic: it never touches buffers or streams.
// host::Composition + Context::run_composition interpret the result.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mdag/auto_partition.hpp"
#include "mdag/graph.hpp"

namespace fblas::mdag {

/// Per-node annotation the graph structure alone cannot carry: operand
/// identity for interface nodes and the scalar/orientation parameters of
/// compute nodes. Compute inputs follow each node's in-edge declaration
/// order: GEMV [A, x, (y0)], AXPY/DOT [x, y], GER [A0, x, y],
/// TRSV [A, b], SCAL [x].
struct NodeSemantics {
  // Interface nodes.
  std::string operand;     ///< binding key (diagnostics; the host binds by node)
  bool is_output = false;  ///< DRAM writer (exactly one in-edge)
  /// Reader streams op(A)'s `uplo` triangle in solve order instead of a
  /// tiled full matrix (the TRSV A operand).
  bool triangular = false;
  // Compute nodes (and triangular readers, which reuse uplo/trans).
  Transpose trans = Transpose::None;
  Uplo uplo = Uplo::Lower;
  Diag diag = Diag::NonUnit;
  double alpha = 1.0;  ///< GEMV/GER/AXPY/SCAL coefficient
  double beta = 0.0;   ///< GEMV y0 coefficient (forced 0 when y0 is synthesized)
};

struct CompileOptions {
  int width = 16;  ///< vectorization width of every lowered module
  /// Largest FIFO the planner may allocate to stream a non-multitree.
  std::int64_t max_channel_depth = 1 << 16;
  bool prefer_sizing = true;
  /// When false, a graph that needs a sequential split (or a forced DRAM
  /// cut) is rejected with the validity diagnostic instead of partitioned.
  bool allow_split = true;
};

/// One FIFO of one component's lowered stream graph. Every channel is
/// also a checksum-tap site.
struct CompiledChannel {
  enum class Role {
    Edge,      ///< carries MDAG edge `id`
    Trunk,     ///< pre-fanout stream of producer node `id`
    Zero,      ///< synthesized zero y0 of GEMV node `id`
    Spill,     ///< producer side of cut edge `id` into a scratch buffer
    Readback,  ///< consumer side of cut edge `id` (DRAM round trip)
  };
  Role role;
  int id;
  std::string name;
  std::int64_t depth;
};

/// DRAM materialization of a cut edge.
struct CutEdge {
  int edge;
  /// Interface-writer node whose bound buffer already carries the stream
  /// (same per-pass values); -1 means no such sibling exists and the
  /// runtime must allocate a scratch buffer of `scratch_elems` elements
  /// (fed by a Spill channel in the producer's component).
  int writer = -1;
  std::int64_t scratch_elems = 0;
};

struct Compiled {
  CompileOptions options;
  /// The execution plan of the streamable subgraph (forced cuts removed).
  Plan plan;
  std::string summary;
  std::vector<int> component_of;         ///< node -> component index
  std::vector<std::vector<int>> order;   ///< per component, topo node order
  std::vector<bool> edge_cut;            ///< per edge
  std::vector<CutEdge> cuts;             ///< one per cut edge
  std::vector<std::string> edge_channel; ///< per edge ("" when cut)
  std::vector<std::int64_t> edge_depth;  ///< per edge (0 when cut)
  std::vector<int> fanout_nodes;         ///< nodes lowered with a fanout2
  std::vector<std::string> trunk_name;   ///< parallel to fanout_nodes
  std::vector<int> zero_nodes;           ///< GEMV nodes with synthesized y0
  std::vector<std::string> zero_name;    ///< parallel to zero_nodes
  std::vector<std::int64_t> zero_count;  ///< parallel to zero_nodes
  /// Per component: every FIFO in topological declaration order — the
  /// channel-creation list and the checker's tap order at once.
  std::vector<std::vector<CompiledChannel>> channels;
  /// Level-2+ compute modules (feeds sim::composition_frequency).
  int matrix_modules = 0;

  bool has_trunk(int node) const;
  const std::string& trunk_of(int node) const;
  bool has_zero(int node) const;
  std::size_t zero_index(int node) const;
  const CutEdge& cut_of(int edge) const;
  /// In-edges of `node` in declaration (port) order.
  std::vector<int> in_edges(const Mdag& g, int node) const;
  /// Out-edges of `node` in declaration order.
  std::vector<int> out_edges(const Mdag& g, int node) const;
};

/// Compiles an annotated MDAG into an executable plan. Throws ConfigError
/// when the description cannot execute: edge-invalid signatures (via
/// derive_plan), unsupported routine kinds, replication beyond the 2-way
/// fan-out module, or — with allow_split = false — any graph that is not
/// a single fully-streaming component.
Compiled compile(const Mdag& g, const std::vector<NodeSemantics>& sem,
                 const CompileOptions& opts = {});

}  // namespace fblas::mdag
