#include "mdag/compile.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/routines.hpp"
#include "mdag/validity.hpp"

namespace fblas::mdag {
namespace {

bool supported_compute(RoutineKind k) {
  switch (k) {
    case RoutineKind::Gemv:
    case RoutineKind::Ger:
    case RoutineKind::Trsv:
    case RoutineKind::Axpy:
    case RoutineKind::Scal:
    case RoutineKind::Dot:
      return true;
    default:
      return false;
  }
}

std::int64_t per_pass(const StreamSig& s) {
  return s.repeat > 0 ? s.count / s.repeat : s.count;
}

/// A replay-only mismatch: the consumer wants the same per-pass stream
/// the producer emits, just replayed (or re-scheduled). No channel can
/// fix that — the paper's modules never replay between computes — so the
/// edge must round-trip through DRAM.
bool replay_mismatch(const Edge& e) {
  if (e.produced.compatible(e.consumed)) return false;
  if (e.produced.is_matrix != e.consumed.is_matrix) return false;
  if (per_pass(e.produced) != per_pass(e.consumed)) return false;
  if (e.produced.is_matrix &&
      (e.produced.rows != e.consumed.rows ||
       e.produced.cols != e.consumed.cols)) {
    return false;
  }
  return true;
}

std::string unique_name(std::set<std::string>& used, std::string base,
                        int edge) {
  if (!used.insert(base).second) {
    base += "#" + std::to_string(edge);
    used.insert(base);
  }
  return base;
}

}  // namespace

bool Compiled::has_trunk(int node) const {
  return std::find(fanout_nodes.begin(), fanout_nodes.end(), node) !=
         fanout_nodes.end();
}

const std::string& Compiled::trunk_of(int node) const {
  const auto it = std::find(fanout_nodes.begin(), fanout_nodes.end(), node);
  FBLAS_REQUIRE(it != fanout_nodes.end(), "node has no fan-out trunk");
  return trunk_name[static_cast<std::size_t>(it - fanout_nodes.begin())];
}

bool Compiled::has_zero(int node) const {
  return std::find(zero_nodes.begin(), zero_nodes.end(), node) !=
         zero_nodes.end();
}

std::size_t Compiled::zero_index(int node) const {
  const auto it = std::find(zero_nodes.begin(), zero_nodes.end(), node);
  FBLAS_REQUIRE(it != zero_nodes.end(), "node has no synthesized zero input");
  return static_cast<std::size_t>(it - zero_nodes.begin());
}

const CutEdge& Compiled::cut_of(int edge) const {
  for (const CutEdge& c : cuts) {
    if (c.edge == edge) return c;
  }
  throw ConfigError("edge " + std::to_string(edge) + " is not cut");
}

std::vector<int> Compiled::in_edges(const Mdag& g, int node) const {
  std::vector<int> out;
  for (int e = 0; e < static_cast<int>(g.edges().size()); ++e) {
    if (g.edge(e).to == node) out.push_back(e);
  }
  return out;
}

std::vector<int> Compiled::out_edges(const Mdag& g, int node) const {
  std::vector<int> out;
  for (int e = 0; e < static_cast<int>(g.edges().size()); ++e) {
    if (g.edge(e).from == node) out.push_back(e);
  }
  return out;
}

Compiled compile(const Mdag& g, const std::vector<NodeSemantics>& sem,
                 const CompileOptions& opts) {
  FBLAS_REQUIRE(static_cast<int>(sem.size()) == g.node_count(),
                "compile: one NodeSemantics per node required");
  const int nn = g.node_count();
  const int ne = static_cast<int>(g.edges().size());

  Compiled cp;
  cp.options = opts;
  cp.edge_cut.assign(static_cast<std::size_t>(ne), false);
  cp.edge_channel.assign(static_cast<std::size_t>(ne), std::string());
  cp.edge_depth.assign(static_cast<std::size_t>(ne), 0);

  // Shape checks the planner does not make.
  for (int u = 0; u < nn; ++u) {
    const Node& node = g.node(u);
    const NodeSemantics& s = sem[static_cast<std::size_t>(u)];
    const auto ins = cp.in_edges(g, u);
    const auto outs = cp.out_edges(g, u);
    if (node.type == NodeType::Compute) {
      if (!supported_compute(node.kind)) {
        throw ConfigError("compile: node '" + node.name + "' uses " +
                          std::string(routine_info(node.kind).name) +
                          ", which has no streaming-composition lowering");
      }
      if (outs.size() == 0) {
        throw ConfigError("compile: compute node '" + node.name +
                          "' has no output edge");
      }
      std::size_t want_min = 0, want_max = 0;
      switch (node.kind) {
        case RoutineKind::Gemv: want_min = 2; want_max = 3; break;
        case RoutineKind::Ger: want_min = want_max = 3; break;
        case RoutineKind::Trsv: want_min = want_max = 2; break;
        case RoutineKind::Axpy:
        case RoutineKind::Dot: want_min = want_max = 2; break;
        case RoutineKind::Scal: want_min = want_max = 1; break;
        default: break;
      }
      if (ins.size() < want_min || ins.size() > want_max) {
        throw ConfigError("compile: node '" + node.name + "' (" +
                          std::string(routine_info(node.kind).name) + ") has " +
                          std::to_string(ins.size()) + " input edges");
      }
    } else if (s.is_output) {
      if (ins.size() != 1 || !outs.empty()) {
        throw ConfigError("compile: interface writer '" + node.name +
                          "' must have exactly one input edge and no outputs");
      }
    } else if (!ins.empty()) {
      throw ConfigError("compile: interface reader '" + node.name +
                        "' cannot have input edges");
    }
  }

  // ---- 1/2. Forced cuts, then validity + partition of what can stream.
  std::vector<bool> forced(static_cast<std::size_t>(ne), false);
  for (int e = 0; e < ne; ++e) {
    if (replay_mismatch(g.edge(e))) forced[static_cast<std::size_t>(e)] = true;
  }

  Mdag sub;
  for (int u = 0; u < nn; ++u) {
    const Node& node = g.node(u);
    if (node.type == NodeType::Interface) {
      sub.add_interface(node.name);
    } else {
      sub.add_compute(node.name, node.kind, node.latency);
    }
  }
  std::vector<int> sub_to_orig;
  for (int e = 0; e < ne; ++e) {
    if (forced[static_cast<std::size_t>(e)]) continue;
    const Edge& edge = g.edge(e);
    sub.connect(edge.from, edge.to, edge.produced, edge.consumed,
                edge.channel_depth);
    sub_to_orig.push_back(e);
  }

  PlanOptions popt;
  popt.max_channel_depth = opts.max_channel_depth;
  popt.prefer_sizing = opts.prefer_sizing;
  popt.width = opts.width;
  cp.plan = derive_plan(sub, popt);  // throws ConfigError on invalid edges

  std::vector<std::vector<int>> comps;
  for (const Component& c : cp.plan.components) comps.push_back(c.nodes);
  if (comps.empty()) {
    std::vector<int> all(static_cast<std::size_t>(nn));
    for (int u = 0; u < nn; ++u) all[static_cast<std::size_t>(u)] = u;
    comps.push_back(std::move(all));
  }

  cp.component_of.assign(static_cast<std::size_t>(nn), -1);
  auto reindex = [&] {
    for (std::size_t c = 0; c < comps.size(); ++c) {
      for (int u : comps[c]) {
        cp.component_of[static_cast<std::size_t>(u)] = static_cast<int>(c);
      }
    }
  };
  reindex();

  // A forced cut sequences its consumer after its producer: the DRAM
  // round trip is only consistent once the producer's component has
  // drained. Split any component a forced cut lands inside, moving the
  // consumer and everything it feeds (within that component) later.
  for (bool changed = true; changed;) {
    changed = false;
    for (int e = 0; e < ne && !changed; ++e) {
      if (!forced[static_cast<std::size_t>(e)]) continue;
      const Edge& edge = g.edge(e);
      const int cf = cp.component_of[static_cast<std::size_t>(edge.from)];
      const int ct = cp.component_of[static_cast<std::size_t>(edge.to)];
      if (cf != ct) continue;
      const auto& nodes = comps[static_cast<std::size_t>(cf)];
      const std::set<int> members(nodes.begin(), nodes.end());
      std::set<int> moved{edge.to};
      for (bool grew = true; grew;) {
        grew = false;
        for (int e2 = 0; e2 < ne; ++e2) {
          if (forced[static_cast<std::size_t>(e2)]) continue;
          const Edge& s = g.edge(e2);
          if (moved.count(s.from) != 0 && members.count(s.to) != 0 &&
              moved.insert(s.to).second) {
            grew = true;
          }
        }
      }
      std::vector<int> keep, split;
      for (int u : nodes) {
        (moved.count(u) != 0 ? split : keep).push_back(u);
      }
      comps[static_cast<std::size_t>(cf)] = std::move(keep);
      comps.insert(comps.begin() + cf + 1, std::move(split));
      reindex();
      changed = true;
    }
  }

  for (int e = 0; e < ne; ++e) {
    const Edge& edge = g.edge(e);
    cp.edge_cut[static_cast<std::size_t>(e)] =
        forced[static_cast<std::size_t>(e)] ||
        cp.component_of[static_cast<std::size_t>(edge.from)] !=
            cp.component_of[static_cast<std::size_t>(edge.to)];
    if (cp.edge_cut[static_cast<std::size_t>(e)]) {
      FBLAS_REQUIRE(cp.component_of[static_cast<std::size_t>(edge.from)] <
                        cp.component_of[static_cast<std::size_t>(edge.to)],
                    "compile: cut edge must point to a later component");
    }
  }

  const bool needs_split =
      comps.size() > 1 ||
      std::any_of(cp.edge_cut.begin(), cp.edge_cut.end(),
                  [](bool b) { return b; });
  if (!opts.allow_split && needs_split) {
    const Validity v = validate(g);
    throw ConfigError(
        "compile: composition cannot execute as a single streaming "
        "component (channel depth budget " +
        std::to_string(opts.max_channel_depth) + "): " +
        (v.valid ? cp.plan.explanation : v.summary));
  }

  const auto topo = g.topo_order();
  cp.order.assign(comps.size(), {});
  for (int u : topo) {
    cp.order[static_cast<std::size_t>(
                 cp.component_of[static_cast<std::size_t>(u)])]
        .push_back(u);
  }

  // ---- 3. Lowering: cut materialization, fan-outs, zero inputs, FIFOs.
  for (int e = 0; e < ne; ++e) {
    if (!cp.edge_cut[static_cast<std::size_t>(e)]) continue;
    const Edge& edge = g.edge(e);
    CutEdge cut;
    cut.edge = e;
    const Node& prod = g.node(edge.from);
    if (prod.type == NodeType::Interface) {
      // A reader's stream is its operand: the later component re-reads it.
      cut.writer = edge.from;
    } else {
      for (int e2 : cp.out_edges(g, edge.from)) {
        if (e2 == e || cp.edge_cut[static_cast<std::size_t>(e2)]) continue;
        const Edge& sib = g.edge(e2);
        const Node& sink = g.node(sib.to);
        if (sink.type == NodeType::Interface &&
            sem[static_cast<std::size_t>(sib.to)].is_output &&
            per_pass(sib.produced) == per_pass(edge.produced)) {
          cut.writer = sib.to;
          break;
        }
      }
    }
    if (cut.writer < 0) cut.scratch_elems = per_pass(edge.produced);
    cp.cuts.push_back(cut);
  }

  std::set<std::string> used_names;
  const auto ename = [&](int e) {
    const Edge& edge = g.edge(e);
    return g.node(edge.from).name + "->" + g.node(edge.to).name;
  };

  // Replication branches per producer: streamed out-edges plus scratch
  // spills. One branch streams directly; two go through the fanout2
  // module; more have no lowering.
  std::vector<std::vector<int>> branches(static_cast<std::size_t>(nn));
  for (int u = 0; u < nn; ++u) {
    for (int e : cp.out_edges(g, u)) {
      const bool cut = cp.edge_cut[static_cast<std::size_t>(e)];
      if (!cut || cp.cut_of(e).writer < 0) {
        branches[static_cast<std::size_t>(u)].push_back(e);
      }
    }
    const auto& br = branches[static_cast<std::size_t>(u)];
    if (br.size() > 2) {
      throw ConfigError("compile: node '" + g.node(u).name + "' replicates " +
                        std::to_string(br.size()) +
                        " ways; only the 2-way fan-out module exists");
    }
    if (br.size() == 2) {
      const StreamSig& a = g.edge(br[0]).produced;
      const StreamSig& b = g.edge(br[1]).produced;
      if (!a.compatible(b)) {
        throw ConfigError("compile: fan-out of node '" + g.node(u).name +
                          "' would replicate two different streams");
      }
      cp.fanout_nodes.push_back(u);
      cp.trunk_name.push_back(
          unique_name(used_names, g.node(u).name + ".fan", br[0]));
    }
  }

  for (int u = 0; u < nn; ++u) {
    const Node& node = g.node(u);
    if (node.type != NodeType::Compute || node.kind != RoutineKind::Gemv) {
      continue;
    }
    const auto ins = cp.in_edges(g, u);
    if (ins.size() != 2) continue;
    const Edge& out = g.edge(cp.out_edges(g, u)[0]);
    cp.zero_nodes.push_back(u);
    cp.zero_name.push_back(
        unique_name(used_names, node.name + ".y0", cp.out_edges(g, u)[0]));
    cp.zero_count.push_back(per_pass(out.produced));
  }

  // Depths: the sized channels from the plan, a scalar FIFO for scalar
  // edges, and a component-wide default otherwise (wider when a matrix
  // streams through the component, matching the hand-tuned compositions).
  std::vector<bool> comp_has_matrix(comps.size(), false);
  for (int e = 0; e < ne; ++e) {
    const Edge& edge = g.edge(e);
    if (edge.produced.is_matrix || edge.consumed.is_matrix) {
      comp_has_matrix[static_cast<std::size_t>(
          cp.component_of[static_cast<std::size_t>(edge.from)])] = true;
      comp_has_matrix[static_cast<std::size_t>(
          cp.component_of[static_cast<std::size_t>(edge.to)])] = true;
    }
  }
  const auto default_depth = [&](int component, const StreamSig& sig) {
    if (sig.count == 1) return std::int64_t{2};
    const int mult = comp_has_matrix[static_cast<std::size_t>(component)] ? 4 : 2;
    return static_cast<std::int64_t>(std::max(64, mult * opts.width));
  };
  std::vector<std::int64_t> sized(static_cast<std::size_t>(ne), 0);
  for (const ChannelSizing& s : cp.plan.sizings) {
    const int orig = sub_to_orig[static_cast<std::size_t>(s.edge)];
    if (!cp.edge_cut[static_cast<std::size_t>(orig)]) {
      // Fan-out slack on top of the analysis bound, as the hand-tuned
      // ATAX composition allocates.
      sized[static_cast<std::size_t>(orig)] = s.min_depth + 4 * opts.width;
    }
  }
  for (int e = 0; e < ne; ++e) {
    if (cp.edge_cut[static_cast<std::size_t>(e)]) continue;
    const Edge& edge = g.edge(e);
    const int c = cp.component_of[static_cast<std::size_t>(edge.from)];
    std::int64_t depth = std::max(sized[static_cast<std::size_t>(e)],
                                  default_depth(c, edge.produced));
    depth = std::max(depth, edge.channel_depth);
    cp.edge_depth[static_cast<std::size_t>(e)] = depth;
    cp.edge_channel[static_cast<std::size_t>(e)] =
        unique_name(used_names, ename(e), e);
  }

  // ---- 4. Per-component FIFO/tap list in topological declaration order.
  cp.channels.assign(comps.size(), {});
  for (std::size_t c = 0; c < comps.size(); ++c) {
    auto& list = cp.channels[c];
    for (int u : cp.order[c]) {
      for (int e : cp.in_edges(g, u)) {
        if (!cp.edge_cut[static_cast<std::size_t>(e)]) continue;
        const Edge& edge = g.edge(e);
        list.push_back(CompiledChannel{
            CompiledChannel::Role::Readback, e,
            unique_name(used_names, "rb:" + ename(e), e),
            default_depth(static_cast<int>(c), edge.consumed)});
      }
      if (cp.has_zero(u)) {
        const std::size_t zi = cp.zero_index(u);
        list.push_back(CompiledChannel{CompiledChannel::Role::Zero, u,
                                       cp.zero_name[zi],
                                       default_depth(static_cast<int>(c),
                                                     StreamSig::vec(2))});
      }
      if (cp.has_trunk(u)) {
        const int e0 = branches[static_cast<std::size_t>(u)][0];
        list.push_back(CompiledChannel{
            CompiledChannel::Role::Trunk, u, cp.trunk_of(u),
            default_depth(static_cast<int>(c), g.edge(e0).produced)});
      }
      for (int e : cp.out_edges(g, u)) {
        if (!cp.edge_cut[static_cast<std::size_t>(e)]) {
          list.push_back(CompiledChannel{
              CompiledChannel::Role::Edge, e,
              cp.edge_channel[static_cast<std::size_t>(e)],
              cp.edge_depth[static_cast<std::size_t>(e)]});
        } else if (cp.cut_of(e).writer < 0) {
          const Edge& edge = g.edge(e);
          list.push_back(CompiledChannel{
              CompiledChannel::Role::Spill, e,
              unique_name(used_names, "spill:" + ename(e), e),
              default_depth(static_cast<int>(c), edge.produced)});
        }
      }
    }
  }

  // The frequency model sees the largest set of matrix modules resident
  // at once — a sequential split reconfigures between components, so the
  // count is the per-component maximum, not the whole-graph total (the
  // hand-tuned GEMVER clocks both of its graphs at the 3-module point).
  for (std::size_t c = 0; c < comps.size(); ++c) {
    int k = 0;
    for (int u : comps[c]) {
      const Node& node = g.node(u);
      if (node.type == NodeType::Compute &&
          routine_info(node.kind).level >= 2) {
        ++k;
      }
    }
    cp.matrix_modules = std::max(cp.matrix_modules, k);
  }

  std::ostringstream os;
  os << "compiled '" << comps.size() << " component(s), "
     << cp.cuts.size() << " cut edge(s), " << cp.plan.sizings.size()
     << " sized channel(s)': " << cp.plan.explanation;
  cp.summary = os.str();
  return cp;
}

}  // namespace fblas::mdag
