#include "mdag/resources.hpp"

namespace fblas::mdag {

sim::Resources interface_kernel_cost(Precision prec, int width) {
  // A reader/writer helper kernel: address generation, burst buffering
  // and the channel endpoint. Calibrated so that the savings land in the
  // paper's "up to -40%" range for 2-3 module compositions.
  const double scale = prec == Precision::Double ? 1.6 : 1.0;
  sim::Resources r;
  r.alms = (2200 + 40.0 * width) * scale;
  r.luts = 2 * r.alms;
  r.ffs = (5200 + 90.0 * width) * scale;
  r.dsps = 4;  // address arithmetic
  r.m20ks = 6 + 0.4 * width;
  return r;
}

CompositionResources composition_resource_savings(const Mdag& g,
                                                  Precision prec, int width,
                                                  const sim::DeviceSpec& dev) {
  CompositionResources out{};
  const sim::Resources shell = sim::shell_overhead(dev);
  const sim::Resources iface = interface_kernel_cost(prec, width);

  auto module_only = [&](const Node& n) {
    sim::ModuleShape shape{n.kind, prec, width, 256, 256, 4, 4};
    sim::Resources r = sim::estimate_design(shape, dev);
    // estimate_design includes the shell; strip it to get the module.
    r.alms -= shell.alms;
    r.luts -= shell.luts;
    r.ffs -= shell.ffs;
    r.dsps -= shell.dsps;
    r.m20ks -= shell.m20ks;
    return r;
  };

  // Streamed: one shell, one interface kernel per interface *node*
  // (readers are shared when they broadcast), modules once.
  out.streamed = shell;
  for (const Node& n : g.nodes()) {
    if (n.type == NodeType::Interface) {
      out.streamed += iface;
    } else {
      out.streamed += module_only(n);
    }
  }

  // Sequential: every computational module becomes a standalone design
  // with its own interface kernel per incident edge; the shell is paid
  // once (the board is reprogrammed or the kernels share the BSP).
  out.sequential = shell;
  for (int ni = 0; ni < g.node_count(); ++ni) {
    const Node& n = g.node(ni);
    if (n.type != NodeType::Compute) continue;
    out.sequential += module_only(n);
    for (const Edge& e : g.edges()) {
      if (e.from == ni || e.to == ni) out.sequential += iface;
    }
  }
  // The paper's "-40%" is over the design's own resources; the fixed BSP
  // shell is common to both variants and excluded from the fraction.
  out.saving_fraction = 1.0 - (out.streamed.alms - shell.alms) /
                                  (out.sequential.alms - shell.alms);
  return out;
}

}  // namespace fblas::mdag
