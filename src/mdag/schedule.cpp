#include "mdag/schedule.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "mdag/io_volume.hpp"

namespace fblas::mdag {
namespace {

/// component index of every node; throws if not a partition.
std::vector<int> component_of(const Mdag& g,
                              const std::vector<Component>& parts) {
  std::vector<int> comp(g.nodes().size(), -1);
  for (int ci = 0; ci < static_cast<int>(parts.size()); ++ci) {
    for (const int n : parts[static_cast<std::size_t>(ci)].nodes) {
      FBLAS_REQUIRE(n >= 0 && n < g.node_count(), "unknown node in partition");
      FBLAS_REQUIRE(comp[static_cast<std::size_t>(n)] == -1,
                    "node appears in two components");
      comp[static_cast<std::size_t>(n)] = ci;
    }
  }
  for (int n = 0; n < g.node_count(); ++n) {
    FBLAS_REQUIRE(comp[static_cast<std::size_t>(n)] != -1,
                  "node missing from partition: " + g.node(n).name);
  }
  return comp;
}

}  // namespace

void check_partition(const Mdag& g, const std::vector<Component>& parts) {
  const auto comp = component_of(g, parts);
  for (const Edge& e : g.edges()) {
    FBLAS_REQUIRE(comp[static_cast<std::size_t>(e.from)] <=
                      comp[static_cast<std::size_t>(e.to)],
                  "edge from " + g.node(e.from).name + " to " +
                      g.node(e.to).name +
                      " crosses components backwards; components execute "
                      "in order");
  }
}

Mdag component_subgraph(const Mdag& g, const Component& part) {
  Mdag sub;
  std::vector<int> remap(g.nodes().size(), -1);
  for (const int n : part.nodes) {
    const Node& node = g.node(n);
    remap[static_cast<std::size_t>(n)] =
        node.type == NodeType::Interface
            ? sub.add_interface(node.name)
            : sub.add_compute(node.name, node.kind, node.latency);
  }
  for (const Edge& e : g.edges()) {
    const int f = remap[static_cast<std::size_t>(e.from)];
    const int t = remap[static_cast<std::size_t>(e.to)];
    if (f != -1 && t != -1) {
      sub.connect(f, t, e.produced, e.consumed, e.channel_depth);
    } else if (f != -1) {
      // Cut edge leaving the component: producer now writes to DRAM.
      const int w = sub.add_interface("dram_out:" + g.node(e.to).name);
      sub.connect(f, w, e.produced, e.produced, e.channel_depth);
    } else if (t != -1) {
      // Cut edge entering the component: consumer reads from DRAM.
      const int r = sub.add_interface("dram_in:" + g.node(e.from).name);
      sub.connect(r, t, e.consumed, e.consumed, e.channel_depth);
    }
  }
  return sub;
}

PartitionCost partition_cost(const Mdag& g,
                             const std::vector<Component>& parts, int width) {
  check_partition(g, parts);
  PartitionCost cost;
  cost.components = static_cast<int>(parts.size());
  for (const Component& part : parts) {
    const Mdag sub = component_subgraph(g, part);
    cost.io_ops += total_io_ops(sub);
    cost.cycles += streaming_cycles(sub, width);
  }
  return cost;
}

}  // namespace fblas::mdag
