// I/O-volume and completion-time calculus for streaming compositions
// (Sec. V-A): streaming between modules removes DRAM round trips, and
// pipeline-parallel execution replaces the sum of module times with the
// critical-path latency plus a single pass over the data.
#pragma once

#include <cstdint>

#include "mdag/graph.hpp"

namespace fblas::mdag {

/// DRAM I/O operations of the composition: every element crossing an
/// edge incident to an interface module is one off-chip read or write.
std::int64_t total_io_ops(const Mdag& g);

/// Completion cycles of the fully-streaming composition at vectorization
/// width `width`: critical-path module latency plus one pass over the
/// largest edge volume (the paper's L_copy + L_axpy + L_dot + N model).
double streaming_cycles(const Mdag& g, int width);

/// Completion cycles when the modules run one-by-one through the host
/// layer instead (each module's latency plus its own full data pass).
double sequential_cycles(const Mdag& g, int width);

/// Sum of module latencies along the longest latency path.
double critical_path_latency(const Mdag& g);

}  // namespace fblas::mdag
