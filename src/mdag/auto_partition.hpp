// Automatic derivation of a valid execution plan for an arbitrary MDAG —
// the "full general case analysis ... that could help the user in
// deriving valid FBLAS compositions", which the paper leaves as future
// work (Sec. V / VIII).
//
// Given a composition that is invalid because of vertex-disjoint path
// pairs, the planner can either
//   (a) size the offending channels (when the input sizes are known and
//       the buffers fit on chip), or
//   (b) cut a minimal set of edges and split the MDAG into sequential
//       streaming components, each of which is a valid multitree.
// The planner prefers (b) cuts that minimize the extra DRAM traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "mdag/graph.hpp"
#include "mdag/schedule.hpp"
#include "mdag/validity.hpp"

namespace fblas::mdag {

/// One resolution option for an invalid composition.
struct ChannelSizing {
  int edge;                    ///< edge whose FIFO must grow
  std::int64_t min_depth;      ///< required capacity in elements
};

struct Plan {
  /// True when the composition (or every component of the partition) is
  /// valid and can execute.
  bool feasible = false;
  /// Channel sizings applied (empty when the graph was split instead).
  std::vector<ChannelSizing> sizings;
  /// Sequential components (a single component = fully streaming).
  std::vector<Component> components;
  /// Total DRAM I/O of the plan, including cut-edge round trips.
  std::int64_t io_ops = 0;
  /// Completion estimate at width 1 (streaming_cycles summed over
  /// components).
  double cycles = 0;
  std::string explanation;
};

struct PlanOptions {
  /// Largest FIFO the planner may allocate on chip, in elements. Edges
  /// whose lag exceeds this cannot be resolved by sizing (b) applies.
  std::int64_t max_channel_depth = 1 << 16;
  /// When true the planner prefers sizing channels over splitting, as
  /// long as the depth budget allows it.
  bool prefer_sizing = true;
  int width = 1;  ///< vectorization width for the cycle estimate
};

/// For each vertex-disjoint-path issue, the channel that would need
/// sizing (the direct edge of the shorter path) and the depth it needs:
/// the volume the longer path buffers before producing its first output,
/// approximated by the largest edge volume on the longer path.
std::vector<ChannelSizing> required_channel_depths(const Mdag& g);

/// Derives an execution plan: a fully-streaming plan with channel
/// sizings when possible, otherwise a minimal sequential partition whose
/// components are individually valid. Throws ConfigError for edge-invalid
/// graphs (mismatched counts/orders cannot be fixed by scheduling).
Plan derive_plan(const Mdag& g, const PlanOptions& options = {});

}  // namespace fblas::mdag
