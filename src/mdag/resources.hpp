// Resource accounting for streaming compositions (Sec. VI-C): chaining
// modules through on-chip channels removes the DRAM interface kernels of
// every internal edge, which the paper measures as up to 40% lower
// resource usage than running the same modules one by one.
#pragma once

#include "common/types.hpp"
#include "mdag/graph.hpp"
#include "sim/resource_model.hpp"

namespace fblas::mdag {

/// Resource cost of one DRAM interface kernel (reader or writer helper)
/// at the given width.
sim::Resources interface_kernel_cost(Precision prec, int width);

struct CompositionResources {
  sim::Resources streamed;    ///< composed design (shared shell, on-chip edges)
  sim::Resources sequential;  ///< one full design per module, run one by one
  double saving_fraction;     ///< 1 - streamed/sequential (by ALMs)
};

/// Compares the composed design against executing each computational
/// module as its own standalone design (every operand through DRAM).
CompositionResources composition_resource_savings(const Mdag& g,
                                                  Precision prec, int width,
                                                  const sim::DeviceSpec& dev);

}  // namespace fblas::mdag
