// Checksum-propagation rules for module DAGs (streaming ABFT).
//
// A Huang–Abraham checksum of an edge is a weighted sum w^T v of the
// values v that cross it. For the *linear* modules the paper composes
// (GEMV, AXPY, SCAL, interface readers, fan-outs, zero generators), a
// weight vector on a module's output edge pulls back to weight vectors
// on its input edges, because
//
//   GEMV   y = alpha op(A) x + beta y0
//          w^T y = alpha (op(A)^T w)^T x + beta w^T y0
//   AXPY   z = alpha x + y          w^T z = alpha w^T x + w^T y
//   SCAL   y = alpha x              w^T y = alpha w^T x
//   FANOUT each copy carries the input checksum unchanged
//   READ   the edge checksum is computable from the host operand
//
// Composing pullbacks from a graph's outputs to its DRAM inputs yields a
// *predicted* checksum for every edge as a few O(nm) host passes over the
// materialized inputs only — no intermediate stream is ever stored for
// the checker. DOT is bilinear, not linear: its result is predicted by
// recomputing x^T y in double over the host operands feeding it
// (directly, or through the linear pullbacks of whatever produced them).
//
// verify::GraphChecker pairs these predictions with the channel taps
// (stream::ChannelBase) that observe the realized checksums, localizing
// a divergence to the first corrupted edge.
//
// All arithmetic is double regardless of the stream precision, so the
// rules' own rounding stays negligible next to the bound they feed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "common/view.hpp"

namespace fblas::mdag {

/// Predicted checksum of one edge: the weighted sum, the matching
/// magnitude sum (|w_i v_i|, what the error bound is relative to) and the
/// accumulation length the bound grows with.
struct EdgeChecksum {
  double pred = 0.0;
  double mag = 0.0;
  std::int64_t terms = 0;
};

/// The all-ones weight vector (plain sum checksum).
std::vector<double> ones(std::int64_t n);

// --- interface-node rules (checksums of materialized operands) ----------

/// Checksum of a vector edge under unit weights; `repeat` > 1 models a
/// replayed operand (the reader streams it that many times, so the edge
/// carries `repeat` copies).
template <typename T>
EdgeChecksum vec_checksum(VectorView<const T> v, std::int64_t repeat = 1);

/// Checksum of a vector edge under explicit weights (w.size() == v.size()
/// per pass; the weights repeat with the operand).
template <typename T>
EdgeChecksum weighted_vec_checksum(VectorView<const T> v,
                                   const std::vector<double>& w,
                                   std::int64_t repeat = 1);

/// Checksum of a matrix edge (every element, unit weights) — the A
/// operand of a GEMV, or any fan-out copy of it.
template <typename T>
EdgeChecksum mat_checksum(MatrixView<const T> a);

/// Checksum of a zero-generator edge of n elements: exactly zero.
EdgeChecksum zero_checksum(std::int64_t n);

// --- compute-node rules --------------------------------------------------

/// GEMV weight pullback: the weight w on the output edge of
/// y = op(A) x becomes op(A)^T w on the x edge. (Scaling by alpha is
/// applied by the caller via `combine`.) w.size() is op(A)'s row count;
/// the result's size is op(A)'s column count.
template <typename T>
std::vector<double> gemv_pullback(Transpose trans, MatrixView<const T> a,
                                  const std::vector<double>& w);

/// Linear combination of predicted checksums: ca*a + cb*b, with
/// magnitudes and term counts accumulated accordingly. Covers the AXPY
/// rule (z = alpha x + y -> combine(x, y, alpha, 1)) and the beta*y0 term
/// of GEMV.
EdgeChecksum combine(const EdgeChecksum& a, const EdgeChecksum& b, double ca,
                     double cb);

/// SCAL rule: y = alpha x.
EdgeChecksum scale(const EdgeChecksum& a, double alpha);

/// DOT rule (bilinear, single-phase): recomputes x^T y in double over the
/// host operands.
template <typename T>
EdgeChecksum dot_checksum(VectorView<const T> x, VectorView<const T> y);

/// GER rule (rank-1 update, bilinear like DOT): for
/// A = alpha x y^T + A0, the unit-weight output checksum is
///
///   e^T A e = alpha (e^T x)(y^T e) + e^T A0 e
///
/// so it follows from the *per-pass* (repeat == 1) checksums of the x and
/// y edges and the checksum of the streamed-in A0 — the first module-DAG
/// rule beyond the linear set (GEMV/AXPY/SCAL) and DOT. The magnitude
/// bound uses |alpha| (Σ|x|)(Σ|y|), conservative for the |Σ| the residual
/// actually sees, and the term count x.terms * y.terms matches the
/// alpha x_i y_j products accumulated into the output stream.
EdgeChecksum ger_propagate(const EdgeChecksum& a0, const EdgeChecksum& x,
                           const EdgeChecksum& y, double alpha);

/// TRSV rule (residual-style, the last composition building block): for
/// x = op(A)^{-1} b the output checksum cannot be pulled back linearly
/// without inverting A, so the rule re-solves the triangular system in
/// double over the host operands — the same few O(n^2) flops the residual
/// check of verify::trsv_check spends — and predicts e^T x directly.
/// `uplo` is the stored triangle of `a`; `trans` selects op(A). The term
/// count is n^2, covering the up-to-n(n+1)/2 MACs plus n divisions the
/// streaming module accumulates. The bound does NOT model the
/// condition-number amplification of a solve; like the TRSM/TRSV result
/// checks it is calibrated for well-conditioned (e.g. diagonally
/// dominant) systems, which exponent-scale stream corruption exceeds by
/// many orders of magnitude regardless.
template <typename T>
EdgeChecksum trsv_propagate(Uplo uplo, Transpose trans, Diag diag,
                            MatrixView<const T> a, VectorView<const T> b);

}  // namespace fblas::mdag
