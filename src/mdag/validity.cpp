#include "mdag/validity.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/error.hpp"

namespace fblas::mdag {

std::vector<EdgeIssue> validate_edges(const Mdag& g) {
  std::vector<EdgeIssue> issues;
  for (int i = 0; i < static_cast<int>(g.edges().size()); ++i) {
    const Edge& e = g.edge(i);
    if (e.produced.compatible(e.consumed)) continue;
    std::ostringstream os;
    os << "edge " << g.node(e.from).name << " -> " << g.node(e.to).name
       << ": ";
    if (e.produced.count != e.consumed.count) {
      os << "producer emits " << e.produced.count
         << " elements but consumer expects " << e.consumed.count
         << " (replaying data between computational modules is not "
            "allowed)";
    } else {
      os << "element orders differ (incompatible tiling schemes)";
    }
    issues.push_back({i, os.str()});
  }
  return issues;
}

std::int64_t count_paths(const Mdag& g, int from, int to) {
  // DP over the topological order.
  const auto order = g.topo_order();
  std::vector<std::int64_t> paths(g.nodes().size(), 0);
  paths[static_cast<std::size_t>(from)] = 1;
  for (const int u : order) {
    if (paths[static_cast<std::size_t>(u)] == 0) continue;
    for (const Edge& e : g.edges()) {
      if (e.from == u) {
        paths[static_cast<std::size_t>(e.to)] +=
            paths[static_cast<std::size_t>(u)];
      }
    }
  }
  return paths[static_cast<std::size_t>(to)];
}

bool is_multitree(const Mdag& g) {
  for (int u = 0; u < g.node_count(); ++u) {
    for (int v = 0; v < g.node_count(); ++v) {
      if (u != v && count_paths(g, u, v) > 1) return false;
    }
  }
  return true;
}

namespace {

/// Unit-capacity max-flow (Edmonds-Karp) on the vertex-split graph:
/// every node x becomes x_in -> x_out with capacity 1 (infinite for the
/// terminals), every edge u -> v becomes u_out -> v_in.
class SplitFlow {
 public:
  SplitFlow(const Mdag& g, int s, int t) {
    const int n = g.node_count();
    node_count_ = 2 * n;
    for (int x = 0; x < n; ++x) {
      const int cap = (x == s || x == t) ? kInf : 1;
      add_edge(in(x), out(x), cap);
    }
    // Each physical channel can carry one path (paths sharing an edge
    // would share its endpoints anyway).
    for (const Edge& e : g.edges()) add_edge(out(e.from), in(e.to), 1);
    s_ = out(s);
    t_ = in(t);
  }

  int max_flow() {
    int flow = 0;
    while (true) {
      // BFS for an augmenting path.
      std::vector<int> prev_edge(static_cast<std::size_t>(node_count_), -1);
      std::vector<bool> seen(static_cast<std::size_t>(node_count_), false);
      std::queue<int> q;
      q.push(s_);
      seen[static_cast<std::size_t>(s_)] = true;
      while (!q.empty() && !seen[static_cast<std::size_t>(t_)]) {
        const int u = q.front();
        q.pop();
        for (const int ei : adj_[static_cast<std::size_t>(u)]) {
          const FlowEdge& fe = edges_[static_cast<std::size_t>(ei)];
          if (fe.cap > 0 && !seen[static_cast<std::size_t>(fe.to)]) {
            seen[static_cast<std::size_t>(fe.to)] = true;
            prev_edge[static_cast<std::size_t>(fe.to)] = ei;
            q.push(fe.to);
          }
        }
      }
      if (!seen[static_cast<std::size_t>(t_)]) break;
      // Augment by 1 (all path capacities are >= 1).
      for (int v = t_; v != s_;) {
        const int ei = prev_edge[static_cast<std::size_t>(v)];
        edges_[static_cast<std::size_t>(ei)].cap -= 1;
        edges_[static_cast<std::size_t>(ei ^ 1)].cap += 1;
        v = edges_[static_cast<std::size_t>(ei ^ 1)].to;
      }
      ++flow;
      if (flow > 64) break;  // defensive cap; MDAGs are small
    }
    return flow;
  }

 private:
  static constexpr int kInf = 1 << 20;
  struct FlowEdge {
    int to;
    int cap;
  };

  int in(int x) const { return 2 * x; }
  int out(int x) const { return 2 * x + 1; }

  void add_edge(int u, int v, int cap) {
    adj_.resize(static_cast<std::size_t>(node_count_));
    adj_[static_cast<std::size_t>(u)].push_back(
        static_cast<int>(edges_.size()));
    edges_.push_back({v, cap});
    adj_[static_cast<std::size_t>(v)].push_back(
        static_cast<int>(edges_.size()));
    edges_.push_back({u, 0});
  }

  int node_count_;
  int s_, t_;
  std::vector<FlowEdge> edges_;
  std::vector<std::vector<int>> adj_;
};

}  // namespace

int vertex_disjoint_paths(const Mdag& g, int from, int to) {
  FBLAS_REQUIRE(from != to, "disjoint paths need distinct endpoints");
  SplitFlow flow(g, from, to);
  return flow.max_flow();
}

std::vector<DisjointPairIssue> disjoint_path_issues(const Mdag& g) {
  std::vector<DisjointPairIssue> issues;
  for (int u = 0; u < g.node_count(); ++u) {
    for (int v = 0; v < g.node_count(); ++v) {
      if (u == v || count_paths(g, u, v) < 2) continue;
      const int k = vertex_disjoint_paths(g, u, v);
      if (k >= 2) issues.push_back({u, v, k});
    }
  }
  return issues;
}

Validity validate(const Mdag& g) {
  Validity v;
  v.edge_issues = validate_edges(g);
  v.disjoint_issues = disjoint_path_issues(g);
  v.valid = v.edge_issues.empty() && v.disjoint_issues.empty();
  std::ostringstream os;
  if (v.valid) {
    os << "valid streaming composition ("
       << (is_multitree(g) ? "multitree" : "single-path DAG") << ")";
  } else {
    for (const auto& ei : v.edge_issues) os << ei.reason << "\n";
    for (const auto& di : v.disjoint_issues) {
      os << g.node(di.from).name << " and " << g.node(di.to).name
         << " are connected by " << di.paths
         << " vertex-disjoint paths: the composition stalls forever unless "
            "a channel buffers the full lag (size >= input size), or the "
            "MDAG is split into sequential components\n";
    }
  }
  v.summary = os.str();
  return v;
}

}  // namespace fblas::mdag
