#include "mdag/io_volume.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace fblas::mdag {

std::int64_t total_io_ops(const Mdag& g) {
  std::int64_t io = 0;
  for (int n = 0; n < g.node_count(); ++n) {
    if (g.node(n).type != NodeType::Interface) continue;
    // A reader interface fetches its data from DRAM once and may
    // broadcast it to several consumers on chip (the shared-A interface
    // of BICG): its DRAM traffic is the largest outgoing stream, not the
    // sum. A writer stores everything it receives.
    std::int64_t reads = 0, writes = 0;
    for (const Edge& e : g.edges()) {
      if (e.from == n) reads = std::max(reads, e.produced.count);
      if (e.to == n) writes += e.consumed.count;
    }
    io += reads + writes;
  }
  return io;
}

double critical_path_latency(const Mdag& g) {
  const auto order = g.topo_order();
  std::vector<double> dist(g.nodes().size(), 0);
  double best = 0;
  for (const int u : order) {
    dist[static_cast<std::size_t>(u)] += g.node(u).latency;
    best = std::max(best, dist[static_cast<std::size_t>(u)]);
    for (const Edge& e : g.edges()) {
      if (e.from == u) {
        dist[static_cast<std::size_t>(e.to)] =
            std::max(dist[static_cast<std::size_t>(e.to)],
                     dist[static_cast<std::size_t>(u)]);
      }
    }
  }
  return best;
}

double streaming_cycles(const Mdag& g, int width) {
  FBLAS_REQUIRE(width >= 1, "width must be positive");
  std::int64_t max_volume = 0;
  for (const Edge& e : g.edges()) {
    max_volume = std::max(max_volume, e.produced.count);
  }
  return critical_path_latency(g) +
         static_cast<double>(max_volume) / width;
}

double sequential_cycles(const Mdag& g, int width) {
  FBLAS_REQUIRE(width >= 1, "width must be positive");
  double total = 0;
  for (int u = 0; u < g.node_count(); ++u) {
    if (g.node(u).type != NodeType::Compute) continue;
    std::int64_t volume = 0;
    for (const Edge& e : g.edges()) {
      if (e.to == u) volume = std::max(volume, e.consumed.count);
    }
    total += g.node(u).latency + static_cast<double>(volume) / width;
  }
  return total;
}

}  // namespace fblas::mdag
