#include "mdag/checksum.hpp"

#include <cmath>

namespace fblas::mdag {

std::vector<double> ones(std::int64_t n) {
  return std::vector<double>(static_cast<std::size_t>(n), 1.0);
}

template <typename T>
EdgeChecksum vec_checksum(VectorView<const T> v, std::int64_t repeat) {
  EdgeChecksum c;
  const std::int64_t n = v.size();
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(v[i]);
    c.pred += d;
    c.mag += std::abs(d);
  }
  c.pred *= static_cast<double>(repeat);
  c.mag *= static_cast<double>(repeat);
  c.terms = n * repeat;
  return c;
}

template <typename T>
EdgeChecksum weighted_vec_checksum(VectorView<const T> v,
                                   const std::vector<double>& w,
                                   std::int64_t repeat) {
  EdgeChecksum c;
  const std::int64_t n = v.size();
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = w[static_cast<std::size_t>(i)] * static_cast<double>(v[i]);
    c.pred += d;
    c.mag += std::abs(d);
  }
  c.pred *= static_cast<double>(repeat);
  c.mag *= static_cast<double>(repeat);
  c.terms = n * repeat;
  return c;
}

template <typename T>
EdgeChecksum mat_checksum(MatrixView<const T> a) {
  EdgeChecksum c;
  const std::int64_t n = a.rows(), m = a.cols();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < m; ++j) {
      const double d = static_cast<double>(a(i, j));
      c.pred += d;
      c.mag += std::abs(d);
    }
  }
  c.terms = n * m;
  return c;
}

EdgeChecksum zero_checksum(std::int64_t n) { return {0.0, 0.0, n}; }

template <typename T>
std::vector<double> gemv_pullback(Transpose trans, MatrixView<const T> a,
                                  const std::vector<double>& w) {
  const std::int64_t n = a.rows(), m = a.cols();
  // op(A) is (n x m) for None and (m x n) for Trans; the pullback is
  // op(A)^T w, i.e. A^T w for None and A w for Trans.
  if (trans == Transpose::None) {
    std::vector<double> out(static_cast<std::size_t>(m), 0.0);
    for (std::int64_t i = 0; i < n; ++i) {
      const double wi = w[static_cast<std::size_t>(i)];
      for (std::int64_t j = 0; j < m; ++j) {
        out[static_cast<std::size_t>(j)] += static_cast<double>(a(i, j)) * wi;
      }
    }
    return out;
  }
  std::vector<double> out(static_cast<std::size_t>(n), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < m; ++j) {
      acc += static_cast<double>(a(i, j)) * w[static_cast<std::size_t>(j)];
    }
    out[static_cast<std::size_t>(i)] = acc;
  }
  return out;
}

EdgeChecksum combine(const EdgeChecksum& a, const EdgeChecksum& b, double ca,
                     double cb) {
  EdgeChecksum c;
  c.pred = ca * a.pred + cb * b.pred;
  c.mag = std::abs(ca) * a.mag + std::abs(cb) * b.mag;
  c.terms = a.terms + b.terms;
  return c;
}

EdgeChecksum scale(const EdgeChecksum& a, double alpha) {
  return {alpha * a.pred, std::abs(alpha) * a.mag, a.terms};
}

template <typename T>
EdgeChecksum dot_checksum(VectorView<const T> x, VectorView<const T> y) {
  EdgeChecksum c;
  const std::int64_t n = x.size();
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(x[i]) * static_cast<double>(y[i]);
    c.pred += d;
    c.mag += std::abs(d);
  }
  c.terms = n;
  return c;
}

EdgeChecksum ger_propagate(const EdgeChecksum& a0, const EdgeChecksum& x,
                           const EdgeChecksum& y, double alpha) {
  EdgeChecksum c;
  c.pred = a0.pred + alpha * x.pred * y.pred;
  c.mag = a0.mag + std::abs(alpha) * x.mag * y.mag;
  c.terms = a0.terms + x.terms * y.terms;
  return c;
}

template <typename T>
EdgeChecksum trsv_propagate(Uplo uplo, Transpose trans, Diag diag,
                            MatrixView<const T> a, VectorView<const T> b) {
  const std::int64_t n = b.size();
  const auto op = [&](std::int64_t i, std::int64_t j) {
    return static_cast<double>(trans == Transpose::None ? a(i, j) : a(j, i));
  };
  // The triangle op(A) actually occupies: transposition flips it.
  const Uplo op_uplo =
      trans == Transpose::None
          ? uplo
          : (uplo == Uplo::Lower ? Uplo::Upper : Uplo::Lower);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  for (std::int64_t k = 0; k < n; ++k) {
    const std::int64_t i = op_uplo == Uplo::Lower ? k : n - 1 - k;
    const std::int64_t j0 = op_uplo == Uplo::Lower ? 0 : i + 1;
    const std::int64_t j1 = op_uplo == Uplo::Lower ? i : n;
    double acc = static_cast<double>(b[i]);
    for (std::int64_t j = j0; j < j1; ++j) {
      acc -= op(i, j) * x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] =
        diag == Diag::Unit ? acc : acc / op(i, i);
  }
  EdgeChecksum c;
  for (double v : x) {
    c.pred += v;
    c.mag += std::abs(v);
  }
  c.terms = n * n;
  return c;
}

#define FBLAS_MDAG_CHECKSUM_INSTANTIATE(T)                                    \
  template EdgeChecksum vec_checksum<T>(VectorView<const T>, std::int64_t);   \
  template EdgeChecksum weighted_vec_checksum<T>(                             \
      VectorView<const T>, const std::vector<double>&, std::int64_t);         \
  template EdgeChecksum mat_checksum<T>(MatrixView<const T>);                 \
  template std::vector<double> gemv_pullback<T>(                              \
      Transpose, MatrixView<const T>, const std::vector<double>&);            \
  template EdgeChecksum dot_checksum<T>(VectorView<const T>,                  \
                                        VectorView<const T>);                 \
  template EdgeChecksum trsv_propagate<T>(Uplo, Transpose, Diag,              \
                                          MatrixView<const T>,                \
                                          VectorView<const T>);

FBLAS_MDAG_CHECKSUM_INSTANTIATE(float)
FBLAS_MDAG_CHECKSUM_INSTANTIATE(double)
#undef FBLAS_MDAG_CHECKSUM_INSTANTIATE

}  // namespace fblas::mdag
