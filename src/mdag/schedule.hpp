// Sequential multitree scheduling (Sec. V-C): when a composition is not a
// valid multitree, it can be split into components executed one after the
// other, with cut edges round-tripping through DRAM — the GEMVER
// two-component schedule of Fig. 9.
#pragma once

#include <cstdint>
#include <vector>

#include "mdag/graph.hpp"

namespace fblas::mdag {

/// One sequential component: a subset of the composition's nodes that
/// stream among themselves.
struct Component {
  std::vector<int> nodes;
};

struct PartitionCost {
  std::int64_t io_ops = 0;  ///< DRAM ops incl. cut-edge round trips
  double cycles = 0;        ///< sum of per-component streaming times
  int components = 0;
};

/// Checks that `parts` is a partition of the graph's nodes (every node in
/// exactly one component) and that no edge goes from a later component to
/// an earlier one (components run in order).
void check_partition(const Mdag& g, const std::vector<Component>& parts);

/// Cost of executing the composition as the given sequence of streaming
/// components: intra-component interface edges count once; every cut edge
/// is written to DRAM by the producer component and read back by the
/// consumer component.
PartitionCost partition_cost(const Mdag& g,
                             const std::vector<Component>& parts, int width);

/// Builds the subgraph of one component with cut edges replaced by
/// interface modules (useful for per-component validity checks).
Mdag component_subgraph(const Mdag& g, const Component& part);

}  // namespace fblas::mdag
