// Low-overhead tracing and metrics for the host runtime.
//
// The runtime emits one fixed-size Event per interesting moment of a
// command's life — enqueue, deps-ready, placed(device), attempt N,
// verify, retry/backoff, migrate, breaker transition, complete — plus
// engine-side summaries (channel high-water and stall counts, graph
// cycles, per-PE utilization of the systolic grid) and counter samples
// (the adaptive verification rate). Two clocks stamp each span: host
// wall time (steady_clock nanoseconds since the Recorder's epoch) and,
// where it applies, simulated device cycles — see DESIGN.md for the
// two-clock span model.
//
// Storage is a lock-sharded bounded ring: each shard owns a mutex, a
// fixed ring (oldest events are overwritten once full; the `dropped`
// counter says how many) and an exact counter/histogram block that never
// drops. Emission is one shard-mutex lock plus a struct copy, so the
// armed cost stays far below the cost of the spans being measured
// (bench/trace_overhead holds it under 1% of makespan); disarmed, every
// instrumentation site is a single thread-local or pointer test.
//
// Layering: this library depends only on fblas_common. Engine code
// (stream::Scheduler, systolic::SystolicArray) never links it — the
// host runtime reads engine counters after each graph run and emits the
// summaries itself, through the thread-local sink the executor installs
// around each command body (trace::ThreadScope).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fblas::trace {

enum class EventKind : std::uint8_t {
  Enqueue,      ///< command registered (name = routine label, flags = barrier)
  DepsReady,    ///< last dependency resolved (a = unblocking dep seq)
  Placed,       ///< pool placed an attempt (device, attempt)
  Attempt,      ///< one body run (wall_ns = start, a = wall dur ns,
                ///< b = simulated cycles, flags = AttemptOutcome)
  Retry,        ///< transient failure, re-running (a = backoff delay us)
  Verify,       ///< result check ran (a = wall dur ns, flags = 1 if rejected)
  Fallback,     ///< CPU reference path served the result (Degraded)
  Complete,     ///< terminal state (flags = CommandState, a = start_cycles,
                ///< b = finish_cycles on the simulated clock)
  Migrate,      ///< buffer re-staged (device = to, flags = from, a = bytes)
  BreakerTransition,  ///< breaker moved (a = old BreakerState, flags = new)
  Probe,        ///< Half-Open synthetic probe (flags = 1 if it failed)
  RateSample,   ///< adaptive verification rate (a = bit pattern of double)
  ChannelStats, ///< per-run channel summary (name, a = peak occupancy,
                ///< b = stall events, flags = capacity, clamped to 16 bits)
  GraphStats,   ///< per-run graph summary (a = cycles, b = module-cycles
                ///< spent blocked on channels)
  PeStats,      ///< one systolic PE (attempt = row, flags = col, a = MACs,
                ///< b = faults localized to it)
};
inline constexpr std::size_t kKindCount = 15;
const char* to_string(EventKind kind);

/// Attempt outcome codes carried in Event::flags for EventKind::Attempt.
enum : std::uint16_t {
  kAttemptOk = 0,
  kAttemptError = 1,        ///< the body (or device) threw
  kAttemptVerifyReject = 2  ///< device-Ok but the checker rejected
};

/// One trace record. Fixed 64-byte POD so a ring slot never allocates;
/// the per-kind meaning of `a`, `b` and `flags` is documented on
/// EventKind. `device` is a pool index (-1 = none / host), `worker` is
/// 0 for the calling thread and 1..N for pool workers.
struct Event {
  EventKind kind = EventKind::Enqueue;
  std::uint8_t attempt = 0;
  std::int16_t device = -1;
  std::uint16_t worker = 0;
  std::uint16_t flags = 0;
  std::uint64_t seq = 0;      ///< command sequence number (0 = none)
  std::uint64_t wall_ns = 0;  ///< steady-clock ns since the Recorder epoch
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  char name[24] = {};  ///< label / channel name, truncated, NUL-padded

  void set_name(std::string_view s) {
    const std::size_t n = s.size() < sizeof(name) - 1 ? s.size()
                                                      : sizeof(name) - 1;
    std::memcpy(name, s.data(), n);
    name[n] = '\0';
  }
  std::string_view name_view() const {
    return std::string_view(name, std::strlen(name));
  }
};
static_assert(sizeof(Event) == 64, "Event must stay one cache line");

/// Tracing knobs, fixed at arming time (Context::tracing).
struct Options {
  /// Total ring capacity in events, split across the shards. Once a
  /// shard's slice is full its oldest events are overwritten (counters
  /// stay exact); MetricsSnapshot::dropped reports the overwrites.
  std::size_t ring_capacity = 1u << 16;
  /// Lock shards. Emitting threads spread across shards round-robin, so
  /// more shards mean less contention under many workers. Clamped to
  /// [1, 64].
  std::size_t shards = 8;
  /// Emit engine-side summaries (ChannelStats / GraphStats / PeStats)
  /// after each graph run. These are the bulkiest event class on
  /// composition-heavy workloads; turn off to keep only lifecycle spans.
  bool engine_events = true;
  /// Emit RateSample counter events as the adaptive verification
  /// controller moves the live rate.
  bool counter_samples = true;
};

/// Log2-bucketed histogram: bucket i counts values v with
/// bit_width(v) == i, i.e. bucket 0 holds v == 0 and bucket i >= 1
/// holds v in [2^(i-1), 2^i).
struct Histogram {
  std::array<std::uint64_t, 65> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  void add(std::uint64_t v);
  Histogram& operator+=(const Histogram& o);
};

/// Per-device slice of the aggregate counters (indexed by pool device).
struct DeviceMetrics {
  int device = -1;
  std::uint64_t placed = 0;           ///< attempts placed on this device
  std::uint64_t verify_checks = 0;
  std::uint64_t verify_rejects = 0;
  std::uint64_t migrations_in = 0;
  std::uint64_t migrated_bytes_in = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_readmissions = 0;
  std::uint64_t probes = 0;
};

/// Exact counters/histograms aggregated across shards. Unlike the event
/// ring these never drop, so they reconcile against ExecStats even when
/// the ring wrapped.
struct MetricsSnapshot {
  std::uint64_t recorded = 0;  ///< events emitted (ring + overwritten)
  std::uint64_t dropped = 0;   ///< ring overwrites (counters stay exact)
  std::array<std::uint64_t, kKindCount> by_kind{};

  // Command lifecycle (mirror the ExecStats fields they reconcile with).
  std::uint64_t enqueued = 0;
  std::uint64_t completes = 0;   ///< == ExecStats::executed
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;    ///< == ExecStats::degraded
  std::uint64_t failed = 0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;     ///< == ExecStats::retries
  std::uint64_t verify_checks = 0;   ///< == ExecStats::verified
  std::uint64_t verify_rejects = 0;  ///< == ExecStats::verify_failures
  std::uint64_t fallbacks = 0;
  std::uint64_t migrations = 0;      ///< == ExecStats::migrations
  std::uint64_t migrated_bytes = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_readmissions = 0;
  std::uint64_t probes = 0;

  Histogram attempt_wall_ns;   ///< wall duration of each attempt
  Histogram command_cycles;    ///< simulated cycles per completed command

  std::vector<DeviceMetrics> per_device;

  std::uint64_t kind(EventKind k) const {
    return by_kind[static_cast<std::size_t>(k)];
  }
};

/// The lock-sharded bounded event recorder. Thread-safe; one per
/// Context (shared_ptr so in-flight commands outlive a re-arm).
class Recorder {
 public:
  explicit Recorder(const Options& opts = {});

  const Options& options() const { return opts_; }

  /// Nanoseconds since this recorder's epoch (construction time).
  std::uint64_t now_ns() const;

  /// Records one event. Stamps `wall_ns` with now_ns() when the caller
  /// left it zero (span starts pre-stamp it to their start time).
  void emit(Event e);

  /// Exact counter/histogram view (never affected by ring overwrites).
  MetricsSnapshot metrics() const;

  /// Merged copy of the ring, ordered by wall_ns. Oldest events may be
  /// missing once a shard wrapped — check metrics().dropped.
  std::vector<Event> events() const;

 private:
  struct Counters {
    std::uint64_t recorded = 0;
    std::array<std::uint64_t, kKindCount> by_kind{};
    MetricsSnapshot agg;  // reuses the snapshot fields as accumulators
    void apply(const Event& e);
  };
  struct Shard {
    mutable std::mutex mu;
    std::vector<Event> ring;
    std::size_t next = 0;      // ring write cursor
    std::uint64_t total = 0;   // events ever written to this shard
    Counters counters;
  };

  Options opts_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// --- thread-local sink --------------------------------------------------
// The executor installs the recorder on the worker thread for the span
// of one command (ThreadScope), so deep call sites — pool placement,
// breaker transitions, migrations, graph summaries — can emit without
// plumbing a recorder pointer through every layer. sink() is null
// whenever tracing is off: instrumentation sites test it and bail.

/// The recorder armed on this thread, or nullptr.
Recorder* sink();

/// Emits through the thread-local sink; no-op when tracing is off.
void emit(const Event& e);

/// RAII installer for the thread-local sink (nests: restores the
/// previous sink on destruction).
class ThreadScope {
 public:
  explicit ThreadScope(Recorder* rec);
  ~ThreadScope();
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  Recorder* prev_;
};

/// Pool device of the attempt running on this thread (-1 = none).
/// Set by the placement path, read when stamping Attempt / Verify /
/// Complete events — kept here (not in host code) so the executor and
/// the context agree on one slot without a layering cycle.
void set_attempt_device(int device);
int attempt_device();

}  // namespace fblas::trace
