#include "trace/chrome.hpp"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace fblas::trace {
namespace {

void escape_into(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

/// One trace-event JSON object, appended comma-separated. Keeps the
/// builder honest about commas and escaping without a DOM round-trip.
class EntryWriter {
 public:
  explicit EntryWriter(std::ostream& os) : os_(os) {}

  EntryWriter& begin() {
    if (!first_) os_ << ",\n";
    first_ = false;
    os_ << "{";
    field_first_ = true;
    return *this;
  }
  EntryWriter& str(const char* key, std::string_view v) {
    sep();
    os_ << '"' << key << "\":\"";
    escape_into(os_, v);
    os_ << '"';
    return *this;
  }
  EntryWriter& num(const char* key, std::uint64_t v) {
    sep();
    os_ << '"' << key << "\":" << v;
    return *this;
  }
  EntryWriter& inum(const char* key, std::int64_t v) {
    sep();
    os_ << '"' << key << "\":" << v;
    return *this;
  }
  EntryWriter& us(const char* key, std::uint64_t ns) {
    sep();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                  static_cast<unsigned>(ns % 1000));
    os_ << '"' << key << "\":" << buf;
    return *this;
  }
  EntryWriter& real(const char* key, double v) {
    sep();
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os_ << '"' << key << "\":" << buf;
    return *this;
  }
  EntryWriter& raw(const char* key, const std::string& json) {
    sep();
    os_ << '"' << key << "\":" << json;
    return *this;
  }
  void end() { os_ << "}"; }

 private:
  void sep() {
    if (!field_first_) os_ << ",";
    field_first_ = false;
  }
  std::ostream& os_;
  bool first_ = true;
  bool field_first_ = true;
};

std::string args_json(
    std::initializer_list<std::pair<const char*, std::string>> kv) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [k, v] : kv) {
    if (!first) os << ",";
    first = false;
    os << '"' << k << "\":" << v;
  }
  os << "}";
  return os.str();
}

std::string qstr(std::string_view s) {
  std::ostringstream os;
  os << '"';
  escape_into(os, s);
  os << '"';
  return os.str();
}

const char* state_name(std::uint16_t command_state) {
  switch (command_state) {
    case 2: return "ok";
    case 3: return "failed";
    case 4: return "degraded";
    default: return "?";
  }
}

constexpr int kHostPid = 1;
constexpr int kDeviceWallPid = 2;
constexpr int kDeviceCyclePid = 3;

}  // namespace

std::string chrome_json(const Recorder& rec) {
  const std::vector<Event> events = rec.events();

  // seq -> routine label (from the Enqueue event, which may have been
  // overwritten in a wrapped ring — fall back to "cmd <seq>").
  std::map<std::uint64_t, std::string> labels;
  std::set<std::uint16_t> workers;
  std::set<int> devices;
  for (const Event& e : events) {
    if (e.kind == EventKind::Enqueue) {
      std::string label(e.name_view());
      if (label.empty()) label = "cmd";
      labels[e.seq] = std::move(label);
    }
    workers.insert(e.worker);
    if (e.device >= 0) devices.insert(e.device);
  }
  auto label_of = [&labels](std::uint64_t seq) -> std::string {
    auto it = labels.find(seq);
    if (it != labels.end()) return it->second;
    return "cmd " + std::to_string(seq);
  };

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  EntryWriter w(os);

  // Metadata rows: name the processes (the three tracks of the two-clock
  // model) and every worker/device thread that appears.
  struct Meta {
    int pid;
    const char* name;
  };
  for (const Meta m : {Meta{kHostPid, "host runtime"},
                       Meta{kDeviceWallPid, "devices (wall clock)"},
                       Meta{kDeviceCyclePid, "devices (simulated cycles)"}}) {
    w.begin()
        .str("ph", "M")
        .str("name", "process_name")
        .num("pid", static_cast<std::uint64_t>(m.pid))
        .num("tid", 0)
        .raw("args", args_json({{"name", qstr(m.name)}}));
    w.end();
    w.begin()
        .str("ph", "M")
        .str("name", "process_sort_index")
        .num("pid", static_cast<std::uint64_t>(m.pid))
        .num("tid", 0)
        .raw("args", args_json({{"sort_index", std::to_string(m.pid)}}));
    w.end();
  }
  for (const std::uint16_t worker : workers) {
    const std::string name =
        worker == 0 ? std::string("caller") : "worker " + std::to_string(worker);
    w.begin()
        .str("ph", "M")
        .str("name", "thread_name")
        .num("pid", kHostPid)
        .num("tid", worker)
        .raw("args", args_json({{"name", qstr(name)}}));
    w.end();
  }
  for (const int dev : devices) {
    const std::string name = "device " + std::to_string(dev);
    for (const int pid : {kDeviceWallPid, kDeviceCyclePid}) {
      w.begin()
          .str("ph", "M")
          .str("name", "thread_name")
          .num("pid", static_cast<std::uint64_t>(pid))
          .num("tid", static_cast<std::uint64_t>(dev))
          .raw("args", args_json({{"name", qstr(name)}}));
      w.end();
    }
  }

  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::Enqueue:
        w.begin()
            .str("ph", "b")
            .str("cat", "command")
            .num("id", e.seq)
            .str("name", label_of(e.seq))
            .num("pid", kHostPid)
            .num("tid", e.worker)
            .us("ts", e.wall_ns)
            .raw("args", args_json({{"seq", std::to_string(e.seq)},
                                    {"barrier", e.flags ? "true" : "false"}}));
        w.end();
        break;
      case EventKind::DepsReady:
        w.begin()
            .str("ph", "i")
            .str("s", "t")
            .str("name", "deps-ready")
            .num("pid", kHostPid)
            .num("tid", e.worker)
            .us("ts", e.wall_ns)
            .raw("args", args_json({{"seq", std::to_string(e.seq)}}));
        w.end();
        break;
      case EventKind::Placed:
        if (e.device >= 0) {
          w.begin()
              .str("ph", "i")
              .str("s", "t")
              .str("name", "place " + label_of(e.seq))
              .num("pid", kDeviceWallPid)
              .num("tid", static_cast<std::uint64_t>(e.device))
              .us("ts", e.wall_ns)
              .raw("args",
                   args_json({{"seq", std::to_string(e.seq)},
                              {"attempt", std::to_string(e.attempt)}}));
          w.end();
        }
        break;
      case EventKind::Attempt: {
        const std::string args = args_json(
            {{"seq", std::to_string(e.seq)},
             {"attempt", std::to_string(e.attempt)},
             {"device", std::to_string(e.device)},
             {"cycles", std::to_string(e.b)},
             {"outcome", qstr(e.flags == kAttemptOk ? "ok"
                              : e.flags == kAttemptVerifyReject
                                  ? "verify-reject"
                                  : "error")}});
        w.begin()
            .str("ph", "X")
            .str("name", label_of(e.seq))
            .num("pid", kHostPid)
            .num("tid", e.worker)
            .us("ts", e.wall_ns)
            .us("dur", e.a)
            .raw("args", args);
        w.end();
        if (e.device >= 0) {
          w.begin()
              .str("ph", "X")
              .str("name", label_of(e.seq))
              .num("pid", kDeviceWallPid)
              .num("tid", static_cast<std::uint64_t>(e.device))
              .us("ts", e.wall_ns)
              .us("dur", e.a)
              .raw("args", args);
          w.end();
        }
        break;
      }
      case EventKind::Retry:
        w.begin()
            .str("ph", "i")
            .str("s", "t")
            .str("name", "retry " + label_of(e.seq))
            .num("pid", kHostPid)
            .num("tid", e.worker)
            .us("ts", e.wall_ns)
            .raw("args",
                 args_json({{"seq", std::to_string(e.seq)},
                            {"attempt", std::to_string(e.attempt)},
                            {"backoff_us", std::to_string(e.a)}}));
        w.end();
        break;
      case EventKind::Verify:
        w.begin()
            .str("ph", "X")
            .str("name", "verify " + label_of(e.seq))
            .num("pid", kHostPid)
            .num("tid", e.worker)
            .us("ts", e.wall_ns)
            .us("dur", e.a)
            .raw("args",
                 args_json({{"seq", std::to_string(e.seq)},
                            {"device", std::to_string(e.device)},
                            {"rejected", e.flags ? "true" : "false"}}));
        w.end();
        break;
      case EventKind::Fallback:
        w.begin()
            .str("ph", "i")
            .str("s", "t")
            .str("name", "cpu-fallback " + label_of(e.seq))
            .num("pid", kHostPid)
            .num("tid", e.worker)
            .us("ts", e.wall_ns)
            .raw("args", args_json({{"seq", std::to_string(e.seq)}}));
        w.end();
        break;
      case EventKind::Complete: {
        w.begin()
            .str("ph", "e")
            .str("cat", "command")
            .num("id", e.seq)
            .str("name", label_of(e.seq))
            .num("pid", kHostPid)
            .num("tid", e.worker)
            .us("ts", e.wall_ns)
            .raw("args",
                 args_json({{"state", qstr(state_name(e.flags))},
                            {"start_cycles", std::to_string(e.a)},
                            {"finish_cycles", std::to_string(e.b)}}));
        w.end();
        // The simulated-cycle row: the same command plotted on the
        // makespan axis (1 µs per cycle), on the device that ran it.
        if (e.device >= 0 && e.b > e.a) {
          w.begin()
              .str("ph", "X")
              .str("name", label_of(e.seq))
              .num("pid", kDeviceCyclePid)
              .num("tid", static_cast<std::uint64_t>(e.device))
              .num("ts", e.a)
              .num("dur", e.b - e.a)
              .raw("args",
                   args_json({{"seq", std::to_string(e.seq)},
                              {"state", qstr(state_name(e.flags))}}));
          w.end();
        }
        break;
      }
      case EventKind::Migrate:
        if (e.device >= 0) {
          w.begin()
              .str("ph", "i")
              .str("s", "t")
              .str("name", "migrate")
              .num("pid", kDeviceWallPid)
              .num("tid", static_cast<std::uint64_t>(e.device))
              .us("ts", e.wall_ns)
              .raw("args", args_json({{"from", std::to_string(e.flags)},
                                      {"bytes", std::to_string(e.a)}}));
          w.end();
        }
        break;
      case EventKind::BreakerTransition:
        if (e.device >= 0) {
          w.begin()
              .str("ph", "C")
              .str("name", "breaker[" + std::to_string(e.device) + "]")
              .num("pid", kDeviceWallPid)
              .num("tid", static_cast<std::uint64_t>(e.device))
              .us("ts", e.wall_ns)
              .raw("args",
                   args_json({{"state", std::to_string(e.flags)}}));
          w.end();
        }
        break;
      case EventKind::Probe:
        if (e.device >= 0) {
          w.begin()
              .str("ph", "i")
              .str("s", "t")
              .str("name", e.flags ? "probe (failed)" : "probe (ok)")
              .num("pid", kDeviceWallPid)
              .num("tid", static_cast<std::uint64_t>(e.device))
              .us("ts", e.wall_ns)
              .raw("args", args_json({{"seq", std::to_string(e.seq)}}));
          w.end();
        }
        break;
      case EventKind::RateSample:
        w.begin()
            .str("ph", "C")
            .str("name", "adaptive_sample_rate")
            .num("pid", kHostPid)
            .num("tid", 0)
            .us("ts", e.wall_ns)
            .raw("args", [&] {
              std::ostringstream a;
              char buf[48];
              std::snprintf(buf, sizeof(buf), "%.9g",
                            std::bit_cast<double>(e.a));
              a << "{\"rate\":" << buf << "}";
              return a.str();
            }());
        w.end();
        break;
      case EventKind::ChannelStats:
        w.begin()
            .str("ph", "i")
            .str("s", "t")
            .str("name", "chan " + std::string(e.name_view()))
            .num("pid", kHostPid)
            .num("tid", e.worker)
            .us("ts", e.wall_ns)
            .raw("args",
                 args_json({{"peak", std::to_string(e.a)},
                            {"stalls", std::to_string(e.b)},
                            {"capacity", std::to_string(e.flags)}}));
        w.end();
        break;
      case EventKind::GraphStats:
        w.begin()
            .str("ph", "i")
            .str("s", "t")
            .str("name", "graph-run")
            .num("pid", kHostPid)
            .num("tid", e.worker)
            .us("ts", e.wall_ns)
            .raw("args",
                 args_json({{"cycles", std::to_string(e.a)},
                            {"stall_module_cycles", std::to_string(e.b)}}));
        w.end();
        break;
      case EventKind::PeStats:
        w.begin()
            .str("ph", "i")
            .str("s", "t")
            .str("name", "pe(" + std::to_string(e.attempt) + "," +
                             std::to_string(e.flags) + ")")
            .num("pid", kHostPid)
            .num("tid", e.worker)
            .us("ts", e.wall_ns)
            .raw("args", args_json({{"macs", std::to_string(e.a)},
                                    {"faults", std::to_string(e.b)}}));
        w.end();
        break;
    }
  }

  const MetricsSnapshot m = rec.metrics();
  os << "\n],\"otherData\":{\"recorded\":" << m.recorded
     << ",\"dropped\":" << m.dropped << "}}\n";
  return os.str();
}

void export_chrome(const Recorder& rec, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("trace::export_chrome: cannot open '" + path + "'");
  out << chrome_json(rec);
  out.flush();
  if (!out) throw Error("trace::export_chrome: write to '" + path +
                        "' failed");
}

}  // namespace fblas::trace
