#include "trace/trace.hpp"

#include <algorithm>
#include <bit>

namespace fblas::trace {
namespace {

thread_local Recorder* tl_sink = nullptr;
thread_local int tl_attempt_device = -1;
// Round-robin shard token: consecutive emissions from one thread rotate
// across shards, so a burst never serializes on a single mutex even
// when only one thread is emitting.
thread_local std::uint64_t tl_shard_token = 0;

// Breaker state codes, mirroring host::BreakerState's declaration order
// (this library cannot include host headers).
constexpr std::uint64_t kBreakerClosed = 0;
constexpr std::uint64_t kBreakerOpen = 1;
constexpr std::uint64_t kBreakerHalfOpen = 2;

}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::Enqueue: return "enqueue";
    case EventKind::DepsReady: return "deps_ready";
    case EventKind::Placed: return "placed";
    case EventKind::Attempt: return "attempt";
    case EventKind::Retry: return "retry";
    case EventKind::Verify: return "verify";
    case EventKind::Fallback: return "fallback";
    case EventKind::Complete: return "complete";
    case EventKind::Migrate: return "migrate";
    case EventKind::BreakerTransition: return "breaker";
    case EventKind::Probe: return "probe";
    case EventKind::RateSample: return "rate_sample";
    case EventKind::ChannelStats: return "channel_stats";
    case EventKind::GraphStats: return "graph_stats";
    case EventKind::PeStats: return "pe_stats";
  }
  return "?";
}

void Histogram::add(std::uint64_t v) {
  ++buckets[static_cast<std::size_t>(std::bit_width(v))];
  ++count;
  sum += v;
  max = std::max(max, v);
}

Histogram& Histogram::operator+=(const Histogram& o) {
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += o.buckets[i];
  count += o.count;
  sum += o.sum;
  max = std::max(max, o.max);
  return *this;
}

void Recorder::Counters::apply(const Event& e) {
  ++recorded;
  ++by_kind[static_cast<std::size_t>(e.kind)];
  auto& m = agg;
  auto dev = [&m](int d) -> DeviceMetrics& {
    const std::size_t i = static_cast<std::size_t>(d);
    if (m.per_device.size() <= i) m.per_device.resize(i + 1);
    m.per_device[i].device = d;
    return m.per_device[i];
  };
  switch (e.kind) {
    case EventKind::Enqueue:
      ++m.enqueued;
      break;
    case EventKind::DepsReady:
      break;
    case EventKind::Placed:
      if (e.device >= 0) ++dev(e.device).placed;
      break;
    case EventKind::Attempt:
      ++m.attempts;
      m.attempt_wall_ns.add(e.a);
      break;
    case EventKind::Retry:
      ++m.retries;
      break;
    case EventKind::Verify:
      ++m.verify_checks;
      if (e.flags != 0) ++m.verify_rejects;
      if (e.device >= 0) {
        DeviceMetrics& d = dev(e.device);
        ++d.verify_checks;
        if (e.flags != 0) ++d.verify_rejects;
      }
      break;
    case EventKind::Fallback:
      ++m.fallbacks;
      break;
    case EventKind::Complete: {
      ++m.completes;
      // flags carries host::CommandState: 2 = Ok, 3 = Failed,
      // 4 = Degraded (Pending/Running never complete).
      if (e.flags == 2) ++m.ok;
      if (e.flags == 3) ++m.failed;
      if (e.flags == 4) ++m.degraded;
      m.command_cycles.add(e.b - e.a);
      break;
    }
    case EventKind::Migrate:
      ++m.migrations;
      m.migrated_bytes += e.a;
      if (e.device >= 0) {
        DeviceMetrics& d = dev(e.device);
        ++d.migrations_in;
        d.migrated_bytes_in += e.a;
      }
      break;
    case EventKind::BreakerTransition:
      if (e.flags == kBreakerOpen) {
        ++m.breaker_opens;
        if (e.device >= 0) ++dev(e.device).breaker_opens;
      }
      if (e.a == kBreakerHalfOpen && e.flags == kBreakerClosed) {
        ++m.breaker_readmissions;
        if (e.device >= 0) ++dev(e.device).breaker_readmissions;
      }
      break;
    case EventKind::Probe:
      ++m.probes;
      if (e.device >= 0) ++dev(e.device).probes;
      break;
    case EventKind::RateSample:
    case EventKind::ChannelStats:
    case EventKind::GraphStats:
    case EventKind::PeStats:
      break;
  }
}

Recorder::Recorder(const Options& opts)
    : opts_(opts), epoch_(std::chrono::steady_clock::now()) {
  opts_.shards = std::clamp<std::size_t>(opts_.shards, 1, 64);
  const std::size_t per_shard =
      std::max<std::size_t>(64, opts_.ring_capacity / opts_.shards);
  shards_.reserve(opts_.shards);
  for (std::size_t i = 0; i < opts_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->ring.resize(per_shard);
    shards_.push_back(std::move(shard));
  }
}

std::uint64_t Recorder::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Recorder::emit(Event e) {
  if (e.wall_ns == 0) e.wall_ns = now_ns();
  Shard& shard = *shards_[tl_shard_token++ % shards_.size()];
  std::lock_guard<std::mutex> lk(shard.mu);
  shard.ring[shard.next] = e;
  shard.next = (shard.next + 1) % shard.ring.size();
  ++shard.total;
  shard.counters.apply(e);
}

MetricsSnapshot Recorder::metrics() const {
  MetricsSnapshot out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    const Counters& c = shard->counters;
    out.recorded += c.recorded;
    if (shard->total > shard->ring.size()) {
      out.dropped += shard->total - shard->ring.size();
    }
    for (std::size_t k = 0; k < kKindCount; ++k) out.by_kind[k] += c.by_kind[k];
    const MetricsSnapshot& m = c.agg;
    out.enqueued += m.enqueued;
    out.completes += m.completes;
    out.ok += m.ok;
    out.degraded += m.degraded;
    out.failed += m.failed;
    out.attempts += m.attempts;
    out.retries += m.retries;
    out.verify_checks += m.verify_checks;
    out.verify_rejects += m.verify_rejects;
    out.fallbacks += m.fallbacks;
    out.migrations += m.migrations;
    out.migrated_bytes += m.migrated_bytes;
    out.breaker_opens += m.breaker_opens;
    out.breaker_readmissions += m.breaker_readmissions;
    out.probes += m.probes;
    out.attempt_wall_ns += m.attempt_wall_ns;
    out.command_cycles += m.command_cycles;
    if (out.per_device.size() < m.per_device.size()) {
      out.per_device.resize(m.per_device.size());
    }
    for (std::size_t i = 0; i < m.per_device.size(); ++i) {
      DeviceMetrics& d = out.per_device[i];
      const DeviceMetrics& s = m.per_device[i];
      d.device = static_cast<int>(i);
      d.placed += s.placed;
      d.verify_checks += s.verify_checks;
      d.verify_rejects += s.verify_rejects;
      d.migrations_in += s.migrations_in;
      d.migrated_bytes_in += s.migrated_bytes_in;
      d.breaker_opens += s.breaker_opens;
      d.breaker_readmissions += s.breaker_readmissions;
      d.probes += s.probes;
    }
  }
  return out;
}

std::vector<Event> Recorder::events() const {
  std::vector<Event> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(
            shard->total, shard->ring.size()));
    // Oldest-first: when the shard wrapped, the write cursor points at
    // the oldest surviving slot.
    const std::size_t start =
        shard->total > shard->ring.size() ? shard->next : 0;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(shard->ring[(start + i) % shard->ring.size()]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& x, const Event& y) {
                     return x.wall_ns < y.wall_ns;
                   });
  return out;
}

Recorder* sink() { return tl_sink; }

void emit(const Event& e) {
  if (tl_sink != nullptr) tl_sink->emit(e);
}

ThreadScope::ThreadScope(Recorder* rec) : prev_(tl_sink) { tl_sink = rec; }

ThreadScope::~ThreadScope() { tl_sink = prev_; }

void set_attempt_device(int device) { tl_attempt_device = device; }

int attempt_device() { return tl_attempt_device; }

}  // namespace fblas::trace
