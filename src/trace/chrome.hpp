// Chrome trace-event export: renders a Recorder's event ring as the JSON
// object format chrome://tracing (and Perfetto's legacy loader) accepts.
//
// Track layout — the two-clock span model:
//   pid 1 "host runtime"              one row per worker thread; complete
//                                     (X) spans for attempts and verify
//                                     checks, async (b/e) spans covering
//                                     each command from enqueue to its
//                                     terminal state, instants for
//                                     retries/fallbacks, and the
//                                     adaptive-sample-rate counter track.
//   pid 2 "devices (wall clock)"      one row per pool device; the same
//                                     attempts re-plotted by placement,
//                                     plus placement/migration/probe
//                                     instants and one breaker-state
//                                     counter track per device.
//   pid 3 "devices (simulated cycles)" one row per device on the
//                                     *simulated* clock: each completed
//                                     command as an X span from its
//                                     start_cycles to finish_cycles, one
//                                     microsecond per cycle — the
//                                     critical-path (makespan) picture,
//                                     visually independent of host wall
//                                     time.
//
// All timestamps are microseconds; wall rows use Recorder-epoch-relative
// wall time, the cycle rows reuse the µs axis as a cycle axis.
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace fblas::trace {

/// The full trace as a Chrome trace-event JSON object string.
std::string chrome_json(const Recorder& rec);

/// Writes chrome_json(rec) to `path`. Throws Error on I/O failure.
void export_chrome(const Recorder& rec, const std::string& path);

}  // namespace fblas::trace
