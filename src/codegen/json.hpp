// Minimal JSON parser for the code generator's routines-specification
// files (Sec. II-C). Supports the full JSON grammar except \u escapes
// beyond the Basic Latin range; numbers are doubles.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace fblas::codegen {

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() : type_(Type::Null) {}
  static Json boolean(bool b);
  static Json number(double d);
  static Json string(std::string s);
  static Json array();
  static Json object();

  /// Parses a JSON document; throws ParseError with line/column context.
  static Json parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;  ///< number checked to be integral
  const std::string& as_string() const;

  // Array access.
  std::size_t size() const;
  const Json& at(std::size_t i) const;

  // Object access.
  bool contains(const std::string& key) const;
  const Json& at(const std::string& key) const;
  /// Returns the member or a shared null value.
  const Json& get(const std::string& key) const;
  const std::map<std::string, Json>& members() const;

  // Mutation (used by tests and by spec serialization).
  void push_back(Json v);
  Json& operator[](const std::string& key);

  /// Serializes back to JSON text (stable member order).
  std::string dump(int indent = 0) const;

 private:
  void dump_impl(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;
};

}  // namespace fblas::codegen
