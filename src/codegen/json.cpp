#include "codegen/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

namespace fblas::codegen {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << "JSON parse error at line " << line << ", column " << col << ": "
       << msg;
    throw ParseError(os.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json::string(parse_string());
      case 't':
        if (consume_literal("true")) return Json::boolean(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json::boolean(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      take();
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("object member name must be a string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return obj;
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      take();
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return arr;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (c == '\\') {
        const char e = take();
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else fail("invalid \\u escape");
            }
            if (code > 0x7f) fail("non-ASCII \\u escapes are unsupported");
            out.push_back(static_cast<char>(code));
            break;
          }
          default:
            fail("invalid escape sequence");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') take();
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_ ||
        pos_ == start) {
      pos_ = start;
      fail("invalid number");
    }
    return Json::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const Json kNull{};

void dump_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::Bool;
  j.bool_ = b;
  return j;
}

Json Json::number(double d) {
  Json j;
  j.type_ = Type::Number;
  j.num_ = d;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::String;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::Object;
  return j;
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

bool Json::as_bool() const {
  FBLAS_REQUIRE(is_bool(), "JSON value is not a boolean");
  return bool_;
}

double Json::as_number() const {
  FBLAS_REQUIRE(is_number(), "JSON value is not a number");
  return num_;
}

std::int64_t Json::as_int() const {
  const double d = as_number();
  const auto i = static_cast<std::int64_t>(d);
  FBLAS_REQUIRE(static_cast<double>(i) == d, "JSON number is not integral");
  return i;
}

const std::string& Json::as_string() const {
  FBLAS_REQUIRE(is_string(), "JSON value is not a string");
  return str_;
}

std::size_t Json::size() const {
  if (is_array()) return arr_.size();
  if (is_object()) return obj_.size();
  throw ConfigError("JSON value has no size");
}

const Json& Json::at(std::size_t i) const {
  FBLAS_REQUIRE(is_array(), "JSON value is not an array");
  FBLAS_REQUIRE(i < arr_.size(), "JSON array index out of range");
  return arr_[i];
}

bool Json::contains(const std::string& key) const {
  return is_object() && obj_.find(key) != obj_.end();
}

const Json& Json::at(const std::string& key) const {
  FBLAS_REQUIRE(is_object(), "JSON value is not an object");
  const auto it = obj_.find(key);
  FBLAS_REQUIRE(it != obj_.end(), "missing JSON member '" + key + "'");
  return it->second;
}

const Json& Json::get(const std::string& key) const {
  if (!contains(key)) return kNull;
  return obj_.at(key);
}

const std::map<std::string, Json>& Json::members() const {
  FBLAS_REQUIRE(is_object(), "JSON value is not an object");
  return obj_;
}

void Json::push_back(Json v) {
  FBLAS_REQUIRE(is_array(), "JSON value is not an array");
  arr_.push_back(std::move(v));
}

Json& Json::operator[](const std::string& key) {
  FBLAS_REQUIRE(is_object(), "JSON value is not an object");
  return obj_[key];
}

void Json::dump_impl(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
  const std::string pad_close(static_cast<std::size_t>(indent * depth), ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::Null:
      out += "null";
      break;
    case Type::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Type::Number: {
      if (num_ == std::floor(num_) && std::abs(num_) < 1e15) {
        out += std::to_string(static_cast<std::int64_t>(num_));
      } else {
        std::ostringstream os;
        os << num_;
        out += os.str();
      }
      break;
    }
    case Type::String:
      dump_string(out, str_);
      break;
    case Type::Array: {
      out.push_back('[');
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) out.push_back(',');
        first = false;
        out += nl;
        out += pad;
        v.dump_impl(out, indent, depth + 1);
      }
      if (!arr_.empty()) {
        out += nl;
        out += pad_close;
      }
      out.push_back(']');
      break;
    }
    case Type::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        out += nl;
        out += pad;
        dump_string(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_impl(out, indent, depth + 1);
      }
      if (!obj_.empty()) {
        out += nl;
        out += pad_close;
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

}  // namespace fblas::codegen
