#include "codegen/routine_spec.hpp"

namespace fblas::codegen {
namespace {

Precision parse_precision(const Json& j) {
  const std::string& s = j.as_string();
  if (s == "single" || s == "float") return Precision::Single;
  if (s == "double") return Precision::Double;
  throw ParseError("unknown precision: '" + s + "'");
}

core::MatrixTiling parse_tiling(const Json& j) {
  const std::string& s = j.as_string();
  if (s == "rows") return core::MatrixTiling::TilesByRows;
  if (s == "cols" || s == "columns") return core::MatrixTiling::TilesByCols;
  throw ParseError("tiles_by must be \"rows\" or \"cols\", got '" + s + "'");
}

Uplo parse_uplo(const Json& j) {
  const std::string& s = j.as_string();
  if (s == "lower") return Uplo::Lower;
  if (s == "upper") return Uplo::Upper;
  throw ParseError("uplo must be \"lower\" or \"upper\", got '" + s + "'");
}

Diag parse_diag(const Json& j) {
  const std::string& s = j.as_string();
  if (s == "unit") return Diag::Unit;
  if (s == "non_unit") return Diag::NonUnit;
  throw ParseError("diag must be \"unit\" or \"non_unit\", got '" + s + "'");
}

int parse_positive_int(const Json& j, const char* what) {
  const std::int64_t v = j.as_int();
  if (v < 1) throw ParseError(std::string(what) + " must be positive");
  return static_cast<int>(v);
}

RoutineSpec parse_routine(const Json& j) {
  if (!j.is_object()) throw ParseError("routine entry must be an object");
  RoutineSpec spec;
  if (!j.contains("blas")) throw ParseError("routine entry misses \"blas\"");
  try {
    spec.kind = routine_from_name(j.at("blas").as_string());
  } catch (const ConfigError& e) {
    throw ParseError(e.what());
  }
  if (j.contains("precision")) spec.precision = parse_precision(j.at("precision"));
  if (j.contains("user_name")) spec.user_name = j.at("user_name").as_string();
  if (spec.user_name.empty()) spec.user_name = "fblas_" + spec.blas_name();
  if (j.contains("width")) {
    spec.width = parse_positive_int(j.at("width"), "width");
  }
  if (j.contains("tile_rows")) {
    spec.tile_rows = parse_positive_int(j.at("tile_rows"), "tile_rows");
  }
  if (j.contains("tile_cols")) {
    spec.tile_cols = parse_positive_int(j.at("tile_cols"), "tile_cols");
  }
  if (j.contains("pe_rows")) {
    spec.pe_rows = parse_positive_int(j.at("pe_rows"), "pe_rows");
  }
  if (j.contains("pe_cols")) {
    spec.pe_cols = parse_positive_int(j.at("pe_cols"), "pe_cols");
  }
  if (j.contains("transposed")) {
    spec.trans = j.at("transposed").as_bool() ? Transpose::Trans
                                              : Transpose::None;
  }
  if (j.contains("tiles_by")) spec.tiling = parse_tiling(j.at("tiles_by"));
  if (j.contains("elems_by")) {
    const std::string& s = j.at("elems_by").as_string();
    if (s == "rows") {
      spec.elem_order = Order::RowMajor;
    } else if (s == "cols" || s == "columns") {
      spec.elem_order = Order::ColMajor;
    } else {
      throw ParseError("elems_by must be \"rows\" or \"cols\"");
    }
  }
  if (j.contains("uplo")) spec.uplo = parse_uplo(j.at("uplo"));
  if (j.contains("diag")) spec.diag = parse_diag(j.at("diag"));
  if (j.contains("fully_unrolled")) {
    spec.fully_unrolled = j.at("fully_unrolled").as_bool();
  }
  if (j.contains("fixed_size")) {
    spec.fixed_size = parse_positive_int(j.at("fixed_size"), "fixed_size");
  }
  if (spec.fully_unrolled) {
    if (spec.kind != RoutineKind::Gemm && spec.kind != RoutineKind::Trsm) {
      throw ParseError(
          "fully_unrolled is supported for gemm and trsm (the Table V "
          "batched circuits)");
    }
    if (spec.fixed_size > 32) {
      throw ParseError("fully_unrolled fixed_size must be <= 32");
    }
  }

  // Level-3 consistency: the compute tile must be a multiple of the grid.
  const RoutineInfo& info = routine_info(spec.kind);
  if (info.circuit == CircuitClass::Systolic &&
      spec.kind != RoutineKind::Trsm) {
    if (spec.tile_rows == 1024 && spec.tile_cols == 1024) {
      // Defaults tuned for Level 2; pick grid-aligned Level-3 defaults.
      spec.tile_rows = 8L * spec.pe_rows;
      spec.tile_cols = 8L * spec.pe_cols;
    }
    if (spec.tile_rows % spec.pe_rows != 0 ||
        spec.tile_cols % spec.pe_cols != 0) {
      throw ParseError("gemm-family tiles must be multiples of the PE grid");
    }
  }
  return spec;
}

}  // namespace

std::string RoutineSpec::blas_name() const {
  const RoutineInfo& info = routine_info(kind);
  if (kind == RoutineKind::Sdsdot) return std::string(info.name);
  const char prefix = precision == Precision::Single ? 's' : 'd';
  return prefix + std::string(info.name);
}

SpecFile parse_spec(const std::string& json_text) {
  const Json doc = Json::parse(json_text);
  if (!doc.is_object()) throw ParseError("spec document must be an object");
  SpecFile out;
  if (doc.contains("device")) {
    try {
      out.device = sim::device_from_name(doc.at("device").as_string());
    } catch (const ConfigError& e) {
      throw ParseError(e.what());
    }
  }
  if (!doc.contains("routines") || !doc.at("routines").is_array()) {
    throw ParseError("spec document needs a \"routines\" array");
  }
  const Json& arr = doc.at("routines");
  for (std::size_t i = 0; i < arr.size(); ++i) {
    out.routines.push_back(parse_routine(arr.at(i)));
  }
  if (out.routines.empty()) {
    throw ParseError("\"routines\" array is empty");
  }
  return out;
}

std::string spec_to_json(const SpecFile& spec) {
  Json doc = Json::object();
  doc["device"] = Json::string(
      spec.device == sim::DeviceId::Arria10 ? "arria10" : "stratix10");
  Json arr = Json::array();
  for (const RoutineSpec& r : spec.routines) {
    const RoutineInfo& info = routine_info(r.kind);
    Json j = Json::object();
    j["blas"] = Json::string(std::string(info.name));
    j["precision"] = Json::string(
        r.precision == Precision::Single ? "single" : "double");
    j["user_name"] = Json::string(r.user_name);
    j["width"] = Json::number(r.width);
    if (info.streams_matrix) {
      j["tile_rows"] = Json::number(static_cast<double>(r.tile_rows));
      j["tile_cols"] = Json::number(static_cast<double>(r.tile_cols));
      j["transposed"] = Json::boolean(r.trans == Transpose::Trans);
      j["tiles_by"] = Json::string(
          r.tiling == core::MatrixTiling::TilesByRows ? "rows" : "cols");
      j["elems_by"] = Json::string(
          r.elem_order == Order::RowMajor ? "rows" : "cols");
    }
    if (info.circuit == CircuitClass::Systolic) {
      j["pe_rows"] = Json::number(r.pe_rows);
      j["pe_cols"] = Json::number(r.pe_cols);
    }
    if (r.kind == RoutineKind::Trsv || r.kind == RoutineKind::Trsm) {
      j["uplo"] = Json::string(r.uplo == Uplo::Lower ? "lower" : "upper");
      j["diag"] = Json::string(r.diag == Diag::Unit ? "unit" : "non_unit");
    }
    if (r.fully_unrolled) {
      j["fully_unrolled"] = Json::boolean(true);
      j["fixed_size"] = Json::number(static_cast<double>(r.fixed_size));
    }
    arr.push_back(std::move(j));
  }
  doc["routines"] = std::move(arr);
  return doc.dump(2);
}

}  // namespace fblas::codegen
