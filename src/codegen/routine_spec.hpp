// Routines-specification schema for the code generator (Sec. II-C): a
// JSON file lists the routine instances to generate, with functional
// parameters (precision, transposition, triangle, ...) and non-functional
// parameters (vectorization width, tile sizes, systolic grid).
//
// Example:
//   {
//     "device": "stratix10",
//     "routines": [
//       {"blas": "dot",  "precision": "single", "user_name": "my_sdot",
//        "width": 32},
//       {"blas": "gemv", "precision": "double", "width": 16,
//        "transposed": false, "tiles_by": "rows",
//        "tile_rows": 1024, "tile_cols": 1024},
//       {"blas": "gemm", "precision": "single",
//        "pe_rows": 16, "pe_cols": 16, "tile_rows": 64, "tile_cols": 64}
//     ]
//   }
#pragma once

#include <string>
#include <vector>

#include "codegen/json.hpp"
#include "common/routines.hpp"
#include "common/types.hpp"
#include "fblas/level2.hpp"
#include "sim/device.hpp"

namespace fblas::codegen {

/// One routine instance to generate.
struct RoutineSpec {
  RoutineKind kind = RoutineKind::Dot;
  Precision precision = Precision::Single;
  std::string user_name;  ///< kernel name; defaults to e.g. "fblas_sdot"

  // Non-functional parameters.
  int width = 16;
  std::int64_t tile_rows = 1024;
  std::int64_t tile_cols = 1024;
  int pe_rows = 8;
  int pe_cols = 8;

  // Functional parameters.
  Transpose trans = Transpose::None;
  core::MatrixTiling tiling = core::MatrixTiling::TilesByRows;
  Order elem_order = Order::RowMajor;  ///< element order within a tile
  Uplo uplo = Uplo::Lower;
  Diag diag = Diag::NonUnit;

  /// Fully-unrolled small-size variant (Sec. III-A / Table V): the loops
  /// unroll completely for a compile-time `fixed_size`, and the module
  /// starts a new problem every cycle (GEMM and TRSM only).
  bool fully_unrolled = false;
  std::int64_t fixed_size = 4;

  /// The BLAS-style prefixed name, e.g. "sdot" / "dgemv".
  std::string blas_name() const;
};

struct SpecFile {
  sim::DeviceId device = sim::DeviceId::Stratix10;
  std::vector<RoutineSpec> routines;
};

/// Parses and validates a specification document. Throws ParseError on
/// schema violations (unknown routine, bad enum value, non-positive
/// width/tiles, TR not a multiple of PR, ...).
SpecFile parse_spec(const std::string& json_text);

/// Serializes a SpecFile back to its JSON form (round-trip support).
std::string spec_to_json(const SpecFile& spec);

}  // namespace fblas::codegen
