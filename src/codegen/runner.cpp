#include "codegen/runner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "fblas/level1.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace fblas::codegen {
namespace {

/// Typed implementation; the design's precision picks T.
template <typename T>
Level1Result run_typed(const GeneratedDesign& design, stream::Mode mode,
                       const Level1Inputs& in) {
  const RoutineSpec& spec = design.spec;
  const core::Level1Config cfg = design.level1_config();
  const std::int64_t n = static_cast<std::int64_t>(in.x.size());
  const std::size_t cap =
      static_cast<std::size_t>(std::max(64, 2 * cfg.width));
  std::vector<T> x(in.x.begin(), in.x.end());
  std::vector<T> y(in.y.begin(), in.y.end());
  const T alpha = static_cast<T>(in.alpha);

  stream::Graph g(mode);
  Level1Result result;
  std::vector<T> ox, oy, scalar_out;
  std::vector<std::int64_t> index_out;

  auto finish = [&] {
    g.run();
    result.cycles = g.cycles();
    result.out_x.assign(ox.begin(), ox.end());
    result.out_y.assign(oy.begin(), oy.end());
    if (!scalar_out.empty()) result.scalar = scalar_out[0];
    if (!index_out.empty()) result.index = index_out[0];
  };

  switch (spec.kind) {
    case RoutineKind::Scal: {
      auto& ci = g.channel<T>("x", cap);
      auto& co = g.channel<T>("o", cap);
      g.spawn("feed", stream::feed(x, ci));
      g.spawn(spec.user_name, core::scal<T>(cfg, n, alpha, ci, co));
      g.spawn("collect", stream::collect<T>(n, co, ox));
      finish();
      return result;
    }
    case RoutineKind::Copy: {
      auto& ci = g.channel<T>("x", cap);
      auto& co = g.channel<T>("o", cap);
      g.spawn("feed", stream::feed(x, ci));
      g.spawn(spec.user_name, core::copy<T>(cfg, n, ci, co));
      g.spawn("collect", stream::collect<T>(n, co, ox));
      finish();
      return result;
    }
    case RoutineKind::Axpy: {
      auto& cx = g.channel<T>("x", cap);
      auto& cy = g.channel<T>("y", cap);
      auto& co = g.channel<T>("o", cap);
      g.spawn("feed_x", stream::feed(x, cx));
      g.spawn("feed_y", stream::feed(y, cy));
      g.spawn(spec.user_name, core::axpy<T>(cfg, n, alpha, cx, cy, co));
      g.spawn("collect", stream::collect<T>(n, co, oy));
      finish();
      return result;
    }
    case RoutineKind::Swap:
    case RoutineKind::Rot:
    case RoutineKind::Rotm: {
      auto& cx = g.channel<T>("x", cap);
      auto& cy = g.channel<T>("y", cap);
      auto& cox = g.channel<T>("ox", cap);
      auto& coy = g.channel<T>("oy", cap);
      g.spawn("feed_x", stream::feed(x, cx));
      g.spawn("feed_y", stream::feed(y, cy));
      if (spec.kind == RoutineKind::Swap) {
        g.spawn(spec.user_name, core::swap<T>(cfg, n, cx, cy, cox, coy));
      } else if (spec.kind == RoutineKind::Rot) {
        g.spawn(spec.user_name,
                core::rot<T>(cfg, n, static_cast<T>(in.c),
                             static_cast<T>(in.s), cx, cy, cox, coy));
      } else {
        ref::RotmParam<T> p{T(0), T(0), static_cast<T>(-in.s),
                            static_cast<T>(in.s), T(0)};
        g.spawn(spec.user_name, core::rotm<T>(cfg, n, p, cx, cy, cox, coy));
      }
      g.spawn("collect_x", stream::collect<T>(n, cox, ox));
      g.spawn("collect_y", stream::collect<T>(n, coy, oy));
      finish();
      return result;
    }
    case RoutineKind::Dot:
    case RoutineKind::Sdsdot: {
      auto& cx = g.channel<T>("x", cap);
      auto& cy = g.channel<T>("y", cap);
      auto& cr = g.channel<T>("r", 2);
      g.spawn("feed_x", stream::feed(x, cx));
      g.spawn("feed_y", stream::feed(y, cy));
      if (spec.kind == RoutineKind::Dot) {
        g.spawn(spec.user_name, core::dot<T>(cfg, n, cx, cy, cr));
      } else {
        if constexpr (std::is_same_v<T, float>) {
          g.spawn(spec.user_name,
                  core::sdsdot(cfg, n, static_cast<float>(in.alpha), cx, cy,
                               cr));
        } else {
          throw ConfigError("sdsdot is a single-precision routine");
        }
      }
      g.spawn("collect", stream::collect<T>(1, cr, scalar_out));
      finish();
      return result;
    }
    case RoutineKind::Nrm2:
    case RoutineKind::Asum: {
      auto& cx = g.channel<T>("x", cap);
      auto& cr = g.channel<T>("r", 2);
      g.spawn("feed", stream::feed(x, cx));
      if (spec.kind == RoutineKind::Nrm2) {
        g.spawn(spec.user_name, core::nrm2<T>(cfg, n, cx, cr));
      } else {
        g.spawn(spec.user_name, core::asum<T>(cfg, n, cx, cr));
      }
      g.spawn("collect", stream::collect<T>(1, cr, scalar_out));
      finish();
      return result;
    }
    case RoutineKind::Iamax: {
      auto& cx = g.channel<T>("x", cap);
      auto& cr = g.channel<std::int64_t>("r", 2);
      g.spawn("feed", stream::feed(x, cx));
      g.spawn(spec.user_name, core::iamax<T>(cfg, n, cx, cr));
      g.spawn("collect", stream::collect<std::int64_t>(1, cr, index_out));
      finish();
      return result;
    }
    case RoutineKind::Rotg: {
      auto& ci = g.channel<T>("in", 4);
      auto& co = g.channel<T>("out", 8);
      g.spawn("feed", stream::feed(std::vector<T>{x.at(0), x.at(1)}, ci));
      g.spawn(spec.user_name, core::rotg<T>(ci, co));
      g.spawn("collect", stream::collect<T>(4, co, ox));
      finish();
      return result;
    }
    case RoutineKind::Rotmg: {
      auto& ci = g.channel<T>("in", 4);
      auto& co = g.channel<T>("out", 8);
      g.spawn("feed", stream::feed(std::vector<T>{x.at(0), x.at(1), x.at(2),
                                                  x.at(3)},
                                   ci));
      g.spawn(spec.user_name, core::rotmg<T>(ci, co));
      g.spawn("collect", stream::collect<T>(8, co, ox));
      finish();
      return result;
    }
    default:
      throw ConfigError("run_level1 supports Level-1 routines only; '" +
                        std::string(routine_info(spec.kind).name) +
                        "' is Level " +
                        std::to_string(routine_info(spec.kind).level));
  }
}

}  // namespace

Level1Result run_level1(const GeneratedDesign& design, stream::Mode mode,
                        const Level1Inputs& inputs) {
  if (design.spec.precision == Precision::Single) {
    return run_typed<float>(design, mode, inputs);
  }
  return run_typed<double>(design, mode, inputs);
}

}  // namespace fblas::codegen
