#include "codegen/emitter.hpp"

#include <sstream>

namespace fblas::codegen {
namespace {

const char* ctype(Precision p) {
  return p == Precision::Single ? "float" : "double";
}

std::string chan(const RoutineSpec& s, const char* operand) {
  return s.user_name + "_ch_" + operand;
}

void emit_channel_decls(std::ostringstream& os, const RoutineSpec& s,
                        const std::vector<std::string>& chans) {
  for (const std::string& c : chans) {
    os << "channel " << ctype(s.precision) << " " << c
       << " __attribute__((depth(" << 2 * s.width << ")));\n";
  }
}

void emit_read_vector(std::ostringstream& os, const RoutineSpec& s,
                      const char* operand) {
  const char* t = ctype(s.precision);
  os << "__kernel void " << s.user_name << "_read_" << operand
     << "(__global const " << t << "* restrict mem, int n, int repeat) {\n"
     << "  for (int r = 0; r < repeat; r++)\n"
     << "    for (int i = 0; i < n; i++)\n"
     << "      write_channel_intel(" << chan(s, operand) << ", mem[i]);\n"
     << "}\n\n";
}

void emit_write_vector(std::ostringstream& os, const RoutineSpec& s,
                       const char* operand) {
  const char* t = ctype(s.precision);
  os << "__kernel void " << s.user_name << "_write_" << operand
     << "(__global " << t << "* restrict mem, int n) {\n"
     << "  for (int i = 0; i < n; i++)\n"
     << "    mem[i] = read_channel_intel(" << chan(s, operand) << ");\n"
     << "}\n\n";
}

void emit_map_module(std::ostringstream& os, const RoutineSpec& s) {
  // The SCAL-style module of Fig. 4, specialized per routine body.
  const char* t = ctype(s.precision);
  const RoutineInfo& info = routine_info(s.kind);
  os << "__kernel void " << s.user_name << "(" << t << " alpha, int N) {\n"
     << "  for (int it = 0; it < N / " << s.width << "; it++) {\n"
     << "    #pragma unroll\n"
     << "    for (int i = 0; i < " << s.width << "; i++) {\n";
  switch (s.kind) {
    case RoutineKind::Scal:
      os << "      " << t << " x = read_channel_intel(" << chan(s, "x")
         << ");\n"
         << "      write_channel_intel(" << chan(s, "out")
         << ", alpha * x);\n";
      break;
    case RoutineKind::Copy:
      os << "      write_channel_intel(" << chan(s, "out")
         << ", read_channel_intel(" << chan(s, "x") << "));\n";
      break;
    case RoutineKind::Axpy:
      os << "      " << t << " x = read_channel_intel(" << chan(s, "x")
         << ");\n"
         << "      " << t << " y = read_channel_intel(" << chan(s, "y")
         << ");\n"
         << "      write_channel_intel(" << chan(s, "out")
         << ", alpha * x + y);\n";
      break;
    case RoutineKind::Swap:
    case RoutineKind::Rot:
    case RoutineKind::Rotm:
      os << "      " << t << " x = read_channel_intel(" << chan(s, "x")
         << ");\n"
         << "      " << t << " y = read_channel_intel(" << chan(s, "y")
         << ");\n"
         << "      write_channel_intel(" << chan(s, "out_x")
         << ", /* elementwise 2x2 transform */ y);\n"
         << "      write_channel_intel(" << chan(s, "out_y") << ", x);\n";
      break;
    default:
      os << "      /* " << info.name << " elementwise body */\n";
      break;
  }
  os << "    }\n  }\n}\n\n";
}

void emit_reduce_module(std::ostringstream& os, const RoutineSpec& s) {
  // The DOT-style module of Fig. 5: W-wide unrolled tree + accumulator.
  const char* t = ctype(s.precision);
  const bool two_inputs =
      s.kind == RoutineKind::Dot || s.kind == RoutineKind::Sdsdot;
  const char* acc_t =
      s.kind == RoutineKind::Sdsdot ? "double" : ctype(s.precision);
  os << "__kernel void " << s.user_name << "(int N) {\n"
     << "  " << acc_t << " res = 0;\n"
     << "  for (int it = 0; it < N / " << s.width << "; it++) {\n"
     << "    " << acc_t << " acc = 0;\n"
     << "    #pragma unroll\n"
     << "    for (int i = 0; i < " << s.width << "; i++) {\n"
     << "      " << t << " x = read_channel_intel(" << chan(s, "x") << ");\n";
  if (two_inputs) {
    os << "      " << t << " y = read_channel_intel(" << chan(s, "y")
       << ");\n"
       << "      acc += x * y;\n";
  } else if (s.kind == RoutineKind::Nrm2) {
    os << "      acc += x * x;\n";
  } else {
    os << "      acc += fabs(x);\n";
  }
  os << "    }\n"
     << "    res += acc;\n"
     << "  }\n";
  if (s.kind == RoutineKind::Nrm2) {
    os << "  write_channel_intel(" << chan(s, "res") << ", sqrt(res));\n";
  } else {
    os << "  write_channel_intel(" << chan(s, "res") << ", res);\n";
  }
  os << "}\n\n";
}

void emit_gemv_module(std::ostringstream& os, const RoutineSpec& s) {
  const char* t = ctype(s.precision);
  const bool by_rows = s.tiling == core::MatrixTiling::TilesByRows;
  os << "// GEMV variant: A " << (s.trans == Transpose::Trans ? "^T " : "")
     << "in tiles by " << (by_rows ? "rows" : "columns") << ", TN="
     << s.tile_rows << ", TM=" << s.tile_cols << "\n"
     << "__kernel void " << s.user_name << "(" << t << " alpha, " << t
     << " beta, int N, int M) {\n"
     << "  " << t << " local_x[" << (by_rows ? s.tile_cols : s.tile_cols)
     << "];\n"
     << "  " << t << " local_y[" << s.tile_rows << "];\n"
     << "  for (int ti = 0; ti < N / " << s.tile_rows << "; ti++) {\n"
     << "    for (int tj = 0; tj < M / " << s.tile_cols << "; tj++) {\n"
     << "      for (int i = 0; i < " << s.tile_rows << "; i++) {\n"
     << "        " << t << " acc = 0;\n"
     << "        #pragma unroll " << s.width << "\n"
     << "        for (int j = 0; j < " << s.tile_cols << "; j++)\n"
     << "          acc += read_channel_intel(" << chan(s, "A")
     << ") * local_x[j];\n"
     << "        local_y[i] += alpha * acc;\n"
     << "      }\n    }\n"
     << "    // push the finished y block\n"
     << "    for (int i = 0; i < " << s.tile_rows << "; i++)\n"
     << "      write_channel_intel(" << chan(s, "out") << ", local_y[i]);\n"
     << "  }\n}\n\n";
}

void emit_systolic_module(std::ostringstream& os, const RoutineSpec& s) {
  const char* t = ctype(s.precision);
  os << "// Systolic GEMM: " << s.pe_rows << "x" << s.pe_cols
     << " PE grid, compute tile " << s.tile_rows << "x" << s.tile_cols
     << " (single-kernel formulation with shift registers)\n"
     << t << " pe(" << t << " a, " << t << " b, " << t << " *acc) {\n"
     << "  *acc += a * b;\n  return *acc;\n}\n\n"
     << "__kernel void " << s.user_name << "(int N, int M, int K) {\n"
     << "  " << t << " acc[" << s.tile_rows << "][" << s.tile_cols << "];\n"
     << "  for (int k = 0; k < K; k++) {\n"
     << "    " << t << " a_reg[" << s.pe_rows << "], b_reg[" << s.pe_cols
     << "];\n"
     << "    #pragma unroll\n"
     << "    for (int r = 0; r < " << s.pe_rows << "; r++)\n"
     << "      #pragma unroll\n"
     << "      for (int c = 0; c < " << s.pe_cols << "; c++)\n"
     << "        pe(a_reg[r], b_reg[c], &acc[r][c]);\n"
     << "  }\n"
     << "  // drain chain: " << s.pe_cols << " results per cycle\n"
     << "}\n\n";
}

void emit_unrolled_module(std::ostringstream& os, const RoutineSpec& s) {
  const char* t = ctype(s.precision);
  const std::int64_t sz = s.fixed_size;
  os << "// Fully-unrolled batched " << (s.kind == RoutineKind::Gemm
                                             ? "GEMM"
                                             : "TRSM (left, lower)")
     << " of fixed size " << sz
     << ": a new problem enters every clock cycle (Table V design)\n"
     << "__kernel void " << s.user_name << "(" << t
     << " alpha, int batch) {\n"
     << "  for (int inv = 0; inv < batch; inv++) {\n"
     << "    " << t << " a[" << sz << "][" << sz << "], b[" << sz << "]["
     << sz << "];\n"
     << "    #pragma unroll\n"
     << "    for (int i = 0; i < " << sz << "; i++)\n"
     << "      #pragma unroll\n"
     << "      for (int j = 0; j < " << sz << "; j++)\n";
  if (s.kind == RoutineKind::Gemm) {
    os << "        { " << t << " acc = 0;\n"
       << "          #pragma unroll\n"
       << "          for (int k = 0; k < " << sz << "; k++)\n"
       << "            acc += a[i][k] * b[k][j];\n"
       << "          write_channel_intel(" << chan(s, "C")
       << ", alpha * acc); }\n";
  } else {
    os << "        { /* fully-unrolled forward substitution row i */ }\n";
  }
  os << "  }\n}\n\n";
}

void emit_triangular_module(std::ostringstream& os, const RoutineSpec& s) {
  const char* t = ctype(s.precision);
  os << "// " << (s.kind == RoutineKind::Trsv ? "TRSV" : "TRSM") << ", "
     << (s.uplo == Uplo::Lower ? "lower" : "upper") << " triangle, "
     << (s.diag == Diag::Unit ? "unit" : "non-unit") << " diagonal\n"
     << "__kernel void " << s.user_name << "(int N) {\n"
     << "  " << t << " x[/* progressive solution buffer */ 1];\n"
     << "  // rows arrive in solve order through "
     << chan(s, "A") << "\n"
     << "}\n\n";
}

}  // namespace

core::Level1Config GeneratedDesign::level1_config() const {
  return core::Level1Config{spec.width};
}

core::GemvConfig GeneratedDesign::gemv_config() const {
  return core::GemvConfig{spec.trans,     spec.tiling,    spec.width,
                          spec.tile_rows, spec.tile_cols, spec.elem_order};
}

core::GerConfig GeneratedDesign::ger_config() const {
  return core::GerConfig{spec.tiling, spec.width, spec.tile_rows,
                         spec.tile_cols};
}

core::BatchedConfig GeneratedDesign::batched_config() const {
  return core::BatchedConfig{spec.fixed_size};
}

core::GemmConfig GeneratedDesign::gemm_config() const {
  return core::GemmConfig{spec.pe_rows, spec.pe_cols, spec.tile_rows,
                          spec.tile_cols};
}

GeneratedDesign emit(const RoutineSpec& spec, const sim::DeviceSpec& dev,
                     bool check_feasibility) {
  const RoutineInfo& info = routine_info(spec.kind);
  GeneratedDesign out;
  out.spec = spec;
  if (spec.fully_unrolled) {
    // A fully-unrolled size-s circuit is equivalent to an s x s grid
    // holding one s x s tile (s^2 parallel MAC lanes, no memory tiles).
    const int s = static_cast<int>(spec.fixed_size);
    out.shape = sim::ModuleShape{spec.kind, spec.precision, 1,
                                 spec.fixed_size, spec.fixed_size, s, s};
    if (check_feasibility) {
      // The grid-size P&R ceilings do not apply to these small circuits;
      // only the resource budget does.
      sim::check_fits(sim::estimate_design(out.shape, dev), dev);
    }
  } else {
    out.shape = sim::ModuleShape{spec.kind, spec.precision, spec.width,
                                 spec.tile_rows, spec.tile_cols,
                                 spec.pe_rows, spec.pe_cols};
    if (check_feasibility && !sim::place_and_route_feasible(out.shape, dev)) {
      throw FitError("generated design for " + spec.user_name +
                     " would fail placement/routing on " +
                     std::string(dev.name));
    }
  }

  std::ostringstream os;
  os << "// " << spec.user_name << ": " << spec.blas_name()
     << " generated by the FBLAS code generator for " << dev.name << "\n"
     << "#pragma OPENCL EXTENSION cl_intel_channels : enable\n\n";

  // Channels and helper kernels depend on the operand set.
  auto add_vec_io = [&](const char* operand, bool is_input) {
    out.channel_names.push_back(chan(spec, operand));
    if (is_input) {
      emit_read_vector(os, spec, operand);
      out.kernel_names.push_back(spec.user_name + "_read_" + operand);
    } else {
      emit_write_vector(os, spec, operand);
      out.kernel_names.push_back(spec.user_name + "_write_" + operand);
    }
  };

  switch (info.circuit) {
    case CircuitClass::Map: {
      std::ostringstream chans;
      emit_channel_decls(chans, spec,
                         {chan(spec, "x"), chan(spec, "out")});
      os << chans.str() << "\n";
      add_vec_io("x", true);
      if (info.operands_per_width >= 2) add_vec_io("y", true);
      add_vec_io("out", false);
      emit_map_module(os, spec);
      break;
    }
    case CircuitClass::MapReduce: {
      if (info.level == 1) {
        emit_channel_decls(os, spec, {chan(spec, "x"), chan(spec, "res")});
        os << "\n";
        add_vec_io("x", true);
        if (info.operands_per_width >= 2) add_vec_io("y", true);
        add_vec_io("res", false);
        emit_reduce_module(os, spec);
      } else if (spec.kind == RoutineKind::Gemv) {
        emit_channel_decls(
            os, spec,
            {chan(spec, "A"), chan(spec, "x"), chan(spec, "y"),
             chan(spec, "out")});
        os << "\n";
        add_vec_io("A", true);
        add_vec_io("x", true);
        add_vec_io("y", true);
        add_vec_io("out", false);
        emit_gemv_module(os, spec);
      } else {
        emit_channel_decls(os, spec, {chan(spec, "A"), chan(spec, "b"),
                                      chan(spec, "out")});
        os << "\n";
        add_vec_io("A", true);
        add_vec_io("b", true);
        add_vec_io("out", false);
        emit_triangular_module(os, spec);
      }
      break;
    }
    case CircuitClass::Systolic: {
      if (spec.fully_unrolled) {
        emit_channel_decls(os, spec, {chan(spec, "A"), chan(spec, "B"),
                                      chan(spec, "C")});
        os << "\n";
        add_vec_io("A", true);
        add_vec_io("B", true);
        add_vec_io("C", false);
        emit_unrolled_module(os, spec);
        break;
      }
      if (spec.kind == RoutineKind::Trsm) {
        emit_channel_decls(os, spec, {chan(spec, "A"), chan(spec, "B"),
                                      chan(spec, "X")});
        os << "\n";
        add_vec_io("A", true);
        add_vec_io("B", true);
        add_vec_io("X", false);
        emit_triangular_module(os, spec);
      } else {
        emit_channel_decls(os, spec, {chan(spec, "A"), chan(spec, "B"),
                                      chan(spec, "C")});
        os << "\n";
        add_vec_io("A", true);
        add_vec_io("B", true);
        add_vec_io("C", false);
        emit_systolic_module(os, spec);
      }
      break;
    }
  }
  out.kernel_names.push_back(spec.user_name);
  out.source = os.str();
  return out;
}

std::string emit_file(const SpecFile& spec, bool check_feasibility) {
  const sim::DeviceSpec& dev = sim::device(spec.device);
  std::ostringstream os;
  os << "// Generated by the FBLAS code generator\n"
     << "// Target device: " << dev.name << "\n"
     << "// Routines: " << spec.routines.size() << "\n\n";
  for (const RoutineSpec& r : spec.routines) {
    os << emit(r, dev, check_feasibility).source << "\n";
  }
  return os.str();
}

}  // namespace fblas::codegen
