// Generic design runner: executes any generated Level-1 design in the
// streaming simulator, closing the loop from JSON specification to
// numerical result. This is the simulator-side equivalent of launching
// the generated OpenCL kernels through the host runtime: the routine
// kind and the non-functional parameters all come from the
// GeneratedDesign, not from caller code.
#pragma once

#include <cstdint>
#include <vector>

#include "codegen/emitter.hpp"
#include "stream/scheduler.hpp"

namespace fblas::codegen {

/// Inputs for a Level-1 run. Unused operands may stay empty (e.g. y for
/// SCAL); scalar operands default to the values shown.
struct Level1Inputs {
  std::vector<double> x;
  std::vector<double> y;
  double alpha = 1.0;
  /// Givens parameters for ROT (c, s); H for ROTM is built from flag 0.
  double c = 1.0, s = 0.0;
};

/// Outputs of a Level-1 run; which fields are filled depends on the
/// routine class (map routines fill the vectors, reductions the scalar,
/// IAMAX the index).
struct Level1Result {
  std::vector<double> out_x;
  std::vector<double> out_y;
  double scalar = 0.0;
  std::int64_t index = -1;
  std::uint64_t cycles = 0;
};

/// Runs the design on the given inputs. Throws ConfigError when the
/// design is not a Level-1 routine.
Level1Result run_level1(const GeneratedDesign& design, stream::Mode mode,
                        const Level1Inputs& inputs);

}  // namespace fblas::codegen
