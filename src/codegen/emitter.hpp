// OpenCL kernel emitter: turns a RoutineSpec into (a) Intel-channel-style
// OpenCL source for the module and its interface helper kernels — the
// files the real toolchain would synthesize to a bitstream — and (b) the
// simulator-side module configuration used to run the same design here.
#pragma once

#include <string>
#include <vector>

#include "codegen/routine_spec.hpp"
#include "fblas/batched.hpp"
#include "fblas/level1.hpp"
#include "fblas/level2.hpp"
#include "fblas/level3.hpp"
#include "sim/resource_model.hpp"

namespace fblas::codegen {

struct GeneratedDesign {
  RoutineSpec spec;
  std::string source;                     ///< OpenCL translation unit
  std::vector<std::string> kernel_names;  ///< module + helper kernels
  std::vector<std::string> channel_names;
  sim::ModuleShape shape;                 ///< for the resource model

  // Simulator configurations equivalent to the generated design.
  core::Level1Config level1_config() const;
  core::GemvConfig gemv_config() const;
  core::GerConfig ger_config() const;
  core::GemmConfig gemm_config() const;
  core::BatchedConfig batched_config() const;
};

/// Generates one routine. When `check_feasibility` is set (default), the
/// design is validated against the device's resource and P&R limits and
/// FitError is thrown for configurations the paper's toolflow could not
/// place and route.
GeneratedDesign emit(const RoutineSpec& spec, const sim::DeviceSpec& dev,
                     bool check_feasibility = true);

/// Generates the full translation unit for a specification file (header,
/// channel declarations, every routine).
std::string emit_file(const SpecFile& spec, bool check_feasibility = true);

}  // namespace fblas::codegen
