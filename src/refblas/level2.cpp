#include "refblas/level2.hpp"

#include "common/error.hpp"

namespace fblas::ref {

template <typename T>
void gemv(Transpose trans, T alpha, MatrixView<const T> A,
          VectorView<const T> x, T beta, VectorView<T> y) {
  const std::int64_t n = A.rows(), m = A.cols();
  if (trans == Transpose::None) {
    FBLAS_REQUIRE(x.size() == m && y.size() == n, "gemv: shape mismatch");
    for (std::int64_t i = 0; i < n; ++i) {
      T acc = T(0);
      for (std::int64_t j = 0; j < m; ++j) acc += A(i, j) * x[j];
      y[i] = alpha * acc + beta * y[i];
    }
  } else {
    FBLAS_REQUIRE(x.size() == n && y.size() == m, "gemv^T: shape mismatch");
    for (std::int64_t j = 0; j < m; ++j) y[j] *= beta;
    for (std::int64_t i = 0; i < n; ++i) {
      const T xi = alpha * x[i];
      for (std::int64_t j = 0; j < m; ++j) y[j] += A(i, j) * xi;
    }
  }
}

template <typename T>
void trsv(Uplo uplo, Transpose trans, Diag diag, MatrixView<const T> A,
          VectorView<T> x) {
  const std::int64_t n = A.rows();
  FBLAS_REQUIRE(A.cols() == n && x.size() == n, "trsv: shape mismatch");
  // Effective orientation: transposing flips the triangle.
  const bool lower =
      (uplo == Uplo::Lower) == (trans == Transpose::None);
  auto a = [&](std::int64_t i, std::int64_t j) -> T {
    return trans == Transpose::None ? A(i, j) : A(j, i);
  };
  if (lower) {
    for (std::int64_t i = 0; i < n; ++i) {
      T acc = x[i];
      for (std::int64_t j = 0; j < i; ++j) acc -= a(i, j) * x[j];
      x[i] = diag == Diag::Unit ? acc : acc / a(i, i);
    }
  } else {
    for (std::int64_t i = n - 1; i >= 0; --i) {
      T acc = x[i];
      for (std::int64_t j = i + 1; j < n; ++j) acc -= a(i, j) * x[j];
      x[i] = diag == Diag::Unit ? acc : acc / a(i, i);
    }
  }
}

template <typename T>
void ger(T alpha, VectorView<const T> x, VectorView<const T> y,
         MatrixView<T> A) {
  FBLAS_REQUIRE(x.size() == A.rows() && y.size() == A.cols(),
                "ger: shape mismatch");
  for (std::int64_t i = 0; i < A.rows(); ++i) {
    const T xi = alpha * x[i];
    for (std::int64_t j = 0; j < A.cols(); ++j) A(i, j) += xi * y[j];
  }
}

template <typename T>
void syr(Uplo uplo, T alpha, VectorView<const T> x, MatrixView<T> A) {
  const std::int64_t n = A.rows();
  FBLAS_REQUIRE(A.cols() == n && x.size() == n, "syr: shape mismatch");
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t j0 = uplo == Uplo::Lower ? 0 : i;
    const std::int64_t j1 = uplo == Uplo::Lower ? i + 1 : n;
    for (std::int64_t j = j0; j < j1; ++j) A(i, j) += alpha * x[i] * x[j];
  }
}

template <typename T>
void syr2(Uplo uplo, T alpha, VectorView<const T> x, VectorView<const T> y,
          MatrixView<T> A) {
  const std::int64_t n = A.rows();
  FBLAS_REQUIRE(A.cols() == n && x.size() == n && y.size() == n,
                "syr2: shape mismatch");
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t j0 = uplo == Uplo::Lower ? 0 : i;
    const std::int64_t j1 = uplo == Uplo::Lower ? i + 1 : n;
    for (std::int64_t j = j0; j < j1; ++j) {
      A(i, j) += alpha * (x[i] * y[j] + y[i] * x[j]);
    }
  }
}

#define FBLAS_REF_L2_INSTANTIATE(T)                                        \
  template void gemv<T>(Transpose, T, MatrixView<const T>,                 \
                        VectorView<const T>, T, VectorView<T>);            \
  template void trsv<T>(Uplo, Transpose, Diag, MatrixView<const T>,        \
                        VectorView<T>);                                    \
  template void ger<T>(T, VectorView<const T>, VectorView<const T>,        \
                       MatrixView<T>);                                     \
  template void syr<T>(Uplo, T, VectorView<const T>, MatrixView<T>);       \
  template void syr2<T>(Uplo, T, VectorView<const T>, VectorView<const T>, \
                        MatrixView<T>);

FBLAS_REF_L2_INSTANTIATE(float)
FBLAS_REF_L2_INSTANTIATE(double)
#undef FBLAS_REF_L2_INSTANTIATE

}  // namespace fblas::ref
