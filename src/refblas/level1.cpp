#include "refblas/level1.hpp"

#include <algorithm>

namespace fblas::ref {

template <typename T>
Givens<T> rotg(T& a, T& b) {
  // netlib srotg/drotg.
  const T absa = std::abs(a), absb = std::abs(b);
  const T roe = absa > absb ? a : b;
  const T scale = absa + absb;
  Givens<T> g{};
  if (scale == T(0)) {
    g.c = T(1);
    g.s = T(0);
    a = T(0);
    b = T(0);
    return g;
  }
  const T an = a / scale, bn = b / scale;
  T r = scale * std::sqrt(an * an + bn * bn);
  r = std::copysign(r, roe);
  g.c = a / r;
  g.s = b / r;
  T z;
  if (absa > absb) {
    z = g.s;
  } else if (g.c != T(0)) {
    z = T(1) / g.c;
  } else {
    z = T(1);
  }
  a = r;
  b = z;
  return g;
}

template <typename T>
RotmParam<T> rotmg(T& d1, T& d2, T& x1, T y1) {
  // netlib srotmg/drotmg, including the GAM rescaling loops.
  constexpr T kGam = T(4096);
  constexpr T kGamSq = kGam * kGam;
  constexpr T kRGamSq = T(1) / (kGam * kGam);
  RotmParam<T> p{T(-2), T(0), T(0), T(0), T(0)};
  T h11 = 0, h12 = 0, h21 = 0, h22 = 0;
  T flag;
  if (d1 < T(0)) {
    flag = T(-1);
    d1 = d2 = x1 = T(0);
  } else {
    const T p2 = d2 * y1;
    if (p2 == T(0)) {
      p.flag = T(-2);
      return p;
    }
    const T p1 = d1 * x1;
    const T q2 = p2 * y1;
    const T q1 = p1 * x1;
    if (std::abs(q1) > std::abs(q2)) {
      h21 = -y1 / x1;
      h12 = p2 / p1;
      const T u = T(1) - h12 * h21;
      if (u > T(0)) {
        flag = T(0);
        d1 /= u;
        d2 /= u;
        x1 *= u;
      } else {
        // Rounding made u non-positive: fall back to canceling everything.
        flag = T(-1);
        h11 = h12 = h21 = h22 = T(0);
        d1 = d2 = x1 = T(0);
      }
    } else {
      if (q2 < T(0)) {
        flag = T(-1);
        h11 = h12 = h21 = h22 = T(0);
        d1 = d2 = x1 = T(0);
      } else {
        flag = T(1);
        h11 = p1 / p2;
        h22 = x1 / y1;
        const T u = T(1) + h11 * h22;
        const T tmp = d2 / u;
        d2 = d1 / u;
        d1 = tmp;
        x1 = y1 * u;
      }
    }
    // Rescale d1.
    if (d1 != T(0)) {
      while (d1 <= kRGamSq || d1 >= kGamSq) {
        if (flag == T(0)) {
          h11 = h22 = T(1);
          flag = T(-1);
        } else {
          h21 = T(-1);
          h12 = T(1);
          flag = T(-1);
        }
        if (d1 <= kRGamSq) {
          d1 *= kGamSq;
          x1 /= kGam;
          h11 /= kGam;
          h12 /= kGam;
        } else {
          d1 /= kGamSq;
          x1 *= kGam;
          h11 *= kGam;
          h12 *= kGam;
        }
      }
    }
    // Rescale d2.
    if (d2 != T(0)) {
      while (std::abs(d2) <= kRGamSq || std::abs(d2) >= kGamSq) {
        if (flag == T(0)) {
          h11 = h22 = T(1);
          flag = T(-1);
        } else {
          h21 = T(-1);
          h12 = T(1);
          flag = T(-1);
        }
        if (std::abs(d2) <= kRGamSq) {
          d2 *= kGamSq;
          h21 /= kGam;
          h22 /= kGam;
        } else {
          d2 /= kGamSq;
          h21 *= kGam;
          h22 *= kGam;
        }
      }
    }
  }
  p.flag = flag;
  p.h11 = h11;
  p.h21 = h21;
  p.h12 = h12;
  p.h22 = h22;
  return p;
}

template <typename T>
void rot(VectorView<T> x, VectorView<T> y, T c, T s) {
  for (std::int64_t i = 0; i < x.size(); ++i) {
    const T xi = x[i], yi = y[i];
    x[i] = c * xi + s * yi;
    y[i] = c * yi - s * xi;
  }
}

template <typename T>
void rotm(VectorView<T> x, VectorView<T> y, const RotmParam<T>& p) {
  if (p.flag == T(-2)) return;
  T h11, h12, h21, h22;
  if (p.flag == T(-1)) {
    h11 = p.h11;
    h12 = p.h12;
    h21 = p.h21;
    h22 = p.h22;
  } else if (p.flag == T(0)) {
    h11 = T(1);
    h12 = p.h12;
    h21 = p.h21;
    h22 = T(1);
  } else {  // flag == 1
    h11 = p.h11;
    h12 = T(1);
    h21 = T(-1);
    h22 = p.h22;
  }
  for (std::int64_t i = 0; i < x.size(); ++i) {
    const T xi = x[i], yi = y[i];
    x[i] = h11 * xi + h12 * yi;
    y[i] = h21 * xi + h22 * yi;
  }
}

template <typename T>
void swap(VectorView<T> x, VectorView<T> y) {
  for (std::int64_t i = 0; i < x.size(); ++i) std::swap(x[i], y[i]);
}

template <typename T>
void scal(T alpha, VectorView<T> x) {
  for (std::int64_t i = 0; i < x.size(); ++i) x[i] *= alpha;
}

template <typename T>
void copy(VectorView<const T> x, VectorView<T> y) {
  for (std::int64_t i = 0; i < x.size(); ++i) y[i] = x[i];
}

template <typename T>
void axpy(T alpha, VectorView<const T> x, VectorView<T> y) {
  for (std::int64_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

template <typename T>
T dot(VectorView<const T> x, VectorView<const T> y) {
  T acc = T(0);
  for (std::int64_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

float sdsdot(float sb, VectorView<const float> x, VectorView<const float> y) {
  double acc = static_cast<double>(sb);
  for (std::int64_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return static_cast<float>(acc);
}

template <typename T>
T nrm2(VectorView<const T> x) {
  // Scaled sum-of-squares (netlib-style) to avoid overflow/underflow.
  T scale = T(0), ssq = T(1);
  for (std::int64_t i = 0; i < x.size(); ++i) {
    if (x[i] == T(0)) continue;
    const T absxi = std::abs(x[i]);
    if (scale < absxi) {
      const T r = scale / absxi;
      ssq = T(1) + ssq * r * r;
      scale = absxi;
    } else {
      const T r = absxi / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

template <typename T>
T asum(VectorView<const T> x) {
  T acc = T(0);
  for (std::int64_t i = 0; i < x.size(); ++i) acc += std::abs(x[i]);
  return acc;
}

template <typename T>
std::int64_t iamax(VectorView<const T> x) {
  if (x.size() == 0) return -1;
  std::int64_t best = 0;
  T best_abs = std::abs(x[0]);
  for (std::int64_t i = 1; i < x.size(); ++i) {
    const T a = std::abs(x[i]);
    if (a > best_abs) {
      best_abs = a;
      best = i;
    }
  }
  return best;
}

// Explicit instantiations.
#define FBLAS_REF_L1_INSTANTIATE(T)                                     \
  template Givens<T> rotg<T>(T&, T&);                                   \
  template RotmParam<T> rotmg<T>(T&, T&, T&, T);                        \
  template void rot<T>(VectorView<T>, VectorView<T>, T, T);             \
  template void rotm<T>(VectorView<T>, VectorView<T>,                   \
                        const RotmParam<T>&);                           \
  template void swap<T>(VectorView<T>, VectorView<T>);                  \
  template void scal<T>(T, VectorView<T>);                              \
  template void copy<T>(VectorView<const T>, VectorView<T>);            \
  template void axpy<T>(T, VectorView<const T>, VectorView<T>);         \
  template T dot<T>(VectorView<const T>, VectorView<const T>);          \
  template T nrm2<T>(VectorView<const T>);                              \
  template T asum<T>(VectorView<const T>);                              \
  template std::int64_t iamax<T>(VectorView<const T>);

FBLAS_REF_L1_INSTANTIATE(float)
FBLAS_REF_L1_INSTANTIATE(double)
#undef FBLAS_REF_L1_INSTANTIATE

}  // namespace fblas::ref
