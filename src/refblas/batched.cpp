#include "refblas/batched.hpp"

#include "refblas/level3.hpp"

namespace fblas::ref {

template <typename T>
void gemm_batched(std::int64_t batch, std::int64_t n, T alpha, const T* a,
                  const T* b, T beta, T* c) {
  const std::int64_t stride = n * n;
  for (std::int64_t i = 0; i < batch; ++i) {
    gemm<T>(Transpose::None, Transpose::None, alpha,
            MatrixView<const T>(a + i * stride, n, n),
            MatrixView<const T>(b + i * stride, n, n), beta,
            MatrixView<T>(c + i * stride, n, n));
  }
}

template <typename T>
void trsm_batched(std::int64_t batch, std::int64_t n, T alpha, const T* a,
                  T* x) {
  const std::int64_t stride = n * n;
  for (std::int64_t i = 0; i < batch; ++i) {
    trsm<T>(Side::Left, Uplo::Lower, Transpose::None, Diag::NonUnit, alpha,
            MatrixView<const T>(a + i * stride, n, n),
            MatrixView<T>(x + i * stride, n, n));
  }
}

template void gemm_batched<float>(std::int64_t, std::int64_t, float,
                                  const float*, const float*, float, float*);
template void gemm_batched<double>(std::int64_t, std::int64_t, double,
                                   const double*, const double*, double,
                                   double*);
template void trsm_batched<float>(std::int64_t, std::int64_t, float,
                                  const float*, float*);
template void trsm_batched<double>(std::int64_t, std::int64_t, double,
                                   const double*, double*);

}  // namespace fblas::ref
