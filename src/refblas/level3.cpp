#include "refblas/level3.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace fblas::ref {

template <typename T>
void gemm(Transpose ta, Transpose tb, T alpha, MatrixView<const T> A,
          MatrixView<const T> B, T beta, MatrixView<T> C) {
  const std::int64_t m = C.rows(), n = C.cols();
  const std::int64_t k = ta == Transpose::None ? A.cols() : A.rows();
  const std::int64_t am = ta == Transpose::None ? A.rows() : A.cols();
  const std::int64_t bk = tb == Transpose::None ? B.rows() : B.cols();
  const std::int64_t bn = tb == Transpose::None ? B.cols() : B.rows();
  FBLAS_REQUIRE(am == m && bk == k && bn == n, "gemm: shape mismatch");
  auto a = [&](std::int64_t i, std::int64_t p) -> T {
    return ta == Transpose::None ? A(i, p) : A(p, i);
  };
  auto b = [&](std::int64_t p, std::int64_t j) -> T {
    return tb == Transpose::None ? B(p, j) : B(j, p);
  };
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      T acc = T(0);
      for (std::int64_t p = 0; p < k; ++p) acc += a(i, p) * b(p, j);
      C(i, j) = alpha * acc + beta * C(i, j);
    }
  }
}

template <typename T>
void gemm_blocked(T alpha, MatrixView<const T> A, MatrixView<const T> B,
                  T beta, MatrixView<T> C, std::int64_t block) {
  const std::int64_t m = C.rows(), n = C.cols(), k = A.cols();
  FBLAS_REQUIRE(A.rows() == m && B.rows() == k && B.cols() == n,
                "gemm_blocked: shape mismatch");
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) C(i, j) *= beta;
  }
  for (std::int64_t ii = 0; ii < m; ii += block) {
    const std::int64_t iend = std::min(ii + block, m);
    for (std::int64_t pp = 0; pp < k; pp += block) {
      const std::int64_t pend = std::min(pp + block, k);
      for (std::int64_t jj = 0; jj < n; jj += block) {
        const std::int64_t jend = std::min(jj + block, n);
        for (std::int64_t i = ii; i < iend; ++i) {
          for (std::int64_t p = pp; p < pend; ++p) {
            const T aip = alpha * A(i, p);
            for (std::int64_t j = jj; j < jend; ++j) {
              C(i, j) += aip * B(p, j);
            }
          }
        }
      }
    }
  }
}

template <typename T>
void syrk(Uplo uplo, Transpose trans, T alpha, MatrixView<const T> A, T beta,
          MatrixView<T> C) {
  const std::int64_t n = C.rows();
  const std::int64_t k = trans == Transpose::None ? A.cols() : A.rows();
  FBLAS_REQUIRE(C.cols() == n, "syrk: C must be square");
  FBLAS_REQUIRE((trans == Transpose::None ? A.rows() : A.cols()) == n,
                "syrk: shape mismatch");
  auto a = [&](std::int64_t i, std::int64_t p) -> T {
    return trans == Transpose::None ? A(i, p) : A(p, i);
  };
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t j0 = uplo == Uplo::Lower ? 0 : i;
    const std::int64_t j1 = uplo == Uplo::Lower ? i + 1 : n;
    for (std::int64_t j = j0; j < j1; ++j) {
      T acc = T(0);
      for (std::int64_t p = 0; p < k; ++p) acc += a(i, p) * a(j, p);
      C(i, j) = alpha * acc + beta * C(i, j);
    }
  }
}

template <typename T>
void syr2k(Uplo uplo, Transpose trans, T alpha, MatrixView<const T> A,
           MatrixView<const T> B, T beta, MatrixView<T> C) {
  const std::int64_t n = C.rows();
  const std::int64_t k = trans == Transpose::None ? A.cols() : A.rows();
  FBLAS_REQUIRE(C.cols() == n, "syr2k: C must be square");
  auto a = [&](std::int64_t i, std::int64_t p) -> T {
    return trans == Transpose::None ? A(i, p) : A(p, i);
  };
  auto b = [&](std::int64_t i, std::int64_t p) -> T {
    return trans == Transpose::None ? B(i, p) : B(p, i);
  };
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t j0 = uplo == Uplo::Lower ? 0 : i;
    const std::int64_t j1 = uplo == Uplo::Lower ? i + 1 : n;
    for (std::int64_t j = j0; j < j1; ++j) {
      T acc = T(0);
      for (std::int64_t p = 0; p < k; ++p) {
        acc += a(i, p) * b(j, p) + b(i, p) * a(j, p);
      }
      C(i, j) = alpha * acc + beta * C(i, j);
    }
  }
}

template <typename T>
void trsm(Side side, Uplo uplo, Transpose trans, Diag diag, T alpha,
          MatrixView<const T> A, MatrixView<T> B) {
  const std::int64_t m = B.rows(), n = B.cols();
  const std::int64_t na = side == Side::Left ? m : n;
  FBLAS_REQUIRE(A.rows() == na && A.cols() == na, "trsm: shape mismatch");
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) B(i, j) *= alpha;
  }
  const bool lower = (uplo == Uplo::Lower) == (trans == Transpose::None);
  auto a = [&](std::int64_t i, std::int64_t j) -> T {
    return trans == Transpose::None ? A(i, j) : A(j, i);
  };
  if (side == Side::Left) {
    // Solve op(A) X = B, row block at a time (forward or backward).
    if (lower) {
      for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t p = 0; p < i; ++p) {
          const T aip = a(i, p);
          for (std::int64_t j = 0; j < n; ++j) B(i, j) -= aip * B(p, j);
        }
        if (diag == Diag::NonUnit) {
          const T d = a(i, i);
          for (std::int64_t j = 0; j < n; ++j) B(i, j) /= d;
        }
      }
    } else {
      for (std::int64_t i = m - 1; i >= 0; --i) {
        for (std::int64_t p = i + 1; p < m; ++p) {
          const T aip = a(i, p);
          for (std::int64_t j = 0; j < n; ++j) B(i, j) -= aip * B(p, j);
        }
        if (diag == Diag::NonUnit) {
          const T d = a(i, i);
          for (std::int64_t j = 0; j < n; ++j) B(i, j) /= d;
        }
      }
    }
  } else {
    // Solve X op(A) = B, column at a time. Column j of X depends on
    // columns p<j (lower: iterate ascending uses A(p,j) below diagonal —
    // for X A = B with A lower triangular, B(:,j) -= X(:,p) A(p,j) for
    // p > j, so iterate descending).
    if (lower) {
      for (std::int64_t j = n - 1; j >= 0; --j) {
        for (std::int64_t p = j + 1; p < n; ++p) {
          const T apj = a(p, j);
          for (std::int64_t i = 0; i < m; ++i) B(i, j) -= B(i, p) * apj;
        }
        if (diag == Diag::NonUnit) {
          const T d = a(j, j);
          for (std::int64_t i = 0; i < m; ++i) B(i, j) /= d;
        }
      }
    } else {
      for (std::int64_t j = 0; j < n; ++j) {
        for (std::int64_t p = 0; p < j; ++p) {
          const T apj = a(p, j);
          for (std::int64_t i = 0; i < m; ++i) B(i, j) -= B(i, p) * apj;
        }
        if (diag == Diag::NonUnit) {
          const T d = a(j, j);
          for (std::int64_t i = 0; i < m; ++i) B(i, j) /= d;
        }
      }
    }
  }
}

#define FBLAS_REF_L3_INSTANTIATE(T)                                          \
  template void gemm<T>(Transpose, Transpose, T, MatrixView<const T>,        \
                        MatrixView<const T>, T, MatrixView<T>);              \
  template void gemm_blocked<T>(T, MatrixView<const T>, MatrixView<const T>, \
                                T, MatrixView<T>, std::int64_t);             \
  template void syrk<T>(Uplo, Transpose, T, MatrixView<const T>, T,          \
                        MatrixView<T>);                                      \
  template void syr2k<T>(Uplo, Transpose, T, MatrixView<const T>,            \
                         MatrixView<const T>, T, MatrixView<T>);             \
  template void trsm<T>(Side, Uplo, Transpose, Diag, T,                      \
                        MatrixView<const T>, MatrixView<T>);

FBLAS_REF_L3_INSTANTIATE(float)
FBLAS_REF_L3_INSTANTIATE(double)
#undef FBLAS_REF_L3_INSTANTIATE

}  // namespace fblas::ref
