// Reference CPU implementations of the BLAS Level-1 routines.
//
// These serve two roles in the reproduction: (1) the numerical oracle the
// streaming modules are tested against, and (2) the CPU baseline of the
// paper's evaluation (stand-in for MKL; see DESIGN.md substitutions).
// Semantics follow the netlib reference BLAS.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/types.hpp"
#include "common/view.hpp"

namespace fblas::ref {

/// Plane rotation parameters produced by rotg/rotmg.
template <typename T>
struct Givens {
  T c, s;
};

/// Modified-Givens parameter block (flag + 2x2 H), netlib layout.
template <typename T>
struct RotmParam {
  T flag;  // -2: identity, -1: full H, 0: off-diagonal, 1: diagonal
  T h11, h21, h12, h22;
};

/// Constructs a Givens rotation zeroing b: [c s; -s c] [a; b] = [r; 0].
/// On return a holds r and b holds the reconstruction value z.
template <typename T>
Givens<T> rotg(T& a, T& b);

/// Constructs a modified Givens rotation (netlib *rotmg).
/// Updates d1, d2, x1 in place; y1 is read-only.
template <typename T>
RotmParam<T> rotmg(T& d1, T& d2, T& x1, T y1);

/// Applies a plane rotation to (x, y).
template <typename T>
void rot(VectorView<T> x, VectorView<T> y, T c, T s);

/// Applies a modified Givens rotation to (x, y).
template <typename T>
void rotm(VectorView<T> x, VectorView<T> y, const RotmParam<T>& p);

template <typename T>
void swap(VectorView<T> x, VectorView<T> y);

/// x = alpha * x
template <typename T>
void scal(T alpha, VectorView<T> x);

/// y = x
template <typename T>
void copy(VectorView<const T> x, VectorView<T> y);

/// y = alpha * x + y
template <typename T>
void axpy(T alpha, VectorView<const T> x, VectorView<T> y);

/// Returns x . y
template <typename T>
T dot(VectorView<const T> x, VectorView<const T> y);

/// Single-precision dot with double accumulation plus offset (netlib SDSDOT).
float sdsdot(float sb, VectorView<const float> x, VectorView<const float> y);

/// Euclidean norm with overflow-safe scaling.
template <typename T>
T nrm2(VectorView<const T> x);

/// Sum of absolute values.
template <typename T>
T asum(VectorView<const T> x);

/// Index of the first element with maximum |x_i| (0-based; -1 if empty).
template <typename T>
std::int64_t iamax(VectorView<const T> x);

}  // namespace fblas::ref
