// Reference CPU implementations of the BLAS Level-3 routines used by the
// paper (GEMM, SYRK, SYR2K, TRSM). Row-major storage. `gemm` has a blocked
// variant used as the CPU performance baseline (the MKL stand-in).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "common/view.hpp"

namespace fblas::ref {

/// C = alpha * op(A) * op(B) + beta * C. C is m x n, the contraction
/// dimension is k. Simple triple loop — the numerical oracle.
template <typename T>
void gemm(Transpose ta, Transpose tb, T alpha, MatrixView<const T> A,
          MatrixView<const T> B, T beta, MatrixView<T> C);

/// Cache-blocked GEMM (no transposes) used for CPU timing baselines.
template <typename T>
void gemm_blocked(T alpha, MatrixView<const T> A, MatrixView<const T> B,
                  T beta, MatrixView<T> C, std::int64_t block = 64);

/// C = alpha * op(A) * op(A)^T + beta * C on the `uplo` triangle.
/// trans == None: C (n x n) = A (n x k) A^T;  trans == Trans: A^T A.
template <typename T>
void syrk(Uplo uplo, Transpose trans, T alpha, MatrixView<const T> A, T beta,
          MatrixView<T> C);

/// C = alpha * (op(A) op(B)^T + op(B) op(A)^T) + beta * C on `uplo`.
template <typename T>
void syr2k(Uplo uplo, Transpose trans, T alpha, MatrixView<const T> A,
           MatrixView<const T> B, T beta, MatrixView<T> C);

/// Solves op(A) * X = alpha * B (side == Left) or X * op(A) = alpha * B
/// (side == Right) in place; B enters holding the right-hand sides.
template <typename T>
void trsm(Side side, Uplo uplo, Transpose trans, Diag diag, T alpha,
          MatrixView<const T> A, MatrixView<T> B);

}  // namespace fblas::ref
