// Batched small-matrix routines: the CPU counterpart of the paper's
// Table V experiment (fully-unrolled GEMM/TRSM of size 4 versus MKL's
// batched routines, thousands of invocations over small inputs).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "common/view.hpp"

namespace fblas::ref {

/// C[b] = alpha * A[b] * B[b] + beta * C[b] for `batch` independent
/// problems of identical square size n, stored contiguously (stride n*n).
template <typename T>
void gemm_batched(std::int64_t batch, std::int64_t n, T alpha, const T* a,
                  const T* b, T beta, T* c);

/// In-place X[b] <- inv(A[b]) * alpha * X[b] for `batch` lower-triangular
/// non-unit systems of size n, stored contiguously.
template <typename T>
void trsm_batched(std::int64_t batch, std::int64_t n, T alpha, const T* a,
                  T* x);

}  // namespace fblas::ref
