// Reference CPU implementations of the BLAS Level-2 routines used by the
// paper (GEMV, TRSV, GER, SYR, SYR2). Row-major storage throughout.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "common/view.hpp"

namespace fblas::ref {

/// y = alpha * op(A) * x + beta * y.  A is rows x cols; op(A)=A or A^T.
template <typename T>
void gemv(Transpose trans, T alpha, MatrixView<const T> A,
          VectorView<const T> x, T beta, VectorView<T> y);

/// Solves op(A) * x = b in place (x enters holding b). A is n x n
/// triangular per `uplo`; unit diagonal skipped when diag == Unit.
template <typename T>
void trsv(Uplo uplo, Transpose trans, Diag diag, MatrixView<const T> A,
          VectorView<T> x);

/// A += alpha * x * y^T (general rank-1 update).
template <typename T>
void ger(T alpha, VectorView<const T> x, VectorView<const T> y,
         MatrixView<T> A);

/// A += alpha * x * x^T, touching only the `uplo` triangle.
template <typename T>
void syr(Uplo uplo, T alpha, VectorView<const T> x, MatrixView<T> A);

/// A += alpha * (x * y^T + y * x^T), touching only the `uplo` triangle.
template <typename T>
void syr2(Uplo uplo, T alpha, VectorView<const T> x, VectorView<const T> y,
          MatrixView<T> A);

}  // namespace fblas::ref
