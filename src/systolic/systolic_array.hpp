// Explicit cycle-stepped simulation of the paper's 2-D systolic GEMM
// array (Sec. III-C, Fig. 3): a PR x PC grid of processing elements fed by
// Feed-A modules on the left edge and Feed-B modules on the top edge,
// drained by Drain-C modules at the bottom. Every PE has a constant number
// of data connections (6: a/b/acc in, a/b/acc out) independent of the grid
// size — the property that makes the architecture scale where a naive
// unrolled loop nest would hit fan-out limits.
//
// This component is the output-stationary, ratio-1 realization (each PE
// owns one element of the C tile). The core library's `fblas::core::gemm`
// coroutine is the time-multiplexed single-kernel equivalent used at
// scale; tests assert that both agree with the reference BLAS.
//
// In-grid ABFT (AbftConfig): the grid optionally carries a Huang–Abraham
// checksum row and checksum column — the feeders emit running operand
// sums beside the data, an extra rank of accumulators in the drain chain
// maintains C·e and eᵀ·C per tile — so a corrupted accumulator is
// detected as the tile drains, localized to its PE by the intersecting
// row/column residuals, and (for a single fault per tile) corrected in
// place by replaying that PE's dot product: no rollback, no
// re-execution, and the corrected tile is bit-identical to a fault-free
// run because the replay uses the grid's own accumulation order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/view.hpp"

namespace fblas::systolic {

/// One processing element: registers for the pass-through operands, the
/// stationary accumulator, and a drain register.
template <typename T>
struct Pe {
  T a_reg{};
  T b_reg{};
  bool a_valid = false;
  bool b_valid = false;
  T acc{};
  T drain_reg{};
  bool drain_valid = false;
  std::uint64_t macs = 0;    ///< statistics: MACs performed by this PE
  std::uint64_t faults = 0;  ///< ABFT: faults localized to this PE
};

/// In-grid ABFT (Huang–Abraham) for the PE grid: a checksum column fed by
/// Feed-B's running column sums and a checksum row fed by Feed-A's running
/// row sums ride along with each tile, so the drain chain can compare the
/// accumulators against C·e and eᵀ·C the moment the tile drains.
struct AbftConfig {
  bool enabled = false;
  /// Replay-correct a tile whose residuals intersect in exactly one PE
  /// (single fault). Off: localize and report only.
  bool correct_single_faults = true;
  /// Multiplier on the analytic floating-point bound used as the residual
  /// acceptance tolerance (same convention as verify::Options).
  double tolerance_scale = 32.0;
};

/// A one-shot PE-targeted fault (the injector's plan): XOR an exponent
/// bit of the product of MAC number `mac` (0-based, per tile) performed
/// by PE (r, c) during tile `tile` (linear index in the row-major tile
/// sweep of multiply()). If the planned MAC's product is exactly zero the
/// flip is postponed to the PE's next nonzero product; a plan that never
/// reaches a nonzero product does not fire.
struct PeFaultPlan {
  std::int64_t tile = 0;
  int r = 0;
  int c = 0;
  std::int64_t mac = 0;
};

/// One fault event the checksum rank localized (and possibly corrected).
struct LocalizedFault {
  std::int64_t tile_row = -1;  ///< tile index along m (row0 / PR)
  std::int64_t tile_col = -1;  ///< tile index along n (col0 / PC)
  int r = -1;                  ///< victim PE row within the grid
  int c = -1;                  ///< victim PE column within the grid
  double residual = 0.0;       ///< row-checksum residual at detection
  bool corrected = false;
};

/// ABFT outcome of one multiply() (reset at every call).
struct AbftReport {
  std::uint64_t tiles_checked = 0;
  std::uint64_t faults_detected = 0;  ///< tiles with any flagged residual
  std::uint64_t faults_localized = 0; ///< pinned to exactly one PE
  std::uint64_t faults_corrected = 0; ///< fixed in place, no re-execution
  std::uint64_t uncorrectable_tiles = 0;  ///< multi-fault / inconsistent
  std::vector<LocalizedFault> faults;     ///< localized events, tile order
  std::string first_uncorrectable;  ///< diagnosis of the first bad tile
};

template <typename T>
class SystolicArray {
 public:
  SystolicArray(int pe_rows, int pe_cols);

  int pe_rows() const { return pr_; }
  int pe_cols() const { return pc_; }

  /// Data connections per PE (in + out), constant by construction.
  static constexpr int connections_per_pe() { return 6; }

  /// Computes C = A * B (A: m x k, B: k x n) by sweeping PR x PC tiles of
  /// C through the array, with skewed wavefront feeding and a shifted
  /// drain chain. Returns the total simulated cycle count. With ABFT on,
  /// every tile is checked (and single-fault tiles corrected) as it
  /// drains; the outcome is in report().
  std::uint64_t multiply(MatrixView<const T> A, MatrixView<const T> B,
                         MatrixView<T> C);

  /// Cycles one tile takes: skewed pipeline fill + K MAC wavefronts +
  /// drain of PR rows through the column chains. The ABFT checksum rank
  /// adds one extra column fill, one extra row fill and one extra drain
  /// step — a constant 3 cycles, independent of k.
  std::uint64_t cycles_per_tile(std::int64_t k) const {
    return static_cast<std::uint64_t>(k + pr_ - 1 + pc_ - 1 + pr_) +
           (abft_.enabled ? 3u : 0u);
  }

  /// Total MACs performed since construction (across all PEs).
  std::uint64_t total_macs() const;

  /// MACs performed by PE (r, c) — used to assert load balance.
  std::uint64_t pe_macs(int r, int c) const {
    return grid_[static_cast<std::size_t>(r * pc_ + c)].macs;
  }

  // --- In-grid ABFT -------------------------------------------------------
  void set_abft(const AbftConfig& cfg) { abft_ = cfg; }
  const AbftConfig& abft() const { return abft_; }

  /// ABFT outcome of the most recent multiply().
  const AbftReport& report() const { return report_; }

  /// Faults the checksum rank localized to PE (r, c) since construction
  /// (the fault-count analogue of pe_macs).
  std::uint64_t pe_faults(int r, int c) const {
    return grid_[static_cast<std::size_t>(r * pc_ + c)].faults;
  }

  /// Arms a one-shot PE fault for the next multiply(); arm twice to model
  /// a double fault. Plans are cleared when multiply() returns.
  void arm_fault(const PeFaultPlan& plan) { pending_.push_back({plan, false}); }

  /// Armed plans that actually fired during the last multiply().
  std::uint64_t faults_fired() const { return faults_fired_; }

 private:
  struct ArmedFault {
    PeFaultPlan plan;
    bool fired = false;
  };

  /// Returns the number of corrections performed in this tile (each one
  /// costs a k-cycle replay through the checksum rank).
  std::uint64_t run_tile(MatrixView<const T> A, MatrixView<const T> B,
                         MatrixView<T> C, std::int64_t row0,
                         std::int64_t col0, std::int64_t th, std::int64_t tw,
                         std::int64_t k, std::int64_t tile);
  void check_tile(MatrixView<const T> A, MatrixView<const T> B,
                  std::int64_t row0, std::int64_t col0, std::int64_t th,
                  std::int64_t tw, std::int64_t k, std::uint64_t* corrected);

  int pr_, pc_;
  std::vector<Pe<T>> grid_;
  AbftConfig abft_;
  AbftReport report_;
  std::vector<ArmedFault> pending_;
  std::uint64_t faults_fired_ = 0;
};

}  // namespace fblas::systolic
