// Explicit cycle-stepped simulation of the paper's 2-D systolic GEMM
// array (Sec. III-C, Fig. 3): a PR x PC grid of processing elements fed by
// Feed-A modules on the left edge and Feed-B modules on the top edge,
// drained by Drain-C modules at the bottom. Every PE has a constant number
// of data connections (6: a/b/acc in, a/b/acc out) independent of the grid
// size — the property that makes the architecture scale where a naive
// unrolled loop nest would hit fan-out limits.
//
// This component is the output-stationary, ratio-1 realization (each PE
// owns one element of the C tile). The core library's `fblas::core::gemm`
// coroutine is the time-multiplexed single-kernel equivalent used at
// scale; tests assert that both agree with the reference BLAS.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/view.hpp"

namespace fblas::systolic {

/// One processing element: registers for the pass-through operands, the
/// stationary accumulator, and a drain register.
template <typename T>
struct Pe {
  T a_reg{};
  T b_reg{};
  bool a_valid = false;
  bool b_valid = false;
  T acc{};
  T drain_reg{};
  bool drain_valid = false;
  std::uint64_t macs = 0;  ///< statistics: MACs performed by this PE
};

template <typename T>
class SystolicArray {
 public:
  SystolicArray(int pe_rows, int pe_cols);

  int pe_rows() const { return pr_; }
  int pe_cols() const { return pc_; }

  /// Data connections per PE (in + out), constant by construction.
  static constexpr int connections_per_pe() { return 6; }

  /// Computes C = A * B (A: m x k, B: k x n) by sweeping PR x PC tiles of
  /// C through the array, with skewed wavefront feeding and a shifted
  /// drain chain. Returns the total simulated cycle count.
  std::uint64_t multiply(MatrixView<const T> A, MatrixView<const T> B,
                         MatrixView<T> C);

  /// Cycles one tile takes: skewed pipeline fill + K MAC wavefronts +
  /// drain of PR rows through the column chains.
  std::uint64_t cycles_per_tile(std::int64_t k) const {
    return static_cast<std::uint64_t>(k + pr_ - 1 + pc_ - 1 + pr_);
  }

  /// Total MACs performed since construction (across all PEs).
  std::uint64_t total_macs() const;

  /// MACs performed by PE (r, c) — used to assert load balance.
  std::uint64_t pe_macs(int r, int c) const {
    return grid_[static_cast<std::size_t>(r * pc_ + c)].macs;
  }

 private:
  void run_tile(MatrixView<const T> A, MatrixView<const T> B,
                MatrixView<T> C, std::int64_t row0, std::int64_t col0,
                std::int64_t th, std::int64_t tw, std::int64_t k);

  int pr_, pc_;
  std::vector<Pe<T>> grid_;
};

}  // namespace fblas::systolic
