#include "systolic/systolic_array.hpp"

#include <algorithm>

#include "common/types.hpp"

namespace fblas::systolic {

template <typename T>
SystolicArray<T>::SystolicArray(int pe_rows, int pe_cols)
    : pr_(pe_rows), pc_(pe_cols) {
  FBLAS_REQUIRE(pe_rows >= 1 && pe_cols >= 1,
                "systolic grid dimensions must be positive");
  grid_.resize(static_cast<std::size_t>(pr_ * pc_));
}

template <typename T>
std::uint64_t SystolicArray<T>::total_macs() const {
  std::uint64_t total = 0;
  for (const auto& pe : grid_) total += pe.macs;
  return total;
}

template <typename T>
void SystolicArray<T>::run_tile(MatrixView<const T> A, MatrixView<const T> B,
                                MatrixView<T> C, std::int64_t row0,
                                std::int64_t col0, std::int64_t th,
                                std::int64_t tw, std::int64_t k) {
  auto pe = [&](int r, int c) -> Pe<T>& {
    return grid_[static_cast<std::size_t>(r * pc_ + c)];
  };
  for (auto& p : grid_) {
    p.acc = T(0);
    p.a_valid = p.b_valid = p.drain_valid = false;
  }
  // ---- Compute phase: skewed wavefronts ------------------------------
  // Feed-A(r) injects A(row0+r, t-r) at cycle t; Feed-B(c) injects
  // B(t-c, col0+c). Operands meet at PE(r, c) after r+c forwarding hops.
  const std::int64_t last_cycle = (k - 1) + (pr_ - 1) + (pc_ - 1);
  for (std::int64_t t = 0; t <= last_cycle; ++t) {
    // Register transfer: latch new operands from the left/top neighbour
    // (edge PEs latch from the feeders), sweeping from the far corner so
    // each PE reads its neighbour's *previous* value.
    for (int r = pr_ - 1; r >= 0; --r) {
      for (int c = pc_ - 1; c >= 0; --c) {
        Pe<T>& p = pe(r, c);
        if (c > 0) {
          p.a_reg = pe(r, c - 1).a_reg;
          p.a_valid = pe(r, c - 1).a_valid;
        } else {
          const std::int64_t j = t - r;
          p.a_valid = r < th && j >= 0 && j < k;
          if (p.a_valid) p.a_reg = A(row0 + r, j);
        }
        if (r > 0) {
          p.b_reg = pe(r - 1, c).b_reg;
          p.b_valid = pe(r - 1, c).b_valid;
        } else {
          const std::int64_t j = t - c;
          p.b_valid = c < tw && j >= 0 && j < k;
          if (p.b_valid) p.b_reg = B(j, col0 + c);
        }
      }
    }
    // MAC on the freshly latched pair.
    for (auto& p : grid_) {
      if (p.a_valid && p.b_valid) {
        p.acc += p.a_reg * p.b_reg;
        ++p.macs;
      }
    }
  }
  // ---- Drain phase: accumulators shift down the column chains --------
  for (auto& p : grid_) {
    p.drain_reg = p.acc;
    p.drain_valid = true;
  }
  for (int step = 0; step < pr_; ++step) {
    // Bottom row currently holds the values of original row pr-1-step.
    const std::int64_t r_orig = pr_ - 1 - step;
    if (r_orig < th) {
      for (int c = 0; c < std::min<std::int64_t>(pc_, tw); ++c) {
        C(row0 + r_orig, col0 + c) = pe(pr_ - 1, c).drain_reg;
      }
    }
    // Shift every column chain down by one.
    for (int r = pr_ - 1; r > 0; --r) {
      for (int c = 0; c < pc_; ++c) {
        pe(r, c).drain_reg = pe(r - 1, c).drain_reg;
      }
    }
  }
}

template <typename T>
std::uint64_t SystolicArray<T>::multiply(MatrixView<const T> A,
                                         MatrixView<const T> B,
                                         MatrixView<T> C) {
  const std::int64_t m = A.rows(), k = A.cols(), n = B.cols();
  FBLAS_REQUIRE(B.rows() == k && C.rows() == m && C.cols() == n,
                "systolic multiply: shape mismatch");
  std::uint64_t cycles = 0;
  for (std::int64_t row0 = 0; row0 < m; row0 += pr_) {
    const std::int64_t th = std::min<std::int64_t>(pr_, m - row0);
    for (std::int64_t col0 = 0; col0 < n; col0 += pc_) {
      const std::int64_t tw = std::min<std::int64_t>(pc_, n - col0);
      run_tile(A, B, C, row0, col0, th, tw, k);
      cycles += cycles_per_tile(k);
    }
  }
  return cycles;
}

template class SystolicArray<float>;
template class SystolicArray<double>;

}  // namespace fblas::systolic
