#include "systolic/systolic_array.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/types.hpp"
#include "verify/policy.hpp"

namespace fblas::systolic {
namespace {

// PE-fault materialization: XOR an exponent bit of the product, so a
// corrupted MAC is many orders of magnitude off and cannot hide under the
// residual tolerance. For operands in (-2, 2) the flipped value stays
// finite (the exponent gains +2^7 / +2^10 without saturating).
template <typename T>
T flip_product(T v) {
  if constexpr (sizeof(T) == 4) {
    std::uint32_t u;
    std::memcpy(&u, &v, sizeof(u));
    u ^= 0x40000000u;
    std::memcpy(&v, &u, sizeof(u));
  } else {
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    u ^= 0x4000000000000000ull;
    std::memcpy(&v, &u, sizeof(u));
  }
  return v;
}

bool flagged(double residual, double tol) {
  return !std::isfinite(residual) || std::abs(residual) > tol;
}

}  // namespace

template <typename T>
SystolicArray<T>::SystolicArray(int pe_rows, int pe_cols)
    : pr_(pe_rows), pc_(pe_cols) {
  FBLAS_REQUIRE(pe_rows >= 1 && pe_cols >= 1,
                "systolic grid dimensions must be positive");
  grid_.resize(static_cast<std::size_t>(pr_ * pc_));
}

template <typename T>
std::uint64_t SystolicArray<T>::total_macs() const {
  std::uint64_t total = 0;
  for (const auto& pe : grid_) total += pe.macs;
  return total;
}

// Compares the drained tile against the checksum rank's predictions and
// resolves the residual pattern: intersecting row/column residuals pin a
// single fault to its PE, which is then corrected (when allowed) by
// replaying that PE's dot product in the grid's own accumulation order —
// so a corrected tile is bit-identical to a fault-free run. Any other
// flagged pattern (>=2 rows or columns, or inconsistent residuals) is a
// multi-fault tile: recorded uncorrectable, for the host to reject.
template <typename T>
void SystolicArray<T>::check_tile(MatrixView<const T> A, MatrixView<const T> B,
                                  std::int64_t row0, std::int64_t col0,
                                  std::int64_t th, std::int64_t tw,
                                  std::int64_t k, std::uint64_t* corrected) {
  auto pe = [&](int r, int c) -> Pe<T>& {
    return grid_[static_cast<std::size_t>(r * pc_ + c)];
  };
  ++report_.tiles_checked;

  // What the feeders emitted alongside the data: Feed-B's running column
  // sums (driving the checksum COLUMN, which accumulates per-row sums
  // C·e) and Feed-A's running row sums (driving the checksum ROW, eᵀ·C).
  // Checksum arithmetic is double regardless of the stream precision.
  std::vector<double> bsum(static_cast<std::size_t>(k), 0.0);
  std::vector<double> babs(static_cast<std::size_t>(k), 0.0);
  std::vector<double> asum(static_cast<std::size_t>(k), 0.0);
  std::vector<double> aabs(static_cast<std::size_t>(k), 0.0);
  for (std::int64_t j = 0; j < k; ++j) {
    for (std::int64_t c = 0; c < tw; ++c) {
      const double b = static_cast<double>(B(j, col0 + c));
      bsum[static_cast<std::size_t>(j)] += b;
      babs[static_cast<std::size_t>(j)] += std::abs(b);
    }
    for (std::int64_t r = 0; r < th; ++r) {
      const double a = static_cast<double>(A(row0 + r, j));
      asum[static_cast<std::size_t>(j)] += a;
      aabs[static_cast<std::size_t>(j)] += std::abs(a);
    }
  }
  std::vector<double> res_row(static_cast<std::size_t>(th), 0.0);
  std::vector<double> tol_row(static_cast<std::size_t>(th), 0.0);
  std::vector<double> res_col(static_cast<std::size_t>(tw), 0.0);
  std::vector<double> tol_col(static_cast<std::size_t>(tw), 0.0);
  const double scale = abft_.tolerance_scale;
  for (std::int64_t r = 0; r < th; ++r) {
    double pred = 0.0, mag = 0.0, meas = 0.0;
    for (std::int64_t j = 0; j < k; ++j) {
      const double a = static_cast<double>(A(row0 + r, j));
      pred += a * bsum[static_cast<std::size_t>(j)];
      mag += std::abs(a) * babs[static_cast<std::size_t>(j)];
    }
    for (int c = 0; c < static_cast<int>(tw); ++c) {
      meas += static_cast<double>(pe(static_cast<int>(r), c).acc);
    }
    res_row[static_cast<std::size_t>(r)] = meas - pred;
    tol_row[static_cast<std::size_t>(r)] =
        verify::rel_bound<T>(k * tw, scale) * mag;
  }
  for (std::int64_t c = 0; c < tw; ++c) {
    double pred = 0.0, mag = 0.0, meas = 0.0;
    for (std::int64_t j = 0; j < k; ++j) {
      const double b = static_cast<double>(B(j, col0 + c));
      pred += asum[static_cast<std::size_t>(j)] * b;
      mag += aabs[static_cast<std::size_t>(j)] * std::abs(b);
    }
    for (int r = 0; r < static_cast<int>(th); ++r) {
      meas += static_cast<double>(pe(r, static_cast<int>(c)).acc);
    }
    res_col[static_cast<std::size_t>(c)] = meas - pred;
    tol_col[static_cast<std::size_t>(c)] =
        verify::rel_bound<T>(k * th, scale) * mag;
  }

  int flagged_rows = 0, flagged_cols = 0, fr = -1, fc = -1;
  for (std::int64_t r = 0; r < th; ++r) {
    if (flagged(res_row[static_cast<std::size_t>(r)],
                tol_row[static_cast<std::size_t>(r)])) {
      ++flagged_rows;
      fr = static_cast<int>(r);
    }
  }
  for (std::int64_t c = 0; c < tw; ++c) {
    if (flagged(res_col[static_cast<std::size_t>(c)],
                tol_col[static_cast<std::size_t>(c)])) {
      ++flagged_cols;
      fc = static_cast<int>(c);
    }
  }
  if (flagged_rows == 0 && flagged_cols == 0) return;  // clean tile

  ++report_.faults_detected;
  const std::int64_t ti = row0 / pr_, tj = col0 / pc_;
  auto uncorrectable = [&](const std::string& why) {
    ++report_.uncorrectable_tiles;
    if (report_.first_uncorrectable.empty()) {
      std::ostringstream os;
      os << "tile (" << ti << ", " << tj << "): " << why << " ("
         << flagged_rows << " row residual(s), " << flagged_cols
         << " column residual(s))";
      report_.first_uncorrectable = os.str();
    }
  };
  if (flagged_rows != 1 || flagged_cols != 1) {
    uncorrectable("residuals do not intersect in one PE — multiple faults");
    return;
  }
  const double rr = res_row[static_cast<std::size_t>(fr)];
  const double rc = res_col[static_cast<std::size_t>(fc)];
  // A single fault produces the SAME delta in its row and column sums;
  // disagreeing residuals mean two faults conspired into one row and one
  // column, which a single replay could not explain.
  const bool consistent =
      std::isfinite(rr) && std::isfinite(rc) &&
      std::abs(rr - rc) <= tol_row[static_cast<std::size_t>(fr)] +
                               tol_col[static_cast<std::size_t>(fc)] +
                               1e-6 * std::max(std::abs(rr), std::abs(rc));
  if (!consistent) {
    uncorrectable("row/column residuals disagree — masked multiple faults");
    return;
  }
  ++report_.faults_localized;
  Pe<T>& victim = pe(fr, fc);
  ++victim.faults;
  LocalizedFault lf;
  lf.tile_row = ti;
  lf.tile_col = tj;
  lf.r = fr;
  lf.c = fc;
  lf.residual = rr;
  if (abft_.correct_single_faults) {
    // Replay the victim's dot product in the PE's own accumulation order
    // (ascending j, precision T): the corrected accumulator is bit-equal
    // to what a fault-free pass would have produced.
    T acc = T(0);
    for (std::int64_t j = 0; j < k; ++j) {
      acc += A(row0 + fr, j) * B(j, col0 + fc);
    }
    const double delta =
        static_cast<double>(victim.acc) - static_cast<double>(acc);
    victim.acc = acc;
    // The replay must explain the residuals it was blamed for; if not,
    // the localization was a coincidence of several faults.
    if (flagged(rr - delta, tol_row[static_cast<std::size_t>(fr)]) ||
        flagged(rc - delta, tol_col[static_cast<std::size_t>(fc)])) {
      --report_.faults_localized;
      --victim.faults;
      uncorrectable("replayed correction does not explain the residuals");
      return;
    }
    lf.corrected = true;
    ++report_.faults_corrected;
    ++*corrected;
  }
  report_.faults.push_back(lf);
}

template <typename T>
std::uint64_t SystolicArray<T>::run_tile(MatrixView<const T> A,
                                         MatrixView<const T> B,
                                         MatrixView<T> C, std::int64_t row0,
                                         std::int64_t col0, std::int64_t th,
                                         std::int64_t tw, std::int64_t k,
                                         std::int64_t tile) {
  auto pe = [&](int r, int c) -> Pe<T>& {
    return grid_[static_cast<std::size_t>(r * pc_ + c)];
  };
  for (auto& p : grid_) {
    p.acc = T(0);
    p.a_valid = p.b_valid = p.drain_valid = false;
  }
  // Armed faults targeting this tile, with the victim PE's MAC count at
  // tile entry so the plan's per-tile MAC index can be matched.
  struct Live {
    ArmedFault* af;
    std::uint64_t base;
  };
  std::vector<Live> live;
  for (ArmedFault& af : pending_) {
    if (!af.fired && af.plan.tile == tile && af.plan.r < th &&
        af.plan.c < tw) {
      live.push_back({&af, pe(af.plan.r, af.plan.c).macs});
    }
  }
  // ---- Compute phase: skewed wavefronts ------------------------------
  // Feed-A(r) injects A(row0+r, t-r) at cycle t; Feed-B(c) injects
  // B(t-c, col0+c). Operands meet at PE(r, c) after r+c forwarding hops.
  const std::int64_t last_cycle = (k - 1) + (pr_ - 1) + (pc_ - 1);
  for (std::int64_t t = 0; t <= last_cycle; ++t) {
    // Register transfer: latch new operands from the left/top neighbour
    // (edge PEs latch from the feeders), sweeping from the far corner so
    // each PE reads its neighbour's *previous* value.
    for (int r = pr_ - 1; r >= 0; --r) {
      for (int c = pc_ - 1; c >= 0; --c) {
        Pe<T>& p = pe(r, c);
        if (c > 0) {
          p.a_reg = pe(r, c - 1).a_reg;
          p.a_valid = pe(r, c - 1).a_valid;
        } else {
          const std::int64_t j = t - r;
          p.a_valid = r < th && j >= 0 && j < k;
          if (p.a_valid) p.a_reg = A(row0 + r, j);
        }
        if (r > 0) {
          p.b_reg = pe(r - 1, c).b_reg;
          p.b_valid = pe(r - 1, c).b_valid;
        } else {
          const std::int64_t j = t - c;
          p.b_valid = c < tw && j >= 0 && j < k;
          if (p.b_valid) p.b_reg = B(j, col0 + c);
        }
      }
    }
    // MAC on the freshly latched pair.
    for (int r = 0; r < pr_; ++r) {
      for (int c = 0; c < pc_; ++c) {
        Pe<T>& p = pe(r, c);
        if (!(p.a_valid && p.b_valid)) continue;
        T prod = p.a_reg * p.b_reg;
        for (Live& lv : live) {
          if (lv.af->fired || lv.af->plan.r != r || lv.af->plan.c != c) {
            continue;
          }
          // Fire at the planned per-tile MAC index, postponing past
          // exactly-zero products (a flipped zero is still zero-delta in
          // the accumulator for the worst corruption patterns; requiring
          // a nonzero product guarantees the fault is live).
          if (p.macs - lv.base >=
                  static_cast<std::uint64_t>(lv.af->plan.mac) &&
              prod != T(0)) {
            prod = flip_product(prod);
            lv.af->fired = true;
            ++faults_fired_;
          }
        }
        p.acc += prod;
        ++p.macs;
      }
    }
  }
  // ---- Checksum rank: detect / localize / correct before the drain ----
  // Architecturally the comparison happens in the extra accumulator rank
  // as the tile drains; checking the (still output-stationary) ACCs here
  // and then draining normally is the same dataflow without duplicating
  // the drain logic.
  std::uint64_t corrected = 0;
  if (abft_.enabled) check_tile(A, B, row0, col0, th, tw, k, &corrected);
  // ---- Drain phase: accumulators shift down the column chains --------
  for (auto& p : grid_) {
    p.drain_reg = p.acc;
    p.drain_valid = true;
  }
  for (int step = 0; step < pr_; ++step) {
    // Bottom row currently holds the values of original row pr-1-step.
    const std::int64_t r_orig = pr_ - 1 - step;
    if (r_orig < th) {
      for (int c = 0; c < std::min<std::int64_t>(pc_, tw); ++c) {
        C(row0 + r_orig, col0 + c) = pe(pr_ - 1, c).drain_reg;
      }
    }
    // Shift every column chain down by one.
    for (int r = pr_ - 1; r > 0; --r) {
      for (int c = 0; c < pc_; ++c) {
        pe(r, c).drain_reg = pe(r - 1, c).drain_reg;
      }
    }
  }
  return corrected;
}

template <typename T>
std::uint64_t SystolicArray<T>::multiply(MatrixView<const T> A,
                                         MatrixView<const T> B,
                                         MatrixView<T> C) {
  const std::int64_t m = A.rows(), k = A.cols(), n = B.cols();
  FBLAS_REQUIRE(B.rows() == k && C.rows() == m && C.cols() == n,
                "systolic multiply: shape mismatch");
  report_ = AbftReport{};
  faults_fired_ = 0;
  std::uint64_t cycles = 0;
  std::int64_t tile = 0;
  for (std::int64_t row0 = 0; row0 < m; row0 += pr_) {
    const std::int64_t th = std::min<std::int64_t>(pr_, m - row0);
    for (std::int64_t col0 = 0; col0 < n; col0 += pc_) {
      const std::int64_t tw = std::min<std::int64_t>(pc_, n - col0);
      const std::uint64_t corrected =
          run_tile(A, B, C, row0, col0, th, tw, k, tile);
      // A correction replays the victim's k operand pairs through the
      // checksum rank while the next tile fills — k extra cycles, far
      // cheaper than the full-tile rollback + re-execution it replaces.
      cycles += cycles_per_tile(k) + corrected * static_cast<std::uint64_t>(k);
      ++tile;
    }
  }
  pending_.clear();
  return cycles;
}

template class SystolicArray<float>;
template class SystolicArray<double>;

}  // namespace fblas::systolic
