#include "sim/resource_model.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace fblas::sim {

Resources& Resources::operator+=(const Resources& o) {
  alms += o.alms;
  luts += o.luts;
  ffs += o.ffs;
  dsps += o.dsps;
  m20ks += o.m20ks;
  return *this;
}

Resources operator+(Resources a, const Resources& b) { return a += b; }

double utilization(const Resources& r, const DeviceSpec& dev) {
  double u = r.alms / static_cast<double>(dev.alm_avail);
  u = std::max(u, r.ffs / static_cast<double>(dev.ff_avail));
  u = std::max(u, r.dsps / static_cast<double>(dev.dsp_avail));
  u = std::max(u, r.m20ks / static_cast<double>(dev.m20k_avail));
  return u;
}

void check_fits(const Resources& r, const DeviceSpec& dev) {
  auto over = [](double used, std::int64_t avail) {
    return used > static_cast<double>(avail);
  };
  if (over(r.alms, dev.alm_avail) || over(r.ffs, dev.ff_avail) ||
      over(r.dsps, dev.dsp_avail) || over(r.m20ks, dev.m20k_avail)) {
    std::ostringstream os;
    os << "design does not fit " << dev.name << ": needs " << r.alms
       << " ALMs (" << dev.alm_avail << " available), " << r.ffs << " FFs ("
       << dev.ff_avail << "), " << r.dsps << " DSPs (" << dev.dsp_avail
       << "), " << r.m20ks << " M20Ks (" << dev.m20k_avail << ")";
    throw FitError(os.str());
  }
}

ModuleCircuit table1_circuit(RoutineKind kind, int width,
                             const DeviceSpec& dev) {
  FBLAS_REQUIRE(width >= 1, "width must be positive");
  const RoutineInfo& info = routine_info(kind);
  const double W = width;
  ModuleCircuit c{};
  if (info.circuit == CircuitClass::Map) {
    // SCAL-class: CW = W; LUT = 49 CW, FF = 96 CW, DSP = CW; constant
    // latency (the multiplier pipeline + a fixed interface overhead).
    const double cw = W;
    c.luts = 49 * cw;
    c.ffs = 96 * cw;
    c.dsps = cw;
    c.latency_cycles = 44 + dev.mul_latency;
  } else {
    // DOT-class: CW = 2W; LUT ~= 18 CW + const, FF ~= 40 CW, DSP = CW/2;
    // latency grows with the log-depth reduction tree.
    const double cw = 2 * W;
    c.luts = 18 * cw + 102;
    c.ffs = 40 * cw + 32;
    c.dsps = cw / 2;
    c.latency_cycles =
        70 + dev.mul_latency + (width > 1 ? std::log2(W) : 0) * dev.add_latency;
  }
  return c;
}

Resources shell_overhead(const DeviceSpec& dev) {
  // The Stratix BSP reserves far more shell logic than the Arria one
  // (compare the SDOT rows of Table III across devices).
  if (dev.id != DeviceId::Arria10) {
    return Resources{115'000, 230'000, 350'000, 30, 700};
  }
  return Resources{3'000, 6'000, 8'000, 30, 0};
}

namespace {

/// Per-unit-width full-design coefficients (calibrated on Table III).
struct WidthCoeffs {
  double alm, ff;
};

WidthCoeffs width_coeffs(const RoutineInfo& info, Precision prec) {
  if (info.level >= 2) {
    return prec == Precision::Single ? WidthCoeffs{50, 100}
                                     : WidthCoeffs{1100, 2100};
  }
  if (info.circuit == CircuitClass::MapReduce) {
    return prec == Precision::Single ? WidthCoeffs{28, 30}
                                     : WidthCoeffs{930, 2000};
  }
  return prec == Precision::Single ? WidthCoeffs{30, 60}
                                   : WidthCoeffs{900, 1200};
}

}  // namespace

Resources estimate_design(const ModuleShape& shape, const DeviceSpec& dev) {
  const RoutineInfo& info = routine_info(shape.kind);
  const double elem_bytes = static_cast<double>(bytes_of(shape.prec));
  const double dsp_factor =
      shape.prec == Precision::Double ? dev.double_dsp_factor : 1.0;
  Resources r = shell_overhead(dev);
  if (info.circuit == CircuitClass::Systolic) {
    FBLAS_REQUIRE(shape.pe_rows >= 1 && shape.pe_cols >= 1,
                  "GEMM-family shapes need a PE grid");
    const double pes = static_cast<double>(shape.pe_rows) * shape.pe_cols;
    const double alm_pe = shape.prec == Precision::Single ? 80 : 1150;
    const double ff_pe = shape.prec == Precision::Single ? 250 : 2400;
    r.alms += alm_pe * pes;
    r.ffs += ff_pe * pes;
    r.luts += 2 * alm_pe * pes;
    r.dsps += dsp_factor * pes + 0.5 * shape.pe_cols;  // grid + drain chain
    // Double-buffered memory tiles plus feeder/drain FIFOs dominate
    // on-chip memory (an M20K holds 20 Kbit = 2560 bytes).
    const double tile_elems =
        static_cast<double>(std::max<std::int64_t>(shape.tile_rows, 1)) *
        static_cast<double>(std::max<std::int64_t>(shape.tile_cols, 1));
    r.m20ks += 10.0 * tile_elems * elem_bytes / 2560.0;
    return r;
  }
  FBLAS_REQUIRE(shape.width >= 1, "width must be positive");
  const double W = shape.width;
  const WidthCoeffs wc = width_coeffs(info, shape.prec);
  r.alms += wc.alm * W;
  r.ffs += wc.ff * W;
  r.luts += 2 * wc.alm * W;
  // One hardened DSP per multiply-add lane in single precision.
  const double lanes = std::max(1.0, info.ops_per_element * W / 2.0);
  r.dsps += dsp_factor * lanes;
  // Channel buffering scales with width; Level-2 adds the vector tile
  // buffers (TN + TM elements each).
  r.m20ks += 0.8 * W;
  if (info.level >= 2 && shape.tile_rows > 0) {
    r.m20ks += 2.0 * static_cast<double>(shape.tile_rows + shape.tile_cols) *
               elem_bytes / 2560.0;
  }
  return r;
}

GridLimit max_gemm_grid(const DeviceSpec& dev, Precision prec) {
  // Empirical P&R ceilings reported in Sec. VI-B.
  if (dev.id == DeviceId::Arria10) {
    return prec == Precision::Single ? GridLimit{32, 32} : GridLimit{16, 8};
  }
  return prec == Precision::Single ? GridLimit{40, 80} : GridLimit{16, 16};
}

int max_width(const DeviceSpec& dev, Precision prec) {
  (void)dev;
  // Single-precision designs were synthesized up to W=256; double fails
  // routing above 128 on both devices (Sec. VI-B).
  return prec == Precision::Single ? 256 : 128;
}

bool place_and_route_feasible(const ModuleShape& shape,
                              const DeviceSpec& dev) {
  const RoutineInfo& info = routine_info(shape.kind);
  try {
    check_fits(estimate_design(shape, dev), dev);
  } catch (const FitError&) {
    return false;
  }
  if (info.circuit == CircuitClass::Systolic) {
    const GridLimit lim = max_gemm_grid(dev, shape.prec);
    const int lo = std::min(shape.pe_rows, shape.pe_cols);
    const int hi = std::max(shape.pe_rows, shape.pe_cols);
    return lo <= std::min(lim.pe_rows, lim.pe_cols) &&
           hi <= std::max(lim.pe_rows, lim.pe_cols);
  }
  return shape.width <= max_width(dev, shape.prec);
}

}  // namespace fblas::sim
