// Performance model (Sec. IV): cycle counts from the pipeline model
// C = CD + iterations, achieved frequency, expected performance
// (instantiated compute * frequency, the horizontal bars of Fig. 10),
// memory-bandwidth ceilings, and the optimal-vectorization-width
// formulas of Sec. IV-B.
#pragma once

#include <cstdint>

#include "common/routines.hpp"
#include "common/types.hpp"
#include "sim/device.hpp"

namespace fblas::sim {

struct Timing {
  double cycles = 0;         ///< pipeline cycles to completion
  double freq_mhz = 0;       ///< achieved clock
  double seconds = 0;        ///< cycles / frequency
  double useful_ops = 0;     ///< floating-point operations performed
  double gops = 0;           ///< useful_ops / seconds / 1e9
  double expected_gops = 0;  ///< full-throughput bound (Fig. 10 bars)
  bool hyperflex = false;
  bool memory_bound = false;  ///< the DRAM interface, not compute, limits
};

/// Level-1 module at width W over n elements, data generated on chip
/// (the Fig. 10 left setup).
Timing level1_timing(RoutineKind kind, Precision prec, int width,
                     std::int64_t n, const DeviceSpec& dev);

/// GEMV over a rows x cols matrix at width W (Fig. 10 middle; on-chip
/// data generation, so no bandwidth ceiling is applied).
Timing gemv_timing(Precision prec, int width, std::int64_t rows,
                   std::int64_t cols, const DeviceSpec& dev);

/// TRSV over an n x n triangle at width W: unlike the II=1 routines, the
/// forward/backward substitution carries a loop dependency — each row's
/// result feeds the next — so every row pays the adder-chain latency on
/// top of its n/2/W average element work (the reason the paper calls out
/// TRSV as the hard-to-pipeline Level-2 routine).
Timing trsv_timing(Precision prec, int width, std::int64_t n,
                   const DeviceSpec& dev);

/// Systolic GEMM-family shape for the performance model.
struct GemmShape {
  int pe_rows, pe_cols;            ///< PR x PC grid
  std::int64_t tile_rows, tile_cols;  ///< memory tile (TR x TC)
};

/// GEMM of C[m x n] += A[m x k] B[k x n]: compute cycles from the PE
/// count, drain overhead per tile, and a feed-bandwidth ceiling of
/// `bandwidth_gbs` (pass the device bank bandwidth; a larger
/// compute/memory-tile ratio lowers the pressure — Fig. 10 right).
Timing gemm_timing(Precision prec, const GemmShape& shape, std::int64_t m,
                   std::int64_t n, std::int64_t k, const DeviceSpec& dev,
                   double bandwidth_gbs);

/// Time for a host-layer (non-streamed) routine run whose operands live in
/// DRAM: max of the compute pipeline and the DRAM traffic at
/// `bandwidth_gbs`. `io_elems` counts reads+writes of `elem_bytes` each.
Timing memory_bound_timing(double compute_cycles, double freq_mhz,
                           double useful_ops, double io_elems,
                           std::size_t elem_bytes, double bandwidth_gbs,
                           bool hyperflex);

/// Optimal vectorization width W = ceil(B / (ops_per_width * S * F))
/// (Sec. IV-B; DOT consumes 2 operands per width unit per cycle).
int optimal_width(double bandwidth_gbs, double freq_mhz,
                  std::size_t elem_bytes, int operands_per_width);

/// Tiled refinement for GEMV-style modules:
/// W = ceil(B*TN*TM / (F*S*(1 + TN*TM))) — approaches B/(F*S) for large
/// tiles, i.e. double the untiled width.
int optimal_width_tiled(double bandwidth_gbs, double freq_mhz,
                        std::size_t elem_bytes, std::int64_t tile_rows,
                        std::int64_t tile_cols);

/// Fully-unrolled small-size batched routine (Table V): one invocation in
/// flight per cycle, DRAM-bound end to end.
Timing batched_unrolled_timing(RoutineKind kind, Precision prec,
                               std::int64_t size, std::int64_t batch,
                               const DeviceSpec& dev);

}  // namespace fblas::sim
