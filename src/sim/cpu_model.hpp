// Model of the paper's CPU baseline: a 10-core Xeon E5-2630 v4 (2.2 GHz,
// no HT) with 4-channel DDR4 running MKL 2019. The benches report both
// this model (for the paper's who-wins comparison) and wall-clock
// measurements of the bundled reference BLAS on the present machine.
#pragma once

#include <cstdint>

#include "common/routines.hpp"
#include "common/types.hpp"

namespace fblas::sim {

struct XeonSpec {
  double cores = 10;
  double freq_ghz = 2.2;
  /// Sustained 4-channel DDR4 bandwidth (GB/s).
  double mem_bandwidth_gbs = 60.0;
  /// Sustained MKL GEMM throughput (GFlop/s): the paper's Table IV times
  /// put MKL essentially at the 2xFMA AVX2 peak of this part
  /// (10 cores x 2.2 GHz x 32 single flops/cycle).
  double gemm_gflops_single = 660.0;
  double gemm_gflops_double = 330.0;
  /// Per-call overhead of a BLAS launch (seconds).
  double call_overhead_s = 2e-6;
};

const XeonSpec& xeon_e5_2630v4();

/// Time for a memory-bound routine touching `io_elems` operands of
/// `elem_bytes` each (Level 1/2: DOT, GEMV, compositions...).
double cpu_memory_bound_seconds(double io_elems, std::size_t elem_bytes,
                                const XeonSpec& cpu = xeon_e5_2630v4());

/// Time for a compute-bound GEMM-class call of `flops` floating-point
/// operations.
double cpu_gemm_seconds(double flops, Precision prec,
                        const XeonSpec& cpu = xeon_e5_2630v4());

/// Batched small-matrix call (Table V): dominated by memory traffic and
/// per-batch overheads; MKL's batched interface amortizes launches well.
double cpu_batched_seconds(RoutineKind kind, Precision prec,
                           std::int64_t size, std::int64_t batch,
                           const XeonSpec& cpu = xeon_e5_2630v4());

}  // namespace fblas::sim
