// Board power model, calibrated on the aocl measurements of Tables
// III-VI: a static board term plus dynamic terms proportional to used
// resources and clock frequency. CPU power mirrors the Mammut
// processor+DRAM readings (~60-88 W depending on the workload).
#pragma once

#include "common/types.hpp"
#include "sim/device.hpp"
#include "sim/resource_model.hpp"

namespace fblas::sim {

/// FPGA board power (whole board, as aocl reports) for a design with the
/// given resources running at `freq_mhz`.
double board_power_watts(const Resources& r, double freq_mhz,
                         const DeviceSpec& dev);

/// CPU package + DRAM power for the baseline runs. `level` is the BLAS
/// level of the routine (memory-bound Level-1/2 draw a little less than
/// GEMM-class runs).
double cpu_power_watts(int level, Precision prec);

}  // namespace fblas::sim
