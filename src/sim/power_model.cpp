#include "sim/power_model.hpp"

namespace fblas::sim {

double board_power_watts(const Resources& r, double freq_mhz,
                         const DeviceSpec& dev) {
  if (dev.id != DeviceId::Arria10) {
    return 55.0 + 1.5e-5 * r.alms + 1.0e-3 * r.dsps + 8.0e-4 * r.m20ks +
           0.02 * freq_mhz;
  }
  return 42.0 + 2.0e-5 * r.alms + 2.0e-3 * r.dsps + 1.0e-3 * r.m20ks +
         0.02 * freq_mhz;
}

double cpu_power_watts(int level, Precision prec) {
  // Xeon E5-2630 v4 package + DRAM under the paper's workloads.
  const double base = level >= 3 ? 80.0 : 77.0;
  return base + (prec == Precision::Double ? 2.5 : 0.0);
}

}  // namespace fblas::sim
