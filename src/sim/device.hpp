// Device model database: the two evaluation boards of the paper
// (Table II), plus the DSP/latency behaviour the models need.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace fblas::sim {

enum class DeviceId {
  Arria10,
  Stratix10,
  /// An HBM2-equipped part (Stratix 10 MX class): the "memory interfaces
  /// faster than the testbed (e.g., HBM)" the paper sizes wide modules
  /// for in Sec. VI-B. Not one of the two evaluation boards; used by the
  /// design-space ablations.
  Stratix10MX,
};

struct DeviceSpec {
  DeviceId id;
  std::string_view name;

  // Table II: total and BSP-adjusted available resources.
  std::int64_t alm_total, alm_avail;
  std::int64_t ff_total, ff_avail;
  std::int64_t m20k_total, m20k_avail;
  std::int64_t dsp_total, dsp_avail;

  // Off-chip memory: number of DDR banks and per-bank peak bandwidth.
  int ddr_banks;
  double ddr_bank_gib;
  double bank_bandwidth_gbs;

  // Floating-point behaviour: both devices have hardened single-precision
  // DSPs (one multiply + one add per cycle, latency 6) and no hardened
  // double-precision units (4 DSPs and ~an order of magnitude more logic
  // per operation, Sec. VI-B).
  bool hardened_single;
  bool hardened_double;
  int add_latency;
  int mul_latency;

  /// HyperFlex register retiming (Stratix 10 only) raises achievable
  /// frequencies for Level-1/2 designs (Sec. VI-B).
  bool has_hyperflex;

  /// Extra DSP cost factor for one double-precision operation.
  int double_dsp_factor;

  double total_bandwidth_gbs() const {
    return bank_bandwidth_gbs * ddr_banks;
  }
};

const DeviceSpec& arria10();
const DeviceSpec& stratix10();
const DeviceSpec& stratix10mx();
const DeviceSpec& device(DeviceId id);

/// Parses "arria10" / "stratix10" (used by benches and the codegen).
DeviceId device_from_name(std::string_view name);

}  // namespace fblas::sim
