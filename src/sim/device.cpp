#include "sim/device.hpp"

#include "common/error.hpp"

namespace fblas::sim {
namespace {

constexpr DeviceSpec kArria10{
    DeviceId::Arria10,
    "Arria 10 GX 1150",
    /*alm_total=*/427'000,
    /*alm_avail=*/392'000,
    /*ff_total=*/1'700'000,
    /*ff_avail=*/1'500'000,
    /*m20k_total=*/2'700,
    /*m20k_avail=*/2'400,
    /*dsp_total=*/1'518,
    /*dsp_avail=*/1'518,
    /*ddr_banks=*/2,
    /*ddr_bank_gib=*/8.0,
    /*bank_bandwidth_gbs=*/17.0,
    /*hardened_single=*/true,
    /*hardened_double=*/false,
    /*add_latency=*/6,
    /*mul_latency=*/6,
    /*has_hyperflex=*/false,
    /*double_dsp_factor=*/4,
};

constexpr DeviceSpec kStratix10{
    DeviceId::Stratix10,
    "Stratix 10 GX 2800",
    /*alm_total=*/933'000,
    /*alm_avail=*/692'000,
    /*ff_total=*/3'700'000,
    /*ff_avail=*/2'800'000,
    /*m20k_total=*/11'700,
    /*m20k_avail=*/8'900,
    /*dsp_total=*/5'760,
    /*dsp_avail=*/4'468,
    /*ddr_banks=*/4,
    /*ddr_bank_gib=*/8.0,
    /*bank_bandwidth_gbs=*/19.2,
    /*hardened_single=*/true,
    /*hardened_double=*/false,
    /*add_latency=*/6,
    /*mul_latency=*/6,
    /*has_hyperflex=*/true,
    /*double_dsp_factor=*/4,
};

constexpr DeviceSpec kStratix10MX{
    DeviceId::Stratix10MX,
    "Stratix 10 MX 2100 (HBM2)",
    /*alm_total=*/702'720,
    /*alm_avail=*/530'000,
    /*ff_total=*/2'811'000,
    /*ff_avail=*/2'100'000,
    /*m20k_total=*/6'847,
    /*m20k_avail=*/5'200,
    /*dsp_total=*/3'960,
    /*dsp_avail=*/3'100,
    /*ddr_banks=*/32,  // HBM2 pseudo-channels
    /*ddr_bank_gib=*/0.5,
    /*bank_bandwidth_gbs=*/12.8,  // 409.6 GB/s aggregate
    /*hardened_single=*/true,
    /*hardened_double=*/false,
    /*add_latency=*/6,
    /*mul_latency=*/6,
    /*has_hyperflex=*/true,
    /*double_dsp_factor=*/4,
};

}  // namespace

const DeviceSpec& arria10() { return kArria10; }
const DeviceSpec& stratix10() { return kStratix10; }
const DeviceSpec& stratix10mx() { return kStratix10MX; }

const DeviceSpec& device(DeviceId id) {
  switch (id) {
    case DeviceId::Arria10:
      return kArria10;
    case DeviceId::Stratix10:
      return kStratix10;
    case DeviceId::Stratix10MX:
      return kStratix10MX;
  }
  throw ConfigError("unknown device id");
}

DeviceId device_from_name(std::string_view name) {
  if (name == "arria10" || name == "arria") return DeviceId::Arria10;
  if (name == "stratix10" || name == "stratix") return DeviceId::Stratix10;
  if (name == "stratix10mx" || name == "hbm") return DeviceId::Stratix10MX;
  throw ConfigError("unknown device name: '" + std::string(name) +
                    "' (expected arria10, stratix10 or stratix10mx)");
}

}  // namespace fblas::sim
