// Achieved-frequency model, calibrated on the synthesized designs of
// Tables III-VI: HyperFlex retiming lifts Stratix Level-1/2 designs to
// ~350-370 MHz; large systolic arrays close timing lower; compositions of
// several matrix modules lose frequency to routing pressure.
#pragma once

#include "common/routines.hpp"
#include "common/types.hpp"
#include "sim/device.hpp"

namespace fblas::sim {

struct FrequencyEstimate {
  double mhz;
  bool hyperflex;  ///< design synthesized with HyperFlex enabled
};

/// Frequency of a single-module design.
FrequencyEstimate module_frequency(RoutineKind kind, Precision prec,
                                   const DeviceSpec& dev);

/// Frequency of a systolic GEMM-family design with a PR x PC grid (larger
/// grids close timing lower; Fig. 10 right / Table III).
FrequencyEstimate gemm_frequency(int pe_rows, int pe_cols, Precision prec,
                                 const DeviceSpec& dev);

/// Frequency of a fully-unrolled small-input design (the batched GEMM /
/// TRSM circuits of Table V).
FrequencyEstimate unrolled_frequency(Precision prec, const DeviceSpec& dev);

/// Frequency of a streaming composition containing `matrix_modules`
/// Level-2/3 modules (0 for pure Level-1 chains such as AXPYDOT, which
/// keep the single-module frequency; Table VI).
FrequencyEstimate composition_frequency(int matrix_modules, Precision prec,
                                        const DeviceSpec& dev);

}  // namespace fblas::sim
