// Resource model: estimates LUT/ALM/FF/DSP/M20K consumption of a module
// configuration, following the linear circuit-work scaling laws measured
// in the paper (Table I for isolated modules, Table III for full designs
// including the shell/BSP and interface kernels), and the empirical
// place-and-route feasibility limits of Sec. VI-B.
#pragma once

#include <cstdint>

#include "common/routines.hpp"
#include "common/types.hpp"
#include "sim/device.hpp"

namespace fblas::sim {

struct Resources {
  double alms = 0;
  double luts = 0;
  double ffs = 0;
  double dsps = 0;
  double m20ks = 0;

  Resources& operator+=(const Resources& o);
};

Resources operator+(Resources a, const Resources& b);

/// Fraction of the device's *available* resources a design uses, by the
/// scarcest resource (1.0 = the device is full).
double utilization(const Resources& r, const DeviceSpec& dev);

/// Throws FitError when the design exceeds the available resources.
void check_fits(const Resources& r, const DeviceSpec& dev);

/// Shape of one module instance for estimation purposes.
struct ModuleShape {
  RoutineKind kind = RoutineKind::Dot;
  Precision prec = Precision::Single;
  int width = 16;                ///< vectorization width (Level 1/2)
  std::int64_t tile_rows = 0;    ///< TN / memory-tile rows (Level 2/3)
  std::int64_t tile_cols = 0;    ///< TM / memory-tile cols (Level 2/3)
  int pe_rows = 0;               ///< PR (GEMM-family only)
  int pe_cols = 0;               ///< PC (GEMM-family only)
};

/// Module-only resources and latency, comparable to Table I (single
/// precision, module circuit without shell or interface kernels).
struct ModuleCircuit {
  double luts, ffs, dsps;
  double latency_cycles;
};
ModuleCircuit table1_circuit(RoutineKind kind, int width,
                             const DeviceSpec& dev);

/// Full-design resources (module + shell + interface kernels), comparable
/// to Table III.
Resources estimate_design(const ModuleShape& shape, const DeviceSpec& dev);

/// Shell/BSP + interface-kernel overhead included in estimate_design.
Resources shell_overhead(const DeviceSpec& dev);

/// Largest synthesizable systolic grid (PR x PC) per device and precision
/// — the empirical place-and-route ceilings reported in Sec. VI-B.
struct GridLimit {
  int pe_rows, pe_cols;
};
GridLimit max_gemm_grid(const DeviceSpec& dev, Precision prec);

/// Largest synthesizable vectorization width for Level-1/2 modules
/// (double-precision designs fail routing above 128, Sec. VI-B).
int max_width(const DeviceSpec& dev, Precision prec);

/// True when the configuration both fits and respects the empirical
/// routing ceilings.
bool place_and_route_feasible(const ModuleShape& shape, const DeviceSpec& dev);

}  // namespace fblas::sim
