// Work/depth model of Sec. IV-A: application work/depth (the algorithm)
// and circuit work/depth (the synthesized inner-loop circuit). Circuit
// work tracks resource consumption; circuit depth is the pipeline latency.
#pragma once

#include <cstdint>

#include "common/routines.hpp"
#include "common/types.hpp"
#include "sim/device.hpp"

namespace fblas::sim {

struct WorkDepth {
  double app_work;       ///< AW: total operations of the computation
  double app_depth;      ///< AD: longest input-to-output path (cycles)
  double circuit_work;   ///< CW: operations implemented in the inner loop
  double circuit_depth;  ///< CD: latency of the inner-loop circuit (cycles)
};

/// Work/depth analysis of a Level-1 style module with vectorization width
/// `width` on `n` elements. For map-class routines (SCAL, AXPY, ...)
/// CW = ops_per_element * W and CD is the operation-chain latency; for
/// map-reduce routines (DOT, ...) CW = 2W and CD = log2(W)*LA + LM
/// (the reduction tree of Fig. 5). Double precision lacks hardened units:
/// depth roughly doubles (the two-stage accumulation circuit).
WorkDepth analyze(RoutineKind kind, Precision prec, int width,
                  std::int64_t n, const DeviceSpec& dev);

/// Pipeline execution model: C = L + I*M cycles; FBLAS modules are
/// transformed to initiation interval I = 1, so C = circuit_depth + iters.
double pipeline_cycles(double circuit_depth, double iterations);

}  // namespace fblas::sim
