#include "sim/work_depth.hpp"

#include <cmath>

#include "common/error.hpp"

namespace fblas::sim {

WorkDepth analyze(RoutineKind kind, Precision prec, int width,
                  std::int64_t n, const DeviceSpec& dev) {
  FBLAS_REQUIRE(width >= 1, "width must be positive");
  const RoutineInfo& info = routine_info(kind);
  const double W = width;
  const double N = static_cast<double>(n);
  // Without hardened double units the synthesized operators are deeper.
  const double lat_scale = prec == Precision::Double ? 2.0 : 1.0;
  const double LA = dev.add_latency * lat_scale;
  const double LM = dev.mul_latency * lat_scale;
  WorkDepth wd{};
  wd.app_work = info.ops_per_element * N;
  if (info.circuit == CircuitClass::Map) {
    // Independent per-element work: depth is the operation chain.
    wd.app_depth = info.ops_per_element <= 1 ? LM : LM + LA;
    wd.circuit_work = info.ops_per_element * W;
    wd.circuit_depth = wd.app_depth;
  } else {
    // Reduction: binary tree over N (application) / W (circuit).
    wd.app_work = 2.0 * N - 1.0;
    wd.app_depth = (n > 1 ? std::log2(N) : 0.0) * LA + LM;
    wd.circuit_work = 2.0 * W;
    wd.circuit_depth = (width > 1 ? std::log2(W) : 0.0) * LA + LM;
  }
  return wd;
}

double pipeline_cycles(double circuit_depth, double iterations) {
  return circuit_depth + iterations;
}

}  // namespace fblas::sim
