#include "sim/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sim/frequency_model.hpp"
#include "sim/work_depth.hpp"

namespace fblas::sim {
namespace {

Timing finish(double cycles, const FrequencyEstimate& f, double useful_ops,
              double expected_ops_per_cycle, bool memory_bound = false) {
  Timing t;
  t.cycles = cycles;
  t.freq_mhz = f.mhz;
  t.hyperflex = f.hyperflex;
  t.seconds = cycles / (f.mhz * 1e6);
  t.useful_ops = useful_ops;
  t.gops = useful_ops / t.seconds / 1e9;
  t.expected_gops = expected_ops_per_cycle * f.mhz * 1e6 / 1e9;
  t.memory_bound = memory_bound;
  return t;
}

}  // namespace

Timing level1_timing(RoutineKind kind, Precision prec, int width,
                     std::int64_t n, const DeviceSpec& dev) {
  FBLAS_REQUIRE(width >= 1 && n >= 0, "invalid level-1 timing query");
  const RoutineInfo& info = routine_info(kind);
  const WorkDepth wd = analyze(kind, prec, width, n, dev);
  const double iterations = std::ceil(static_cast<double>(n) / width);
  const double cycles = pipeline_cycles(wd.circuit_depth, iterations);
  const auto f = module_frequency(kind, prec, dev);
  const double ops = static_cast<double>(info.ops_per_element) * n;
  const double ops_per_cycle = static_cast<double>(info.ops_per_element) * width;
  return finish(cycles, f, ops, ops_per_cycle);
}

Timing gemv_timing(Precision prec, int width, std::int64_t rows,
                   std::int64_t cols, const DeviceSpec& dev) {
  FBLAS_REQUIRE(width >= 1, "invalid gemv timing query");
  const WorkDepth wd = analyze(RoutineKind::Gemv, prec, width, rows * cols, dev);
  const double iterations =
      std::ceil(static_cast<double>(rows) * cols / width);
  const double cycles = pipeline_cycles(wd.circuit_depth, iterations);
  const auto f = module_frequency(RoutineKind::Gemv, prec, dev);
  const double ops = 2.0 * rows * cols;
  return finish(cycles, f, ops, 2.0 * width);
}

Timing trsv_timing(Precision prec, int width, std::int64_t n,
                   const DeviceSpec& dev) {
  FBLAS_REQUIRE(width >= 1 && n >= 0, "invalid trsv timing query");
  const double lat_scale = prec == Precision::Double ? 2.0 : 1.0;
  const double dep_latency = (dev.add_latency + dev.mul_latency) * lat_scale;
  // Row i consumes i+1 triangle elements at W per cycle, then stalls for
  // the dependency chain before row i+1 can commit.
  const double elem_cycles =
      static_cast<double>(n) * (static_cast<double>(n) + 1) / 2.0 / width;
  const double cycles = elem_cycles + static_cast<double>(n) * dep_latency;
  const auto f = module_frequency(RoutineKind::Trsv, prec, dev);
  const double ops = static_cast<double>(n) * n;  // ~n^2 MACs + n divides
  return finish(cycles, f, ops, 2.0 * width);
}

Timing gemm_timing(Precision prec, const GemmShape& shape, std::int64_t m,
                   std::int64_t n, std::int64_t k, const DeviceSpec& dev,
                   double bandwidth_gbs) {
  FBLAS_REQUIRE(shape.pe_rows >= 1 && shape.pe_cols >= 1 &&
                    shape.tile_rows >= shape.pe_rows &&
                    shape.tile_cols >= shape.pe_cols,
                "invalid gemm shape");
  const double pes = static_cast<double>(shape.pe_rows) * shape.pe_cols;
  const double tiles = static_cast<double>(ceil_div(m, shape.tile_rows)) *
                       static_cast<double>(ceil_div(n, shape.tile_cols));
  const double tile_elems =
      static_cast<double>(shape.tile_rows) * shape.tile_cols;
  const double compute_per_tile = static_cast<double>(k) * tile_elems / pes;
  const double drain_per_tile = tile_elems / shape.pe_cols;
  const auto f = gemm_frequency(shape.pe_rows, shape.pe_cols, prec, dev);
  // Feed pressure: TR + TC elements per K-step of r^2 = tile_elems/pes
  // cycles; compare against the DRAM interface.
  const double elem_bytes = static_cast<double>(bytes_of(prec));
  const double feed_bytes_per_cycle =
      static_cast<double>(shape.tile_rows + shape.tile_cols) /
      (tile_elems / pes) * elem_bytes;
  const double available_bytes_per_cycle =
      bandwidth_gbs * 1e9 / (f.mhz * 1e6);
  double compute_cycles = tiles * (compute_per_tile + drain_per_tile);
  bool memory_bound = false;
  if (feed_bytes_per_cycle > available_bytes_per_cycle) {
    compute_cycles *= feed_bytes_per_cycle / available_bytes_per_cycle;
    memory_bound = true;
  }
  const double ops = 2.0 * m * n * k;
  return finish(compute_cycles, f, ops, 2.0 * pes, memory_bound);
}

Timing memory_bound_timing(double compute_cycles, double freq_mhz,
                           double useful_ops, double io_elems,
                           std::size_t elem_bytes, double bandwidth_gbs,
                           bool hyperflex) {
  const double io_cycles = io_elems * static_cast<double>(elem_bytes) /
                           (bandwidth_gbs * 1e9) * (freq_mhz * 1e6);
  const bool memory_bound = io_cycles > compute_cycles;
  const double cycles = std::max(compute_cycles, io_cycles);
  return finish(cycles, FrequencyEstimate{freq_mhz, hyperflex}, useful_ops,
                0.0, memory_bound);
}

int optimal_width(double bandwidth_gbs, double freq_mhz,
                  std::size_t elem_bytes, int operands_per_width) {
  FBLAS_REQUIRE(operands_per_width >= 1, "invalid operand rate");
  const double w = bandwidth_gbs * 1e9 /
                   (operands_per_width * static_cast<double>(elem_bytes) *
                    freq_mhz * 1e6);
  return static_cast<int>(std::max(1.0, std::ceil(w)));
}

int optimal_width_tiled(double bandwidth_gbs, double freq_mhz,
                        std::size_t elem_bytes, std::int64_t tile_rows,
                        std::int64_t tile_cols) {
  const double tnm = static_cast<double>(tile_rows) * tile_cols;
  const double w = bandwidth_gbs * 1e9 * tnm /
                   (freq_mhz * 1e6 * static_cast<double>(elem_bytes) *
                    (1.0 + tnm));
  return static_cast<int>(std::max(1.0, std::ceil(w)));
}

Timing batched_unrolled_timing(RoutineKind kind, Precision prec,
                               std::int64_t size, std::int64_t batch,
                               const DeviceSpec& dev) {
  FBLAS_REQUIRE(size >= 1 && batch >= 0, "invalid batched timing query");
  const double elem_bytes = static_cast<double>(bytes_of(prec));
  // Elements moved per invocation: GEMM reads A and B and writes C; TRSM
  // reads the triangle and B and writes X.
  double elems_per_call = 0;
  double ops_per_call = 0;
  if (kind == RoutineKind::Gemm) {
    elems_per_call = 3.0 * size * size;
    ops_per_call = 2.0 * size * size * size;
  } else if (kind == RoutineKind::Trsm) {
    elems_per_call = static_cast<double>(size * (size + 1)) / 2.0 +
                     2.0 * size * size;
    ops_per_call = static_cast<double>(size * size) * size;
  } else {
    throw ConfigError("batched timing supports gemm and trsm only");
  }
  const auto f = unrolled_frequency(prec, dev);
  // Fully-unrolled circuits accept a new problem every cycle; the run is
  // DRAM-bound. Interleaving across banks gives ~1.5 effective banks on
  // the testbed; a fixed launch overhead dominates small batches.
  const double eff_bandwidth = 1.5 * dev.bank_bandwidth_gbs * 1e9;
  const double launch_overhead_s = 60e-6;
  const double transfer_s =
      static_cast<double>(batch) * elems_per_call * elem_bytes /
      eff_bandwidth;
  const double seconds = launch_overhead_s + transfer_s;
  Timing t;
  t.freq_mhz = f.mhz;
  t.hyperflex = f.hyperflex;
  t.seconds = seconds;
  t.cycles = seconds * f.mhz * 1e6;
  t.useful_ops = ops_per_call * static_cast<double>(batch);
  t.gops = t.useful_ops / seconds / 1e9;
  t.expected_gops = t.useful_ops / transfer_s / 1e9;
  t.memory_bound = true;
  return t;
}

}  // namespace fblas::sim
