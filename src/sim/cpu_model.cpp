#include "sim/cpu_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace fblas::sim {

const XeonSpec& xeon_e5_2630v4() {
  static const XeonSpec spec{};
  return spec;
}

double cpu_memory_bound_seconds(double io_elems, std::size_t elem_bytes,
                                const XeonSpec& cpu) {
  return cpu.call_overhead_s +
         io_elems * static_cast<double>(elem_bytes) /
             (cpu.mem_bandwidth_gbs * 1e9);
}

double cpu_gemm_seconds(double flops, Precision prec, const XeonSpec& cpu) {
  const double rate = (prec == Precision::Single ? cpu.gemm_gflops_single
                                                 : cpu.gemm_gflops_double) *
                      1e9;
  return cpu.call_overhead_s + flops / rate;
}

double cpu_batched_seconds(RoutineKind kind, Precision prec,
                           std::int64_t size, std::int64_t batch,
                           const XeonSpec& cpu) {
  FBLAS_REQUIRE(size >= 1 && batch >= 0, "invalid batched query");
  const double elem_bytes = static_cast<double>(bytes_of(prec));
  double elems_per_call = 0;
  if (kind == RoutineKind::Gemm) {
    elems_per_call = 3.0 * size * size;
  } else if (kind == RoutineKind::Trsm) {
    elems_per_call =
        static_cast<double>(size * (size + 1)) / 2.0 + 2.0 * size * size;
  } else {
    throw ConfigError("cpu batched model supports gemm and trsm only");
  }
  // Small problems fit in cache: the effective bandwidth is higher than
  // DRAM but each batch element still pays loop/dispatch overheads.
  const double eff_bandwidth = 2.0 * cpu.mem_bandwidth_gbs * 1e9;
  const double per_call_overhead = 8e-9;  // amortized batched dispatch
  return 60e-6 +  // batched-call launch overhead
         static_cast<double>(batch) *
             (elems_per_call * elem_bytes / eff_bandwidth +
              per_call_overhead);
}

}  // namespace fblas::sim
