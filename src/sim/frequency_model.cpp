#include "sim/frequency_model.hpp"

#include <algorithm>
#include <cmath>

namespace fblas::sim {

FrequencyEstimate module_frequency(RoutineKind kind, Precision prec,
                                   const DeviceSpec& dev) {
  const RoutineInfo& info = routine_info(kind);
  if (dev.id != DeviceId::Arria10) {
    // HyperFlex designs: ~358-370 MHz for Level-1, ~347 for Level-2.
    const double base = info.level == 1 ? 365.0 : 347.0;
    return {base, true};
  }
  // Arria 10: ~150 MHz Level-1, slightly lower for Level-2 double.
  if (info.level == 1) return {150.0, false};
  return {prec == Precision::Single ? 145.0 : 132.0, false};
}

FrequencyEstimate gemm_frequency(int pe_rows, int pe_cols, Precision prec,
                                 const DeviceSpec& dev) {
  (void)prec;
  const double pes = std::sqrt(static_cast<double>(pe_rows) *
                               static_cast<double>(pe_cols));
  // Larger grids lose frequency to routing; calibrated on Table III
  // (Stratix 40x80 -> 216 MHz, 16x16 -> 260; Arria 32x32 -> 197,
  // 16x8 -> 222). HyperFlex is not effective for the systolic designs
  // with this compiler version (Sec. VI-B).
  if (dev.id != DeviceId::Arria10) {
    return {std::max(120.0, 280.0 - 1.13 * pes), false};
  }
  return {std::max(100.0, 232.0 - 1.1 * pes), false};
}

FrequencyEstimate unrolled_frequency(Precision prec, const DeviceSpec& dev) {
  if (dev.id != DeviceId::Arria10) {
    return {prec == Precision::Single ? 316.0 : 324.0, true};
  }
  return {190.0, false};
}

FrequencyEstimate composition_frequency(int matrix_modules, Precision prec,
                                        const DeviceSpec& dev) {
  if (matrix_modules == 0) {
    // Pure Level-1 chains keep the module frequency (AXPYDOT: 370 MHz).
    const auto f = module_frequency(RoutineKind::Axpy, prec, dev);
    return {f.mhz + (dev.id == DeviceId::Stratix10 ? 5.0 : 0.0), f.hyperflex};
  }
  // Matrix-module compositions lose ~1/3 of the single-module frequency
  // (BICG: 220-238 MHz, GEMVER: 236-275 MHz on Stratix).
  const auto f = module_frequency(RoutineKind::Gemv, prec, dev);
  return {f.mhz * 0.68, false};
}

}  // namespace fblas::sim
