// Host lowering for the explicit PE-grid systolic GEMM engine, including
// the in-grid ABFT path: when the captured verification Options enable
// .in_grid(), the grid's own checksum rank detects / localizes /
// corrects PE faults as each tile drains, and the command's verify_check
// only has to inspect the engine's report — an uncorrectable (multi-
// fault) tile rejects with VerificationError and falls onto the standard
// rollback -> retry -> CPU-fallback ladder. Without .in_grid() the
// command uses the same host-side Huang–Abraham checkers as gemm_async.
//
// PE-targeted fault injection: wrap_work draws FaultKind::PeFault per
// attempt; this lowering derives the deterministic (tile, r, c, mac)
// plan from the draw's (seq, attempt) via FaultInjector::pick, arms the
// grid, and records the materialized plan as last_pe_victim() ground
// truth once the flip fires.
#include <algorithm>
#include <memory>
#include <sstream>

#include "host/context.hpp"
#include "refblas/level3.hpp"
#include "verify/abft.hpp"

namespace fblas::host {

template <typename T>
Event Context::gemm_systolic_async(std::int64_t m, std::int64_t n,
                                   std::int64_t k, const Buffer<T>& a,
                                   const Buffer<T>& b, Buffer<T>& c) {
  Command command;
  command.label = "gemm_systolic";
  command.reads = {&a, &b};
  command.writes = {&c};
  const verify::Options& vo = cfg_.verification;
  const bool in_grid = vo.enabled() && vo.in_grid();
  // The engine's ABFT report, shared between the work body (which fills
  // it per attempt) and verify_check (which decides accept/reject on it).
  struct GridState {
    systolic::AbftReport report;
  };
  auto st = std::make_shared<GridState>();
  command.work = [this, rc = cfg_, m, n, k, &a, &b, &c, st, in_grid] {
    systolic::SystolicArray<T> arr(rc.pe_rows, rc.pe_cols);
    if (in_grid) {
      systolic::AbftConfig acfg;
      acfg.enabled = true;
      acfg.correct_single_faults = rc.verification.correct_single_faults();
      acfg.tolerance_scale = rc.verification.tolerance_scale();
      arr.set_abft(acfg);
    }
    // Derive and arm this attempt's PE fault plan, if wrap_work drew one
    // — from the injector of the device this attempt was placed on, so
    // the recorded ground truth lands next to the draw.
    FaultInjector& faults = attempt_device().faults();
    std::uint64_t seq = 0;
    int attempt = 0;
    bool armed = false;
    systolic::PeFaultPlan plan{};
    const std::int64_t nti = (m + rc.pe_rows - 1) / rc.pe_rows;
    const std::int64_t ntj = (n + rc.pe_cols - 1) / rc.pe_cols;
    if (k > 0 && nti > 0 && ntj > 0 && pe_fault_draw(&seq, &attempt)) {
      plan.tile = static_cast<std::int64_t>(
          faults.pick(seq, attempt, 2,
                      static_cast<std::uint64_t>(nti * ntj)));
      const std::int64_t ti = plan.tile / ntj;
      const std::int64_t tj = plan.tile % ntj;
      const std::int64_t th = std::min<std::int64_t>(rc.pe_rows,
                                                     m - ti * rc.pe_rows);
      const std::int64_t tw = std::min<std::int64_t>(rc.pe_cols,
                                                     n - tj * rc.pe_cols);
      plan.r = static_cast<int>(
          faults.pick(seq, attempt, 3, static_cast<std::uint64_t>(th)));
      plan.c = static_cast<int>(
          faults.pick(seq, attempt, 4, static_cast<std::uint64_t>(tw)));
      plan.mac = static_cast<std::int64_t>(
          faults.pick(seq, attempt, 5, static_cast<std::uint64_t>(k)));
      arr.arm_fault(plan);
      armed = true;
      if (faults.pe_fault_pairs() && th * tw > 1) {
        // Double-fault testing mode: a second flip in a distinct PE of
        // the same tile, which the checksum rank must refuse to correct.
        systolic::PeFaultPlan second = plan;
        second.r = static_cast<int>(
            faults.pick(seq, attempt, 6, static_cast<std::uint64_t>(th)));
        second.c = static_cast<int>(
            faults.pick(seq, attempt, 7, static_cast<std::uint64_t>(tw)));
        second.mac = static_cast<std::int64_t>(
            faults.pick(seq, attempt, 8, static_cast<std::uint64_t>(k)));
        if (second.r == plan.r && second.c == plan.c) {
          if (tw > 1) {
            second.c = static_cast<int>((second.c + 1) % tw);
          } else {
            second.r = static_cast<int>((second.r + 1) % th);
          }
        }
        arr.arm_fault(second);
      }
    }
    const std::uint64_t cycles =
        arr.multiply(a.cmat(m, k), b.cmat(k, n), c.mat(m, n));
    // Per-PE utilization for the tracing layer: one event per grid cell
    // with its MAC count and fault tally for this attempt's multiply.
    if (trace::Recorder* tr = trace::sink();
        tr != nullptr && tr->options().engine_events) {
      for (int r = 0; r < rc.pe_rows; ++r) {
        for (int col = 0; col < rc.pe_cols; ++col) {
          trace::Event te;
          te.kind = trace::EventKind::PeStats;
          te.device = static_cast<std::int16_t>(trace::attempt_device());
          te.attempt = static_cast<std::uint8_t>(std::min(r, 255));
          te.flags = static_cast<std::uint16_t>(col);
          te.a = arr.pe_macs(r, col);
          te.b = arr.pe_faults(r, col);
          te.set_name("pe");
          trace::emit(te);
        }
      }
    }
    st->report = arr.report();
    store_grid_report(arr.report());
    if (armed && arr.faults_fired() > 0) {
      pe_fault_fired();
      PeVictim victim;
      victim.tile_row = plan.tile / ntj;
      victim.tile_col = plan.tile % ntj;
      victim.r = plan.r;
      victim.c = plan.c;
      victim.mac = plan.mac;
      victim.valid = true;
      faults.record_pe_victim(victim);
    }
    Executor::note_pe_faults(st->report.faults_localized,
                             st->report.faults_corrected);
    Executor::note_cycles(cycles);
    last_cycles_.store(cycles);
    total_cycles_.fetch_add(cycles);
  };
  command.fallback = [m, n, k, &a, &b, &c] {
    ref::gemm(Transpose::None, Transpose::None, T(1), a.cmat(m, k),
              b.cmat(k, n), T(0), c.mat(m, n));
  };
  if (in_grid) {
    // The checksum rank already checked every tile inside the engine;
    // accept/reject on its report. An uncorrectable tile (multi-fault or
    // inconsistent residuals) — or any localized fault left in place
    // because correction is disabled — rejects like a host-side checksum
    // mismatch would, feeding the rollback -> retry -> fallback ladder.
    command.verify_check = [st] {
      const systolic::AbftReport& report = st->report;
      if (report.uncorrectable_tiles > 0) {
        throw VerificationError("systolic in-grid ABFT: " +
                                report.first_uncorrectable);
      }
      for (const systolic::LocalizedFault& f : report.faults) {
        if (f.corrected) continue;
        std::ostringstream os;
        os << "systolic in-grid ABFT: tile (" << f.tile_row << ", "
           << f.tile_col << "): fault localized to PE (" << f.r << ", "
           << f.c << ") left uncorrected";
        throw VerificationError(os.str());
      }
    };
  } else if (cfg_.verification.enabled()) {
    auto chk = std::make_shared<verify::GemmCheck<T>>();
    command.verify_prepare = [chk, m, n, k, &a, &b, &c] {
      *chk = verify::gemm_prepare<T>(Transpose::None, Transpose::None, m, n,
                                     k, T(1), a.cmat(m, k), b.cmat(k, n),
                                     T(0), c.cmat(m, n));
    };
    command.verify_check = [chk, m, n, &c,
                            scale = cfg_.verification.tolerance_scale()] {
      verify::gemm_check<T>(*chk, c.cmat(m, n), scale);
    };
  }
  return enqueue(std::move(command));
}

template Event Context::gemm_systolic_async<float>(std::int64_t, std::int64_t,
                                                   std::int64_t,
                                                   const Buffer<float>&,
                                                   const Buffer<float>&,
                                                   Buffer<float>&);
template Event Context::gemm_systolic_async<double>(std::int64_t, std::int64_t,
                                                    std::int64_t,
                                                    const Buffer<double>&,
                                                    const Buffer<double>&,
                                                    Buffer<double>&);

}  // namespace fblas::host
