#include "host/context.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <memory>
#include <sstream>
#include <utility>

namespace fblas::host {
namespace {

// Fault-injection state for the command currently executing on this
// thread, set by the wrap_work closure and consumed by run_graph:
// the watchdog captured at enqueue, and whether the next graph launch
// should wedge mid-stream. Thread-locals work because a command body
// (including nested inline library calls) runs on a single thread.
struct RunScope {
  stream::Watchdog watchdog;
  bool wedge_pending = false;
  bool active = false;
  bool taint_record = false;  // screen pushes for NaN/Inf, keep provenance
  bool taint_trap = false;    // additionally throw TaintError on the spot
  // The pool device this attempt was placed on: where fault draws come
  // from and where ground truth (channel/PE victims) is recorded.
  Device* dev = nullptr;
  // ChannelCorrupt: flip bits of the corrupt_k-th floating-point value
  // pushed across this command's graph launches (0 = disarmed). Stays
  // armed across launches until it fires, so a short first graph cannot
  // swallow the fault.
  std::uint64_t corrupt_k = 0;
  bool corrupt_fired = false;
  // PeFault: a drawn PE-targeted fault waiting for a systolic lowering to
  // derive its (tile, r, c, mac) plan from (pe_fault_seq,
  // pe_fault_attempt) and arm the grid. Cleared by pe_fault_fired() when
  // the flip materializes; still pending after the body means no systolic
  // multiply consumed it (or the planned MAC never fired) — retract.
  bool pe_fault_pending = false;
  std::uint64_t pe_fault_seq = 0;
  int pe_fault_attempt = 0;
};
thread_local RunScope tl_scope;

// First non-finite taint observed across this attempt's graph launches.
// Separate from tl_scope because tl_scope dies with the command body
// while the verify checker (which annotates its rejection with this
// provenance) runs after the body returns.
thread_local stream::Taint tl_last_taint;

// Pool index of the device the attempt running on this thread was
// placed on. Separate from tl_scope (like tl_last_taint) because
// wrap_verify reports the verdict to the pool *after* the command body
// — and tl_scope — are gone.
thread_local int tl_attempt_device = -1;

void validate_knob(bool ok, const char* knob, std::int64_t got) {
  if (ok) return;
  std::ostringstream os;
  os << "RoutineConfig." << knob << " must be > 0 (got " << got << ")";
  throw ConfigError(os.str());
}

}  // namespace

void RoutineConfig::validate() const {
  validate_knob(width > 0, "width", width);
  validate_knob(tile_rows > 0, "tile_rows", tile_rows);
  validate_knob(tile_cols > 0, "tile_cols", tile_cols);
  validate_knob(pe_rows > 0, "pe_rows", pe_rows);
  validate_knob(pe_cols > 0, "pe_cols", pe_cols);
  validate_knob(gemm_tile_rows > 0, "gemm_tile_rows", gemm_tile_rows);
  validate_knob(gemm_tile_cols > 0, "gemm_tile_cols", gemm_tile_cols);
  verification.validate();
}

Context::Context(Device& dev, stream::Mode mode, int workers)
    : mode_(mode), exec_(std::make_unique<Executor>(workers)) {
  Device* devp = &dev;
  pool_owned_ =
      std::make_unique<DevicePool>(std::span<Device* const>(&devp, 1));
  pool_ = pool_owned_.get();
  dev_ = &dev;
}

Context::Context(DevicePool& pool, stream::Mode mode, int workers)
    : pool_(&pool),
      dev_(&pool.device(0)),
      mode_(mode),
      exec_(std::make_unique<Executor>(workers)) {}

std::function<void()> Context::wrap_work(
    std::uint64_t seq, std::function<void()> work,
    std::vector<const void*> reads, std::vector<const void*> writes,
    bool verify_armed, bool taint_record, bool taint_trap,
    std::function<std::uint64_t(std::uint64_t, std::uint64_t)> steer) {
  return [this, seq, inner = std::move(work), reads = std::move(reads),
          writes = std::move(writes), wd = watchdog_, verify_armed,
          taint_record, taint_trap, steer = std::move(steer)] {
    const int attempt = Executor::current_attempt();
    // Fault-aware placement, per attempt: the pool advances the breaker
    // clocks, probes Half-Open devices, and stages the command's buffers
    // onto the chosen device — so a retry after the victim's breaker
    // opened transparently lands (write-set already rolled back) on a
    // healthy sibling.
    const int placed = pool_->place(seq, reads, writes);
    Device& dev = pool_->device(placed);
    tl_attempt_device = placed;
    trace::set_attempt_device(placed);
    if (trace::Recorder* tr = trace::sink()) {
      trace::Event te;
      te.kind = trace::EventKind::Placed;
      te.seq = seq;
      te.attempt = attempt > 255 ? 255 : static_cast<std::uint8_t>(attempt);
      te.device = static_cast<std::int16_t>(placed);
      tr->emit(te);
    }
    FaultInjector& faults = dev.faults();
    const FaultKind fault = faults.enabled()
                                ? faults.decide(seq, attempt)
                                : FaultKind::None;
    try {
      if (fault == FaultKind::LaunchFail) {
        std::ostringstream os;
        os << "injected kernel launch failure (command " << seq
           << ", attempt " << attempt << ")";
        throw DeviceError(os.str());
      }
      tl_last_taint = stream::Taint{};  // fresh provenance per attempt
      tl_scope = RunScope{wd, fault == FaultKind::Wedge, true, taint_record,
                          taint_trap, &dev};
      if (fault == FaultKind::ChannelCorrupt) {
        // Corrupt the k-th floating-point value pushed across this
        // command's graph launches, k in [1, 1024] — deep enough to land
        // mid-pipeline on realistic sizes, small enough to fire on any
        // graph streaming more than 1024 values.
        tl_scope.corrupt_k = 1 + faults.corrupt_offset(seq, attempt, 1024);
      }
      if (fault == FaultKind::PeFault) {
        tl_scope.pe_fault_pending = true;
        tl_scope.pe_fault_seq = seq;
        tl_scope.pe_fault_attempt = attempt;
      }
      struct Reset {
        ~Reset() { tl_scope = RunScope{}; }
      } reset;
      if (inner) inner();
      if (fault == FaultKind::ChannelCorrupt && !tl_scope.corrupt_fired) {
        // The command launched no graph (or a graph too short to reach
        // the k-th push): nothing was damaged, so un-count the fault.
        faults.retract();
      }
      if (fault == FaultKind::PeFault && tl_scope.pe_fault_pending) {
        // No systolic multiply consumed the draw (or the planned MAC
        // never produced a nonzero product): nothing was damaged.
        faults.retract();
      }
      if (fault == FaultKind::CorruptTransfer) {
        // Model a detected bad write-back (ECC/CRC): the data really is
        // mangled in device memory AND the error is reported, so the
        // retry machinery must restore the snapshot before re-running.
        for (const void* key : writes) {
          std::span<std::byte> bytes = pool_->buffer_bytes(key);
          if (bytes.empty()) continue;
          const std::uint64_t off =
              faults.corrupt_offset(seq, attempt, bytes.size());
          bytes[static_cast<std::size_t>(off)] ^= std::byte{0x5a};
          break;
        }
        std::ostringstream os;
        os << "injected transfer corruption detected (command " << seq
           << ", attempt " << attempt << ")";
        throw DeviceError(os.str());
      }
      if (fault == FaultKind::SilentCorrupt) {
        // Model an undetected bad write-back: the data is mangled but NO
        // error is raised — the command completes Ok with a wrong
        // result. Only result verification can catch this. The offset is
        // forced onto a sign/exponent byte (the last byte of a 4- or
        // 8-byte element) so the damage always dwarfs the checker
        // tolerance.
        bool mangled = false;
        for (const void* key : writes) {
          std::span<std::byte> bytes = pool_->buffer_bytes(key);
          if (bytes.empty()) continue;
          std::uint64_t off =
              faults.corrupt_offset(seq, attempt, bytes.size());
          if (steer) {
            // The routine steers the fault onto bytes it semantically
            // owns (e.g. SYRK's written triangle), returning the final
            // offset.
            off = steer(off, bytes.size());
          } else {
            off |= 7;
          }
          if (off >= bytes.size()) off = bytes.size() - 1;
          bytes[static_cast<std::size_t>(off)] ^= std::byte{0x5a};
          mangled = true;
          break;
        }
        // A write set with no registered device bytes (e.g. a host
        // scalar result) cannot be silently corrupted through the buffer
        // registry: un-count the fault so injected() only counts faults
        // that actually damaged something.
        if (!mangled) faults.retract();
      }
    } catch (const DeviceError&) {
      pool_->note_attempt_failed(placed,
                                 fault == FaultKind::CorruptTransfer
                                     ? HealthEvent::TransferCorrupt
                                     : HealthEvent::LaunchFail);
      throw;
    } catch (const TimeoutError&) {
      pool_->note_attempt_failed(placed, HealthEvent::Timeout);
      throw;
    }
    // Health accounting for a device-Ok attempt: report now unless an
    // armed checker still gets a vote (wrap_verify reports the verdict,
    // so per-device `executed` counts accepted completions exactly once).
    if (!verify_armed) pool_->note_attempt_ok(placed);
  };
}

CommandHooks Context::make_hooks(const Command& cmd) {
  CommandHooks hooks;
  hooks.retryable = true;
  // Snapshot state shared between the snapshot and rollback closures.
  // Only write-set keys that resolve to registered device buffers are
  // captured; host scalar result keys are recomputed by the re-run.
  using Snap = std::vector<std::pair<std::span<std::byte>,
                                     std::vector<std::byte>>>;
  auto snaps = std::make_shared<Snap>();
  // Lookups go through the pool: the buffer may migrate between the
  // snapshot and a rollback, but the captured spans stay valid either
  // way — migration moves registry records and bank accounting, never
  // the host-resident bytes.
  DevicePool* pool = pool_;
  hooks.snapshot = [pool, writes = cmd.writes, snaps] {
    snaps->clear();
    for (const void* key : writes) {
      std::span<std::byte> bytes = pool->buffer_bytes(key);
      if (bytes.empty()) continue;
      snaps->emplace_back(bytes,
                          std::vector<std::byte>(bytes.begin(), bytes.end()));
    }
  };
  hooks.rollback = [snaps] {
    for (auto& [bytes, saved] : *snaps) {
      std::copy(saved.begin(), saved.end(), bytes.begin());
    }
  };
  hooks.fallback = cmd.fallback;
  return hooks;
}

double Context::effective_sample_rate(const verify::Options& vo) const {
  if (!vo.adaptive()) return vo.sample_rate();
  const double live = adaptive_rate_.load(std::memory_order_relaxed);
  return live < 0.0 ? vo.sample_rate() : live;
}

std::function<void()> Context::wrap_verify(std::function<void()> check,
                                           bool adaptive,
                                           bool feed_breaker) {
  // Adaptive controller bounds, frozen at enqueue like every other knob:
  // a rejection quadruples the live rate (towards 1), a clean check
  // decays it by 2% towards a floor a quarter of the configured base.
  const double base = cfg_.verification.sample_rate();
  const double floor = std::max(0.01, base / 4.0);
  auto feed = [this, adaptive, base, floor](bool rejected) {
    if (!adaptive) return;
    const double live = adaptive_rate_.load(std::memory_order_relaxed);
    const double cur = live < 0.0 ? base : live;
    const double next = rejected ? std::min(1.0, std::max(cur, floor) * 4.0)
                                 : std::max(floor, cur * 0.98);
    // Plain store: concurrent verifiers may overwrite each other's
    // update, which only costs one controller step of a heuristic.
    adaptive_rate_.store(next, std::memory_order_relaxed);
    if (trace::Recorder* tr = trace::sink();
        tr != nullptr && tr->options().counter_samples) {
      trace::Event te;
      te.kind = trace::EventKind::RateSample;
      te.a = std::bit_cast<std::uint64_t>(next);
      tr->emit(te);
    }
  };
  return [this, check = std::move(check), feed = std::move(feed),
          feed_breaker] {
    try {
      check();
      feed(false);
      // The checker accepted this device-Ok attempt: the command is
      // complete, and the placed device earns its success sample.
      if (tl_attempt_device >= 0) {
        pool_->note_verify(tl_attempt_device, true, feed_breaker);
      }
    } catch (const VerificationError& e) {
      feed(true);
      if (tl_attempt_device >= 0) {
        pool_->note_verify(tl_attempt_device, false, feed_breaker);
      }
      // A checksum mismatch on NaN/Inf-poisoned data is a numerical
      // symptom, not necessarily hardware corruption — attach the taint
      // provenance recorded during the run so the two are separable.
      if (tl_last_taint.tainted) {
        std::ostringstream os;
        os << e.what() << " [non-finite taint: module '"
           << tl_last_taint.module << "' first pushed "
           << tl_last_taint.value << " into channel '"
           << tl_last_taint.channel << "' at cycle " << tl_last_taint.cycle
           << "]";
        throw VerificationError(os.str());
      }
      throw;
    }
  };
}

Event Context::enqueue(Command cmd) {
  // Routine commands validate the captured configuration up front, so a
  // bad knob fails at the call site naming the knob instead of as
  // undefined behavior inside a lowering.
  if (!cmd.barrier) cfg_.validate();

  // A nested library call issued from inside a running command (e.g. the
  // GEMV behind SYMV) is part of that command: run it inline so its
  // hazards and cycles fold into the parent, and hand back a completed
  // Event.
  if (Executor::in_command()) {
    if (cmd.work) cmd.work();
    return Event();
  }

  const std::uint64_t seq = ++enqueued_;
  std::vector<std::uint64_t> deps =
      deps_.add(seq, cmd.reads, cmd.writes, cmd.barrier);
  for (const Event& e : cmd.after) {
    if (e.ctx_ == this && e.seq_ != 0) deps.push_back(e.seq_);
  }

  if (trace_) {
    // The Enqueue event opens the command's async span and carries its
    // routine label — the export joins every later event to it by seq.
    trace::Event te;
    te.kind = trace::EventKind::Enqueue;
    te.seq = seq;
    te.flags = cmd.barrier ? 1 : 0;
    te.set_name(!cmd.label.empty() ? std::string_view(cmd.label)
                : cmd.barrier     ? std::string_view("barrier")
                                  : std::string_view("cmd"));
    trace_->emit(te);
  }

  std::function<void()> work = std::move(cmd.work);
  CommandHooks hooks;
  if (!cmd.barrier) {
    const RetryPolicy policy = exec_->retry_policy();
    // Verification arms per command, per the captured config: Always
    // verifies every checkable routine; Sampled draws a pure hash of
    // (seed, seq) so the choice is deterministic and identical across
    // executor policies — except under adaptive sampling, where the live
    // rate (raised by rejections, decayed by clean checks) replaces the
    // configured base. Read through a const ref: on a mutable Options the
    // no-arg accessor spellings resolve to the fluent setters.
    const verify::Options& vo = cfg_.verification;
    const bool verify_armed =
        static_cast<bool>(cmd.verify_check) &&
        (vo.policy() == verify::VerifyPolicy::Always ||
         (vo.policy() == verify::VerifyPolicy::Sampled &&
          verify::sampled(vo.seed(), seq, effective_sample_rate(vo))));
    // Every routine command is wrapped: placement and per-device health
    // accounting always run, on top of fault injection / watchdog /
    // taint tracking when those are armed.
    work = wrap_work(seq, std::move(work), cmd.reads, cmd.writes,
                     verify_armed, verify_armed || vo.trap_nonfinite(),
                     vo.trap_nonfinite(), std::move(cmd.corrupt_steer));
    if (policy.max_retries > 0 || policy.cpu_fallback || verify_armed) {
      hooks = make_hooks(cmd);
    }
    if (verify_armed) {
      hooks.verify_prepare = std::move(cmd.verify_prepare);
      hooks.verify_check = wrap_verify(std::move(cmd.verify_check),
                                       vo.adaptive(), vo.breaker_feedback());
    }
  }
  exec_->submit(seq, std::move(work), deps, std::move(hooks));
  return Event(this, seq);
}

Event Context::enqueue(std::function<void()> work) {
  Command cmd;
  cmd.work = std::move(work);
  cmd.barrier = true;  // undeclared effects: order against everything
  return enqueue(std::move(cmd));
}

Event Context::enqueue(std::function<void()> work,
                       std::span<const Event> after) {
  Command cmd;
  cmd.work = std::move(work);
  cmd.barrier = true;
  cmd.after.assign(after.begin(), after.end());
  return enqueue(std::move(cmd));
}

void Context::finish() { exec_->wait_all(); }

void Context::wait_seq(std::uint64_t seq) { exec_->wait(seq); }

bool Context::done_seq(std::uint64_t seq) const { return exec_->done(seq); }

CommandStatus Context::status_seq(std::uint64_t seq) const {
  CommandStatus st = exec_->status(seq);
  st.device = pool_->device_of(seq);
  return st;
}

ExecStats Context::exec_stats() const {
  ExecStats stats = exec_->stats();
  stats.faults_injected = pool_->faults_injected();
  const double live = adaptive_rate_.load(std::memory_order_relaxed);
  stats.adaptive_sample_rate = live < 0.0 ? 0.0 : live;
  stats.per_device = pool_->per_device_stats();
  for (const PerDeviceStats& d : stats.per_device) {
    // One migration moves one buffer out of one device into another, so
    // the in-side alone is the fleet-wide total.
    stats.migrations += d.migrations_in;
    stats.migrated_bytes += d.migrated_bytes_in;
    stats.breaker_opens += d.breaker_opens;
    stats.breaker_readmissions += d.breaker_readmissions;
  }
  return stats;
}

void Context::run_graph(stream::Graph& g) {
  stream::Watchdog wd;
  const bool taint = tl_scope.active && tl_scope.taint_record;
  if (tl_scope.active) {
    wd = tl_scope.watchdog;
    if (tl_scope.wedge_pending) {
      // Wedge this command's first graph launch a few module resumes in
      // — mid-stream, after real progress has been made.
      tl_scope.wedge_pending = false;
      g.scheduler().wedge_after(16);
    }
    if (taint) g.scheduler().enable_taint(tl_scope.taint_trap);
    if (tl_scope.corrupt_k != 0) {
      g.scheduler().corrupt_push(tl_scope.corrupt_k);
    }
  }
  g.run(wd);
  if (taint && g.scheduler().taint().tainted && !tl_last_taint.tainted) {
    tl_last_taint = g.scheduler().taint();
  }
  if (tl_scope.active && tl_scope.corrupt_k != 0 &&
      g.scheduler().corruption_fired()) {
    tl_scope.corrupt_k = 0;
    tl_scope.corrupt_fired = true;
    // Ground truth goes to the injector that drew the fault: the device
    // this attempt was placed on.
    Device* dev = tl_scope.dev != nullptr ? tl_scope.dev : dev_;
    dev->faults().record_victim(g.scheduler().corrupted_channel());
  }
  const std::uint64_t cycles = g.cycles();
  if (trace::Recorder* tr = trace::sink();
      tr != nullptr && tr->options().engine_events) {
    // Engine summaries, emitted host-side after the run so the stream
    // layer never links the trace library: per-channel high-water and
    // stall counts, plus the graph's cycle/stall totals.
    for (const auto& ch : g.channels()) {
      trace::Event te;
      te.kind = trace::EventKind::ChannelStats;
      te.set_name(ch->name());
      te.device = static_cast<std::int16_t>(trace::attempt_device());
      te.a = ch->peak_occupancy();
      te.b = ch->stall_events();
      te.flags = static_cast<std::uint16_t>(
          std::min<std::size_t>(ch->capacity(), 0xffff));
      tr->emit(te);
    }
    trace::Event te;
    te.kind = trace::EventKind::GraphStats;
    te.device = static_cast<std::int16_t>(trace::attempt_device());
    te.a = cycles;
    te.b = g.scheduler().stall_module_cycles();
    tr->emit(te);
  }
  Executor::note_cycles(cycles);
  last_cycles_.store(cycles);
  total_cycles_.fetch_add(cycles);
}

std::shared_ptr<trace::Recorder> Context::tracing(const trace::Options& opts) {
  trace_ = std::make_shared<trace::Recorder>(opts);
  exec_->set_trace(trace_);
  return trace_;
}

void Context::stop_tracing() {
  trace_.reset();
  exec_->set_trace(nullptr);
}

Device& Context::attempt_device() {
  return (tl_scope.active && tl_scope.dev != nullptr) ? *tl_scope.dev : *dev_;
}

double Context::bank_bytes_per_cycle(double freq_mhz) const {
  return dev_->spec().bank_bandwidth_gbs * 1e9 / (freq_mhz * 1e6);
}

bool Context::pe_fault_draw(std::uint64_t* seq, int* attempt) {
  if (!tl_scope.active || !tl_scope.pe_fault_pending) return false;
  *seq = tl_scope.pe_fault_seq;
  *attempt = tl_scope.pe_fault_attempt;
  return true;
}

void Context::pe_fault_fired() { tl_scope.pe_fault_pending = false; }

void Context::store_grid_report(const systolic::AbftReport& report) {
  std::lock_guard<std::mutex> lk(grid_mu_);
  last_grid_report_ = report;
}

systolic::AbftReport Context::last_grid_report() const {
  std::lock_guard<std::mutex> lk(grid_mu_);
  return last_grid_report_;
}

}  // namespace fblas::host
