#include "host/context.hpp"

#include <utility>

namespace fblas::host {

Context::Context(Device& dev, stream::Mode mode, int workers)
    : dev_(&dev), mode_(mode), exec_(std::make_unique<Executor>(workers)) {}

Event Context::enqueue(Command cmd) {
  // A nested library call issued from inside a running command (e.g. the
  // GEMV behind SYMV) is part of that command: run it inline so its
  // hazards and cycles fold into the parent, and hand back a completed
  // Event.
  if (Executor::in_command()) {
    if (cmd.work) cmd.work();
    return Event();
  }

  const std::uint64_t seq = ++enqueued_;
  std::vector<std::uint64_t> deps =
      deps_.add(seq, cmd.reads, cmd.writes, cmd.barrier);
  for (const Event& e : cmd.after) {
    if (e.ctx_ == this && e.seq_ != 0) deps.push_back(e.seq_);
  }
  exec_->submit(seq, std::move(cmd.work), deps);
  return Event(this, seq);
}

Event Context::enqueue(std::function<void()> work) {
  Command cmd;
  cmd.work = std::move(work);
  cmd.barrier = true;  // undeclared effects: order against everything
  return enqueue(std::move(cmd));
}

Event Context::enqueue(std::function<void()> work,
                       std::span<const Event> after) {
  Command cmd;
  cmd.work = std::move(work);
  cmd.barrier = true;
  cmd.after.assign(after.begin(), after.end());
  return enqueue(std::move(cmd));
}

void Context::finish() { exec_->wait_all(); }

void Context::wait_seq(std::uint64_t seq) { exec_->wait(seq); }

bool Context::done_seq(std::uint64_t seq) const { return exec_->done(seq); }

void Context::run_graph(stream::Graph& g) {
  g.run();
  const std::uint64_t cycles = g.cycles();
  Executor::note_cycles(cycles);
  last_cycles_.store(cycles);
  total_cycles_.fetch_add(cycles);
}

double Context::bank_bytes_per_cycle(double freq_mhz) const {
  return dev_->spec().bank_bandwidth_gbs * 1e9 / (freq_mhz * 1e6);
}

}  // namespace fblas::host
