#include "host/context.hpp"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <sstream>
#include <utility>

namespace fblas::host {
namespace {

// Fault-injection state for the command currently executing on this
// thread, set by the wrap_work closure and consumed by run_graph:
// the watchdog captured at enqueue, and whether the next graph launch
// should wedge mid-stream. Thread-locals work because a command body
// (including nested inline library calls) runs on a single thread.
struct RunScope {
  stream::Watchdog watchdog;
  bool wedge_pending = false;
  bool active = false;
  bool taint_record = false;  // screen pushes for NaN/Inf, keep provenance
  bool taint_trap = false;    // additionally throw TaintError on the spot
};
thread_local RunScope tl_scope;

// First non-finite taint observed across this attempt's graph launches.
// Separate from tl_scope because tl_scope dies with the command body
// while the verify checker (which annotates its rejection with this
// provenance) runs after the body returns.
thread_local stream::Taint tl_last_taint;

void validate_knob(bool ok, const char* knob, std::int64_t got) {
  if (ok) return;
  std::ostringstream os;
  os << "RoutineConfig." << knob << " must be > 0 (got " << got << ")";
  throw ConfigError(os.str());
}

}  // namespace

void RoutineConfig::validate() const {
  validate_knob(width > 0, "width", width);
  validate_knob(tile_rows > 0, "tile_rows", tile_rows);
  validate_knob(tile_cols > 0, "tile_cols", tile_cols);
  validate_knob(pe_rows > 0, "pe_rows", pe_rows);
  validate_knob(pe_cols > 0, "pe_cols", pe_cols);
  validate_knob(gemm_tile_rows > 0, "gemm_tile_rows", gemm_tile_rows);
  validate_knob(gemm_tile_cols > 0, "gemm_tile_cols", gemm_tile_cols);
  if (!(verify_sample_rate >= 0.0 && verify_sample_rate <= 1.0)) {
    std::ostringstream os;
    os << "RoutineConfig.verify_sample_rate must be in [0, 1] (got "
       << verify_sample_rate << ")";
    throw ConfigError(os.str());
  }
  if (!(verify_tolerance_scale > 0.0)) {
    std::ostringstream os;
    os << "RoutineConfig.verify_tolerance_scale must be > 0 (got "
       << verify_tolerance_scale << ")";
    throw ConfigError(os.str());
  }
}

Context::Context(Device& dev, stream::Mode mode, int workers)
    : dev_(&dev), mode_(mode), exec_(std::make_unique<Executor>(workers)) {}

std::function<void()> Context::wrap_work(std::uint64_t seq,
                                         std::function<void()> work,
                                         std::vector<const void*> writes,
                                         bool taint_record,
                                         bool taint_trap) {
  return [this, seq, inner = std::move(work), writes = std::move(writes),
          wd = watchdog_, taint_record, taint_trap] {
    const int attempt = Executor::current_attempt();
    FaultInjector& faults = dev_->faults();
    const FaultKind fault = faults.enabled()
                                ? faults.decide(seq, attempt)
                                : FaultKind::None;
    if (fault == FaultKind::LaunchFail) {
      std::ostringstream os;
      os << "injected kernel launch failure (command " << seq
         << ", attempt " << attempt << ")";
      throw DeviceError(os.str());
    }
    tl_last_taint = stream::Taint{};  // fresh provenance per attempt
    tl_scope = RunScope{wd, fault == FaultKind::Wedge, true, taint_record,
                        taint_trap};
    struct Reset {
      ~Reset() { tl_scope = RunScope{}; }
    } reset;
    if (inner) inner();
    if (fault == FaultKind::CorruptTransfer) {
      // Model a detected bad write-back (ECC/CRC): the data really is
      // mangled in device memory AND the error is reported, so the
      // retry machinery must restore the snapshot before re-running.
      for (const void* key : writes) {
        std::span<std::byte> bytes = dev_->buffer_bytes(key);
        if (bytes.empty()) continue;
        const std::uint64_t off =
            faults.corrupt_offset(seq, attempt, bytes.size());
        bytes[static_cast<std::size_t>(off)] ^= std::byte{0x5a};
        break;
      }
      std::ostringstream os;
      os << "injected transfer corruption detected (command " << seq
         << ", attempt " << attempt << ")";
      throw DeviceError(os.str());
    }
    if (fault == FaultKind::SilentCorrupt) {
      // Model an undetected bad write-back: the data is mangled but NO
      // error is raised — the command completes Ok with a wrong result.
      // Only result verification can catch this. The offset is forced
      // onto a sign/exponent byte (the last byte of a 4- or 8-byte
      // element) so the damage always dwarfs the checker tolerance.
      bool mangled = false;
      for (const void* key : writes) {
        std::span<std::byte> bytes = dev_->buffer_bytes(key);
        if (bytes.empty()) continue;
        std::uint64_t off = faults.corrupt_offset(seq, attempt, bytes.size());
        off |= 7;
        if (off >= bytes.size()) off = bytes.size() - 1;
        bytes[static_cast<std::size_t>(off)] ^= std::byte{0x5a};
        mangled = true;
        break;
      }
      // A write set with no registered device bytes (e.g. a host scalar
      // result) cannot be silently corrupted through the buffer
      // registry: un-count the fault so injected() only counts faults
      // that actually damaged something.
      if (!mangled) faults.retract();
    }
  };
}

CommandHooks Context::make_hooks(const Command& cmd) {
  CommandHooks hooks;
  hooks.retryable = true;
  // Snapshot state shared between the snapshot and rollback closures.
  // Only write-set keys that resolve to registered device buffers are
  // captured; host scalar result keys are recomputed by the re-run.
  using Snap = std::vector<std::pair<std::span<std::byte>,
                                     std::vector<std::byte>>>;
  auto snaps = std::make_shared<Snap>();
  Device* dev = dev_;
  hooks.snapshot = [dev, writes = cmd.writes, snaps] {
    snaps->clear();
    for (const void* key : writes) {
      std::span<std::byte> bytes = dev->buffer_bytes(key);
      if (bytes.empty()) continue;
      snaps->emplace_back(bytes,
                          std::vector<std::byte>(bytes.begin(), bytes.end()));
    }
  };
  hooks.rollback = [snaps] {
    for (auto& [bytes, saved] : *snaps) {
      std::copy(saved.begin(), saved.end(), bytes.begin());
    }
  };
  hooks.fallback = cmd.fallback;
  return hooks;
}

std::function<void()> Context::wrap_verify(std::function<void()> check) {
  return [check = std::move(check)] {
    try {
      check();
    } catch (const VerificationError& e) {
      // A checksum mismatch on NaN/Inf-poisoned data is a numerical
      // symptom, not necessarily hardware corruption — attach the taint
      // provenance recorded during the run so the two are separable.
      if (tl_last_taint.tainted) {
        std::ostringstream os;
        os << e.what() << " [non-finite taint: module '"
           << tl_last_taint.module << "' first pushed "
           << tl_last_taint.value << " into channel '"
           << tl_last_taint.channel << "' at cycle " << tl_last_taint.cycle
           << "]";
        throw VerificationError(os.str());
      }
      throw;
    }
  };
}

Event Context::enqueue(Command cmd) {
  // Routine commands validate the captured configuration up front, so a
  // bad knob fails at the call site naming the knob instead of as
  // undefined behavior inside a lowering.
  if (!cmd.barrier) cfg_.validate();

  // A nested library call issued from inside a running command (e.g. the
  // GEMV behind SYMV) is part of that command: run it inline so its
  // hazards and cycles fold into the parent, and hand back a completed
  // Event.
  if (Executor::in_command()) {
    if (cmd.work) cmd.work();
    return Event();
  }

  const std::uint64_t seq = ++enqueued_;
  std::vector<std::uint64_t> deps =
      deps_.add(seq, cmd.reads, cmd.writes, cmd.barrier);
  for (const Event& e : cmd.after) {
    if (e.ctx_ == this && e.seq_ != 0) deps.push_back(e.seq_);
  }

  std::function<void()> work = std::move(cmd.work);
  CommandHooks hooks;
  if (!cmd.barrier) {
    const RetryPolicy policy = exec_->retry_policy();
    // Verification arms per command, per the captured config: Always
    // verifies every checkable routine; Sampled draws a pure hash of
    // (verify_seed, seq) so the choice is deterministic and identical
    // across executor policies.
    const bool verify_armed =
        static_cast<bool>(cmd.verify_check) &&
        (cfg_.verify == verify::VerifyPolicy::Always ||
         (cfg_.verify == verify::VerifyPolicy::Sampled &&
          verify::sampled(cfg_.verify_seed, seq, cfg_.verify_sample_rate)));
    const bool instrumented = dev_->faults().enabled() ||
                              watchdog_.enabled() || verify_armed ||
                              cfg_.trap_nonfinite;
    if (instrumented) {
      work = wrap_work(seq, std::move(work), cmd.writes,
                       verify_armed || cfg_.trap_nonfinite,
                       cfg_.trap_nonfinite);
    }
    if (policy.max_retries > 0 || policy.cpu_fallback || verify_armed) {
      hooks = make_hooks(cmd);
    }
    if (verify_armed) {
      hooks.verify_prepare = std::move(cmd.verify_prepare);
      hooks.verify_check = wrap_verify(std::move(cmd.verify_check));
    }
  }
  exec_->submit(seq, std::move(work), deps, std::move(hooks));
  return Event(this, seq);
}

Event Context::enqueue(std::function<void()> work) {
  Command cmd;
  cmd.work = std::move(work);
  cmd.barrier = true;  // undeclared effects: order against everything
  return enqueue(std::move(cmd));
}

Event Context::enqueue(std::function<void()> work,
                       std::span<const Event> after) {
  Command cmd;
  cmd.work = std::move(work);
  cmd.barrier = true;
  cmd.after.assign(after.begin(), after.end());
  return enqueue(std::move(cmd));
}

void Context::finish() { exec_->wait_all(); }

void Context::wait_seq(std::uint64_t seq) { exec_->wait(seq); }

bool Context::done_seq(std::uint64_t seq) const { return exec_->done(seq); }

CommandStatus Context::status_seq(std::uint64_t seq) const {
  return exec_->status(seq);
}

ExecStats Context::exec_stats() const {
  ExecStats stats = exec_->stats();
  stats.faults_injected = dev_->faults().injected();
  return stats;
}

void Context::run_graph(stream::Graph& g) {
  stream::Watchdog wd;
  const bool taint = tl_scope.active && tl_scope.taint_record;
  if (tl_scope.active) {
    wd = tl_scope.watchdog;
    if (tl_scope.wedge_pending) {
      // Wedge this command's first graph launch a few module resumes in
      // — mid-stream, after real progress has been made.
      tl_scope.wedge_pending = false;
      g.scheduler().wedge_after(16);
    }
    if (taint) g.scheduler().enable_taint(tl_scope.taint_trap);
  }
  g.run(wd);
  if (taint && g.scheduler().taint().tainted && !tl_last_taint.tainted) {
    tl_last_taint = g.scheduler().taint();
  }
  const std::uint64_t cycles = g.cycles();
  Executor::note_cycles(cycles);
  last_cycles_.store(cycles);
  total_cycles_.fetch_add(cycles);
}

double Context::bank_bytes_per_cycle(double freq_mhz) const {
  return dev_->spec().bank_bandwidth_gbs * 1e9 / (freq_mhz * 1e6);
}

}  // namespace fblas::host
