// Device buffers: typed allocations on a specific DDR bank, filled and
// read back with explicit host<->device copies, following the standard
// OpenCL programming flow the host API wraps (Sec. II-B).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/view.hpp"
#include "host/device.hpp"

namespace fblas::host {

template <typename T>
class Buffer {
 public:
  /// Allocates n elements on the given DDR bank of `dev`.
  Buffer(Device& dev, std::int64_t n, int bank = 0)
      : dev_(&dev), bank_(bank) {
    FBLAS_REQUIRE(n >= 0, "buffer size must be non-negative");
    // Reserve against the bank budget before touching host memory, so an
    // oversized allocation fails fast with FitError.
    dev_->note_alloc(bank_, static_cast<std::uint64_t>(n) * sizeof(T));
    data_.resize(static_cast<std::size_t>(n));
    register_self();
  }
  ~Buffer() {
    if (dev_ != nullptr) {
      dev_->unregister_buffer(this);
      dev_->note_free(bank_, bytes());
    }
  }
  Buffer(Buffer&& o) noexcept
      : dev_(std::exchange(o.dev_, nullptr)),
        bank_(o.bank_),
        data_(std::move(o.data_)) {
    if (dev_ != nullptr) {
      dev_->unregister_buffer(&o);
      register_self();
    }
  }
  Buffer& operator=(Buffer&& o) noexcept {
    if (this != &o) {
      if (dev_ != nullptr) {
        dev_->unregister_buffer(this);
        dev_->note_free(bank_, bytes());
      }
      dev_ = std::exchange(o.dev_, nullptr);
      bank_ = o.bank_;
      data_ = std::move(o.data_);
      if (dev_ != nullptr) {
        dev_->unregister_buffer(&o);
        register_self();
      }
    }
    return *this;
  }
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  int bank() const { return bank_; }
  std::uint64_t bytes() const { return data_.size() * sizeof(T); }

  /// Host -> device copy.
  void write(std::span<const T> host) {
    FBLAS_REQUIRE(host.size() == data_.size(),
                  "host/device size mismatch in write");
    std::copy(host.begin(), host.end(), data_.begin());
  }
  /// Device -> host copy.
  void read(std::span<T> host) const {
    FBLAS_REQUIRE(host.size() == data_.size(),
                  "host/device size mismatch in read");
    std::copy(data_.begin(), data_.end(), host.begin());
  }
  std::vector<T> to_host() const { return data_; }

  // Device-side views used by the routine lowerings.
  VectorView<T> vec(std::int64_t n, std::int64_t inc = 1) {
    FBLAS_REQUIRE((n - 1) * inc < size(), "vector view out of bounds");
    return VectorView<T>(data_.data(), n, inc);
  }
  VectorView<const T> cvec(std::int64_t n, std::int64_t inc = 1) const {
    FBLAS_REQUIRE(n == 0 || (n - 1) * inc < size(),
                  "vector view out of bounds");
    return VectorView<const T>(data_.data(), n, inc);
  }
  MatrixView<T> mat(std::int64_t rows, std::int64_t cols) {
    FBLAS_REQUIRE(rows * cols <= size(), "matrix view out of bounds");
    return MatrixView<T>(data_.data(), rows, cols);
  }
  MatrixView<const T> cmat(std::int64_t rows, std::int64_t cols) const {
    FBLAS_REQUIRE(rows * cols <= size(), "matrix view out of bounds");
    return MatrixView<const T>(data_.data(), rows, cols);
  }

 private:
  // The fault-tolerant runtime snapshots / restores / corrupts declared
  // write-sets through the device's registry of raw buffer bytes, keyed
  // by the Buffer's own address (the same key used in command sets).
  // The re-home callback is how DevicePool migrates this buffer off a
  // quarantined device: the pool moves the registry record and bank
  // accounting, then calls back so dev_/bank_ track the new home (and
  // the destructor releases the right bank). Data lives in host memory
  // either way, so migration is pure bookkeeping — no bytes move.
  void register_self() {
    dev_->register_buffer(
        this, std::as_writable_bytes(std::span<T>(data_.data(), data_.size())),
        bank_, [this](Device& d, int bank) {
          dev_ = &d;
          bank_ = bank;
        });
  }

  Device* dev_;
  int bank_;
  std::vector<T> data_;
};

}  // namespace fblas::host
