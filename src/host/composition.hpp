// A typed, buffer-bound MDAG description the composition compiler can
// execute: the user-facing half of the "one pipeline from graph
// description to verified streaming command" flow.
//
//   host::Composition<float> c("atax");
//   const int ra = c.input("read_A", a);
//   const int rx = c.input("read_x", x);
//   const int wy = c.output("write_y", y);
//   const int g1 = c.gemv("gemv", 1.0f, 0.0f);
//   const int g2 = c.gemv("gemv_T", 1.0f, 0.0f, Transpose::Trans);
//   c.connect(ra, g1, a_sig); ... c.connect(g2, wy, StreamSig::vec(m));
//   ctx.run_composition(c);
//
// A Composition owns nothing device-side: it is a plain value (an
// mdag::Mdag plus per-node semantics, exact-precision coefficients, and
// buffer bindings) that Context::run_composition_async copies into the
// enqueued command. mdag::compile() decides how it executes — channel
// sizing, sequential splits, DRAM round trips, fan-outs, zero inputs and
// the checksum tap plan all come from the compiler, never from the app.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "host/buffer.hpp"
#include "mdag/compile.hpp"

namespace fblas::host {

template <typename T>
class Composition {
 public:
  /// DRAM attachment of one interface node. Exactly one pointer is set:
  /// `in` for readers, `out` for buffer writers, `scalar` for a
  /// host-scalar writer (a DOT result).
  struct Binding {
    const Buffer<T>* in = nullptr;
    Buffer<T>* out = nullptr;
    T* scalar = nullptr;
  };

  explicit Composition(std::string name) : name_(std::move(name)) {}

  // --- Interface nodes ----------------------------------------------------

  /// Reader streaming `buf` (vector or tiled matrix per the out-edge
  /// signatures declared on it).
  int input(const std::string& node, const Buffer<T>& buf) {
    const int id = graph_.add_interface(node);
    append(node, Binding{&buf, nullptr, nullptr});
    return id;
  }

  /// Reader streaming the `uplo` triangle of op(A) in solve order (the
  /// TRSV A operand). `buf` holds the full n x n matrix dense; the edge
  /// carries n(n+1)/2 elements.
  int input_triangular(const std::string& node, const Buffer<T>& buf,
                       Uplo uplo, Transpose trans = Transpose::None) {
    const int id = input(node, buf);
    sem_.back().triangular = true;
    sem_.back().uplo = uplo;
    sem_.back().trans = trans;
    return id;
  }

  /// Writer materializing its one in-edge into `buf`.
  int output(const std::string& node, Buffer<T>& buf) {
    const int id = graph_.add_interface(node);
    append(node, Binding{nullptr, &buf, nullptr});
    sem_.back().is_output = true;
    return id;
  }

  /// Writer collecting a scalar stream (count 1) into `*result`.
  int output_scalar(const std::string& node, T* result) {
    FBLAS_REQUIRE(result != nullptr,
                  "composition: scalar output needs a destination");
    const int id = graph_.add_interface(node);
    append(node, Binding{nullptr, nullptr, result});
    sem_.back().is_output = true;
    return id;
  }

  // --- Compute nodes (in-edge ports follow mdag::NodeSemantics) ----------

  /// y = alpha op(A) x + beta y0; ports [A, x, y0]. Without a y0 edge the
  /// compiler synthesizes a zero stream and forces beta = 0.
  int gemv(const std::string& node, T alpha, T beta,
           Transpose trans = Transpose::None) {
    const int id = graph_.add_compute(node, RoutineKind::Gemv, 40);
    append_compute(alpha, beta);
    sem_.back().trans = trans;
    return id;
  }

  /// out = A0 + alpha x y^T; ports [A0, x, y].
  int ger(const std::string& node, T alpha) {
    const int id = graph_.add_compute(node, RoutineKind::Ger, 20);
    append_compute(alpha, T(0));
    return id;
  }

  /// Solves op(A) x = b; ports [A (triangular reader), b]. `uplo` is the
  /// stored triangle of the bound matrix.
  int trsv(const std::string& node, Uplo uplo,
           Transpose trans = Transpose::None, Diag diag = Diag::NonUnit) {
    const int id = graph_.add_compute(node, RoutineKind::Trsv, 40);
    append_compute(T(1), T(0));
    sem_.back().uplo = uplo;
    sem_.back().trans = trans;
    sem_.back().diag = diag;
    return id;
  }

  /// out = alpha x + y; ports [x, y].
  int axpy(const std::string& node, T alpha) {
    const int id = graph_.add_compute(node, RoutineKind::Axpy, 12);
    append_compute(alpha, T(0));
    return id;
  }

  /// out = alpha x; port [x].
  int scal(const std::string& node, T alpha) {
    const int id = graph_.add_compute(node, RoutineKind::Scal, 8);
    append_compute(alpha, T(0));
    return id;
  }

  /// out = x^T y (a count-1 stream); ports [x, y].
  int dot(const std::string& node) {
    const int id = graph_.add_compute(node, RoutineKind::Dot, 30);
    append_compute(T(1), T(0));
    return id;
  }

  // --- Edges --------------------------------------------------------------

  int connect(int from, int to, mdag::StreamSig sig) {
    return graph_.connect(from, to, sig);
  }
  /// Mismatched endpoint signatures: a pure replay/reschedule mismatch is
  /// legal and compiles to a DRAM round trip (forced cut); anything else
  /// is rejected at enqueue.
  int connect(int from, int to, mdag::StreamSig produced,
              mdag::StreamSig consumed) {
    return graph_.connect(from, to, produced, consumed);
  }

  // --- Execution knobs ----------------------------------------------------

  Composition& max_channel_depth(std::int64_t depth) {
    max_channel_depth_ = depth;
    return *this;
  }
  /// Rejects (at enqueue, with the validity diagnostic) any composition
  /// the compiler cannot execute as a single fully-streaming component.
  Composition& require_streaming(bool on = true) {
    require_streaming_ = on;
    return *this;
  }
  /// Prefers a sequential split over channel sizing when the graph is
  /// not a multitree (the Fig. 9 GEMVER schedule: cut instead of
  /// buffering B on chip).
  Composition& prefer_split(bool on = true) {
    prefer_split_ = on;
    return *this;
  }

  // --- Accessors (the compiler/runtime side) ------------------------------

  const std::string& name() const { return name_; }
  const mdag::Mdag& graph() const { return graph_; }
  const std::vector<mdag::NodeSemantics>& semantics() const { return sem_; }
  const Binding& binding(int node) const {
    return bind_[static_cast<std::size_t>(node)];
  }
  /// Exact-precision coefficients for module instantiation (the double
  /// mirrors in NodeSemantics feed the checksum rules only).
  T alpha_of(int node) const { return alpha_[static_cast<std::size_t>(node)]; }
  T beta_of(int node) const { return beta_[static_cast<std::size_t>(node)]; }
  std::int64_t max_channel_depth() const { return max_channel_depth_; }
  bool streaming_required() const { return require_streaming_; }
  bool split_preferred() const { return prefer_split_; }

 private:
  void append(const std::string& operand, Binding b) {
    mdag::NodeSemantics s;
    s.operand = operand;
    sem_.push_back(std::move(s));
    bind_.push_back(b);
    alpha_.push_back(T(1));
    beta_.push_back(T(0));
  }
  void append_compute(T alpha, T beta) {
    mdag::NodeSemantics s;
    s.alpha = static_cast<double>(alpha);
    s.beta = static_cast<double>(beta);
    sem_.push_back(std::move(s));
    bind_.push_back(Binding{});
    alpha_.push_back(alpha);
    beta_.push_back(beta);
  }

  std::string name_;
  mdag::Mdag graph_;
  std::vector<mdag::NodeSemantics> sem_;
  std::vector<Binding> bind_;
  std::vector<T> alpha_, beta_;
  std::int64_t max_channel_depth_ = 1 << 16;
  bool require_streaming_ = false;
  bool prefer_split_ = false;
};

}  // namespace fblas::host
