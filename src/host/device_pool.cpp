#include "host/device_pool.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "trace/trace.hpp"

namespace fblas::host {
namespace {

// Emits a breaker state change through the thread-local trace sink
// (installed by the executor for the span of the running command;
// no-op when tracing is off). The event carries the raw enum codes —
// the trace library cannot see BreakerState, but the declaration order
// (Closed, Open, HalfOpen) is the shared contract.
void trace_breaker(int dev, BreakerState before, BreakerState after) {
  if (before == after) return;
  trace::Event te;
  te.kind = trace::EventKind::BreakerTransition;
  te.device = static_cast<std::int16_t>(dev);
  te.a = static_cast<std::uint64_t>(before);
  te.flags = static_cast<std::uint16_t>(after);
  trace::emit(te);
}

}  // namespace

DevicePool::DevicePool(int devices, sim::DeviceId id,
                       const HealthConfig& health)
    : health_(health) {
  FBLAS_REQUIRE(devices > 0, "device pool needs at least one device");
  slots_.reserve(static_cast<std::size_t>(devices));
  for (int i = 0; i < devices; ++i) {
    owned_.push_back(std::make_unique<Device>(id));
    Slot slot;
    slot.dev = owned_.back().get();
    slot.health = HealthTracker(health_);
    slots_.push_back(std::move(slot));
  }
}

DevicePool::DevicePool(std::span<Device* const> devices,
                       const HealthConfig& health)
    : health_(health) {
  FBLAS_REQUIRE(!devices.empty(), "device pool needs at least one device");
  slots_.reserve(devices.size());
  for (Device* dev : devices) {
    FBLAS_REQUIRE(dev != nullptr, "device pool: null device");
    Slot slot;
    slot.dev = dev;
    slot.health = HealthTracker(health_);
    slots_.push_back(std::move(slot));
  }
}

void DevicePool::inject_faults(const FaultConfig& cfg) {
  cfg.validate();
  for (int i = 0; i < size(); ++i) {
    FaultConfig per = cfg;
    // Only the victim keeps the sick window; every other device runs the
    // identical base configuration so fault draws stay placement-
    // independent (the determinism the chaos tests rely on).
    if (per.device_fault_window.device != i) {
      per.device_fault_window = DeviceFaultWindow{};
    }
    device(i).inject_faults(per);
  }
}

void DevicePool::disable_faults() {
  for (int i = 0; i < size(); ++i) device(i).faults().disable();
}

int DevicePool::pick_locked(std::uint64_t seq,
                            const std::vector<const void*>& keys) const {
  std::vector<int> healthy;
  for (int i = 0; i < size(); ++i) {
    if (slots_[static_cast<std::size_t>(i)].health.state() ==
        BreakerState::Closed) {
      healthy.push_back(i);
    }
  }
  if (healthy.empty()) {
    // Whole pool unhealthy: least-bad device takes the command, which
    // then burns its retry budget toward the CPU fallback — the last
    // rung, exactly as in the single-device runtime.
    int best = 0;
    for (int i = 1; i < size(); ++i) {
      if (slots_[static_cast<std::size_t>(i)].health.ewma() <
          slots_[static_cast<std::size_t>(best)].health.ewma()) {
        best = i;
      }
    }
    return best;
  }
  // Residency-weighted score: bytes of the command's operands already on
  // the candidate. The winner keeps hazard chains co-located (their
  // shared buffers pull successors to the same device) and avoids
  // re-staging; zero-residency commands rotate by seq so independent
  // work spreads across the fleet for overlap.
  std::vector<std::uint64_t> score(healthy.size(), 0);
  for (const void* key : keys) {
    for (std::size_t h = 0; h < healthy.size(); ++h) {
      const Device& dev = device(healthy[h]);
      if (dev.has_buffer(key)) {
        score[h] += dev.buffer_bytes(key).size();
        break;
      }
    }
  }
  const std::uint64_t top = *std::max_element(score.begin(), score.end());
  std::vector<int> tied;
  for (std::size_t h = 0; h < healthy.size(); ++h) {
    if (score[h] == top) tied.push_back(healthy[h]);
  }
  return tied[static_cast<std::size_t>(seq % tied.size())];
}

void DevicePool::migrate_locked(const void* key, int from, int to) {
  Device& src = device(from);
  Device& dst = device(to);
  Device::BufferRecord rec;
  if (!src.take_buffer(key, &rec)) return;
  const std::uint64_t bytes = rec.bytes.size();
  src.note_free(rec.bank, bytes);
  // Re-stage bank-by-bank: the home bank first (keeps the owner's bank
  // choice stable), then any bank with room.
  int bank = -1;
  for (int cand = -1; cand < dst.bank_count(); ++cand) {
    const int b = cand < 0 ? rec.bank : cand;
    if (cand >= 0 && b == rec.bank) continue;
    try {
      dst.note_alloc(b, bytes);
      bank = b;
      break;
    } catch (const FitError&) {
    }
  }
  if (bank < 0) {
    // Destination full: leave the buffer where it was (correctness is
    // unaffected — device data is host-resident — the command just
    // keeps a remote operand).
    src.note_alloc(rec.bank, bytes);  // cannot throw: just freed
    src.install_buffer(key, std::move(rec));
    return;
  }
  Slot& out = slots_[static_cast<std::size_t>(from)];
  Slot& in = slots_[static_cast<std::size_t>(to)];
  ++out.stats.migrations_out;
  out.stats.migrated_bytes_out += bytes;
  ++in.stats.migrations_in;
  in.stats.migrated_bytes_in += bytes;
  if (trace::sink() != nullptr) {
    trace::Event te;
    te.kind = trace::EventKind::Migrate;
    te.device = static_cast<std::int16_t>(to);
    te.flags = static_cast<std::uint16_t>(from);
    te.a = bytes;
    trace::emit(te);
  }
  auto rehome = rec.rehome;
  rec.bank = bank;
  dst.install_buffer(key, std::move(rec));
  if (rehome) rehome(dst, bank);
}

int DevicePool::place(std::uint64_t seq,
                      std::span<const void* const> reads,
                      std::span<const void* const> writes) {
  std::vector<const void*> keys;
  keys.reserve(reads.size() + writes.size());
  for (const void* key : reads) {
    if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
      keys.push_back(key);
    }
  }
  for (const void* key : writes) {
    if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
      keys.push_back(key);
    }
  }

  std::lock_guard<std::mutex> lk(mu_);
  // One placement tick: cool-downs advance, then Half-Open devices get
  // their synthetic probe *before* candidate selection, so a re-admitted
  // device can take this very placement.
  for (int i = 0; i < size(); ++i) {
    Slot& slot = slots_[static_cast<std::size_t>(i)];
    const BreakerState before = slot.health.state();
    slot.health.tick();
    trace_breaker(i, before, slot.health.state());
  }
  for (int i = 0; i < size(); ++i) {
    Slot& slot = slots_[static_cast<std::size_t>(i)];
    if (slot.health.state() != BreakerState::HalfOpen) continue;
    ++slot.stats.probes;
    const FaultKind hit = slot.dev->faults().probe(seq);
    if (hit != FaultKind::None) ++slot.stats.probe_failures;
    const BreakerState before = slot.health.state();
    slot.health.probe_result(hit == FaultKind::None);
    if (trace::sink() != nullptr) {
      trace::Event te;
      te.kind = trace::EventKind::Probe;
      te.seq = seq;
      te.device = static_cast<std::int16_t>(i);
      te.flags = hit != FaultKind::None ? 1 : 0;
      trace::emit(te);
    }
    trace_breaker(i, before, slot.health.state());
  }

  const int best = pick_locked(seq, keys);
  for (const void* key : keys) {
    for (int i = 0; i < size(); ++i) {
      if (i == best || !device(i).has_buffer(key)) continue;
      migrate_locked(key, i, best);
      break;
    }
  }
  placed_[seq] = best;
  ++slots_[static_cast<std::size_t>(best)].stats.attempts;
  return best;
}

void DevicePool::note_attempt_failed(int dev, HealthEvent ev) {
  std::lock_guard<std::mutex> lk(mu_);
  Slot& slot = slots_[static_cast<std::size_t>(dev)];
  ++slot.stats.failed_attempts;
  (void)ev;  // all kinds are failure samples; the split is for stats only
  const BreakerState before = slot.health.state();
  slot.health.record_failure();
  trace_breaker(dev, before, slot.health.state());
}

void DevicePool::note_attempt_ok(int dev) {
  std::lock_guard<std::mutex> lk(mu_);
  Slot& slot = slots_[static_cast<std::size_t>(dev)];
  ++slot.stats.executed;
  slot.health.record_success();
}

void DevicePool::note_verify(int dev, bool ok, bool feed_breaker) {
  std::lock_guard<std::mutex> lk(mu_);
  Slot& slot = slots_[static_cast<std::size_t>(dev)];
  const BreakerState before = slot.health.state();
  if (ok) {
    ++slot.stats.executed;
    if (feed_breaker) slot.health.record_success();
  } else {
    ++slot.stats.verify_rejects;
    if (feed_breaker) slot.health.record_failure();
  }
  trace_breaker(dev, before, slot.health.state());
}

std::span<std::byte> DevicePool::buffer_bytes(const void* key) const {
  for (const Slot& slot : slots_) {
    if (slot.dev->has_buffer(key)) return slot.dev->buffer_bytes(key);
  }
  return {};
}

int DevicePool::resident_device(const void* key) const {
  for (int i = 0; i < size(); ++i) {
    if (device(i).has_buffer(key)) return i;
  }
  return -1;
}

int DevicePool::device_of(std::uint64_t seq) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = placed_.find(seq);
  return it == placed_.end() ? -1 : it->second;
}

BreakerState DevicePool::breaker(int dev) const {
  std::lock_guard<std::mutex> lk(mu_);
  return slots_[static_cast<std::size_t>(dev)].health.state();
}

std::vector<PerDeviceStats> DevicePool::per_device_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<PerDeviceStats> out;
  out.reserve(slots_.size());
  for (int i = 0; i < size(); ++i) {
    const Slot& slot = slots_[static_cast<std::size_t>(i)];
    PerDeviceStats s = slot.stats;
    s.device = i;
    s.breaker = slot.health.state();
    s.health_ewma = slot.health.ewma();
    s.breaker_opens = slot.health.opens();
    s.breaker_half_opens = slot.health.half_opens();
    s.breaker_readmissions = slot.health.readmissions();
    s.faults = slot.dev->faults().injected();
    out.push_back(s);
  }
  return out;
}

std::uint64_t DevicePool::faults_injected() const {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) total += slot.dev->faults().injected();
  return total;
}

}  // namespace fblas::host
