#include "host/event.hpp"

#include "host/context.hpp"

namespace fblas::host {

bool Event::done() const {
  if (ctx_ == nullptr) return true;
  return ctx_->done_seq(seq_);
}

void Event::wait() {
  if (ctx_ != nullptr) ctx_->wait_seq(seq_);
}

CommandStatus Event::status() const {
  if (ctx_ == nullptr) return CommandStatus{};
  return ctx_->status_seq(seq_);
}

}  // namespace fblas::host
