#include "host/event.hpp"

#include "host/context.hpp"

namespace fblas::host {

bool Event::done() const {
  if (ctx_ == nullptr) return true;
  // Sequence numbers are 1-based; completed_ counts executed commands.
  return seq_ <= ctx_->completed_;
}

void Event::wait() {
  if (ctx_ != nullptr) ctx_->drain_until(seq_);
}

Context::Context(Device& dev, stream::Mode mode) : dev_(&dev), mode_(mode) {}

Event Context::enqueue(std::function<void()> work) {
  pending_.push_back(std::move(work));
  ++enqueued_;
  return Event(this, enqueued_);
}

void Context::finish() { drain_until(enqueued_); }

void Context::drain_until(std::uint64_t seq) {
  while (completed_ < seq && !pending_.empty()) {
    auto work = std::move(pending_.front());
    pending_.pop_front();
    ++completed_;
    work();
  }
}

void Context::run_graph(stream::Graph& g) {
  g.run();
  last_cycles_ = g.cycles();
  total_cycles_ += last_cycles_;
}

double Context::bank_bytes_per_cycle(double freq_mhz) const {
  return dev_->spec().bank_bandwidth_gbs * 1e9 / (freq_mhz * 1e6);
}

}  // namespace fblas::host
