// Context::run_composition — the generic interpreter behind the
// composition compiler. Everything the per-app composed paths used to
// hand-wire (channel creation, module spawning, fan-outs, zero inputs,
// DRAM round trips for cut edges, checksum predictions, the refblas
// fallback) is derived here from mdag::Compiled, so an app is nothing
// but a host::Composition description.
//
// Execution of one composition is ONE command on the fault-tolerance
// ladder: retries roll the write set back, verification compares every
// FIFO of every component against host-side predictions (localizing a
// divergence to the first corrupted edge), and the CPU fallback replays
// the MDAG node by node over refblas.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/routines.hpp"
#include "common/types.hpp"
#include "fblas/level1.hpp"
#include "fblas/level2.hpp"
#include "host/composition.hpp"
#include "host/context.hpp"
#include "host/detail.hpp"
#include "mdag/checksum.hpp"
#include "mdag/compile.hpp"
#include "refblas/level1.hpp"
#include "refblas/level2.hpp"
#include "sim/frequency_model.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"
#include "verify/abft.hpp"
#include "verify/graph_checker.hpp"

namespace fblas::host {
namespace {

using mdag::CompiledChannel;

std::int64_t per_pass(const mdag::StreamSig& s) {
  return s.repeat > 0 ? s.count / s.repeat : s.count;
}

Uplo op_uplo_of(const mdag::NodeSemantics& s) {
  if (s.trans == Transpose::None) return s.uplo;
  return s.uplo == Uplo::Lower ? Uplo::Upper : Uplo::Lower;
}

/// Everything a composed command carries across the executor hooks.
template <typename T>
struct ComposedState {
  explicit ComposedState(const Composition<T>& c) : comp(c) {}

  Composition<T> comp;  ///< the user's description, copied at enqueue
  mdag::Compiled cp;
  std::string audit_label;
  // DRAM materializations of cut edges without a sibling writer.
  std::vector<std::unique_ptr<Buffer<T>>> scratch;
  std::map<int, std::size_t> scratch_of;     ///< edge -> scratch index
  std::map<int, std::string> readback_name;  ///< cut edge -> consumer FIFO
  std::map<int, std::string> spill_name;     ///< cut edge -> producer FIFO
  // One checker per component: arm() rejects names foreign to a graph.
  std::vector<verify::GraphChecker> chk;
  /// Buffer-writer audits: node -> predicted checksum of the material-
  /// ized output (catches corruption past the last FIFO tap).
  std::vector<std::pair<int, mdag::EdgeChecksum>> audits;
};

/// The trsv dimension: rows of the solve, read off the output stream.
std::int64_t trsv_dim(const mdag::Mdag& g, const mdag::Compiled& cp, int u) {
  const auto outs = cp.out_edges(g, u);
  return per_pass(g.edge(outs[0]).produced);
}

/// True when edge `e` feeds the b port (port 1) of a TRSV node, whose
/// stream must arrive in solve order rather than natural order.
bool is_trsv_b(const mdag::Mdag& g, const mdag::Compiled& cp, int e) {
  const mdag::Edge& edge = g.edge(e);
  const mdag::Node& to = g.node(edge.to);
  if (to.type != mdag::NodeType::Compute || to.kind != RoutineKind::Trsv) {
    return false;
  }
  const auto ins = cp.in_edges(g, edge.to);
  return ins.size() == 2 && ins[1] == e;
}

/// Out-edges of `u` that stream in u's own component (everything except
/// cut edges served by a sibling DRAM writer).
std::vector<int> stream_branches(const mdag::Mdag& g, const mdag::Compiled& cp,
                                 int u) {
  std::vector<int> br;
  for (int e : cp.out_edges(g, u)) {
    if (!cp.edge_cut[static_cast<std::size_t>(e)] || cp.cut_of(e).writer < 0) {
      br.push_back(e);
    }
  }
  return br;
}

template <typename T>
const Buffer<T>* cut_source(const ComposedState<T>& st, int edge) {
  const mdag::CutEdge& cut = st.cp.cut_of(edge);
  if (cut.writer >= 0) {
    const auto& b = st.comp.binding(cut.writer);
    return b.in != nullptr ? b.in : b.out;
  }
  return st.scratch[st.scratch_of.at(edge)].get();
}

// ---- Streaming execution -------------------------------------------------

template <typename T>
void run_component(Context& ctx, ComposedState<T>& st, std::size_t c) {
  const mdag::Mdag& g = st.comp.graph();
  const mdag::Compiled& cp = st.cp;
  const auto& sem = st.comp.semantics();
  const int width = cp.options.width;
  if (cp.order[c].empty()) return;

  stream::Graph sg(ctx.mode());
  const auto f = sim::composition_frequency(
      cp.matrix_modules, PrecisionTraits<T>::value, ctx.device().spec());
  detail::BankSet banks(sg, ctx.device(), f.mhz);

  std::map<std::string, stream::Channel<T>*> ch;
  for (const CompiledChannel& cc : cp.channels[c]) {
    ch.emplace(cc.name,
               &sg.channel<T>(cc.name, static_cast<std::size_t>(cc.depth)));
  }
  const auto chan = [&](const std::string& name) -> stream::Channel<T>& {
    return *ch.at(name);
  };
  const auto branch_channel = [&](int e) -> stream::Channel<T>& {
    if (cp.edge_cut[static_cast<std::size_t>(e)]) {
      return chan(st.spill_name.at(e));
    }
    return chan(cp.edge_channel[static_cast<std::size_t>(e)]);
  };

  // Scalar collect targets must outlive run_graph.
  std::vector<std::unique_ptr<std::vector<T>>> held;
  std::vector<std::pair<T*, const std::vector<T>*>> scalars;

  for (int u : cp.order[c]) {
    const mdag::Node& node = g.node(u);
    const mdag::NodeSemantics& s = sem[static_cast<std::size_t>(u)];
    const auto ins = cp.in_edges(g, u);
    const auto br = stream_branches(g, cp, u);

    // Consumer side of cut in-edges: re-read the materialized stream.
    for (int e : ins) {
      if (!cp.edge_cut[static_cast<std::size_t>(e)]) continue;
      const mdag::StreamSig& sig = g.edge(e).consumed;
      const Buffer<T>* src = cut_source(st, e);
      stream::DramBank* bank = banks.at(src->bank());
      const std::string& name = st.readback_name.at(e);
      if (sig.is_matrix) {
        sg.spawn(name,
                 stream::read_matrix<T>(src->cmat(sig.rows, sig.cols),
                                        sig.sched, sig.repeat, width,
                                        chan(name), bank));
      } else if (is_trsv_b(g, cp, e)) {
        FBLAS_REQUIRE(sig.repeat == 1,
                      "composition: a TRSV b stream cannot be replayed");
        sg.spawn(name, detail::read_vector_solve_order<T>(
                           src->cvec(per_pass(sig)), op_uplo_of(s), width,
                           chan(name), bank));
      } else {
        sg.spawn(name,
                 stream::read_vector<T>(src->cvec(per_pass(sig)), sig.repeat,
                                        width, chan(name), bank));
      }
    }

    if (cp.has_zero(u)) {
      const std::size_t zi = cp.zero_index(u);
      sg.spawn(cp.zero_name[zi],
               stream::generate<T>(cp.zero_count[zi], T(0), width,
                                   chan(cp.zero_name[zi])));
    }

    if (node.type == mdag::NodeType::Interface && !s.is_output) {
      // All consumers may re-read the operand from DRAM directly.
      if (br.empty()) continue;
      stream::Channel<T>& dst =
          cp.has_trunk(u) ? chan(cp.trunk_of(u)) : branch_channel(br[0]);
      const mdag::StreamSig& sig = g.edge(br[0]).produced;
      const Buffer<T>& buf = *st.comp.binding(u).in;
      stream::DramBank* bank = banks.at(buf.bank());
      if (s.triangular) {
        const std::int64_t n = trsv_dim(g, cp, g.edge(br[0]).to);
        sg.spawn(node.name,
                 core::read_triangular<T>(buf.cmat(n, n), op_uplo_of(s), width,
                                          dst, bank, s.trans));
      } else if (sig.is_matrix) {
        sg.spawn(node.name,
                 stream::read_matrix<T>(buf.cmat(sig.rows, sig.cols), sig.sched,
                                        sig.repeat, width, dst, bank));
      } else if (br.size() == 1 && is_trsv_b(g, cp, br[0])) {
        FBLAS_REQUIRE(sig.repeat == 1,
                      "composition: a TRSV b stream cannot be replayed");
        sg.spawn(node.name,
                 detail::read_vector_solve_order<T>(
                     buf.cvec(per_pass(sig)),
                     op_uplo_of(sem[static_cast<std::size_t>(g.edge(br[0]).to)]),
                     width, dst, bank));
      } else {
        sg.spawn(node.name,
                 stream::read_vector<T>(buf.cvec(per_pass(sig)), sig.repeat,
                                        width, dst, bank));
      }
    } else if (node.type == mdag::NodeType::Interface) {
      // Writer: drain the in-stream into its binding.
      const int e = ins[0];
      const mdag::StreamSig& sig = g.edge(e).consumed;
      stream::Channel<T>& src =
          cp.edge_cut[static_cast<std::size_t>(e)]
              ? chan(st.readback_name.at(e))
              : chan(cp.edge_channel[static_cast<std::size_t>(e)]);
      const auto& b = st.comp.binding(u);
      if (b.scalar != nullptr) {
        held.emplace_back(new std::vector<T>());
        scalars.emplace_back(b.scalar, held.back().get());
        sg.spawn(node.name, stream::collect<T>(sig.count, src, *held.back()));
      } else {
        Buffer<T>& buf = *b.out;
        stream::DramBank* bank = banks.at(buf.bank());
        const mdag::Node& prod = g.node(g.edge(e).from);
        if (sig.is_matrix) {
          sg.spawn(node.name,
                   stream::write_matrix<T>(buf.mat(sig.rows, sig.cols),
                                           sig.sched, width, src, bank));
        } else if (prod.type == mdag::NodeType::Compute &&
                   prod.kind == RoutineKind::Trsv) {
          sg.spawn(node.name,
                   detail::write_vector_solve_order<T>(
                       buf.vec(per_pass(sig)),
                       op_uplo_of(sem[static_cast<std::size_t>(g.edge(e).from)]),
                       width, src, bank));
        } else {
          sg.spawn(node.name,
                   stream::write_vector<T>(buf.vec(per_pass(sig)), sig.repeat,
                                           width, src, bank));
        }
      }
    } else {
      // Compute node.
      std::vector<stream::Channel<T>*> in_ch;
      for (int e : ins) {
        in_ch.push_back(cp.edge_cut[static_cast<std::size_t>(e)]
                            ? &chan(st.readback_name.at(e))
                            : &chan(cp.edge_channel[static_cast<std::size_t>(e)]));
      }
      stream::Channel<T>& dst =
          cp.has_trunk(u) ? chan(cp.trunk_of(u)) : branch_channel(br[0]);
      const std::int64_t out_n = per_pass(g.edge(br[0]).produced);
      switch (node.kind) {
        case RoutineKind::Gemv: {
          const mdag::StreamSig& a = g.edge(ins[0]).consumed;
          core::GemvConfig cfg;
          cfg.trans = s.trans;
          cfg.tiling = a.sched.tile_order == Order::RowMajor
                           ? core::MatrixTiling::TilesByRows
                           : core::MatrixTiling::TilesByCols;
          cfg.width = width;
          cfg.tile_rows = a.sched.tile_rows;
          cfg.tile_cols = a.sched.tile_cols;
          cfg.elem_order = a.sched.elem_order;
          const T beta = cp.has_zero(u) ? T(0) : st.comp.beta_of(u);
          stream::Channel<T>& y0 =
              cp.has_zero(u) ? chan(cp.zero_name[cp.zero_index(u)])
                             : *in_ch[2];
          sg.spawn(node.name,
                   core::gemv<T>(cfg, a.rows, a.cols, st.comp.alpha_of(u),
                                 beta, *in_ch[0], *in_ch[1], y0, dst));
          break;
        }
        case RoutineKind::Ger: {
          const mdag::StreamSig& a = g.edge(ins[0]).consumed;
          core::GerConfig cfg;
          cfg.tiling = a.sched.tile_order == Order::RowMajor
                           ? core::MatrixTiling::TilesByRows
                           : core::MatrixTiling::TilesByCols;
          cfg.width = width;
          cfg.tile_rows = a.sched.tile_rows;
          cfg.tile_cols = a.sched.tile_cols;
          cfg.elem_order = a.sched.elem_order;
          sg.spawn(node.name,
                   core::ger<T>(cfg, a.rows, a.cols, st.comp.alpha_of(u),
                                *in_ch[0], *in_ch[1], *in_ch[2], dst));
          break;
        }
        case RoutineKind::Trsv: {
          const core::TrsvConfig cfg{op_uplo_of(s), s.diag, width};
          sg.spawn(node.name, core::trsv<T>(cfg, out_n, *in_ch[0], *in_ch[1],
                                            dst));
          break;
        }
        case RoutineKind::Axpy:
          sg.spawn(node.name, core::axpy<T>({width}, out_n, st.comp.alpha_of(u),
                                            *in_ch[0], *in_ch[1], dst));
          break;
        case RoutineKind::Scal:
          sg.spawn(node.name, core::scal<T>({width}, out_n, st.comp.alpha_of(u),
                                            *in_ch[0], dst));
          break;
        case RoutineKind::Dot: {
          const std::int64_t n = per_pass(g.edge(ins[0]).consumed);
          sg.spawn(node.name,
                   core::dot<T>({width}, n, *in_ch[0], *in_ch[1], dst));
          break;
        }
        default:
          throw ConfigError("composition: no lowering for node '" + node.name +
                            "'");
      }
    }

    if (cp.has_trunk(u)) {
      sg.spawn(node.name + ".fanout",
               stream::fanout2<T>(g.edge(br[0]).produced.count, width,
                                  chan(cp.trunk_of(u)), branch_channel(br[0]),
                                  branch_channel(br[1])));
    }

    // Producer side of scratch cuts: materialize the spill stream.
    for (int e : cp.out_edges(g, u)) {
      if (!cp.edge_cut[static_cast<std::size_t>(e)] ||
          cp.cut_of(e).writer >= 0) {
        continue;
      }
      const mdag::StreamSig& sig = g.edge(e).produced;
      Buffer<T>& scr = *st.scratch[st.scratch_of.at(e)];
      stream::DramBank* bank = banks.at(scr.bank());
      const std::string& name = st.spill_name.at(e);
      if (sig.is_matrix) {
        sg.spawn(name + ".w",
                 stream::write_matrix<T>(scr.mat(sig.rows, sig.cols), sig.sched,
                                         width, chan(name), bank));
      } else {
        sg.spawn(name + ".w",
                 stream::write_vector<T>(scr.vec(per_pass(sig)), sig.repeat,
                                         width, chan(name), bank));
      }
    }
  }

  verify::GraphChecker* chk =
      c < st.chk.size() && st.chk[c].active() ? &st.chk[c] : nullptr;
  if (chk != nullptr) chk->arm(sg);
  ctx.run_graph(sg);
  if (chk != nullptr) chk->capture(sg);
  for (const auto& [dst, vals] : scalars) *dst = vals->at(0);
}

// ---- CPU fallback: topological replay over refblas -----------------------

template <typename T>
void run_fallback(ComposedState<T>& st) {
  const mdag::Mdag& g = st.comp.graph();
  const mdag::Compiled& cp = st.cp;
  const auto& sem = st.comp.semantics();
  std::vector<std::vector<T>> val(g.edges().size());

  for (int u : g.topo_order()) {
    const mdag::Node& node = g.node(u);
    const mdag::NodeSemantics& s = sem[static_cast<std::size_t>(u)];
    const auto ins = cp.in_edges(g, u);
    const auto outs = cp.out_edges(g, u);
    if (node.type == mdag::NodeType::Interface && !s.is_output) {
      if (s.triangular) continue;  // the TRSV rule reads the binding
      const Buffer<T>& buf = *st.comp.binding(u).in;
      for (int e : outs) {
        const mdag::StreamSig& sig = g.edge(e).produced;
        const std::int64_t n =
            sig.is_matrix ? sig.rows * sig.cols : per_pass(sig);
        const auto view = buf.cvec(n);
        auto& v = val[static_cast<std::size_t>(e)];
        v.resize(static_cast<std::size_t>(n));
        for (std::int64_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = view[i];
      }
    } else if (node.type == mdag::NodeType::Interface) {
      const auto& b = st.comp.binding(u);
      const auto& v = val[static_cast<std::size_t>(ins[0])];
      if (b.scalar != nullptr) {
        *b.scalar = v.at(0);
      } else {
        auto view = b.out->vec(static_cast<std::int64_t>(v.size()));
        for (std::size_t i = 0; i < v.size(); ++i) {
          view[static_cast<std::int64_t>(i)] = v[i];
        }
      }
    } else {
      std::vector<T> out;
      switch (node.kind) {
        case RoutineKind::Gemv: {
          const mdag::StreamSig& a = g.edge(ins[0]).consumed;
          const std::int64_t on = s.trans == Transpose::None ? a.rows : a.cols;
          const std::int64_t in_n = s.trans == Transpose::None ? a.cols : a.rows;
          if (ins.size() == 3) {
            out = val[static_cast<std::size_t>(ins[2])];
          } else {
            out.assign(static_cast<std::size_t>(on), T(0));
          }
          const T beta = cp.has_zero(u) ? T(0) : st.comp.beta_of(u);
          ref::gemv<T>(s.trans, st.comp.alpha_of(u),
                       MatrixView<const T>(
                           val[static_cast<std::size_t>(ins[0])].data(), a.rows,
                           a.cols),
                       VectorView<const T>(
                           val[static_cast<std::size_t>(ins[1])].data(), in_n),
                       beta, VectorView<T>(out.data(), on));
          break;
        }
        case RoutineKind::Ger: {
          const mdag::StreamSig& a = g.edge(ins[0]).consumed;
          out = val[static_cast<std::size_t>(ins[0])];
          ref::ger<T>(st.comp.alpha_of(u),
                      VectorView<const T>(
                          val[static_cast<std::size_t>(ins[1])].data(), a.rows),
                      VectorView<const T>(
                          val[static_cast<std::size_t>(ins[2])].data(), a.cols),
                      MatrixView<T>(out.data(), a.rows, a.cols));
          break;
        }
        case RoutineKind::Trsv: {
          const std::int64_t n = trsv_dim(g, cp, u);
          const Buffer<T>& a = *st.comp.binding(g.edge(ins[0]).from).in;
          out = val[static_cast<std::size_t>(ins[1])];
          ref::trsv<T>(s.uplo, s.trans, s.diag, a.cmat(n, n),
                       VectorView<T>(out.data(), n));
          break;
        }
        case RoutineKind::Axpy: {
          out = val[static_cast<std::size_t>(ins[1])];
          ref::axpy<T>(st.comp.alpha_of(u),
                       VectorView<const T>(
                           val[static_cast<std::size_t>(ins[0])].data(),
                           static_cast<std::int64_t>(out.size())),
                       VectorView<T>(out.data(),
                                     static_cast<std::int64_t>(out.size())));
          break;
        }
        case RoutineKind::Scal: {
          out = val[static_cast<std::size_t>(ins[0])];
          ref::scal<T>(st.comp.alpha_of(u),
                       VectorView<T>(out.data(),
                                     static_cast<std::int64_t>(out.size())));
          break;
        }
        case RoutineKind::Dot: {
          const auto& x = val[static_cast<std::size_t>(ins[0])];
          const auto& y = val[static_cast<std::size_t>(ins[1])];
          out = {ref::dot<T>(
              VectorView<const T>(x.data(), static_cast<std::int64_t>(x.size())),
              VectorView<const T>(y.data(),
                                  static_cast<std::int64_t>(y.size())))};
          break;
        }
        default:
          throw ConfigError("composition: no fallback for node '" + node.name +
                            "'");
      }
      for (std::size_t i = 0; i < outs.size(); ++i) {
        val[static_cast<std::size_t>(outs[i])] =
            i + 1 == outs.size() ? std::move(out) : out;
      }
    }
  }
}

// ---- Checksum predictions ------------------------------------------------

/// Per-pass stream values of one edge, evaluated in double over the host
/// operands (matrices in row-major storage order).
struct Flow {
  std::vector<double> vals;
  double sum = 0.0;
  double asum = 0.0;
  std::int64_t terms = 0;

  void finalize() {
    sum = asum = 0.0;
    for (double v : vals) {
      sum += v;
      asum += std::abs(v);
    }
  }
};

mdag::EdgeChecksum scaled(const Flow& f, std::int64_t repeat) {
  const double r = static_cast<double>(std::max<std::int64_t>(1, repeat));
  return {f.sum * r, f.asum * r,
          f.terms * std::max<std::int64_t>(1, repeat)};
}

template <typename T>
void prepare_predictions(ComposedState<T>& st) {
  const mdag::Mdag& g = st.comp.graph();
  const mdag::Compiled& cp = st.cp;
  const auto& sem = st.comp.semantics();
  const double eps = static_cast<double>(std::numeric_limits<T>::epsilon());
  std::vector<Flow> flow(g.edges().size());
  st.audits.clear();

  for (int u : g.topo_order()) {
    const mdag::Node& node = g.node(u);
    const mdag::NodeSemantics& s = sem[static_cast<std::size_t>(u)];
    const auto ins = cp.in_edges(g, u);
    const auto outs = cp.out_edges(g, u);
    const auto in_flow = [&](std::size_t port) -> const Flow& {
      return flow[static_cast<std::size_t>(ins[port])];
    };

    if (node.type == mdag::NodeType::Interface && !s.is_output) {
      const Buffer<T>& buf = *st.comp.binding(u).in;
      for (int e : outs) {
        Flow& f = flow[static_cast<std::size_t>(e)];
        if (s.triangular) {
          const std::int64_t n = trsv_dim(g, cp, g.edge(e).to);
          const auto a = buf.cmat(n, n);
          const Uplo tri = op_uplo_of(s);
          for (std::int64_t i = 0; i < n; ++i) {
            for (std::int64_t j = 0; j < n; ++j) {
              if (tri == Uplo::Lower ? j > i : j < i) continue;
              f.vals.push_back(static_cast<double>(
                  s.trans == Transpose::None ? a(i, j) : a(j, i)));
            }
          }
        } else {
          const mdag::StreamSig& sig = g.edge(e).produced;
          const std::int64_t n =
              sig.is_matrix ? sig.rows * sig.cols : per_pass(sig);
          const auto view = buf.cvec(n);
          f.vals.resize(static_cast<std::size_t>(n));
          for (std::int64_t i = 0; i < n; ++i) {
            f.vals[static_cast<std::size_t>(i)] = static_cast<double>(view[i]);
          }
        }
        f.terms = static_cast<std::int64_t>(f.vals.size());
        f.finalize();
      }
    } else if (node.type == mdag::NodeType::Interface) {
      if (st.comp.binding(u).out != nullptr) {
        st.audits.emplace_back(
            u, scaled(in_flow(0), g.edge(ins[0]).consumed.repeat));
      }
    } else {
      Flow out;
      switch (node.kind) {
        case RoutineKind::Gemv: {
          const mdag::StreamSig& a = g.edge(ins[0]).consumed;
          const std::int64_t on = s.trans == Transpose::None ? a.rows : a.cols;
          const std::int64_t in_n = s.trans == Transpose::None ? a.cols : a.rows;
          const Flow& af = in_flow(0);
          const Flow& xf = in_flow(1);
          const double beta = cp.has_zero(u) ? 0.0 : s.beta;
          out.vals.resize(static_cast<std::size_t>(on));
          for (std::int64_t i = 0; i < on; ++i) {
            double acc = 0.0;
            for (std::int64_t j = 0; j < in_n; ++j) {
              const double av =
                  s.trans == Transpose::None
                      ? af.vals[static_cast<std::size_t>(i * a.cols + j)]
                      : af.vals[static_cast<std::size_t>(j * a.cols + i)];
              acc += av * xf.vals[static_cast<std::size_t>(j)];
            }
            double y0 = 0.0;
            if (ins.size() == 3) y0 = in_flow(2).vals[static_cast<std::size_t>(i)];
            out.vals[static_cast<std::size_t>(i)] = s.alpha * acc + beta * y0;
          }
          out.terms = a.rows * a.cols + af.terms + xf.terms +
                      (ins.size() == 3 ? in_flow(2).terms : on);
          break;
        }
        case RoutineKind::Ger: {
          const mdag::StreamSig& a = g.edge(ins[0]).consumed;
          const Flow& af = in_flow(0);
          const Flow& xf = in_flow(1);
          const Flow& yf = in_flow(2);
          out.vals.resize(static_cast<std::size_t>(a.rows * a.cols));
          for (std::int64_t i = 0; i < a.rows; ++i) {
            for (std::int64_t j = 0; j < a.cols; ++j) {
              out.vals[static_cast<std::size_t>(i * a.cols + j)] =
                  af.vals[static_cast<std::size_t>(i * a.cols + j)] +
                  s.alpha * xf.vals[static_cast<std::size_t>(i)] *
                      yf.vals[static_cast<std::size_t>(j)];
            }
          }
          out.terms = af.terms + xf.terms * yf.terms;
          break;
        }
        case RoutineKind::Trsv: {
          // Re-solve in double: the mdag::trsv_propagate rule, with the
          // b checksum folded into the bound.
          const std::int64_t n = trsv_dim(g, cp, u);
          const Buffer<T>& abuf = *st.comp.binding(g.edge(ins[0]).from).in;
          const auto a = abuf.cmat(n, n);
          const Flow& bf = in_flow(1);
          const auto op = [&](std::int64_t i, std::int64_t j) {
            return static_cast<double>(s.trans == Transpose::None ? a(i, j)
                                                                  : a(j, i));
          };
          const Uplo tri = op_uplo_of(s);
          out.vals.assign(static_cast<std::size_t>(n), 0.0);
          for (std::int64_t k = 0; k < n; ++k) {
            const std::int64_t i = tri == Uplo::Lower ? k : n - 1 - k;
            const std::int64_t j0 = tri == Uplo::Lower ? 0 : i + 1;
            const std::int64_t j1 = tri == Uplo::Lower ? i : n;
            double acc = bf.vals[static_cast<std::size_t>(i)];
            for (std::int64_t j = j0; j < j1; ++j) {
              acc -= op(i, j) * out.vals[static_cast<std::size_t>(j)];
            }
            out.vals[static_cast<std::size_t>(i)] =
                s.diag == Diag::Unit ? acc : acc / op(i, i);
          }
          out.terms = n * n + bf.terms;
          out.finalize();
          // When b is a materialized operand, the satellite rule predicts
          // the same checksum straight from the bindings — use it.
          const mdag::Node& bprod = g.node(g.edge(ins[1]).from);
          if (bprod.type == mdag::NodeType::Interface) {
            const Buffer<T>& bbuf = *st.comp.binding(g.edge(ins[1]).from).in;
            const mdag::EdgeChecksum pc = mdag::trsv_propagate<T>(
                s.uplo, s.trans, s.diag, abuf.cmat(n, n), bbuf.cvec(n));
            out.sum = pc.pred;
            out.asum = pc.mag;
            out.terms = pc.terms + bf.terms;
          }
          for (int e : outs) flow[static_cast<std::size_t>(e)] = out;
          continue;  // finalized above; skip the generic epilogue
        }
        case RoutineKind::Axpy: {
          const Flow& xf = in_flow(0);
          const Flow& yf = in_flow(1);
          out.vals.resize(xf.vals.size());
          for (std::size_t i = 0; i < out.vals.size(); ++i) {
            out.vals[i] = s.alpha * xf.vals[i] + yf.vals[i];
          }
          out.terms = xf.terms + yf.terms;
          break;
        }
        case RoutineKind::Scal: {
          const Flow& xf = in_flow(0);
          out.vals.resize(xf.vals.size());
          for (std::size_t i = 0; i < out.vals.size(); ++i) {
            out.vals[i] = s.alpha * xf.vals[i];
          }
          out.terms = xf.terms;
          break;
        }
        case RoutineKind::Dot: {
          const Flow& xf = in_flow(0);
          const Flow& yf = in_flow(1);
          double acc = 0.0;
          for (std::size_t i = 0; i < xf.vals.size(); ++i) {
            acc += xf.vals[i] * yf.vals[i];
          }
          out.vals = {acc};
          out.terms = xf.terms + yf.terms +
                      static_cast<std::int64_t>(xf.vals.size());
          break;
        }
        default:
          throw ConfigError("composition: no checksum rule for node '" +
                            node.name + "'");
      }
      out.finalize();
      for (int e : outs) flow[static_cast<std::size_t>(e)] = out;
    }
  }

  // Expectations per component, in the compiler's tap order (topological:
  // check() reports the FIRST divergent FIFO).
  st.chk.assign(cp.channels.size(), verify::GraphChecker());
  for (std::size_t c = 0; c < cp.channels.size(); ++c) {
    st.chk[c].reset(st.comp.name());
    for (const CompiledChannel& cc : cp.channels[c]) {
      mdag::EdgeChecksum pred;
      switch (cc.role) {
        case CompiledChannel::Role::Edge:
        case CompiledChannel::Role::Spill:
          pred = scaled(flow[static_cast<std::size_t>(cc.id)],
                        g.edge(cc.id).produced.repeat);
          break;
        case CompiledChannel::Role::Readback:
          pred = scaled(flow[static_cast<std::size_t>(cc.id)],
                        g.edge(cc.id).consumed.repeat);
          break;
        case CompiledChannel::Role::Trunk: {
          const int e0 = stream_branches(g, cp, cc.id)[0];
          pred = scaled(flow[static_cast<std::size_t>(e0)],
                        g.edge(e0).produced.repeat);
          break;
        }
        case CompiledChannel::Role::Zero:
          pred = mdag::zero_checksum(
              cp.zero_count[cp.zero_index(cc.id)]);
          break;
      }
      st.chk[c].expect(cc.name, pred, eps);
    }
  }
}

template <typename T>
void check_results(const ComposedState<T>& st, double scale) {
  for (const verify::GraphChecker& chk : st.chk) {
    if (chk.active()) chk.check(scale);
  }
  const mdag::Mdag& g = st.comp.graph();
  for (const auto& [u, pred] : st.audits) {
    const mdag::Edge& e = g.edge(st.cp.in_edges(g, u)[0]);
    const std::int64_t n = e.consumed.is_matrix
                               ? e.consumed.rows * e.consumed.cols
                               : per_pass(e.consumed);
    verify::check_output<T>(pred, st.audit_label.c_str(),
                            st.comp.binding(u).out->cvec(n), scale);
  }
}

}  // namespace

// ---- Enqueue -------------------------------------------------------------

template <typename T>
Event Context::run_composition_async(const Composition<T>& comp) {
  const RoutineConfig& rc = config();
  mdag::CompileOptions co;
  co.width = rc.width;
  co.max_channel_depth = comp.max_channel_depth();
  co.prefer_sizing = !comp.split_preferred();
  co.allow_split = !comp.streaming_required();

  auto st = std::make_shared<ComposedState<T>>(comp);
  // Rejection happens HERE, at enqueue: an unexecutable description
  // throws ConfigError with the validity diagnostic before any command
  // is queued.
  st->cp = mdag::compile(comp.graph(), comp.semantics(), co);
  st->audit_label = comp.name() + "_composed";

  const mdag::Mdag& g = st->comp.graph();
  const auto& sem = st->comp.semantics();
  for (int u = 0; u < g.node_count(); ++u) {
    const mdag::Node& node = g.node(u);
    const mdag::NodeSemantics& s = sem[static_cast<std::size_t>(u)];
    const auto& b = st->comp.binding(u);
    if (node.type != mdag::NodeType::Interface) {
      if (node.kind == RoutineKind::Trsv) {
        const auto ins = st->cp.in_edges(g, u);
        const mdag::Node& aprod = g.node(g.edge(ins[0]).from);
        FBLAS_REQUIRE(
            aprod.type == mdag::NodeType::Interface &&
                sem[static_cast<std::size_t>(g.edge(ins[0]).from)].triangular,
            "composition: the TRSV A operand must come from a triangular "
            "reader");
        FBLAS_REQUIRE(!st->cp.edge_cut[static_cast<std::size_t>(ins[0])],
                      "composition: a triangular stream cannot round-trip "
                      "through DRAM");
      }
      continue;
    }
    if (s.is_output) {
      FBLAS_REQUIRE(b.out != nullptr || b.scalar != nullptr,
                    "composition: writer '" + node.name + "' has no binding");
    } else {
      FBLAS_REQUIRE(b.in != nullptr,
                    "composition: reader '" + node.name + "' has no binding");
      if (s.triangular) {
        FBLAS_REQUIRE(st->cp.out_edges(g, u).size() == 1,
                      "composition: a triangular reader feeds exactly one "
                      "TRSV");
      }
    }
  }

  // Scratch buffers for cut edges no interface writer already carries.
  // They are DRAM plumbing, not part of the command's semantic write set:
  // every value that crosses them is covered by the spill/readback taps.
  for (const mdag::CutEdge& cut : st->cp.cuts) {
    if (cut.writer >= 0) continue;
    st->scratch_of[cut.edge] = st->scratch.size();
    st->scratch.push_back(std::make_unique<Buffer<T>>(
        device(), cut.scratch_elems,
        static_cast<int>(st->scratch.size()) % device().bank_count()));
  }
  for (const auto& list : st->cp.channels) {
    for (const CompiledChannel& cc : list) {
      if (cc.role == CompiledChannel::Role::Readback) {
        st->readback_name[cc.id] = cc.name;
      } else if (cc.role == CompiledChannel::Role::Spill) {
        st->spill_name[cc.id] = cc.name;
      }
    }
  }

  Command command;
  command.label = "composition";
  for (int u = 0; u < g.node_count(); ++u) {
    if (g.node(u).type != mdag::NodeType::Interface) continue;
    const auto& b = st->comp.binding(u);
    if (b.in != nullptr) command.reads.push_back(b.in);
    if (b.out != nullptr) command.writes.push_back(b.out);
    if (b.scalar != nullptr) command.writes.push_back(b.scalar);
  }
  command.work = [this, st] {
    for (std::size_t c = 0; c < st->cp.order.size(); ++c) {
      run_component<T>(*this, *st, c);
    }
  };
  command.fallback = [st] { run_fallback<T>(*st); };
  if (rc.verification.enabled()) {
    command.verify_prepare = [st] { prepare_predictions<T>(*st); };
    command.verify_check = [st,
                            scale = rc.verification.tolerance_scale()] {
      check_results<T>(*st, scale);
    };
  }
  return enqueue(std::move(command));
}

template <typename T>
Event Context::run_composition_async(const Composition<T>& comp,
                                     const verify::Options& vo) {
  RoutineConfig rc = config();
  rc.verification = vo;
  ConfigGuard guard = with(rc);
  return run_composition_async(comp);
}

template Event Context::run_composition_async<float>(const Composition<float>&);
template Event Context::run_composition_async<double>(
    const Composition<double>&);
template Event Context::run_composition_async<float>(
    const Composition<float>&, const verify::Options&);
template Event Context::run_composition_async<double>(
    const Composition<double>&, const verify::Options&);

}  // namespace fblas::host
