// Events: handles to enqueued commands. Library calls can be synchronous
// (wait immediately) or asynchronous (return an Event; the command runs
// when the event is waited on or the queue is finished) — Sec. II-B.
#pragma once

#include <cstdint>

namespace fblas::host {

class Context;

class Event {
 public:
  Event() = default;

  /// True once the command has executed.
  bool done() const;

  /// Executes queued commands up to and including this one.
  void wait();

 private:
  friend class Context;
  Event(Context* ctx, std::uint64_t seq) : ctx_(ctx), seq_(seq) {}

  Context* ctx_ = nullptr;
  std::uint64_t seq_ = 0;
};

}  // namespace fblas::host
