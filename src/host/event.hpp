// Events: handles to enqueued commands. Library calls can be synchronous
// (wait immediately) or asynchronous (return an Event) — Sec. II-B.
// A default-constructed Event is a completed one: done() is true and
// wait() is a no-op, so event-typed members need no sentinel handling.
#pragma once

#include <cstdint>
#include <span>

#include "host/status.hpp"

namespace fblas::host {

class Context;

class Event {
 public:
  Event() = default;

  /// True once the command has executed (always true for a default-
  /// constructed Event).
  bool done() const;

  /// Blocks until the command has executed; under the serial policy this
  /// runs queued commands up to and including this one. No-op for a
  /// default-constructed Event.
  void wait();

  /// Observable outcome of the command (Pending / Running / Ok / Failed /
  /// Degraded plus the error or degradation message) — lets async
  /// callers detect failures without wait() throwing being the only
  /// channel. Never blocks. A default-constructed Event reports Ok.
  CommandStatus status() const;

  /// Waits on every event in order.
  static void wait_all(std::span<Event> events) {
    for (Event& e : events) e.wait();
  }

 private:
  friend class Context;
  Event(Context* ctx, std::uint64_t seq) : ctx_(ctx), seq_(seq) {}

  Context* ctx_ = nullptr;
  std::uint64_t seq_ = 0;
};

}  // namespace fblas::host
