// Simulated FPGA board seen from the host: a device model plus DDR banks
// with capacity accounting. Mirrors the paper's OpenCL flow where the BSP
// offers no automatic interleaving and data must be manually allocated to
// a specific DDR bank (Sec. VI-A).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "host/fault_injector.hpp"
#include "sim/device.hpp"

namespace fblas::host {

class Device {
 public:
  explicit Device(sim::DeviceId id = sim::DeviceId::Stratix10);

  const sim::DeviceSpec& spec() const { return *spec_; }
  int bank_count() const { return spec_->ddr_banks; }

  /// Bytes currently allocated on `bank`.
  std::uint64_t allocated_bytes(int bank) const;
  /// Bank capacity in bytes.
  std::uint64_t bank_capacity_bytes() const;

  /// Allocation bookkeeping (used by Buffer). Throws ConfigError for an
  /// unknown bank and FitError when the bank is full. Thread-safe:
  /// commands running on executor workers may allocate scratch buffers.
  void note_alloc(int bank, std::uint64_t bytes);
  void note_free(int bank, std::uint64_t bytes);

  /// Seeded fault injection (see FaultInjector). `inject_faults`
  /// validates the configuration (ConfigError naming the bad knob) and
  /// arms the injector for subsequent kernel launches; configure it
  /// while the executor is idle.
  void inject_faults(const FaultConfig& cfg) {
    cfg.validate();
    faults_.configure(cfg);
  }
  FaultInjector& faults() { return faults_; }
  const FaultInjector& faults() const { return faults_; }

  /// One registry entry: the raw device bytes, the DDR bank they are
  /// accounted against, and the owner's re-home callback — how the
  /// DevicePool moves a quarantined device's buffers onto a healthy
  /// sibling (the callback points the owning Buffer at its new home).
  struct BufferRecord {
    std::span<std::byte> bytes;
    int bank = 0;
    std::function<void(Device&, int)> rehome;
  };

  /// Device-buffer registry (maintained by Buffer). Maps the Buffer
  /// object's address — the key commands declare in their read/write
  /// sets — to the raw device bytes, so the runtime can snapshot,
  /// restore, and corrupt write-sets without knowing element types.
  /// Thread-safe: buffers are created/destroyed on executor workers.
  void register_buffer(const void* key, std::span<std::byte> bytes,
                       int bank = 0,
                       std::function<void(Device&, int)> rehome = {});
  void unregister_buffer(const void* key);
  /// Raw bytes of a registered buffer; empty span for unknown keys
  /// (e.g. host scalar result pointers, which are also valid set keys).
  std::span<std::byte> buffer_bytes(const void* key) const;
  /// True when `key` is registered here — residency, as distinct from
  /// buffer_bytes (whose empty span cannot tell a zero-length buffer
  /// from an unknown key).
  bool has_buffer(const void* key) const;

  /// Migration support (DevicePool): atomically removes and returns the
  /// record for `key` (false when unknown), and installs a record taken
  /// from another device. Neither touches bank accounting — the pool
  /// moves the note_alloc/note_free bookkeeping explicitly so a failed
  /// re-stage can put the record back untouched.
  bool take_buffer(const void* key, BufferRecord* out);
  void install_buffer(const void* key, BufferRecord rec);

 private:
  const sim::DeviceSpec* spec_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> allocated_;
  std::unordered_map<const void*, BufferRecord> buffers_;
  FaultInjector faults_;
};

}  // namespace fblas::host
