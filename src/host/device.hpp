// Simulated FPGA board seen from the host: a device model plus DDR banks
// with capacity accounting. Mirrors the paper's OpenCL flow where the BSP
// offers no automatic interleaving and data must be manually allocated to
// a specific DDR bank (Sec. VI-A).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "sim/device.hpp"

namespace fblas::host {

class Device {
 public:
  explicit Device(sim::DeviceId id = sim::DeviceId::Stratix10);

  const sim::DeviceSpec& spec() const { return *spec_; }
  int bank_count() const { return spec_->ddr_banks; }

  /// Bytes currently allocated on `bank`.
  std::uint64_t allocated_bytes(int bank) const;
  /// Bank capacity in bytes.
  std::uint64_t bank_capacity_bytes() const;

  /// Allocation bookkeeping (used by Buffer). Throws ConfigError for an
  /// unknown bank and FitError when the bank is full. Thread-safe:
  /// commands running on executor workers may allocate scratch buffers.
  void note_alloc(int bank, std::uint64_t bytes);
  void note_free(int bank, std::uint64_t bytes);

 private:
  const sim::DeviceSpec* spec_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> allocated_;
};

}  // namespace fblas::host
