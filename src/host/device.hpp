// Simulated FPGA board seen from the host: a device model plus DDR banks
// with capacity accounting. Mirrors the paper's OpenCL flow where the BSP
// offers no automatic interleaving and data must be manually allocated to
// a specific DDR bank (Sec. VI-A).
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "host/fault_injector.hpp"
#include "sim/device.hpp"

namespace fblas::host {

class Device {
 public:
  explicit Device(sim::DeviceId id = sim::DeviceId::Stratix10);

  const sim::DeviceSpec& spec() const { return *spec_; }
  int bank_count() const { return spec_->ddr_banks; }

  /// Bytes currently allocated on `bank`.
  std::uint64_t allocated_bytes(int bank) const;
  /// Bank capacity in bytes.
  std::uint64_t bank_capacity_bytes() const;

  /// Allocation bookkeeping (used by Buffer). Throws ConfigError for an
  /// unknown bank and FitError when the bank is full. Thread-safe:
  /// commands running on executor workers may allocate scratch buffers.
  void note_alloc(int bank, std::uint64_t bytes);
  void note_free(int bank, std::uint64_t bytes);

  /// Seeded fault injection (see FaultInjector). `inject_faults` arms the
  /// injector for subsequent kernel launches; configure it while the
  /// executor is idle.
  void inject_faults(const FaultConfig& cfg) { faults_.configure(cfg); }
  FaultInjector& faults() { return faults_; }
  const FaultInjector& faults() const { return faults_; }

  /// Device-buffer registry (maintained by Buffer). Maps the Buffer
  /// object's address — the key commands declare in their read/write
  /// sets — to the raw device bytes, so the runtime can snapshot,
  /// restore, and corrupt write-sets without knowing element types.
  /// Thread-safe: buffers are created/destroyed on executor workers.
  void register_buffer(const void* key, std::span<std::byte> bytes);
  void unregister_buffer(const void* key);
  /// Raw bytes of a registered buffer; empty span for unknown keys
  /// (e.g. host scalar result pointers, which are also valid set keys).
  std::span<std::byte> buffer_bytes(const void* key) const;

 private:
  const sim::DeviceSpec* spec_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> allocated_;
  std::unordered_map<const void*, std::span<std::byte>> buffers_;
  FaultInjector faults_;
};

}  // namespace fblas::host
