#include "host/fault_injector.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace fblas::host {
namespace {

// splitmix64: cheap, well-mixed 64-bit hash (public-domain constants).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t draw(std::uint64_t seed, std::uint64_t seq, int attempt,
                   std::uint64_t stream) {
  std::uint64_t h = mix64(seed ^ 0xa0761d6478bd642fULL);
  h = mix64(h ^ seq);
  h = mix64(h ^ (static_cast<std::uint64_t>(attempt) + 1));
  return mix64(h ^ stream);
}

double unit_interval(std::uint64_t h) {
  // 53 mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// The probe decision stream; decide() uses 0, corrupt_offset 1, and the
// systolic fault plan 2-8, so probes never perturb real draws.
constexpr std::uint64_t kProbeStream = 15;

void check_rate(double rate, const char* knob) {
  if (std::isnan(rate) || rate < 0.0 || rate > 1.0) {
    std::ostringstream os;
    os << "FaultConfig." << knob << " must be within [0, 1] (got " << rate
       << ")";
    throw ConfigError(os.str());
  }
}

}  // namespace

void FaultConfig::validate() const {
  check_rate(launch_fail_rate, "launch_fail_rate");
  check_rate(corrupt_rate, "corrupt_rate");
  check_rate(wedge_rate, "wedge_rate");
  check_rate(silent_corrupt_rate, "silent_corrupt_rate");
  check_rate(channel_corrupt_rate, "channel_corrupt_rate");
  check_rate(pe_fault_rate, "pe_fault_rate");
  const DeviceFaultWindow& w = device_fault_window;
  if (w.end < w.begin) {
    std::ostringstream os;
    os << "FaultConfig.device_fault_window must not be inverted (begin "
       << w.begin << " > end " << w.end << ")";
    throw ConfigError(os.str());
  }
  if (std::isnan(w.multiplier) || std::isinf(w.multiplier) ||
      w.multiplier < 0.0) {
    std::ostringstream os;
    os << "FaultConfig.device_fault_window.multiplier must be finite and "
          ">= 0 (got "
       << w.multiplier << ")";
    throw ConfigError(os.str());
  }
}

void FaultInjector::configure(const FaultConfig& cfg) {
  cfg_ = cfg;
  injected_.store(0, std::memory_order_relaxed);
  sick_faults_.store(0, std::memory_order_relaxed);
  budget_.store(cfg.max_faults, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void FaultInjector::disable() {
  enabled_.store(false, std::memory_order_release);
}

namespace {

// Shared edge walk for decide() and probe(): the cumulative-rate check
// with the sick-window multiplier applied to the board-sickness modes
// (launch / corrupt / wedge / silent); channel and PE faults model
// pipeline damage, not board health, and keep their base rates.
FaultKind classify(const FaultConfig& cfg, double u, double mult) {
  double edge = cfg.launch_fail_rate * mult;
  if (u < edge) return FaultKind::LaunchFail;
  if (u < (edge += cfg.corrupt_rate * mult)) return FaultKind::CorruptTransfer;
  if (u < (edge += cfg.wedge_rate * mult)) return FaultKind::Wedge;
  if (u < (edge += cfg.silent_corrupt_rate * mult)) {
    return FaultKind::SilentCorrupt;
  }
  if (u < (edge += cfg.channel_corrupt_rate)) return FaultKind::ChannelCorrupt;
  if (u < (edge += cfg.pe_fault_rate)) return FaultKind::PeFault;
  return FaultKind::None;
}

bool in_window(const FaultConfig& cfg, std::uint64_t seq) {
  const DeviceFaultWindow& w = cfg.device_fault_window;
  return w.active() && seq >= w.begin && seq < w.end;
}

}  // namespace

FaultKind FaultInjector::decide(std::uint64_t seq, int attempt) {
  if (!enabled_.load(std::memory_order_acquire)) return FaultKind::None;
  const double u = unit_interval(draw(cfg_.seed, seq, attempt, 0));
  const bool sick = in_window(cfg_, seq);
  const FaultKind kind =
      classify(cfg_, u, sick ? cfg_.device_fault_window.multiplier : 1.0);
  if (kind == FaultKind::None) return kind;
  // Consume the fault budget; a drawn fault past the budget fires as None
  // so long runs stay bounded. Budget < 0 means unlimited.
  int budget = budget_.load(std::memory_order_relaxed);
  while (budget >= 0) {
    if (budget == 0) return FaultKind::None;
    if (budget_.compare_exchange_weak(budget, budget - 1,
                                      std::memory_order_relaxed)) {
      break;
    }
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  if (sick) sick_faults_.fetch_add(1, std::memory_order_relaxed);
  return kind;
}

FaultKind FaultInjector::probe(std::uint64_t seq) const {
  if (!enabled_.load(std::memory_order_acquire)) return FaultKind::None;
  // An exhausted budget means no further fault can fire — a probe would
  // launch clean, so report that instead of keeping the breaker open.
  if (budget_.load(std::memory_order_relaxed) == 0) return FaultKind::None;
  const double u = unit_interval(draw(cfg_.seed, seq, 0, kProbeStream));
  const bool sick = in_window(cfg_, seq);
  return classify(cfg_, u, sick ? cfg_.device_fault_window.multiplier : 1.0);
}

void FaultInjector::retract() {
  injected_.fetch_sub(1, std::memory_order_relaxed);
  int budget = budget_.load(std::memory_order_relaxed);
  while (budget >= 0 &&
         !budget_.compare_exchange_weak(budget, budget + 1,
                                        std::memory_order_relaxed)) {
  }
}

std::uint64_t FaultInjector::corrupt_offset(std::uint64_t seq, int attempt,
                                            std::uint64_t size) const {
  if (size == 0) return 0;
  return draw(cfg_.seed, seq, attempt, 1) % size;
}

std::uint64_t FaultInjector::pick(std::uint64_t seq, int attempt,
                                  std::uint64_t stream,
                                  std::uint64_t bound) const {
  if (bound == 0) return 0;
  return draw(cfg_.seed, seq, attempt, stream) % bound;
}

void FaultInjector::record_victim(const std::string& channel) {
  std::lock_guard<std::mutex> lk(victim_mu_);
  last_victim_ = channel;
}

std::string FaultInjector::last_victim() const {
  std::lock_guard<std::mutex> lk(victim_mu_);
  return last_victim_;
}

void FaultInjector::record_pe_victim(const PeVictim& victim) {
  std::lock_guard<std::mutex> lk(victim_mu_);
  last_pe_victim_ = victim;
}

PeVictim FaultInjector::last_pe_victim() const {
  std::lock_guard<std::mutex> lk(victim_mu_);
  return last_pe_victim_;
}

}  // namespace fblas::host
