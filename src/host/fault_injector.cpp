#include "host/fault_injector.hpp"

namespace fblas::host {
namespace {

// splitmix64: cheap, well-mixed 64-bit hash (public-domain constants).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t draw(std::uint64_t seed, std::uint64_t seq, int attempt,
                   std::uint64_t stream) {
  std::uint64_t h = mix64(seed ^ 0xa0761d6478bd642fULL);
  h = mix64(h ^ seq);
  h = mix64(h ^ (static_cast<std::uint64_t>(attempt) + 1));
  return mix64(h ^ stream);
}

double unit_interval(std::uint64_t h) {
  // 53 mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

void FaultInjector::configure(const FaultConfig& cfg) {
  cfg_ = cfg;
  injected_.store(0, std::memory_order_relaxed);
  budget_.store(cfg.max_faults, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void FaultInjector::disable() {
  enabled_.store(false, std::memory_order_release);
}

FaultKind FaultInjector::decide(std::uint64_t seq, int attempt) {
  if (!enabled_.load(std::memory_order_acquire)) return FaultKind::None;
  const double u = unit_interval(draw(cfg_.seed, seq, attempt, 0));
  FaultKind kind = FaultKind::None;
  double edge = cfg_.launch_fail_rate;
  if (u < edge) {
    kind = FaultKind::LaunchFail;
  } else if (u < (edge += cfg_.corrupt_rate)) {
    kind = FaultKind::CorruptTransfer;
  } else if (u < (edge += cfg_.wedge_rate)) {
    kind = FaultKind::Wedge;
  } else if (u < (edge += cfg_.silent_corrupt_rate)) {
    kind = FaultKind::SilentCorrupt;
  } else if (u < (edge += cfg_.channel_corrupt_rate)) {
    kind = FaultKind::ChannelCorrupt;
  } else if (u < (edge += cfg_.pe_fault_rate)) {
    kind = FaultKind::PeFault;
  }
  if (kind == FaultKind::None) return kind;
  // Consume the fault budget; a drawn fault past the budget fires as None
  // so long runs stay bounded. Budget < 0 means unlimited.
  int budget = budget_.load(std::memory_order_relaxed);
  while (budget >= 0) {
    if (budget == 0) return FaultKind::None;
    if (budget_.compare_exchange_weak(budget, budget - 1,
                                      std::memory_order_relaxed)) {
      break;
    }
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  return kind;
}

void FaultInjector::retract() {
  injected_.fetch_sub(1, std::memory_order_relaxed);
  int budget = budget_.load(std::memory_order_relaxed);
  while (budget >= 0 &&
         !budget_.compare_exchange_weak(budget, budget + 1,
                                        std::memory_order_relaxed)) {
  }
}

std::uint64_t FaultInjector::corrupt_offset(std::uint64_t seq, int attempt,
                                            std::uint64_t size) const {
  if (size == 0) return 0;
  return draw(cfg_.seed, seq, attempt, 1) % size;
}

std::uint64_t FaultInjector::pick(std::uint64_t seq, int attempt,
                                  std::uint64_t stream,
                                  std::uint64_t bound) const {
  if (bound == 0) return 0;
  return draw(cfg_.seed, seq, attempt, stream) % bound;
}

void FaultInjector::record_victim(const std::string& channel) {
  std::lock_guard<std::mutex> lk(victim_mu_);
  last_victim_ = channel;
}

std::string FaultInjector::last_victim() const {
  std::lock_guard<std::mutex> lk(victim_mu_);
  return last_victim_;
}

void FaultInjector::record_pe_victim(const PeVictim& victim) {
  std::lock_guard<std::mutex> lk(victim_mu_);
  last_pe_victim_ = victim;
}

PeVictim FaultInjector::last_pe_victim() const {
  std::lock_guard<std::mutex> lk(victim_mu_);
  return last_pe_victim_;
}

}  // namespace fblas::host
