#include "host/executor.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "trace/trace.hpp"

namespace fblas::host {
namespace {

// Per-thread command-execution state. Nested library calls made from
// inside a command body run inline, so their graph cycles accumulate
// into the enclosing command.
thread_local std::uint64_t tl_cycles = 0;
thread_local std::uint64_t tl_pe_localized = 0;
thread_local std::uint64_t tl_pe_corrected = 0;
thread_local int tl_depth = 0;
thread_local int tl_attempt = 0;
// Trace row of this thread: 0 = the caller (serial policy), 1..N = pool
// worker threads (assigned once in the worker's entry lambda).
thread_local std::uint16_t tl_worker = 0;

// splitmix64 (same public-domain constants as the fault injector's
// hash), so jittered delays are a pure function of (seed, seq, attempt).
std::uint64_t jitter_mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool is_transient(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const DeviceError&) {
    return true;
  } catch (const TimeoutError&) {
    return true;
  } catch (const VerificationError&) {
    // A checker rejecting a device-Ok result is the signature of silent
    // data corruption — recoverable exactly like a detected transient
    // fault: rollback, retry, CPU fallback.
    return true;
  } catch (...) {
    return false;
  }
}

std::string describe(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

std::chrono::microseconds jittered_backoff(std::uint64_t seed,
                                           std::uint64_t seq, int attempt,
                                           std::chrono::microseconds cap) {
  if (cap.count() <= 0) return std::chrono::microseconds{0};
  std::uint64_t h = jitter_mix64(seed ^ 0x6a09e667f3bcc909ULL);
  h = jitter_mix64(h ^ seq);
  h = jitter_mix64(h ^ (static_cast<std::uint64_t>(attempt) + 1));
  // The draw is uniform in [0, cap]. `cap + 1` as the modulus would wrap
  // to zero (UB) if cap ever held the full uint64 range; clamping at the
  // boundary keeps microseconds::max() a legal, if absurd, cap — the
  // draw then spans [0, max - 1], indistinguishable in practice.
  const std::uint64_t cap_us = static_cast<std::uint64_t>(cap.count());
  const std::uint64_t mod =
      cap_us == std::numeric_limits<std::uint64_t>::max() ? cap_us
                                                          : cap_us + 1;
  return std::chrono::microseconds(static_cast<std::int64_t>(h % mod));
}

void Executor::note_cycles(std::uint64_t cycles) {
  if (tl_depth > 0) tl_cycles += cycles;
}

void Executor::note_pe_faults(std::uint64_t localized,
                              std::uint64_t corrected) {
  if (tl_depth > 0) {
    tl_pe_localized += localized;
    tl_pe_corrected += corrected;
  }
}

bool Executor::in_command() { return tl_depth > 0; }

int Executor::current_attempt() { return tl_attempt; }

Executor::Executor(int workers) : workers_(workers < 0 ? 0 : workers) {
  threads_.reserve(static_cast<std::size_t>(workers_));
  for (int i = 0; i < workers_; ++i) {
    threads_.emplace_back([this, i] {
      tl_worker = static_cast<std::uint16_t>(i + 1);
      worker_loop();
    });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Executor::set_retry_policy(const RetryPolicy& policy) {
  std::lock_guard<std::mutex> lk(mu_);
  policy_ = policy;
}

RetryPolicy Executor::retry_policy() const {
  std::lock_guard<std::mutex> lk(mu_);
  return policy_;
}

void Executor::set_trace(std::shared_ptr<trace::Recorder> rec) {
  std::lock_guard<std::mutex> lk(mu_);
  trace_ = std::move(rec);
}

void Executor::submit(std::uint64_t seq, std::function<void()> work,
                      const std::vector<std::uint64_t>& deps,
                      CommandHooks hooks) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    Node& node = nodes_[seq];
    node.work = std::move(work);
    node.hooks = std::move(hooks);
    for (std::uint64_t dep : deps) {
      auto it = nodes_.find(dep);
      if (it == nodes_.end() || it->second.completed) {
        // Already retired: its finish time still matters, and so does a
        // failure — dependents of a failed command must not run.
        if (it != nodes_.end()) {
          node.start_cycles =
              std::max(node.start_cycles, it->second.finish_cycles);
          if (it->second.state == CommandState::Failed &&
              (node.poisoned_by == 0 || dep < node.poisoned_by)) {
            node.poisoned_by = dep;
          }
        }
        continue;
      }
      it->second.succs.push_back(seq);
      ++node.unresolved;
    }
    ++incomplete_;
    if (trace_ && node.unresolved == 0) {
      trace::Event te;
      te.kind = trace::EventKind::DepsReady;
      te.seq = seq;
      te.worker = tl_worker;
      trace_->emit(te);
    }
    if (workers_ > 0 && node.unresolved == 0) ready_.push_back(seq);
  }
  if (workers_ > 0) work_cv_.notify_one();
}

void Executor::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] { return stop_ || !ready_.empty(); });
    if (stop_) return;
    const std::uint64_t seq = ready_.front();
    ready_.pop_front();
    run_command(lk, seq);
  }
}

void Executor::run_command(std::unique_lock<std::mutex>& lk,
                           std::uint64_t seq) {
  Node& node = nodes_.at(seq);
  node.running = true;
  node.state = CommandState::Running;
  ++active_;
  stats_.max_concurrent = std::max(stats_.max_concurrent, active_);
  std::function<void()> work = std::move(node.work);
  node.work = nullptr;
  CommandHooks hooks = std::move(node.hooks);
  node.hooks = CommandHooks{};
  const RetryPolicy policy = policy_;
  const std::uint64_t poisoned_by = node.poisoned_by;
  std::string poison_cause;
  if (poisoned_by != 0) poison_cause = nodes_.at(poisoned_by).message;
  const std::shared_ptr<trace::Recorder> rec = trace_;
  lk.unlock();

  // Install the recorder as this thread's trace sink for the span of the
  // command: pool placement, breaker transitions, migrations and engine
  // summaries all emit through it from inside the body.
  trace::ThreadScope trace_scope(rec.get());
  trace::set_attempt_device(-1);

  std::uint64_t cycles = 0;
  std::exception_ptr error;
  CommandState final_state = CommandState::Ok;
  std::string message;
  std::uint64_t retries_done = 0;
  std::uint64_t verified_runs = 0;
  std::uint64_t verify_rejects = 0;
  std::uint64_t pe_localized = 0;
  std::uint64_t pe_corrected = 0;
  bool degraded = false;

  if (poisoned_by != 0) {
    // A dependency failed: skip the body entirely (its inputs are
    // unreliable) and fail with a deterministic, structural error — the
    // lowest-seq failed dependency, independent of worker interleaving.
    std::ostringstream os;
    os << "command " << seq << " skipped: dependency command "
       << poisoned_by << " failed";
    if (!poison_cause.empty()) os << " (" << poison_cause << ")";
    message = os.str();
    error = std::make_exception_ptr(Error(message));
    final_state = CommandState::Failed;
  } else {
    const bool may_recover =
        (policy.max_retries > 0 || policy.cpu_fallback) && hooks.retryable;
    // Snapshot whenever a rollback might be needed: for the retry loop,
    // but also so a verify rejection without any retry budget still
    // leaves the write-set transactionally untouched.
    if ((may_recover || hooks.verify_check) && hooks.snapshot) {
      hooks.snapshot();
    }
    auto backoff = policy.backoff;
    for (int attempt = 0;; ++attempt) {
      tl_cycles = 0;
      tl_pe_localized = 0;
      tl_pe_corrected = 0;
      tl_attempt = attempt;
      ++tl_depth;
      trace::set_attempt_device(-1);  // until the pool places this attempt
      const std::uint8_t attempt8 =
          attempt > 255 ? 255 : static_cast<std::uint8_t>(attempt);
      const std::uint64_t attempt_t0 = rec ? rec->now_ns() : 0;
      error = nullptr;
      bool verify_rejected = false;
      try {
        if (attempt == 0 && hooks.verify_prepare) hooks.verify_prepare();
        if (work) work();
        if (hooks.verify_check) {
          // Only a device-Ok attempt reaches the checker; a rejection
          // here means the device lied — silent data corruption.
          ++verified_runs;
          const std::uint64_t verify_t0 = rec ? rec->now_ns() : 0;
          try {
            hooks.verify_check();
          } catch (const VerificationError&) {
            verify_rejected = true;
            if (rec) {
              trace::Event te;
              te.kind = trace::EventKind::Verify;
              te.seq = seq;
              te.attempt = attempt8;
              te.worker = tl_worker;
              te.device =
                  static_cast<std::int16_t>(trace::attempt_device());
              te.wall_ns = verify_t0;
              te.a = rec->now_ns() - verify_t0;
              te.flags = 1;
              rec->emit(te);
            }
            throw;
          }
          if (rec) {
            trace::Event te;
            te.kind = trace::EventKind::Verify;
            te.seq = seq;
            te.attempt = attempt8;
            te.worker = tl_worker;
            te.device = static_cast<std::int16_t>(trace::attempt_device());
            te.wall_ns = verify_t0;
            te.a = rec->now_ns() - verify_t0;
            rec->emit(te);
          }
        }
      } catch (...) {
        error = std::current_exception();
      }
      --tl_depth;
      tl_attempt = 0;
      cycles += tl_cycles;  // failed attempts still burned device time
      pe_localized += tl_pe_localized;
      pe_corrected += tl_pe_corrected;
      if (verify_rejected) ++verify_rejects;
      if (rec) {
        trace::Event te;
        te.kind = trace::EventKind::Attempt;
        te.seq = seq;
        te.attempt = attempt8;
        te.worker = tl_worker;
        te.device = static_cast<std::int16_t>(trace::attempt_device());
        te.wall_ns = attempt_t0;
        te.a = rec->now_ns() - attempt_t0;
        te.b = tl_cycles;
        te.flags = !error ? trace::kAttemptOk
                          : (verify_rejected ? trace::kAttemptVerifyReject
                                             : trace::kAttemptError);
        rec->emit(te);
      }
      if (!error) break;
      const bool transient = is_transient(error);
      if (transient && may_recover && attempt < policy.max_retries) {
        if (hooks.rollback) hooks.rollback();
        ++retries_done;
        const auto delay =
            policy.full_jitter
                ? jittered_backoff(policy.jitter_seed, seq, attempt, backoff)
                : backoff;
        if (rec) {
          trace::Event te;
          te.kind = trace::EventKind::Retry;
          te.seq = seq;
          te.attempt = attempt8;
          te.worker = tl_worker;
          te.device = static_cast<std::int16_t>(trace::attempt_device());
          te.a = static_cast<std::uint64_t>(delay.count());
          rec->emit(te);
        }
        if (delay.count() > 0) std::this_thread::sleep_for(delay);
        // Grow in double and pick the cap *before* casting back: the old
        // int64 cast of the grown product was UB once it exceeded the
        // int64 range (a max_backoff near microseconds::max() gets there
        // in a few doublings).
        const double grown = static_cast<double>(backoff.count()) *
                             policy.backoff_multiplier;
        backoff =
            grown >= static_cast<double>(policy.max_backoff.count())
                ? policy.max_backoff
                : std::chrono::microseconds(static_cast<std::int64_t>(grown));
        continue;
      }
      // Terminal transient failure (retries exhausted or no retry
      // budget): roll the write-set back so the command leaves its
      // outputs exactly as they were (transactional), then degrade to
      // the CPU reference path if allowed.
      if (transient && hooks.rollback) hooks.rollback();
      if (transient && may_recover && policy.cpu_fallback &&
          hooks.fallback) {
        try {
          hooks.fallback();
          message = "degraded to CPU fallback after: " + describe(error);
          error = nullptr;
          degraded = true;
          if (rec) {
            trace::Event te;
            te.kind = trace::EventKind::Fallback;
            te.seq = seq;
            te.worker = tl_worker;
            te.device = static_cast<std::int16_t>(trace::attempt_device());
            rec->emit(te);
          }
        } catch (...) {
          error = std::current_exception();
        }
      }
      break;
    }
    if (error) {
      final_state = CommandState::Failed;
      message = describe(error);
    } else {
      final_state = degraded ? CommandState::Degraded : CommandState::Ok;
    }
  }

  lk.lock();
  --active_;
  stats_.retries += retries_done;
  if (degraded) ++stats_.degraded;
  stats_.verified += verified_runs;
  stats_.verify_failures += verify_rejects;
  stats_.sdc_caught += verify_rejects;
  stats_.pe_faults_localized += pe_localized;
  stats_.faults_corrected += pe_corrected;
  nodes_.at(seq).verify_rejections = static_cast<std::uint32_t>(verify_rejects);
  complete(seq, cycles, error, final_state, std::move(message));
  if (rec) {
    const Node& done = nodes_.at(seq);
    trace::Event te;
    te.kind = trace::EventKind::Complete;
    te.seq = seq;
    te.worker = tl_worker;
    te.device = static_cast<std::int16_t>(trace::attempt_device());
    te.flags = static_cast<std::uint16_t>(done.state);
    te.a = done.start_cycles;
    te.b = done.finish_cycles;
    rec->emit(te);
  }
}

void Executor::complete(std::uint64_t seq, std::uint64_t cycles,
                        std::exception_ptr error, CommandState state,
                        std::string message) {
  Node& node = nodes_.at(seq);
  node.running = false;
  node.completed = true;
  node.error = error;
  node.state = state;
  node.message = std::move(message);
  node.finish_cycles = node.start_cycles + cycles;
  stats_.makespan_cycles =
      std::max(stats_.makespan_cycles, node.finish_cycles);
  ++stats_.executed;
  --incomplete_;
  bool woke_ready = false;
  for (std::uint64_t succ_seq : node.succs) {
    Node& succ = nodes_.at(succ_seq);
    succ.start_cycles = std::max(succ.start_cycles, node.finish_cycles);
    if (state == CommandState::Failed &&
        (succ.poisoned_by == 0 || seq < succ.poisoned_by)) {
      succ.poisoned_by = seq;
    }
    if (--succ.unresolved == 0) {
      if (trace_) {
        trace::Event te;
        te.kind = trace::EventKind::DepsReady;
        te.seq = succ_seq;
        te.worker = tl_worker;
        te.a = seq;  // the dependency whose completion freed it
        trace_->emit(te);
      }
      if (workers_ > 0) {
        ready_.push_back(succ_seq);
        woke_ready = true;
      }
    }
  }
  node.succs.clear();
  if (woke_ready) work_cv_.notify_all();
  done_cv_.notify_all();
}

void Executor::wait(std::uint64_t seq) {
  std::unique_lock<std::mutex> lk(mu_);
  if (workers_ == 0) {
    // Serial policy: lazily run pending commands in program order up to
    // and including `seq` on the calling thread (dependencies always
    // point backwards, so they are satisfied by construction).
    for (auto it = nodes_.begin(); it != nodes_.end() && it->first <= seq;
         ++it) {
      if (it->second.completed) continue;
      const std::uint64_t s = it->first;
      run_command(lk, s);
      Node& node = nodes_.at(s);
      if (node.error) {
        std::exception_ptr error = std::exchange(node.error, nullptr);
        std::rethrow_exception(error);
      }
    }
    return;
  }
  done_cv_.wait(lk, [&] {
    auto it = nodes_.find(seq);
    return it == nodes_.end() || it->second.completed;
  });
  auto it = nodes_.find(seq);
  if (it != nodes_.end() && it->second.error) {
    std::exception_ptr error = std::exchange(it->second.error, nullptr);
    std::rethrow_exception(error);
  }
}

void Executor::wait_all() {
  std::uint64_t last = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!nodes_.empty()) last = nodes_.rbegin()->first;
  }
  if (workers_ == 0) {
    wait(last);
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] { return incomplete_ == 0; });
  for (auto& [seq, node] : nodes_) {
    if (node.error) {
      std::exception_ptr error = std::exchange(node.error, nullptr);
      std::rethrow_exception(error);
    }
  }
}

bool Executor::done(std::uint64_t seq) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = nodes_.find(seq);
  return it == nodes_.end() || it->second.completed;
}

bool Executor::idle() const {
  std::lock_guard<std::mutex> lk(mu_);
  return incomplete_ == 0;
}

ExecStats Executor::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

CommandStatus Executor::status(std::uint64_t seq) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = nodes_.find(seq);
  if (it == nodes_.end()) return CommandStatus{};
  return CommandStatus{it->second.state, it->second.message,
                       it->second.verify_rejections};
}

}  // namespace fblas::host
