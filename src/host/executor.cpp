#include "host/executor.hpp"

#include <algorithm>
#include <utility>

namespace fblas::host {
namespace {

// Per-thread command-execution state. Nested library calls made from
// inside a command body run inline, so their graph cycles accumulate
// into the enclosing command.
thread_local std::uint64_t tl_cycles = 0;
thread_local int tl_depth = 0;

}  // namespace

void Executor::note_cycles(std::uint64_t cycles) {
  if (tl_depth > 0) tl_cycles += cycles;
}

bool Executor::in_command() { return tl_depth > 0; }

Executor::Executor(int workers) : workers_(workers < 0 ? 0 : workers) {
  threads_.reserve(static_cast<std::size_t>(workers_));
  for (int i = 0; i < workers_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Executor::submit(std::uint64_t seq, std::function<void()> work,
                      const std::vector<std::uint64_t>& deps) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    Node& node = nodes_[seq];
    node.work = std::move(work);
    for (std::uint64_t dep : deps) {
      auto it = nodes_.find(dep);
      if (it == nodes_.end() || it->second.completed) {
        // Already retired: only its finish time still matters.
        if (it != nodes_.end()) {
          node.start_cycles =
              std::max(node.start_cycles, it->second.finish_cycles);
        }
        continue;
      }
      it->second.succs.push_back(seq);
      ++node.unresolved;
    }
    ++incomplete_;
    if (workers_ > 0 && node.unresolved == 0) ready_.push_back(seq);
  }
  if (workers_ > 0) work_cv_.notify_one();
}

void Executor::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] { return stop_ || !ready_.empty(); });
    if (stop_) return;
    const std::uint64_t seq = ready_.front();
    ready_.pop_front();
    run_command(lk, seq);
  }
}

void Executor::run_command(std::unique_lock<std::mutex>& lk,
                           std::uint64_t seq) {
  Node& node = nodes_.at(seq);
  node.running = true;
  ++active_;
  stats_.max_concurrent = std::max(stats_.max_concurrent, active_);
  std::function<void()> work = std::move(node.work);
  node.work = nullptr;
  lk.unlock();

  tl_cycles = 0;
  ++tl_depth;
  std::exception_ptr error;
  try {
    if (work) work();
  } catch (...) {
    error = std::current_exception();
  }
  --tl_depth;
  const std::uint64_t cycles = tl_cycles;

  lk.lock();
  --active_;
  complete(seq, cycles, error);
}

void Executor::complete(std::uint64_t seq, std::uint64_t cycles,
                        std::exception_ptr error) {
  Node& node = nodes_.at(seq);
  node.running = false;
  node.completed = true;
  node.error = error;
  node.finish_cycles = node.start_cycles + cycles;
  stats_.makespan_cycles =
      std::max(stats_.makespan_cycles, node.finish_cycles);
  ++stats_.executed;
  --incomplete_;
  bool woke_ready = false;
  for (std::uint64_t succ_seq : node.succs) {
    Node& succ = nodes_.at(succ_seq);
    succ.start_cycles = std::max(succ.start_cycles, node.finish_cycles);
    if (--succ.unresolved == 0 && workers_ > 0) {
      ready_.push_back(succ_seq);
      woke_ready = true;
    }
  }
  node.succs.clear();
  if (woke_ready) work_cv_.notify_all();
  done_cv_.notify_all();
}

void Executor::wait(std::uint64_t seq) {
  std::unique_lock<std::mutex> lk(mu_);
  if (workers_ == 0) {
    // Serial policy: lazily run pending commands in program order up to
    // and including `seq` on the calling thread (dependencies always
    // point backwards, so they are satisfied by construction).
    for (auto it = nodes_.begin(); it != nodes_.end() && it->first <= seq;
         ++it) {
      if (it->second.completed) continue;
      const std::uint64_t s = it->first;
      run_command(lk, s);
      Node& node = nodes_.at(s);
      if (node.error) {
        std::exception_ptr error = std::exchange(node.error, nullptr);
        std::rethrow_exception(error);
      }
    }
    return;
  }
  done_cv_.wait(lk, [&] {
    auto it = nodes_.find(seq);
    return it == nodes_.end() || it->second.completed;
  });
  auto it = nodes_.find(seq);
  if (it != nodes_.end() && it->second.error) {
    std::exception_ptr error = std::exchange(it->second.error, nullptr);
    std::rethrow_exception(error);
  }
}

void Executor::wait_all() {
  std::uint64_t last = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!nodes_.empty()) last = nodes_.rbegin()->first;
  }
  if (workers_ == 0) {
    wait(last);
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] { return incomplete_ == 0; });
  for (auto& [seq, node] : nodes_) {
    if (node.error) {
      std::exception_ptr error = std::exchange(node.error, nullptr);
      std::rethrow_exception(error);
    }
  }
}

bool Executor::done(std::uint64_t seq) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = nodes_.find(seq);
  return it == nodes_.end() || it->second.completed;
}

bool Executor::idle() const {
  std::lock_guard<std::mutex> lk(mu_);
  return incomplete_ == 0;
}

ExecStats Executor::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace fblas::host
