// Observable per-command outcome for the fault-tolerant host runtime.
// Shared by Executor (which tracks it) and Event (which exposes it), so
// async callers can inspect failures without wait() throwing being the
// only signal.
#pragma once

#include <cstdint>
#include <string>

namespace fblas::host {

enum class CommandState {
  Pending,   ///< submitted, not yet started
  Running,   ///< currently executing (possibly in a retry attempt)
  Ok,        ///< completed on the device path
  Failed,    ///< exhausted retries (or non-retryable error); wait() throws
  Degraded,  ///< device path failed; result produced by the CPU fallback
};

struct CommandStatus {
  CommandState state = CommandState::Ok;
  /// For Failed: the final error. For Degraded: the device error that
  /// forced the CPU fallback. Empty otherwise.
  std::string message;
  /// Attempts whose device-reported-Ok result was rejected by the ABFT
  /// verifier (silent data corruption caught and recovered via retry,
  /// fallback, or ultimately surfaced as Failed).
  std::uint32_t verify_rejections = 0;
  /// Pool index of the device the command's *last* attempt was placed on
  /// (filled by Context from the DevicePool). -1 for barriers and
  /// commands never placed; for Degraded commands it names the device
  /// whose failure forced the CPU fallback.
  int device = -1;

  bool ok() const { return state == CommandState::Ok; }
  bool failed() const { return state == CommandState::Failed; }
  bool degraded() const { return state == CommandState::Degraded; }
};

}  // namespace fblas::host
