// The FBLAS host API (Sec. II-B): classical BLAS calls executed by
// lowering each routine to a streaming module graph — interface helper
// kernels around the module — and running it on the simulated device.
//
// Calls come in a synchronous form (e.g. `ctx.scal(...)`) and an
// asynchronous form (`ctx.scal_async(...)` returning an Event).
//
// Execution model: every enqueued command declares the buffers it reads
// and writes; a DepGraph derives the RAW/WAR/WAW hazards that force
// program order, and an Executor runs the commands.
//
//   Context ctx(dev, mode);            // serial: commands run lazily, in
//                                      // program order, when waited on
//   Context ctx(dev, mode, /*workers=*/4);  // out-of-order: a worker pool
//                                      // eagerly runs every command whose
//                                      // hazards are resolved, so calls on
//                                      // disjoint buffers overlap
//
// Results are bit-identical across policies: conflicting commands retain
// program order, only independent ones overlap. total_cycles() sums the
// device cycles of all commands (the serial schedule); makespan_cycles()
// is the critical-path time an overlapped schedule needs.
//
// Stride convention: every synchronous wrapper defaults a trailing
// increment argument to 1, and every routine with vector strides also has
// a unit-stride overload that omits them entirely (e.g. `ctx.axpy(n,
// alpha, x, y)`). Asynchronous forms always take explicit strides.
//
// Non-functional parameters (vectorization width, tile sizes, tiling
// scheme, systolic grid) are per-context RoutineConfig knobs — the same
// knobs the code generator exposes in its JSON routine specification.
// They are captured when a call is *enqueued*, so a ConfigGuard (or
// `ctx.with(cfg)->gemm(...)`) scopes an override to specific calls
// without racing against commands already in flight.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/routines.hpp"
#include "common/types.hpp"
#include "fblas/level2.hpp"
#include "fblas/level3.hpp"
#include "host/buffer.hpp"
#include "host/dep_graph.hpp"
#include "host/device.hpp"
#include "host/device_pool.hpp"
#include "host/event.hpp"
#include "host/executor.hpp"
#include "refblas/level1.hpp"
#include "stream/graph.hpp"
#include "systolic/systolic_array.hpp"
#include "trace/trace.hpp"
#include "verify/options.hpp"
#include "verify/policy.hpp"

namespace fblas::host {

/// Tunable non-functional parameters applied to subsequent calls.
struct RoutineConfig {
  // The constructors and the shim declarations below necessarily touch
  // the deprecated members (their default member initializers bind the
  // references); that is the shim mechanism itself, not legacy usage, so
  // the diagnostic is silenced for this block only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  RoutineConfig() = default;
  // The deprecated legacy verification fields below are references into
  // `verification`, so copying must copy the value members and let each
  // object's shims rebind to its *own* Options (the default member
  // initializers do exactly that when the references are left out of the
  // mem-init list).
  RoutineConfig(const RoutineConfig& o)
      : width(o.width),
        tile_rows(o.tile_rows),
        tile_cols(o.tile_cols),
        tiling(o.tiling),
        pe_rows(o.pe_rows),
        pe_cols(o.pe_cols),
        gemm_tile_rows(o.gemm_tile_rows),
        gemm_tile_cols(o.gemm_tile_cols),
        verification(o.verification) {}
  RoutineConfig& operator=(const RoutineConfig& o) {
    width = o.width;
    tile_rows = o.tile_rows;
    tile_cols = o.tile_cols;
    tiling = o.tiling;
    pe_rows = o.pe_rows;
    pe_cols = o.pe_cols;
    gemm_tile_rows = o.gemm_tile_rows;
    gemm_tile_cols = o.gemm_tile_cols;
    verification = o.verification;
    return *this;
  }

  int width = 16;                   ///< vectorization width W
  std::int64_t tile_rows = 256;     ///< TN (Level 2)
  std::int64_t tile_cols = 256;     ///< TM (Level 2)
  core::MatrixTiling tiling = core::MatrixTiling::TilesByRows;
  int pe_rows = 4;                  ///< PR (Level 3)
  int pe_cols = 4;                  ///< PC (Level 3)
  std::int64_t gemm_tile_rows = 16; ///< TR (Level 3 memory tile)
  std::int64_t gemm_tile_cols = 16; ///< TC

  // --- Result verification (ABFT) ---------------------------------------
  /// All verification knobs in one value type with a fluent builder:
  ///
  ///   ctx.config().verification = verify::Options::always()
  ///                                   .tolerance_scale(4)
  ///                                   .trap_nonfinite();
  ///
  /// A rejected result is treated like a detected transient fault —
  /// rollback, retry, CPU fallback — under the RetryPolicy. The same
  /// Options value configures composed app commands (apps/*_composed).
  verify::Options verification;

  // Legacy spellings of the verification knobs, kept as deprecated
  // reference shims into `verification` so existing code compiles
  // unchanged and both spellings always agree.
  [[deprecated("use RoutineConfig::verification.policy()")]]
  verify::VerifyPolicy& verify = verification.policy_;
  [[deprecated("use RoutineConfig::verification.sample_rate()")]]
  double& verify_sample_rate = verification.sample_rate_;
  [[deprecated("use RoutineConfig::verification.tolerance_scale()")]]
  double& verify_tolerance_scale = verification.tolerance_scale_;
  [[deprecated("use RoutineConfig::verification.seed()")]]
  std::uint64_t& verify_seed = verification.seed_;
  [[deprecated("use RoutineConfig::verification.trap_nonfinite()")]]
  bool& trap_nonfinite = verification.trap_nonfinite_;
#pragma GCC diagnostic pop

  /// Rejects nonsensical knobs (width <= 0, tile sizes <= 0, empty
  /// systolic grid, out-of-range verification rates) with a ConfigError
  /// naming the offending knob. Called by Context::enqueue for every
  /// routine command, so a bad configuration fails at the call site
  /// instead of as undefined behavior deep in a lowering.
  void validate() const;
};

/// A unit of work for the runtime: the closure plus the declared buffer
/// read/write sets hazards are derived from (Buffer addresses for device
/// data, host pointers for scalar results) and optional explicit event
/// dependencies. A command with `barrier` set (or one enqueued without
/// declared sets) orders against everything.
///
/// `fallback`, when set, is the routine's CPU reference path
/// (refblas): after the RetryPolicy exhausts device retries it is run
/// against the rolled-back write-set and the command completes Degraded
/// instead of Failed. Commands are pure w.r.t. their declared sets, so
/// the fallback sees exactly the inputs the device attempt saw.
struct Command {
  std::function<void()> work;
  std::function<void()> fallback;
  /// ABFT result verification, armed per the captured RoutineConfig's
  /// VerifyPolicy. `verify_prepare` captures input checksums before the
  /// first attempt; `verify_check` re-derives them from the outputs
  /// after each device-Ok attempt and throws VerificationError on
  /// mismatch — which the executor handles like a transient fault.
  std::function<void()> verify_prepare;
  std::function<void()> verify_check;
  /// Optional steering of an injected SilentCorrupt fault: maps the
  /// injector's raw draw over the write-set byte span to the byte offset
  /// actually mangled. Routines whose write set is only partially live
  /// (e.g. SYRK writes one triangle of C) install this so an injected
  /// silent corruption always lands on bytes the routine semantically
  /// owns — otherwise the fault can fall in the preserved region, where
  /// no checker could (or should) see it.
  std::function<std::uint64_t(std::uint64_t raw, std::uint64_t size)>
      corrupt_steer;
  std::vector<const void*> reads;
  std::vector<const void*> writes;
  std::vector<Event> after;
  bool barrier = false;
  /// Routine name for observability ("gemm", "atax", ...). Shows up as
  /// the span name in trace::export_chrome; empty labels render as
  /// "cmd" (barriers as "barrier"). Purely diagnostic.
  std::string label;
};

class ConfigGuard;
template <typename T>
class Composition;

class Context {
 public:
  /// `workers == 0` (default) keeps the serial in-order queue; `workers
  /// > 0` enables the out-of-order executor with that many threads.
  /// A single device is wrapped in a (non-owning) pool of one, so every
  /// Context runs the same fleet-health path — placement, breaker
  /// tracking, per-device stats — whether it drives one board or many.
  explicit Context(Device& dev, stream::Mode mode = stream::Mode::Functional,
                   int workers = 0);
  /// Drives a device fleet: commands are placed per attempt by the
  /// pool's health-weighted scoring, buffers migrate off quarantined
  /// devices, and a retry after a breaker opened transparently lands on
  /// a healthy sibling. The pool must outlive the Context.
  explicit Context(DevicePool& pool,
                   stream::Mode mode = stream::Mode::Functional,
                   int workers = 0);

  /// The primary device (pool device 0): where buffers land by default
  /// and what spec-level lowering decisions read. Same spec across the
  /// pool, so any device answers spec queries identically.
  Device& device() { return *dev_; }
  DevicePool& pool() { return *pool_; }
  const DevicePool& pool() const { return *pool_; }
  RoutineConfig& config() { return cfg_; }
  const RoutineConfig& config() const { return cfg_; }
  stream::Mode mode() const { return mode_; }
  int workers() const { return exec_->workers(); }

  /// Scopes a RoutineConfig override: applies `cfg` now and restores the
  /// previous configuration when the guard dies. Usable inline —
  /// `ctx.with(cfg)->gemm(...)` — because knobs are captured at enqueue.
  ConfigGuard with(const RoutineConfig& cfg);

  /// Cycles of the most recently executed command (cycle mode only).
  std::uint64_t last_cycles() const { return last_cycles_.load(); }
  /// Cumulative cycles across all executed commands (serial schedule).
  std::uint64_t total_cycles() const { return total_cycles_.load(); }
  /// Critical-path cycles of the executed command DAG: the device time an
  /// out-of-order schedule needs once independent commands overlap.
  std::uint64_t makespan_cycles() const {
    return exec_->stats().makespan_cycles;
  }
  /// Executor counters (commands executed, in-flight high-water mark,
  /// retries, injected faults, degraded completions...).
  ExecStats exec_stats() const;

  // --- Tracing -----------------------------------------------------------
  /// Arms cycle-accurate tracing for subsequently enqueued commands:
  /// lifecycle spans (enqueue -> deps-ready -> placed -> attempt ->
  /// verify -> retry/migrate -> complete), engine summaries and counter
  /// samples land in the returned Recorder — render it with
  /// trace::export_chrome or query trace::MetricsSnapshot via
  /// Recorder::metrics(). Off by default with near-zero disarmed cost;
  /// re-arming replaces the recorder (commands already in flight keep
  /// emitting into the one they started with).
  std::shared_ptr<trace::Recorder> tracing(const trace::Options& opts = {});
  /// The armed recorder, or nullptr when tracing is off.
  std::shared_ptr<trace::Recorder> trace_recorder() const { return trace_; }
  /// Disarms tracing: subsequently enqueued commands stop emitting. The
  /// recorder itself stays valid for as long as someone holds it.
  void stop_tracing();

  // --- Fault tolerance ---------------------------------------------------
  /// Retry policy for transient device failures (DeviceError /
  /// TimeoutError): write-set snapshot before the attempt, rollback +
  /// bounded-backoff re-run on failure, optional CPU fallback after
  /// retries are exhausted. Applies to routine commands (not barriers).
  void set_retry_policy(const RetryPolicy& policy) {
    exec_->set_retry_policy(policy);
  }
  RetryPolicy retry_policy() const { return exec_->retry_policy(); }

  /// Watchdog applied to every graph launch of subsequently enqueued
  /// commands (captured at enqueue, like the RoutineConfig): a graph
  /// exceeding a budget raises TimeoutError instead of hanging the host.
  void set_watchdog(const stream::Watchdog& wd) { watchdog_ = wd; }
  const stream::Watchdog& watchdog() const { return watchdog_; }

  /// Queue management. The untyped overloads enqueue `work` as a barrier
  /// command (it declares no sets, so it orders against everything);
  /// `after` adds explicit event dependencies on top of the derived ones.
  Event enqueue(Command cmd);
  Event enqueue(std::function<void()> work);
  Event enqueue(std::function<void()> work, std::span<const Event> after);
  void finish();
  bool idle() const { return exec_->idle(); }

  /// Runs a built graph under the captured watchdog and records its cycle
  /// count. Public so composed app commands (apps/*_composed) can execute
  /// their multi-module graphs through the same accounting and
  /// fault-injection path as the built-in routines.
  void run_graph(stream::Graph& g);

  /// Effective Sampled-mode rate for the next command: the configured
  /// base rate, unless adaptive sampling is on and rejections have pushed
  /// it up (decaying back toward max(0.01, base/4) as checks come clean).
  double effective_sample_rate(const verify::Options& vo) const;

  // --- Level 1 ----------------------------------------------------------
  // rotg/rotmg are host-scalar setup routines (synchronous only).
  template <typename T>
  ref::Givens<T> rotg(T& a, T& b);
  template <typename T>
  ref::RotmParam<T> rotmg(T& d1, T& d2, T& x1, T y1);

  template <typename T>
  Event rot_async(std::int64_t n, Buffer<T>& x, std::int64_t incx,
                  Buffer<T>& y, std::int64_t incy, T c, T s);
  template <typename T>
  Event rotm_async(std::int64_t n, Buffer<T>& x, std::int64_t incx,
                   Buffer<T>& y, std::int64_t incy, ref::RotmParam<T> p);
  template <typename T>
  Event swap_async(std::int64_t n, Buffer<T>& x, std::int64_t incx,
                   Buffer<T>& y, std::int64_t incy);
  template <typename T>
  Event scal_async(std::int64_t n, T alpha, Buffer<T>& x, std::int64_t incx);
  template <typename T>
  Event copy_async(std::int64_t n, const Buffer<T>& x, std::int64_t incx,
                   Buffer<T>& y, std::int64_t incy);
  template <typename T>
  Event axpy_async(std::int64_t n, T alpha, const Buffer<T>& x,
                   std::int64_t incx, Buffer<T>& y, std::int64_t incy);
  template <typename T>
  Event dot_async(std::int64_t n, const Buffer<T>& x, std::int64_t incx,
                  const Buffer<T>& y, std::int64_t incy, T* result);
  Event sdsdot_async(std::int64_t n, float sb, const Buffer<float>& x,
                     std::int64_t incx, const Buffer<float>& y,
                     std::int64_t incy, float* result);
  template <typename T>
  Event nrm2_async(std::int64_t n, const Buffer<T>& x, std::int64_t incx,
                   T* result);
  template <typename T>
  Event asum_async(std::int64_t n, const Buffer<T>& x, std::int64_t incx,
                   T* result);
  template <typename T>
  Event iamax_async(std::int64_t n, const Buffer<T>& x, std::int64_t incx,
                    std::int64_t* result);

  // Synchronous forms.
  template <typename T>
  void rot(std::int64_t n, Buffer<T>& x, std::int64_t incx, Buffer<T>& y,
           std::int64_t incy, T c, T s) {
    rot_async(n, x, incx, y, incy, c, s).wait();
  }
  template <typename T>
  void rot(std::int64_t n, Buffer<T>& x, Buffer<T>& y, T c, T s) {
    rot(n, x, 1, y, 1, c, s);
  }
  template <typename T>
  void rotm(std::int64_t n, Buffer<T>& x, std::int64_t incx, Buffer<T>& y,
            std::int64_t incy, const ref::RotmParam<T>& p) {
    rotm_async(n, x, incx, y, incy, p).wait();
  }
  template <typename T>
  void rotm(std::int64_t n, Buffer<T>& x, Buffer<T>& y,
            const ref::RotmParam<T>& p) {
    rotm(n, x, 1, y, 1, p);
  }
  template <typename T>
  void swap(std::int64_t n, Buffer<T>& x, std::int64_t incx, Buffer<T>& y,
            std::int64_t incy = 1) {
    swap_async(n, x, incx, y, incy).wait();
  }
  template <typename T>
  void swap(std::int64_t n, Buffer<T>& x, Buffer<T>& y) {
    swap(n, x, 1, y, 1);
  }
  template <typename T>
  void scal(std::int64_t n, T alpha, Buffer<T>& x, std::int64_t incx = 1) {
    scal_async(n, alpha, x, incx).wait();
  }
  template <typename T>
  void copy(std::int64_t n, const Buffer<T>& x, std::int64_t incx,
            Buffer<T>& y, std::int64_t incy = 1) {
    copy_async(n, x, incx, y, incy).wait();
  }
  template <typename T>
  void copy(std::int64_t n, const Buffer<T>& x, Buffer<T>& y) {
    copy(n, x, 1, y, 1);
  }
  template <typename T>
  void axpy(std::int64_t n, T alpha, const Buffer<T>& x, std::int64_t incx,
            Buffer<T>& y, std::int64_t incy = 1) {
    axpy_async(n, alpha, x, incx, y, incy).wait();
  }
  template <typename T>
  void axpy(std::int64_t n, T alpha, const Buffer<T>& x, Buffer<T>& y) {
    axpy(n, alpha, x, 1, y, 1);
  }
  template <typename T>
  T dot(std::int64_t n, const Buffer<T>& x, std::int64_t incx,
        const Buffer<T>& y, std::int64_t incy = 1) {
    T r{};
    dot_async(n, x, incx, y, incy, &r).wait();
    return r;
  }
  template <typename T>
  T dot(std::int64_t n, const Buffer<T>& x, const Buffer<T>& y) {
    return dot(n, x, 1, y, 1);
  }
  float sdsdot(std::int64_t n, float sb, const Buffer<float>& x,
               std::int64_t incx, const Buffer<float>& y,
               std::int64_t incy = 1) {
    float r{};
    sdsdot_async(n, sb, x, incx, y, incy, &r).wait();
    return r;
  }
  float sdsdot(std::int64_t n, float sb, const Buffer<float>& x,
               const Buffer<float>& y) {
    return sdsdot(n, sb, x, 1, y, 1);
  }
  template <typename T>
  T nrm2(std::int64_t n, const Buffer<T>& x, std::int64_t incx = 1) {
    T r{};
    nrm2_async(n, x, incx, &r).wait();
    return r;
  }
  template <typename T>
  T asum(std::int64_t n, const Buffer<T>& x, std::int64_t incx = 1) {
    T r{};
    asum_async(n, x, incx, &r).wait();
    return r;
  }
  template <typename T>
  std::int64_t iamax(std::int64_t n, const Buffer<T>& x,
                     std::int64_t incx = 1) {
    std::int64_t r = -1;
    iamax_async(n, x, incx, &r).wait();
    return r;
  }

  // --- Level 2 ----------------------------------------------------------
  /// y = alpha op(A) x + beta y; A stored row-major rows x cols.
  template <typename T>
  Event gemv_async(Transpose trans, std::int64_t rows, std::int64_t cols,
                   T alpha, const Buffer<T>& a, const Buffer<T>& x,
                   std::int64_t incx, T beta, Buffer<T>& y,
                   std::int64_t incy);
  template <typename T>
  void gemv(Transpose trans, std::int64_t rows, std::int64_t cols, T alpha,
            const Buffer<T>& a, const Buffer<T>& x, std::int64_t incx,
            T beta, Buffer<T>& y, std::int64_t incy = 1) {
    gemv_async(trans, rows, cols, alpha, a, x, incx, beta, y, incy).wait();
  }
  template <typename T>
  void gemv(Transpose trans, std::int64_t rows, std::int64_t cols, T alpha,
            const Buffer<T>& a, const Buffer<T>& x, T beta, Buffer<T>& y) {
    gemv(trans, rows, cols, alpha, a, x, 1, beta, y, 1);
  }

  /// Solves op(A) x = b in place (x holds b on entry).
  template <typename T>
  Event trsv_async(Uplo uplo, Transpose trans, Diag diag, std::int64_t n,
                   const Buffer<T>& a, Buffer<T>& x, std::int64_t incx);
  template <typename T>
  void trsv(Uplo uplo, Transpose trans, Diag diag, std::int64_t n,
            const Buffer<T>& a, Buffer<T>& x, std::int64_t incx = 1) {
    trsv_async(uplo, trans, diag, n, a, x, incx).wait();
  }

  /// A += alpha x y^T.
  template <typename T>
  Event ger_async(std::int64_t rows, std::int64_t cols, T alpha,
                  const Buffer<T>& x, std::int64_t incx, const Buffer<T>& y,
                  std::int64_t incy, Buffer<T>& a);
  template <typename T>
  void ger(std::int64_t rows, std::int64_t cols, T alpha, const Buffer<T>& x,
           std::int64_t incx, const Buffer<T>& y, std::int64_t incy,
           Buffer<T>& a) {
    ger_async(rows, cols, alpha, x, incx, y, incy, a).wait();
  }
  template <typename T>
  void ger(std::int64_t rows, std::int64_t cols, T alpha, const Buffer<T>& x,
           const Buffer<T>& y, Buffer<T>& a) {
    ger(rows, cols, alpha, x, 1, y, 1, a);
  }

  /// A += alpha x x^T on the `uplo` triangle (generic full-stream update;
  /// the opposite triangle is preserved).
  template <typename T>
  Event syr_async(Uplo uplo, std::int64_t n, T alpha, const Buffer<T>& x,
                  std::int64_t incx, Buffer<T>& a);
  template <typename T>
  void syr(Uplo uplo, std::int64_t n, T alpha, const Buffer<T>& x,
           std::int64_t incx, Buffer<T>& a) {
    syr_async(uplo, n, alpha, x, incx, a).wait();
  }
  template <typename T>
  void syr(Uplo uplo, std::int64_t n, T alpha, const Buffer<T>& x,
           Buffer<T>& a) {
    syr(uplo, n, alpha, x, 1, a);
  }

  /// A += alpha (x y^T + y x^T) on the `uplo` triangle.
  template <typename T>
  Event syr2_async(Uplo uplo, std::int64_t n, T alpha, const Buffer<T>& x,
                   std::int64_t incx, const Buffer<T>& y, std::int64_t incy,
                   Buffer<T>& a);
  template <typename T>
  void syr2(Uplo uplo, std::int64_t n, T alpha, const Buffer<T>& x,
            std::int64_t incx, const Buffer<T>& y, std::int64_t incy,
            Buffer<T>& a) {
    syr2_async(uplo, n, alpha, x, incx, y, incy, a).wait();
  }
  template <typename T>
  void syr2(Uplo uplo, std::int64_t n, T alpha, const Buffer<T>& x,
            const Buffer<T>& y, Buffer<T>& a) {
    syr2(uplo, n, alpha, x, 1, y, 1, a);
  }

  // --- Level 3 ----------------------------------------------------------
  /// C = alpha op(A) op(B) + beta C; C is m x n, contraction k.
  template <typename T>
  Event gemm_async(Transpose ta, Transpose tb, std::int64_t m,
                   std::int64_t n, std::int64_t k, T alpha,
                   const Buffer<T>& a, const Buffer<T>& b, T beta,
                   Buffer<T>& c);
  template <typename T>
  void gemm(Transpose ta, Transpose tb, std::int64_t m, std::int64_t n,
            std::int64_t k, T alpha, const Buffer<T>& a, const Buffer<T>& b,
            T beta, Buffer<T>& c) {
    gemm_async(ta, tb, m, n, k, alpha, a, b, beta, c).wait();
  }

  /// C = alpha op(A) op(A)^T + beta C on the `uplo` triangle.
  template <typename T>
  Event syrk_async(Uplo uplo, Transpose trans, std::int64_t n,
                   std::int64_t k, T alpha, const Buffer<T>& a, T beta,
                   Buffer<T>& c);
  template <typename T>
  void syrk(Uplo uplo, Transpose trans, std::int64_t n, std::int64_t k,
            T alpha, const Buffer<T>& a, T beta, Buffer<T>& c) {
    syrk_async(uplo, trans, n, k, alpha, a, beta, c).wait();
  }

  /// C = alpha (op(A) op(B)^T + op(B) op(A)^T) + beta C on `uplo`.
  template <typename T>
  Event syr2k_async(Uplo uplo, Transpose trans, std::int64_t n,
                    std::int64_t k, T alpha, const Buffer<T>& a,
                    const Buffer<T>& b, T beta, Buffer<T>& c);
  template <typename T>
  void syr2k(Uplo uplo, Transpose trans, std::int64_t n, std::int64_t k,
             T alpha, const Buffer<T>& a, const Buffer<T>& b, T beta,
             Buffer<T>& c) {
    syr2k_async(uplo, trans, n, k, alpha, a, b, beta, c).wait();
  }

  /// Solves op(A) X = alpha B (Left) or X op(A) = alpha B (Right) in
  /// place; B is m x n and holds X on return.
  template <typename T>
  Event trsm_async(Side side, Uplo uplo, Transpose trans, Diag diag,
                   std::int64_t m, std::int64_t n, T alpha,
                   const Buffer<T>& a, Buffer<T>& b);
  template <typename T>
  void trsm(Side side, Uplo uplo, Transpose trans, Diag diag, std::int64_t m,
            std::int64_t n, T alpha, const Buffer<T>& a, Buffer<T>& b) {
    trsm_async(side, uplo, trans, diag, m, n, alpha, a, b).wait();
  }

  // --- Systolic PE-grid engine (in-grid ABFT) ---------------------------
  /// C = A * B (A: m x k, B: k x n) on the explicit PE-grid systolic
  /// engine (RoutineConfig::pe_rows x pe_cols). With the captured
  /// verification Options enabled and .in_grid(), the grid's checksum
  /// row/column rank detects a corrupted accumulator as each tile drains,
  /// localizes it to the victim PE, and (per .correct_single_faults())
  /// corrects single-fault tiles in place — the cheapest rung of the
  /// recovery ladder, below rollback/retry and CPU fallback, which
  /// multi-fault tiles still degrade to.
  template <typename T>
  Event gemm_systolic_async(std::int64_t m, std::int64_t n, std::int64_t k,
                            const Buffer<T>& a, const Buffer<T>& b,
                            Buffer<T>& c);
  template <typename T>
  void gemm_systolic(std::int64_t m, std::int64_t n, std::int64_t k,
                     const Buffer<T>& a, const Buffer<T>& b, Buffer<T>& c) {
    gemm_systolic_async(m, n, k, a, b, c).wait();
  }

  /// In-grid ABFT outcome of the most recently executed systolic command
  /// (localized faults with tile/PE coordinates) — what localization
  /// tests compare against FaultInjector::last_pe_victim().
  systolic::AbftReport last_grid_report() const;

  // --- Compiled streaming compositions -----------------------------------
  /// Compiles a host::Composition (mdag::compile: validity, partition,
  /// lowering, tap plan) and enqueues it as ONE command: every component's
  /// stream graph, the GraphChecker armed from the compiled tap plan, a
  /// refblas fallback synthesized by topologically replaying the nodes,
  /// and the declared read/write sets — all under the same rollback /
  /// retry / CPU-fallback ladder as the built-in routines. An
  /// unexecutable description throws ConfigError here, at enqueue.
  template <typename T>
  Event run_composition_async(const Composition<T>& comp);
  template <typename T>
  void run_composition(const Composition<T>& comp) {
    run_composition_async(comp).wait();
  }
  /// Per-call verification override, scoped to this one enqueue.
  template <typename T>
  Event run_composition_async(const Composition<T>& comp,
                              const verify::Options& vo);
  template <typename T>
  void run_composition(const Composition<T>& comp,
                       const verify::Options& vo) {
    run_composition_async(comp, vo).wait();
  }

  // --- Specialized matrix routines ---------------------------------------
  // Implemented in terms of the generic routines, as the paper prescribes
  // (Sec. VI: "Specialized matrix routines (triangular and symmetric
  // matrices) must currently be implemented in terms of the generic
  // routines"): the host expands the stored triangle and runs GEMV.

  /// y = alpha * A * x + beta * y for symmetric A stored in `uplo`.
  template <typename T>
  Event symv_async(Uplo uplo, std::int64_t n, T alpha, const Buffer<T>& a,
                   const Buffer<T>& x, std::int64_t incx, T beta,
                   Buffer<T>& y, std::int64_t incy);
  template <typename T>
  void symv(Uplo uplo, std::int64_t n, T alpha, const Buffer<T>& a,
            const Buffer<T>& x, std::int64_t incx, T beta, Buffer<T>& y,
            std::int64_t incy = 1) {
    symv_async(uplo, n, alpha, a, x, incx, beta, y, incy).wait();
  }
  template <typename T>
  void symv(Uplo uplo, std::int64_t n, T alpha, const Buffer<T>& a,
            const Buffer<T>& x, T beta, Buffer<T>& y) {
    symv(uplo, n, alpha, a, x, 1, beta, y, 1);
  }

  /// x = op(A) * x for triangular A (`uplo`, `diag`).
  template <typename T>
  Event trmv_async(Uplo uplo, Transpose trans, Diag diag, std::int64_t n,
                   const Buffer<T>& a, Buffer<T>& x, std::int64_t incx);
  template <typename T>
  void trmv(Uplo uplo, Transpose trans, Diag diag, std::int64_t n,
            const Buffer<T>& a, Buffer<T>& x, std::int64_t incx = 1) {
    trmv_async(uplo, trans, diag, n, a, x, incx).wait();
  }

  // --- Batched fully-unrolled routines (Table V) -------------------------
  /// C[i] = alpha * A[i] * B[i] for `batch` contiguous size x size
  /// problems; the fully-unrolled module retires one problem per cycle.
  template <typename T>
  Event gemm_batched_async(std::int64_t size, std::int64_t batch, T alpha,
                           const Buffer<T>& a, const Buffer<T>& b,
                           Buffer<T>& c);
  template <typename T>
  void gemm_batched(std::int64_t size, std::int64_t batch, T alpha,
                    const Buffer<T>& a, const Buffer<T>& b, Buffer<T>& c) {
    gemm_batched_async(size, batch, alpha, a, b, c).wait();
  }

  /// X[i] = alpha * inv(L[i]) * X[i] for `batch` contiguous lower
  /// triangular (non-unit) systems stored dense.
  template <typename T>
  Event trsm_batched_async(std::int64_t size, std::int64_t batch, T alpha,
                           const Buffer<T>& a, Buffer<T>& x);
  template <typename T>
  void trsm_batched(std::int64_t size, std::int64_t batch, T alpha,
                    const Buffer<T>& a, Buffer<T>& x) {
    trsm_batched_async(size, batch, alpha, a, x).wait();
  }

 private:
  friend class Event;
  void wait_seq(std::uint64_t seq);
  bool done_seq(std::uint64_t seq) const;
  CommandStatus status_seq(std::uint64_t seq) const;

  /// Wraps a routine command body with per-attempt pool placement (and
  /// health reporting), fault injection (launch failures, detected
  /// transfer corruption, wedges, silent corruption), the captured
  /// watchdog, and — when verification or the taint trap is armed —
  /// non-finite taint tracking across the command's graphs.
  std::function<void()> wrap_work(
      std::uint64_t seq, std::function<void()> work,
      std::vector<const void*> reads, std::vector<const void*> writes,
      bool verify_armed, bool taint_record, bool taint_trap,
      std::function<std::uint64_t(std::uint64_t, std::uint64_t)> steer);
  /// Snapshot/rollback/fallback hooks for the retry machinery.
  CommandHooks make_hooks(const Command& cmd);
  /// Wraps a verify_check so a VerificationError carries the taint
  /// provenance (which module first pushed NaN/Inf) when one exists,
  /// feeds the adaptive sampling controller (raise the live rate on a
  /// rejection, decay it on a clean check), and reports the verdict to
  /// the device pool (per-device stats; breaker per `feed_breaker`).
  std::function<void()> wrap_verify(std::function<void()> check,
                                    bool adaptive, bool feed_breaker);

  /// The device this thread's running attempt was placed on (the pool's
  /// choice recorded by wrap_work), or the primary device outside a
  /// placed command — what lowerings must use for fault-injector access
  /// so draws and ground truth land on the attempt's device.
  Device& attempt_device();

  /// Fault-injector PE-fault draw for the command running on this thread
  /// (context.cpp owns the thread-local run scope): true when wrap_work
  /// drew a PeFault, with the (seq, attempt) the deterministic plan is
  /// derived from. pe_fault_fired() marks the draw materialized so the
  /// wrapper does not retract it.
  static bool pe_fault_draw(std::uint64_t* seq, int* attempt);
  static void pe_fault_fired();
  void store_grid_report(const systolic::AbftReport& report);

  /// Per-cycle byte budget of one DDR bank at the given clock.
  double bank_bytes_per_cycle(double freq_mhz) const;

  /// Wraps the single-device constructor's board in a pool of one, so
  /// pool_ is never null and both constructors share one runtime path.
  std::unique_ptr<DevicePool> pool_owned_;
  DevicePool* pool_;
  Device* dev_;  ///< primary (pool device 0)
  stream::Mode mode_;
  RoutineConfig cfg_;
  stream::Watchdog watchdog_;
  DepGraph deps_;
  std::unique_ptr<Executor> exec_;
  std::shared_ptr<trace::Recorder> trace_;  // null = tracing off
  std::uint64_t enqueued_ = 0;
  std::atomic<std::uint64_t> last_cycles_{0};
  std::atomic<std::uint64_t> total_cycles_{0};
  /// Live Sampled-mode rate under verify::Options::adaptive(); < 0 means
  /// "not yet initialized — use the configured base rate".
  mutable std::atomic<double> adaptive_rate_{-1.0};
  mutable std::mutex grid_mu_;
  systolic::AbftReport last_grid_report_;
};

/// RAII override of a Context's RoutineConfig: applies `cfg` on
/// construction and restores the previous knobs on destruction. Because
/// commands capture the configuration when enqueued, a guard that only
/// spans the enqueue is enough — including the temporary in
/// `ctx.with(cfg)->gemm(...)`.
class ConfigGuard {
 public:
  ConfigGuard(Context& ctx, const RoutineConfig& cfg)
      : ctx_(&ctx), saved_(ctx.config()) {
    ctx.config() = cfg;
  }
  ~ConfigGuard() {
    if (ctx_ != nullptr) ctx_->config() = saved_;
  }
  ConfigGuard(ConfigGuard&& o) noexcept
      : ctx_(std::exchange(o.ctx_, nullptr)), saved_(o.saved_) {}
  ConfigGuard& operator=(ConfigGuard&&) = delete;
  ConfigGuard(const ConfigGuard&) = delete;
  ConfigGuard& operator=(const ConfigGuard&) = delete;

  /// The guarded context, for inline use: `ctx.with(cfg)->gemm(...)`.
  Context* operator->() { return ctx_; }
  Context& context() { return *ctx_; }

 private:
  Context* ctx_;
  RoutineConfig saved_;
};

inline ConfigGuard Context::with(const RoutineConfig& cfg) {
  return ConfigGuard(*this, cfg);
}

}  // namespace fblas::host
