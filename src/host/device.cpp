#include "host/device.hpp"

#include <sstream>

namespace fblas::host {

Device::Device(sim::DeviceId id)
    : spec_(&sim::device(id)),
      allocated_(static_cast<std::size_t>(spec_->ddr_banks), 0) {}

std::uint64_t Device::allocated_bytes(int bank) const {
  FBLAS_REQUIRE(bank >= 0 && bank < bank_count(), "unknown DDR bank");
  std::lock_guard<std::mutex> lk(mu_);
  return allocated_[static_cast<std::size_t>(bank)];
}

std::uint64_t Device::bank_capacity_bytes() const {
  return static_cast<std::uint64_t>(spec_->ddr_bank_gib * (1ULL << 30));
}

void Device::note_alloc(int bank, std::uint64_t bytes) {
  FBLAS_REQUIRE(bank >= 0 && bank < bank_count(), "unknown DDR bank");
  std::lock_guard<std::mutex> lk(mu_);
  auto& used = allocated_[static_cast<std::size_t>(bank)];
  if (used + bytes > bank_capacity_bytes()) {
    std::ostringstream os;
    os << "DDR bank " << bank << " of " << spec_->name << " is full: "
       << used << " + " << bytes << " > " << bank_capacity_bytes();
    throw FitError(os.str());
  }
  used += bytes;
}

void Device::note_free(int bank, std::uint64_t bytes) {
  FBLAS_REQUIRE(bank >= 0 && bank < bank_count(), "unknown DDR bank");
  std::lock_guard<std::mutex> lk(mu_);
  auto& used = allocated_[static_cast<std::size_t>(bank)];
  used = bytes > used ? 0 : used - bytes;
}

void Device::register_buffer(const void* key, std::span<std::byte> bytes,
                             int bank,
                             std::function<void(Device&, int)> rehome) {
  std::lock_guard<std::mutex> lk(mu_);
  buffers_[key] = BufferRecord{bytes, bank, std::move(rehome)};
}

void Device::unregister_buffer(const void* key) {
  std::lock_guard<std::mutex> lk(mu_);
  buffers_.erase(key);
}

std::span<std::byte> Device::buffer_bytes(const void* key) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = buffers_.find(key);
  return it == buffers_.end() ? std::span<std::byte>() : it->second.bytes;
}

bool Device::has_buffer(const void* key) const {
  std::lock_guard<std::mutex> lk(mu_);
  return buffers_.find(key) != buffers_.end();
}

bool Device::take_buffer(const void* key, BufferRecord* out) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = buffers_.find(key);
  if (it == buffers_.end()) return false;
  *out = std::move(it->second);
  buffers_.erase(it);
  return true;
}

void Device::install_buffer(const void* key, BufferRecord rec) {
  std::lock_guard<std::mutex> lk(mu_);
  buffers_[key] = std::move(rec);
}

}  // namespace fblas::host
