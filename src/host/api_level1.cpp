// Level-1 host API lowerings: reader -> module -> writer graphs.
//
// Each async routine enqueues a Command that declares its buffer read and
// write sets (hazard tracking) and captures the RoutineConfig by value,
// so commands in flight are unaffected by later config changes. Every
// routine also attaches its refblas CPU reference path as the Command's
// `fallback`, the graceful-degradation target once the RetryPolicy
// exhausts device retries, and (when the captured config enables
// verification) its ABFT checksum checkers. rotm and sdsdot carry no
// checker: rotm's modified-rotation flag cases have no single linear
// checksum identity, and sdsdot's mixed-precision accumulation has no
// tight double-precision bound — both stay covered by fault *detection*
// (taint, watchdog) rather than result verification.
#include <memory>

#include "fblas/level1.hpp"
#include "host/context.hpp"
#include "host/detail.hpp"
#include "sim/frequency_model.hpp"
#include "verify/abft.hpp"

namespace fblas::host {
namespace {

template <typename T>
sim::FrequencyEstimate freq_of(RoutineKind kind, const Device& dev) {
  return sim::module_frequency(kind, PrecisionTraits<T>::value, dev.spec());
}

}  // namespace

template <typename T>
ref::Givens<T> Context::rotg(T& a, T& b) {
  // Scalar setup routines run through the streaming module for fidelity.
  stream::Graph g(mode_);
  auto& in = g.channel<T>("ab", 4);
  auto& out = g.channel<T>("rzcs", 8);
  std::vector<T> result;
  g.spawn("feed", stream::feed(std::vector<T>{a, b}, in));
  g.spawn("rotg", core::rotg<T>(in, out));
  g.spawn("collect", stream::collect<T>(4, out, result));
  run_graph(g);
  a = result[0];
  b = result[1];
  return {result[2], result[3]};
}

template <typename T>
ref::RotmParam<T> Context::rotmg(T& d1, T& d2, T& x1, T y1) {
  stream::Graph g(mode_);
  auto& in = g.channel<T>("in", 4);
  auto& out = g.channel<T>("out", 8);
  std::vector<T> result;
  g.spawn("feed", stream::feed(std::vector<T>{d1, d2, x1, y1}, in));
  g.spawn("rotmg", core::rotmg<T>(in, out));
  g.spawn("collect", stream::collect<T>(8, out, result));
  run_graph(g);
  d1 = result[5];
  d2 = result[6];
  x1 = result[7];
  return {result[0], result[1], result[2], result[3], result[4]};
}

template <typename T>
Event Context::rot_async(std::int64_t n, Buffer<T>& x, std::int64_t incx,
                         Buffer<T>& y, std::int64_t incy, T c, T s) {
  Command cmd;
  cmd.label = "rot";
  cmd.reads = {&x, &y};
  cmd.writes = {&x, &y};
  cmd.work = [this, rc = cfg_, n, &x, incx, &y, incy, c, s] {
    stream::Graph g(mode_);
    const auto f = freq_of<T>(RoutineKind::Rot, *dev_);
    detail::BankSet banks(g, *dev_, f.mhz);
    const int W = rc.width;
    auto& cx = g.channel<T>("x", detail::chan_cap(W));
    auto& cy = g.channel<T>("y", detail::chan_cap(W));
    auto& ox = g.channel<T>("ox", detail::chan_cap(W));
    auto& oy = g.channel<T>("oy", detail::chan_cap(W));
    g.spawn("read_x", stream::read_vector<T>(x.cvec(n, incx), 1, W, cx,
                                             banks.at(x.bank())));
    g.spawn("read_y", stream::read_vector<T>(y.cvec(n, incy), 1, W, cy,
                                             banks.at(y.bank())));
    g.spawn("rot", core::rot<T>({W}, n, c, s, cx, cy, ox, oy));
    g.spawn("write_x", stream::write_vector<T>(x.vec(n, incx), 1, W, ox,
                                               banks.at(x.bank())));
    g.spawn("write_y", stream::write_vector<T>(y.vec(n, incy), 1, W, oy,
                                               banks.at(y.bank())));
    run_graph(g);
  };
  cmd.fallback = [n, &x, incx, &y, incy, c, s] {
    ref::rot(x.vec(n, incx), y.vec(n, incy), c, s);
  };
  if (cfg_.verification.enabled()) {
    auto chk = std::make_shared<verify::PairCheck>();
    cmd.verify_prepare = [chk, n, &x, incx, &y, incy, c, s] {
      *chk = verify::rot_prepare<T>(x.cvec(n, incx), y.cvec(n, incy), c, s);
    };
    cmd.verify_check = [chk, n, &x, incx, &y, incy,
                        scale = cfg_.verification.tolerance_scale()] {
      verify::check_sum<T>(chk->x, "rot(x)", x.cvec(n, incx), scale);
      verify::check_sum<T>(chk->y, "rot(y)", y.cvec(n, incy), scale);
    };
  }
  return enqueue(std::move(cmd));
}

template <typename T>
Event Context::rotm_async(std::int64_t n, Buffer<T>& x, std::int64_t incx,
                          Buffer<T>& y, std::int64_t incy,
                          ref::RotmParam<T> p) {
  Command cmd;
  cmd.label = "rotm";
  cmd.reads = {&x, &y};
  cmd.writes = {&x, &y};
  cmd.work = [this, rc = cfg_, n, &x, incx, &y, incy, p] {
    stream::Graph g(mode_);
    const auto f = freq_of<T>(RoutineKind::Rotm, *dev_);
    detail::BankSet banks(g, *dev_, f.mhz);
    const int W = rc.width;
    auto& cx = g.channel<T>("x", detail::chan_cap(W));
    auto& cy = g.channel<T>("y", detail::chan_cap(W));
    auto& ox = g.channel<T>("ox", detail::chan_cap(W));
    auto& oy = g.channel<T>("oy", detail::chan_cap(W));
    g.spawn("read_x", stream::read_vector<T>(x.cvec(n, incx), 1, W, cx,
                                             banks.at(x.bank())));
    g.spawn("read_y", stream::read_vector<T>(y.cvec(n, incy), 1, W, cy,
                                             banks.at(y.bank())));
    g.spawn("rotm", core::rotm<T>({W}, n, p, cx, cy, ox, oy));
    g.spawn("write_x", stream::write_vector<T>(x.vec(n, incx), 1, W, ox,
                                               banks.at(x.bank())));
    g.spawn("write_y", stream::write_vector<T>(y.vec(n, incy), 1, W, oy,
                                               banks.at(y.bank())));
    run_graph(g);
  };
  cmd.fallback = [n, &x, incx, &y, incy, p] {
    ref::rotm(x.vec(n, incx), y.vec(n, incy), p);
  };
  return enqueue(std::move(cmd));
}

template <typename T>
Event Context::swap_async(std::int64_t n, Buffer<T>& x, std::int64_t incx,
                          Buffer<T>& y, std::int64_t incy) {
  Command cmd;
  cmd.label = "swap";
  cmd.reads = {&x, &y};
  cmd.writes = {&x, &y};
  cmd.work = [this, rc = cfg_, n, &x, incx, &y, incy] {
    stream::Graph g(mode_);
    const auto f = freq_of<T>(RoutineKind::Swap, *dev_);
    detail::BankSet banks(g, *dev_, f.mhz);
    const int W = rc.width;
    auto& cx = g.channel<T>("x", detail::chan_cap(W));
    auto& cy = g.channel<T>("y", detail::chan_cap(W));
    auto& ox = g.channel<T>("ox", detail::chan_cap(W));
    auto& oy = g.channel<T>("oy", detail::chan_cap(W));
    g.spawn("read_x", stream::read_vector<T>(x.cvec(n, incx), 1, W, cx,
                                             banks.at(x.bank())));
    g.spawn("read_y", stream::read_vector<T>(y.cvec(n, incy), 1, W, cy,
                                             banks.at(y.bank())));
    g.spawn("swap", core::swap<T>({W}, n, cx, cy, ox, oy));
    g.spawn("write_x", stream::write_vector<T>(x.vec(n, incx), 1, W, ox,
                                               banks.at(x.bank())));
    g.spawn("write_y", stream::write_vector<T>(y.vec(n, incy), 1, W, oy,
                                               banks.at(y.bank())));
    run_graph(g);
  };
  cmd.fallback = [n, &x, incx, &y, incy] {
    ref::swap(x.vec(n, incx), y.vec(n, incy));
  };
  if (cfg_.verification.enabled()) {
    auto chk = std::make_shared<verify::PairCheck>();
    cmd.verify_prepare = [chk, n, &x, incx, &y, incy] {
      *chk = verify::swap_prepare<T>(x.cvec(n, incx), y.cvec(n, incy));
    };
    cmd.verify_check = [chk, n, &x, incx, &y, incy,
                        scale = cfg_.verification.tolerance_scale()] {
      verify::check_sum<T>(chk->x, "swap(x)", x.cvec(n, incx), scale);
      verify::check_sum<T>(chk->y, "swap(y)", y.cvec(n, incy), scale);
    };
  }
  return enqueue(std::move(cmd));
}

template <typename T>
Event Context::scal_async(std::int64_t n, T alpha, Buffer<T>& x,
                          std::int64_t incx) {
  Command cmd;
  cmd.label = "scal";
  cmd.reads = {&x};
  cmd.writes = {&x};
  cmd.work = [this, rc = cfg_, n, alpha, &x, incx] {
    stream::Graph g(mode_);
    const auto f = freq_of<T>(RoutineKind::Scal, *dev_);
    detail::BankSet banks(g, *dev_, f.mhz);
    const int W = rc.width;
    auto& cin = g.channel<T>("x", detail::chan_cap(W));
    auto& cout = g.channel<T>("out", detail::chan_cap(W));
    g.spawn("read_x", stream::read_vector<T>(x.cvec(n, incx), 1, W, cin,
                                             banks.at(x.bank())));
    g.spawn("scal", core::scal<T>({W}, n, alpha, cin, cout));
    g.spawn("write_x", stream::write_vector<T>(x.vec(n, incx), 1, W, cout,
                                               banks.at(x.bank())));
    run_graph(g);
  };
  cmd.fallback = [n, alpha, &x, incx] { ref::scal(alpha, x.vec(n, incx)); };
  if (cfg_.verification.enabled()) {
    auto chk = std::make_shared<verify::ScalarCheck>();
    cmd.verify_prepare = [chk, n, alpha, &x, incx] {
      *chk = verify::scal_prepare<T>(alpha, x.cvec(n, incx));
    };
    cmd.verify_check = [chk, n, &x, incx,
                        scale = cfg_.verification.tolerance_scale()] {
      verify::check_sum<T>(*chk, "scal", x.cvec(n, incx), scale);
    };
  }
  return enqueue(std::move(cmd));
}

template <typename T>
Event Context::copy_async(std::int64_t n, const Buffer<T>& x,
                          std::int64_t incx, Buffer<T>& y,
                          std::int64_t incy) {
  Command cmd;
  cmd.label = "copy";
  cmd.reads = {&x};
  cmd.writes = {&y};
  cmd.work = [this, rc = cfg_, n, &x, incx, &y, incy] {
    stream::Graph g(mode_);
    const auto f = freq_of<T>(RoutineKind::Copy, *dev_);
    detail::BankSet banks(g, *dev_, f.mhz);
    const int W = rc.width;
    auto& cin = g.channel<T>("x", detail::chan_cap(W));
    auto& cout = g.channel<T>("out", detail::chan_cap(W));
    g.spawn("read_x", stream::read_vector<T>(x.cvec(n, incx), 1, W, cin,
                                             banks.at(x.bank())));
    g.spawn("copy", core::copy<T>({W}, n, cin, cout));
    g.spawn("write_y", stream::write_vector<T>(y.vec(n, incy), 1, W, cout,
                                               banks.at(y.bank())));
    run_graph(g);
  };
  cmd.fallback = [n, &x, incx, &y, incy] {
    ref::copy(x.cvec(n, incx), y.vec(n, incy));
  };
  if (cfg_.verification.enabled()) {
    auto chk = std::make_shared<verify::ScalarCheck>();
    cmd.verify_prepare = [chk, n, &x, incx] {
      *chk = verify::copy_prepare<T>(x.cvec(n, incx));
    };
    cmd.verify_check = [chk, n, &y, incy,
                        scale = cfg_.verification.tolerance_scale()] {
      verify::check_sum<T>(*chk, "copy", y.cvec(n, incy), scale);
    };
  }
  return enqueue(std::move(cmd));
}

template <typename T>
Event Context::axpy_async(std::int64_t n, T alpha, const Buffer<T>& x,
                          std::int64_t incx, Buffer<T>& y,
                          std::int64_t incy) {
  Command cmd;
  cmd.label = "axpy";
  cmd.reads = {&x, &y};
  cmd.writes = {&y};
  cmd.work = [this, rc = cfg_, n, alpha, &x, incx, &y, incy] {
    stream::Graph g(mode_);
    const auto f = freq_of<T>(RoutineKind::Axpy, *dev_);
    detail::BankSet banks(g, *dev_, f.mhz);
    const int W = rc.width;
    auto& cx = g.channel<T>("x", detail::chan_cap(W));
    auto& cy = g.channel<T>("y", detail::chan_cap(W));
    auto& cout = g.channel<T>("out", detail::chan_cap(W));
    g.spawn("read_x", stream::read_vector<T>(x.cvec(n, incx), 1, W, cx,
                                             banks.at(x.bank())));
    g.spawn("read_y", stream::read_vector<T>(y.cvec(n, incy), 1, W, cy,
                                             banks.at(y.bank())));
    g.spawn("axpy", core::axpy<T>({W}, n, alpha, cx, cy, cout));
    g.spawn("write_y", stream::write_vector<T>(y.vec(n, incy), 1, W, cout,
                                               banks.at(y.bank())));
    run_graph(g);
  };
  cmd.fallback = [n, alpha, &x, incx, &y, incy] {
    ref::axpy(alpha, x.cvec(n, incx), y.vec(n, incy));
  };
  if (cfg_.verification.enabled()) {
    auto chk = std::make_shared<verify::ScalarCheck>();
    cmd.verify_prepare = [chk, n, alpha, &x, incx, &y, incy] {
      *chk = verify::axpy_prepare<T>(alpha, x.cvec(n, incx), y.cvec(n, incy));
    };
    cmd.verify_check = [chk, n, &y, incy,
                        scale = cfg_.verification.tolerance_scale()] {
      verify::check_sum<T>(*chk, "axpy", y.cvec(n, incy), scale);
    };
  }
  return enqueue(std::move(cmd));
}

template <typename T>
Event Context::dot_async(std::int64_t n, const Buffer<T>& x,
                         std::int64_t incx, const Buffer<T>& y,
                         std::int64_t incy, T* result) {
  Command cmd;
  cmd.label = "dot";
  cmd.reads = {&x, &y};
  cmd.writes = {result};
  cmd.work = [this, rc = cfg_, n, &x, incx, &y, incy, result] {
    stream::Graph g(mode_);
    const auto f = freq_of<T>(RoutineKind::Dot, *dev_);
    detail::BankSet banks(g, *dev_, f.mhz);
    const int W = rc.width;
    auto& cx = g.channel<T>("x", detail::chan_cap(W));
    auto& cy = g.channel<T>("y", detail::chan_cap(W));
    auto& res = g.channel<T>("res", 2);
    std::vector<T> out;
    g.spawn("read_x", stream::read_vector<T>(x.cvec(n, incx), 1, W, cx,
                                             banks.at(x.bank())));
    g.spawn("read_y", stream::read_vector<T>(y.cvec(n, incy), 1, W, cy,
                                             banks.at(y.bank())));
    g.spawn("dot", core::dot<T>({W}, n, cx, cy, res));
    g.spawn("collect", stream::collect<T>(1, res, out));
    run_graph(g);
    *result = out[0];
  };
  cmd.fallback = [n, &x, incx, &y, incy, result] {
    *result = ref::dot(x.cvec(n, incx), y.cvec(n, incy));
  };
  if (cfg_.verification.enabled()) {
    // Single-phase: the inputs are untouched, so the checker recomputes
    // the reduction in double after the fact — no prepare pass needed.
    cmd.verify_check = [n, &x, incx, &y, incy, result,
                        scale = cfg_.verification.tolerance_scale()] {
      verify::dot_check<T>(x.cvec(n, incx), y.cvec(n, incy), *result, scale);
    };
  }
  return enqueue(std::move(cmd));
}

Event Context::sdsdot_async(std::int64_t n, float sb, const Buffer<float>& x,
                            std::int64_t incx, const Buffer<float>& y,
                            std::int64_t incy, float* result) {
  Command cmd;
  cmd.label = "sdsdot";
  cmd.reads = {&x, &y};
  cmd.writes = {result};
  cmd.work = [this, rc = cfg_, n, sb, &x, incx, &y, incy, result] {
    stream::Graph g(mode_);
    const auto f = freq_of<float>(RoutineKind::Sdsdot, *dev_);
    detail::BankSet banks(g, *dev_, f.mhz);
    const int W = rc.width;
    auto& cx = g.channel<float>("x", detail::chan_cap(W));
    auto& cy = g.channel<float>("y", detail::chan_cap(W));
    auto& res = g.channel<float>("res", 2);
    std::vector<float> out;
    g.spawn("read_x", stream::read_vector<float>(x.cvec(n, incx), 1, W, cx,
                                                 banks.at(x.bank())));
    g.spawn("read_y", stream::read_vector<float>(y.cvec(n, incy), 1, W, cy,
                                                 banks.at(y.bank())));
    g.spawn("sdsdot", core::sdsdot({W}, n, sb, cx, cy, res));
    g.spawn("collect", stream::collect<float>(1, res, out));
    run_graph(g);
    *result = out[0];
  };
  cmd.fallback = [n, sb, &x, incx, &y, incy, result] {
    *result = ref::sdsdot(sb, x.cvec(n, incx), y.cvec(n, incy));
  };
  return enqueue(std::move(cmd));
}

template <typename T>
Event Context::nrm2_async(std::int64_t n, const Buffer<T>& x,
                          std::int64_t incx, T* result) {
  Command cmd;
  cmd.label = "nrm2";
  cmd.reads = {&x};
  cmd.writes = {result};
  cmd.work = [this, rc = cfg_, n, &x, incx, result] {
    stream::Graph g(mode_);
    const auto f = freq_of<T>(RoutineKind::Nrm2, *dev_);
    detail::BankSet banks(g, *dev_, f.mhz);
    const int W = rc.width;
    auto& cx = g.channel<T>("x", detail::chan_cap(W));
    auto& res = g.channel<T>("res", 2);
    std::vector<T> out;
    g.spawn("read_x", stream::read_vector<T>(x.cvec(n, incx), 1, W, cx,
                                             banks.at(x.bank())));
    g.spawn("nrm2", core::nrm2<T>({W}, n, cx, res));
    g.spawn("collect", stream::collect<T>(1, res, out));
    run_graph(g);
    *result = out[0];
  };
  cmd.fallback = [n, &x, incx, result] { *result = ref::nrm2(x.cvec(n, incx)); };
  if (cfg_.verification.enabled()) {
    cmd.verify_check = [n, &x, incx, result,
                        scale = cfg_.verification.tolerance_scale()] {
      verify::nrm2_check<T>(x.cvec(n, incx), *result, scale);
    };
  }
  return enqueue(std::move(cmd));
}

template <typename T>
Event Context::asum_async(std::int64_t n, const Buffer<T>& x,
                          std::int64_t incx, T* result) {
  Command cmd;
  cmd.label = "asum";
  cmd.reads = {&x};
  cmd.writes = {result};
  cmd.work = [this, rc = cfg_, n, &x, incx, result] {
    stream::Graph g(mode_);
    const auto f = freq_of<T>(RoutineKind::Asum, *dev_);
    detail::BankSet banks(g, *dev_, f.mhz);
    const int W = rc.width;
    auto& cx = g.channel<T>("x", detail::chan_cap(W));
    auto& res = g.channel<T>("res", 2);
    std::vector<T> out;
    g.spawn("read_x", stream::read_vector<T>(x.cvec(n, incx), 1, W, cx,
                                             banks.at(x.bank())));
    g.spawn("asum", core::asum<T>({W}, n, cx, res));
    g.spawn("collect", stream::collect<T>(1, res, out));
    run_graph(g);
    *result = out[0];
  };
  cmd.fallback = [n, &x, incx, result] { *result = ref::asum(x.cvec(n, incx)); };
  if (cfg_.verification.enabled()) {
    cmd.verify_check = [n, &x, incx, result,
                        scale = cfg_.verification.tolerance_scale()] {
      verify::asum_check<T>(x.cvec(n, incx), *result, scale);
    };
  }
  return enqueue(std::move(cmd));
}

template <typename T>
Event Context::iamax_async(std::int64_t n, const Buffer<T>& x,
                           std::int64_t incx, std::int64_t* result) {
  Command cmd;
  cmd.label = "iamax";
  cmd.reads = {&x};
  cmd.writes = {result};
  cmd.work = [this, rc = cfg_, n, &x, incx, result] {
    stream::Graph g(mode_);
    const auto f = freq_of<T>(RoutineKind::Iamax, *dev_);
    detail::BankSet banks(g, *dev_, f.mhz);
    const int W = rc.width;
    auto& cx = g.channel<T>("x", detail::chan_cap(W));
    auto& res = g.channel<std::int64_t>("res", 2);
    std::vector<std::int64_t> out;
    g.spawn("read_x", stream::read_vector<T>(x.cvec(n, incx), 1, W, cx,
                                             banks.at(x.bank())));
    g.spawn("iamax", core::iamax<T>({W}, n, cx, res));
    g.spawn("collect", stream::collect<std::int64_t>(1, res, out));
    run_graph(g);
    *result = out[0];
  };
  cmd.fallback = [n, &x, incx, result] {
    *result = ref::iamax(x.cvec(n, incx));
  };
  if (cfg_.verification.enabled()) {
    cmd.verify_check = [n, &x, incx, result] {
      verify::iamax_check<T>(x.cvec(n, incx), *result);
    };
  }
  return enqueue(std::move(cmd));
}

// Explicit instantiations for the two supported precisions.
#define FBLAS_HOST_L1_INSTANTIATE(T)                                          \
  template ref::Givens<T> Context::rotg<T>(T&, T&);                           \
  template ref::RotmParam<T> Context::rotmg<T>(T&, T&, T&, T);                \
  template Event Context::rot_async<T>(std::int64_t, Buffer<T>&,              \
                                       std::int64_t, Buffer<T>&,              \
                                       std::int64_t, T, T);                   \
  template Event Context::rotm_async<T>(std::int64_t, Buffer<T>&,             \
                                        std::int64_t, Buffer<T>&,             \
                                        std::int64_t, ref::RotmParam<T>);     \
  template Event Context::swap_async<T>(std::int64_t, Buffer<T>&,             \
                                        std::int64_t, Buffer<T>&,             \
                                        std::int64_t);                        \
  template Event Context::scal_async<T>(std::int64_t, T, Buffer<T>&,          \
                                        std::int64_t);                        \
  template Event Context::copy_async<T>(std::int64_t, const Buffer<T>&,       \
                                        std::int64_t, Buffer<T>&,             \
                                        std::int64_t);                        \
  template Event Context::axpy_async<T>(std::int64_t, T, const Buffer<T>&,    \
                                        std::int64_t, Buffer<T>&,             \
                                        std::int64_t);                        \
  template Event Context::dot_async<T>(std::int64_t, const Buffer<T>&,        \
                                       std::int64_t, const Buffer<T>&,        \
                                       std::int64_t, T*);                     \
  template Event Context::nrm2_async<T>(std::int64_t, const Buffer<T>&,       \
                                        std::int64_t, T*);                    \
  template Event Context::asum_async<T>(std::int64_t, const Buffer<T>&,       \
                                        std::int64_t, T*);                    \
  template Event Context::iamax_async<T>(std::int64_t, const Buffer<T>&,      \
                                         std::int64_t, std::int64_t*);

FBLAS_HOST_L1_INSTANTIATE(float)
FBLAS_HOST_L1_INSTANTIATE(double)
#undef FBLAS_HOST_L1_INSTANTIATE

}  // namespace fblas::host
