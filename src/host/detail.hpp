// Internal helpers shared by the host-API routine lowerings.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "host/device.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace fblas::host::detail {

/// DDR banks of the simulated device registered with a graph. In cycle
/// mode every reader/writer is metered against the bank its buffer lives
/// on; bank contention (several interfaces on one bank) emerges naturally.
class BankSet {
 public:
  BankSet(stream::Graph& g, const Device& dev, double freq_mhz) {
    const double bytes_per_cycle =
        dev.spec().bank_bandwidth_gbs * 1e9 / (freq_mhz * 1e6);
    for (int b = 0; b < dev.bank_count(); ++b) {
      banks_.push_back(&g.bank("ddr" + std::to_string(b), bytes_per_cycle));
    }
  }
  stream::DramBank* at(int bank) {
    return banks_[static_cast<std::size_t>(bank)];
  }

 private:
  std::vector<stream::DramBank*> banks_;
};

/// Stores a matrix stream but only keeps the `uplo` triangle (used by the
/// SYR/SYR2 lowerings, whose generic modules update the full square).
template <typename T>
stream::Task write_matrix_uplo(MatrixView<T> A, stream::TileSchedule sched,
                               Uplo uplo, int width, stream::Channel<T>& in,
                               stream::DramBank* bank = nullptr) {
  stream::TileWalker walk(A.rows(), A.cols(), sched);
  std::int64_t remaining = walk.total();
  int in_cycle = 0;
  while (remaining > 0) {
    std::int64_t i = 0, j = 0;
    walk.next(i, j);
    const T v = co_await in.pop();
    const bool keep = uplo == Uplo::Lower ? j <= i : j >= i;
    if (keep) {
      if (bank != nullptr) {
        while (bank->grant_elems(1, sizeof(T)) == 0) {
          co_await stream::next_cycle();
        }
      }
      A(i, j) = v;
    }
    --remaining;
    if (++in_cycle == width) {
      in_cycle = 0;
      co_await stream::next_cycle();
    }
  }
}

/// Streams a vector in solve order (reversed for Upper solves).
template <typename T>
stream::Task read_vector_solve_order(VectorView<const T> v, Uplo uplo,
                                     int width, stream::Channel<T>& out,
                                     stream::DramBank* bank = nullptr) {
  const std::int64_t n = v.size();
  int in_cycle = 0;
  for (std::int64_t k = 0; k < n; ++k) {
    const std::int64_t i = uplo == Uplo::Lower ? k : n - 1 - k;
    if (bank != nullptr) {
      while (bank->grant_elems(1, sizeof(T)) == 0) {
        co_await stream::next_cycle();
      }
    }
    co_await out.push(v[i]);
    if (++in_cycle == width) {
      in_cycle = 0;
      co_await stream::next_cycle();
    }
  }
  co_await stream::next_cycle();
}

/// Stores a solve-order stream of n scalars back in natural order.
template <typename T>
stream::Task write_vector_solve_order(VectorView<T> v, Uplo uplo, int width,
                                      stream::Channel<T>& in,
                                      stream::DramBank* bank = nullptr) {
  const std::int64_t n = v.size();
  int in_cycle = 0;
  for (std::int64_t k = 0; k < n; ++k) {
    const std::int64_t i = uplo == Uplo::Lower ? k : n - 1 - k;
    const T x = co_await in.pop();
    if (bank != nullptr) {
      while (bank->grant_elems(1, sizeof(T)) == 0) {
        co_await stream::next_cycle();
      }
    }
    v[i] = x;
    if (++in_cycle == width) {
      in_cycle = 0;
      co_await stream::next_cycle();
    }
  }
}

/// Streams matrix rows in solve order (for TRSM's B operand).
template <typename T>
stream::Task read_rows_solve_order(MatrixView<const T> B, Uplo uplo,
                                   int width, stream::Channel<T>& out,
                                   stream::DramBank* bank = nullptr) {
  const std::int64_t m = B.rows(), n = B.cols();
  int in_cycle = 0;
  for (std::int64_t s = 0; s < m; ++s) {
    const std::int64_t i = uplo == Uplo::Lower ? s : m - 1 - s;
    for (std::int64_t c = 0; c < n; ++c) {
      if (bank != nullptr) {
        while (bank->grant_elems(1, sizeof(T)) == 0) {
          co_await stream::next_cycle();
        }
      }
      co_await out.push(B(i, c));
      if (++in_cycle == width) {
        in_cycle = 0;
        co_await stream::next_cycle();
      }
    }
  }
  co_await stream::next_cycle();
}

/// Stores solve-order rows back in natural order (TRSM's X result).
template <typename T>
stream::Task write_rows_solve_order(MatrixView<T> X, Uplo uplo, int width,
                                    stream::Channel<T>& in,
                                    stream::DramBank* bank = nullptr) {
  const std::int64_t m = X.rows(), n = X.cols();
  int in_cycle = 0;
  for (std::int64_t s = 0; s < m; ++s) {
    const std::int64_t i = uplo == Uplo::Lower ? s : m - 1 - s;
    for (std::int64_t c = 0; c < n; ++c) {
      const T v = co_await in.pop();
      if (bank != nullptr) {
        while (bank->grant_elems(1, sizeof(T)) == 0) {
          co_await stream::next_cycle();
        }
      }
      X(i, c) = v;
      if (++in_cycle == width) {
        in_cycle = 0;
        co_await stream::next_cycle();
      }
    }
  }
}

/// Channel capacity used by the lowerings: deep enough for two width-
/// batches so producer and consumer never false-stall within a cycle.
inline std::size_t chan_cap(int width) {
  return static_cast<std::size_t>(std::max(64, 2 * width));
}

}  // namespace fblas::host::detail
