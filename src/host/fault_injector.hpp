// Deterministic, seeded fault injection for the simulated device.
//
// Real FPGA deployments fail in ways the functional simulator never
// does: kernel launches error out, DMA transfers arrive corrupted, and a
// wedged kernel hangs the command queue forever. The injector makes
// those failure modes reproducible so the retry/rollback/fallback
// machinery can be tested and benchmarked.
//
// Decisions are a pure hash of (seed, command seq, attempt) — not a
// shared RNG stream — so the fault sequence is identical under the
// serial and worker-pool executor policies regardless of interleaving,
// and a retried attempt draws a fresh, deterministic decision.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace fblas::host {

/// Per-launch fault probabilities. Rates are cumulative-checked in the
/// order launch-fail, corrupt, wedge, silent-corrupt, channel-corrupt;
/// their sum should stay <= 1.
struct FaultConfig {
  std::uint64_t seed = 0;
  double launch_fail_rate = 0.0;  ///< P(kernel launch throws DeviceError)
  double corrupt_rate = 0.0;      ///< P(write-back corrupted, then detected)
  double wedge_rate = 0.0;        ///< P(graph hangs mid-stream)
  double silent_corrupt_rate = 0.0;  ///< P(write-back corrupted, NOT detected)
  /// P(an in-flight value is silently corrupted as it crosses a streaming
  /// channel). Unlike silent_corrupt_rate (which mangles the DRAM
  /// write-set after the graph drained), this damages an *intermediate*
  /// stream mid-pipeline — invisible to any write-set snapshot, and
  /// catchable only by a checksum carried through the composition.
  double channel_corrupt_rate = 0.0;
  int max_faults = -1;            ///< total faults budget; <0 = unlimited
};

/// SilentCorrupt mangles write-set bytes like CorruptTransfer but raises
/// no error — the command completes Ok with a wrong result. Only result
/// verification (VerifyPolicy + the ABFT checkers) can catch it.
/// ChannelCorrupt flips bits of one value in flight on a streaming
/// channel, also without raising an error.
enum class FaultKind : std::uint8_t {
  None,
  LaunchFail,
  CorruptTransfer,
  Wedge,
  SilentCorrupt,
  ChannelCorrupt,
};

class FaultInjector {
 public:
  FaultInjector() = default;

  /// Arms the injector (replacing any previous config and counters).
  void configure(const FaultConfig& cfg);
  /// Disarms: decide() returns None until configured again.
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// The fault (if any) to inject into attempt `attempt` of command
  /// `seq`. Pure in (seed, seq, attempt) apart from the max_faults
  /// budget, which is consumed atomically when a fault is drawn.
  FaultKind decide(std::uint64_t seq, int attempt);

  /// Deterministic byte offset (< `size`) to corrupt for this attempt.
  std::uint64_t corrupt_offset(std::uint64_t seq, int attempt,
                               std::uint64_t size) const;

  /// Un-counts a fault that could not be materialized (e.g. a silent
  /// corruption drawn for a command whose write set holds no registered
  /// device bytes), restoring the budget it consumed — so injected()
  /// counts only faults that actually damaged something.
  void retract();

  /// Total faults handed out since configure().
  std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  /// Records which streaming channel a ChannelCorrupt fault landed on
  /// (called by the runtime when the corruption fires); last_victim()
  /// returns the most recent one — the ground truth a localization test
  /// compares the checker's diagnosis against.
  void record_victim(const std::string& channel);
  std::string last_victim() const;

 private:
  FaultConfig cfg_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<int> budget_{-1};
  mutable std::mutex victim_mu_;
  std::string last_victim_;
};

}  // namespace fblas::host
