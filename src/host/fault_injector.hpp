// Deterministic, seeded fault injection for the simulated device.
//
// Real FPGA deployments fail in ways the functional simulator never
// does: kernel launches error out, DMA transfers arrive corrupted, and a
// wedged kernel hangs the command queue forever. The injector makes
// those failure modes reproducible so the retry/rollback/fallback
// machinery can be tested and benchmarked.
//
// Decisions are a pure hash of (seed, command seq, attempt) — not a
// shared RNG stream — so the fault sequence is identical under the
// serial and worker-pool executor policies regardless of interleaving,
// and a retried attempt draws a fresh, deterministic decision.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace fblas::host {

/// Correlated sick-device mode: for command seqs in [begin, end), the
/// device's launch / corruption / wedge rates are multiplied — the
/// signature of a board that overheats or a DDR bank that degrades,
/// where *every* command routed to the victim starts failing. `device`
/// names the victim by pool index; DevicePool::inject_faults strips the
/// window from every other device so the rest of the fleet keeps the
/// identical base rates (and thus identical fault draws) regardless of
/// placement. The interval is over command seq, not wall time, so the
/// sickness replays deterministically under any executor policy.
struct DeviceFaultWindow {
  int device = -1;          ///< victim pool index; < 0 disarms
  std::uint64_t begin = 0;  ///< first command seq inside the window
  std::uint64_t end = 0;    ///< one past the last seq inside
  /// Multiplier on launch_fail / corrupt / wedge / silent_corrupt rates
  /// inside the window (channel/PE faults model pipeline damage, not
  /// board sickness, and are left alone).
  double multiplier = 1.0;

  bool active() const { return device >= 0 && end > begin; }
};

/// Per-launch fault probabilities. Rates are cumulative-checked in the
/// order launch-fail, corrupt, wedge, silent-corrupt, channel-corrupt,
/// pe-fault; their sum should stay <= 1.
struct FaultConfig {
  std::uint64_t seed = 0;
  double launch_fail_rate = 0.0;  ///< P(kernel launch throws DeviceError)
  double corrupt_rate = 0.0;      ///< P(write-back corrupted, then detected)
  double wedge_rate = 0.0;        ///< P(graph hangs mid-stream)
  double silent_corrupt_rate = 0.0;  ///< P(write-back corrupted, NOT detected)
  /// P(an in-flight value is silently corrupted as it crosses a streaming
  /// channel). Unlike silent_corrupt_rate (which mangles the DRAM
  /// write-set after the graph drained), this damages an *intermediate*
  /// stream mid-pipeline — invisible to any write-set snapshot, and
  /// catchable only by a checksum carried through the composition.
  double channel_corrupt_rate = 0.0;
  /// P(one MAC product is bit-flipped inside a PE of the systolic grid).
  /// The victim (tile, r, c, mac) is a pure hash of (seed, seq, attempt)
  /// drawn by the systolic lowering via pick(); the materialized plan is
  /// recorded as last_pe_victim() ground truth so tests can cross-check
  /// the in-grid ABFT localization. Commands that never run the systolic
  /// engine retract the draw.
  double pe_fault_rate = 0.0;
  /// Testing knob for the double-fault policy: a drawn PeFault plants TWO
  /// bit flips in distinct PEs of the same tile, which the in-grid ABFT
  /// must refuse to correct (falling back to rollback -> retry).
  bool pe_fault_pairs = false;
  int max_faults = -1;            ///< total faults budget; <0 = unlimited
  /// Correlated sick-device interval (see DeviceFaultWindow).
  DeviceFaultWindow device_fault_window;

  /// Rejects nonsensical knobs — negative/NaN/>1 rates, an inverted
  /// window, a negative or non-finite multiplier — with a ConfigError
  /// naming the offending knob (mirroring RoutineConfig::validate).
  /// Called by Device::inject_faults so a bad configuration fails at the
  /// arming site instead of skewing fault draws silently.
  void validate() const;
};

/// SilentCorrupt mangles write-set bytes like CorruptTransfer but raises
/// no error — the command completes Ok with a wrong result. Only result
/// verification (VerifyPolicy + the ABFT checkers) can catch it.
/// ChannelCorrupt flips bits of one value in flight on a streaming
/// channel, also without raising an error. PeFault flips one MAC product
/// inside a systolic-grid PE — the fault the in-grid checksum rank
/// localizes and corrects.
enum class FaultKind : std::uint8_t {
  None,
  LaunchFail,
  CorruptTransfer,
  Wedge,
  SilentCorrupt,
  ChannelCorrupt,
  PeFault,
};

/// Ground truth of the last PE-targeted fault that materialized in the
/// systolic grid: which tile (tile indices, not element offsets), which
/// PE, which per-tile MAC. Localization tests compare the in-grid ABFT
/// diagnosis against this record.
struct PeVictim {
  std::int64_t tile_row = -1;
  std::int64_t tile_col = -1;
  int r = -1;
  int c = -1;
  std::int64_t mac = -1;
  bool valid = false;
};

class FaultInjector {
 public:
  FaultInjector() = default;

  /// Arms the injector (replacing any previous config and counters).
  void configure(const FaultConfig& cfg);
  /// Disarms: decide() returns None until configured again.
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// The fault (if any) to inject into attempt `attempt` of command
  /// `seq`. Pure in (seed, seq, attempt) apart from the max_faults
  /// budget, which is consumed atomically when a fault is drawn.
  FaultKind decide(std::uint64_t seq, int attempt);

  /// Deterministic byte offset (< `size`) to corrupt for this attempt.
  std::uint64_t corrupt_offset(std::uint64_t seq, int attempt,
                               std::uint64_t size) const;

  /// Deterministic uniform draw in [0, bound) on an auxiliary stream —
  /// lets a lowering derive a multi-coordinate fault plan (the PE fault's
  /// tile / row / column / MAC) from one decide() without perturbing the
  /// decision hash. Returns 0 for bound == 0.
  std::uint64_t pick(std::uint64_t seq, int attempt, std::uint64_t stream,
                     std::uint64_t bound) const;

  /// True when a drawn PeFault should plant a second flip in a distinct
  /// PE of the same tile (FaultConfig::pe_fault_pairs).
  bool pe_fault_pairs() const { return cfg_.pe_fault_pairs; }

  /// Synthetic-probe draw for circuit-breaker re-admission: would a
  /// trivial kernel launched *now* (at command seq `seq`) hit a fault?
  /// Drawn on its own hash stream so it never perturbs decide(), and it
  /// consumes no fault budget and damages nothing — the probe is how a
  /// Half-Open breaker peeks at the device without risking a real
  /// command. Inside an armed device_fault_window the multiplied rates
  /// apply, so probes keep failing until the window closes. Returns the
  /// fault the probe would hit, or None when the launch would succeed
  /// (also when the injector is disarmed or its budget is exhausted).
  FaultKind probe(std::uint64_t seq) const;

  /// The armed sick-device window ({} when none).
  const DeviceFaultWindow& sick_window() const {
    return cfg_.device_fault_window;
  }
  /// Ground truth: faults from decide() that landed inside the armed
  /// sick-device window. Counts budget-consuming draws; a later
  /// retract() of an unmaterialized fault is not attributed back here
  /// (retract carries no provenance), so this is an upper bound that is
  /// exact for the launch/corrupt/wedge modes sick-window tests use.
  std::uint64_t sick_faults() const {
    return sick_faults_.load(std::memory_order_relaxed);
  }

  /// Un-counts a fault that could not be materialized (e.g. a silent
  /// corruption drawn for a command whose write set holds no registered
  /// device bytes), restoring the budget it consumed — so injected()
  /// counts only faults that actually damaged something.
  void retract();

  /// Total faults handed out since configure().
  std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  /// Records which streaming channel a ChannelCorrupt fault landed on
  /// (called by the runtime when the corruption fires); last_victim()
  /// returns the most recent one — the ground truth a localization test
  /// compares the checker's diagnosis against.
  void record_victim(const std::string& channel);
  std::string last_victim() const;

  /// Ground truth of the last PE fault the systolic engine materialized
  /// (recorded by the systolic lowering when the planned flip fired).
  void record_pe_victim(const PeVictim& victim);
  PeVictim last_pe_victim() const;

 private:
  FaultConfig cfg_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> sick_faults_{0};
  std::atomic<int> budget_{-1};
  mutable std::mutex victim_mu_;
  std::string last_victim_;
  PeVictim last_pe_victim_;
};

}  // namespace fblas::host
