#include "host/health.hpp"

namespace fblas::host {

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::Closed:
      return "Closed";
    case BreakerState::Open:
      return "Open";
    case BreakerState::HalfOpen:
      return "HalfOpen";
  }
  return "?";
}

void HealthTracker::tick() {
  ++now_;
  if (state_ == BreakerState::Open &&
      now_ - opened_at_ >= cfg_.cooldown_ticks) {
    state_ = BreakerState::HalfOpen;
    ++half_opens_;
  }
}

void HealthTracker::record_success() {
  ewma_ = (1.0 - cfg_.ewma_alpha) * ewma_;
  consecutive_failures_ = 0;
  ++events_;
}

void HealthTracker::record_failure() {
  ewma_ = (1.0 - cfg_.ewma_alpha) * ewma_ + cfg_.ewma_alpha;
  ++consecutive_failures_;
  ++events_;
  if (state_ != BreakerState::Closed) return;
  if (consecutive_failures_ >= cfg_.open_consecutive_failures ||
      (events_ >= cfg_.min_events && ewma_ > cfg_.open_error_rate)) {
    open();
  }
}

void HealthTracker::probe_result(bool ok) {
  if (state_ != BreakerState::HalfOpen) return;
  if (ok) {
    // Clean slate: the quarantine already served the penalty, and stale
    // failure history must not re-open the breaker on the first wobble.
    state_ = BreakerState::Closed;
    ewma_ = 0.0;
    consecutive_failures_ = 0;
    events_ = 0;
    ++readmissions_;
  } else {
    open();
  }
}

void HealthTracker::open() {
  state_ = BreakerState::Open;
  opened_at_ = now_;
  ++opens_;
}

}  // namespace fblas::host
