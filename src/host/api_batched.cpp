// Batched fully-unrolled host API lowerings (the Table V designs).
#include "fblas/batched.hpp"
#include "host/context.hpp"
#include "host/detail.hpp"
#include "sim/frequency_model.hpp"

namespace fblas::host {
namespace {

/// Streams the lower triangles of `batch` dense size x size matrices, one
/// problem per cycle.
template <typename T>
stream::Task read_batched_triangles(const T* data, std::int64_t size,
                                    std::int64_t batch,
                                    stream::Channel<T>& out,
                                    stream::DramBank* bank = nullptr) {
  const std::int64_t stride = size * size;
  for (std::int64_t inv = 0; inv < batch; ++inv) {
    const T* p = data + inv * stride;
    for (std::int64_t i = 0; i < size; ++i) {
      for (std::int64_t j = 0; j <= i; ++j) {
        if (bank != nullptr) {
          while (bank->grant_elems(1, sizeof(T)) == 0) {
            co_await stream::next_cycle();
          }
        }
        co_await out.push(p[i * size + j]);
      }
    }
    co_await stream::next_cycle();
  }
}

}  // namespace

template <typename T>
Event Context::gemm_batched_async(std::int64_t size, std::int64_t batch,
                                  T alpha, const Buffer<T>& a,
                                  const Buffer<T>& b, Buffer<T>& c) {
  Command command;
  command.label = "gemm_batched";
  command.reads = {&a, &b, &c};
  command.writes = {&c};
  command.work = [this, size, batch, alpha, &a, &b, &c] {
    FBLAS_REQUIRE(a.size() >= batch * size * size &&
                      b.size() >= batch * size * size &&
                      c.size() >= batch * size * size,
                  "gemm_batched: buffers too small for the batch");
    stream::Graph g(mode_);
    const auto f = sim::unrolled_frequency(PrecisionTraits<T>::value,
                                           dev_->spec());
    detail::BankSet banks(g, *dev_, f.mhz);
    const core::BatchedConfig cfg{size};
    const std::int64_t elems = size * size;
    const std::size_t cap = static_cast<std::size_t>(4 * elems);
    auto& ca = g.channel<T>("A", cap);
    auto& cb = g.channel<T>("B", cap);
    auto& cc = g.channel<T>("C", cap);
    g.spawn("read_A",
            core::read_batched<T>(a.cvec(batch * elems).data(), elems,
                                  batch, ca, banks.at(a.bank())));
    g.spawn("read_B",
            core::read_batched<T>(b.cvec(batch * elems).data(), elems,
                                  batch, cb, banks.at(b.bank())));
    g.spawn("gemm_batched",
            core::gemm_batched_unrolled<T>(cfg, batch, alpha, ca, cb, cc));
    g.spawn("store_C",
            core::write_batched<T>(c.vec(batch * elems).data(), elems,
                                   batch, cc, banks.at(c.bank())));
    run_graph(g);
  };
  return enqueue(std::move(command));
}

template <typename T>
Event Context::trsm_batched_async(std::int64_t size, std::int64_t batch,
                                  T alpha, const Buffer<T>& a,
                                  Buffer<T>& x) {
  Command command;
  command.label = "trsm_batched";
  command.reads = {&a, &x};
  command.writes = {&x};
  command.work = [this, size, batch, alpha, &a, &x] {
    FBLAS_REQUIRE(a.size() >= batch * size * size &&
                      x.size() >= batch * size * size,
                  "trsm_batched: buffers too small for the batch");
    stream::Graph g(mode_);
    const auto f = sim::unrolled_frequency(PrecisionTraits<T>::value,
                                           dev_->spec());
    detail::BankSet banks(g, *dev_, f.mhz);
    const core::BatchedConfig cfg{size};
    const std::int64_t elems = size * size;
    const std::size_t cap = static_cast<std::size_t>(4 * elems);
    auto& ca = g.channel<T>("A", cap);
    auto& cb = g.channel<T>("B", cap);
    auto& cx = g.channel<T>("X", cap);
    g.spawn("read_A",
            read_batched_triangles<T>(a.cvec(batch * elems).data(), size,
                                      batch, ca, banks.at(a.bank())));
    g.spawn("read_B",
            core::read_batched<T>(x.cvec(batch * elems).data(), elems,
                                  batch, cb, banks.at(x.bank())));
    g.spawn("trsm_batched",
            core::trsm_batched_unrolled<T>(cfg, batch, alpha, ca, cb, cx));
    g.spawn("store_X",
            core::write_batched<T>(x.vec(batch * elems).data(), elems,
                                   batch, cx, banks.at(x.bank())));
    run_graph(g);
  };
  return enqueue(std::move(command));
}

#define FBLAS_HOST_BATCHED_INSTANTIATE(T)                                    \
  template Event Context::gemm_batched_async<T>(                             \
      std::int64_t, std::int64_t, T, const Buffer<T>&, const Buffer<T>&,     \
      Buffer<T>&);                                                           \
  template Event Context::trsm_batched_async<T>(                             \
      std::int64_t, std::int64_t, T, const Buffer<T>&, Buffer<T>&);

FBLAS_HOST_BATCHED_INSTANTIATE(float)
FBLAS_HOST_BATCHED_INSTANTIATE(double)
#undef FBLAS_HOST_BATCHED_INSTANTIATE

}  // namespace fblas::host
