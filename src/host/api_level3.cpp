// Level-3 host API lowerings. Commands declare their buffer read/write
// sets, capture the RoutineConfig by value at enqueue time, and carry
// their refblas CPU reference path as the retry machinery's fallback
// plus, when the captured config enables verification, their ABFT
// Huang–Abraham checksum checkers (row/column checksums of the output
// panel, or a residual checksum for the triangular solve).
#include <memory>

#include "host/context.hpp"
#include "host/detail.hpp"
#include "refblas/level3.hpp"
#include "sim/frequency_model.hpp"
#include "verify/abft.hpp"

namespace fblas::host {
namespace {

Uplo flip(Uplo u) { return u == Uplo::Lower ? Uplo::Upper : Uplo::Lower; }
Transpose flip(Transpose t) {
  return t == Transpose::None ? Transpose::Trans : Transpose::None;
}

// Steers an injected silent corruption of an n x n triangular output onto
// the written (`uplo`) triangle: the injector's raw byte draw is folded
// onto a triangle element and the damage lands on that element's last
// (sign/exponent) byte. Without this the draw can fall in the preserved
// opposite triangle, which the routine never writes — damage no checker
// could, or should, detect.
std::uint64_t steer_triangular(Uplo uplo, std::int64_t n, std::uint64_t elem,
                               std::uint64_t raw, std::uint64_t size) {
  const std::uint64_t un = static_cast<std::uint64_t>(n);
  const std::uint64_t tri = un * (un + 1) / 2;
  if (tri == 0 || size == 0) return 0;
  std::uint64_t t = (raw / elem) % tri;
  // Row i of the triangle holds i+1 (Lower) or n-i (Upper) elements.
  std::uint64_t i = 0;
  for (std::uint64_t len = uplo == Uplo::Lower ? 1 : un; t >= len;
       ++i, len = uplo == Uplo::Lower ? len + 1 : len - 1) {
    t -= len;
  }
  const std::uint64_t j = uplo == Uplo::Lower ? t : i + t;
  const std::uint64_t off = (i * un + j) * elem + (elem - 1);
  return off < size ? off : size - 1;
}

}  // namespace

template <typename T>
Event Context::gemm_async(Transpose ta, Transpose tb, std::int64_t m,
                          std::int64_t n, std::int64_t k, T alpha,
                          const Buffer<T>& a, const Buffer<T>& b, T beta,
                          Buffer<T>& c) {
  Command command;
  command.label = "gemm";
  command.reads = {&a, &b, &c};
  command.writes = {&c};
  command.work = [this, rc = cfg_, ta, tb, m, n, k, alpha, &a, &b, beta,
                  &c] {
    stream::Graph g(mode_);
    const auto f = sim::gemm_frequency(rc.pe_rows, rc.pe_cols,
                                       PrecisionTraits<T>::value,
                                       dev_->spec());
    detail::BankSet banks(g, *dev_, f.mhz);
    const core::GemmConfig cfg{rc.pe_rows, rc.pe_cols, rc.gemm_tile_rows,
                               rc.gemm_tile_cols};
    auto& ca = g.channel<T>("A", detail::chan_cap(cfg.pe_rows * 4));
    auto& cb = g.channel<T>("B", detail::chan_cap(cfg.pe_cols * 4));
    auto& cc = g.channel<T>("Cin", detail::chan_cap(cfg.pe_cols * 4));
    auto& out = g.channel<T>("out", detail::chan_cap(cfg.pe_cols * 4));
    g.spawn("read_A",
            core::read_a_gemm<T>(a.cmat(ta == Transpose::None ? m : k,
                                        ta == Transpose::None ? k : m),
                                 cfg, n, ca, banks.at(a.bank()), ta));
    g.spawn("read_B",
            core::read_b_gemm<T>(b.cmat(tb == Transpose::None ? k : n,
                                        tb == Transpose::None ? n : k),
                                 cfg, m, cb, banks.at(b.bank()), tb));
    if (beta != T(0)) {
      g.spawn("read_C",
              stream::read_matrix<T>(c.cmat(m, n), core::gemm_c_schedule(cfg),
                                     1, cfg.pe_cols, cc, banks.at(c.bank())));
    }
    g.spawn("gemm", core::gemm<T>(cfg, m, n, k, alpha, beta, ca, cb, cc, out));
    g.spawn("store_C",
            stream::write_matrix<T>(c.mat(m, n), core::gemm_c_schedule(cfg),
                                    cfg.pe_cols, out, banks.at(c.bank())));
    run_graph(g);
  };
  command.fallback = [ta, tb, m, n, k, alpha, &a, &b, beta, &c] {
    ref::gemm(ta, tb, alpha,
              a.cmat(ta == Transpose::None ? m : k,
                     ta == Transpose::None ? k : m),
              b.cmat(tb == Transpose::None ? k : n,
                     tb == Transpose::None ? n : k),
              beta, c.mat(m, n));
  };
  if (cfg_.verification.enabled()) {
    auto chk = std::make_shared<verify::GemmCheck<T>>();
    command.verify_prepare = [chk, ta, tb, m, n, k, alpha, &a, &b, beta,
                              &c] {
      *chk = verify::gemm_prepare<T>(
          ta, tb, m, n, k, alpha,
          a.cmat(ta == Transpose::None ? m : k,
                 ta == Transpose::None ? k : m),
          b.cmat(tb == Transpose::None ? k : n,
                 tb == Transpose::None ? n : k),
          beta, c.cmat(m, n));
    };
    command.verify_check = [chk, m, n, &c,
                            scale = cfg_.verification.tolerance_scale()] {
      verify::gemm_check<T>(*chk, c.cmat(m, n), scale);
    };
  }
  return enqueue(std::move(command));
}

template <typename T>
Event Context::syrk_async(Uplo uplo, Transpose trans, std::int64_t n,
                          std::int64_t k, T alpha, const Buffer<T>& a,
                          T beta, Buffer<T>& c) {
  Command command;
  command.label = "syrk";
  command.reads = {&a, &c};
  command.writes = {&c};
  command.work = [this, rc = cfg_, uplo, trans, n, k, alpha, &a, beta, &c] {
    stream::Graph g(mode_);
    const auto f = sim::gemm_frequency(rc.pe_rows, rc.pe_cols,
                                       PrecisionTraits<T>::value,
                                       dev_->spec());
    detail::BankSet banks(g, *dev_, f.mhz);
    const core::GemmConfig cfg{rc.pe_rows, rc.pe_cols, rc.gemm_tile_rows,
                               rc.gemm_tile_cols};
    // SYRK is lowered to the generic GEMM module with both panel streams
    // reading the same matrix (the second one transposed) and a
    // triangular Store-C (Sec. VI: specialized routines are implemented
    // in terms of the generic ones).
    const auto a_view = a.cmat(trans == Transpose::None ? n : k,
                               trans == Transpose::None ? k : n);
    auto& ca = g.channel<T>("A", detail::chan_cap(cfg.pe_rows * 4));
    auto& cb = g.channel<T>("At", detail::chan_cap(cfg.pe_cols * 4));
    auto& cc = g.channel<T>("Cin", detail::chan_cap(cfg.pe_cols * 4));
    auto& out = g.channel<T>("out", detail::chan_cap(cfg.pe_cols * 4));
    g.spawn("read_A", core::read_a_gemm<T>(a_view, cfg, n, ca,
                                           banks.at(a.bank()), trans));
    g.spawn("read_At", core::read_b_gemm<T>(a_view, cfg, n, cb,
                                            banks.at(a.bank()), flip(trans)));
    if (beta != T(0)) {
      g.spawn("read_C",
              stream::read_matrix<T>(c.cmat(n, n), core::gemm_c_schedule(cfg),
                                     1, cfg.pe_cols, cc, banks.at(c.bank())));
    }
    g.spawn("gemm", core::gemm<T>(cfg, n, n, k, alpha, beta, ca, cb, cc, out));
    g.spawn("store_C", core::store_c_triangular<T>(c.mat(n, n), cfg, uplo,
                                                   out, banks.at(c.bank())));
    run_graph(g);
  };
  command.fallback = [uplo, trans, n, k, alpha, &a, beta, &c] {
    ref::syrk(uplo, trans, alpha,
              a.cmat(trans == Transpose::None ? n : k,
                     trans == Transpose::None ? k : n),
              beta, c.mat(n, n));
  };
  if (cfg_.verification.enabled()) {
    auto chk = std::make_shared<verify::RowSumCheck>();
    command.verify_prepare = [chk, uplo, trans, n, k, alpha, &a, beta, &c] {
      *chk = verify::syrk_prepare<T>(
          uplo, trans, n, k, alpha,
          a.cmat(trans == Transpose::None ? n : k,
                 trans == Transpose::None ? k : n),
          beta, c.cmat(n, n));
    };
    command.verify_check = [chk, n, &c,
                            scale = cfg_.verification.tolerance_scale()] {
      verify::check_rowsums<T>(*chk, "syrk", c.cmat(n, n), scale);
    };
  }
  command.corrupt_steer = [uplo, n](std::uint64_t raw, std::uint64_t size) {
    return steer_triangular(uplo, n, sizeof(T), raw, size);
  };
  return enqueue(std::move(command));
}

template <typename T>
Event Context::syr2k_async(Uplo uplo, Transpose trans, std::int64_t n,
                           std::int64_t k, T alpha, const Buffer<T>& a,
                           const Buffer<T>& b, T beta, Buffer<T>& c) {
  Command command;
  command.label = "syr2k";
  command.reads = {&a, &b, &c};
  command.writes = {&c};
  command.work = [this, rc = cfg_, uplo, trans, n, k, alpha, &a, &b, beta,
                  &c] {
    stream::Graph g(mode_);
    const auto f = sim::gemm_frequency(rc.pe_rows, rc.pe_cols,
                                       PrecisionTraits<T>::value,
                                       dev_->spec());
    detail::BankSet banks(g, *dev_, f.mhz);
    const core::GemmConfig cfg{rc.pe_rows, rc.pe_cols, rc.gemm_tile_rows,
                               rc.gemm_tile_cols};
    const auto a_view = a.cmat(trans == Transpose::None ? n : k,
                               trans == Transpose::None ? k : n);
    const auto b_view = b.cmat(trans == Transpose::None ? n : k,
                               trans == Transpose::None ? k : n);
    auto& ca = g.channel<T>("Acol", detail::chan_cap(cfg.pe_rows * 4));
    auto& cbc = g.channel<T>("Bcol", detail::chan_cap(cfg.pe_rows * 4));
    auto& cat = g.channel<T>("Atrow", detail::chan_cap(cfg.pe_cols * 4));
    auto& cbt = g.channel<T>("Btrow", detail::chan_cap(cfg.pe_cols * 4));
    auto& cc = g.channel<T>("Cin", detail::chan_cap(cfg.pe_cols * 4));
    auto& out = g.channel<T>("out", detail::chan_cap(cfg.pe_cols * 4));
    g.spawn("read_A", core::read_a_gemm<T>(a_view, cfg, n, ca,
                                           banks.at(a.bank()), trans));
    g.spawn("read_B", core::read_a_gemm<T>(b_view, cfg, n, cbc,
                                           banks.at(b.bank()), trans));
    g.spawn("read_At", core::read_b_gemm<T>(a_view, cfg, n, cat,
                                            banks.at(a.bank()), flip(trans)));
    g.spawn("read_Bt", core::read_b_gemm<T>(b_view, cfg, n, cbt,
                                            banks.at(b.bank()), flip(trans)));
    if (beta != T(0)) {
      g.spawn("read_C",
              stream::read_matrix<T>(c.cmat(n, n), core::gemm_c_schedule(cfg),
                                     1, cfg.pe_cols, cc, banks.at(c.bank())));
    }
    g.spawn("syr2k",
            core::syr2k<T>(cfg, n, k, alpha, beta, ca, cbc, cat, cbt, cc, out));
    g.spawn("store_C", core::store_c_triangular<T>(c.mat(n, n), cfg, uplo,
                                                   out, banks.at(c.bank())));
    run_graph(g);
  };
  command.fallback = [uplo, trans, n, k, alpha, &a, &b, beta, &c] {
    const std::int64_t rows = trans == Transpose::None ? n : k;
    const std::int64_t cols = trans == Transpose::None ? k : n;
    ref::syr2k(uplo, trans, alpha, a.cmat(rows, cols), b.cmat(rows, cols),
               beta, c.mat(n, n));
  };
  if (cfg_.verification.enabled()) {
    auto chk = std::make_shared<verify::RowSumCheck>();
    command.verify_prepare = [chk, uplo, trans, n, k, alpha, &a, &b, beta,
                              &c] {
      const std::int64_t rows = trans == Transpose::None ? n : k;
      const std::int64_t cols = trans == Transpose::None ? k : n;
      *chk = verify::syr2k_prepare<T>(uplo, trans, n, k, alpha,
                                      a.cmat(rows, cols), b.cmat(rows, cols),
                                      beta, c.cmat(n, n));
    };
    command.verify_check = [chk, n, &c,
                            scale = cfg_.verification.tolerance_scale()] {
      verify::check_rowsums<T>(*chk, "syr2k", c.cmat(n, n), scale);
    };
  }
  command.corrupt_steer = [uplo, n](std::uint64_t raw, std::uint64_t size) {
    return steer_triangular(uplo, n, sizeof(T), raw, size);
  };
  return enqueue(std::move(command));
}

template <typename T>
Event Context::trsm_async(Side side, Uplo uplo, Transpose trans, Diag diag,
                          std::int64_t m, std::int64_t n, T alpha,
                          const Buffer<T>& a, Buffer<T>& b) {
  Command command;
  command.label = "trsm";
  command.reads = {&a, &b};
  command.writes = {&b};
  command.work = [this, rc = cfg_, side, uplo, trans, diag, m, n, alpha, &a,
                  &b] {
    const auto f = sim::module_frequency(RoutineKind::Trsm,
                                         PrecisionTraits<T>::value,
                                         dev_->spec());
    if (side == Side::Left) {
      stream::Graph g(mode_);
      detail::BankSet banks(g, *dev_, f.mhz);
      const int W = rc.width;
      const Uplo eff = trans == Transpose::None ? uplo : flip(uplo);
      const core::TrsmConfig cfg{eff, diag, W};
      auto& ca = g.channel<T>("A", detail::chan_cap(W));
      auto& cb = g.channel<T>("B", detail::chan_cap(W));
      auto& out = g.channel<T>("X", detail::chan_cap(W));
      g.spawn("read_A", core::read_triangular<T>(a.cmat(m, m), eff, W, ca,
                                                 banks.at(a.bank()), trans));
      g.spawn("read_B", detail::read_rows_solve_order<T>(
                            b.cmat(m, n), eff, W, cb, banks.at(b.bank())));
      g.spawn("trsm", core::trsm<T>(cfg, m, n, alpha, ca, cb, out));
      g.spawn("write_X", detail::write_rows_solve_order<T>(
                             b.mat(m, n), eff, W, out, banks.at(b.bank())));
      run_graph(g);
      return;
    }
    // Right side: X op(A) = alpha B  <=>  op(A)^T X^T = alpha B^T. The
    // host transposes B into scratch, runs the left-side solve with the
    // opposite transposition, and transposes the result back (the host
    // layer's equivalent of generating a dedicated right-side variant).
    std::vector<T> bt(static_cast<std::size_t>(m * n));
    {
      auto bv = b.cmat(m, n);
      MatrixView<T> BT(bt.data(), n, m);
      for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) BT(j, i) = bv(i, j);
      }
    }
    stream::Graph g(mode_);
    detail::BankSet banks(g, *dev_, f.mhz);
    const int W = rc.width;
    const Transpose t2 = flip(trans);
    const Uplo eff = t2 == Transpose::None ? uplo : flip(uplo);
    const core::TrsmConfig cfg{eff, diag, W};
    auto& ca = g.channel<T>("A", detail::chan_cap(W));
    auto& cb = g.channel<T>("B", detail::chan_cap(W));
    auto& out = g.channel<T>("X", detail::chan_cap(W));
    std::vector<T> xt(static_cast<std::size_t>(m * n));
    g.spawn("read_A", core::read_triangular<T>(a.cmat(n, n), eff, W, ca,
                                               banks.at(a.bank()), t2));
    g.spawn("read_B", detail::read_rows_solve_order<T>(
                          MatrixView<const T>(bt.data(), n, m), eff, W, cb,
                          banks.at(b.bank())));
    g.spawn("trsm", core::trsm<T>(cfg, n, m, alpha, ca, cb, out));
    g.spawn("write_X", detail::write_rows_solve_order<T>(
                           MatrixView<T>(xt.data(), n, m), eff, W, out,
                           banks.at(b.bank())));
    run_graph(g);
    {
      auto bv = b.mat(m, n);
      MatrixView<const T> XT(xt.data(), n, m);
      for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) bv(i, j) = XT(j, i);
      }
    }
  };
  command.fallback = [side, uplo, trans, diag, m, n, alpha, &a, &b] {
    const std::int64_t adim = side == Side::Left ? m : n;
    ref::trsm(side, uplo, trans, diag, alpha, a.cmat(adim, adim),
              b.mat(m, n));
  };
  if (cfg_.verification.enabled()) {
    // Residual check: the solve overwrites B with X, so capture the
    // right-hand-side checksums alpha*(B e) first; afterwards op(A)(X e)
    // must reproduce them.
    auto chk = std::make_shared<verify::TrsmCheck>();
    command.verify_prepare = [chk, side, m, n, alpha, &b] {
      *chk = verify::trsm_prepare<T>(side, m, n, alpha, b.cmat(m, n));
    };
    command.verify_check = [chk, side, uplo, trans, diag, m, n, &a, &b,
                            scale = cfg_.verification.tolerance_scale()] {
      const std::int64_t adim = side == Side::Left ? m : n;
      verify::trsm_check<T>(*chk, side, uplo, trans, diag, m, n,
                            a.cmat(adim, adim), b.cmat(m, n), scale);
    };
  }
  return enqueue(std::move(command));
}

#define FBLAS_HOST_L3_INSTANTIATE(T)                                          \
  template Event Context::gemm_async<T>(Transpose, Transpose, std::int64_t,   \
                                        std::int64_t, std::int64_t, T,        \
                                        const Buffer<T>&, const Buffer<T>&,   \
                                        T, Buffer<T>&);                       \
  template Event Context::syrk_async<T>(Uplo, Transpose, std::int64_t,        \
                                        std::int64_t, T, const Buffer<T>&,    \
                                        T, Buffer<T>&);                       \
  template Event Context::syr2k_async<T>(Uplo, Transpose, std::int64_t,       \
                                         std::int64_t, T, const Buffer<T>&,   \
                                         const Buffer<T>&, T, Buffer<T>&);    \
  template Event Context::trsm_async<T>(Side, Uplo, Transpose, Diag,          \
                                        std::int64_t, std::int64_t, T,        \
                                        const Buffer<T>&, Buffer<T>&);

FBLAS_HOST_L3_INSTANTIATE(float)
FBLAS_HOST_L3_INSTANTIATE(double)
#undef FBLAS_HOST_L3_INSTANTIATE

}  // namespace fblas::host
