// Out-of-order command executor for the host runtime.
//
// Commands arrive with the dependency edges the DepGraph derived from
// their read/write sets. Two execution policies share this engine:
//
//   workers == 0  (serial)      commands stay queued and are executed in
//                               program order on the waiting thread —
//                               the paper's lazy in-order queue.
//   workers  > 0  (concurrent)  a pool of worker threads eagerly runs
//                               every command whose hazards are resolved,
//                               so independent commands overlap while
//                               conflicting ones retain program order.
//
// Cycle accounting: each command's simulated device cycles (reported by
// Context::run_graph through note_cycles) feed a critical-path model —
// a command starts at the latest finish time of its dependencies — and
// the longest finish time is the makespan: the device time an
// out-of-order schedule needs, next to the serial sum total_cycles().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace fblas::host {

struct ExecStats {
  std::uint64_t executed = 0;      ///< commands run to completion
  int max_concurrent = 0;          ///< high-water mark of commands in flight
  std::uint64_t makespan_cycles = 0;  ///< critical-path device cycles
};

class Executor {
 public:
  explicit Executor(int workers);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  int workers() const { return workers_; }

  /// Registers command `seq` with its unresolved-dependency list (seqs
  /// from DepGraph::add; already-completed deps are fine). In concurrent
  /// mode a hazard-free command starts immediately.
  void submit(std::uint64_t seq, std::function<void()> work,
              const std::vector<std::uint64_t>& deps);

  /// Blocks until `seq` has executed. Serial mode runs commands in
  /// program order on the calling thread up to and including `seq`.
  /// Rethrows the command's exception, if it threw.
  void wait(std::uint64_t seq);
  /// Waits for every submitted command.
  void wait_all();

  bool done(std::uint64_t seq) const;
  bool idle() const;
  ExecStats stats() const;

  /// Accumulates simulated device cycles into the command currently
  /// executing on this thread (no-op outside a command).
  static void note_cycles(std::uint64_t cycles);
  /// True while the calling thread is inside a command body — used by
  /// Context::enqueue to run nested library calls inline as part of the
  /// enclosing command.
  static bool in_command();

 private:
  struct Node {
    std::function<void()> work;
    std::vector<std::uint64_t> succs;
    std::size_t unresolved = 0;      // incomplete dependencies
    std::uint64_t start_cycles = 0;  // max finish over dependencies
    std::uint64_t finish_cycles = 0;
    std::exception_ptr error;
    bool running = false;
    bool completed = false;
  };

  void worker_loop();
  /// Runs one command. Called with the lock held; releases it around the
  /// command body and reacquires it to publish completion.
  void run_command(std::unique_lock<std::mutex>& lk, std::uint64_t seq);
  void complete(std::uint64_t seq, std::uint64_t cycles,
                std::exception_ptr error);

  const int workers_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: ready commands / shutdown
  std::condition_variable done_cv_;  // waiters: command completions
  std::map<std::uint64_t, Node> nodes_;  // ordered: serial drain needs it
  std::deque<std::uint64_t> ready_;
  std::vector<std::thread> threads_;
  std::uint64_t incomplete_ = 0;  // submitted, not yet completed
  int active_ = 0;
  bool stop_ = false;
  ExecStats stats_;
};

}  // namespace fblas::host
