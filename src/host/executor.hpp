// Out-of-order command executor for the host runtime.
//
// Commands arrive with the dependency edges the DepGraph derived from
// their read/write sets. Two execution policies share this engine:
//
//   workers == 0  (serial)      commands stay queued and are executed in
//                               program order on the waiting thread —
//                               the paper's lazy in-order queue.
//   workers  > 0  (concurrent)  a pool of worker threads eagerly runs
//                               every command whose hazards are resolved,
//                               so independent commands overlap while
//                               conflicting ones retain program order.
//
// Fault tolerance: a command may carry hooks — snapshot/rollback of its
// declared write-set and an optional CPU fallback. Under a RetryPolicy,
// a transient failure (DeviceError / TimeoutError) rolls the write-set
// back and re-runs the command with bounded exponential backoff; when
// retries are exhausted the CPU fallback (if any) produces the result
// and the command is marked Degraded. A command that ultimately fails
// poisons its dependents: they complete immediately with a deterministic
// "dependency failed" error instead of running on stale inputs — and
// waiters never hang.
//
// Cycle accounting: each command's simulated device cycles (reported by
// Context::run_graph through note_cycles) feed a critical-path model —
// a command starts at the latest finish time of its dependencies — and
// the longest finish time is the makespan: the device time an
// out-of-order schedule needs, next to the serial sum total_cycles().
// Failed attempts still burn device cycles, like real hardware.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "host/health.hpp"
#include "host/status.hpp"

namespace fblas::trace {
class Recorder;
}

namespace fblas::host {

struct ExecStats {
  std::uint64_t executed = 0;      ///< commands run to completion
  int max_concurrent = 0;          ///< high-water mark of commands in flight
  std::uint64_t makespan_cycles = 0;  ///< critical-path device cycles
  std::uint64_t retries = 0;          ///< re-run attempts after faults
  std::uint64_t faults_injected = 0;  ///< faults the injector handed out
  std::uint64_t degraded = 0;         ///< commands served by CPU fallback
  std::uint64_t verified = 0;         ///< result-verification checks run
  std::uint64_t verify_failures = 0;  ///< checks that rejected the result
  /// Silent-data-corruption events caught: verify rejections of attempts
  /// the device reported successful. Today every rejection is one (the
  /// checker only runs after a device-Ok attempt), but the counter keeps
  /// its meaning if checkers ever audit fallback results too.
  std::uint64_t sdc_caught = 0;
  /// In-grid ABFT (systolic engine): faults the checksum rank pinned to a
  /// specific PE, and the subset corrected in place — the recovery rung
  /// below rollback/retry, so a corrected fault never shows in retries.
  std::uint64_t pe_faults_localized = 0;
  std::uint64_t faults_corrected = 0;
  /// Live Sampled-mode rate under verify::Options::adaptive(): raised by
  /// rejections, decayed by clean checks. 0 when adaptive sampling has
  /// never engaged (filled by Context::exec_stats, not the Executor).
  double adaptive_sample_rate = 0.0;
  // --- Device-fleet health (filled by Context::exec_stats from the
  // DevicePool; the Executor itself is device-agnostic) -----------------
  std::uint64_t migrations = 0;      ///< buffers re-staged across devices
  std::uint64_t migrated_bytes = 0;  ///< bytes those re-stagings moved
  std::uint64_t breaker_opens = 0;   ///< circuit-breaker Closed/HalfOpen->Open
  std::uint64_t breaker_readmissions = 0;  ///< probes that re-closed one
  /// Per-device breakdown (one entry per pool device; a single-device
  /// Context is a pool of one). Event counters reconcile with the
  /// globals: sum(faults) == faults_injected, sum(verify_rejects) ==
  /// verify_failures, sum(executed) == executed - degraded - failed -
  /// barrier commands, sum(failed_attempts + verify_rejects) == retries
  /// + terminal transient failures.
  std::vector<PerDeviceStats> per_device;
};

/// Retry behavior for transient failures (DeviceError / TimeoutError).
/// Non-transient exceptions always fail the command immediately.
struct RetryPolicy {
  int max_retries = 0;  ///< re-runs after the first attempt; 0 disables
  std::chrono::microseconds backoff{50};      ///< first retry delay
  double backoff_multiplier = 2.0;            ///< exponential growth
  std::chrono::microseconds max_backoff{2000};  ///< delay ceiling
  bool cpu_fallback = false;  ///< after retries: run the command's CPU
                              ///< reference path and mark it Degraded
  /// Deterministic full-jitter: each retry sleeps a uniform fraction of
  /// the current exponential delay, hashed from (jitter_seed, seq,
  /// attempt) exactly like the fault injector's draws — so workers
  /// retrying after a correlated fault spread out instead of hammering
  /// the device in lockstep, yet the delays replay identically across
  /// runs. Off (the default) keeps the exact legacy delays; jitter only
  /// changes *when* a retry runs, never its result.
  bool full_jitter = false;
  std::uint64_t jitter_seed = 0;
};

/// The full-jitter delay for retry `attempt` of command `seq`: a
/// deterministic uniform draw in [0, cap]. Exposed for tests; the
/// executor calls it with the current exponential backoff as the cap.
std::chrono::microseconds jittered_backoff(std::uint64_t seed,
                                           std::uint64_t seq, int attempt,
                                           std::chrono::microseconds cap);

/// Fault-tolerance hooks attached to a command by the Context.
struct CommandHooks {
  std::function<void()> snapshot;  ///< capture declared write-set bytes
  std::function<void()> rollback;  ///< restore the snapshot
  std::function<void()> fallback;  ///< CPU reference re-execution
  /// Result verification (ABFT): `verify_prepare` runs once, after the
  /// snapshot and before the first attempt, capturing input checksums;
  /// `verify_check` runs after every attempt that reports success and
  /// throws VerificationError on mismatch. The executor treats that
  /// rejection exactly like a detected transient fault: rollback, retry
  /// under the RetryPolicy, CPU fallback once retries are exhausted.
  std::function<void()> verify_prepare;
  std::function<void()> verify_check;
  bool retryable = false;          ///< participate in the RetryPolicy
};

class Executor {
 public:
  explicit Executor(int workers);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  int workers() const { return workers_; }

  /// Retry policy applied to subsequent command executions.
  void set_retry_policy(const RetryPolicy& policy);
  RetryPolicy retry_policy() const;

  /// Arms (or with nullptr disarms) lifecycle tracing: every subsequent
  /// command emits DepsReady / Attempt / Retry / Verify / Fallback /
  /// Complete events into the recorder, and the recorder is installed
  /// as the thread-local trace sink for the span of each command body
  /// so deeper layers (pool placement, engine summaries) emit too.
  /// Shared ownership: commands already in flight keep their recorder.
  void set_trace(std::shared_ptr<trace::Recorder> rec);

  /// Registers command `seq` with its unresolved-dependency list (seqs
  /// from DepGraph::add; already-completed deps are fine). In concurrent
  /// mode a hazard-free command starts immediately.
  void submit(std::uint64_t seq, std::function<void()> work,
              const std::vector<std::uint64_t>& deps,
              CommandHooks hooks = {});

  /// Blocks until `seq` has executed. Serial mode runs commands in
  /// program order on the calling thread up to and including `seq`.
  /// Rethrows the command's exception, if it threw (once; the recorded
  /// status() stays queryable afterwards).
  void wait(std::uint64_t seq);
  /// Waits for every submitted command.
  void wait_all();

  bool done(std::uint64_t seq) const;
  bool idle() const;
  ExecStats stats() const;
  /// Outcome of command `seq`. Unknown/retired seqs report Ok.
  CommandStatus status(std::uint64_t seq) const;

  /// Accumulates simulated device cycles into the command currently
  /// executing on this thread (no-op outside a command).
  static void note_cycles(std::uint64_t cycles);
  /// Accumulates in-grid ABFT outcomes (faults localized to a PE /
  /// corrected in place) into the command currently executing on this
  /// thread — the engine-side analogue of note_cycles.
  static void note_pe_faults(std::uint64_t localized,
                             std::uint64_t corrected);
  /// True while the calling thread is inside a command body — used by
  /// Context::enqueue to run nested library calls inline as part of the
  /// enclosing command.
  static bool in_command();
  /// Zero-based retry attempt of the command executing on this thread
  /// (0 outside a command) — lets the fault injector draw a fresh,
  /// deterministic decision per attempt.
  static int current_attempt();

 private:
  struct Node {
    std::function<void()> work;
    CommandHooks hooks;
    std::vector<std::uint64_t> succs;
    std::size_t unresolved = 0;      // incomplete dependencies
    std::uint64_t start_cycles = 0;  // max finish over dependencies
    std::uint64_t finish_cycles = 0;
    std::exception_ptr error;
    std::uint64_t poisoned_by = 0;  // lowest-seq failed dependency, or 0
    CommandState state = CommandState::Pending;
    std::string message;  // final error / degradation reason
    std::uint32_t verify_rejections = 0;  // ABFT rejections across attempts
    bool running = false;
    bool completed = false;
  };

  void worker_loop();
  /// Runs one command (including its retry/fallback loop). Called with
  /// the lock held; releases it around the command body and reacquires
  /// it to publish completion.
  void run_command(std::unique_lock<std::mutex>& lk, std::uint64_t seq);
  void complete(std::uint64_t seq, std::uint64_t cycles,
                std::exception_ptr error, CommandState state,
                std::string message);

  const int workers_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: ready commands / shutdown
  std::condition_variable done_cv_;  // waiters: command completions
  std::map<std::uint64_t, Node> nodes_;  // ordered: serial drain needs it
  std::deque<std::uint64_t> ready_;
  std::vector<std::thread> threads_;
  RetryPolicy policy_;
  std::shared_ptr<trace::Recorder> trace_;  // null = tracing off
  std::uint64_t incomplete_ = 0;  // submitted, not yet completed
  int active_ = 0;
  bool stop_ = false;
  ExecStats stats_;
};

}  // namespace fblas::host
