// Specialized matrix routines lowered onto the generic GEMV, per the
// paper's prescription (Sec. VI). The host expands the stored triangle
// into a dense scratch operand (the equivalent of a small expansion
// kernel in front of the generic module) and reuses the GEMV lowering.
#include "host/context.hpp"
#include "host/detail.hpp"

namespace fblas::host {

template <typename T>
Event Context::symv_async(Uplo uplo, std::int64_t n, T alpha,
                          const Buffer<T>& a, const Buffer<T>& x,
                          std::int64_t incx, T beta, Buffer<T>& y,
                          std::int64_t incy) {
  Command command;
  command.label = "symv";
  command.reads = {&a, &x, &y};
  command.writes = {&y};
  command.work = [this, uplo, n, alpha, &a, &x, incx, beta, &y, incy] {
    // Mirror the stored triangle into a dense scratch matrix.
    Buffer<T> dense(*dev_, n * n, a.bank());
    {
      auto src = a.cmat(n, n);
      std::vector<T> full(static_cast<std::size_t>(n * n));
      MatrixView<T> D(full.data(), n, n);
      for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
          const bool stored = uplo == Uplo::Lower ? j <= i : j >= i;
          D(i, j) = stored ? src(i, j) : src(j, i);
        }
      }
      dense.write(full);
    }
    // Runs inline: nested calls issued from inside a command body fold
    // into the enclosing command.
    gemv_async<T>(Transpose::None, n, n, alpha, dense, x, incx, beta, y,
                  incy)
        .wait();
  };
  return enqueue(std::move(command));
}

template <typename T>
Event Context::trmv_async(Uplo uplo, Transpose trans, Diag diag,
                          std::int64_t n, const Buffer<T>& a, Buffer<T>& x,
                          std::int64_t incx) {
  Command command;
  command.label = "trmv";
  command.reads = {&a, &x};
  command.writes = {&x};
  command.work = [this, uplo, trans, diag, n, &a, &x, incx] {
    // Zero-fill the opposite triangle (and force a unit diagonal when
    // requested) into dense scratch, then run the generic GEMV.
    Buffer<T> dense(*dev_, n * n, a.bank());
    {
      auto src = a.cmat(n, n);
      std::vector<T> full(static_cast<std::size_t>(n * n), T(0));
      MatrixView<T> D(full.data(), n, n);
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t j0 = uplo == Uplo::Lower ? 0 : i;
        const std::int64_t j1 = uplo == Uplo::Lower ? i + 1 : n;
        for (std::int64_t j = j0; j < j1; ++j) D(i, j) = src(i, j);
        if (diag == Diag::Unit) D(i, i) = T(1);
      }
      dense.write(full);
    }
    Buffer<T> result(*dev_, n, x.bank());
    {
      std::vector<T> zero(static_cast<std::size_t>(n), T(0));
      result.write(zero);
    }
    gemv_async<T>(trans, n, n, T(1), dense, x, incx, T(0), result, 1).wait();
    // Copy the result back into x (respecting the stride).
    auto xv = x.vec(n, incx);
    const auto rv = result.cvec(n);
    for (std::int64_t i = 0; i < n; ++i) xv[i] = rv[i];
  };
  return enqueue(std::move(command));
}

#define FBLAS_HOST_SPECIALIZED_INSTANTIATE(T)                                \
  template Event Context::symv_async<T>(Uplo, std::int64_t, T,               \
                                        const Buffer<T>&, const Buffer<T>&,  \
                                        std::int64_t, T, Buffer<T>&,         \
                                        std::int64_t);                       \
  template Event Context::trmv_async<T>(Uplo, Transpose, Diag,               \
                                        std::int64_t, const Buffer<T>&,      \
                                        Buffer<T>&, std::int64_t);

FBLAS_HOST_SPECIALIZED_INSTANTIATE(float)
FBLAS_HOST_SPECIALIZED_INSTANTIATE(double)
#undef FBLAS_HOST_SPECIALIZED_INSTANTIATE

}  // namespace fblas::host
