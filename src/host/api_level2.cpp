// Level-2 host API lowerings. Commands declare their buffer read/write
// sets, capture the RoutineConfig by value at enqueue time, and carry
// their refblas CPU reference path as the retry machinery's fallback
// plus, when the captured config enables verification, their ABFT
// dot-product / rank-update checksum checkers.
#include <memory>

#include "host/context.hpp"
#include "host/detail.hpp"
#include "refblas/level2.hpp"
#include "sim/frequency_model.hpp"
#include "verify/abft.hpp"

namespace fblas::host {
namespace {

template <typename T>
sim::FrequencyEstimate freq_of(RoutineKind kind, const Device& dev) {
  return sim::module_frequency(kind, PrecisionTraits<T>::value, dev.spec());
}

}  // namespace

template <typename T>
Event Context::gemv_async(Transpose trans, std::int64_t rows,
                          std::int64_t cols, T alpha, const Buffer<T>& a,
                          const Buffer<T>& x, std::int64_t incx, T beta,
                          Buffer<T>& y, std::int64_t incy) {
  Command command;
  command.label = "gemv";
  command.reads = {&a, &x, &y};
  command.writes = {&y};
  command.work = [this, rc = cfg_, trans, rows, cols, alpha, &a, &x, incx,
                  beta, &y, incy] {
    stream::Graph g(mode_);
    const auto f = freq_of<T>(RoutineKind::Gemv, *dev_);
    detail::BankSet banks(g, *dev_, f.mhz);
    const core::GemvConfig cfg{trans, rc.tiling, rc.width, rc.tile_rows,
                               rc.tile_cols};
    const std::int64_t xlen = trans == Transpose::None ? cols : rows;
    const std::int64_t ylen = trans == Transpose::None ? rows : cols;
    const int W = rc.width;
    auto& ca = g.channel<T>("A", detail::chan_cap(W));
    auto& cx = g.channel<T>("x", detail::chan_cap(W));
    auto& cy = g.channel<T>("y", detail::chan_cap(W));
    auto& out = g.channel<T>("out", detail::chan_cap(W));
    g.spawn("read_A",
            stream::read_matrix<T>(a.cmat(rows, cols),
                                   core::gemv_a_schedule(cfg), 1, W, ca,
                                   banks.at(a.bank())));
    g.spawn("read_x", stream::read_vector<T>(
                          x.cvec(xlen, incx),
                          core::gemv_x_repeat(cfg, rows, cols), W, cx,
                          banks.at(x.bank())));
    g.spawn("read_y", stream::read_vector<T>(y.cvec(ylen, incy), 1, W, cy,
                                             banks.at(y.bank())));
    g.spawn("gemv",
            core::gemv<T>(cfg, rows, cols, alpha, beta, ca, cx, cy, out));
    g.spawn("write_y", stream::write_vector<T>(y.vec(ylen, incy), 1, W, out,
                                               banks.at(y.bank())));
    run_graph(g);
  };
  command.fallback = [trans, rows, cols, alpha, &a, &x, incx, beta, &y,
                      incy] {
    const std::int64_t xlen = trans == Transpose::None ? cols : rows;
    const std::int64_t ylen = trans == Transpose::None ? rows : cols;
    ref::gemv(trans, alpha, a.cmat(rows, cols), x.cvec(xlen, incx), beta,
              y.vec(ylen, incy));
  };
  if (cfg_.verification.enabled()) {
    const std::int64_t xlen = trans == Transpose::None ? cols : rows;
    const std::int64_t ylen = trans == Transpose::None ? rows : cols;
    auto chk = std::make_shared<verify::ScalarCheck>();
    command.verify_prepare = [chk, trans, rows, cols, alpha, &a, &x, incx,
                              beta, &y, incy, xlen, ylen] {
      *chk = verify::gemv_prepare<T>(trans, rows, cols, alpha,
                                     a.cmat(rows, cols), x.cvec(xlen, incx),
                                     beta, y.cvec(ylen, incy));
    };
    command.verify_check = [chk, &y, incy, ylen,
                            scale = cfg_.verification.tolerance_scale()] {
      verify::check_sum<T>(*chk, "gemv", y.cvec(ylen, incy), scale);
    };
  }
  return enqueue(std::move(command));
}

template <typename T>
Event Context::trsv_async(Uplo uplo, Transpose trans, Diag diag,
                          std::int64_t n, const Buffer<T>& a, Buffer<T>& x,
                          std::int64_t incx) {
  Command command;
  command.label = "trsv";
  command.reads = {&a, &x};
  command.writes = {&x};
  command.work = [this, rc = cfg_, uplo, trans, diag, n, &a, &x, incx] {
    stream::Graph g(mode_);
    const auto f = freq_of<T>(RoutineKind::Trsv, *dev_);
    detail::BankSet banks(g, *dev_, f.mhz);
    const int W = rc.width;
    // Transposition flips the triangle op(A) effectively occupies.
    const Uplo eff = trans == Transpose::None
                         ? uplo
                         : (uplo == Uplo::Lower ? Uplo::Upper : Uplo::Lower);
    const core::TrsvConfig cfg{eff, diag, W};
    auto& ca = g.channel<T>("A", detail::chan_cap(W));
    auto& cb = g.channel<T>("b", detail::chan_cap(W));
    auto& out = g.channel<T>("x", detail::chan_cap(W));
    g.spawn("read_A", core::read_triangular<T>(a.cmat(n, n), eff, W, ca,
                                               banks.at(a.bank()), trans));
    g.spawn("read_b", detail::read_vector_solve_order<T>(
                          x.cvec(n, incx), eff, W, cb, banks.at(x.bank())));
    g.spawn("trsv", core::trsv<T>(cfg, n, ca, cb, out));
    g.spawn("write_x", detail::write_vector_solve_order<T>(
                           x.vec(n, incx), eff, W, out, banks.at(x.bank())));
    run_graph(g);
  };
  command.fallback = [uplo, trans, diag, n, &a, &x, incx] {
    ref::trsv(uplo, trans, diag, a.cmat(n, n), x.vec(n, incx));
  };
  if (cfg_.verification.enabled()) {
    // Residual check: the solve overwrites b with x, so capture e^T b
    // first; afterwards e^T (op(A) x) must reproduce it.
    auto chk = std::make_shared<verify::ScalarCheck>();
    command.verify_prepare = [chk, n, &x, incx] {
      *chk = verify::trsv_prepare<T>(n, x.cvec(n, incx));
    };
    command.verify_check = [chk, uplo, trans, diag, n, &a, &x, incx,
                            scale = cfg_.verification.tolerance_scale()] {
      verify::trsv_check<T>(*chk, uplo, trans, diag, n, a.cmat(n, n),
                            x.cvec(n, incx), scale);
    };
  }
  return enqueue(std::move(command));
}

template <typename T>
Event Context::ger_async(std::int64_t rows, std::int64_t cols, T alpha,
                         const Buffer<T>& x, std::int64_t incx,
                         const Buffer<T>& y, std::int64_t incy,
                         Buffer<T>& a) {
  Command command;
  command.label = "ger";
  command.reads = {&x, &y, &a};
  command.writes = {&a};
  command.work = [this, rc = cfg_, rows, cols, alpha, &x, incx, &y, incy,
                  &a] {
    stream::Graph g(mode_);
    const auto f = freq_of<T>(RoutineKind::Ger, *dev_);
    detail::BankSet banks(g, *dev_, f.mhz);
    const core::GerConfig cfg{rc.tiling, rc.width, rc.tile_rows,
                              rc.tile_cols};
    const int W = rc.width;
    const auto sched = core::ger_a_schedule(cfg);
    auto& ca = g.channel<T>("A", detail::chan_cap(W));
    auto& cx = g.channel<T>("x", detail::chan_cap(W));
    auto& cy = g.channel<T>("y", detail::chan_cap(W));
    auto& out = g.channel<T>("out", detail::chan_cap(W));
    g.spawn("read_A", stream::read_matrix<T>(a.cmat(rows, cols), sched, 1, W,
                                             ca, banks.at(a.bank())));
    g.spawn("read_x", stream::read_vector<T>(
                          x.cvec(rows, incx),
                          core::ger_x_repeat(cfg, rows, cols), W, cx,
                          banks.at(x.bank())));
    g.spawn("read_y", stream::read_vector<T>(
                          y.cvec(cols, incy),
                          core::ger_y_repeat(cfg, rows, cols), W, cy,
                          banks.at(y.bank())));
    g.spawn("ger", core::ger<T>(cfg, rows, cols, alpha, ca, cx, cy, out));
    g.spawn("write_A", stream::write_matrix<T>(a.mat(rows, cols), sched, W,
                                               out, banks.at(a.bank())));
    run_graph(g);
  };
  command.fallback = [rows, cols, alpha, &x, incx, &y, incy, &a] {
    ref::ger(alpha, x.cvec(rows, incx), y.cvec(cols, incy),
             a.mat(rows, cols));
  };
  if (cfg_.verification.enabled()) {
    auto chk = std::make_shared<verify::RowSumCheck>();
    command.verify_prepare = [chk, rows, cols, alpha, &x, incx, &y, incy,
                              &a] {
      *chk = verify::ger_prepare<T>(rows, cols, alpha, x.cvec(rows, incx),
                                    y.cvec(cols, incy), a.cmat(rows, cols));
    };
    command.verify_check = [chk, rows, cols, &a,
                            scale = cfg_.verification.tolerance_scale()] {
      verify::check_rowsums<T>(*chk, "ger", a.cmat(rows, cols), scale);
    };
  }
  return enqueue(std::move(command));
}

template <typename T>
Event Context::syr_async(Uplo uplo, std::int64_t n, T alpha,
                         const Buffer<T>& x, std::int64_t incx,
                         Buffer<T>& a) {
  Command command;
  command.label = "syr";
  command.reads = {&x, &a};
  command.writes = {&a};
  command.work = [this, rc = cfg_, uplo, n, alpha, &x, incx, &a] {
    stream::Graph g(mode_);
    const auto f = freq_of<T>(RoutineKind::Syr, *dev_);
    detail::BankSet banks(g, *dev_, f.mhz);
    const core::GerConfig cfg{rc.tiling, rc.width, rc.tile_rows,
                              rc.tile_cols};
    const int W = rc.width;
    const auto sched = core::ger_a_schedule(cfg);
    auto& ca = g.channel<T>("A", detail::chan_cap(W));
    auto& cxr = g.channel<T>("x_row", detail::chan_cap(W));
    auto& cxc = g.channel<T>("x_col", detail::chan_cap(W));
    auto& out = g.channel<T>("out", detail::chan_cap(W));
    g.spawn("read_A", stream::read_matrix<T>(a.cmat(n, n), sched, 1, W, ca,
                                             banks.at(a.bank())));
    g.spawn("read_x_row",
            stream::read_vector<T>(x.cvec(n, incx),
                                   core::ger_x_repeat(cfg, n, n), W, cxr,
                                   banks.at(x.bank())));
    g.spawn("read_x_col",
            stream::read_vector<T>(x.cvec(n, incx),
                                   core::ger_y_repeat(cfg, n, n), W, cxc,
                                   banks.at(x.bank())));
    g.spawn("syr", core::syr<T>(cfg, n, alpha, ca, cxr, cxc, out));
    // Only the requested triangle is stored back (BLAS semantics).
    g.spawn("write_A", detail::write_matrix_uplo<T>(a.mat(n, n), sched, uplo,
                                                    W, out,
                                                    banks.at(a.bank())));
    run_graph(g);
  };
  command.fallback = [uplo, n, alpha, &x, incx, &a] {
    ref::syr(uplo, alpha, x.cvec(n, incx), a.mat(n, n));
  };
  if (cfg_.verification.enabled()) {
    auto chk = std::make_shared<verify::RowSumCheck>();
    command.verify_prepare = [chk, uplo, n, alpha, &x, incx, &a] {
      *chk = verify::syr_prepare<T>(uplo, n, alpha, x.cvec(n, incx),
                                    a.cmat(n, n));
    };
    command.verify_check = [chk, n, &a,
                            scale = cfg_.verification.tolerance_scale()] {
      verify::check_rowsums<T>(*chk, "syr", a.cmat(n, n), scale);
    };
  }
  return enqueue(std::move(command));
}

template <typename T>
Event Context::syr2_async(Uplo uplo, std::int64_t n, T alpha,
                          const Buffer<T>& x, std::int64_t incx,
                          const Buffer<T>& y, std::int64_t incy,
                          Buffer<T>& a) {
  Command command;
  command.label = "syr2";
  command.reads = {&x, &y, &a};
  command.writes = {&a};
  command.work = [this, rc = cfg_, uplo, n, alpha, &x, incx, &y, incy, &a] {
    stream::Graph g(mode_);
    const auto f = freq_of<T>(RoutineKind::Syr2, *dev_);
    detail::BankSet banks(g, *dev_, f.mhz);
    const core::GerConfig cfg{rc.tiling, rc.width, rc.tile_rows,
                              rc.tile_cols};
    const int W = rc.width;
    const auto sched = core::ger_a_schedule(cfg);
    auto& ca = g.channel<T>("A", detail::chan_cap(W));
    auto& cxr = g.channel<T>("x_row", detail::chan_cap(W));
    auto& cxc = g.channel<T>("x_col", detail::chan_cap(W));
    auto& cyr = g.channel<T>("y_row", detail::chan_cap(W));
    auto& cyc = g.channel<T>("y_col", detail::chan_cap(W));
    auto& out = g.channel<T>("out", detail::chan_cap(W));
    g.spawn("read_A", stream::read_matrix<T>(a.cmat(n, n), sched, 1, W, ca,
                                             banks.at(a.bank())));
    g.spawn("read_x_row",
            stream::read_vector<T>(x.cvec(n, incx),
                                   core::ger_x_repeat(cfg, n, n), W, cxr,
                                   banks.at(x.bank())));
    g.spawn("read_x_col",
            stream::read_vector<T>(x.cvec(n, incx),
                                   core::ger_y_repeat(cfg, n, n), W, cxc,
                                   banks.at(x.bank())));
    g.spawn("read_y_row",
            stream::read_vector<T>(y.cvec(n, incy),
                                   core::ger_x_repeat(cfg, n, n), W, cyr,
                                   banks.at(y.bank())));
    g.spawn("read_y_col",
            stream::read_vector<T>(y.cvec(n, incy),
                                   core::ger_y_repeat(cfg, n, n), W, cyc,
                                   banks.at(y.bank())));
    g.spawn("syr2",
            core::syr2<T>(cfg, n, alpha, ca, cxr, cxc, cyr, cyc, out));
    g.spawn("write_A", detail::write_matrix_uplo<T>(a.mat(n, n), sched, uplo,
                                                    W, out,
                                                    banks.at(a.bank())));
    run_graph(g);
  };
  command.fallback = [uplo, n, alpha, &x, incx, &y, incy, &a] {
    ref::syr2(uplo, alpha, x.cvec(n, incx), y.cvec(n, incy), a.mat(n, n));
  };
  if (cfg_.verification.enabled()) {
    auto chk = std::make_shared<verify::RowSumCheck>();
    command.verify_prepare = [chk, uplo, n, alpha, &x, incx, &y, incy, &a] {
      *chk = verify::syr2_prepare<T>(uplo, n, alpha, x.cvec(n, incx),
                                     y.cvec(n, incy), a.cmat(n, n));
    };
    command.verify_check = [chk, n, &a,
                            scale = cfg_.verification.tolerance_scale()] {
      verify::check_rowsums<T>(*chk, "syr2", a.cmat(n, n), scale);
    };
  }
  return enqueue(std::move(command));
}

#define FBLAS_HOST_L2_INSTANTIATE(T)                                          \
  template Event Context::gemv_async<T>(Transpose, std::int64_t,              \
                                        std::int64_t, T, const Buffer<T>&,    \
                                        const Buffer<T>&, std::int64_t, T,    \
                                        Buffer<T>&, std::int64_t);            \
  template Event Context::trsv_async<T>(Uplo, Transpose, Diag, std::int64_t,  \
                                        const Buffer<T>&, Buffer<T>&,         \
                                        std::int64_t);                        \
  template Event Context::ger_async<T>(std::int64_t, std::int64_t, T,         \
                                       const Buffer<T>&, std::int64_t,        \
                                       const Buffer<T>&, std::int64_t,        \
                                       Buffer<T>&);                           \
  template Event Context::syr_async<T>(Uplo, std::int64_t, T,                 \
                                       const Buffer<T>&, std::int64_t,        \
                                       Buffer<T>&);                           \
  template Event Context::syr2_async<T>(Uplo, std::int64_t, T,                \
                                        const Buffer<T>&, std::int64_t,       \
                                        const Buffer<T>&, std::int64_t,       \
                                        Buffer<T>&);

FBLAS_HOST_L2_INSTANTIATE(float)
FBLAS_HOST_L2_INSTANTIATE(double)
#undef FBLAS_HOST_L2_INSTANTIATE

}  // namespace fblas::host
