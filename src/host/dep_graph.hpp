// Hazard tracking for the out-of-order host runtime: each enqueued
// command declares the buffers it reads and writes, and the tracker
// derives the data dependencies that force program order —
//
//   RAW  a command reading a buffer waits for its last writer,
//   WAR  a command writing a buffer waits for every reader since the
//        last write (they must observe the old contents),
//   WAW  a command writing a buffer waits for its last writer.
//
// Commands whose sets touch disjoint buffers get no edges and may run
// concurrently; conflicting commands retain program order, so results
// are bit-identical to the serial schedule (Sec. II-B semantics).
//
// Resources are identified by opaque pointers: Buffer addresses for
// device data and host pointers for scalar results. Not thread-safe;
// the Context serializes enqueues.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace fblas::host {

class DepGraph {
 public:
  /// Registers command `seq` (1-based, strictly increasing) with its
  /// declared sets and returns the commands it must wait for, deduplicated
  /// and in ascending order. A `barrier` command (one with undeclared
  /// effects, e.g. a raw user closure) orders after every earlier command
  /// and before every later one.
  std::vector<std::uint64_t> add(std::uint64_t seq,
                                 std::span<const void* const> reads,
                                 std::span<const void* const> writes,
                                 bool barrier = false);

 private:
  struct Resource {
    std::uint64_t last_writer = 0;              // 0 = never written
    std::vector<std::uint64_t> readers_since_write;
  };

  Resource& at(const void* key) { return resources_[key]; }

  std::unordered_map<const void*, Resource> resources_;
};

}  // namespace fblas::host
