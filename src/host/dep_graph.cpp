#include "host/dep_graph.hpp"

#include <algorithm>

namespace fblas::host {
namespace {

// Sentinel resource implicitly read by every command and written by
// barriers: a barrier orders after all earlier commands (WAR against
// their sentinel reads) and before all later ones (RAW on its write).
const char kGlobalOrder = 0;

}  // namespace

std::vector<std::uint64_t> DepGraph::add(std::uint64_t seq,
                                         std::span<const void* const> reads,
                                         std::span<const void* const> writes,
                                         bool barrier) {
  std::vector<std::uint64_t> deps;

  auto read = [&](const void* key) {
    Resource& r = at(key);
    if (r.last_writer != 0) deps.push_back(r.last_writer);  // RAW
    r.readers_since_write.push_back(seq);
  };
  auto write = [&](const void* key) {
    Resource& r = at(key);
    if (r.last_writer != 0) deps.push_back(r.last_writer);  // WAW
    for (std::uint64_t reader : r.readers_since_write) {
      if (reader != seq) deps.push_back(reader);  // WAR
    }
    r.last_writer = seq;
    r.readers_since_write.clear();
  };

  for (const void* key : reads) read(key);
  for (const void* key : writes) write(key);
  if (barrier) {
    write(&kGlobalOrder);
  } else {
    read(&kGlobalOrder);
  }

  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  return deps;
}

}  // namespace fblas::host
