// Device fleet for the host runtime: N simulated boards behind one
// placement policy, with per-device health tracking and transparent
// failover.
//
// The pool owns (or borrows) the devices and makes every placement
// decision the executor needs:
//
//   - health-weighted scoring: among devices whose breaker is Closed,
//     prefer the one already holding the command's buffers (hazard
//     chains stay co-located, no re-staging); ties rotate by command
//     seq so independent commands spread across the fleet.
//   - quarantine: a device whose breaker opened receives no placements;
//     its buffers are migrated bank-by-bank onto the chosen healthy
//     device through the Device buffer registry (pure bookkeeping —
//     simulated device data lives in host memory).
//   - re-admission: an Open breaker cools down into HalfOpen on the
//     placement-tick clock; the next placement runs a synthetic probe
//     (FaultInjector::probe — budget-free, damage-free) and either
//     closes the breaker or starts another quarantine round.
//   - last resort: when *no* breaker is Closed, the least-bad device
//     (lowest EWMA) takes the placement — the command then burns its
//     retry budget and falls onto the CPU fallback, so the whole-pool-
//     sick case degrades exactly like the single-device runtime did.
//
// Determinism: placement runs under one mutex on the placement-tick
// clock, all decisions are pure functions of (health counters, command
// seq), and every pool device shares the injector seed/config (only the
// sick-device window differs), so fault draws are placement-independent
// and results stay bit-identical across executor policies.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "host/device.hpp"
#include "host/health.hpp"

namespace fblas::host {

class DevicePool {
 public:
  /// Owns `devices` freshly constructed boards of the given model.
  explicit DevicePool(int devices,
                      sim::DeviceId id = sim::DeviceId::Stratix10,
                      const HealthConfig& health = {});
  /// Borrows externally owned devices (they must outlive the pool).
  /// This is how a single-device Context becomes a pool of one.
  explicit DevicePool(std::span<Device* const> devices,
                      const HealthConfig& health = {});
  DevicePool(const DevicePool&) = delete;
  DevicePool& operator=(const DevicePool&) = delete;

  int size() const { return static_cast<int>(slots_.size()); }
  Device& device(int i) { return *slots_[static_cast<std::size_t>(i)].dev; }
  const Device& device(int i) const {
    return *slots_[static_cast<std::size_t>(i)].dev;
  }

  /// Arms every device's injector with `cfg` (validated once): same
  /// seed, same rates — so fault draws are identical regardless of
  /// placement — except the sick-device window, which is kept only on
  /// its victim (cfg.device_fault_window.device) and stripped elsewhere.
  void inject_faults(const FaultConfig& cfg);
  void disable_faults();

  /// Places attempt of command `seq` touching the given read/write keys:
  /// advances the breaker clocks, probes Half-Open devices, scores the
  /// healthy candidates, migrates the command's buffers onto the winner
  /// when they live elsewhere, and returns the winner's index.
  int place(std::uint64_t seq, std::span<const void* const> reads,
            std::span<const void* const> writes);

  /// Health/stats reporting from the runtime (wrap_work / wrap_verify).
  void note_attempt_failed(int dev, HealthEvent ev);
  void note_attempt_ok(int dev);
  /// Verdict of an armed checker on a device-Ok attempt. Always counted
  /// in per-device stats; fed to the breaker only when `feed_breaker`
  /// (verify::Options::breaker_feedback) — so numerically marginal ABFT
  /// rejections can be kept out of quarantine decisions.
  void note_verify(int dev, bool ok, bool feed_breaker);

  /// Registry lookups across the fleet: the raw bytes of `key` on
  /// whichever device currently holds it, and that device's index (-1
  /// when unregistered, e.g. host scalar result keys).
  std::span<std::byte> buffer_bytes(const void* key) const;
  int resident_device(const void* key) const;

  /// Device of the last placement of command `seq` (-1: never placed).
  int device_of(std::uint64_t seq) const;

  BreakerState breaker(int dev) const;
  HealthConfig health_config() const { return health_; }

  /// Per-device counters, breaker states, and injector ground truth.
  std::vector<PerDeviceStats> per_device_stats() const;
  /// Sum of every device injector's injected() — the fleet-wide fault
  /// ground truth Context::exec_stats reports.
  std::uint64_t faults_injected() const;

 private:
  struct Slot {
    Device* dev = nullptr;
    HealthTracker health;
    PerDeviceStats stats;
  };

  int pick_locked(std::uint64_t seq,
                  const std::vector<const void*>& keys) const;
  void migrate_locked(const void* key, int from, int to);

  HealthConfig health_;
  std::vector<std::unique_ptr<Device>> owned_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  std::unordered_map<std::uint64_t, int> placed_;  // seq -> last device
};

}  // namespace fblas::host
