// Per-device health tracking for the fleet runtime: an EWMA of failure
// events driving a circuit breaker.
//
// Real accelerator fleets fail in correlated ways — a board overheats, a
// DDR bank degrades — and once a device is sick, every command routed to
// it burns its full retry budget before degrading. The breaker gives the
// pool memory: failures move a device Closed -> Open (quarantined, no
// new placements), a cool-down moves it Open -> HalfOpen, and a cheap
// synthetic probe decides re-admission (HalfOpen -> Closed) or another
// quarantine round (HalfOpen -> Open).
//
// Determinism: the breaker clock is the *placement tick* — one tick per
// pool placement decision — not wall time, so the state machine replays
// identically under the serial and worker-pool executors and across
// re-runs with the same seed.
#pragma once

#include <cstdint>

namespace fblas::host {

enum class BreakerState : std::uint8_t {
  Closed,    ///< healthy: accepts placements
  Open,      ///< quarantined: no placements until the cool-down expires
  HalfOpen,  ///< cooling down done: next placement probes the device
};

const char* to_string(BreakerState s);

/// Failure classification fed into the tracker. All kinds are failure
/// samples to the EWMA; the split exists so per-device stats can tell a
/// flaky launch path from silent-corruption rejections.
enum class HealthEvent : std::uint8_t {
  LaunchFail,
  TransferCorrupt,
  Timeout,
  VerifyReject,
};

/// Breaker thresholds. Defaults are deliberately conservative: three
/// consecutive failures (a sick board fails back-to-back) or a sustained
/// 50% error rate open the breaker; re-admission is probed after 16
/// placement ticks.
struct HealthConfig {
  double ewma_alpha = 0.25;  ///< weight of the newest sample
  /// EWMA failure rate above which the breaker opens (once min_events
  /// samples have been seen — a single early failure is not a trend).
  double open_error_rate = 0.5;
  std::uint64_t min_events = 8;
  int open_consecutive_failures = 3;
  /// Placement ticks a quarantined device waits before Half-Open.
  std::uint64_t cooldown_ticks = 16;
};

/// Per-device slice of ExecStats: everything an operator needs to spot a
/// sick board from counters alone. Sums of the event counters reconcile
/// with the global ExecStats (see tests/test_device_pool.cpp).
struct PerDeviceStats {
  int device = -1;
  BreakerState breaker = BreakerState::Closed;
  double health_ewma = 0.0;  ///< live EWMA failure rate
  std::uint64_t attempts = 0;         ///< command attempts placed here
  std::uint64_t executed = 0;         ///< accepted completions (device-Ok
                                      ///< and, when armed, verify-clean)
  std::uint64_t failed_attempts = 0;  ///< launch/transfer/timeout failures
  std::uint64_t verify_rejects = 0;   ///< checker rejections of device-Ok
  std::uint64_t faults = 0;           ///< injector ground truth
  std::uint64_t migrations_in = 0;    ///< buffers re-staged onto this device
  std::uint64_t migrations_out = 0;   ///< buffers drained off this device
  std::uint64_t migrated_bytes_in = 0;
  std::uint64_t migrated_bytes_out = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_half_opens = 0;
  std::uint64_t breaker_readmissions = 0;  ///< probes that closed the breaker
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
};

/// The breaker state machine for one device. Not thread-safe: the
/// DevicePool serializes access under its own mutex.
class HealthTracker {
 public:
  explicit HealthTracker(const HealthConfig& cfg = {}) : cfg_(cfg) {}

  BreakerState state() const { return state_; }
  double ewma() const { return ewma_; }
  std::uint64_t opens() const { return opens_; }
  std::uint64_t half_opens() const { return half_opens_; }
  std::uint64_t readmissions() const { return readmissions_; }

  /// One placement tick: advances the cool-down clock and moves an Open
  /// breaker to HalfOpen once cooldown_ticks have elapsed.
  void tick();
  /// Feeds one success sample (decays the EWMA).
  void record_success();
  /// Feeds one failure sample; may open the breaker.
  void record_failure();
  /// Outcome of a Half-Open synthetic probe: success re-admits (Closed,
  /// with a clean slate — quarantine already served the penalty), failure
  /// re-opens with a fresh cool-down.
  void probe_result(bool ok);

 private:
  void open();

  HealthConfig cfg_;
  BreakerState state_ = BreakerState::Closed;
  double ewma_ = 0.0;
  int consecutive_failures_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t now_ = 0;
  std::uint64_t opened_at_ = 0;
  std::uint64_t opens_ = 0;
  std::uint64_t half_opens_ = 0;
  std::uint64_t readmissions_ = 0;
};

}  // namespace fblas::host
