#include "fblas/level2.hpp"

namespace fblas::core {

void GemvConfig::validate() const {
  FBLAS_REQUIRE(width >= 1, "vectorization width must be >= 1");
  FBLAS_REQUIRE(tile_rows >= 1 && tile_cols >= 1,
                "tile sizes must be positive");
}

void GerConfig::validate() const {
  FBLAS_REQUIRE(width >= 1, "vectorization width must be >= 1");
  FBLAS_REQUIRE(tile_rows >= 1 && tile_cols >= 1,
                "tile sizes must be positive");
}

TileSchedule gemv_a_schedule(const GemvConfig& cfg) {
  return TileSchedule{
      cfg.tiling == MatrixTiling::TilesByRows ? Order::RowMajor
                                              : Order::ColMajor,
      cfg.elem_order, cfg.tile_rows, cfg.tile_cols};
}

std::int64_t gemv_x_repeat(const GemvConfig& cfg, std::int64_t rows,
                           std::int64_t cols) {
  if (cfg.trans == Transpose::None) {
    // x has `cols` elements; replayed once per tile-row in the by-rows
    // variant, single pass in the by-columns variant.
    return cfg.tiling == MatrixTiling::TilesByRows
               ? ceil_div(rows, cfg.tile_rows)
               : 1;
  }
  // Transposed: x has `rows` elements; replayed per tile-column in the
  // by-columns variant.
  return cfg.tiling == MatrixTiling::TilesByCols
             ? ceil_div(cols, cfg.tile_cols)
             : 1;
}

std::int64_t gemv_y_repeat(const GemvConfig& cfg, std::int64_t rows,
                           std::int64_t cols) {
  if (cfg.trans == Transpose::None) {
    // y (length rows) is replayed through DRAM in the by-columns variant.
    return cfg.tiling == MatrixTiling::TilesByCols
               ? ceil_div(cols, cfg.tile_cols)
               : 1;
  }
  // Transposed: y (length cols) is replayed in the by-rows variant.
  return cfg.tiling == MatrixTiling::TilesByRows
             ? ceil_div(rows, cfg.tile_rows)
             : 1;
}

std::int64_t gemv_io_ops(const GemvConfig& cfg, std::int64_t rows,
                         std::int64_t cols) {
  // Sec. III-B: N*M for the matrix, the x stream (possibly replayed), and
  // y in + y out (the replayed variant re-reads/re-writes each pass).
  const std::int64_t nm = rows * cols;
  const std::int64_t xlen = cfg.trans == Transpose::None ? cols : rows;
  const std::int64_t ylen = cfg.trans == Transpose::None ? rows : cols;
  const std::int64_t xr = gemv_x_repeat(cfg, rows, cols);
  const std::int64_t yr = gemv_y_repeat(cfg, rows, cols);
  return nm + xlen * xr + 2 * ylen * yr;
}

TileSchedule ger_a_schedule(const GerConfig& cfg) {
  return TileSchedule{
      cfg.tiling == MatrixTiling::TilesByRows ? Order::RowMajor
                                              : Order::ColMajor,
      cfg.elem_order, cfg.tile_rows, cfg.tile_cols};
}

std::int64_t ger_x_repeat(const GerConfig& cfg, std::int64_t /*rows*/,
                          std::int64_t cols) {
  return cfg.tiling == MatrixTiling::TilesByRows ? 1
                                                 : ceil_div(cols, cfg.tile_cols);
}

std::int64_t ger_y_repeat(const GerConfig& cfg, std::int64_t rows,
                          std::int64_t /*cols*/) {
  return cfg.tiling == MatrixTiling::TilesByRows
             ? ceil_div(rows, cfg.tile_rows)
             : 1;
}

std::int64_t ger_io_ops(const GerConfig& cfg, std::int64_t rows,
                        std::int64_t cols) {
  return 2 * rows * cols + rows * ger_x_repeat(cfg, rows, cols) +
         cols * ger_y_repeat(cfg, rows, cols);
}

}  // namespace fblas::core
