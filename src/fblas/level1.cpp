#include "fblas/level1.hpp"

namespace fblas::core {

Task sdsdot(Level1Config cfg, std::int64_t n, float sb, Channel<float>& ch_x,
            Channel<float>& ch_y, Channel<float>& ch_res) {
  cfg.validate();
  double res = static_cast<double>(sb);
  for (std::int64_t it = 0; it < n;) {
    const std::int64_t batch = std::min<std::int64_t>(cfg.width, n - it);
    double acc = 0.0;
    for (std::int64_t i = 0; i < batch; ++i) {
      const float x = co_await ch_x.pop();
      const float y = co_await ch_y.pop();
      acc += static_cast<double>(x) * static_cast<double>(y);
    }
    res += acc;
    it += batch;
    co_await next_cycle();
  }
  co_await ch_res.push(static_cast<float>(res));
}

}  // namespace fblas::core
