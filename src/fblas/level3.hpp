// Streaming HLS modules for the BLAS Level-3 routines.
//
// GEMM follows the paper's systolic organization (Sec. III-C, Fig. 3): a
// PR x PC grid of processing elements computes a TR x TC tile of C, where
// TR and TC (the compute tile) are multiples of PR and PC. The grid
// performs PR*PC multiply-adds per clock cycle; feeding needs TR + TC
// elements per K-step, i.e. (PR + PC)/ratio elements per cycle — which is
// why larger compute/memory tile ratios lower the bandwidth pressure
// (Fig. 10, right). This single-coroutine module is the "single kernel
// with a fully-unrolled PE function" formulation used for Intel FPGAs;
// an explicit PE-grid simulation lives in src/systolic/ and is tested to
// agree with it.
//
// Helper kernels Read-A / Read-B / Store-C (the paper's interface
// modules) are provided alongside, emitting exactly the order the module
// consumes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "stream/channel.hpp"
#include "stream/dram.hpp"
#include "stream/scheduler.hpp"
#include "stream/streamers.hpp"
#include "stream/task.hpp"

namespace fblas::core {

using stream::Channel;
using stream::next_cycle;
using stream::Task;

struct GemmConfig {
  int pe_rows = 4;             ///< PR: systolic grid height
  int pe_cols = 4;             ///< PC: systolic grid width
  std::int64_t tile_rows = 16; ///< TR: compute-tile height (multiple of PR)
  std::int64_t tile_cols = 16; ///< TC: compute-tile width (multiple of PC)

  void validate() const;
  /// The compute/memory tile ratio of Fig. 10 (right): TR/PR == TC/PC is
  /// not required, so this reports the element ratio per PE.
  double ratio() const {
    return static_cast<double>(tile_rows * tile_cols) /
           static_cast<double>(pe_rows * pe_cols);
  }
};

/// DRAM I/O operations of a standalone GEMM (C is m x n, contraction k):
/// A is re-read once per C tile-column, B once per C tile-row, C written
/// (and read when beta != 0).
std::int64_t gemm_io_ops(const GemmConfig& cfg, std::int64_t m,
                         std::int64_t n, std::int64_t k, bool reads_c);

/// Read-A helper: streams the op(A) panel (column segments of length TR)
/// for every C tile in module order. With trans == Trans the stored
/// matrix is k x m and elements are fetched transposed (the functional
/// parameter of the code generator).
template <typename T>
Task read_a_gemm(MatrixView<const T> A, GemmConfig cfg, std::int64_t n,
                 Channel<T>& out, stream::DramBank* bank = nullptr,
                 Transpose trans = Transpose::None) {
  const std::int64_t m = trans == Transpose::None ? A.rows() : A.cols();
  const std::int64_t k = trans == Transpose::None ? A.cols() : A.rows();
  auto at = [&](std::int64_t i, std::int64_t p) -> T {
    return trans == Transpose::None ? A(i, p) : A(p, i);
  };
  const std::int64_t TR = cfg.tile_rows;
  const std::int64_t nbi = ceil_div(m, TR), nbj = ceil_div(n, cfg.tile_cols);
  int in_cycle = 0;
  for (std::int64_t bi = 0; bi < nbi; ++bi) {
    const std::int64_t th = std::min(TR, m - bi * TR);
    for (std::int64_t bj = 0; bj < nbj; ++bj) {
      for (std::int64_t p = 0; p < k; ++p) {
        for (std::int64_t r = 0; r < th;) {
          const std::int64_t got = bank ? bank->grant_elems(1, sizeof(T)) : 1;
          if (got == 0) {
            co_await next_cycle();
            continue;
          }
          co_await out.push(at(bi * TR + r, p));
          ++r;
          if (++in_cycle == cfg.pe_rows) {
            in_cycle = 0;
            co_await next_cycle();
          }
        }
      }
    }
  }
}

/// Read-B helper: streams the op(B) panel (row segments of length TC) for
/// every C tile in module order.
template <typename T>
Task read_b_gemm(MatrixView<const T> B, GemmConfig cfg, std::int64_t m,
                 Channel<T>& out, stream::DramBank* bank = nullptr,
                 Transpose trans = Transpose::None) {
  const std::int64_t k = trans == Transpose::None ? B.rows() : B.cols();
  const std::int64_t n = trans == Transpose::None ? B.cols() : B.rows();
  auto bt = [&](std::int64_t p, std::int64_t j) -> T {
    return trans == Transpose::None ? B(p, j) : B(j, p);
  };
  const std::int64_t TC = cfg.tile_cols;
  const std::int64_t nbi = ceil_div(m, cfg.tile_rows), nbj = ceil_div(n, TC);
  int in_cycle = 0;
  for (std::int64_t bi = 0; bi < nbi; ++bi) {
    for (std::int64_t bj = 0; bj < nbj; ++bj) {
      const std::int64_t tw = std::min(TC, n - bj * TC);
      for (std::int64_t p = 0; p < k; ++p) {
        for (std::int64_t c = 0; c < tw;) {
          const std::int64_t got = bank ? bank->grant_elems(1, sizeof(T)) : 1;
          if (got == 0) {
            co_await next_cycle();
            continue;
          }
          co_await out.push(bt(p, bj * TC + c));
          ++c;
          if (++in_cycle == cfg.pe_cols) {
            in_cycle = 0;
            co_await next_cycle();
          }
        }
      }
    }
  }
}

/// The Store-C schedule: C tiles leave the drain in row-major tile order,
/// row-major elements within the tile.
inline stream::TileSchedule gemm_c_schedule(const GemmConfig& cfg) {
  return stream::TileSchedule{Order::RowMajor, Order::RowMajor, cfg.tile_rows,
                              cfg.tile_cols};
}

/// GEMM: C = alpha * A * B + beta * C.
/// A arrives as read_a_gemm emits, B as read_b_gemm emits. When beta is
/// non-zero, the previous C arrives on ch_c in gemm_c_schedule order; for
/// beta == 0 the channel is never popped. The result leaves on ch_out in
/// gemm_c_schedule order.
template <typename T>
Task gemm(GemmConfig cfg, std::int64_t m, std::int64_t n, std::int64_t k,
          T alpha, T beta, Channel<T>& ch_a, Channel<T>& ch_b,
          Channel<T>& ch_c, Channel<T>& ch_out) {
  cfg.validate();
  const std::int64_t TR = cfg.tile_rows, TC = cfg.tile_cols;
  const std::int64_t nbi = ceil_div(m, TR), nbj = ceil_div(n, TC);
  const std::int64_t macs_per_cycle =
      static_cast<std::int64_t>(cfg.pe_rows) * cfg.pe_cols;
  std::vector<T> acc(static_cast<std::size_t>(TR * TC));
  std::vector<T> a_col(static_cast<std::size_t>(TR));
  std::vector<T> b_row(static_cast<std::size_t>(TC));
  for (std::int64_t bi = 0; bi < nbi; ++bi) {
    const std::int64_t th = std::min(TR, m - bi * TR);
    for (std::int64_t bj = 0; bj < nbj; ++bj) {
      const std::int64_t tw = std::min(TC, n - bj * TC);
      std::fill(acc.begin(), acc.end(), T(0));
      std::int64_t in_cycle = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        for (std::int64_t r = 0; r < th; ++r) a_col[r] = co_await ch_a.pop();
        for (std::int64_t c = 0; c < tw; ++c) b_row[c] = co_await ch_b.pop();
        // The PE grid: PR*PC of these multiply-adds happen per cycle.
        for (std::int64_t r = 0; r < th; ++r) {
          const T av = a_col[r];
          for (std::int64_t c = 0; c < tw; ++c) {
            acc[r * TC + c] += av * b_row[c];
            if (++in_cycle == macs_per_cycle) {
              in_cycle = 0;
              co_await next_cycle();
            }
          }
        }
      }
      // Drain phase: results leave PC elements per cycle through the
      // drain chain (Fig. 3), merging in the previous C when beta != 0.
      std::int64_t drained = 0;
      for (std::int64_t r = 0; r < th; ++r) {
        for (std::int64_t c = 0; c < tw; ++c) {
          T v = alpha * acc[r * TC + c];
          if (beta != T(0)) v += beta * co_await ch_c.pop();
          co_await ch_out.push(v);
          if (++drained == cfg.pe_cols) {
            drained = 0;
            co_await next_cycle();
          }
        }
      }
      co_await next_cycle();
    }
  }
}

/// SYR2K: C = alpha * (A B^T + B A^T) + beta * C with A and B both n x k.
/// Four input streams: column segments of A and B (as read_a_gemm emits)
/// and row segments of A^T and B^T (as read_b_gemm emits on the
/// transposed views). Only the `uplo` triangle of the output is
/// meaningful; the store helper filters it.
template <typename T>
Task syr2k(GemmConfig cfg, std::int64_t n, std::int64_t k, T alpha, T beta,
           Channel<T>& ch_a, Channel<T>& ch_b, Channel<T>& ch_at,
           Channel<T>& ch_bt, Channel<T>& ch_c, Channel<T>& ch_out) {
  cfg.validate();
  const std::int64_t TR = cfg.tile_rows, TC = cfg.tile_cols;
  const std::int64_t nbi = ceil_div(n, TR), nbj = ceil_div(n, TC);
  const std::int64_t macs_per_cycle =
      static_cast<std::int64_t>(cfg.pe_rows) * cfg.pe_cols;
  std::vector<T> acc(static_cast<std::size_t>(TR * TC));
  std::vector<T> a_col(static_cast<std::size_t>(TR)),
      b_col(static_cast<std::size_t>(TR));
  std::vector<T> at_row(static_cast<std::size_t>(TC)),
      bt_row(static_cast<std::size_t>(TC));
  for (std::int64_t bi = 0; bi < nbi; ++bi) {
    const std::int64_t th = std::min(TR, n - bi * TR);
    for (std::int64_t bj = 0; bj < nbj; ++bj) {
      const std::int64_t tw = std::min(TC, n - bj * TC);
      std::fill(acc.begin(), acc.end(), T(0));
      std::int64_t in_cycle = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        for (std::int64_t r = 0; r < th; ++r) a_col[r] = co_await ch_a.pop();
        for (std::int64_t r = 0; r < th; ++r) b_col[r] = co_await ch_b.pop();
        for (std::int64_t c = 0; c < tw; ++c) at_row[c] = co_await ch_at.pop();
        for (std::int64_t c = 0; c < tw; ++c) bt_row[c] = co_await ch_bt.pop();
        for (std::int64_t r = 0; r < th; ++r) {
          for (std::int64_t c = 0; c < tw; ++c) {
            acc[r * TC + c] += a_col[r] * bt_row[c] + b_col[r] * at_row[c];
            if (++in_cycle == macs_per_cycle) {
              in_cycle = 0;
              co_await next_cycle();
            }
          }
        }
      }
      std::int64_t drained = 0;
      for (std::int64_t r = 0; r < th; ++r) {
        for (std::int64_t c = 0; c < tw; ++c) {
          T v = alpha * acc[r * TC + c];
          if (beta != T(0)) v += beta * co_await ch_c.pop();
          co_await ch_out.push(v);
          if (++drained == cfg.pe_cols) {
            drained = 0;
            co_await next_cycle();
          }
        }
      }
      co_await next_cycle();
    }
  }
}

/// Store-C helper that keeps only the `uplo` triangle (used by SYRK and
/// SYR2K, whose generic drain emits the full square).
template <typename T>
Task store_c_triangular(MatrixView<T> C, GemmConfig cfg, Uplo uplo,
                        Channel<T>& in, stream::DramBank* bank = nullptr) {
  const std::int64_t n = C.rows();
  stream::TileWalker walk(n, n, gemm_c_schedule(cfg));
  std::int64_t remaining = walk.total();
  int in_cycle = 0;
  while (remaining > 0) {
    std::int64_t i = 0, j = 0;
    walk.next(i, j);
    const T v = co_await in.pop();
    const bool keep = uplo == Uplo::Lower ? j <= i : j >= i;
    if (keep) {
      const std::int64_t got = bank ? bank->grant_elems(1, sizeof(T)) : 1;
      if (got == 0) co_await next_cycle();
      C(i, j) = v;
    }
    --remaining;
    if (++in_cycle == cfg.pe_cols) {
      in_cycle = 0;
      co_await next_cycle();
    }
  }
}

struct TrsmConfig {
  Uplo uplo = Uplo::Lower;
  Diag diag = Diag::NonUnit;
  int width = 16;

  void validate() const {
    FBLAS_REQUIRE(width >= 1, "vectorization width must be >= 1");
  }
};

/// TRSM (left side): solves op-free A * X = alpha * B for triangular A
/// (m x m) and B (m x n), streaming A's triangle in solve order (see
/// read_triangular) and B's rows in the same order. X rows leave in solve
/// order. The progressively-filled X buffer is the on-chip state of the
/// blocked solve. Right-side and transposed solves are lowered to this
/// module by the host API through operand transposition.
template <typename T>
Task trsm(TrsmConfig cfg, std::int64_t m, std::int64_t n, T alpha,
          Channel<T>& ch_a, Channel<T>& ch_b, Channel<T>& ch_out) {
  cfg.validate();
  const int W = cfg.width;
  std::vector<T> x(static_cast<std::size_t>(m * n), T(0));
  std::vector<T> row(static_cast<std::size_t>(n));
  int in_cycle = 0;
  for (std::int64_t s = 0; s < m; ++s) {
    const std::int64_t i = cfg.uplo == Uplo::Lower ? s : m - 1 - s;
    for (std::int64_t c = 0; c < n; ++c) {
      row[c] = alpha * co_await ch_b.pop();
      if (++in_cycle == W) {
        in_cycle = 0;
        co_await next_cycle();
      }
    }
    T diag_val = T(1);
    const std::int64_t j0 = cfg.uplo == Uplo::Lower ? 0 : i;
    const std::int64_t j1 = cfg.uplo == Uplo::Lower ? i + 1 : m;
    for (std::int64_t j = j0; j < j1; ++j) {
      const T a = co_await ch_a.pop();
      if (j == i) {
        diag_val = a;
        continue;
      }
      for (std::int64_t c = 0; c < n; ++c) {
        row[c] -= a * x[j * n + c];
        if (++in_cycle == W) {
          in_cycle = 0;
          co_await next_cycle();
        }
      }
    }
    for (std::int64_t c = 0; c < n; ++c) {
      const T v = cfg.diag == Diag::Unit ? row[c] : row[c] / diag_val;
      x[i * n + c] = v;
      co_await ch_out.push(v);
      if (++in_cycle == W) {
        in_cycle = 0;
        co_await next_cycle();
      }
    }
  }
  co_await next_cycle();
}

}  // namespace fblas::core
