#include "fblas/level3.hpp"

namespace fblas::core {

void GemmConfig::validate() const {
  FBLAS_REQUIRE(pe_rows >= 1 && pe_cols >= 1,
                "systolic grid dimensions must be positive");
  FBLAS_REQUIRE(tile_rows >= 1 && tile_cols >= 1,
                "compute tile sizes must be positive");
  FBLAS_REQUIRE(tile_rows % pe_rows == 0,
                "TR must be a multiple of PR (each PE owns TR*TC/(PR*PC) "
                "elements of the C tile)");
  FBLAS_REQUIRE(tile_cols % pe_cols == 0, "TC must be a multiple of PC");
}

std::int64_t gemm_io_ops(const GemmConfig& cfg, std::int64_t m,
                         std::int64_t n, std::int64_t k, bool reads_c) {
  const std::int64_t nbi = ceil_div(m, cfg.tile_rows);
  const std::int64_t nbj = ceil_div(n, cfg.tile_cols);
  // A is streamed once per C tile-column, B once per C tile-row.
  std::int64_t io = m * k * nbj + k * n * nbi + m * n;
  if (reads_c) io += m * n;
  return io;
}

}  // namespace fblas::core
