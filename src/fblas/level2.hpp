// Streaming HLS modules for the BLAS Level-2 routines.
//
// Level-2 modules stream their matrix operand in 2-D tiles (Sec. III-B).
// The tiling scheme is part of the module's *interface*: it fixes the
// order elements cross the channel, which vector operands must be
// replayed, and the routine's I/O complexity. GEMV implements both
// variants of Fig. 2:
//   * tiles by rows    — reuse over y, x replayed ceil(N/TN) times,
//                        I/O = N*M + M*ceil(N/TN) + 2N
//   * tiles by columns — x read once, y replayed ceil(M/TM) times,
//                        I/O = N*M + M + 2N*ceil(M/TM)
// The replay FIFO of a replayed *output* (y in the by-columns variant) is
// an internal buffer standing in for the DRAM round trip; the I/O volume
// of that round trip is accounted by the MDAG I/O calculus (mdag/).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "stream/channel.hpp"
#include "stream/scheduler.hpp"
#include "stream/streamers.hpp"
#include "stream/task.hpp"

namespace fblas::core {

using stream::Channel;
using stream::next_cycle;
using stream::Task;
using stream::TileSchedule;

/// Whether the matrix operand arrives in tiles ordered by rows or by
/// columns (the two streaming schemes of Fig. 2).
enum class MatrixTiling { TilesByRows, TilesByCols };

struct GemvConfig {
  Transpose trans = Transpose::None;
  MatrixTiling tiling = MatrixTiling::TilesByRows;
  int width = 16;
  std::int64_t tile_rows = 1024;  ///< TN
  std::int64_t tile_cols = 1024;  ///< TM
  /// Element order within a tile. Together with `tiling` this covers all
  /// 4 streaming modes of a matrix interface (Sec. III-B).
  Order elem_order = Order::RowMajor;

  void validate() const;
};

/// The schedule the A-interface module must use to feed a GEMV with this
/// configuration.
TileSchedule gemv_a_schedule(const GemvConfig& cfg);

/// Replay count of the x operand for a (rows x cols) GEMV.
std::int64_t gemv_x_repeat(const GemvConfig& cfg, std::int64_t rows,
                           std::int64_t cols);
/// Replay count of the y operand (1 means y makes a single pass).
std::int64_t gemv_y_repeat(const GemvConfig& cfg, std::int64_t rows,
                           std::int64_t cols);
/// Total DRAM I/O operations (reads+writes) of a standalone GEMV with this
/// configuration — the Sec. III-B formulas.
std::int64_t gemv_io_ops(const GemvConfig& cfg, std::int64_t rows,
                         std::int64_t cols);

/// GEMV: y = alpha * op(A) * x + beta * y.
///
/// `rows` x `cols` is always the shape of A as stored; for trans ==
/// Transpose::Trans the module computes A^T x (x has `rows` elements and
/// y has `cols`). A arrives on ch_a following gemv_a_schedule(cfg); x and
/// y arrive on ch_x / ch_y with the replay counts above; the result
/// leaves on ch_out in natural order.
template <typename T>
Task gemv(GemvConfig cfg, std::int64_t rows, std::int64_t cols, T alpha,
          T beta, Channel<T>& ch_a, Channel<T>& ch_x, Channel<T>& ch_y,
          Channel<T>& ch_out) {
  cfg.validate();
  const std::int64_t TN = cfg.tile_rows, TM = cfg.tile_cols;
  const std::int64_t nti = ceil_div(rows, TN), ntj = ceil_div(cols, TM);
  const int W = cfg.width;
  // Element traversal within a tile (row- or column-major): the loops
  // below iterate (outer, inner) and map to (r, c) through these lambdas.
  const bool row_elems = cfg.elem_order == Order::RowMajor;
  auto row_of = [row_elems](std::int64_t o, std::int64_t i) {
    return row_elems ? o : i;
  };
  auto col_of = [row_elems](std::int64_t o, std::int64_t i) {
    return row_elems ? i : o;
  };
  std::vector<T> xbuf, acc;

  if (cfg.trans == Transpose::None && cfg.tiling == MatrixTiling::TilesByRows) {
    // Fig. 2 (left): reuse over y; x replayed once per tile-row.
    xbuf.resize(static_cast<std::size_t>(TM));
    acc.resize(static_cast<std::size_t>(TN));
    std::vector<T> ybuf(static_cast<std::size_t>(TN));
    for (std::int64_t ti = 0; ti < nti; ++ti) {
      const std::int64_t th = std::min(TN, rows - ti * TN);
      for (std::int64_t r = 0; r < th; ++r) {
        ybuf[r] = beta * co_await ch_y.pop();
        acc[r] = T(0);
      }
      for (std::int64_t tj = 0; tj < ntj; ++tj) {
        const std::int64_t tw = std::min(TM, cols - tj * TM);
        for (std::int64_t c = 0; c < tw; ++c) xbuf[c] = co_await ch_x.pop();
        int in_cycle = 0;
        const std::int64_t no = row_elems ? th : tw;
        const std::int64_t ni = row_elems ? tw : th;
        for (std::int64_t o = 0; o < no; ++o) {
          for (std::int64_t i = 0; i < ni; ++i) {
            acc[row_of(o, i)] += co_await ch_a.pop() * xbuf[col_of(o, i)];
            if (++in_cycle == W) {
              in_cycle = 0;
              co_await next_cycle();
            }
          }
        }
      }
      for (std::int64_t r = 0; r < th; ++r) {
        co_await ch_out.push(ybuf[r] + alpha * acc[r]);
      }
      co_await next_cycle();
    }
  } else if (cfg.trans == Transpose::None &&
             cfg.tiling == MatrixTiling::TilesByCols) {
    // Fig. 2 (right): x read once; y (partial results) replayed. The
    // full-length partial buffer models the DRAM round trip.
    xbuf.resize(static_cast<std::size_t>(TM));
    std::vector<T> part(static_cast<std::size_t>(rows), T(0));
    for (std::int64_t tj = 0; tj < ntj; ++tj) {
      const std::int64_t tw = std::min(TM, cols - tj * TM);
      for (std::int64_t c = 0; c < tw; ++c) xbuf[c] = co_await ch_x.pop();
      for (std::int64_t ti = 0; ti < nti; ++ti) {
        const std::int64_t th = std::min(TN, rows - ti * TN);
        if (tj == 0) {
          for (std::int64_t r = 0; r < th; ++r) {
            part[ti * TN + r] = beta * co_await ch_y.pop();
          }
        }
        int in_cycle = 0;
        const std::int64_t no = row_elems ? th : tw;
        const std::int64_t ni = row_elems ? tw : th;
        for (std::int64_t o = 0; o < no; ++o) {
          for (std::int64_t i = 0; i < ni; ++i) {
            part[ti * TN + row_of(o, i)] +=
                alpha * co_await ch_a.pop() * xbuf[col_of(o, i)];
            if (++in_cycle == W) {
              in_cycle = 0;
              co_await next_cycle();
            }
          }
        }
        if (tj == ntj - 1) {
          for (std::int64_t r = 0; r < th; ++r) {
            co_await ch_out.push(part[ti * TN + r]);
          }
        }
      }
      co_await next_cycle();
    }
  } else if (cfg.trans == Transpose::Trans &&
             cfg.tiling == MatrixTiling::TilesByRows) {
    // y = alpha A^T x + beta y with A in tiles by rows: x (length rows)
    // read once, block per tile-row; y partials buffered full-length.
    xbuf.resize(static_cast<std::size_t>(TN));
    std::vector<T> part(static_cast<std::size_t>(cols));
    for (std::int64_t c = 0; c < cols; ++c) {
      part[c] = beta * co_await ch_y.pop();
    }
    for (std::int64_t ti = 0; ti < nti; ++ti) {
      const std::int64_t th = std::min(TN, rows - ti * TN);
      for (std::int64_t r = 0; r < th; ++r) xbuf[r] = co_await ch_x.pop();
      for (std::int64_t tj = 0; tj < ntj; ++tj) {
        const std::int64_t tw = std::min(TM, cols - tj * TM);
        int in_cycle = 0;
        const std::int64_t no = row_elems ? th : tw;
        const std::int64_t ni = row_elems ? tw : th;
        for (std::int64_t o = 0; o < no; ++o) {
          for (std::int64_t i = 0; i < ni; ++i) {
            part[tj * TM + col_of(o, i)] +=
                alpha * co_await ch_a.pop() * xbuf[row_of(o, i)];
            if (++in_cycle == W) {
              in_cycle = 0;
              co_await next_cycle();
            }
          }
        }
      }
    }
    for (std::int64_t c = 0; c < cols; ++c) co_await ch_out.push(part[c]);
    co_await next_cycle();
  } else {
    // trans, tiles by columns: reuse over y blocks; x replayed per
    // tile-column.
    xbuf.resize(static_cast<std::size_t>(TN));
    acc.resize(static_cast<std::size_t>(TM));
    std::vector<T> ybuf(static_cast<std::size_t>(TM));
    for (std::int64_t tj = 0; tj < ntj; ++tj) {
      const std::int64_t tw = std::min(TM, cols - tj * TM);
      for (std::int64_t c = 0; c < tw; ++c) {
        ybuf[c] = beta * co_await ch_y.pop();
        acc[c] = T(0);
      }
      for (std::int64_t ti = 0; ti < nti; ++ti) {
        const std::int64_t th = std::min(TN, rows - ti * TN);
        for (std::int64_t r = 0; r < th; ++r) xbuf[r] = co_await ch_x.pop();
        int in_cycle = 0;
        const std::int64_t no = row_elems ? th : tw;
        const std::int64_t ni = row_elems ? tw : th;
        for (std::int64_t o = 0; o < no; ++o) {
          for (std::int64_t i = 0; i < ni; ++i) {
            acc[col_of(o, i)] += co_await ch_a.pop() * xbuf[row_of(o, i)];
            if (++in_cycle == W) {
              in_cycle = 0;
              co_await next_cycle();
            }
          }
        }
      }
      for (std::int64_t c = 0; c < tw; ++c) {
        co_await ch_out.push(ybuf[c] + alpha * acc[c]);
      }
      co_await next_cycle();
    }
  }
}

struct GerConfig {
  MatrixTiling tiling = MatrixTiling::TilesByRows;
  int width = 16;
  std::int64_t tile_rows = 1024;
  std::int64_t tile_cols = 1024;
  /// Element order within a tile (row- or column-major traversal).
  Order elem_order = Order::RowMajor;

  void validate() const;
};

/// The schedule for both the A-in and A-out interfaces of GER/SYR/SYR2.
TileSchedule ger_a_schedule(const GerConfig& cfg);
/// Replay counts for the two vector operands of GER.
std::int64_t ger_x_repeat(const GerConfig& cfg, std::int64_t rows,
                          std::int64_t cols);
std::int64_t ger_y_repeat(const GerConfig& cfg, std::int64_t rows,
                          std::int64_t cols);
/// Total DRAM I/O operations of a standalone GER.
std::int64_t ger_io_ops(const GerConfig& cfg, std::int64_t rows,
                        std::int64_t cols);

/// GER: out = A + alpha * x * y^T, streamed tile by tile.
template <typename T>
Task ger(GerConfig cfg, std::int64_t rows, std::int64_t cols, T alpha,
         Channel<T>& ch_a, Channel<T>& ch_x, Channel<T>& ch_y,
         Channel<T>& ch_out) {
  cfg.validate();
  const std::int64_t TN = cfg.tile_rows, TM = cfg.tile_cols;
  const std::int64_t nti = ceil_div(rows, TN), ntj = ceil_div(cols, TM);
  const int W = cfg.width;
  const bool by_rows = cfg.tiling == MatrixTiling::TilesByRows;
  std::vector<T> rbuf(static_cast<std::size_t>(TN));
  std::vector<T> cbuf(static_cast<std::size_t>(TM));
  const std::int64_t outer = by_rows ? nti : ntj;
  const std::int64_t inner = by_rows ? ntj : nti;
  for (std::int64_t to = 0; to < outer; ++to) {
    for (std::int64_t tin = 0; tin < inner; ++tin) {
      const std::int64_t ti = by_rows ? to : tin;
      const std::int64_t tj = by_rows ? tin : to;
      const std::int64_t th = std::min(TN, rows - ti * TN);
      const std::int64_t tw = std::min(TM, cols - tj * TM);
      // The outer-dimension block is loaded once per outer step; the
      // inner-dimension block is (re)loaded for every tile: that operand
      // is the replayed one.
      if (by_rows) {
        if (tin == 0) {
          for (std::int64_t r = 0; r < th; ++r) rbuf[r] = co_await ch_x.pop();
        }
        for (std::int64_t c = 0; c < tw; ++c) cbuf[c] = co_await ch_y.pop();
      } else {
        if (tin == 0) {
          for (std::int64_t c = 0; c < tw; ++c) cbuf[c] = co_await ch_y.pop();
        }
        for (std::int64_t r = 0; r < th; ++r) rbuf[r] = co_await ch_x.pop();
      }
      int in_cycle = 0;
      const bool row_elems = cfg.elem_order == Order::RowMajor;
      const std::int64_t no = row_elems ? th : tw;
      const std::int64_t ni = row_elems ? tw : th;
      for (std::int64_t o = 0; o < no; ++o) {
        for (std::int64_t i = 0; i < ni; ++i) {
          const std::int64_t r = row_elems ? o : i;
          const std::int64_t c = row_elems ? i : o;
          const T a = co_await ch_a.pop();
          co_await ch_out.push(a + alpha * rbuf[r] * cbuf[c]);
          if (++in_cycle == W) {
            in_cycle = 0;
            co_await next_cycle();
          }
        }
      }
    }
    co_await next_cycle();
  }
}

/// SYR: out = A + alpha * x * x^T (generic full-matrix stream; the paper
/// implements symmetric routines in terms of the generic ones). The module
/// needs x along both dimensions, hence two x channels with the same
/// replay pattern as GER's (x, y) pair.
template <typename T>
Task syr(GerConfig cfg, std::int64_t n, T alpha, Channel<T>& ch_a,
         Channel<T>& ch_x_row, Channel<T>& ch_x_col, Channel<T>& ch_out) {
  return ger<T>(cfg, n, n, alpha, ch_a, ch_x_row, ch_x_col, ch_out);
}

/// SYR2: out = A + alpha * (x y^T + y x^T); four vector streams (row and
/// column blocks of both x and y).
template <typename T>
Task syr2(GerConfig cfg, std::int64_t n, T alpha, Channel<T>& ch_a,
          Channel<T>& ch_x_row, Channel<T>& ch_x_col, Channel<T>& ch_y_row,
          Channel<T>& ch_y_col, Channel<T>& ch_out) {
  cfg.validate();
  const std::int64_t TN = cfg.tile_rows, TM = cfg.tile_cols;
  const std::int64_t nti = ceil_div(n, TN), ntj = ceil_div(n, TM);
  const int W = cfg.width;
  const bool by_rows = cfg.tiling == MatrixTiling::TilesByRows;
  std::vector<T> xr(static_cast<std::size_t>(TN)), yr(static_cast<std::size_t>(TN));
  std::vector<T> xc(static_cast<std::size_t>(TM)), yc(static_cast<std::size_t>(TM));
  const std::int64_t outer = by_rows ? nti : ntj;
  const std::int64_t inner = by_rows ? ntj : nti;
  for (std::int64_t to = 0; to < outer; ++to) {
    for (std::int64_t tin = 0; tin < inner; ++tin) {
      const std::int64_t ti = by_rows ? to : tin;
      const std::int64_t tj = by_rows ? tin : to;
      const std::int64_t th = std::min(TN, n - ti * TN);
      const std::int64_t tw = std::min(TM, n - tj * TM);
      if (by_rows) {
        if (tin == 0) {
          for (std::int64_t r = 0; r < th; ++r) {
            xr[r] = co_await ch_x_row.pop();
            yr[r] = co_await ch_y_row.pop();
          }
        }
        for (std::int64_t c = 0; c < tw; ++c) {
          xc[c] = co_await ch_x_col.pop();
          yc[c] = co_await ch_y_col.pop();
        }
      } else {
        if (tin == 0) {
          for (std::int64_t c = 0; c < tw; ++c) {
            xc[c] = co_await ch_x_col.pop();
            yc[c] = co_await ch_y_col.pop();
          }
        }
        for (std::int64_t r = 0; r < th; ++r) {
          xr[r] = co_await ch_x_row.pop();
          yr[r] = co_await ch_y_row.pop();
        }
      }
      int in_cycle = 0;
      const bool row_elems = cfg.elem_order == Order::RowMajor;
      const std::int64_t no = row_elems ? th : tw;
      const std::int64_t ni = row_elems ? tw : th;
      for (std::int64_t o = 0; o < no; ++o) {
        for (std::int64_t i = 0; i < ni; ++i) {
          const std::int64_t r = row_elems ? o : i;
          const std::int64_t c = row_elems ? i : o;
          const T a = co_await ch_a.pop();
          co_await ch_out.push(a + alpha * (xr[r] * yc[c] + yr[r] * xc[c]));
          if (++in_cycle == W) {
            in_cycle = 0;
            co_await next_cycle();
          }
        }
      }
    }
    co_await next_cycle();
  }
}

struct TrsvConfig {
  Uplo uplo = Uplo::Lower;
  Diag diag = Diag::NonUnit;
  int width = 16;

  void validate() const {
    FBLAS_REQUIRE(width >= 1, "vectorization width must be >= 1");
  }
};

/// Streams the `uplo` triangle (including the diagonal) of op(A) for an
/// n x n matrix, in the row order the TRSV/TRSM modules consume (lower:
/// top-down; upper: bottom-up), i.e. in solve order. `uplo` refers to
/// op(A): for a transposed solve pass the flipped triangle and
/// trans == Trans.
template <typename T>
Task read_triangular(MatrixView<const T> A, Uplo uplo, int width,
                     Channel<T>& out, stream::DramBank* bank = nullptr,
                     Transpose trans = Transpose::None) {
  const std::int64_t n = A.rows();
  auto at = [&](std::int64_t i, std::int64_t j) -> T {
    return trans == Transpose::None ? A(i, j) : A(j, i);
  };
  std::int64_t emitted_in_cycle = 0;
  for (std::int64_t k = 0; k < n; ++k) {
    const std::int64_t i = uplo == Uplo::Lower ? k : n - 1 - k;
    const std::int64_t j0 = uplo == Uplo::Lower ? 0 : i;
    const std::int64_t j1 = uplo == Uplo::Lower ? i + 1 : n;
    for (std::int64_t j = j0; j < j1; ++j) {
      const std::int64_t got = bank ? bank->grant_elems(1, sizeof(T)) : 1;
      if (got == 0) {
        co_await next_cycle();
        --j;
        continue;
      }
      co_await out.push(at(i, j));
      if (++emitted_in_cycle == width) {
        emitted_in_cycle = 0;
        co_await next_cycle();
      }
    }
  }
  co_await next_cycle();
}

/// TRSV: solves op(A) x = b for a triangular A streamed in solve order
/// (see read_triangular). b arrives on ch_b one element per row in solve
/// order; solutions leave on ch_out in the same order. The progressive
/// solution buffer is on-chip state (the loop-carried dependency that
/// keeps TRSV's initiation interval above 1 in hardware).
template <typename T>
Task trsv(TrsvConfig cfg, std::int64_t n, Channel<T>& ch_a, Channel<T>& ch_b,
          Channel<T>& ch_out) {
  cfg.validate();
  const int W = cfg.width;
  std::vector<T> x(static_cast<std::size_t>(n), T(0));
  int in_cycle = 0;
  for (std::int64_t k = 0; k < n; ++k) {
    const std::int64_t i = cfg.uplo == Uplo::Lower ? k : n - 1 - k;
    T acc = co_await ch_b.pop();
    T diag_val = T(1);
    // Row arrives as (dependencies..., diagonal) for lower and
    // (diagonal, dependencies...) for upper; consume in arrival order.
    const std::int64_t j0 = cfg.uplo == Uplo::Lower ? 0 : i;
    const std::int64_t j1 = cfg.uplo == Uplo::Lower ? i + 1 : n;
    for (std::int64_t j = j0; j < j1; ++j) {
      const T a = co_await ch_a.pop();
      if (j == i) {
        diag_val = a;
      } else {
        acc -= a * x[j];
      }
      if (++in_cycle == W) {
        in_cycle = 0;
        co_await next_cycle();
      }
    }
    x[i] = cfg.diag == Diag::Unit ? acc : acc / diag_val;
    co_await ch_out.push(x[i]);
  }
  co_await next_cycle();
}

}  // namespace fblas::core
