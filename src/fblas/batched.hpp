// Fully-unrolled small-size batched modules (Sec. III-A / Table V): when
// the input size is small and known a priori, the routine loops unroll
// completely and the module starts a new problem every clock cycle, at
// the cost of size^3-scale resources. The paper evaluates GEMM and TRSM
// of size 4 against MKL's batched routines; these are the corresponding
// streaming modules.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "stream/channel.hpp"
#include "stream/dram.hpp"
#include "stream/scheduler.hpp"
#include "stream/task.hpp"

namespace fblas::core {

using stream::Channel;
using stream::next_cycle;
using stream::Task;

struct BatchedConfig {
  std::int64_t size = 4;  ///< matrix dimension (compile-time on the FPGA)

  void validate() const {
    FBLAS_REQUIRE(size >= 1 && size <= 32,
                  "fully-unrolled batched modules are for small sizes "
                  "(1..32); larger problems belong to the tiled routines");
  }
};

/// Batched GEMM: for each of `batch` problems pops size^2 elements of A
/// then size^2 of B (row-major), pushes size^2 of C = alpha * A * B.
/// One whole problem is processed per clock cycle (fully unrolled).
template <typename T>
Task gemm_batched_unrolled(BatchedConfig cfg, std::int64_t batch, T alpha,
                           Channel<T>& ch_a, Channel<T>& ch_b,
                           Channel<T>& ch_c) {
  cfg.validate();
  const std::int64_t s = cfg.size;
  std::vector<T> a(static_cast<std::size_t>(s * s));
  std::vector<T> b(static_cast<std::size_t>(s * s));
  for (std::int64_t inv = 0; inv < batch; ++inv) {
    for (auto& v : a) v = co_await ch_a.pop();
    for (auto& v : b) v = co_await ch_b.pop();
    // The fully-unrolled multiply: on hardware, s^3 parallel MACs.
    for (std::int64_t i = 0; i < s; ++i) {
      for (std::int64_t j = 0; j < s; ++j) {
        T acc = T(0);
        for (std::int64_t k = 0; k < s; ++k) {
          acc += a[static_cast<std::size_t>(i * s + k)] *
                 b[static_cast<std::size_t>(k * s + j)];
        }
        co_await ch_c.push(alpha * acc);
      }
    }
    co_await next_cycle();  // a new problem enters every cycle
  }
}

/// Batched TRSM (left, lower, non-unit): for each problem pops the lower
/// triangle of A row-major (size*(size+1)/2 elements) then size^2 of B,
/// pushes X = alpha * inv(A) * B. One problem per cycle.
template <typename T>
Task trsm_batched_unrolled(BatchedConfig cfg, std::int64_t batch, T alpha,
                           Channel<T>& ch_a, Channel<T>& ch_b,
                           Channel<T>& ch_x) {
  cfg.validate();
  const std::int64_t s = cfg.size;
  std::vector<T> a(static_cast<std::size_t>(s * s), T(0));
  std::vector<T> x(static_cast<std::size_t>(s * s));
  for (std::int64_t inv = 0; inv < batch; ++inv) {
    for (std::int64_t i = 0; i < s; ++i) {
      for (std::int64_t j = 0; j <= i; ++j) {
        a[static_cast<std::size_t>(i * s + j)] = co_await ch_a.pop();
      }
    }
    for (auto& v : x) v = alpha * co_await ch_b.pop();
    // Forward substitution, fully unrolled on hardware.
    for (std::int64_t i = 0; i < s; ++i) {
      for (std::int64_t c = 0; c < s; ++c) {
        T acc = x[static_cast<std::size_t>(i * s + c)];
        for (std::int64_t k = 0; k < i; ++k) {
          acc -= a[static_cast<std::size_t>(i * s + k)] *
                 x[static_cast<std::size_t>(k * s + c)];
        }
        x[static_cast<std::size_t>(i * s + c)] =
            acc / a[static_cast<std::size_t>(i * s + i)];
      }
    }
    for (const T v : x) co_await ch_x.push(v);
    co_await next_cycle();
  }
}

/// Streams `batch` contiguous size x size problems from memory (the
/// Read-A/Read-B helper for the batched modules). In cycle mode a whole
/// problem is issued per cycle, metered against the bank.
template <typename T>
Task read_batched(const T* data, std::int64_t elems_per_problem,
                  std::int64_t batch, Channel<T>& out,
                  stream::DramBank* bank = nullptr) {
  for (std::int64_t inv = 0; inv < batch; ++inv) {
    const T* p = data + inv * elems_per_problem;
    std::int64_t sent = 0;
    while (sent < elems_per_problem) {
      const std::int64_t got =
          bank ? bank->grant_elems(elems_per_problem - sent, sizeof(T))
               : elems_per_problem - sent;
      for (std::int64_t k = 0; k < got; ++k) {
        co_await out.push(p[sent + k]);
      }
      sent += got;
      if (sent < elems_per_problem) co_await next_cycle();
    }
    co_await next_cycle();
  }
}

/// Stores `batch` contiguous problems (the Store-C helper).
template <typename T>
Task write_batched(T* data, std::int64_t elems_per_problem,
                   std::int64_t batch, Channel<T>& in,
                   stream::DramBank* bank = nullptr) {
  for (std::int64_t inv = 0; inv < batch; ++inv) {
    T* p = data + inv * elems_per_problem;
    std::int64_t recv = 0;
    while (recv < elems_per_problem) {
      const std::int64_t got =
          bank ? bank->grant_elems(elems_per_problem - recv, sizeof(T))
               : elems_per_problem - recv;
      for (std::int64_t k = 0; k < got; ++k) {
        p[recv + k] = co_await in.pop();
      }
      recv += got;
      if (recv < elems_per_problem) co_await next_cycle();
    }
    co_await next_cycle();
  }
}

}  // namespace fblas::core
