// Streaming HLS modules for the BLAS Level-1 routines.
//
// Each module is a coroutine with the same structure as the paper's
// OpenCL kernels (Fig. 4 for SCAL, Fig. 5 for DOT): an outer loop over
// N/W iterations, an inner "unrolled" loop of width W processing one
// batch per clock cycle, channels for every vector operand. In cycle mode
// a module therefore consumes `operands_per_width * W` values per cycle,
// which is exactly the arrival-rate model of Sec. IV-B.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/types.hpp"
#include "refblas/level1.hpp"
#include "stream/channel.hpp"
#include "stream/scheduler.hpp"
#include "stream/task.hpp"

namespace fblas::core {

using stream::Channel;
using stream::next_cycle;
using stream::Task;

/// Vectorization width of a Level-1 module (the unroll factor W).
struct Level1Config {
  int width = 16;

  void validate() const {
    FBLAS_REQUIRE(width >= 1, "vectorization width must be >= 1");
  }
};

/// SCAL: out = alpha * x (Fig. 4 of the paper).
template <typename T>
Task scal(Level1Config cfg, std::int64_t n, T alpha, Channel<T>& ch_x,
          Channel<T>& ch_out) {
  cfg.validate();
  for (std::int64_t it = 0; it < n;) {
    const std::int64_t batch = std::min<std::int64_t>(cfg.width, n - it);
    for (std::int64_t i = 0; i < batch; ++i) {
      co_await ch_out.push(alpha * co_await ch_x.pop());
    }
    it += batch;
    co_await next_cycle();
  }
}

/// COPY: out = x.
template <typename T>
Task copy(Level1Config cfg, std::int64_t n, Channel<T>& ch_x,
          Channel<T>& ch_out) {
  cfg.validate();
  for (std::int64_t it = 0; it < n;) {
    const std::int64_t batch = std::min<std::int64_t>(cfg.width, n - it);
    for (std::int64_t i = 0; i < batch; ++i) {
      co_await ch_out.push(co_await ch_x.pop());
    }
    it += batch;
    co_await next_cycle();
  }
}

/// AXPY: out = alpha * x + y.
template <typename T>
Task axpy(Level1Config cfg, std::int64_t n, T alpha, Channel<T>& ch_x,
          Channel<T>& ch_y, Channel<T>& ch_out) {
  cfg.validate();
  for (std::int64_t it = 0; it < n;) {
    const std::int64_t batch = std::min<std::int64_t>(cfg.width, n - it);
    for (std::int64_t i = 0; i < batch; ++i) {
      const T x = co_await ch_x.pop();
      const T y = co_await ch_y.pop();
      co_await ch_out.push(alpha * x + y);
    }
    it += batch;
    co_await next_cycle();
  }
}

/// SWAP: (out_x, out_y) = (y, x).
template <typename T>
Task swap(Level1Config cfg, std::int64_t n, Channel<T>& ch_x, Channel<T>& ch_y,
          Channel<T>& ch_out_x, Channel<T>& ch_out_y) {
  cfg.validate();
  for (std::int64_t it = 0; it < n;) {
    const std::int64_t batch = std::min<std::int64_t>(cfg.width, n - it);
    for (std::int64_t i = 0; i < batch; ++i) {
      const T x = co_await ch_x.pop();
      const T y = co_await ch_y.pop();
      co_await ch_out_x.push(y);
      co_await ch_out_y.push(x);
    }
    it += batch;
    co_await next_cycle();
  }
}

/// ROT: applies a plane rotation [c s; -s c] element-wise to (x, y).
template <typename T>
Task rot(Level1Config cfg, std::int64_t n, T c, T s, Channel<T>& ch_x,
         Channel<T>& ch_y, Channel<T>& ch_out_x, Channel<T>& ch_out_y) {
  cfg.validate();
  for (std::int64_t it = 0; it < n;) {
    const std::int64_t batch = std::min<std::int64_t>(cfg.width, n - it);
    for (std::int64_t i = 0; i < batch; ++i) {
      const T x = co_await ch_x.pop();
      const T y = co_await ch_y.pop();
      co_await ch_out_x.push(c * x + s * y);
      co_await ch_out_y.push(c * y - s * x);
    }
    it += batch;
    co_await next_cycle();
  }
}

/// ROTM: applies a modified Givens rotation element-wise to (x, y).
template <typename T>
Task rotm(Level1Config cfg, std::int64_t n, ref::RotmParam<T> p,
          Channel<T>& ch_x, Channel<T>& ch_y, Channel<T>& ch_out_x,
          Channel<T>& ch_out_y) {
  cfg.validate();
  // Expand H once (the hardware specializes on the flag at synthesis).
  T h11, h12, h21, h22;
  if (p.flag == T(-2)) {
    h11 = h22 = T(1);
    h12 = h21 = T(0);
  } else if (p.flag == T(-1)) {
    h11 = p.h11; h12 = p.h12; h21 = p.h21; h22 = p.h22;
  } else if (p.flag == T(0)) {
    h11 = T(1); h12 = p.h12; h21 = p.h21; h22 = T(1);
  } else {
    h11 = p.h11; h12 = T(1); h21 = T(-1); h22 = p.h22;
  }
  for (std::int64_t it = 0; it < n;) {
    const std::int64_t batch = std::min<std::int64_t>(cfg.width, n - it);
    for (std::int64_t i = 0; i < batch; ++i) {
      const T x = co_await ch_x.pop();
      const T y = co_await ch_y.pop();
      co_await ch_out_x.push(h11 * x + h12 * y);
      co_await ch_out_y.push(h21 * x + h22 * y);
    }
    it += batch;
    co_await next_cycle();
  }
}

/// ROTG: scalar Givens setup. Pops (a, b), pushes (r, z, c, s).
template <typename T>
Task rotg(Channel<T>& ch_in, Channel<T>& ch_out) {
  T a = co_await ch_in.pop();
  T b = co_await ch_in.pop();
  const auto g = ref::rotg(a, b);  // a := r, b := z
  co_await ch_out.push(a);
  co_await ch_out.push(b);
  co_await ch_out.push(g.c);
  co_await ch_out.push(g.s);
  co_await next_cycle();
}

/// ROTMG: scalar modified-Givens setup. Pops (d1, d2, x1, y1), pushes
/// (flag, h11, h21, h12, h22, d1', d2', x1').
template <typename T>
Task rotmg(Channel<T>& ch_in, Channel<T>& ch_out) {
  T d1 = co_await ch_in.pop();
  T d2 = co_await ch_in.pop();
  T x1 = co_await ch_in.pop();
  const T y1 = co_await ch_in.pop();
  const auto p = ref::rotmg(d1, d2, x1, y1);
  co_await ch_out.push(p.flag);
  co_await ch_out.push(p.h11);
  co_await ch_out.push(p.h21);
  co_await ch_out.push(p.h12);
  co_await ch_out.push(p.h22);
  co_await ch_out.push(d1);
  co_await ch_out.push(d2);
  co_await ch_out.push(x1);
  co_await next_cycle();
}

/// DOT: pushes the single value x . y (Fig. 5 of the paper). The W-wide
/// batch is reduced first (the unrolled tree), then added to the running
/// accumulator, mirroring the two-stage accumulation of the hardware.
template <typename T>
Task dot(Level1Config cfg, std::int64_t n, Channel<T>& ch_x, Channel<T>& ch_y,
         Channel<T>& ch_res) {
  cfg.validate();
  T res = T(0);
  for (std::int64_t it = 0; it < n;) {
    const std::int64_t batch = std::min<std::int64_t>(cfg.width, n - it);
    T acc = T(0);
    for (std::int64_t i = 0; i < batch; ++i) {
      acc += co_await ch_x.pop() * co_await ch_y.pop();
    }
    res += acc;
    it += batch;
    co_await next_cycle();
  }
  co_await ch_res.push(res);
}

/// SDSDOT: single-precision inputs, double-precision accumulation plus an
/// offset sb (the one mixed-precision routine in the BLAS).
Task sdsdot(Level1Config cfg, std::int64_t n, float sb, Channel<float>& ch_x,
            Channel<float>& ch_y, Channel<float>& ch_res);

/// NRM2: pushes ||x||_2 via the scaled sum-of-squares recurrence (LAPACK
/// slassq): the running state is (scale, ssq) with scale = max |x_i| seen
/// and sum x_i^2 = scale^2 * ssq, so the result is scale * sqrt(ssq).
/// Naive x_i^2 accumulation overflows at |x_i| ~ sqrt(max) and flushes
/// denormal inputs to zero; the recurrence is exact up to rounding over
/// the full exponent range, matching refblas::nrm2 bit-for-bit behavior
/// class (a streaming circuit pays one divide + two multiplies per lane).
template <typename T>
Task nrm2(Level1Config cfg, std::int64_t n, Channel<T>& ch_x,
          Channel<T>& ch_res) {
  cfg.validate();
  T scale = T(0);
  T ssq = T(1);
  for (std::int64_t it = 0; it < n;) {
    const std::int64_t batch = std::min<std::int64_t>(cfg.width, n - it);
    for (std::int64_t i = 0; i < batch; ++i) {
      const T x = co_await ch_x.pop();
      if (x == T(0)) continue;
      const T absxi = std::abs(x);
      if (scale < absxi) {
        const T r = scale / absxi;
        ssq = T(1) + ssq * r * r;
        scale = absxi;
      } else {
        const T r = absxi / scale;
        ssq += r * r;
      }
    }
    it += batch;
    co_await next_cycle();
  }
  co_await ch_res.push(scale * std::sqrt(ssq));
}

/// ASUM: pushes sum |x_i|.
template <typename T>
Task asum(Level1Config cfg, std::int64_t n, Channel<T>& ch_x,
          Channel<T>& ch_res) {
  cfg.validate();
  T res = T(0);
  for (std::int64_t it = 0; it < n;) {
    const std::int64_t batch = std::min<std::int64_t>(cfg.width, n - it);
    T acc = T(0);
    for (std::int64_t i = 0; i < batch; ++i) {
      acc += std::abs(co_await ch_x.pop());
    }
    res += acc;
    it += batch;
    co_await next_cycle();
  }
  co_await ch_res.push(res);
}

/// IAMAX: pushes the (0-based) index of the first maximal |x_i|; -1 when
/// the stream is empty.
template <typename T>
Task iamax(Level1Config cfg, std::int64_t n, Channel<T>& ch_x,
           Channel<std::int64_t>& ch_res) {
  cfg.validate();
  std::int64_t best = n > 0 ? 0 : -1;
  T best_abs = T(0);
  bool first = true;
  for (std::int64_t it = 0; it < n;) {
    const std::int64_t batch = std::min<std::int64_t>(cfg.width, n - it);
    for (std::int64_t i = 0; i < batch; ++i) {
      const T a = std::abs(co_await ch_x.pop());
      if (first || a > best_abs) {
        best_abs = a;
        best = it + i;
        first = false;
      }
    }
    it += batch;
    co_await next_cycle();
  }
  co_await ch_res.push(best);
}

}  // namespace fblas::core
