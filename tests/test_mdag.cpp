// MDAG composition analysis tests, reproducing the Sec. V case studies:
// AXPYDOT (valid linear chain, 7N -> 3N+1), BICG (shared interface,
// 2NM -> NM), ATAX (invalid non-multitree), GEMVER (two-component
// schedule, ~8N^2 -> ~3N^2).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "mdag/graph.hpp"
#include "mdag/io_volume.hpp"
#include "mdag/resources.hpp"
#include "mdag/schedule.hpp"
#include "mdag/validity.hpp"

namespace fblas::mdag {
namespace {

using stream::TileSchedule;

constexpr std::int64_t N = 1024;

TileSchedule tiles_by_rows(std::int64_t t = 64) {
  return {Order::RowMajor, Order::RowMajor, t, t};
}

// ---- AXPYDOT (Fig. 6) -------------------------------------------------

Mdag build_axpydot_streaming() {
  Mdag g;
  const int rv = g.add_interface("read_v");
  const int rw = g.add_interface("read_w");
  const int ru = g.add_interface("read_u");
  const int wb = g.add_interface("write_beta");
  const int axpy = g.add_compute("axpy", RoutineKind::Axpy, 12);
  const int dot = g.add_compute("dot", RoutineKind::Dot, 30);
  g.connect(rv, axpy, StreamSig::vec(N));
  g.connect(rw, axpy, StreamSig::vec(N));
  g.connect(axpy, dot, StreamSig::vec(N));
  g.connect(ru, dot, StreamSig::vec(N));
  g.connect(dot, wb, StreamSig::vec(1));
  return g;
}

TEST(Axpydot, StreamingIsValidMultitree) {
  const auto g = build_axpydot_streaming();
  EXPECT_TRUE(validate_edges(g).empty());
  EXPECT_TRUE(is_multitree(g));
  const auto v = validate(g);
  EXPECT_TRUE(v.valid);
  EXPECT_NE(v.summary.find("multitree"), std::string::npos);
}

TEST(Axpydot, StreamingIoIs3NPlus1) {
  const auto g = build_axpydot_streaming();
  EXPECT_EQ(total_io_ops(g), 3 * N + 1);
}

TEST(Axpydot, StreamingCyclesAreOnePassPlusLatencies) {
  const auto g = build_axpydot_streaming();
  // L_axpy + L_dot + N (W = 1).
  EXPECT_DOUBLE_EQ(streaming_cycles(g, 1), 12 + 30 + N);
  // Sequential host-layer execution: each module pays its own pass.
  EXPECT_DOUBLE_EQ(sequential_cycles(g, 1), (12 + N) + (30 + N));
  // Width adjusts the data-pass term.
  EXPECT_DOUBLE_EQ(streaming_cycles(g, 16), 42 + N / 16.0);
}

TEST(Axpydot, HostLayerVersionDoes7N) {
  // The non-streamed implementation needs COPY + AXPY + DOT through DRAM:
  // 2N + 3N + (2N + 1) I/O operations (Sec. V-A).
  Mdag g;
  const int rw = g.add_interface("read_w");
  const int wz0 = g.add_interface("write_z_copy");
  const int copy = g.add_compute("copy", RoutineKind::Copy, 8);
  g.connect(rw, copy, StreamSig::vec(N));
  g.connect(copy, wz0, StreamSig::vec(N));
  const int rv = g.add_interface("read_v");
  const int rz = g.add_interface("read_z");
  const int wz = g.add_interface("write_z");
  const int axpy = g.add_compute("axpy", RoutineKind::Axpy, 12);
  g.connect(rv, axpy, StreamSig::vec(N));
  g.connect(rz, axpy, StreamSig::vec(N));
  g.connect(axpy, wz, StreamSig::vec(N));
  const int rz2 = g.add_interface("read_z2");
  const int ru = g.add_interface("read_u");
  const int wb = g.add_interface("write_beta");
  const int dot = g.add_compute("dot", RoutineKind::Dot, 30);
  g.connect(rz2, dot, StreamSig::vec(N));
  g.connect(ru, dot, StreamSig::vec(N));
  g.connect(dot, wb, StreamSig::vec(1));
  EXPECT_EQ(total_io_ops(g), 7 * N + 1);
}

// ---- BICG (Fig. 7) ----------------------------------------------------

Mdag build_bicg() {
  Mdag g;
  const int ra = g.add_interface("read_A");
  const int rp = g.add_interface("read_p");
  const int rr = g.add_interface("read_r");
  const int wq = g.add_interface("write_q");
  const int ws = g.add_interface("write_s");
  const int gemv = g.add_compute("gemv", RoutineKind::Gemv, 40);
  const int gemvt = g.add_compute("gemv_T", RoutineKind::Gemv, 40);
  const auto a_sig = StreamSig::mat(N, N, tiles_by_rows());
  g.connect(ra, gemv, a_sig);
  g.connect(ra, gemvt, a_sig);  // same data, same schedule: read A once
  g.connect(rp, gemv, StreamSig::vec(N, /*repeat=*/N / 64));
  g.connect(rr, gemvt, StreamSig::vec(N));
  g.connect(gemv, wq, StreamSig::vec(N));
  g.connect(gemvt, ws, StreamSig::vec(N));
  return g;
}

TEST(Bicg, SharedInterfaceIsValid) {
  const auto g = build_bicg();
  EXPECT_TRUE(validate(g).valid);
  EXPECT_TRUE(is_multitree(g));
}

TEST(Bicg, ReadsAOnce) {
  const auto g = build_bicg();
  // A is broadcast on chip: N*N DRAM reads, not 2*N*N.
  const std::int64_t io = total_io_ops(g);
  const std::int64_t expected =
      N * N + N * (N / 64) + N + N + N;  // A + replayed p + r + q + s
  EXPECT_EQ(io, expected);
  EXPECT_LT(io, 2 * N * N);
}

TEST(Bicg, MismatchedSchedulesAreInvalidEdges) {
  // If the two GEMVs expect different tiling schemes, the shared read is
  // no longer a valid composition.
  Mdag g;
  const int ra = g.add_interface("read_A");
  const int g1 = g.add_compute("gemv", RoutineKind::Gemv, 40);
  const int g2 = g.add_compute("gemv_T", RoutineKind::Gemv, 40);
  const auto produced = StreamSig::mat(N, N, tiles_by_rows());
  auto consumed_other = StreamSig::mat(
      N, N, TileSchedule{Order::ColMajor, Order::RowMajor, 64, 64});
  g.connect(ra, g1, produced);
  g.connect(ra, g2, produced, consumed_other);
  const auto issues = validate_edges(g);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].reason.find("order"), std::string::npos);
}

// ---- ATAX (Fig. 8) ----------------------------------------------------

Mdag build_atax_streaming() {
  Mdag g;
  const int ra = g.add_interface("read_A");
  const int rx = g.add_interface("read_x");
  const int wy = g.add_interface("write_y");
  const int g1 = g.add_compute("gemv", RoutineKind::Gemv, 40);
  const int g2 = g.add_compute("gemv_T", RoutineKind::Gemv, 40);
  const auto a_sig = StreamSig::mat(N, N, tiles_by_rows());
  g.connect(ra, g1, a_sig);
  g.connect(ra, g2, a_sig);
  g.connect(rx, g1, StreamSig::vec(N, N / 64));
  g.connect(g1, g2, StreamSig::vec(N));
  g.connect(g2, wy, StreamSig::vec(N));
  return g;
}

TEST(Atax, FullStreamingIsInvalidNonMultitree) {
  const auto g = build_atax_streaming();
  EXPECT_FALSE(is_multitree(g));
  // Two vertex-disjoint paths from read_A to gemv_T.
  EXPECT_EQ(vertex_disjoint_paths(g, 0, 4), 2);
  const auto v = validate(g);
  EXPECT_FALSE(v.valid);
  ASSERT_FALSE(v.disjoint_issues.empty());
  EXPECT_EQ(v.disjoint_issues[0].from, 0);
  EXPECT_EQ(v.disjoint_issues[0].to, 4);
  EXPECT_NE(v.summary.find("stalls forever"), std::string::npos);
}

TEST(Atax, SplitIntoComponentsIsValid) {
  // The paper's fallback (b): let the two GEMVs read A independently.
  const auto g = build_atax_streaming();
  // Partition: {read_A, read_x, gemv} then {gemv_T, write_y} with the cut
  // edges (A -> gemv_T, gemv -> gemv_T) round-tripping DRAM.
  std::vector<Component> parts{{{0, 1, 3}}, {{4, 2}}};
  const auto cost = partition_cost(g, parts, /*width=*/1);
  EXPECT_EQ(cost.components, 2);
  // Component subgraphs are individually valid.
  EXPECT_TRUE(validate(component_subgraph(g, parts[0])).valid);
  EXPECT_TRUE(validate(component_subgraph(g, parts[1])).valid);
  // The split pays the A read twice plus the intermediate round trip.
  EXPECT_GT(cost.io_ops, total_io_ops(g));
}

TEST(Atax, PathCounting) {
  const auto g = build_atax_streaming();
  EXPECT_EQ(count_paths(g, 0, 4), 2);  // read_A to gemv_T
  EXPECT_EQ(count_paths(g, 0, 2), 2);  // both continue to write_y
  EXPECT_EQ(count_paths(g, 1, 2), 1);  // read_x has a single path
  EXPECT_EQ(count_paths(g, 2, 0), 0);  // no backward paths
}

// ---- GEMVER (Fig. 9) --------------------------------------------------

Mdag build_gemver_full_streaming() {
  Mdag g;
  const int ra = g.add_interface("read_A");
  const int ruv = g.add_interface("read_u1v1");
  const int ruv2 = g.add_interface("read_u2v2");
  const int ryz = g.add_interface("read_y_z");
  const int wx = g.add_interface("write_x");
  const int ww = g.add_interface("write_w");
  const int ger1 = g.add_compute("ger1", RoutineKind::Ger, 20);
  const int ger2 = g.add_compute("ger2", RoutineKind::Ger, 20);
  const int gemvt = g.add_compute("gemv_T", RoutineKind::Gemv, 40);
  const int gemv2 = g.add_compute("gemv_w", RoutineKind::Gemv, 40);
  const auto m = StreamSig::mat(N, N, tiles_by_rows());
  g.connect(ra, ger1, m);
  g.connect(ruv, ger1, StreamSig::vec(2 * N));
  g.connect(ger1, ger2, m);
  g.connect(ruv2, ger2, StreamSig::vec(2 * N));
  g.connect(ger2, gemvt, m);   // B into x-computation
  g.connect(ger2, gemv2, m);   // B into w-computation
  g.connect(ryz, gemvt, StreamSig::vec(2 * N));
  g.connect(gemvt, gemv2, StreamSig::vec(N));  // x feeds w = alpha B x
  g.connect(gemvt, wx, StreamSig::vec(N));
  g.connect(gemv2, ww, StreamSig::vec(N));
  return g;
}

TEST(Gemver, FullStreamingIsInvalid) {
  const auto g = build_gemver_full_streaming();
  const auto v = validate(g);
  EXPECT_FALSE(v.valid);
  // ger2 reaches gemv_w directly and through gemv_T.
  EXPECT_GE(vertex_disjoint_paths(g, 7, 9), 2);
}

TEST(Gemver, TwoComponentScheduleShrinksIo) {
  const auto g = build_gemver_full_streaming();
  // Fig. 9: component 1 = {A, rank-1 updates, x computation}; component 2
  // = {w = alpha B x}.
  std::vector<Component> parts{
      {{0, 1, 2, 3, 6, 7, 8, 4}},  // read_A, vectors, ger1, ger2, gemv_T, write_x
      {{9, 5}},                    // gemv_w, write_w
  };
  const auto cost = partition_cost(g, parts, 1);
  EXPECT_EQ(cost.components, 2);
  // I/O ~ 3N^2 + O(N): A read, B written once and read back, vectors.
  const double n2 = static_cast<double>(N) * N;
  EXPECT_NEAR(static_cast<double>(cost.io_ops) / n2, 3.0, 0.05);
  // The naive host-layer version does ~8N^2 (two GER, two GEMV, copies).
  const double naive = 8 * n2;
  EXPECT_GT(naive / static_cast<double>(cost.io_ops), 2.5);
  // Completion ~ 2N^2: one N^2 pass per component.
  EXPECT_NEAR(cost.cycles / n2, 2.0, 0.05);
}

TEST(Gemver, BadPartitionsRejected) {
  const auto g = build_gemver_full_streaming();
  // Missing a node.
  std::vector<Component> missing{{{0, 1, 2, 3, 6, 7, 8}}, {{9, 5}}};
  EXPECT_THROW(partition_cost(g, missing, 1), ConfigError);
  // Backward edge: gemv_w before its producer.
  std::vector<Component> backwards{{{9, 5}}, {{0, 1, 2, 3, 6, 7, 8, 4}}};
  EXPECT_THROW(partition_cost(g, backwards, 1), ConfigError);
  // Duplicated node.
  std::vector<Component> dup{{{0, 1, 2, 3, 6, 7, 8, 4}}, {{9, 5, 0}}};
  EXPECT_THROW(partition_cost(g, dup, 1), ConfigError);
}

// ---- Generic machinery -------------------------------------------------

TEST(Graph, TopoOrderAndCycleDetection) {
  Mdag g;
  const int a = g.add_interface("a");
  const int b = g.add_compute("b", RoutineKind::Scal, 1);
  const int c = g.add_compute("c", RoutineKind::Scal, 1);
  g.connect(a, b, StreamSig::vec(4));
  g.connect(b, c, StreamSig::vec(4));
  const auto order = g.topo_order();
  EXPECT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], a);
  g.connect(c, b, StreamSig::vec(4));  // now cyclic
  EXPECT_THROW(g.topo_order(), ConfigError);
}

TEST(Graph, RejectsBadEdges) {
  Mdag g;
  const int a = g.add_interface("a");
  EXPECT_THROW(g.connect(a, a, StreamSig::vec(1)), ConfigError);
  EXPECT_THROW(g.connect(a, 7, StreamSig::vec(1)), ConfigError);
}

TEST(StreamSigCompat, CountAndOrderRules) {
  EXPECT_TRUE(StreamSig::vec(10).compatible(StreamSig::vec(10)));
  EXPECT_FALSE(StreamSig::vec(10).compatible(StreamSig::vec(20)));
  // Same count but a replayed stream is not order-compatible with a
  // single-pass one of the same volume.
  EXPECT_FALSE(StreamSig::vec(10, 2).compatible(StreamSig::vec(20)));
  const auto m1 = StreamSig::mat(8, 8, tiles_by_rows(4));
  const auto m2 = StreamSig::mat(
      8, 8, TileSchedule{Order::ColMajor, Order::RowMajor, 4, 4});
  EXPECT_FALSE(m1.compatible(m2));
  EXPECT_TRUE(m1.compatible(StreamSig::mat(8, 8, tiles_by_rows(4))));
  EXPECT_FALSE(m1.compatible(StreamSig::vec(64)));
}

TEST(CompositionResources, StreamingSavesInterfaceKernels) {
  // Sec. VI-C: module composition uses fewer resources (up to -40%)
  // because internal edges drop their DRAM interface kernels.
  const std::int64_t n = 4096;
  Mdag g;
  const int rv = g.add_interface("read_v");
  const int rw = g.add_interface("read_w");
  const int ru = g.add_interface("read_u");
  const int wb = g.add_interface("write_beta");
  const int axpy = g.add_compute("axpy", RoutineKind::Axpy, 12);
  const int dotn = g.add_compute("dot", RoutineKind::Dot, 30);
  g.connect(rv, axpy, StreamSig::vec(n));
  g.connect(rw, axpy, StreamSig::vec(n));
  g.connect(axpy, dotn, StreamSig::vec(n));
  g.connect(ru, dotn, StreamSig::vec(n));
  g.connect(dotn, wb, StreamSig::vec(1));
  const auto cmp = composition_resource_savings(g, Precision::Single, 16,
                                                sim::stratix10());
  EXPECT_LT(cmp.streamed.alms, cmp.sequential.alms);
  EXPECT_GT(cmp.saving_fraction, 0.05);
  EXPECT_LT(cmp.saving_fraction, 0.45);  // "up to -40%"
}

TEST(CompositionResources, InterfaceKernelScalesWithWidth) {
  const auto narrow = interface_kernel_cost(Precision::Single, 4);
  const auto wide = interface_kernel_cost(Precision::Single, 64);
  EXPECT_GT(wide.alms, narrow.alms);
  const auto dbl = interface_kernel_cost(Precision::Double, 4);
  EXPECT_GT(dbl.alms, narrow.alms);
}

TEST(CriticalPath, LongestLatencyPath) {
  Mdag g;
  const int a = g.add_interface("a");
  const int b = g.add_compute("b", RoutineKind::Scal, 10);
  const int c = g.add_compute("c", RoutineKind::Scal, 100);
  const int d = g.add_compute("d", RoutineKind::Dot, 5);
  const int w = g.add_interface("w");
  g.connect(a, b, StreamSig::vec(4));
  g.connect(a, c, StreamSig::vec(4));
  g.connect(b, d, StreamSig::vec(4));
  g.connect(c, d, StreamSig::vec(4));
  g.connect(d, w, StreamSig::vec(1));
  EXPECT_DOUBLE_EQ(critical_path_latency(g), 105);
}

}  // namespace
}  // namespace fblas::mdag
