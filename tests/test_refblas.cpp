// Unit and property tests for the reference CPU BLAS (the oracle).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/workload.hpp"
#include "refblas/batched.hpp"
#include "refblas/level1.hpp"
#include "refblas/level2.hpp"
#include "refblas/level3.hpp"

namespace fblas::ref {
namespace {

template <typename T>
VectorView<const T> cview(const std::vector<T>& v) {
  return VectorView<const T>(v.data(), static_cast<std::int64_t>(v.size()));
}
template <typename T>
VectorView<T> view(std::vector<T>& v) {
  return VectorView<T>(v.data(), static_cast<std::int64_t>(v.size()));
}

template <typename T>
class RefLevel1 : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(RefLevel1, Precisions);

TYPED_TEST(RefLevel1, RotgZeroesSecondComponent) {
  using T = TypeParam;
  Workload wl(11);
  for (int trial = 0; trial < 50; ++trial) {
    T a = static_cast<T>(wl.uniform(-10, 10));
    T b = static_cast<T>(wl.uniform(-10, 10));
    const T a0 = a, b0 = b;
    auto g = rotg(a, b);
    EXPECT_NEAR(g.c * g.c + g.s * g.s, 1.0, 1e-5);
    // Rotation applied to the original pair gives (r, 0).
    EXPECT_NEAR(g.c * a0 + g.s * b0, a, 2e-5 * (std::abs(a) + 1));
    EXPECT_NEAR(-g.s * a0 + g.c * b0, 0.0, 2e-5 * (std::abs(a0) + std::abs(b0) + 1));
  }
}

TYPED_TEST(RefLevel1, RotgZeroInput) {
  using T = TypeParam;
  T a = 0, b = 0;
  auto g = rotg(a, b);
  EXPECT_EQ(g.c, T(1));
  EXPECT_EQ(g.s, T(0));
}

TYPED_TEST(RefLevel1, RotmgProducesZeroingTransform) {
  using T = TypeParam;
  Workload wl(12);
  for (int trial = 0; trial < 50; ++trial) {
    T d1 = static_cast<T>(wl.uniform(0.1, 4));
    T d2 = static_cast<T>(wl.uniform(0.1, 4));
    T x1 = static_cast<T>(wl.uniform(-2, 2));
    T y1 = static_cast<T>(wl.uniform(-2, 2));
    if (std::abs(x1) < 0.05 || std::abs(y1) < 0.05) continue;
    const T d1i = d1, d2i = d2, x1i = x1;
    auto p = rotmg(d1, d2, x1, y1);
    ASSERT_NE(p.flag, T(-2));
    // Expand H per flag and check the defining identities:
    T h11, h12, h21, h22;
    if (p.flag == T(-1)) {
      h11 = p.h11; h12 = p.h12; h21 = p.h21; h22 = p.h22;
    } else if (p.flag == T(0)) {
      h11 = T(1); h12 = p.h12; h21 = p.h21; h22 = T(1);
    } else {
      h11 = p.h11; h12 = T(1); h21 = T(-1); h22 = p.h22;
    }
    // (1) Second component is annihilated: h21*x1 + h22*y1 == 0.
    EXPECT_NEAR(h21 * x1i + h22 * y1, 0.0, 1e-4);
    // (2) First component is x1' as returned.
    EXPECT_NEAR(h11 * x1i + h12 * y1, x1, 1e-4 * (std::abs(x1) + 1));
    // (3) Weighted norm preserved: d1'*x1'^2 == d1*x1^2 + d2*y1^2.
    EXPECT_NEAR(d1 * x1 * x1, d1i * x1i * x1i + d2i * y1 * y1,
                1e-3 * (std::abs(d1 * x1 * x1) + 1));
  }
}

TYPED_TEST(RefLevel1, RotmgZeroY) {
  using T = TypeParam;
  T d1 = 1, d2 = 1, x1 = 2;
  auto p = rotmg(d1, d2, x1, T(0));
  EXPECT_EQ(p.flag, T(-2));  // identity transform
}

TYPED_TEST(RefLevel1, RotAppliesPlaneRotation) {
  using T = TypeParam;
  std::vector<T> x{1, 0, 2}, y{0, 1, 2};
  rot<T>(view(x), view(y), T(0), T(1));  // 90-degree rotation
  EXPECT_NEAR(x[0], 0, 1e-6);
  EXPECT_NEAR(y[0], -1, 1e-6);
  EXPECT_NEAR(x[1], 1, 1e-6);
  EXPECT_NEAR(y[1], 0, 1e-6);
}

TYPED_TEST(RefLevel1, RotmFlagMinus2IsIdentity) {
  using T = TypeParam;
  std::vector<T> x{1, 2}, y{3, 4};
  RotmParam<T> p{T(-2), 9, 9, 9, 9};
  rotm<T>(view(x), view(y), p);
  EXPECT_EQ(x, (std::vector<T>{1, 2}));
  EXPECT_EQ(y, (std::vector<T>{3, 4}));
}

TYPED_TEST(RefLevel1, SwapScalCopyAxpy) {
  using T = TypeParam;
  std::vector<T> x{1, 2, 3}, y{4, 5, 6};
  swap<T>(view(x), view(y));
  EXPECT_EQ(x, (std::vector<T>{4, 5, 6}));
  scal<T>(T(2), view(x));
  EXPECT_EQ(x, (std::vector<T>{8, 10, 12}));
  std::vector<T> z(3);
  copy<T>(cview(x), view(z));
  EXPECT_EQ(z, x);
  axpy<T>(T(-1), cview(x), view(z));
  EXPECT_EQ(z, (std::vector<T>{0, 0, 0}));
}

TYPED_TEST(RefLevel1, DotNrm2Asum) {
  using T = TypeParam;
  std::vector<T> x{3, 4}, y{1, 2};
  EXPECT_NEAR(dot<T>(cview(x), cview(y)), 11.0, 1e-6);
  EXPECT_NEAR(nrm2<T>(cview(x)), 5.0, 1e-6);
  std::vector<T> z{-1, 2, -3};
  EXPECT_NEAR(asum<T>(cview(z)), 6.0, 1e-6);
}

TYPED_TEST(RefLevel1, Nrm2AvoidsOverflow) {
  using T = TypeParam;
  const T big = std::numeric_limits<T>::max() / T(4);
  std::vector<T> x{big, big};
  const T n = nrm2<T>(cview(x));
  EXPECT_TRUE(std::isfinite(n));
  EXPECT_NEAR(n / big, std::sqrt(2.0), 1e-5);
}

TYPED_TEST(RefLevel1, Iamax) {
  using T = TypeParam;
  std::vector<T> x{1, -7, 3, 7};
  EXPECT_EQ(iamax<T>(cview(x)), 1);  // first maximal |.| wins
  std::vector<T> empty;
  EXPECT_EQ(iamax<T>(cview(empty)), -1);
}

TEST(RefLevel1, SdsdotAccumulatesInDouble) {
  // Values chosen so float accumulation loses the small term.
  std::vector<float> x{1e8f, 1.0f}, y{1.0f, 1.0f};
  const float r = sdsdot(0.0f, cview(x), cview(y));
  EXPECT_FLOAT_EQ(r, static_cast<float>(1e8 + 1.0));
}

TEST(RefLevel1, StridedVectorsRespected) {
  std::vector<double> storage{1, -1, 2, -1, 3, -1};
  VectorView<const double> x(storage.data(), 3, 2);  // 1, 2, 3
  std::vector<double> y{1, 1, 1};
  EXPECT_NEAR(dot<double>(x, cview(y)), 6.0, 1e-12);
}

// ---- Level 2 ----------------------------------------------------------------

template <typename T>
class RefLevel2 : public ::testing::Test {};
TYPED_TEST_SUITE(RefLevel2, Precisions);

TYPED_TEST(RefLevel2, GemvKnownValues) {
  using T = TypeParam;
  // A = [1 2; 3 4; 5 6] (3x2), x = [1; 1], y = [1; 1; 1]
  std::vector<T> a{1, 2, 3, 4, 5, 6}, x{1, 1}, y{1, 1, 1};
  gemv<T>(Transpose::None, T(2), MatrixView<const T>(a.data(), 3, 2),
          cview(x), T(1), view(y));
  EXPECT_EQ(y, (std::vector<T>{7, 15, 23}));  // 2*(A x) + y
  std::vector<T> yt{0, 0};
  std::vector<T> x3{1, 1, 1};
  gemv<T>(Transpose::Trans, T(1), MatrixView<const T>(a.data(), 3, 2),
          cview(x3), T(0), view(yt));
  EXPECT_EQ(yt, (std::vector<T>{9, 12}));  // column sums
}

TYPED_TEST(RefLevel2, TrsvSolvesAllOrientations) {
  using T = TypeParam;
  Workload wl(21);
  const std::int64_t n = 16;
  for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
    for (Transpose tr : {Transpose::None, Transpose::Trans}) {
      for (Diag dg : {Diag::NonUnit, Diag::Unit}) {
        auto a = wl.triangular<T>(n, uplo, dg);
        auto xref = wl.vector<T>(n);
        // b = op(A) * xref, then solve and compare.
        std::vector<T> b(n, T(0));
        gemv<T>(tr, T(1), MatrixView<const T>(a.data(), n, n), cview(xref),
                T(0), view(b));
        trsv<T>(uplo, tr, dg, MatrixView<const T>(a.data(), n, n), view(b));
        EXPECT_LT(rel_error(b, xref), 1e-4)
            << "uplo=" << int(uplo) << " trans=" << int(tr)
            << " diag=" << int(dg);
      }
    }
  }
}

TYPED_TEST(RefLevel2, GerRankOneUpdate) {
  using T = TypeParam;
  std::vector<T> a(6, T(0)), x{1, 2}, y{3, 4, 5};
  ger<T>(T(1), cview(x), cview(y), MatrixView<T>(a.data(), 2, 3));
  EXPECT_EQ(a, (std::vector<T>{3, 4, 5, 6, 8, 10}));
}

TYPED_TEST(RefLevel2, SyrTouchesOnlyTriangle) {
  using T = TypeParam;
  std::vector<T> a(9, T(0)), x{1, 2, 3};
  syr<T>(Uplo::Lower, T(1), cview(x), MatrixView<T>(a.data(), 3, 3));
  MatrixView<T> A(a.data(), 3, 3);
  EXPECT_EQ(A(2, 0), T(3));
  EXPECT_EQ(A(2, 2), T(9));
  EXPECT_EQ(A(0, 2), T(0));  // upper untouched
}

TYPED_TEST(RefLevel2, Syr2MatchesTwoGers) {
  using T = TypeParam;
  Workload wl(22);
  const std::int64_t n = 8;
  auto x = wl.vector<T>(n);
  auto y = wl.vector<T>(n);
  std::vector<T> a1(n * n, T(0)), a2(n * n, T(0));
  syr2<T>(Uplo::Upper, T(2), cview(x), cview(y), MatrixView<T>(a1.data(), n, n));
  ger<T>(T(2), cview(x), cview(y), MatrixView<T>(a2.data(), n, n));
  ger<T>(T(2), cview(y), cview(x), MatrixView<T>(a2.data(), n, n));
  MatrixView<T> A1(a1.data(), n, n), A2(a2.data(), n, n);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i; j < n; ++j) {
      EXPECT_NEAR(A1(i, j), A2(i, j), 1e-4);
    }
  }
}

// ---- Level 3 ----------------------------------------------------------------

template <typename T>
class RefLevel3 : public ::testing::Test {};
TYPED_TEST_SUITE(RefLevel3, Precisions);

TYPED_TEST(RefLevel3, GemmAllTransposes) {
  using T = TypeParam;
  Workload wl(31);
  const std::int64_t m = 7, n = 9, k = 5;
  auto c0 = wl.matrix<T>(m, n);
  for (Transpose ta : {Transpose::None, Transpose::Trans}) {
    for (Transpose tb : {Transpose::None, Transpose::Trans}) {
      auto a = ta == Transpose::None ? wl.matrix<T>(m, k) : wl.matrix<T>(k, m);
      auto b = tb == Transpose::None ? wl.matrix<T>(k, n) : wl.matrix<T>(n, k);
      auto c = c0;
      MatrixView<const T> A(a.data(), ta == Transpose::None ? m : k,
                            ta == Transpose::None ? k : m);
      MatrixView<const T> B(b.data(), tb == Transpose::None ? k : n,
                            tb == Transpose::None ? n : k);
      gemm<T>(ta, tb, T(1.5), A, B, T(0.5), MatrixView<T>(c.data(), m, n));
      // Check one element by hand.
      auto aa = [&](std::int64_t i, std::int64_t p) {
        return ta == Transpose::None ? A(i, p) : A(p, i);
      };
      auto bb = [&](std::int64_t p, std::int64_t j) {
        return tb == Transpose::None ? B(p, j) : B(j, p);
      };
      T expect = T(0.5) * c0[2 * n + 3];
      T acc = T(0);
      for (std::int64_t p = 0; p < k; ++p) acc += aa(2, p) * bb(p, 3);
      expect += T(1.5) * acc;
      EXPECT_NEAR(c[2 * n + 3], expect, 1e-4);
    }
  }
}

TYPED_TEST(RefLevel3, BlockedMatchesNaive) {
  using T = TypeParam;
  Workload wl(32);
  const std::int64_t m = 33, n = 29, k = 41;  // deliberately non-multiples
  auto a = wl.matrix<T>(m, k);
  auto b = wl.matrix<T>(k, n);
  auto c1 = wl.matrix<T>(m, n);
  auto c2 = c1;
  gemm<T>(Transpose::None, Transpose::None, T(1.25),
          MatrixView<const T>(a.data(), m, k),
          MatrixView<const T>(b.data(), k, n), T(0.75),
          MatrixView<T>(c1.data(), m, n));
  gemm_blocked<T>(T(1.25), MatrixView<const T>(a.data(), m, k),
                  MatrixView<const T>(b.data(), k, n), T(0.75),
                  MatrixView<T>(c2.data(), m, n), 16);
  EXPECT_LT(rel_error(c2, c1), 1e-4);
}

TYPED_TEST(RefLevel3, SyrkMatchesGemm) {
  using T = TypeParam;
  Workload wl(33);
  const std::int64_t n = 10, k = 6;
  auto a = wl.matrix<T>(n, k);
  std::vector<T> c1(n * n, T(0)), c2(n * n, T(0));
  syrk<T>(Uplo::Lower, Transpose::None, T(2), MatrixView<const T>(a.data(), n, k),
          T(0), MatrixView<T>(c1.data(), n, n));
  // Full product via gemm for comparison on the lower triangle.
  std::vector<T> at(k * n);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t p = 0; p < k; ++p) at[p * n + i] = a[i * k + p];
  gemm<T>(Transpose::None, Transpose::None, T(2),
          MatrixView<const T>(a.data(), n, k),
          MatrixView<const T>(at.data(), k, n), T(0),
          MatrixView<T>(c2.data(), n, n));
  MatrixView<T> C1(c1.data(), n, n), C2(c2.data(), n, n);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j <= i; ++j)
      EXPECT_NEAR(C1(i, j), C2(i, j), 1e-4);
}

TYPED_TEST(RefLevel3, Syr2kSymmetryAndValue) {
  using T = TypeParam;
  Workload wl(34);
  const std::int64_t n = 8, k = 5;
  auto a = wl.matrix<T>(n, k);
  auto b = wl.matrix<T>(n, k);
  std::vector<T> lo(n * n, T(0)), up(n * n, T(0));
  syr2k<T>(Uplo::Lower, Transpose::None, T(1),
           MatrixView<const T>(a.data(), n, k),
           MatrixView<const T>(b.data(), n, k), T(0),
           MatrixView<T>(lo.data(), n, n));
  syr2k<T>(Uplo::Upper, Transpose::None, T(1),
           MatrixView<const T>(a.data(), n, k),
           MatrixView<const T>(b.data(), n, k), T(0),
           MatrixView<T>(up.data(), n, n));
  MatrixView<T> L(lo.data(), n, n), U(up.data(), n, n);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j <= i; ++j)
      EXPECT_NEAR(L(i, j), U(j, i), 1e-4);  // the result is symmetric
}

TYPED_TEST(RefLevel3, TrsmAllSidesAndOrientations) {
  using T = TypeParam;
  Workload wl(35);
  const std::int64_t m = 12, n = 9;
  for (Side side : {Side::Left, Side::Right}) {
    for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
      for (Transpose tr : {Transpose::None, Transpose::Trans}) {
        for (Diag dg : {Diag::NonUnit, Diag::Unit}) {
          const std::int64_t na = side == Side::Left ? m : n;
          auto a = wl.triangular<T>(na, uplo, dg);
          auto xref = wl.matrix<T>(m, n);
          // B = op(A) * X (left) or X * op(A) (right).
          std::vector<T> bmat(m * n, T(0));
          MatrixView<const T> A(a.data(), na, na);
          MatrixView<const T> X(xref.data(), m, n);
          MatrixView<T> B(bmat.data(), m, n);
          if (side == Side::Left) {
            gemm<T>(tr, Transpose::None, T(1), A, X, T(0), B);
          } else {
            gemm<T>(Transpose::None, tr, T(1), X, A, T(0), B);
          }
          trsm<T>(side, uplo, tr, dg, T(1), A, MatrixView<T>(bmat.data(), m, n));
          EXPECT_LT(rel_error(bmat, xref), 1e-3)
              << "side=" << int(side) << " uplo=" << int(uplo)
              << " trans=" << int(tr) << " diag=" << int(dg);
        }
      }
    }
  }
}

TYPED_TEST(RefLevel3, TrsmAppliesAlpha) {
  using T = TypeParam;
  // A = I: solution is just alpha * B.
  std::vector<T> a{1, 0, 0, 1};
  std::vector<T> b{2, 4, 6, 8};
  trsm<T>(Side::Left, Uplo::Lower, Transpose::None, Diag::NonUnit, T(0.5),
          MatrixView<const T>(a.data(), 2, 2), MatrixView<T>(b.data(), 2, 2));
  EXPECT_EQ(b, (std::vector<T>{1, 2, 3, 4}));
}

// ---- Batched ----------------------------------------------------------------

TYPED_TEST(RefLevel3, BatchedGemmMatchesLoop) {
  using T = TypeParam;
  Workload wl(36);
  const std::int64_t batch = 10, n = 4;
  auto a = wl.vector<T>(batch * n * n);
  auto b = wl.vector<T>(batch * n * n);
  std::vector<T> c1(batch * n * n, T(0)), c2(batch * n * n, T(0));
  gemm_batched<T>(batch, n, T(1), a.data(), b.data(), T(0), c1.data());
  for (std::int64_t i = 0; i < batch; ++i) {
    gemm<T>(Transpose::None, Transpose::None, T(1),
            MatrixView<const T>(a.data() + i * n * n, n, n),
            MatrixView<const T>(b.data() + i * n * n, n, n), T(0),
            MatrixView<T>(c2.data() + i * n * n, n, n));
  }
  EXPECT_EQ(c1, c2);
}

TYPED_TEST(RefLevel3, BatchedTrsmSolves) {
  using T = TypeParam;
  Workload wl(37);
  const std::int64_t batch = 6, n = 4;
  std::vector<T> a, xref, bmat;
  for (std::int64_t i = 0; i < batch; ++i) {
    auto ai = wl.triangular<T>(n, Uplo::Lower, Diag::NonUnit);
    auto xi = wl.matrix<T>(n, n);
    std::vector<T> bi(n * n, T(0));
    gemm<T>(Transpose::None, Transpose::None, T(1),
            MatrixView<const T>(ai.data(), n, n),
            MatrixView<const T>(xi.data(), n, n), T(0),
            MatrixView<T>(bi.data(), n, n));
    a.insert(a.end(), ai.begin(), ai.end());
    xref.insert(xref.end(), xi.begin(), xi.end());
    bmat.insert(bmat.end(), bi.begin(), bi.end());
  }
  trsm_batched<T>(batch, n, T(1), a.data(), bmat.data());
  EXPECT_LT(rel_error(bmat, xref), 1e-3);
}

}  // namespace
}  // namespace fblas::ref
