// Device fleet health: the breaker state machine, FaultConfig
// validation, deterministic full-jitter backoff, health-weighted
// placement, quarantine with transparent buffer migration, probe-based
// re-admission, whole-pool-sick CPU fallback, and the reconciliation of
// per-device stats against the global ExecStats counters.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "common/workload.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"
#include "host/device_pool.hpp"
#include "host/health.hpp"
#include "refblas/level3.hpp"
#include "verify/options.hpp"

namespace fblas {
namespace {

host::RetryPolicy fast_retry(int max_retries, bool cpu_fallback = false) {
  host::RetryPolicy p;
  p.max_retries = max_retries;
  p.backoff = std::chrono::microseconds(0);
  p.cpu_fallback = cpu_fallback;
  return p;
}

// --- HealthTracker state machine -----------------------------------------

TEST(HealthTracker, ConsecutiveFailuresOpenThenProbeReadmits) {
  host::HealthConfig cfg;
  cfg.open_consecutive_failures = 3;
  cfg.cooldown_ticks = 4;
  host::HealthTracker t(cfg);
  EXPECT_EQ(t.state(), host::BreakerState::Closed);

  t.record_failure();
  t.record_failure();
  EXPECT_EQ(t.state(), host::BreakerState::Closed);
  t.record_failure();  // third consecutive: quarantine
  EXPECT_EQ(t.state(), host::BreakerState::Open);
  EXPECT_EQ(t.opens(), 1u);

  // The cool-down runs on the placement-tick clock, not wall time.
  for (int i = 0; i < 3; ++i) t.tick();
  EXPECT_EQ(t.state(), host::BreakerState::Open);
  t.tick();
  EXPECT_EQ(t.state(), host::BreakerState::HalfOpen);
  EXPECT_EQ(t.half_opens(), 1u);

  // A clean probe re-admits with a clean slate: the quarantine served the
  // penalty, so one later wobble must not immediately re-open.
  t.probe_result(true);
  EXPECT_EQ(t.state(), host::BreakerState::Closed);
  EXPECT_EQ(t.readmissions(), 1u);
  EXPECT_EQ(t.ewma(), 0.0);
  t.record_failure();
  EXPECT_EQ(t.state(), host::BreakerState::Closed);
}

TEST(HealthTracker, FailedProbeStartsAnotherQuarantineRound) {
  host::HealthConfig cfg;
  cfg.open_consecutive_failures = 2;
  cfg.cooldown_ticks = 2;
  host::HealthTracker t(cfg);
  t.record_failure();
  t.record_failure();
  EXPECT_EQ(t.state(), host::BreakerState::Open);
  t.tick();
  t.tick();
  EXPECT_EQ(t.state(), host::BreakerState::HalfOpen);
  t.probe_result(false);  // device still sick: fresh cool-down
  EXPECT_EQ(t.state(), host::BreakerState::Open);
  EXPECT_EQ(t.opens(), 2u);
  t.tick();
  t.tick();
  EXPECT_EQ(t.state(), host::BreakerState::HalfOpen);
  t.probe_result(true);
  EXPECT_EQ(t.state(), host::BreakerState::Closed);
  EXPECT_EQ(t.readmissions(), 1u);
}

TEST(HealthTracker, EwmaPathOpensOnlyAfterMinEvents) {
  // Error-rate path: failures interleaved with successes never trip the
  // consecutive threshold, but the EWMA crosses open_error_rate — which
  // must not count until min_events samples exist (one early failure is
  // not a trend).
  host::HealthConfig cfg;
  cfg.ewma_alpha = 0.25;
  cfg.open_error_rate = 0.5;
  cfg.min_events = 6;
  cfg.open_consecutive_failures = 100;  // isolate the EWMA path
  host::HealthTracker t(cfg);
  t.record_failure();  // ewma 0.25
  t.record_success();  // 0.1875
  t.record_failure();  // 0.390625
  t.record_failure();  // 0.54296875 > 0.5, but only 4 events
  EXPECT_EQ(t.state(), host::BreakerState::Closed);
  t.record_success();  // 0.40722656
  t.record_failure();  // 0.55541992 > 0.5 at event 6: open
  EXPECT_EQ(t.state(), host::BreakerState::Open);
  EXPECT_GT(t.ewma(), cfg.open_error_rate);
}

// --- FaultConfig::validate -----------------------------------------------

void expect_rejects(const host::FaultConfig& bad, const std::string& knob) {
  host::Device dev;
  try {
    dev.inject_faults(bad);
    FAIL() << "expected ConfigError for " << knob;
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(knob), std::string::npos)
        << "message was: " << e.what();
  }
  // A rejected config must not have armed the injector.
  EXPECT_FALSE(dev.faults().enabled());
}

TEST(FaultConfigValidate, EachBadKnobNamedInTheError) {
  const double nan = std::nan("");
  {
    host::FaultConfig bad;
    bad.launch_fail_rate = -0.1;
    expect_rejects(bad, "FaultConfig.launch_fail_rate");
  }
  {
    host::FaultConfig bad;
    bad.corrupt_rate = nan;
    expect_rejects(bad, "FaultConfig.corrupt_rate");
  }
  {
    host::FaultConfig bad;
    bad.wedge_rate = 1.5;
    expect_rejects(bad, "FaultConfig.wedge_rate");
  }
  {
    host::FaultConfig bad;
    bad.silent_corrupt_rate = -1.0;
    expect_rejects(bad, "FaultConfig.silent_corrupt_rate");
  }
  {
    host::FaultConfig bad;
    bad.channel_corrupt_rate = 2.0;
    expect_rejects(bad, "FaultConfig.channel_corrupt_rate");
  }
  {
    host::FaultConfig bad;
    bad.pe_fault_rate = nan;
    expect_rejects(bad, "FaultConfig.pe_fault_rate");
  }
  {
    host::FaultConfig bad;
    bad.device_fault_window.device = 0;
    bad.device_fault_window.begin = 9;
    bad.device_fault_window.end = 3;
    expect_rejects(bad, "FaultConfig.device_fault_window must not be "
                        "inverted (begin 9 > end 3)");
  }
  {
    host::FaultConfig bad;
    bad.device_fault_window.multiplier = -2.0;
    expect_rejects(bad, "FaultConfig.device_fault_window.multiplier");
  }
  {
    host::FaultConfig bad;
    bad.device_fault_window.multiplier = nan;
    expect_rejects(bad, "FaultConfig.device_fault_window.multiplier");
  }
  // A valid config (including an armed window) still arms.
  host::Device dev;
  host::FaultConfig good;
  good.launch_fail_rate = 0.5;
  good.device_fault_window.device = 0;
  good.device_fault_window.begin = 1;
  good.device_fault_window.end = 10;
  good.device_fault_window.multiplier = 2.0;
  EXPECT_NO_THROW(dev.inject_faults(good));
  EXPECT_TRUE(dev.faults().enabled());
}

TEST(FaultConfigValidate, PoolValidatesOnceAndStripsWindowFromNonVictims) {
  host::DevicePool pool(3);
  host::FaultConfig bad;
  bad.corrupt_rate = -0.5;
  EXPECT_THROW(pool.inject_faults(bad), ConfigError);

  host::FaultConfig good;
  good.launch_fail_rate = 0.1;
  good.device_fault_window.device = 1;
  good.device_fault_window.begin = 2;
  good.device_fault_window.end = 8;
  good.device_fault_window.multiplier = 10.0;
  pool.inject_faults(good);
  // Only the victim keeps the window; siblings run identical base rates
  // so fault draws stay placement-independent.
  EXPECT_FALSE(pool.device(0).faults().sick_window().active());
  EXPECT_TRUE(pool.device(1).faults().sick_window().active());
  EXPECT_FALSE(pool.device(2).faults().sick_window().active());
}

// --- Deterministic full-jitter backoff -----------------------------------

TEST(RetryJitter, JitteredBackoffDeterministicAndBounded) {
  using std::chrono::microseconds;
  const microseconds cap(800);
  // Same (seed, seq, attempt) -> same delay, always within [0, cap].
  for (std::uint64_t seq = 1; seq <= 64; ++seq) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const auto d = host::jittered_backoff(7, seq, attempt, cap);
      EXPECT_EQ(d, host::jittered_backoff(7, seq, attempt, cap));
      EXPECT_GE(d.count(), 0);
      EXPECT_LE(d.count(), cap.count());
    }
  }
  // A zero cap yields a zero delay (retry immediately, like the legacy
  // zero-backoff test policies).
  EXPECT_EQ(host::jittered_backoff(7, 1, 0, microseconds(0)).count(), 0);
  // The draws actually vary across commands — that is the whole point:
  // workers retrying after a correlated fault must not sleep in lockstep.
  bool varies = false;
  const auto first = host::jittered_backoff(7, 1, 0, cap);
  for (std::uint64_t seq = 2; seq <= 64 && !varies; ++seq) {
    varies = host::jittered_backoff(7, seq, 0, cap) != first;
  }
  EXPECT_TRUE(varies);
}

TEST(RetryJitter, BoundaryCapsDrawInRangeWithoutOverflow) {
  using std::chrono::microseconds;
  // Regression: a cap at the extreme of the representation must still
  // produce a deterministic draw in [0, cap]. The old modulus arithmetic
  // was one wrap away from a zero modulus (undefined behavior) at the
  // top of the range; the clamp keeps the draw well-defined there.
  const microseconds max_cap(microseconds::max());
  const auto at_max = host::jittered_backoff(7, 3, 2, max_cap);
  EXPECT_EQ(at_max, host::jittered_backoff(7, 3, 2, max_cap));
  EXPECT_GE(at_max.count(), 0);
  EXPECT_LE(at_max.count(), max_cap.count());
  // One below the extreme exercises the ordinary cap+1 modulus at its
  // largest value.
  const microseconds near_max(microseconds::max() - microseconds(1));
  const auto below = host::jittered_backoff(7, 3, 2, near_max);
  EXPECT_GE(below.count(), 0);
  EXPECT_LE(below.count(), near_max.count());
  // And the draws at huge caps still vary across commands.
  bool varies = false;
  for (std::uint64_t seq = 1; seq <= 32 && !varies; ++seq) {
    varies = host::jittered_backoff(7, seq, 0, max_cap) != at_max;
  }
  EXPECT_TRUE(varies);
}

TEST(RetryJitter, FullJitterKeepsResultsAndStatsBitIdentical) {
  // Jitter only changes *when* a retry runs, never what it computes: the
  // corrupted-GEMM recovery must produce the same bits and the same
  // fault/retry counters with jitter on and off.
  const std::int64_t m = 24, n = 20, k = 16;
  Workload wl(53);
  const auto ha = wl.matrix<float>(m, k);
  const auto hb = wl.matrix<float>(k, n);
  const auto hc = wl.matrix<float>(m, n);

  auto run = [&](bool jitter) {
    host::Device dev;
    host::Context ctx(dev);
    host::FaultConfig faults;
    faults.seed = 24;
    faults.corrupt_rate = 1.0;
    faults.max_faults = 2;
    dev.inject_faults(faults);
    host::RetryPolicy policy;
    policy.max_retries = 3;
    policy.backoff = std::chrono::microseconds(20);
    policy.max_backoff = std::chrono::microseconds(100);
    policy.full_jitter = jitter;
    policy.jitter_seed = 99;
    ctx.set_retry_policy(policy);
    host::Buffer<float> a(dev, m * k, 0), b(dev, k * n, 1), c(dev, m * n, 2);
    a.write(ha);
    b.write(hb);
    c.write(hc);
    ctx.gemm<float>(Transpose::None, Transpose::None, m, n, k, 1.5f, a, b,
                    0.5f, c);
    return std::make_pair(c.to_host(), ctx.exec_stats());
  };

  const auto [plain, plain_stats] = run(false);
  const auto [jittered, jitter_stats] = run(true);
  EXPECT_EQ(plain, jittered);
  EXPECT_EQ(plain_stats.retries, jitter_stats.retries);
  EXPECT_EQ(plain_stats.faults_injected, jitter_stats.faults_injected);
  EXPECT_EQ(jitter_stats.retries, 2u);
}

// --- Placement ------------------------------------------------------------

TEST(DevicePool, PlacementFollowsResidencyWithoutMigration) {
  // A healthy fleet keeps each hazard chain on the device already holding
  // its buffers: no migrations, and the command status names the device.
  const std::int64_t n = 128;
  host::DevicePool pool(3);
  host::Context ctx(pool);
  host::Buffer<float> x(pool.device(1), n, 0);
  host::Buffer<float> y(pool.device(2), n, 0);
  Workload wl(54);
  x.write(wl.vector<float>(n));
  y.write(wl.vector<float>(n));

  host::Event ex = ctx.scal_async<float>(n, 2.0f, x, 1);
  host::Event ey = ctx.scal_async<float>(n, 3.0f, y, 1);
  ctx.finish();
  EXPECT_EQ(ex.status().device, 1);
  EXPECT_EQ(ey.status().device, 2);
  EXPECT_EQ(pool.resident_device(&x), 1);
  EXPECT_EQ(pool.resident_device(&y), 2);

  const host::ExecStats stats = ctx.exec_stats();
  EXPECT_EQ(stats.migrations, 0u);
  ASSERT_EQ(stats.per_device.size(), 3u);
  EXPECT_EQ(stats.per_device[1].attempts, 1u);
  EXPECT_EQ(stats.per_device[2].attempts, 1u);
  EXPECT_EQ(stats.per_device[0].attempts, 0u);
}

TEST(DevicePool, MixedResidencyPullsOperandsTogetherOnce) {
  // axpy reading x (device 0) and writing y (device 1): the pool
  // co-locates the operands on the winner, exactly one buffer moves, and
  // the migrated bytes are accounted on both sides.
  const std::int64_t n = 64;
  host::DevicePool pool(2);
  host::Context ctx(pool);
  host::Buffer<float> x(pool.device(0), n, 0);
  host::Buffer<float> y(pool.device(1), n, 1);
  Workload wl(55);
  const auto hx = wl.vector<float>(n);
  auto hy = wl.vector<float>(n);
  x.write(hx);
  y.write(hy);

  ctx.axpy<float>(n, 2.0f, x, 1, y, 1);
  for (std::int64_t i = 0; i < n; ++i) {
    hy[static_cast<std::size_t>(i)] += 2.0f * hx[static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(y.to_host(), hy);

  // Both operands now live on one device...
  EXPECT_EQ(pool.resident_device(&x), pool.resident_device(&y));
  const host::ExecStats stats = ctx.exec_stats();
  EXPECT_EQ(stats.migrations, 1u);
  EXPECT_EQ(stats.migrated_bytes, static_cast<std::uint64_t>(n) * 4);
  // ...and a follow-up command on the pair stays put.
  ctx.axpy<float>(n, -1.0f, x, 1, y, 1);
  EXPECT_EQ(ctx.exec_stats().migrations, 1u);
}

// --- The sick-device acceptance scenario ----------------------------------

TEST(DevicePool, SickDeviceOpensBreakerMigratesAndReadmits) {
  // End to end: device 0 goes sick for an early window of command seqs
  // (launch rate x50 = certainty), the breaker opens after the configured
  // consecutive failures, the in-flight command's buffer migrates to a
  // healthy sibling and the command completes there — bit-identically to
  // a healthy-pool run — and once the window has passed, the half-open
  // probe re-admits device 0 with a clean slate.
  const std::int64_t n = 256;
  const auto hx = Workload(56).vector<float>(n);
  const int kCommands = 40;

  auto run = [&](bool with_faults) {
    host::DevicePool pool(3);
    host::Context ctx(pool);
    if (with_faults) {
      host::FaultConfig faults;
      faults.seed = 24;
      faults.launch_fail_rate = 0.02;
      faults.device_fault_window.device = 0;
      faults.device_fault_window.begin = 1;  // first command seq is 1
      faults.device_fault_window.end = 6;
      faults.device_fault_window.multiplier = 50.0;  // 0.02 * 50 = 1.0
      pool.inject_faults(faults);
      ctx.set_retry_policy(fast_retry(6));
    }
    host::Buffer<float> x(pool.device(0), n, 0);
    x.write(hx);
    std::vector<host::Event> events;
    for (int i = 0; i < kCommands; ++i) {
      events.push_back(ctx.scal_async<float>(n, 1.01f, x, 1));
      events.back().wait();
    }
    struct Out {
      std::vector<float> x;
      host::ExecStats stats;
      host::BreakerState breaker0;
      int resident;
      int first_device;
      std::uint64_t alloc0;
      std::uint64_t sick_faults;
    } out;
    out.x = x.to_host();
    out.stats = ctx.exec_stats();
    out.breaker0 = pool.breaker(0);
    out.resident = pool.resident_device(&x);
    out.first_device = events.front().status().device;
    out.alloc0 = pool.device(0).allocated_bytes(0);
    out.sick_faults = pool.device(0).faults().sick_faults();
    for (const host::Event& e : events) EXPECT_TRUE(e.status().ok());
    return out;
  };

  const auto healthy = run(false);
  const auto sick = run(true);

  // Transparent failover: identical bits despite the sick device.
  EXPECT_EQ(sick.x, healthy.x);
  EXPECT_EQ(sick.stats.degraded, 0u);

  ASSERT_EQ(sick.stats.per_device.size(), 3u);
  const host::PerDeviceStats& d0 = sick.stats.per_device[0];
  // The breaker opened after exactly the configured consecutive-failure
  // threshold (3): attempts 0-2 of command 1 all fail inside the window.
  EXPECT_EQ(d0.failed_attempts, 3u);
  EXPECT_EQ(d0.breaker_opens, 1u);
  EXPECT_GE(sick.stats.retries, 3u);
  // Command 1 finished on the device it failed over to.
  EXPECT_NE(sick.first_device, 0);
  // Its buffer was re-staged off the quarantined device, with the bank
  // accounting following it (device 0's bank is empty again).
  EXPECT_EQ(d0.migrations_out, 1u);
  EXPECT_EQ(d0.migrated_bytes_out, static_cast<std::uint64_t>(n) * 4);
  EXPECT_EQ(sick.stats.migrations, 1u);
  EXPECT_NE(sick.resident, 0);
  EXPECT_EQ(sick.alloc0, 0u);
  EXPECT_EQ(healthy.alloc0, static_cast<std::uint64_t>(n) * 4);
  // After the window closed, the cool-down elapsed and the synthetic
  // probe re-admitted device 0.
  EXPECT_EQ(d0.breaker_half_opens, 1u);
  EXPECT_EQ(d0.breaker_readmissions, 1u);
  EXPECT_GE(d0.probes, 1u);
  EXPECT_EQ(sick.breaker0, host::BreakerState::Closed);
  // Ground truth: every injected fault landed inside the sick window
  // (the seed draws no base-rate fault elsewhere in this run).
  EXPECT_EQ(sick.sick_faults, sick.stats.faults_injected);
  EXPECT_EQ(sick.sick_faults, 3u);
}

// --- Whole pool sick: CPU fallback is the last rung -----------------------

TEST(DevicePool, WholePoolSickDegradesToCpuFallback) {
  const std::int64_t m = 16, n = 12, k = 20;
  Workload wl(57);
  const auto ha = wl.matrix<float>(m, k);
  const auto hb = wl.matrix<float>(k, n);
  auto hc = wl.matrix<float>(m, n);

  host::DevicePool pool(3);
  host::Context ctx(pool);
  host::FaultConfig faults;
  faults.seed = 24;
  faults.launch_fail_rate = 1.0;  // every launch on every device fails
  pool.inject_faults(faults);
  ctx.set_retry_policy(fast_retry(2, /*cpu_fallback=*/true));

  host::Buffer<float> a(pool.device(0), m * k, 0);
  host::Buffer<float> b(pool.device(0), k * n, 1);
  host::Buffer<float> c(pool.device(0), m * n, 2);
  a.write(ha);
  b.write(hb);
  c.write(hc);
  const int kCommands = 4;
  for (int i = 0; i < kCommands; ++i) {
    host::Event e = ctx.gemm_async<float>(Transpose::None, Transpose::None,
                                          m, n, k, 1.0f, a, b, 0.5f, c);
    EXPECT_NO_THROW(e.wait());
    EXPECT_TRUE(e.status().degraded());
  }
  for (int i = 0; i < kCommands; ++i) {
    ref::gemm(Transpose::None, Transpose::None, 1.0f,
              MatrixView<const float>(ha.data(), m, k),
              MatrixView<const float>(hb.data(), k, n), 0.5f,
              MatrixView<float>(hc.data(), m, n));
  }
  EXPECT_EQ(c.to_host(), hc);

  const host::ExecStats stats = ctx.exec_stats();
  EXPECT_EQ(stats.degraded, static_cast<std::uint64_t>(kCommands));
  // 3 attempts per command, every one a failure somewhere in the fleet.
  std::uint64_t failed = 0, executed = 0;
  for (const host::PerDeviceStats& d : stats.per_device) {
    failed += d.failed_attempts;
    executed += d.executed;
    EXPECT_NE(d.breaker, host::BreakerState::Closed);
  }
  EXPECT_EQ(failed, stats.retries + stats.degraded);
  EXPECT_EQ(executed, stats.executed - stats.degraded);
  EXPECT_EQ(executed, 0u);
}

// --- Per-device stats reconcile with the global counters ------------------

TEST(DevicePool, PerDeviceStatsReconcileSerialAndConcurrent) {
  const std::int64_t n = 512;
  auto run = [&](int workers) {
    host::DevicePool pool(3);
    host::Context ctx(pool, stream::Mode::Functional, workers);
    host::FaultConfig faults;
    faults.seed = 24;
    faults.launch_fail_rate = 0.15;
    faults.corrupt_rate = 0.15;
    pool.inject_faults(faults);
    ctx.set_retry_policy(fast_retry(8));
    Workload wl(58);
    std::vector<host::Buffer<float>> bufs;
    for (int i = 0; i < 4; ++i) {
      bufs.emplace_back(pool.device(i % pool.size()), n, 0);
      bufs.back().write(wl.vector<float>(n));
    }
    for (int round = 0; round < 8; ++round) {
      ctx.scal_async<float>(n, 1.01f, bufs[0], 1);
      ctx.axpy_async<float>(n, 0.5f, bufs[0], 1, bufs[1], 1);
      ctx.copy_async<float>(n, bufs[1], 1, bufs[2], 1);
      ctx.axpy_async<float>(n, -0.25f, bufs[2], 1, bufs[3], 1);
    }
    ctx.finish();
    std::vector<std::vector<float>> out;
    for (auto& b : bufs) out.push_back(b.to_host());
    return std::make_pair(out, ctx.exec_stats());
  };

  const auto [serial, serial_stats] = run(0);
  const auto [pooled, pooled_stats] = run(4);
  // Results are bit-identical across executor policies even on a fleet:
  // fault draws hash (seed, seq, attempt) and every device computes the
  // same bits.
  EXPECT_EQ(serial, pooled);
  EXPECT_GT(serial_stats.retries, 0u);

  for (const host::ExecStats& stats : {serial_stats, pooled_stats}) {
    ASSERT_EQ(stats.per_device.size(), 3u);
    std::uint64_t faults_sum = 0, executed = 0, failed = 0, attempts = 0;
    for (const host::PerDeviceStats& d : stats.per_device) {
      faults_sum += d.faults;
      executed += d.executed;
      failed += d.failed_attempts;
      attempts += d.attempts;
    }
    EXPECT_EQ(faults_sum, stats.faults_injected);
    EXPECT_EQ(executed, stats.executed);  // no degradations, no barriers
    EXPECT_EQ(failed, stats.retries);     // every failure was retried
    // Every placement ended as exactly one of accepted / failed.
    EXPECT_EQ(attempts, executed + failed);
    EXPECT_EQ(stats.degraded, 0u);
  }
}

TEST(DevicePool, VerifyRejectsCountPerDeviceAndFeedOrSpareTheBreaker) {
  // Silent corruption caught by the checkers lands in the per-device
  // verify_rejects ledger; whether the verdicts also feed the breaker is
  // verify::Options::breaker_feedback's call.
  const std::int64_t n = 128;
  auto run = [&](bool feed) {
    host::Device dev;
    host::Context ctx(dev);
    ctx.config().verification =
        verify::Options::always().breaker_feedback(feed);
    host::FaultConfig faults;
    faults.seed = 24;
    faults.silent_corrupt_rate = 1.0;
    faults.max_faults = 3;  // three straight rejections, then clean
    dev.inject_faults(faults);
    ctx.set_retry_policy(fast_retry(6));
    Workload wl(59);
    auto hx = wl.vector<float>(n);
    host::Buffer<float> x(dev, n, 0);
    x.write(hx);
    ctx.scal<float>(n, 2.0f, x);
    for (float& v : hx) v *= 2.0f;
    EXPECT_EQ(x.to_host(), hx);
    return ctx.exec_stats();
  };

  const host::ExecStats fed = run(true);
  ASSERT_EQ(fed.per_device.size(), 1u);
  EXPECT_EQ(fed.per_device[0].verify_rejects, 3u);
  EXPECT_EQ(fed.per_device[0].verify_rejects, fed.verify_failures);
  // Three consecutive rejections opened the (pool-of-one) breaker.
  EXPECT_EQ(fed.per_device[0].breaker_opens, 1u);
  EXPECT_EQ(fed.breaker_opens, 1u);

  const host::ExecStats spared = run(false);
  ASSERT_EQ(spared.per_device.size(), 1u);
  EXPECT_EQ(spared.per_device[0].verify_rejects, 3u);
  EXPECT_EQ(spared.per_device[0].verify_rejects, spared.verify_failures);
  // Stats recorded either way; quarantine decisions untouched.
  EXPECT_EQ(spared.per_device[0].breaker_opens, 0u);
  EXPECT_EQ(spared.per_device[0].breaker, host::BreakerState::Closed);
}

}  // namespace
}  // namespace fblas
