// Streaming Level-2 modules tested against the reference BLAS oracle:
// all four GEMV variants, GER/SYR/SYR2 tilings, TRSV orientations.
#include <gtest/gtest.h>

#include <vector>

#include "common/workload.hpp"
#include "fblas/level2.hpp"
#include "refblas/level2.hpp"
#include "sim/perf_model.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace fblas::core {
namespace {

using stream::Graph;
using stream::Mode;

template <typename T>
std::vector<T> run_gemv(const GemvConfig& cfg, std::int64_t rows,
                        std::int64_t cols, T alpha, T beta,
                        const std::vector<T>& a, const std::vector<T>& x,
                        const std::vector<T>& y, Mode mode = Mode::Functional,
                        std::uint64_t* cycles = nullptr) {
  Graph g(mode);
  auto& ca = g.channel<T>("A", 128);
  auto& cx = g.channel<T>("x", 128);
  auto& cy = g.channel<T>("y", 128);
  auto& out = g.channel<T>("out", 128);
  const std::int64_t out_len = cfg.trans == Transpose::None ? rows : cols;
  std::vector<T> result;
  g.spawn("read_a",
          stream::read_matrix<T>(MatrixView<const T>(a.data(), rows, cols),
                                 gemv_a_schedule(cfg),
                                 /*repeat=*/1, cfg.width, ca));
  g.spawn("read_x",
          stream::read_vector<T>(
              VectorView<const T>(x.data(),
                                  static_cast<std::int64_t>(x.size())),
              gemv_x_repeat(cfg, rows, cols), cfg.width, cx));
  g.spawn("read_y",
          stream::read_vector<T>(
              VectorView<const T>(y.data(),
                                  static_cast<std::int64_t>(y.size())),
              /*repeat=*/1, cfg.width, cy));
  g.spawn("gemv", gemv<T>(cfg, rows, cols, alpha, beta, ca, cx, cy, out));
  g.spawn("collect", stream::collect<T>(out_len, out, result));
  g.run();
  if (cycles != nullptr) *cycles = g.cycles();
  return result;
}

template <typename T>
class StreamGemv : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(StreamGemv, Precisions);

TYPED_TEST(StreamGemv, AllVariantsMatchOracle) {
  using T = TypeParam;
  Workload wl(201);
  // Sizes chosen to exercise edge tiles (non-divisible by tile sizes).
  const std::int64_t rows = 13, cols = 18;
  auto a = wl.matrix<T>(rows, cols);
  const T alpha = T(1.25), beta = T(-0.5);
  for (Transpose tr : {Transpose::None, Transpose::Trans}) {
    const std::int64_t xl = tr == Transpose::None ? cols : rows;
    const std::int64_t yl = tr == Transpose::None ? rows : cols;
    auto x = wl.vector<T>(xl);
    auto y = wl.vector<T>(yl);
    auto expect = y;
    ref::gemv<T>(tr, alpha, MatrixView<const T>(a.data(), rows, cols),
                 VectorView<const T>(x.data(), xl), beta,
                 VectorView<T>(expect.data(), yl));
    for (MatrixTiling tiling :
         {MatrixTiling::TilesByRows, MatrixTiling::TilesByCols}) {
      for (Order elems : {Order::RowMajor, Order::ColMajor}) {
        for (std::int64_t tile : {4, 5, 32}) {
          // All 4 streaming modes of Sec. III-B (tile order x element
          // order), for both transpositions.
          GemvConfig cfg{tr, tiling, /*width=*/4, tile, tile, elems};
          auto got = run_gemv<T>(cfg, rows, cols, alpha, beta, a, x, y);
          ASSERT_EQ(got.size(), expect.size());
          EXPECT_LT(rel_error(got, expect), 1e-4)
              << "trans=" << int(tr) << " tiling=" << int(tiling)
              << " elems=" << int(elems) << " tile=" << tile;
        }
      }
    }
  }
}

TYPED_TEST(StreamGemv, SquareTilesDivisible) {
  using T = TypeParam;
  Workload wl(202);
  const std::int64_t n = 32;
  auto a = wl.matrix<T>(n, n);
  auto x = wl.vector<T>(n);
  auto y = wl.vector<T>(n);
  auto expect = y;
  ref::gemv<T>(Transpose::None, T(1), MatrixView<const T>(a.data(), n, n),
               VectorView<const T>(x.data(), n), T(1),
               VectorView<T>(expect.data(), n));
  GemvConfig cfg{Transpose::None, MatrixTiling::TilesByRows, 8, 8, 8};
  auto got = run_gemv<T>(cfg, n, n, T(1), T(1), a, x, y);
  EXPECT_LT(rel_error(got, expect), 1e-4);
}

TYPED_TEST(StreamGemv, CycleModeAgreesAndTilingChangesNothingNumerically) {
  using T = TypeParam;
  Workload wl(203);
  const std::int64_t n = 24;
  auto a = wl.matrix<T>(n, n);
  auto x = wl.vector<T>(n);
  auto y = wl.vector<T>(n);
  GemvConfig cfg{Transpose::None, MatrixTiling::TilesByRows, 8, 8, 8};
  std::uint64_t cycles = 0;
  auto functional = run_gemv<T>(cfg, n, n, T(2), T(0), a, x, y);
  auto cycled = run_gemv<T>(cfg, n, n, T(2), T(0), a, x, y, Mode::Cycle,
                            &cycles);
  EXPECT_EQ(functional, cycled);
  // At W=8 the module needs at least n*n/8 = 72 cycles for the matrix.
  EXPECT_GE(cycles, 72u);
}

TYPED_TEST(StreamGemv, CycleSimulationMatchesPerfModel) {
  // The analytic model (C = CD + N*M/W) extrapolates the benches to paper
  // scale; this pins it to the cycle simulator within a few percent
  // across widths.
  using T = TypeParam;
  Workload wl(208);
  const std::int64_t n = 512;
  auto a = wl.matrix<T>(n, n);
  auto x = wl.vector<T>(n);
  auto y = wl.vector<T>(n);
  for (int w : {8, 32}) {
    GemvConfig cfg{Transpose::None, MatrixTiling::TilesByRows, w, 128, 128};
    std::uint64_t cycles = 0;
    run_gemv<T>(cfg, n, n, T(1), T(0), a, x, y, Mode::Cycle, &cycles);
    const auto model = sim::gemv_timing(PrecisionTraits<T>::value, w, n, n,
                                        sim::stratix10());
    EXPECT_NEAR(static_cast<double>(cycles) / model.cycles, 1.0, 0.06)
        << "w=" << w;
  }
}

TYPED_TEST(StreamGemv, IoFormulasMatchPaper) {
  using T = TypeParam;
  (void)sizeof(T);
  // Divisible case: N=M=1024, TN=TM=256.
  GemvConfig by_rows{Transpose::None, MatrixTiling::TilesByRows, 16, 256, 256};
  GemvConfig by_cols{Transpose::None, MatrixTiling::TilesByCols, 16, 256, 256};
  const std::int64_t N = 1024, M = 1024;
  // Sec. III-B: NM + M*N/TN + 2N  vs  NM + M + 2N*M/TM.
  EXPECT_EQ(gemv_io_ops(by_rows, N, M), N * M + M * (N / 256) + 2 * N);
  EXPECT_EQ(gemv_io_ops(by_cols, N, M), N * M + M + 2 * N * (M / 256));
  // Larger vertical tiles reduce by-rows I/O; larger horizontal tiles
  // reduce by-cols I/O.
  GemvConfig big_tn = by_rows;
  big_tn.tile_rows = 1024;
  EXPECT_LT(gemv_io_ops(big_tn, N, M), gemv_io_ops(by_rows, N, M));
}

template <typename T>
std::vector<T> run_ger(const GerConfig& cfg, std::int64_t rows,
                       std::int64_t cols, T alpha, const std::vector<T>& a,
                       const std::vector<T>& x, const std::vector<T>& y) {
  Graph g;
  auto& ca = g.channel<T>("A", 64);
  auto& cx = g.channel<T>("x", 64);
  auto& cy = g.channel<T>("y", 64);
  auto& out = g.channel<T>("out", 64);
  std::vector<T> result(rows * cols);
  const auto sched = ger_a_schedule(cfg);
  g.spawn("read_a",
          stream::read_matrix<T>(MatrixView<const T>(a.data(), rows, cols),
                                 sched, 1, cfg.width, ca));
  g.spawn("read_x", stream::read_vector<T>(
                        VectorView<const T>(x.data(), rows),
                        ger_x_repeat(cfg, rows, cols), cfg.width, cx));
  g.spawn("read_y", stream::read_vector<T>(
                        VectorView<const T>(y.data(), cols),
                        ger_y_repeat(cfg, rows, cols), cfg.width, cy));
  g.spawn("ger", ger<T>(cfg, rows, cols, alpha, ca, cx, cy, out));
  g.spawn("write",
          stream::write_matrix<T>(MatrixView<T>(result.data(), rows, cols),
                                  sched, cfg.width, out));
  g.run();
  return result;
}

TYPED_TEST(StreamGemv, GerBothTilingsMatchOracle) {
  using T = TypeParam;
  Workload wl(204);
  const std::int64_t rows = 11, cols = 14;
  auto a = wl.matrix<T>(rows, cols);
  auto x = wl.vector<T>(rows);
  auto y = wl.vector<T>(cols);
  auto expect = a;
  ref::ger<T>(T(0.75), VectorView<const T>(x.data(), rows),
              VectorView<const T>(y.data(), cols),
              MatrixView<T>(expect.data(), rows, cols));
  for (MatrixTiling tiling :
       {MatrixTiling::TilesByRows, MatrixTiling::TilesByCols}) {
    for (Order elems : {Order::RowMajor, Order::ColMajor}) {
      GerConfig cfg{tiling, 4, 4, 4, elems};
      auto got = run_ger<T>(cfg, rows, cols, T(0.75), a, x, y);
      EXPECT_LT(rel_error(got, expect), 1e-5)
          << "tiling=" << int(tiling) << " elems=" << int(elems);
    }
  }
}

TYPED_TEST(StreamGemv, SyrMatchesOracleFullMatrixUpdate) {
  using T = TypeParam;
  Workload wl(205);
  const std::int64_t n = 12;
  auto a = wl.matrix<T>(n, n);
  auto x = wl.vector<T>(n);
  // The generic streaming SYR updates the full matrix (A + alpha x x^T);
  // compare against GER with y == x.
  auto expect = a;
  ref::ger<T>(T(2), VectorView<const T>(x.data(), n),
              VectorView<const T>(x.data(), n),
              MatrixView<T>(expect.data(), n, n));
  GerConfig cfg{MatrixTiling::TilesByRows, 4, 4, 4};
  Graph g;
  auto& ca = g.channel<T>("A", 64);
  auto& cxr = g.channel<T>("xr", 64);
  auto& cxc = g.channel<T>("xc", 64);
  auto& out = g.channel<T>("out", 64);
  std::vector<T> result(n * n);
  const auto sched = ger_a_schedule(cfg);
  g.spawn("read_a", stream::read_matrix<T>(MatrixView<const T>(a.data(), n, n),
                                           sched, 1, cfg.width, ca));
  g.spawn("read_xr",
          stream::read_vector<T>(VectorView<const T>(x.data(), n),
                                 ger_x_repeat(cfg, n, n), cfg.width, cxr));
  g.spawn("read_xc",
          stream::read_vector<T>(VectorView<const T>(x.data(), n),
                                 ger_y_repeat(cfg, n, n), cfg.width, cxc));
  g.spawn("syr", syr<T>(cfg, n, T(2), ca, cxr, cxc, out));
  g.spawn("write", stream::write_matrix<T>(MatrixView<T>(result.data(), n, n),
                                           sched, cfg.width, out));
  g.run();
  EXPECT_LT(rel_error(result, expect), 1e-5);
}

TYPED_TEST(StreamGemv, Syr2MatchesOracleFullMatrixUpdate) {
  using T = TypeParam;
  Workload wl(206);
  const std::int64_t n = 10;
  auto a = wl.matrix<T>(n, n);
  auto x = wl.vector<T>(n);
  auto y = wl.vector<T>(n);
  auto expect = a;
  ref::ger<T>(T(1.5), VectorView<const T>(x.data(), n),
              VectorView<const T>(y.data(), n),
              MatrixView<T>(expect.data(), n, n));
  ref::ger<T>(T(1.5), VectorView<const T>(y.data(), n),
              VectorView<const T>(x.data(), n),
              MatrixView<T>(expect.data(), n, n));
  GerConfig cfg{MatrixTiling::TilesByCols, 4, 4, 4};
  Graph g;
  auto& ca = g.channel<T>("A", 64);
  auto& cxr = g.channel<T>("xr", 64);
  auto& cxc = g.channel<T>("xc", 64);
  auto& cyr = g.channel<T>("yr", 64);
  auto& cyc = g.channel<T>("yc", 64);
  auto& out = g.channel<T>("out", 64);
  std::vector<T> result(n * n);
  const auto sched = ger_a_schedule(cfg);
  // Row blocks follow the x-operand replay pattern, column blocks the
  // y-operand pattern (see GerConfig helpers).
  g.spawn("read_a", stream::read_matrix<T>(MatrixView<const T>(a.data(), n, n),
                                           sched, 1, cfg.width, ca));
  g.spawn("read_xr",
          stream::read_vector<T>(VectorView<const T>(x.data(), n),
                                 ger_x_repeat(cfg, n, n), cfg.width, cxr));
  g.spawn("read_yr",
          stream::read_vector<T>(VectorView<const T>(y.data(), n),
                                 ger_x_repeat(cfg, n, n), cfg.width, cyr));
  g.spawn("read_xc",
          stream::read_vector<T>(VectorView<const T>(x.data(), n),
                                 ger_y_repeat(cfg, n, n), cfg.width, cxc));
  g.spawn("read_yc",
          stream::read_vector<T>(VectorView<const T>(y.data(), n),
                                 ger_y_repeat(cfg, n, n), cfg.width, cyc));
  g.spawn("syr2", syr2<T>(cfg, n, T(1.5), ca, cxr, cxc, cyr, cyc, out));
  g.spawn("write", stream::write_matrix<T>(MatrixView<T>(result.data(), n, n),
                                           sched, cfg.width, out));
  g.run();
  EXPECT_LT(rel_error(result, expect), 1e-5);
}

TYPED_TEST(StreamGemv, TrsvBothUplosAndDiags) {
  using T = TypeParam;
  Workload wl(207);
  const std::int64_t n = 20;
  for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
    for (Diag dg : {Diag::NonUnit, Diag::Unit}) {
      auto a = wl.triangular<T>(n, uplo, dg);
      auto xref = wl.vector<T>(n);
      std::vector<T> b(n, T(0));
      ref::gemv<T>(Transpose::None, T(1), MatrixView<const T>(a.data(), n, n),
                   VectorView<const T>(xref.data(), n), T(0),
                   VectorView<T>(b.data(), n));
      // b and the solution stream in solve order (reversed for Upper).
      std::vector<T> b_solve(n);
      for (std::int64_t k = 0; k < n; ++k) {
        b_solve[k] = uplo == Uplo::Lower ? b[k] : b[n - 1 - k];
      }
      TrsvConfig cfg{uplo, dg, 4};
      Graph g;
      auto& ca = g.channel<T>("A", 64);
      auto& cb = g.channel<T>("b", 64);
      auto& out = g.channel<T>("x", 64);
      std::vector<T> got_solve;
      g.spawn("read_a", read_triangular<T>(MatrixView<const T>(a.data(), n, n),
                                           uplo, cfg.width, ca));
      g.spawn("feed_b", stream::feed(b_solve, cb));
      g.spawn("trsv", trsv<T>(cfg, n, ca, cb, out));
      g.spawn("collect", stream::collect<T>(n, out, got_solve));
      g.run();
      std::vector<T> got(n);
      for (std::int64_t k = 0; k < n; ++k) {
        const std::int64_t i = uplo == Uplo::Lower ? k : n - 1 - k;
        got[i] = got_solve[k];
      }
      EXPECT_LT(rel_error(got, xref), 1e-3)
          << "uplo=" << int(uplo) << " diag=" << int(dg);
    }
  }
}

TYPED_TEST(StreamGemv, RejectsBadConfig) {
  using T = TypeParam;
  (void)sizeof(T);
  GemvConfig cfg;
  cfg.tile_rows = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  GerConfig gcfg;
  gcfg.width = 0;
  EXPECT_THROW(gcfg.validate(), ConfigError);
}

}  // namespace
}  // namespace fblas::core
