// Code generator tests: JSON parser, routine-spec schema, OpenCL
// emission, feasibility gating, and the generated-config -> simulator
// round trip (a generated GEMV design runs and matches the oracle).
#include <gtest/gtest.h>

#include "codegen/emitter.hpp"
#include "codegen/json.hpp"
#include "codegen/routine_spec.hpp"
#include "common/workload.hpp"
#include "refblas/level2.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace fblas::codegen {
namespace {

// ---- JSON parser -------------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("-12.5e2").as_number(), -1250);
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("\"hi\\n\\\"there\\\"\"").as_string(),
            "hi\n\"there\"");
}

TEST(Json, ParsesNested) {
  const auto j = Json::parse(R"({
    "a": [1, 2, {"b": true}],
    "c": {"d": null},
    "e": "x"
  })");
  EXPECT_TRUE(j.is_object());
  EXPECT_EQ(j.at("a").size(), 3u);
  EXPECT_EQ(j.at("a").at(2).at("b").as_bool(), true);
  EXPECT_TRUE(j.at("c").at("d").is_null());
  EXPECT_TRUE(j.contains("e"));
  EXPECT_FALSE(j.contains("zz"));
  EXPECT_TRUE(j.get("zz").is_null());
}

TEST(Json, UnicodeEscapeBasicLatin) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_THROW(Json::parse("\"\\u00e9\""), ParseError);
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    Json::parse("{\n  \"a\": [1, 2\n}");
    FAIL() << "should have thrown";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
  EXPECT_THROW(Json::parse(""), ParseError);
  EXPECT_THROW(Json::parse("{\"a\": 1,}"), ParseError);
  EXPECT_THROW(Json::parse("[1 2]"), ParseError);
  EXPECT_THROW(Json::parse("12x"), ParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), ParseError);
}

TEST(Json, TypeMismatchesThrow) {
  const auto j = Json::parse("{\"a\": 1}");
  EXPECT_THROW(j.as_string(), ConfigError);
  EXPECT_THROW(j.at(0), ConfigError);
  EXPECT_THROW(j.at("missing"), ConfigError);
  EXPECT_THROW(Json::parse("1.5").as_int(), ConfigError);
}

TEST(Json, DumpRoundTrips) {
  const std::string text = R"({"a":[1,2.5,"s"],"b":{"c":true,"d":null}})";
  const auto j = Json::parse(text);
  const auto j2 = Json::parse(j.dump());
  EXPECT_EQ(j2.at("a").at(1).as_number(), 2.5);
  EXPECT_EQ(j2.at("b").at("c").as_bool(), true);
  // Pretty dump also parses back.
  const auto j3 = Json::parse(j.dump(2));
  EXPECT_EQ(j3.at("a").size(), 3u);
}

// ---- Spec parsing --------------------------------------------------------

constexpr const char* kSpec = R"({
  "device": "stratix10",
  "routines": [
    {"blas": "dot", "precision": "single", "user_name": "my_sdot",
     "width": 32},
    {"blas": "gemv", "precision": "double", "width": 16,
     "transposed": true, "tiles_by": "cols",
     "tile_rows": 512, "tile_cols": 256},
    {"blas": "gemm", "precision": "single",
     "pe_rows": 16, "pe_cols": 16, "tile_rows": 64, "tile_cols": 64},
    {"blas": "trsv", "uplo": "upper", "diag": "unit"}
  ]
})";

TEST(Spec, ParsesAllFields) {
  const auto spec = parse_spec(kSpec);
  EXPECT_EQ(spec.device, sim::DeviceId::Stratix10);
  ASSERT_EQ(spec.routines.size(), 4u);
  const auto& dot = spec.routines[0];
  EXPECT_EQ(dot.kind, RoutineKind::Dot);
  EXPECT_EQ(dot.user_name, "my_sdot");
  EXPECT_EQ(dot.width, 32);
  EXPECT_EQ(dot.blas_name(), "sdot");
  const auto& gemv = spec.routines[1];
  EXPECT_EQ(gemv.precision, Precision::Double);
  EXPECT_EQ(gemv.trans, Transpose::Trans);
  EXPECT_EQ(gemv.tiling, core::MatrixTiling::TilesByCols);
  EXPECT_EQ(gemv.tile_rows, 512);
  EXPECT_EQ(gemv.blas_name(), "dgemv");
  EXPECT_EQ(gemv.user_name, "fblas_dgemv");  // default name
  const auto& trsv = spec.routines[3];
  EXPECT_EQ(trsv.uplo, Uplo::Upper);
  EXPECT_EQ(trsv.diag, Diag::Unit);
}

TEST(Spec, SchemaViolations) {
  EXPECT_THROW(parse_spec("[]"), ParseError);
  EXPECT_THROW(parse_spec("{\"routines\": []}"), ParseError);
  EXPECT_THROW(parse_spec("{\"routines\": [{\"width\": 4}]}"), ParseError);
  EXPECT_THROW(parse_spec(R"({"routines": [{"blas": "fft"}]})"), ParseError);
  EXPECT_THROW(parse_spec(R"({"routines": [{"blas": "dot", "width": 0}]})"),
               ParseError);
  EXPECT_THROW(
      parse_spec(R"({"routines": [{"blas": "dot"}], "device": "virtex"})"),
      ParseError);
  EXPECT_THROW(parse_spec(R"({"routines":
      [{"blas": "gemm", "pe_rows": 4, "pe_cols": 4,
        "tile_rows": 10, "tile_cols": 8}]})"),
               ParseError);
  EXPECT_THROW(
      parse_spec(R"({"routines": [{"blas": "gemv", "tiles_by": "diag"}]})"),
      ParseError);
}

TEST(Spec, RoundTripThroughJson) {
  const auto spec = parse_spec(kSpec);
  const auto spec2 = parse_spec(spec_to_json(spec));
  ASSERT_EQ(spec2.routines.size(), spec.routines.size());
  EXPECT_EQ(spec2.routines[1].tile_rows, spec.routines[1].tile_rows);
  EXPECT_EQ(spec2.routines[1].trans, spec.routines[1].trans);
  EXPECT_EQ(spec2.routines[3].uplo, spec.routines[3].uplo);
}

// ---- Emission -------------------------------------------------------------

TEST(Emitter, DotKernelStructure) {
  RoutineSpec s;
  s.kind = RoutineKind::Dot;
  s.width = 32;
  s.user_name = "my_sdot";
  const auto design = emit(s, sim::stratix10());
  EXPECT_NE(design.source.find("cl_intel_channels"), std::string::npos);
  EXPECT_NE(design.source.find("__kernel void my_sdot(int N)"),
            std::string::npos);
  EXPECT_NE(design.source.find("#pragma unroll"), std::string::npos);
  EXPECT_NE(design.source.find("i < 32"), std::string::npos);
  EXPECT_NE(design.source.find("read_channel_intel(my_sdot_ch_x)"),
            std::string::npos);
  // Helper kernels for both inputs and the result.
  EXPECT_NE(design.source.find("my_sdot_read_x"), std::string::npos);
  EXPECT_NE(design.source.find("my_sdot_read_y"), std::string::npos);
  EXPECT_NE(design.source.find("my_sdot_write_res"), std::string::npos);
  EXPECT_EQ(design.kernel_names.back(), "my_sdot");
  EXPECT_EQ(design.level1_config().width, 32);
}

TEST(Emitter, DoublePrecisionUsesDoubleType) {
  RoutineSpec s;
  s.kind = RoutineKind::Axpy;
  s.precision = Precision::Double;
  s.user_name = "my_daxpy";
  const auto design = emit(s, sim::stratix10());
  EXPECT_NE(design.source.find("double x = read_channel_intel"),
            std::string::npos);
  EXPECT_EQ(design.source.find("float x ="), std::string::npos);
}

TEST(Emitter, GemvCarriesTileSizes) {
  RoutineSpec s;
  s.kind = RoutineKind::Gemv;
  s.width = 16;
  s.tile_rows = 128;
  s.tile_cols = 64;
  s.user_name = "g";
  const auto design = emit(s, sim::stratix10());
  EXPECT_NE(design.source.find("TN=128"), std::string::npos);
  EXPECT_NE(design.source.find("#pragma unroll 16"), std::string::npos);
  const auto cfg = design.gemv_config();
  EXPECT_EQ(cfg.tile_rows, 128);
  EXPECT_EQ(cfg.tile_cols, 64);
}

TEST(Emitter, SystolicGemmStructure) {
  RoutineSpec s;
  s.kind = RoutineKind::Gemm;
  s.pe_rows = 8;
  s.pe_cols = 8;
  s.tile_rows = 32;
  s.tile_cols = 32;
  s.user_name = "mm";
  const auto design = emit(s, sim::stratix10());
  EXPECT_NE(design.source.find("8x8 PE grid"), std::string::npos);
  EXPECT_NE(design.source.find("drain chain"), std::string::npos);
  const auto cfg = design.gemm_config();
  EXPECT_EQ(cfg.pe_rows, 8);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Emitter, InfeasibleDesignsRejected) {
  // DDOT at W=256 fails routing (Sec. VI-B).
  RoutineSpec s;
  s.kind = RoutineKind::Dot;
  s.precision = Precision::Double;
  s.width = 256;
  EXPECT_THROW(emit(s, sim::stratix10()), FitError);
  EXPECT_NO_THROW(emit(s, sim::stratix10(), /*check_feasibility=*/false));
  s.width = 128;
  EXPECT_NO_THROW(emit(s, sim::stratix10()));
}

TEST(Emitter, FileEmissionCoversAllRoutines) {
  const auto spec = parse_spec(kSpec);
  const auto src = emit_file(spec);
  EXPECT_NE(src.find("my_sdot"), std::string::npos);
  EXPECT_NE(src.find("fblas_dgemv"), std::string::npos);
  EXPECT_NE(src.find("fblas_sgemm"), std::string::npos);
  EXPECT_NE(src.find("fblas_strsv"), std::string::npos);
  EXPECT_NE(src.find("Stratix 10"), std::string::npos);
}

TEST(Spec, FullyUnrolledFields) {
  const auto spec = parse_spec(R"({"routines": [
    {"blas": "gemm", "fully_unrolled": true, "fixed_size": 4,
     "user_name": "mm4"}]})");
  EXPECT_TRUE(spec.routines[0].fully_unrolled);
  EXPECT_EQ(spec.routines[0].fixed_size, 4);
  // Round trip keeps the fields.
  const auto spec2 = parse_spec(spec_to_json(spec));
  EXPECT_TRUE(spec2.routines[0].fully_unrolled);
  EXPECT_EQ(spec2.routines[0].fixed_size, 4);
  // Only GEMM/TRSM support it; sizes are capped.
  EXPECT_THROW(parse_spec(R"({"routines": [
    {"blas": "dot", "fully_unrolled": true}]})"),
               ParseError);
  EXPECT_THROW(parse_spec(R"({"routines": [
    {"blas": "gemm", "fully_unrolled": true, "fixed_size": 64}]})"),
               ParseError);
}

TEST(Emitter, FullyUnrolledGemmKernel) {
  RoutineSpec s;
  s.kind = RoutineKind::Gemm;
  s.fully_unrolled = true;
  s.fixed_size = 4;
  s.user_name = "mm4";
  const auto design = emit(s, sim::stratix10());
  EXPECT_NE(design.source.find("Fully-unrolled batched GEMM"),
            std::string::npos);
  EXPECT_NE(design.source.find("new problem enters every clock cycle"),
            std::string::npos);
  EXPECT_NE(design.source.find("k < 4"), std::string::npos);
  EXPECT_EQ(design.batched_config().size, 4);
  EXPECT_NO_THROW(design.batched_config().validate());
}

TEST(Emitter, FullyUnrolledTrsmKernel) {
  RoutineSpec s;
  s.kind = RoutineKind::Trsm;
  s.fully_unrolled = true;
  s.fixed_size = 4;
  s.user_name = "ts4";
  const auto design = emit(s, sim::arria10());
  EXPECT_NE(design.source.find("Fully-unrolled batched TRSM"),
            std::string::npos);
  EXPECT_EQ(design.kernel_names.back(), "ts4");
}

TEST(Emitter, EveryRoutineKindEmits) {
  // Smoke: all 22 routines produce a kernel with their user name.
  for (int i = 0; i < kRoutineCount; ++i) {
    const RoutineInfo& info = all_routines()[i];
    RoutineSpec s;
    s.kind = info.kind;
    s.user_name = "k_" + std::string(info.name);
    s.width = 8;
    s.tile_rows = 32;
    s.tile_cols = 32;
    s.pe_rows = 4;
    s.pe_cols = 4;
    const auto design = emit(s, sim::arria10());
    EXPECT_NE(design.source.find(s.user_name), std::string::npos)
        << info.name;
    EXPECT_FALSE(design.kernel_names.empty()) << info.name;
  }
}

// ---- Generated config drives the simulator --------------------------------

TEST(EmitterIntegration, GeneratedGemvConfigRunsAndMatchesOracle) {
  const auto spec = parse_spec(R"({
    "routines": [{"blas": "gemv", "precision": "single", "width": 4,
                  "tile_rows": 8, "tile_cols": 8, "tiles_by": "rows"}]})");
  const auto design = emit(spec.routines[0], sim::device(spec.device));
  const auto cfg = design.gemv_config();

  Workload wl(601);
  const std::int64_t rows = 20, cols = 12;
  auto a = wl.matrix<float>(rows, cols);
  auto x = wl.vector<float>(cols);
  auto y = wl.vector<float>(rows);
  auto expect = y;
  ref::gemv<float>(Transpose::None, 2.0f,
                   MatrixView<const float>(a.data(), rows, cols),
                   VectorView<const float>(x.data(), cols), 0.5f,
                   VectorView<float>(expect.data(), rows));

  stream::Graph g;
  auto& ca = g.channel<float>("A", 64);
  auto& cx = g.channel<float>("x", 64);
  auto& cy = g.channel<float>("y", 64);
  auto& out = g.channel<float>("out", 64);
  std::vector<float> got;
  g.spawn("read_A",
          stream::read_matrix<float>(
              MatrixView<const float>(a.data(), rows, cols),
              core::gemv_a_schedule(cfg), 1, cfg.width, ca));
  g.spawn("read_x", stream::read_vector<float>(
                        VectorView<const float>(x.data(), cols),
                        core::gemv_x_repeat(cfg, rows, cols), cfg.width, cx));
  g.spawn("read_y", stream::read_vector<float>(
                        VectorView<const float>(y.data(), rows), 1,
                        cfg.width, cy));
  g.spawn("gemv", core::gemv<float>(cfg, rows, cols, 2.0f, 0.5f, ca, cx, cy,
                                    out));
  g.spawn("collect", stream::collect<float>(rows, out, got));
  g.run();
  EXPECT_LT(rel_error(got, expect), 1e-4);
}

}  // namespace
}  // namespace fblas::codegen
